
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baseline_model_designs.cpp" "tests/CMakeFiles/ash_tests.dir/test_baseline_model_designs.cpp.o" "gcc" "tests/CMakeFiles/ash_tests.dir/test_baseline_model_designs.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/ash_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/ash_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_compiler.cpp" "tests/CMakeFiles/ash_tests.dir/test_compiler.cpp.o" "gcc" "tests/CMakeFiles/ash_tests.dir/test_compiler.cpp.o.d"
  "/root/repo/tests/test_dfg_partition.cpp" "tests/CMakeFiles/ash_tests.dir/test_dfg_partition.cpp.o" "gcc" "tests/CMakeFiles/ash_tests.dir/test_dfg_partition.cpp.o.d"
  "/root/repo/tests/test_engine.cpp" "tests/CMakeFiles/ash_tests.dir/test_engine.cpp.o" "gcc" "tests/CMakeFiles/ash_tests.dir/test_engine.cpp.o.d"
  "/root/repo/tests/test_fuzz_equivalence.cpp" "tests/CMakeFiles/ash_tests.dir/test_fuzz_equivalence.cpp.o" "gcc" "tests/CMakeFiles/ash_tests.dir/test_fuzz_equivalence.cpp.o.d"
  "/root/repo/tests/test_refsim.cpp" "tests/CMakeFiles/ash_tests.dir/test_refsim.cpp.o" "gcc" "tests/CMakeFiles/ash_tests.dir/test_refsim.cpp.o.d"
  "/root/repo/tests/test_rtl.cpp" "tests/CMakeFiles/ash_tests.dir/test_rtl.cpp.o" "gcc" "tests/CMakeFiles/ash_tests.dir/test_rtl.cpp.o.d"
  "/root/repo/tests/test_verilog.cpp" "tests/CMakeFiles/ash_tests.dir/test_verilog.cpp.o" "gcc" "tests/CMakeFiles/ash_tests.dir/test_verilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ash_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/ash_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/designs/CMakeFiles/ash_designs.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ash_model.dir/DependInfo.cmake"
  "/root/repo/build/src/verilog/CMakeFiles/ash_verilog.dir/DependInfo.cmake"
  "/root/repo/build/src/refsim/CMakeFiles/ash_refsim.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/ash_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/ash_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/ash_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ash_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
