file(REMOVE_RECURSE
  "CMakeFiles/ash_tests.dir/test_baseline_model_designs.cpp.o"
  "CMakeFiles/ash_tests.dir/test_baseline_model_designs.cpp.o.d"
  "CMakeFiles/ash_tests.dir/test_common.cpp.o"
  "CMakeFiles/ash_tests.dir/test_common.cpp.o.d"
  "CMakeFiles/ash_tests.dir/test_compiler.cpp.o"
  "CMakeFiles/ash_tests.dir/test_compiler.cpp.o.d"
  "CMakeFiles/ash_tests.dir/test_dfg_partition.cpp.o"
  "CMakeFiles/ash_tests.dir/test_dfg_partition.cpp.o.d"
  "CMakeFiles/ash_tests.dir/test_engine.cpp.o"
  "CMakeFiles/ash_tests.dir/test_engine.cpp.o.d"
  "CMakeFiles/ash_tests.dir/test_fuzz_equivalence.cpp.o"
  "CMakeFiles/ash_tests.dir/test_fuzz_equivalence.cpp.o.d"
  "CMakeFiles/ash_tests.dir/test_refsim.cpp.o"
  "CMakeFiles/ash_tests.dir/test_refsim.cpp.o.d"
  "CMakeFiles/ash_tests.dir/test_rtl.cpp.o"
  "CMakeFiles/ash_tests.dir/test_rtl.cpp.o.d"
  "CMakeFiles/ash_tests.dir/test_verilog.cpp.o"
  "CMakeFiles/ash_tests.dir/test_verilog.cpp.o.d"
  "ash_tests"
  "ash_tests.pdb"
  "ash_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ash_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
