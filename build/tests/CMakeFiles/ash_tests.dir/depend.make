# Empty dependencies file for ash_tests.
# This may be replaced when dependencies are built.
