file(REMOVE_RECURSE
  "CMakeFiles/table1_emulation.dir/table1_emulation.cpp.o"
  "CMakeFiles/table1_emulation.dir/table1_emulation.cpp.o.d"
  "table1_emulation"
  "table1_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
