# Empty compiler generated dependencies file for table1_emulation.
# This may be replaced when dependencies are built.
