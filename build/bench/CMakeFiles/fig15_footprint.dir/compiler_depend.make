# Empty compiler generated dependencies file for fig15_footprint.
# This may be replaced when dependencies are built.
