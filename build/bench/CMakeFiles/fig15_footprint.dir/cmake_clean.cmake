file(REMOVE_RECURSE
  "CMakeFiles/fig15_footprint.dir/fig15_footprint.cpp.o"
  "CMakeFiles/fig15_footprint.dir/fig15_footprint.cpp.o.d"
  "fig15_footprint"
  "fig15_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
