# Empty dependencies file for fig18_factor.
# This may be replaced when dependencies are built.
