file(REMOVE_RECURSE
  "CMakeFiles/fig18_factor.dir/fig18_factor.cpp.o"
  "CMakeFiles/fig18_factor.dir/fig18_factor.cpp.o.d"
  "fig18_factor"
  "fig18_factor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
