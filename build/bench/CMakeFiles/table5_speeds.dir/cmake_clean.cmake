file(REMOVE_RECURSE
  "CMakeFiles/table5_speeds.dir/table5_speeds.cpp.o"
  "CMakeFiles/table5_speeds.dir/table5_speeds.cpp.o.d"
  "table5_speeds"
  "table5_speeds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_speeds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
