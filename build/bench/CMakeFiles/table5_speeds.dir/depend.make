# Empty dependencies file for table5_speeds.
# This may be replaced when dependencies are built.
