# Empty dependencies file for ash_bench_common.
# This may be replaced when dependencies are built.
