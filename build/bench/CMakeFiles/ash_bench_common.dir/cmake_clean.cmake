file(REMOVE_RECURSE
  "CMakeFiles/ash_bench_common.dir/BenchCommon.cpp.o"
  "CMakeFiles/ash_bench_common.dir/BenchCommon.cpp.o.d"
  "libash_bench_common.a"
  "libash_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ash_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
