file(REMOVE_RECURSE
  "CMakeFiles/table2_area.dir/table2_area.cpp.o"
  "CMakeFiles/table2_area.dir/table2_area.cpp.o.d"
  "table2_area"
  "table2_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
