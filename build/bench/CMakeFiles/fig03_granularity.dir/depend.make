# Empty dependencies file for fig03_granularity.
# This may be replaced when dependencies are built.
