file(REMOVE_RECURSE
  "CMakeFiles/fig19_priorwork.dir/fig19_priorwork.cpp.o"
  "CMakeFiles/fig19_priorwork.dir/fig19_priorwork.cpp.o.d"
  "fig19_priorwork"
  "fig19_priorwork.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_priorwork.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
