# Empty dependencies file for fig19_priorwork.
# This may be replaced when dependencies are built.
