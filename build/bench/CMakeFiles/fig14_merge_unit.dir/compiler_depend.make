# Empty compiler generated dependencies file for fig14_merge_unit.
# This may be replaced when dependencies are built.
