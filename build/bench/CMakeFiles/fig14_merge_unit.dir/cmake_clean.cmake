file(REMOVE_RECURSE
  "CMakeFiles/fig14_merge_unit.dir/fig14_merge_unit.cpp.o"
  "CMakeFiles/fig14_merge_unit.dir/fig14_merge_unit.cpp.o.d"
  "fig14_merge_unit"
  "fig14_merge_unit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_merge_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
