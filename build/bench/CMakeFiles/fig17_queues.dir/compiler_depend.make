# Empty compiler generated dependencies file for fig17_queues.
# This may be replaced when dependencies are built.
