file(REMOVE_RECURSE
  "CMakeFiles/fig17_queues.dir/fig17_queues.cpp.o"
  "CMakeFiles/fig17_queues.dir/fig17_queues.cpp.o.d"
  "fig17_queues"
  "fig17_queues.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_queues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
