
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig12_cycle_breakdown.cpp" "bench/CMakeFiles/fig12_cycle_breakdown.dir/fig12_cycle_breakdown.cpp.o" "gcc" "bench/CMakeFiles/fig12_cycle_breakdown.dir/fig12_cycle_breakdown.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/ash_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/ash_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ash_core.dir/DependInfo.cmake"
  "/root/repo/build/src/designs/CMakeFiles/ash_designs.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ash_model.dir/DependInfo.cmake"
  "/root/repo/build/src/verilog/CMakeFiles/ash_verilog.dir/DependInfo.cmake"
  "/root/repo/build/src/refsim/CMakeFiles/ash_refsim.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/ash_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/ash_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/ash_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ash_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
