file(REMOVE_RECURSE
  "CMakeFiles/fig12_cycle_breakdown.dir/fig12_cycle_breakdown.cpp.o"
  "CMakeFiles/fig12_cycle_breakdown.dir/fig12_cycle_breakdown.cpp.o.d"
  "fig12_cycle_breakdown"
  "fig12_cycle_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_cycle_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
