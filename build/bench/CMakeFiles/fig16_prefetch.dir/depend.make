# Empty dependencies file for fig16_prefetch.
# This may be replaced when dependencies are built.
