# Empty dependencies file for table4_designs.
# This may be replaced when dependencies are built.
