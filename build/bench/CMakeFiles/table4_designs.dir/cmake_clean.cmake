file(REMOVE_RECURSE
  "CMakeFiles/table4_designs.dir/table4_designs.cpp.o"
  "CMakeFiles/table4_designs.dir/table4_designs.cpp.o.d"
  "table4_designs"
  "table4_designs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
