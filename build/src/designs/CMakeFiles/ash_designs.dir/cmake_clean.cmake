file(REMOVE_RECURSE
  "CMakeFiles/ash_designs.dir/Designs.cpp.o"
  "CMakeFiles/ash_designs.dir/Designs.cpp.o.d"
  "libash_designs.a"
  "libash_designs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ash_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
