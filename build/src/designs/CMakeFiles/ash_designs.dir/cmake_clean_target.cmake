file(REMOVE_RECURSE
  "libash_designs.a"
)
