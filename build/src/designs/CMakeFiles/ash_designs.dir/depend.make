# Empty dependencies file for ash_designs.
# This may be replaced when dependencies are built.
