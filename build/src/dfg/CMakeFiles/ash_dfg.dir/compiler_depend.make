# Empty compiler generated dependencies file for ash_dfg.
# This may be replaced when dependencies are built.
