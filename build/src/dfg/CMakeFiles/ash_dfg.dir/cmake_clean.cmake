file(REMOVE_RECURSE
  "CMakeFiles/ash_dfg.dir/Dfg.cpp.o"
  "CMakeFiles/ash_dfg.dir/Dfg.cpp.o.d"
  "libash_dfg.a"
  "libash_dfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ash_dfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
