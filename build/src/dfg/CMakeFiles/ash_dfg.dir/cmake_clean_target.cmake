file(REMOVE_RECURSE
  "libash_dfg.a"
)
