# Empty compiler generated dependencies file for ash_baseline.
# This may be replaced when dependencies are built.
