file(REMOVE_RECURSE
  "libash_baseline.a"
)
