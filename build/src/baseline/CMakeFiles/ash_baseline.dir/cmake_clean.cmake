file(REMOVE_RECURSE
  "CMakeFiles/ash_baseline.dir/Baseline.cpp.o"
  "CMakeFiles/ash_baseline.dir/Baseline.cpp.o.d"
  "libash_baseline.a"
  "libash_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ash_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
