# Empty dependencies file for ash_refsim.
# This may be replaced when dependencies are built.
