file(REMOVE_RECURSE
  "CMakeFiles/ash_refsim.dir/ReferenceSimulator.cpp.o"
  "CMakeFiles/ash_refsim.dir/ReferenceSimulator.cpp.o.d"
  "CMakeFiles/ash_refsim.dir/Vcd.cpp.o"
  "CMakeFiles/ash_refsim.dir/Vcd.cpp.o.d"
  "libash_refsim.a"
  "libash_refsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ash_refsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
