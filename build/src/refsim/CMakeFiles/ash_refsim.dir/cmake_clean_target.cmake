file(REMOVE_RECURSE
  "libash_refsim.a"
)
