file(REMOVE_RECURSE
  "CMakeFiles/ash_core.dir/arch/AshSim.cpp.o"
  "CMakeFiles/ash_core.dir/arch/AshSim.cpp.o.d"
  "CMakeFiles/ash_core.dir/arch/Noc.cpp.o"
  "CMakeFiles/ash_core.dir/arch/Noc.cpp.o.d"
  "CMakeFiles/ash_core.dir/compiler/Codegen.cpp.o"
  "CMakeFiles/ash_core.dir/compiler/Codegen.cpp.o.d"
  "CMakeFiles/ash_core.dir/compiler/Compiler.cpp.o"
  "CMakeFiles/ash_core.dir/compiler/Compiler.cpp.o.d"
  "libash_core.a"
  "libash_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ash_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
