
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/arch/AshSim.cpp" "src/core/CMakeFiles/ash_core.dir/arch/AshSim.cpp.o" "gcc" "src/core/CMakeFiles/ash_core.dir/arch/AshSim.cpp.o.d"
  "/root/repo/src/core/arch/Noc.cpp" "src/core/CMakeFiles/ash_core.dir/arch/Noc.cpp.o" "gcc" "src/core/CMakeFiles/ash_core.dir/arch/Noc.cpp.o.d"
  "/root/repo/src/core/compiler/Codegen.cpp" "src/core/CMakeFiles/ash_core.dir/compiler/Codegen.cpp.o" "gcc" "src/core/CMakeFiles/ash_core.dir/compiler/Codegen.cpp.o.d"
  "/root/repo/src/core/compiler/Compiler.cpp" "src/core/CMakeFiles/ash_core.dir/compiler/Compiler.cpp.o" "gcc" "src/core/CMakeFiles/ash_core.dir/compiler/Compiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dfg/CMakeFiles/ash_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/ash_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/ash_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/refsim/CMakeFiles/ash_refsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ash_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
