file(REMOVE_RECURSE
  "libash_core.a"
)
