# Empty compiler generated dependencies file for ash_core.
# This may be replaced when dependencies are built.
