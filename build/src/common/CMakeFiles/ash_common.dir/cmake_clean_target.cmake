file(REMOVE_RECURSE
  "libash_common.a"
)
