# Empty compiler generated dependencies file for ash_common.
# This may be replaced when dependencies are built.
