file(REMOVE_RECURSE
  "CMakeFiles/ash_common.dir/Logging.cpp.o"
  "CMakeFiles/ash_common.dir/Logging.cpp.o.d"
  "CMakeFiles/ash_common.dir/Stats.cpp.o"
  "CMakeFiles/ash_common.dir/Stats.cpp.o.d"
  "CMakeFiles/ash_common.dir/Table.cpp.o"
  "CMakeFiles/ash_common.dir/Table.cpp.o.d"
  "libash_common.a"
  "libash_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ash_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
