file(REMOVE_RECURSE
  "libash_model.a"
)
