file(REMOVE_RECURSE
  "CMakeFiles/ash_model.dir/EnergyArea.cpp.o"
  "CMakeFiles/ash_model.dir/EnergyArea.cpp.o.d"
  "libash_model.a"
  "libash_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ash_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
