# Empty compiler generated dependencies file for ash_model.
# This may be replaced when dependencies are built.
