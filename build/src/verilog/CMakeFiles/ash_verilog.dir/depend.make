# Empty dependencies file for ash_verilog.
# This may be replaced when dependencies are built.
