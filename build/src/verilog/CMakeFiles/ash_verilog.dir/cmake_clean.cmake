file(REMOVE_RECURSE
  "CMakeFiles/ash_verilog.dir/Compile.cpp.o"
  "CMakeFiles/ash_verilog.dir/Compile.cpp.o.d"
  "CMakeFiles/ash_verilog.dir/Elaborator.cpp.o"
  "CMakeFiles/ash_verilog.dir/Elaborator.cpp.o.d"
  "CMakeFiles/ash_verilog.dir/Lexer.cpp.o"
  "CMakeFiles/ash_verilog.dir/Lexer.cpp.o.d"
  "CMakeFiles/ash_verilog.dir/Parser.cpp.o"
  "CMakeFiles/ash_verilog.dir/Parser.cpp.o.d"
  "libash_verilog.a"
  "libash_verilog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ash_verilog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
