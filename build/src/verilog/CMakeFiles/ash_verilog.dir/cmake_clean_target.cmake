file(REMOVE_RECURSE
  "libash_verilog.a"
)
