file(REMOVE_RECURSE
  "libash_rtl.a"
)
