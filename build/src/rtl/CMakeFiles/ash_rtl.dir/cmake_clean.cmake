file(REMOVE_RECURSE
  "CMakeFiles/ash_rtl.dir/Eval.cpp.o"
  "CMakeFiles/ash_rtl.dir/Eval.cpp.o.d"
  "CMakeFiles/ash_rtl.dir/Netlist.cpp.o"
  "CMakeFiles/ash_rtl.dir/Netlist.cpp.o.d"
  "CMakeFiles/ash_rtl.dir/Transform.cpp.o"
  "CMakeFiles/ash_rtl.dir/Transform.cpp.o.d"
  "libash_rtl.a"
  "libash_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ash_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
