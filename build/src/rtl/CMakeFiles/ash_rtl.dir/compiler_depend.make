# Empty compiler generated dependencies file for ash_rtl.
# This may be replaced when dependencies are built.
