
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtl/Eval.cpp" "src/rtl/CMakeFiles/ash_rtl.dir/Eval.cpp.o" "gcc" "src/rtl/CMakeFiles/ash_rtl.dir/Eval.cpp.o.d"
  "/root/repo/src/rtl/Netlist.cpp" "src/rtl/CMakeFiles/ash_rtl.dir/Netlist.cpp.o" "gcc" "src/rtl/CMakeFiles/ash_rtl.dir/Netlist.cpp.o.d"
  "/root/repo/src/rtl/Transform.cpp" "src/rtl/CMakeFiles/ash_rtl.dir/Transform.cpp.o" "gcc" "src/rtl/CMakeFiles/ash_rtl.dir/Transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ash_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
