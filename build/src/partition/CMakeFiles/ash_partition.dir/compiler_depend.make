# Empty compiler generated dependencies file for ash_partition.
# This may be replaced when dependencies are built.
