file(REMOVE_RECURSE
  "libash_partition.a"
)
