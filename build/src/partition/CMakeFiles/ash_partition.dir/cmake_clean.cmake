file(REMOVE_RECURSE
  "CMakeFiles/ash_partition.dir/Partition.cpp.o"
  "CMakeFiles/ash_partition.dir/Partition.cpp.o.d"
  "libash_partition.a"
  "libash_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ash_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
