# ctest driver: the ash_prof determinism boundary, end to end.
# Profiling output must go ONLY to its own files and stderr — arming
# the profiler must not change a single byte of stdout or of the
# --stats-json document, at any --jobs count. Three runs of a sweep
# bench:
#   A: --jobs 1, no profiling            (the reference)
#   B: --jobs 1, --prof-json + --prof-jsonl + --progress
#   C: --jobs 4, --prof-json + --prof-jsonl + --progress
# stdout and stats JSON must be byte-identical across all three; the
# prof JSON files must exist, be non-empty, and carry the report keys.
# Invoked as:
#   cmake -DBENCH=<binary> -DWORKDIR=<dir> -P RunProfDeterminism.cmake

file(MAKE_DIRECTORY "${WORKDIR}")

# One stats filename for every run so the "wrote stats JSON: <path>"
# log line cannot excuse a stdout difference; same for the prof files.
set(json "${WORKDIR}/prof_stats.json")
set(profjson "${WORKDIR}/prof_report.json")
set(profjsonl "${WORKDIR}/prof_series.jsonl")

function(run_case tag)
    execute_process(COMMAND "${BENCH}" --stats-json "${json}" ${ARGN}
                    RESULT_VARIABLE rc
                    OUTPUT_VARIABLE out
                    ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "${BENCH} [${tag}] exited with ${rc}:\n${err}")
    endif()
    file(RENAME "${json}" "${WORKDIR}/prof_stats_${tag}.json")
    file(WRITE "${WORKDIR}/prof_stdout_${tag}.txt" "${out}")
endfunction()

run_case(ref --jobs 1)
run_case(j1 --jobs 1 --prof-json "${profjson}"
            --prof-jsonl "${profjsonl}" --progress 1)
file(RENAME "${profjson}" "${WORKDIR}/prof_report_j1.json")
run_case(j4 --jobs 4 --prof-json "${profjson}"
            --prof-jsonl "${profjsonl}" --progress 1)

function(require_same what a b)
    execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                            "${a}" "${b}"
                    RESULT_VARIABLE diff_rc)
    if(NOT diff_rc EQUAL 0)
        message(FATAL_ERROR "${what} differs: ${a} vs ${b} — "
                            "profiling leaked into deterministic output")
    endif()
endfunction()

require_same("stdout (prof off vs armed, --jobs 1)"
             "${WORKDIR}/prof_stdout_ref.txt"
             "${WORKDIR}/prof_stdout_j1.txt")
require_same("stdout (armed, --jobs 1 vs --jobs 4)"
             "${WORKDIR}/prof_stdout_j1.txt"
             "${WORKDIR}/prof_stdout_j4.txt")
require_same("stats JSON (prof off vs armed, --jobs 1)"
             "${WORKDIR}/prof_stats_ref.json"
             "${WORKDIR}/prof_stats_j1.json")
require_same("stats JSON (armed, --jobs 1 vs --jobs 4)"
             "${WORKDIR}/prof_stats_j1.json"
             "${WORKDIR}/prof_stats_j4.json")

# The prof sinks themselves must have been written and look like prof
# output (full JSON validation lives in test_prof.cpp).
foreach(f "${WORKDIR}/prof_report_j1.json" "${profjson}" "${profjsonl}")
    if(NOT EXISTS "${f}")
        message(FATAL_ERROR "profiler did not write ${f}")
    endif()
endforeach()
file(READ "${profjson}" prof_doc)
foreach(key "\"build\"" "\"zones\"" "\"jobs\"" "\"wall_sec\"")
    string(FIND "${prof_doc}" "${key}" pos)
    if(pos EQUAL -1)
        message(FATAL_ERROR "prof JSON ${profjson} is missing ${key}")
    endif()
endforeach()
