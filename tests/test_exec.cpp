/**
 * @file
 * Unit tests for the ash_exec subsystem: the work-stealing ThreadPool
 * (completion, multi-thread participation, stealing, drain-on-destroy)
 * and SweepRunner's determinism contract (stable per-job RNG,
 * submission-order merge into obs::Report, exception capture with
 * bounded retry, failure isolation).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>

#include "common/Shutdown.h"
#include "exec/SweepRunner.h"
#include "exec/ThreadPool.h"
#include "guard/Fault.h"
#include "obs/Report.h"
#include "prof/Prof.h"

namespace ash::exec {
namespace {

TEST(ThreadPool, RunsEveryTask)
{
    std::atomic<int> done{0};
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { done.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, HardwareConcurrencyDefaultIsPositive)
{
    EXPECT_GE(hardwareConcurrency(), 1u);
    ThreadPool pool;
    EXPECT_EQ(pool.threadCount(), hardwareConcurrency());
}

TEST(ThreadPool, MultipleWorkersParticipate)
{
    // Four tasks that all block until four distinct threads have
    // arrived: only possible if four workers run concurrently.
    constexpr int kThreads = 4;
    std::mutex m;
    std::condition_variable cv;
    int arrived = 0;
    std::set<std::thread::id> ids;

    ThreadPool pool(kThreads);
    for (int i = 0; i < kThreads; ++i) {
        pool.submit([&] {
            std::unique_lock<std::mutex> lock(m);
            ids.insert(std::this_thread::get_id());
            if (++arrived == kThreads)
                cv.notify_all();
            else
                cv.wait(lock, [&] { return arrived == kThreads; });
        });
    }
    pool.wait();
    EXPECT_EQ(ids.size(), static_cast<size_t>(kThreads));
}

TEST(ThreadPool, IdleWorkerStealsNestedWork)
{
    // A parent task fills its own deque with nested submits, then
    // blocks until some OTHER worker has run one of them. The only
    // way forward is a steal.
    std::mutex m;
    std::condition_variable cv;
    bool nested_ran_elsewhere = false;
    std::atomic<int> nested_done{0};

    ThreadPool pool(2);
    pool.submit([&] {
        std::thread::id self = std::this_thread::get_id();
        for (int i = 0; i < 4; ++i) {
            pool.submit([&, self] {
                if (std::this_thread::get_id() != self) {
                    std::lock_guard<std::mutex> lock(m);
                    nested_ran_elsewhere = true;
                    cv.notify_all();
                }
                nested_done.fetch_add(1);
            });
        }
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return nested_ran_elsewhere; });
    });
    pool.wait();
    EXPECT_EQ(nested_done.load(), 4);
    EXPECT_TRUE(nested_ran_elsewhere);
    EXPECT_GE(pool.stealCount(), 1u);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks)
{
    std::atomic<int> done{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&] {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(100));
                done.fetch_add(1);
            });
        // No wait(): destruction must finish the backlog.
    }
    EXPECT_EQ(done.load(), 50);
}

TEST(StableSeed, DependsOnlyOnKey)
{
    EXPECT_EQ(stableSeed("fig11/gcd/t16"), stableSeed("fig11/gcd/t16"));
    EXPECT_NE(stableSeed("fig11/gcd/t16"), stableSeed("fig11/gcd/t32"));
    EXPECT_NE(stableSeed(""), stableSeed("a"));
}

/** Per-job RNG draws for a 6-job sweep at the given worker count. */
static std::vector<uint64_t>
rngDraws(unsigned workers)
{
    std::vector<uint64_t> draws(6);
    SweepOptions opts;
    opts.jobs = workers;
    SweepRunner sweep(opts);
    for (size_t i = 0; i < draws.size(); ++i)
        sweep.add("rng/job" + std::to_string(i),
                  [&draws, i](JobContext &ctx) {
                      draws[i] = ctx.rng().next();
                  });
    sweep.run();
    return draws;
}

TEST(SweepRunner, RngStreamIndependentOfWorkerCount)
{
    auto serial = rngDraws(1);
    auto parallel = rngDraws(8);
    EXPECT_EQ(serial, parallel);
    // And distinct across jobs (keys differ).
    std::set<uint64_t> unique(serial.begin(), serial.end());
    EXPECT_EQ(unique.size(), serial.size());
}

TEST(SweepRunner, MergesStagedRecordsInSubmissionOrder)
{
    obs::Report::global().clear();
    SweepOptions opts;
    opts.jobs = 4;
    SweepRunner sweep(opts);
    // Every job writes the same key; submission order must win, so
    // the last-submitted job's value survives any completion order.
    for (int i = 0; i < 8; ++i)
        sweep.add("merge/job" + std::to_string(i),
                  [i](JobContext &ctx) {
                      // Stagger completion so later submissions tend
                      // to finish first without the merge contract.
                      std::this_thread::sleep_for(
                          std::chrono::milliseconds(8 - i));
                      ctx.record("merge.winner", i);
                  });
    sweep.run();
    EXPECT_EQ(sweep.failures().size(), 0u);
    EXPECT_EQ(obs::Report::global().get("merge.winner"), 7.0);
    obs::Report::global().clear();
}

TEST(SweepRunner, MergesStagedStatsAtBarrier)
{
    obs::Report::global().clear();
    SweepOptions opts;
    opts.jobs = 2;
    SweepRunner sweep(opts);
    for (int i = 0; i < 4; ++i)
        sweep.add("stats/job" + std::to_string(i),
                  [](JobContext &ctx) {
                      StatSet s;
                      s.inc("events", 5);
                      ctx.recordStats("sweep", s);
                  });
    sweep.run();
    EXPECT_EQ(obs::Report::global().stats().get("sweep.events"), 20u);
    obs::Report::global().clear();
}

TEST(SweepRunner, RetriesFailedJobOnce)
{
    std::atomic<int> attempts{0};
    SweepOptions opts;
    opts.jobs = 2;
    opts.maxAttempts = 2;
    SweepRunner sweep(opts);
    sweep.add("retry/flaky", [&](JobContext &ctx) {
        attempts.fetch_add(1);
        if (ctx.attempt() == 0)
            throw std::runtime_error("transient");
    });
    sweep.run();
    EXPECT_EQ(attempts.load(), 2);
    EXPECT_EQ(sweep.failures().size(), 0u);
}

TEST(SweepRunner, ReportsExhaustedJobAndIsolatesOthers)
{
    std::atomic<int> ok_jobs{0};
    SweepOptions opts;
    opts.jobs = 4;
    opts.maxAttempts = 3;
    SweepRunner sweep(opts);
    sweep.add("fail/always", [](JobContext &) {
        throw std::runtime_error("deterministic bug");
    });
    for (int i = 0; i < 6; ++i)
        sweep.add("fail/ok" + std::to_string(i),
                  [&](JobContext &) { ok_jobs.fetch_add(1); });
    const auto &failures = sweep.run();
    EXPECT_EQ(ok_jobs.load(), 6);
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_EQ(failures[0].job, "fail/always");
    EXPECT_EQ(failures[0].index, 0u);
    EXPECT_EQ(failures[0].attempts, 3);
    EXPECT_NE(failures[0].error.find("deterministic bug"),
              std::string::npos);
}

TEST(SweepRunner, RetryReplaysDistinctButDeterministicRng)
{
    // Attempt 0 and attempt 1 must draw different streams, and a
    // re-run of the whole sweep must reproduce both exactly.
    auto run_once = [](uint64_t &first, uint64_t &second) {
        SweepOptions opts;
        opts.jobs = 2;
        opts.maxAttempts = 2;
        SweepRunner sweep(opts);
        sweep.add("rngretry/job", [&](JobContext &ctx) {
            if (ctx.attempt() == 0) {
                first = ctx.rng().next();
                throw std::runtime_error("force retry");
            }
            second = ctx.rng().next();
        });
        sweep.run();
    };
    uint64_t a1 = 0, a2 = 0, b1 = 0, b2 = 0;
    run_once(a1, a2);
    run_once(b1, b2);
    EXPECT_NE(a1, a2);
    EXPECT_EQ(a1, b1);
    EXPECT_EQ(a2, b2);
}

TEST(SweepRunner, CurrentJobVisibleInsideBodyOnly)
{
    EXPECT_EQ(JobContext::current(), nullptr);
    SweepOptions opts;
    opts.jobs = 2;
    SweepRunner sweep(opts);
    std::atomic<bool> saw_self{false};
    sweep.add("ctx/self", [&](JobContext &ctx) {
        saw_self = JobContext::current() == &ctx;
    });
    sweep.run();
    EXPECT_TRUE(saw_self.load());
    EXPECT_EQ(JobContext::current(), nullptr);
}

TEST(SweepRunner, ShutdownDrainSkipsUnstartedJobs)
{
    // With drainOnShutdown on (the bench default), a shutdown
    // request raised mid-sweep lets in-flight jobs finish but skips
    // everything not yet started, counting them as interrupted.
    resetShutdownForTests();
    SweepOptions opts;
    opts.jobs = 1;   // serial: deterministic skip point
    SweepRunner sweep(opts);
    std::atomic<int> ran{0};
    sweep.add("drain/first", [&](JobContext &) {
        ++ran;
        requestShutdown();
    });
    for (int i = 0; i < 3; ++i)
        sweep.add("drain/late" + std::to_string(i),
                  [&](JobContext &) { ++ran; });
    sweep.run();
    EXPECT_EQ(ran.load(), 1);
    EXPECT_EQ(sweep.interruptedJobs(), 3u);
    resetShutdownForTests();
}

TEST(SweepRunner, ShutdownIgnoredWhenDrainDisabled)
{
    // The serve daemon's mode: its own drain must still ANSWER
    // every admitted request, so its per-request runners keep
    // executing even while the process-wide flag is up.
    resetShutdownForTests();
    requestShutdown();
    SweepOptions opts;
    opts.jobs = 1;
    opts.drainOnShutdown = false;
    SweepRunner sweep(opts);
    std::atomic<int> ran{0};
    for (int i = 0; i < 3; ++i)
        sweep.add("noskip/job" + std::to_string(i),
                  [&](JobContext &) { ++ran; });
    sweep.run();
    EXPECT_EQ(ran.load(), 3);
    EXPECT_EQ(sweep.interruptedJobs(), 0u);
    resetShutdownForTests();
}

TEST(SweepRunner, SerialFallbackRunsInline)
{
    // jobs=1 must run on the calling thread (no pool), preserving
    // submission order exactly.
    std::vector<int> order;
    std::thread::id main_id = std::this_thread::get_id();
    bool all_on_main = true;
    SweepOptions opts;
    opts.jobs = 1;
    SweepRunner sweep(opts);
    for (int i = 0; i < 5; ++i)
        sweep.add("serial/job" + std::to_string(i),
                  [&, i](JobContext &) {
                      order.push_back(i);
                      all_on_main &=
                          std::this_thread::get_id() == main_id;
                  });
    sweep.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
    EXPECT_TRUE(all_on_main);
}

// ----- lane batches (addBatch) -------------------------------------

TEST(SweepRunner, BatchRetriesOnlyFailingLanes)
{
    // One batch runs serially across its attempts, so plain capture
    // is race-free.
    std::vector<std::vector<size_t>> attemptSlots;
    SweepOptions opts;
    opts.jobs = 2;
    opts.lanes = 4;
    opts.maxAttempts = 2;
    SweepRunner sweep(opts);
    sweep.addBatch(
        "batch/study",
        {"batch/l0", "batch/l1", "batch/l2", "batch/l3"},
        [&](BatchContext &bctx) {
            std::vector<size_t> slots;
            for (size_t k = 0; k < bctx.laneCount(); ++k)
                slots.push_back(bctx.laneSlot(k));
            attemptSlots.push_back(slots);
            for (size_t k = 0; k < bctx.laneCount(); ++k) {
                JobContext &lane = bctx.lane(k);
                lane.publish("attempt",
                             static_cast<double>(lane.attempt()));
                if (lane.attempt() == 0 && bctx.laneSlot(k) == 2)
                    bctx.failLane(k, "transient lane bug");
            }
        });
    ASSERT_EQ(sweep.jobCount(), 4u);
    sweep.run();
    EXPECT_TRUE(sweep.failures().empty());

    // Attempt 0 runs every lane; attempt 1 only the failing one.
    ASSERT_EQ(attemptSlots.size(), 2u);
    EXPECT_EQ(attemptSlots[0], (std::vector<size_t>{0, 1, 2, 3}));
    EXPECT_EQ(attemptSlots[1], (std::vector<size_t>{2}));

    // Completed lanes kept their first-attempt staging; the retried
    // lane replaced its own.
    EXPECT_EQ(sweep.job(0).publishedValue("attempt"), 0.0);
    EXPECT_EQ(sweep.job(1).publishedValue("attempt"), 0.0);
    EXPECT_EQ(sweep.job(2).publishedValue("attempt"), 1.0);
    EXPECT_EQ(sweep.job(3).publishedValue("attempt"), 0.0);
}

TEST(SweepRunner, BatchBodyThrowFailsAllActiveLanesThenRetries)
{
    std::vector<size_t> attemptWidths;
    SweepOptions opts;
    opts.jobs = 2;
    opts.lanes = 3;
    opts.maxAttempts = 2;
    SweepRunner sweep(opts);
    sweep.addBatch("throw/batch", {"throw/a", "throw/b", "throw/c"},
                   [&](BatchContext &bctx) {
                       attemptWidths.push_back(bctx.laneCount());
                       if (bctx.lane(0).attempt() == 0)
                           throw std::runtime_error(
                               "whole-batch transient");
                   });
    sweep.run();
    EXPECT_TRUE(sweep.failures().empty());
    // The throw failed every active lane, so the retry re-runs all 3.
    EXPECT_EQ(attemptWidths, (std::vector<size_t>{3, 3}));
}

TEST(SweepRunner, BatchExhaustedLaneFailureCarriesBatchAndLane)
{
    SweepOptions opts;
    opts.jobs = 1;
    opts.lanes = 3;
    opts.maxAttempts = 2;
    SweepRunner sweep(opts);
    sweep.addBatch("fatal/batch", {"fatal/f0", "fatal/f1", "fatal/f2"},
                   [&](BatchContext &bctx) {
                       for (size_t k = 0; k < bctx.laneCount(); ++k)
                           if (bctx.laneSlot(k) == 1)
                               bctx.failLane(k, "permanent lane bug");
                   });
    const auto &failures = sweep.run();
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_EQ(failures[0].job, "fatal/f1");
    EXPECT_EQ(failures[0].index, 1u);
    EXPECT_EQ(failures[0].attempts, 2);
    EXPECT_EQ(failures[0].batch, "fatal/batch");
    EXPECT_EQ(failures[0].lane, 1);
    EXPECT_NE(failures[0].error.find("permanent lane bug"),
              std::string::npos);
}

TEST(SweepRunner, BatchChunksByLaneWidthWithStableNames)
{
    // 5 lanes at width 2 split into b0/b1/b2 of widths 2, 2, 1;
    // jobs=1 runs them inline in submission order.
    std::vector<std::pair<std::string, size_t>> groups;
    SweepOptions opts;
    opts.jobs = 1;
    opts.lanes = 2;
    SweepRunner sweep(opts);
    std::vector<std::string> names;
    for (int i = 0; i < 5; ++i)
        names.push_back("chunk/l" + std::to_string(i));
    sweep.addBatch("chunk", names, [&](BatchContext &bctx) {
        groups.emplace_back(bctx.name(), bctx.width());
    });
    EXPECT_EQ(sweep.jobCount(), 5u);
    sweep.run();
    ASSERT_EQ(groups.size(), 3u);
    EXPECT_EQ(groups[0],
              (std::pair<std::string, size_t>{"chunk/b0", 2}));
    EXPECT_EQ(groups[1],
              (std::pair<std::string, size_t>{"chunk/b1", 2}));
    EXPECT_EQ(groups[2],
              (std::pair<std::string, size_t>{"chunk/b2", 1}));
}

TEST(SweepRunner, BatchCostsAndOccupancyReachProfiler)
{
    prof::Profiler &prof = prof::Profiler::instance();
    prof.clear();
    prof.setHwCountersEnabled(false);
    prof.arm();

    SweepOptions opts;
    opts.jobs = 1;
    opts.lanes = 2;
    opts.maxAttempts = 2;
    SweepRunner sweep(opts);
    sweep.addBatch("prof/batch", {"prof/p0", "prof/p1"},
                   [&](BatchContext &bctx) {
                       for (size_t k = 0; k < bctx.laneCount(); ++k) {
                           JobContext &lane = bctx.lane(k);
                           if (lane.attempt() == 0 &&
                               bctx.laneSlot(k) == 1)
                               bctx.failLane(k, "flaky lane");
                       }
                   });
    sweep.run();
    prof.disarm();

    auto costs = prof.jobCosts();
    ASSERT_EQ(costs.size(), 2u);
    EXPECT_EQ(costs[0].job, "prof/p0");
    EXPECT_EQ(costs[0].batch, "prof/batch");
    EXPECT_EQ(costs[0].lane, 0);
    EXPECT_EQ(costs[0].laneWidth, 2);
    EXPECT_EQ(costs[0].attempts, 1);
    EXPECT_EQ(costs[0].attemptOutcomes,
              (std::vector<std::string>{"ok"}));
    EXPECT_EQ(costs[1].job, "prof/p1");
    EXPECT_EQ(costs[1].lane, 1);
    EXPECT_EQ(costs[1].attempts, 2);
    EXPECT_EQ(costs[1].attemptOutcomes,
              (std::vector<std::string>{"error", "ok"}));
    EXPECT_FALSE(costs[1].failed);

    // Attempt 0 ran both lanes, attempt 1 only the flaky one:
    // 3 active lanes over 2 attempts of width 2 = 75% occupancy.
    auto occupancy = prof.batchOccupancy();
    ASSERT_EQ(occupancy.count("prof/batch"), 1u);
    EXPECT_EQ(occupancy["prof/batch"].attempts, 2u);
    EXPECT_EQ(occupancy["prof/batch"].activeLanes, 3u);
    EXPECT_EQ(occupancy["prof/batch"].width, 2u);
    EXPECT_DOUBLE_EQ(occupancy["prof/batch"].occupancy(), 0.75);

    prof.clear();
}

#if ASH_GUARD_FAULTS
TEST(SweepRunner, LanesBatchFaultSiteFailsAttemptThenRetries)
{
    // The injected fault fires at ASH_FAULT_POINT("lanes.batch"),
    // before the body runs, so attempt 0 never reaches the body and
    // every lane retries.
    struct ArmedPlan
    {
        explicit ArmedPlan(const std::string &spec)
        {
            guard::FaultPlan plan;
            std::string err;
            EXPECT_TRUE(guard::FaultPlan::parse(spec, plan, &err))
                << err;
            guard::FaultInjector::instance().arm(std::move(plan));
        }
        ~ArmedPlan() { guard::FaultInjector::instance().disarm(); }
    } armed("lanes.batch:error:count=1");

    std::vector<size_t> bodyWidths;
    SweepOptions opts;
    opts.jobs = 1;
    opts.lanes = 2;
    opts.maxAttempts = 2;
    opts.backoffBaseMs = 0;
    SweepRunner sweep(opts);
    sweep.addBatch("chaos/batch", {"chaos/c0", "chaos/c1"},
                   [&](BatchContext &bctx) {
                       bodyWidths.push_back(bctx.laneCount());
                   });
    sweep.run();
    EXPECT_TRUE(sweep.failures().empty());
    EXPECT_EQ(bodyWidths, (std::vector<size_t>{2}));
}
#endif

} // namespace
} // namespace ash::exec
