/**
 * @file
 * Tests for the observability layer: histogram bucketing, the JSON
 * writer/validator, StatSet export and scoped merging, the bench
 * report registry, and an end-to-end trace smoke test that runs the
 * chip model with tracing enabled and checks the exported Chrome
 * trace_event file.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "common/Json.h"
#include "common/Stats.h"
#include "core/arch/AshSim.h"
#include "core/compiler/Compiler.h"
#include "obs/Report.h"
#include "obs/Trace.h"
#include "tests/TestUtil.h"
#include "verilog/Compile.h"

namespace ash {
namespace {

TEST(Histogram, BucketBoundaries)
{
    EXPECT_EQ(Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Histogram::bucketOf(1), 1u);
    EXPECT_EQ(Histogram::bucketOf(2), 2u);
    EXPECT_EQ(Histogram::bucketOf(3), 2u);
    EXPECT_EQ(Histogram::bucketOf(4), 3u);
    EXPECT_EQ(Histogram::bucketOf(7), 3u);
    EXPECT_EQ(Histogram::bucketOf(8), 4u);
    EXPECT_EQ(Histogram::bucketOf(1023), 10u);
    EXPECT_EQ(Histogram::bucketOf(1024), 11u);
    EXPECT_EQ(Histogram::bucketOf(~0ull), 63u);

    // Every bucket's [low, high] range must map back to itself.
    for (unsigned b = 0; b < Histogram::kBuckets; ++b) {
        EXPECT_EQ(Histogram::bucketOf(Histogram::bucketLow(b)), b);
        EXPECT_EQ(Histogram::bucketOf(Histogram::bucketHigh(b)), b);
    }
}

TEST(Histogram, RecordAndSummaries)
{
    Histogram h;
    for (uint64_t v : {0ull, 1ull, 5ull, 5ull, 100ull})
        h.record(v);
    EXPECT_EQ(h.count, 5u);
    EXPECT_EQ(h.sum, 111u);
    EXPECT_EQ(h.minValue, 0u);
    EXPECT_EQ(h.maxValue, 100u);
    EXPECT_DOUBLE_EQ(h.mean(), 111.0 / 5.0);
    EXPECT_EQ(h.buckets[0], 1u);                     // The zero.
    EXPECT_EQ(h.buckets[Histogram::bucketOf(5)], 2u);

    // p50 lands in the bucket of 5 ([4,7]); p100's bucket bound
    // ([64,127]) is tightened to the observed max.
    EXPECT_EQ(h.percentileUpperBound(0.5), 7u);
    EXPECT_EQ(h.percentileUpperBound(1.0), 100u);
}

TEST(Histogram, Merge)
{
    Histogram a, b;
    a.record(3);
    a.record(9);
    b.record(0);
    b.record(200);
    a.merge(b);
    EXPECT_EQ(a.count, 4u);
    EXPECT_EQ(a.sum, 212u);
    EXPECT_EQ(a.minValue, 0u);
    EXPECT_EQ(a.maxValue, 200u);
    EXPECT_EQ(a.buckets[0], 1u);
    EXPECT_EQ(a.buckets[Histogram::bucketOf(200)], 1u);
}

TEST(Json, WriterProducesValidDocuments)
{
    JsonWriter w(/*pretty=*/true);
    w.beginObject();
    w.kv("str", "a \"quoted\" string\nwith control\x01 chars");
    w.kv("int", uint64_t{42});
    w.kv("neg", -7.25);
    w.key("arr").beginArray().value(uint64_t{1}).value("two")
        .endArray();
    w.key("empty").beginObject().endObject();
    w.endObject();
    std::string err;
    EXPECT_TRUE(jsonValid(w.str(), &err)) << err << "\n" << w.str();
}

TEST(Json, ValidatorRejectsMalformed)
{
    EXPECT_TRUE(jsonValid("{\"a\": [1, 2.5e3, null, true, \"x\"]}"));
    EXPECT_FALSE(jsonValid(""));
    EXPECT_FALSE(jsonValid("{"));
    EXPECT_FALSE(jsonValid("{\"a\": 1,}"));
    EXPECT_FALSE(jsonValid("{\"a\": 1} trailing"));
    EXPECT_FALSE(jsonValid("{'a': 1}"));
    EXPECT_FALSE(jsonValid("{\"a\": 01}"));
}

TEST(StatSet, ToJsonShapeAndValidity)
{
    StatSet s;
    s.inc("tile0.commits", 10);
    s.sample("occupancy", 3.5);
    s.sample("occupancy", 4.5);
    s.hist("taskLength", 12);
    s.hist("taskLength", 40);

    std::string doc = s.toJson();
    std::string err;
    ASSERT_TRUE(jsonValid(doc, &err)) << err << "\n" << doc;

    // Shape: the three sections and the recorded names are present.
    EXPECT_NE(doc.find("\"counters\""), std::string::npos);
    EXPECT_NE(doc.find("\"accumulators\""), std::string::npos);
    EXPECT_NE(doc.find("\"histograms\""), std::string::npos);
    EXPECT_NE(doc.find("\"tile0.commits\": 10"), std::string::npos);
    EXPECT_NE(doc.find("\"occupancy\""), std::string::npos);
    EXPECT_NE(doc.find("\"taskLength\""), std::string::npos);
    EXPECT_NE(doc.find("\"p50\""), std::string::npos);
    EXPECT_NE(doc.find("\"buckets\""), std::string::npos);
}

TEST(StatSet, ScopedWritesAndMerge)
{
    StatSet s;
    StatScope tile = s.scope("tile3");
    tile.inc("commits", 2);
    tile.scope("l1d").inc("misses", 5);
    EXPECT_EQ(s.get("tile3.commits"), 2u);
    EXPECT_EQ(s.get("tile3.l1d.misses"), 5u);

    StatSet run;
    run.inc("aborts", 7);
    run.sample("occ", 1.0);
    run.hist("len", 8);
    s.mergeScoped("sash.gcd", run);
    EXPECT_EQ(s.get("sash.gcd.aborts"), 7u);
    EXPECT_EQ(s.accum("sash.gcd.occ").count, 1u);
    EXPECT_EQ(s.histogram("sash.gcd.len").count, 1u);

    // Merging twice accumulates rather than overwriting.
    s.mergeScoped("sash.gcd", run);
    EXPECT_EQ(s.get("sash.gcd.aborts"), 14u);
}

TEST(Geomean, SkipsNonPositiveValuesWithWarning)
{
    const double ok[] = {2.0, 8.0};
    EXPECT_DOUBLE_EQ(geomean(ok, 2), 4.0);

    testing::internal::CaptureStderr();
    const double mixed[] = {2.0, 0.0, 8.0};
    double g = geomean(mixed, 3);
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_DOUBLE_EQ(g, 4.0);   // The zero is skipped, not -inf.
    EXPECT_NE(err.find("geomean"), std::string::npos);
    EXPECT_NE(err.find("[WARN"), std::string::npos);

    const double none[] = {0.0, -1.0};
    testing::internal::CaptureStderr();
    EXPECT_DOUBLE_EQ(geomean(none, 2), 0.0);
    testing::internal::GetCapturedStderr();
}

TEST(Report, RecordsAndExportsSpeedups)
{
    obs::Report report;
    report.setName("table5_speeds");
    report.record("speedup.sash_vs_zen2.gcd", 12.5);
    report.record("speedup.sash_vs_zen2.gmean", 10.0);
    EXPECT_DOUBLE_EQ(report.get("speedup.sash_vs_zen2.gcd"), 12.5);
    EXPECT_TRUE(std::isnan(report.get("missing")));

    StatSet run;
    run.inc("aborts", 3);
    report.recordStats("sash.gcd", run);

    std::string doc = report.toJson();
    std::string err;
    ASSERT_TRUE(jsonValid(doc, &err)) << err << "\n" << doc;
    EXPECT_NE(doc.find("\"bench\": \"table5_speeds\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"speedup.sash_vs_zen2.gcd\": 12.5"),
              std::string::npos);
    EXPECT_NE(doc.find("\"sash.gcd.aborts\": 3"), std::string::npos);
}

TEST(Report, ParseArgsConsumesKnownFlagsOnly)
{
    obs::Report report;
    const char *raw[] = {"bench",  "--stats-json", "out.json",
                         "--mine", "--trace-events", "128",
                         "value"};
    char *argv[7];
    for (int i = 0; i < 7; ++i)
        argv[i] = const_cast<char *>(raw[i]);
    int argc = 7;
    EXPECT_TRUE(report.parseArgs(argc, argv));
    EXPECT_EQ(argc, 3);
    EXPECT_STREQ(argv[1], "--mine");
    EXPECT_STREQ(argv[2], "value");
    EXPECT_EQ(report.statsJsonPath(), "out.json");
    EXPECT_FALSE(report.traceRequested());

    // A known flag with no value is a usage error.
    const char *bad[] = {"bench", "--trace"};
    char *bargv[2];
    for (int i = 0; i < 2; ++i)
        bargv[i] = const_cast<char *>(bad[i]);
    int bargc = 2;
    testing::internal::CaptureStderr();
    EXPECT_FALSE(report.parseArgs(bargc, bargv));
    testing::internal::GetCapturedStderr();
}

/** Run the 4-tile chip model with tracing on; check the export. */
TEST(Tracer, ChipRunProducesValidChromeTrace)
{
#if !ASH_OBS_TRACE
    GTEST_SKIP() << "tracer compiled out (ASH_OBS_TRACE_ENABLED=OFF)";
#endif
    obs::Tracer &tracer = obs::Tracer::global();
    tracer.clear();
    tracer.setEnabled(true);

    rtl::Netlist nl =
        verilog::compileVerilog(test::mixedFixture(), "top");
    core::CompilerOptions copts;
    copts.numTiles = 4;
    copts.maxTaskCost = 8;
    core::TaskProgram prog = core::compile(nl, copts);
    core::ArchConfig acfg;
    acfg.numTiles = 4;
    acfg.coresPerTile = 2;
    acfg.selective = true;
    core::AshSimulator sim(prog, acfg);
    test::FnStimulus stim(test::mixedStimulus(1));
    sim.run(stim, 30);

    tracer.setEnabled(false);
    EXPECT_GT(tracer.eventCount(), 0u);
    EXPECT_GE(tracer.maxTile(), 1);   // Activity beyond tile 0.

    std::string path =
        testing::TempDir() + "/ash_obs_trace_test.json";
    ASSERT_TRUE(tracer.exportChromeJson(path));

    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string doc;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        doc.append(buf, n);
    std::fclose(f);
    std::remove(path.c_str());

    std::string err;
    ASSERT_TRUE(jsonValid(doc, &err)) << err;
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("\"task.dispatch\""), std::string::npos);
    EXPECT_NE(doc.find("\"task.commit\""), std::string::npos);
    // Dispatches on at least two distinct tiles (pids).
    bool tile0 = doc.find("\"name\": \"tile0\"") != std::string::npos;
    bool tile1 = doc.find("\"name\": \"tile1\"") != std::string::npos;
    EXPECT_TRUE(tile0 && tile1) << "expected >=2 tiles with events";

    tracer.clear();
}

/** With the tracer disabled, instrumented runs record nothing. */
TEST(Tracer, DisabledRecordsNothing)
{
    obs::Tracer &tracer = obs::Tracer::global();
    tracer.clear();
    tracer.setEnabled(false);

    rtl::Netlist nl =
        verilog::compileVerilog(test::mixedFixture(), "top");
    core::CompilerOptions copts;
    copts.numTiles = 2;
    core::TaskProgram prog = core::compile(nl, copts);
    core::ArchConfig acfg;
    acfg.numTiles = 2;
    core::AshSimulator sim(prog, acfg);
    test::FnStimulus stim(test::mixedStimulus(2));
    sim.run(stim, 10);

    EXPECT_EQ(tracer.eventCount(), 0u);
}

TEST(Tracer, RingOverwritesOldestAndCountsDrops)
{
    obs::Tracer tracer;
    tracer.setCapacityPerTile(4);
    for (uint64_t i = 0; i < 10; ++i)
        tracer.record(obs::makeEvent(obs::EventKind::TaskDispatch, i,
                                     1, /*tile=*/0, 0, i, 0));
    EXPECT_EQ(tracer.eventCount(), 4u);
    EXPECT_EQ(tracer.droppedCount(), 6u);
    // The survivors are the newest four: ts 6..9.
    std::string doc = tracer.toChromeJson();
    EXPECT_EQ(doc.find("\"ts\": 5"), std::string::npos);
    EXPECT_NE(doc.find("\"ts\": 9"), std::string::npos);
}

} // namespace
} // namespace ash
