/**
 * @file
 * Unit tests for the hot-path data structures backing the cycle-level
 * engines: SlotAllocator (dense slot ids for the compiler's argument
 * slot maps), SortedPool (the pooled std::map replacement behind the
 * AQ/TCQ) and EventHeap (the indexed scheduler queue). The pooled
 * structures carry the engines' determinism contract, so the tests
 * pin iteration order, std::map-equivalent semantics, recycling
 * behavior, and — for the event heap — bit-identical pop order
 * against std::priority_queue.
 */

#include <gtest/gtest.h>

#include <map>
#include <queue>
#include <string>
#include <vector>

#include "common/EventHeap.h"
#include "common/Random.h"
#include "common/SlotAllocator.h"
#include "common/SortedPool.h"

using namespace ash;

// ============================================================================
// SlotAllocator
// ============================================================================

TEST(SlotAllocator, FirstComeFirstServedDense)
{
    SlotAllocator s;
    EXPECT_EQ(s.add(100), 0u);
    EXPECT_EQ(s.add(7), 1u);
    EXPECT_EQ(s.add(100), 0u);   // Idempotent.
    EXPECT_EQ(s.add(55), 2u);
    EXPECT_EQ(s.size(), 3u);
    EXPECT_EQ(s.slot(7), 1u);
    EXPECT_EQ(s.slot(55), 2u);
    EXPECT_EQ(s.slot(8), SlotAllocator::npos);
    std::vector<uint32_t> expect = {100, 7, 55};
    EXPECT_EQ(s.keys(), expect);
}

TEST(SlotAllocator, SparseKeys)
{
    SlotAllocator s;
    EXPECT_EQ(s.add(1u << 20), 0u);
    EXPECT_EQ(s.add(0), 1u);
    EXPECT_EQ(s.slot(1u << 20), 0u);
    EXPECT_EQ(s.slot(123), SlotAllocator::npos);
}

// ============================================================================
// SortedPool
// ============================================================================

TEST(SortedPool, IterationMatchesStdMapOrder)
{
    SortedPool<int, int> pool;
    std::map<int, int> ref;
    Rng rng(42);
    for (int i = 0; i < 200; ++i) {
        int k = static_cast<int>(rng.below(64));
        if (rng.below(3) == 0) {
            pool.erase(k);
            ref.erase(k);
        } else {
            auto [it, fresh] = pool.emplace(k);
            if (fresh)
                it->second = 0;   // Reset recycled slot.
            it->second += i;
            ref[k] += i;
        }
        ASSERT_EQ(pool.size(), ref.size());
        auto rit = ref.begin();
        for (auto pit = pool.begin(); pit != pool.end();
             ++pit, ++rit) {
            ASSERT_EQ(pit->first, rit->first);
            ASSERT_EQ(pit->second, rit->second);
        }
    }
}

TEST(SortedPool, FindLowerUpperBound)
{
    SortedPool<int, int> pool;
    for (int k : {10, 20, 30})
        pool.emplace(k).first->second = k * 2;
    EXPECT_EQ(pool.find(20)->second, 40);
    EXPECT_EQ(pool.find(25), pool.end());
    EXPECT_EQ(pool.lower_bound(20)->first, 20);
    EXPECT_EQ(pool.lower_bound(21)->first, 30);
    EXPECT_EQ(pool.upper_bound(20)->first, 30);
    EXPECT_EQ(pool.upper_bound(30), pool.end());
    EXPECT_EQ(pool.count(10), 1u);
    EXPECT_EQ(pool.count(11), 0u);
}

TEST(SortedPool, EraseReturnsNextLikeStdMap)
{
    SortedPool<int, int> pool;
    for (int k : {1, 2, 3, 4})
        pool.emplace(k);
    auto it = pool.find(2);
    it = pool.erase(it);
    EXPECT_EQ(it->first, 3);
    // Erase the last element: returns end(). (Erase first — the
    // end() position depends on the post-erase size.)
    it = pool.erase(pool.find(4));
    EXPECT_EQ(it, pool.end());
    EXPECT_EQ(pool.size(), 2u);
}

/**
 * The recycling contract: an erased slot is reused by a later
 * emplace with its old contents intact (capacity win), so call sites
 * must reset live fields — and after they do, no stale state leaks.
 * This mirrors the TCQ lifecycle: dispatch fills an entry's undo
 * log, commit erases it in place, the next dispatch must not observe
 * the previous instance's undo records.
 */
TEST(SortedPool, RecycleThenReuseNoStaleState)
{
    struct Entry
    {
        std::vector<int> undo;
    };
    SortedPool<int, Entry> pool;
    auto [it, fresh] = pool.emplace(5);
    ASSERT_TRUE(fresh);
    it->second.undo = {1, 2, 3};
    pool.erase(pool.find(5));
    EXPECT_EQ(pool.poolCapacity(), 1u);

    // The recycled slot hands back the stale vector...
    auto [it2, fresh2] = pool.emplace(9);
    ASSERT_TRUE(fresh2);
    EXPECT_EQ(pool.poolCapacity(), 1u);   // Same slot, no new alloc.
    EXPECT_EQ(it2->second.undo.size(), 3u);   // Stale, by contract.
    size_t cap = it2->second.undo.capacity();
    // ...and the engine-style reset clears it without reallocating.
    it2->second.undo.clear();
    EXPECT_TRUE(it2->second.undo.empty());
    EXPECT_EQ(it2->second.undo.capacity(), cap);
}

TEST(SortedPool, ClearRecyclesAllSlots)
{
    SortedPool<int, int> pool;
    for (int k = 0; k < 8; ++k)
        pool.emplace(k);
    EXPECT_EQ(pool.poolCapacity(), 8u);
    pool.clear();
    EXPECT_TRUE(pool.empty());
    for (int k = 0; k < 8; ++k)
        pool.emplace(k + 100);
    EXPECT_EQ(pool.poolCapacity(), 8u);   // All reused, none grown.
}

// ============================================================================
// EventHeap
// ============================================================================

TEST(EventHeap, PopsInTimeOrder)
{
    EventHeap<int, TiePolicy::Fifo> heap;
    Rng rng(7);
    std::vector<uint64_t> times;
    for (int i = 0; i < 500; ++i) {
        uint64_t t = rng.below(1000);
        times.push_back(t);
        heap.push(t, i);
    }
    std::sort(times.begin(), times.end());
    for (uint64_t t : times) {
        ASSERT_EQ(heap.topTime(), t);
        heap.pop();
    }
    EXPECT_TRUE(heap.empty());
}

TEST(EventHeap, FifoPolicyBreaksTiesByInsertion)
{
    EventHeap<std::string, TiePolicy::Fifo> heap;
    heap.push(5, "b");
    heap.push(3, "a");
    heap.push(5, "c");
    heap.push(5, "d");
    EXPECT_EQ(heap.pop(), "a");
    // All time-5 events pop in insertion order.
    EXPECT_EQ(heap.pop(), "b");
    EXPECT_EQ(heap.pop(), "c");
    EXPECT_EQ(heap.pop(), "d");
}

/**
 * The determinism contract of the engines: with TiePolicy::Compat
 * the pop order — including the layout-dependent order of equal-time
 * events — must be bit-identical to std::priority_queue with a
 * time-only greater-than, because chip-cycle results depend on it.
 */
TEST(EventHeap, CompatMatchesPriorityQueueExactly)
{
    struct Ev
    {
        uint64_t time;
        uint32_t payload;
        bool operator>(const Ev &o) const { return time > o.time; }
    };
    EventHeap<Ev, TiePolicy::Compat> heap;
    std::priority_queue<Ev, std::vector<Ev>, std::greater<Ev>> ref;
    Rng rng(99);
    for (int round = 0; round < 50; ++round) {
        // Interleave bursts of pushes (with heavy time collisions)
        // and pops, as the engine's event loop does.
        for (int i = 0; i < 40; ++i) {
            Ev e{rng.below(16), static_cast<uint32_t>(rng.next())};
            heap.push(e.time, e);
            ref.push(e);
        }
        for (int i = 0; i < 30 && !ref.empty(); ++i) {
            Ev expect = ref.top();
            ref.pop();
            Ev got = heap.pop();
            ASSERT_EQ(got.time, expect.time);
            ASSERT_EQ(got.payload, expect.payload);
        }
    }
    while (!ref.empty()) {
        Ev expect = ref.top();
        ref.pop();
        Ev got = heap.pop();
        ASSERT_EQ(got.time, expect.time);
        ASSERT_EQ(got.payload, expect.payload);
    }
    EXPECT_TRUE(heap.empty());
}

TEST(EventHeap, RecyclesPayloadSlots)
{
    EventHeap<std::vector<int>, TiePolicy::Fifo> heap;
    heap.push(1, std::vector<int>(100, 7));
    heap.push(2, std::vector<int>(100, 8));
    EXPECT_EQ(heap.pop().front(), 7);
    // Slot freed by pop is reused for the next push.
    heap.push(3, std::vector<int>(50, 9));
    EXPECT_EQ(heap.pop().front(), 8);
    EXPECT_EQ(heap.pop().front(), 9);
    EXPECT_TRUE(heap.empty());
}

/**
 * The two tie policies are genuinely different orders: on a
 * tie-heavy workload both pop time-sorted sequences, but the
 * equal-time order diverges (Compat follows heap layout, Fifo
 * follows insertion). Guards against a refactor quietly collapsing
 * the policies into one.
 */
TEST(EventHeap, CompatAndFifoDivergeOnTies)
{
    EventHeap<uint32_t, TiePolicy::Compat> compat;
    EventHeap<uint32_t, TiePolicy::Fifo> fifo;
    Rng rng(31);
    std::vector<uint32_t> compatOrder, fifoOrder;
    auto drain = [&](auto &heap, std::vector<uint32_t> &order,
                     int n) {
        uint64_t last = 0;
        for (int i = 0; i < n && !heap.empty(); ++i) {
            uint64_t t = heap.topTime();
            ASSERT_GE(t, last);   // Time order always holds.
            last = t;
            order.push_back(heap.pop());
        }
    };
    uint32_t id = 0;
    for (int round = 0; round < 10; ++round) {
        for (int i = 0; i < 30; ++i) {
            // Only 4 distinct times: ties everywhere.
            uint64_t t = rng.below(4);
            compat.push(t, id);
            fifo.push(t, id);
            ++id;
        }
        drain(compat, compatOrder, 20);
        drain(fifo, fifoOrder, 20);
    }
    drain(compat, compatOrder, 1 << 20);
    drain(fifo, fifoOrder, 1 << 20);
    ASSERT_EQ(compatOrder.size(), fifoOrder.size());
    // Same multiset of events, different sequence.
    EXPECT_NE(compatOrder, fifoOrder);
    std::vector<uint32_t> a = compatOrder, b = fifoOrder;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
}

/**
 * Checkpoint round trip: rebuilding a Compat heap through
 * visitEntries()/restoreEntry() must reproduce the exact pop order —
 * including equal-time ties and interleaved post-restore pushes —
 * because engine snapshots serialize their event queues this way.
 */
TEST(EventHeap, CheckpointRoundTripPreservesCompatTieOrder)
{
    EventHeap<uint32_t, TiePolicy::Compat> orig;
    Rng rng(57);
    // Mixed pushes and pops so the slot pool has recycled holes.
    for (int i = 0; i < 200; ++i) {
        orig.push(rng.below(8), static_cast<uint32_t>(i));
        if (i % 3 == 0)
            orig.pop();
    }

    EventHeap<uint32_t, TiePolicy::Compat> restored;
    orig.visitEntries([&](uint64_t time, uint32_t seq,
                          const uint32_t &payload) {
        restored.restoreEntry(time, seq, payload);
    });
    restored.restoreSeq(orig.nextSeq());
    ASSERT_EQ(restored.size(), orig.size());

    // Keep exercising both heaps identically after the round trip.
    Rng rng2(58);
    for (int round = 0; round < 8; ++round) {
        for (int i = 0; i < 10; ++i) {
            uint64_t t = rng2.below(8);
            uint32_t v = 1000 + static_cast<uint32_t>(rng2.next() %
                                                      1000);
            orig.push(t, v);
            restored.push(t, v);
        }
        for (int i = 0; i < 15 && !orig.empty(); ++i) {
            ASSERT_EQ(restored.topTime(), orig.topTime());
            ASSERT_EQ(restored.pop(), orig.pop());
        }
    }
    while (!orig.empty()) {
        ASSERT_EQ(restored.topTime(), orig.topTime());
        ASSERT_EQ(restored.pop(), orig.pop());
    }
    EXPECT_TRUE(restored.empty());
}
