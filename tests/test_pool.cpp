/**
 * @file
 * Tests for the supervised worker pool (src/pool): frame integrity
 * on the socketpair wire, the per-key circuit-breaker state machine
 * driven with injected time (no sleeps), and the supervisor
 * end-to-end — a worker that dies mid-request comes back as a
 * structured worker_crash, the slot respawns, and the next request
 * succeeds; a worker that blows its deadline is killed and reported
 * as worker_timeout; a crash-looping key trips the breaker and
 * recovers through a half-open probe.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

#include "ckpt/Snapshot.h"
#include "pool/Breaker.h"
#include "pool/Ipc.h"
#include "pool/Supervisor.h"

namespace ash::pool {
namespace {

// ---------------------------------------------------------------
// IPC framing
// ---------------------------------------------------------------

TEST(PoolIpc, FrameRoundTrip)
{
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

    std::string payload = "{\"hello\": \"world\"}";
    EXPECT_TRUE(writeFrame(sv[0], payload));

    std::string got;
    EXPECT_EQ(readFrame(sv[1], got, 1000), FrameResult::Ok);
    EXPECT_EQ(got, payload);

    // Peer close reads as Eof, not an error.
    ::close(sv[0]);
    EXPECT_EQ(readFrame(sv[1], got, 1000), FrameResult::Eof);
    ::close(sv[1]);
}

TEST(PoolIpc, CorruptCrcIsDetected)
{
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

    // Hand-build a frame whose CRC does not match its payload.
    const std::string payload = "{\"seq\": 1}";
    uint32_t magic = 0x41504631u;   // "APF1"
    uint32_t length = static_cast<uint32_t>(payload.size());
    uint32_t crc =
        ckpt::crc32(payload.data(), payload.size()) ^ 0xdeadbeefu;
    std::string wire;
    wire.append(reinterpret_cast<const char *>(&magic), 4);
    wire.append(reinterpret_cast<const char *>(&length), 4);
    wire.append(reinterpret_cast<const char *>(&crc), 4);
    wire += payload;
    ASSERT_EQ(::send(sv[0], wire.data(), wire.size(), 0),
              static_cast<ssize_t>(wire.size()));

    std::string got;
    EXPECT_EQ(readFrame(sv[1], got, 1000), FrameResult::Corrupt);
    ::close(sv[0]);
    ::close(sv[1]);
}

TEST(PoolIpc, BadMagicIsCorrupt)
{
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    const char junk[12] = "not-a-frame";
    ASSERT_EQ(::send(sv[0], junk, sizeof(junk), 0),
              static_cast<ssize_t>(sizeof(junk)));
    std::string got;
    EXPECT_EQ(readFrame(sv[1], got, 1000), FrameResult::Corrupt);
    ::close(sv[0]);
    ::close(sv[1]);
}

TEST(PoolIpc, RequestReplyCodecRoundTrip)
{
    WorkRequest req;
    req.seq = 42;
    req.scope = "serve/alice/ntt/sash";
    req.breakerKey = "deadbeef";
    req.deadlineMs = 1500;
    req.body = "{\"op\": \"sim\", \"design\": \"ntt\"}";
    WorkRequest back;
    ASSERT_TRUE(decodeRequest(encodeRequest(req), back));
    EXPECT_EQ(back.seq, req.seq);
    EXPECT_EQ(back.scope, req.scope);
    EXPECT_EQ(back.breakerKey, req.breakerKey);
    EXPECT_EQ(back.deadlineMs, req.deadlineMs);
    EXPECT_EQ(back.body, req.body);

    WorkReply rep;
    rep.seq = 42;
    rep.ok = false;
    rep.cls = "cold";
    rep.kind = "deadline_exceeded";
    rep.message = "job ran out of budget";
    rep.payload = "{\"cycles\": 8}";
    rep.wallSec = 0.25;
    rep.cpuSec = 0.125;
    WorkReply rback;
    ASSERT_TRUE(decodeReply(encodeReply(rep), rback));
    EXPECT_EQ(rback.seq, rep.seq);
    EXPECT_EQ(rback.ok, rep.ok);
    EXPECT_EQ(rback.cls, rep.cls);
    EXPECT_EQ(rback.kind, rep.kind);
    EXPECT_EQ(rback.message, rep.message);
    EXPECT_EQ(rback.payload, rep.payload);
    EXPECT_DOUBLE_EQ(rback.wallSec, rep.wallSec);
    EXPECT_DOUBLE_EQ(rback.cpuSec, rep.cpuSec);
}

// ---------------------------------------------------------------
// Circuit breaker (injected time; fully deterministic)
// ---------------------------------------------------------------

using Clock = BreakerBoard::Clock;

Clock::time_point
at(uint64_t ms)
{
    return Clock::time_point{} + std::chrono::milliseconds(ms);
}

TEST(PoolBreaker, OpensAfterThresholdAndRecovers)
{
    BreakerOptions opts;
    opts.threshold = 2;
    opts.windowMs = 1000;
    opts.cooldownMs = 500;
    BreakerBoard board(opts);

    // Healthy key: admit freely.
    EXPECT_EQ(board.admit("k", at(0)), BreakerVerdict::Allow);
    EXPECT_EQ(board.state("k"), BreakerState::Closed);

    // Two containment failures inside the window flip it open.
    board.onFailure("k", at(10));
    EXPECT_EQ(board.state("k"), BreakerState::Closed);
    board.onFailure("k", at(20));
    EXPECT_EQ(board.state("k"), BreakerState::Open);
    EXPECT_EQ(board.opens(), 1u);

    // Inside the cooldown: fast reject, no probe.
    EXPECT_EQ(board.admit("k", at(100)), BreakerVerdict::Reject);
    EXPECT_GE(board.rejected(), 1u);

    // Past the cooldown: exactly one probe; rivals still rejected.
    EXPECT_EQ(board.admit("k", at(600)), BreakerVerdict::Probe);
    EXPECT_EQ(board.state("k"), BreakerState::HalfOpen);
    EXPECT_EQ(board.admit("k", at(601)), BreakerVerdict::Reject);

    // Probe succeeds: closed again with a clean failure window.
    board.onSuccess("k", at(650));
    EXPECT_EQ(board.state("k"), BreakerState::Closed);
    board.onFailure("k", at(700));
    EXPECT_EQ(board.state("k"), BreakerState::Closed)
        << "the window must reset on recovery";
}

TEST(PoolBreaker, FailedProbeReopens)
{
    BreakerOptions opts;
    opts.threshold = 1;
    opts.windowMs = 1000;
    opts.cooldownMs = 500;
    BreakerBoard board(opts);

    board.onFailure("k", at(0));
    EXPECT_EQ(board.state("k"), BreakerState::Open);
    EXPECT_EQ(board.admit("k", at(600)), BreakerVerdict::Probe);
    board.onFailure("k", at(610));
    EXPECT_EQ(board.state("k"), BreakerState::Open);
    EXPECT_EQ(board.opens(), 2u);
    // The cooldown restarted at the probe failure.
    EXPECT_EQ(board.admit("k", at(700)), BreakerVerdict::Reject);
    EXPECT_EQ(board.admit("k", at(1200)), BreakerVerdict::Probe);
}

TEST(PoolBreaker, WindowPrunesOldFailures)
{
    BreakerOptions opts;
    opts.threshold = 2;
    opts.windowMs = 100;
    opts.cooldownMs = 500;
    BreakerBoard board(opts);

    board.onFailure("k", at(0));
    board.onFailure("k", at(500));   // First failure long expired.
    EXPECT_EQ(board.state("k"), BreakerState::Closed);
    board.onFailure("k", at(560));   // Two within 100 ms: open.
    EXPECT_EQ(board.state("k"), BreakerState::Open);
}

TEST(PoolBreaker, KeysAreIndependent)
{
    BreakerOptions opts;
    opts.threshold = 1;
    BreakerBoard board(opts);
    board.onFailure("poisoned", at(0));
    EXPECT_EQ(board.state("poisoned"), BreakerState::Open);
    EXPECT_EQ(board.admit("healthy", at(1)), BreakerVerdict::Allow);

    auto snaps = board.snapshot();
    ASSERT_EQ(snaps.size(), 2u);
    EXPECT_EQ(snaps[0].key, "healthy");
    EXPECT_EQ(snaps[1].key, "poisoned");
    EXPECT_EQ(snaps[1].opens, 1u);
}

// ---------------------------------------------------------------
// Supervisor end-to-end (real forks)
// ---------------------------------------------------------------

/** Echo handler with magic bodies: "die" hard-kills the worker
 *  mid-request; "sleep" stalls past any reasonable deadline. */
Handler
testHandler()
{
    return [](const WorkRequest &req) -> WorkReply {
        if (req.body == "die")
            ::_exit(9);
        if (req.body == "sleep")
            std::this_thread::sleep_for(std::chrono::seconds(30));
        WorkReply r;
        r.ok = true;
        r.cls = "warm";
        r.payload = "echo:" + req.body;
        return r;
    };
}

PoolOptions
fastOptions()
{
    PoolOptions po;
    po.workers = 1;
    po.respawnBaseMs = 1;
    po.respawnCapMs = 10;
    po.killGraceMs = 200;
    po.breaker.threshold = 100;   // Out of the way by default.
    return po;
}

TEST(PoolSupervisor, EchoRoundTrip)
{
    Supervisor sup(fastOptions(), testHandler());
    std::string err;
    ASSERT_TRUE(sup.start(&err)) << err;

    WorkRequest req;
    req.body = "ping";
    WorkReply r = sup.submit(req);
    EXPECT_TRUE(r.ok) << r.kind << ": " << r.message;
    EXPECT_EQ(r.payload, "echo:ping");
    EXPECT_GE(r.wallSec, 0.0);
    sup.stop();
    EXPECT_EQ(sup.submit(req).kind, "pool_stopped");
}

TEST(PoolSupervisor, CrashIsContainedAndSlotRespawns)
{
    Supervisor sup(fastOptions(), testHandler());
    std::string err;
    ASSERT_TRUE(sup.start(&err)) << err;

    WorkRequest doomed;
    doomed.body = "die";
    WorkReply r = sup.submit(doomed);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.kind, "worker_crash");

    // The very next request lands on a respawned worker.
    WorkRequest req;
    req.body = "after";
    WorkReply r2 = sup.submit(req);
    EXPECT_TRUE(r2.ok) << r2.kind << ": " << r2.message;
    EXPECT_EQ(r2.payload, "echo:after");

    PoolStats stats = sup.stats();
    EXPECT_EQ(stats.crashes, 1u);
    EXPECT_GE(stats.restarts, 1u);
    EXPECT_GE(stats.spawns, 2u);
    sup.stop();
}

TEST(PoolSupervisor, DeadlineKillsStuckWorker)
{
    Supervisor sup(fastOptions(), testHandler());
    std::string err;
    ASSERT_TRUE(sup.start(&err)) << err;

    WorkRequest stuck;
    stuck.body = "sleep";
    stuck.deadlineMs = 100;
    auto t0 = std::chrono::steady_clock::now();
    WorkReply r = sup.submit(stuck);
    auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.kind, "worker_timeout");
    EXPECT_LT(elapsed, 10) << "kill must not wait out the sleep";

    WorkRequest req;
    req.body = "recovered";
    EXPECT_TRUE(sup.submit(req).ok);
    EXPECT_EQ(sup.stats().timeouts, 1u);
    sup.stop();
}

TEST(PoolSupervisor, CrashLoopTripsBreakerThenProbeRecovers)
{
    PoolOptions po = fastOptions();
    po.breaker.threshold = 2;
    po.breaker.windowMs = 60000;
    po.breaker.cooldownMs = 150;
    Supervisor sup(po, testHandler());
    std::string err;
    ASSERT_TRUE(sup.start(&err)) << err;

    WorkRequest doomed;
    doomed.body = "die";
    doomed.breakerKey = "bad-design";
    EXPECT_EQ(sup.submit(doomed).kind, "worker_crash");
    EXPECT_EQ(sup.submit(doomed).kind, "worker_crash");

    // Breaker open: fail fast, no respawn burned.
    PoolStats before = sup.stats();
    EXPECT_EQ(sup.submit(doomed).kind, "circuit_open");
    EXPECT_EQ(sup.stats().spawns, before.spawns);
    EXPECT_GE(sup.stats().rejectedOpen, 1u);
    EXPECT_GE(sup.stats().breakerOpens, 1u);

    // Other keys are untouched by the quarantine.
    WorkRequest healthy;
    healthy.body = "fine";
    healthy.breakerKey = "good-design";
    EXPECT_TRUE(sup.submit(healthy).ok);

    // Past the cooldown a healthy probe closes the breaker.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    WorkRequest probe;
    probe.body = "probe";
    probe.breakerKey = "bad-design";
    WorkReply pr = sup.submit(probe);
    EXPECT_TRUE(pr.ok) << pr.kind << ": " << pr.message;
    EXPECT_EQ(sup.breakers().state("bad-design"),
              BreakerState::Closed);
    sup.stop();
}

TEST(PoolSupervisor, StopIsIdempotentAndReapsWorkers)
{
    Supervisor sup(fastOptions(), testHandler());
    std::string err;
    ASSERT_TRUE(sup.start(&err)) << err;
    WorkRequest req;
    req.body = "x";
    EXPECT_TRUE(sup.submit(req).ok);
    sup.stop();
    sup.stop();   // Second stop must be a no-op.
}

} // namespace
} // namespace ash::pool
