/** @file Tests for the Verilog frontend: lexer, parser, elaborator. */

#include <gtest/gtest.h>

#include "common/Logging.h"
#include "refsim/ReferenceSimulator.h"
#include "tests/TestUtil.h"
#include "verilog/Compile.h"
#include "verilog/Lexer.h"
#include "verilog/Parser.h"

namespace ash::verilog {
namespace {

using ash::test::FnStimulus;
using ash::test::evalExpr;

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

TEST(Lexer, BasicTokens)
{
    auto toks = lex("module foo; endmodule");
    ASSERT_EQ(toks.size(), 5u);   // module foo ; endmodule EOF
    EXPECT_EQ(toks[0].text, "module");
    EXPECT_EQ(toks[1].text, "foo");
    EXPECT_EQ(toks[2].kind, Tok::Semi);
    EXPECT_EQ(toks[4].kind, Tok::Eof);
}

TEST(Lexer, SizedLiterals)
{
    auto toks = lex("8'hFF 4'b1010 16'd100 'd7 12");
    EXPECT_EQ(toks[0].value, 0xFFu);
    EXPECT_EQ(toks[0].width, 8u);
    EXPECT_TRUE(toks[0].sized);
    EXPECT_EQ(toks[1].value, 0xAu);
    EXPECT_EQ(toks[2].value, 100u);
    EXPECT_EQ(toks[3].value, 7u);
    EXPECT_FALSE(toks[3].sized);
    EXPECT_EQ(toks[4].value, 12u);
}

TEST(Lexer, UnderscoresInLiterals)
{
    auto toks = lex("16'hAB_CD 1_000");
    EXPECT_EQ(toks[0].value, 0xABCDu);
    EXPECT_EQ(toks[1].value, 1000u);
}

TEST(Lexer, Comments)
{
    auto toks = lex("a // line comment\n/* block\ncomment */ b");
    ASSERT_EQ(toks.size(), 3u);
    EXPECT_EQ(toks[0].text, "a");
    EXPECT_EQ(toks[1].text, "b");
}

TEST(Lexer, MultiCharOperators)
{
    auto toks = lex("<= >= == != << >> >>> && || +: ~& ~| ~^");
    Tok expect[] = {Tok::LtEq, Tok::Ge, Tok::EqEq, Tok::NotEq,
                    Tok::Shl, Tok::Shr, Tok::AShr, Tok::AmpAmp,
                    Tok::PipePipe, Tok::PlusColon, Tok::TildeAmp,
                    Tok::TildePipe, Tok::TildeCaret};
    for (size_t i = 0; i < std::size(expect); ++i)
        EXPECT_EQ(toks[i].kind, expect[i]) << i;
}

TEST(Lexer, RejectsXZ)
{
    EXPECT_THROW(lex("4'b10x0"), FatalError);
    EXPECT_THROW(lex("4'bzzzz"), FatalError);
}

TEST(Lexer, LineNumbers)
{
    auto toks = lex("a\nb\n\nc");
    EXPECT_EQ(toks[0].line, 1);
    EXPECT_EQ(toks[1].line, 2);
    EXPECT_EQ(toks[2].line, 4);
}

// ---------------------------------------------------------------------
// Parser structure
// ---------------------------------------------------------------------

TEST(Parser, ModuleHeader)
{
    auto unit = parse(R"(
module m #(parameter W = 4, parameter D = 2)
  (input clk, input [W-1:0] a, output reg [W-1:0] q);
endmodule
)");
    ASSERT_EQ(unit.modules.size(), 1u);
    const Module &m = unit.modules[0];
    EXPECT_EQ(m.name, "m");
    EXPECT_EQ(m.params.size(), 2u);
    ASSERT_EQ(m.ports.size(), 3u);
    EXPECT_EQ(m.ports[0].dir, PortDir::Input);
    EXPECT_EQ(m.ports[2].dir, PortDir::Output);
    EXPECT_EQ(m.ports[2].decl.kind, NetKind::Reg);
}

TEST(Parser, RejectsInitialBlocks)
{
    EXPECT_THROW(parse("module m(input a); initial a = 0; endmodule"),
                 FatalError);
}

TEST(Parser, RejectsCasez)
{
    EXPECT_THROW(
        parse("module m(input a, output b);\n"
              "always_comb casez (a) 1'b1: b = 1; endcase\nendmodule"),
        FatalError);
}

TEST(Parser, SharedRangeDeclarations)
{
    auto unit = parse(
        "module m(input clk); wire [7:0] a, b, c; endmodule");
    const Item &item = *unit.modules[0].items[0];
    ASSERT_EQ(item.decls.size(), 3u);
    for (const Decl &d : item.decls)
        EXPECT_NE(d.msb, nullptr);
}

// ---------------------------------------------------------------------
// Expression semantics through elaboration + reference simulation
// ---------------------------------------------------------------------

struct ExprCase
{
    const char *expr;
    uint64_t a, b, c;
    uint64_t expect;
};

class ExprSemantics : public ::testing::TestWithParam<ExprCase>
{
};

TEST_P(ExprSemantics, Evaluates)
{
    const ExprCase &tc = GetParam();
    EXPECT_EQ(evalExpr(tc.expr, tc.a, tc.b, tc.c), tc.expect)
        << tc.expr;
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, ExprSemantics,
    ::testing::Values(
        ExprCase{"a + b", 30000, 40000, 0, (30000 + 40000) & 0xffff},
        ExprCase{"a - b", 5, 7, 0, uint64_t(5 - 7) & 0xffff},
        ExprCase{"a * b", 300, 300, 0, (300 * 300) & 0xffff},
        ExprCase{"a / b", 100, 7, 0, 14},
        ExprCase{"a % b", 100, 7, 0, 2},
        ExprCase{"a / b", 5, 0, 0, 0},
        ExprCase{"-a", 1, 0, 0, 0xffff},
        ExprCase{"a + b * c", 1, 2, 3, 7}));

INSTANTIATE_TEST_SUITE_P(
    Bitwise, ExprSemantics,
    ::testing::Values(
        ExprCase{"a & b", 0xF0F0, 0xFF00, 0, 0xF000},
        ExprCase{"a | b", 0xF0F0, 0x0F00, 0, 0xFFF0},
        ExprCase{"a ^ b", 0xFFFF, 0x00FF, 0, 0xFF00},
        ExprCase{"~a", 0x00FF, 0, 0, 0xFF00},
        ExprCase{"a ^ ~b", 1, 1, 0, 0xffff},
        ExprCase{"a << b", 1, 4, 0, 16},
        ExprCase{"a >> b", 0x8000, 15, 0, 1},
        ExprCase{"a >>> b", 0x8000, 31, 0, 0xffff}));

INSTANTIATE_TEST_SUITE_P(
    CompareLogic, ExprSemantics,
    ::testing::Values(
        ExprCase{"a < b", 3, 4, 0, 1}, ExprCase{"a <= b", 4, 4, 0, 1},
        ExprCase{"a > b", 4, 3, 0, 1},
        ExprCase{"a >= b", 3, 4, 0, 0},
        ExprCase{"a == b", 9, 9, 0, 1},
        ExprCase{"a != b", 9, 9, 0, 0},
        ExprCase{"a && b", 2, 0, 0, 0},
        ExprCase{"a || b", 0, 5, 0, 1},
        ExprCase{"!a", 0, 0, 0, 1},
        ExprCase{"a ? b : c", 1, 10, 20, 10},
        ExprCase{"a ? b : c", 0, 10, 20, 20}));

INSTANTIATE_TEST_SUITE_P(
    SelectConcat, ExprSemantics,
    ::testing::Values(
        ExprCase{"a[3:0]", 0xABCD, 0, 0, 0xD},
        ExprCase{"a[15:12]", 0xABCD, 0, 0, 0xA},
        ExprCase{"a[b]", 0x0010, 4, 0, 1},
        ExprCase{"a[b +: 4]", 0xABCD, 4, 0, 0xC},
        ExprCase{"{a[7:0], b[7:0]}", 0x00AA, 0x00BB, 0, 0xAABB},
        ExprCase{"{4{a[3:0]}}", 0x000A, 0, 0, 0xAAAA},
        ExprCase{"&a[3:0]", 0xF, 0, 0, 1},
        ExprCase{"|a", 0, 0, 0, 0},
        ExprCase{"^a", 0x3, 0, 0, 0},
        ExprCase{"~&a[1:0]", 3, 0, 0, 0},
        ExprCase{"~|a", 0, 0, 0, 1}));

// ---------------------------------------------------------------------
// Elaboration behavior
// ---------------------------------------------------------------------

TEST(Elaborator, ParameterizedInstancesAndGenerate)
{
    const char *src = R"(
module stage #(parameter INC = 1)
  (input [15:0] d, output [15:0] q);
  assign q = d + INC;
endmodule

module top #(parameter N = 4)(input clk, input [15:0] x,
                              output [15:0] y);
  assign y = s3;
  wire [15:0] s0, s1, s2, s3;
  stage #(.INC(1)) u0(.d(x), .q(s0));
  stage #(.INC(2)) u1(.d(s0), .q(s1));
  stage #(.INC(3)) u2(.d(s1), .q(s2));
  stage #(.INC(4)) u3(.d(s2), .q(s3));
endmodule
)";
    rtl::Netlist nl = compileVerilog(src, "top");
    refsim::ReferenceSimulator sim(nl);
    FnStimulus stim([](uint64_t, std::vector<uint64_t> &in) {
        in[1] = 100;
    });
    sim.step(stim);
    EXPECT_EQ(sim.outputFrame()[0], 110u);   // 100+1+2+3+4
}

static uint64_t
evalExprTop(const char *src, uint64_t x)
{
    rtl::Netlist nl = compileVerilog(src, "top");
    refsim::ReferenceSimulator sim(nl);
    FnStimulus stim([=](uint64_t, std::vector<uint64_t> &in) {
        in[1] = x;
    });
    sim.step(stim);
    return sim.outputFrame()[0];
}

TEST(Elaborator, GenerateForAdderTree)
{
    // Each generate iteration contributes one shifted copy of x;
    // per-iteration wires must elaborate to distinct signals.
    const char *src = R"(
module top #(parameter N = 4)(input clk, input [15:0] x,
                              output [15:0] y);
  wire [15:0] part0;
  wire [15:0] part1;
  wire [15:0] part2;
  wire [15:0] part3;
  genvar i;
  generate for (i = 0; i < N; i = i + 1) begin : g
    wire [15:0] shifted;
    assign shifted = x >> i;
  end endgenerate
  assign part0 = g0_probe;
  wire [15:0] g0_probe;
  assign g0_probe = x;
  assign part1 = x >> 1;
  assign part2 = x >> 2;
  assign part3 = x >> 3;
  assign y = part0 + part1 + part2 + part3;
endmodule
)";
    EXPECT_EQ(evalExprTop(src, 16), 16u + 8 + 4 + 2);
}

TEST(Elaborator, GenerateForInstances)
{
    const char *src = R"(
module inc(input [15:0] d, output [15:0] q);
  assign q = d + 16'd1;
endmodule

module top(input clk, input [15:0] x, output [15:0] y0,
           output [15:0] y1, output [15:0] y2);
  wire [15:0] q0, q1, q2;
  inc u0(.d(x), .q(q0));
  inc u1(.d(q0), .q(q1));
  inc u2(.d(q1), .q(q2));
  assign y0 = q0;
  assign y1 = q1;
  assign y2 = q2;
endmodule
)";
    rtl::Netlist nl = compileVerilog(src, "top");
    refsim::ReferenceSimulator sim(nl);
    FnStimulus stim([](uint64_t, std::vector<uint64_t> &in) {
        in[1] = 7;
    });
    sim.step(stim);
    EXPECT_EQ(sim.outputFrame()[0], 8u);
    EXPECT_EQ(sim.outputFrame()[1], 9u);
    EXPECT_EQ(sim.outputFrame()[2], 10u);
}

TEST(Elaborator, NonblockingReadsOldValue)
{
    // Classic register swap: with nonblocking semantics both swap.
    const char *src = R"(
module top(input clk, output [7:0] ya, output [7:0] yb);
  reg [7:0] a;
  reg [7:0] b;
  reg started;
  always_ff @(posedge clk) begin
    if (!started) begin
      a <= 8'd1;
      b <= 8'd2;
      started <= 1'b1;
    end else begin
      a <= b;
      b <= a;
    end
  end
  assign ya = a;
  assign yb = b;
endmodule
)";
    rtl::Netlist nl = compileVerilog(src, "top");
    refsim::ReferenceSimulator sim(nl);
    refsim::ZeroStimulus stim;
    sim.step(stim);   // init
    sim.step(stim);   // swap 1
    sim.step(stim);   // swap 2 -> visible values from swap 1
    EXPECT_EQ(sim.value(nl.outputs()[0]), 2u);
    EXPECT_EQ(sim.value(nl.outputs()[1]), 1u);
    sim.step(stim);
    EXPECT_EQ(sim.value(nl.outputs()[0]), 1u);
    EXPECT_EQ(sim.value(nl.outputs()[1]), 2u);
}

TEST(Elaborator, BlockingForwardsInsideFF)
{
    const char *src = R"(
module top(input clk, input [7:0] x, output [7:0] y);
  reg [7:0] r;
  reg [7:0] tmp;
  always_ff @(posedge clk) begin
    tmp = x + 8'd1;       // blocking: visible below
    r <= tmp + 8'd1;
  end
  assign y = r;
endmodule
)";
    rtl::Netlist nl = compileVerilog(src, "top");
    refsim::ReferenceSimulator sim(nl);
    FnStimulus stim([](uint64_t, std::vector<uint64_t> &in) {
        in[1] = 10;
    });
    sim.step(stim);
    sim.step(stim);
    EXPECT_EQ(sim.outputFrame()[0], 12u);
}

TEST(Elaborator, ForLoopUnrolling)
{
    const char *src = R"(
module top(input clk, input [15:0] x, output [15:0] y);
  reg [15:0] acc;
  integer i;
  always_comb begin
    acc = 16'd0;
    for (i = 0; i < 4; i = i + 1)
      acc = acc + (x >> i);
  end
  assign y = acc;
endmodule
)";
    rtl::Netlist nl = compileVerilog(src, "top");
    refsim::ReferenceSimulator sim(nl);
    FnStimulus stim([](uint64_t, std::vector<uint64_t> &in) {
        in[1] = 8;
    });
    sim.step(stim);
    EXPECT_EQ(sim.outputFrame()[0], 8u + 4 + 2 + 1);
}

TEST(Elaborator, CasePriorityAndDefault)
{
    const char *src = R"(
module top(input clk, input [1:0] s, output [7:0] y);
  reg [7:0] r;
  always_comb begin
    case (s)
      2'd0, 2'd1: r = 8'd10;
      2'd2: r = 8'd20;
      default: r = 8'd30;
    endcase
  end
  assign y = r;
endmodule
)";
    rtl::Netlist nl = compileVerilog(src, "top");
    for (uint64_t s = 0; s < 4; ++s) {
        refsim::ReferenceSimulator sim(nl);
        FnStimulus stim([=](uint64_t, std::vector<uint64_t> &in) {
            in[1] = s;
        });
        sim.step(stim);
        uint64_t expect = s <= 1 ? 10 : s == 2 ? 20 : 30;
        EXPECT_EQ(sim.outputFrame()[0], expect) << s;
    }
}

TEST(Elaborator, LatchDetection)
{
    const char *src = R"(
module top(input clk, input s, output [7:0] y);
  reg [7:0] r;
  always_comb begin
    if (s) r = 8'd1;
  end
  assign y = r;
endmodule
)";
    EXPECT_THROW(compileVerilog(src, "top"), FatalError);
}

TEST(Elaborator, MultipleDriversRejected)
{
    const char *src = R"(
module top(input clk, input a, output y);
  wire w;
  assign w = a;
  assign w = !a;
  assign y = w;
endmodule
)";
    EXPECT_THROW(compileVerilog(src, "top"), FatalError);
}

TEST(Elaborator, CombLoopRejected)
{
    const char *src = R"(
module top(input clk, input a, output y);
  wire p, q;
  assign p = q & a;
  assign q = p | a;
  assign y = q;
endmodule
)";
    EXPECT_THROW(compileVerilog(src, "top"), FatalError);
}

TEST(Elaborator, MemoryWriteEnableAndPriority)
{
    const char *src = R"(
module top(input clk, input [3:0] waddr, input [7:0] wdata,
           input we, input [3:0] raddr, output [7:0] q);
  reg [7:0] mem [0:15];
  always_ff @(posedge clk) begin
    if (we) mem[waddr] <= wdata;
    if (we && waddr == 4'd0) mem[waddr] <= wdata + 8'd1;
  end
  assign q = mem[raddr];
endmodule
)";
    rtl::Netlist nl = compileVerilog(src, "top");
    refsim::ReferenceSimulator sim(nl);
    // Cycle 0: write 50 to addr 0 (second port wins: 51).
    // Cycle 1: read addr 0.
    FnStimulus stim([](uint64_t c, std::vector<uint64_t> &in) {
        if (c == 0) {
            in[1] = 0;    // waddr
            in[2] = 50;   // wdata
            in[3] = 1;    // we
        }
        in[4] = 0;   // raddr
    });
    sim.step(stim);
    EXPECT_EQ(sim.outputFrame()[0], 0u);   // Read-old semantics.
    sim.step(stim);
    EXPECT_EQ(sim.outputFrame()[0], 51u);  // Port priority.
}

TEST(Elaborator, PartSelectAssignment)
{
    const char *src = R"(
module top(input clk, input [15:0] x, output [15:0] y);
  reg [15:0] r;
  always_comb begin
    r = 16'd0;
    r[7:0] = x[15:8];
    r[15] = x[0];
  end
  assign y = r;
endmodule
)";
    rtl::Netlist nl = compileVerilog(src, "top");
    refsim::ReferenceSimulator sim(nl);
    FnStimulus stim([](uint64_t, std::vector<uint64_t> &in) {
        in[1] = 0xAB01;
    });
    sim.step(stim);
    EXPECT_EQ(sim.outputFrame()[0], 0x80ABu);
}

TEST(Elaborator, UnconnectedInputWarnsAndTiesZero)
{
    const char *src = R"(
module child(input [7:0] a, input [7:0] b, output [7:0] y);
  assign y = a + b;
endmodule
module top(input clk, input [7:0] x, output [7:0] y);
  child u(.a(x), .y(y));
endmodule
)";
    rtl::Netlist nl = compileVerilog(src, "top");
    refsim::ReferenceSimulator sim(nl);
    FnStimulus stim([](uint64_t, std::vector<uint64_t> &in) {
        in[1] = 9;
    });
    sim.step(stim);
    EXPECT_EQ(sim.outputFrame()[0], 9u);
}

TEST(Elaborator, WidthExtensionOnAssign)
{
    EXPECT_EQ(evalExpr("a[3:0]", 0xFFFF, 0, 0, 16), 0xFu);
    // Narrow expr zero-extends into wider LHS.
    EXPECT_EQ(evalExpr("a[0]", 1, 0, 0, 16), 1u);
}

TEST(Elaborator, SignedUnsupported)
{
    EXPECT_THROW(evalExpr("$signed(a)", 1), FatalError);
}

} // namespace
} // namespace ash::verilog
