/**
 * @file
 * Shared helpers for the ASH test suite: tiny Verilog fixtures, a
 * combinational-expression evaluator, and the reference-vs-ASH
 * equivalence runner that backs the end-to-end tests.
 */

#ifndef ASH_TESTS_TESTUTIL_H
#define ASH_TESTS_TESTUTIL_H

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/arch/AshSim.h"
#include "core/compiler/Compiler.h"
#include "refsim/ReferenceSimulator.h"
#include "verilog/Compile.h"

namespace ash::test {

/** Stimulus wrapping a lambda (must be a pure function of cycle). */
class FnStimulus : public refsim::Stimulus
{
  public:
    using Fn = std::function<void(uint64_t, std::vector<uint64_t> &)>;
    explicit FnStimulus(Fn fn) : _fn(std::move(fn)) {}
    void
    apply(uint64_t cycle, std::vector<uint64_t> &in) override
    {
        _fn(cycle, in);
    }

  private:
    Fn _fn;
};

/**
 * Evaluate a combinational expression over 16-bit inputs a, b, c:
 * builds "assign y = <expr>;" around it and runs one cycle.
 */
inline uint64_t
evalExpr(const std::string &expr, uint64_t a, uint64_t b = 0,
         uint64_t c = 0, unsigned out_width = 16)
{
    std::string src = "module t(input clk, input [15:0] a, input "
                      "[15:0] b, input [15:0] c, output [" +
                      std::to_string(out_width - 1) +
                      ":0] y);\n  assign y = " + expr +
                      ";\nendmodule\n";
    rtl::Netlist nl = verilog::compileVerilog(src, "t");
    refsim::ReferenceSimulator sim(nl);
    FnStimulus stim([=](uint64_t, std::vector<uint64_t> &in) {
        in[1] = a;
        in[2] = b;
        in[3] = c;
    });
    sim.step(stim);
    return sim.outputFrame()[0];
}

/**
 * Run the reference simulator and the ASH chip model on the same
 * netlist/stimulus and require bit-exact committed outputs.
 *
 * @return The ASH run result (for stats-based assertions).
 */
inline core::RunResult
expectEquivalent(const rtl::Netlist &nl, refsim::Stimulus &stim_ref,
                 refsim::Stimulus &stim_ash, uint64_t cycles,
                 const core::CompilerOptions &copts,
                 const core::ArchConfig &acfg)
{
    refsim::ReferenceSimulator ref(nl);
    refsim::OutputTrace golden = ref.run(stim_ref, cycles);

    core::TaskProgram prog = core::compile(nl, copts);
    core::AshSimulator sim(prog, acfg);
    core::RunResult result = sim.run(stim_ash, cycles);

    size_t mismatches = 0;
    for (uint64_t cyc = 0; cyc < cycles; ++cyc) {
        for (size_t o = 0; o < golden[cyc].size(); ++o) {
            if (golden[cyc][o] != result.outputs[cyc][o] &&
                mismatches++ < 5) {
                ADD_FAILURE()
                    << "output mismatch at cycle " << cyc << " output "
                    << o << ": ref=" << golden[cyc][o]
                    << " ash=" << result.outputs[cyc][o];
            }
        }
    }
    EXPECT_EQ(mismatches, 0u);
    return result;
}

/** A small design with registers, memory, and mixed logic. */
inline const char *
mixedFixture()
{
    return R"(
module alu(input [15:0] a, input [15:0] b, input [1:0] op,
           output [15:0] y);
  reg [15:0] r;
  always_comb begin
    case (op)
      2'd0: r = a + b;
      2'd1: r = a - b;
      2'd2: r = a & b;
      default: r = a ^ b;
    endcase
  end
  assign y = r;
endmodule

module top(input clk, input [15:0] x, input [1:0] op,
           output [15:0] acc_out, output [7:0] mem_out,
           output parity);
  reg [15:0] acc;
  wire [15:0] next;
  alu u_alu(.a(acc), .b(x), .op(op), .y(next));
  reg [7:0] mem [0:15];
  reg [3:0] wp;
  always_ff @(posedge clk) begin
    acc <= next;
    mem[wp] <= next[7:0];
    wp <= wp + 4'd1;
  end
  assign acc_out = acc;
  assign mem_out = mem[x[3:0]];
  assign parity = ^acc;
endmodule
)";
}

/** Deterministic stimulus for the mixed fixture. */
inline FnStimulus::Fn
mixedStimulus(uint64_t seed)
{
    return [seed](uint64_t cycle, std::vector<uint64_t> &in) {
        uint64_t z = cycle * 0x9e3779b97f4a7c15ull + seed;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z ^= z >> 27;
        in[1] = z & 0xffff;
        in[2] = (z >> 16) & 3;
    };
}

} // namespace ash::test

#endif // ASH_TESTS_TESTUTIL_H
