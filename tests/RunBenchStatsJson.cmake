# ctest driver: run a bench with --stats-json and check the output is
# valid-looking JSON that carries the per-design speedup results.
# Invoked as:
#   cmake -DBENCH=<binary> -DOUT=<json path> -P RunBenchStatsJson.cmake

execute_process(COMMAND "${BENCH}" --stats-json "${OUT}"
                RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${BENCH} exited with ${rc}")
endif()

if(NOT EXISTS "${OUT}")
    message(FATAL_ERROR "${BENCH} did not write ${OUT}")
endif()
file(READ "${OUT}" doc)

foreach(needle
        "\"bench\": \"table5_speeds\""
        "\"results\""
        "\"speedup.sash_vs_zen2."
        "\"speedup.sash_vs_baseline.gmean\""
        "\"stats\""
        "\"histograms\"")
    string(FIND "${doc}" "${needle}" pos)
    if(pos EQUAL -1)
        message(FATAL_ERROR "stats JSON is missing ${needle}")
    endif()
endforeach()

# Crude structural check: the document must open and close an object.
string(STRIP "${doc}" doc)
string(SUBSTRING "${doc}" 0 1 first)
string(LENGTH "${doc}" len)
math(EXPR last_idx "${len} - 1")
string(SUBSTRING "${doc}" ${last_idx} 1 last)
if(NOT first STREQUAL "{" OR NOT last STREQUAL "}")
    message(FATAL_ERROR "stats JSON is not one object")
endif()
