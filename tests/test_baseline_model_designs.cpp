/** @file Tests for the baseline simulator, energy/area models, and
 *  benchmark design generators. */

#include <gtest/gtest.h>

#include "baseline/Baseline.h"
#include "designs/Designs.h"
#include "model/EnergyArea.h"
#include "refsim/ReferenceSimulator.h"
#include "tests/TestUtil.h"
#include "verilog/Compile.h"

namespace ash {
namespace {

rtl::Netlist
mixedNetlist()
{
    return verilog::compileVerilog(test::mixedFixture(), "top");
}

// ---------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------

TEST(Baseline, SerialSpeedPositive)
{
    rtl::Netlist nl = mixedNetlist();
    auto result = baseline::runBaseline(
        nl, baseline::simBaselineHost(1));
    EXPECT_GT(result.speedKHz, 0.0);
    EXPECT_GT(result.cyclesPerDesignCycle, 0.0);
    EXPECT_GT(result.tasks, 0u);
}

TEST(Baseline, Deterministic)
{
    designs::Design d = designs::makeChronosRv(4);
    rtl::Netlist nl = designs::compileDesign(d);
    auto a = baseline::runBaseline(nl, baseline::simBaselineHost(4));
    auto b = baseline::runBaseline(nl, baseline::simBaselineHost(4));
    EXPECT_DOUBLE_EQ(a.cyclesPerDesignCycle, b.cyclesPerDesignCycle);
}

TEST(Baseline, ParallelSpeedupIsLimited)
{
    // The whole point of Sec 2.2: parallel Verilator speedups are
    // modest. More threads must not be worse than 0.5x serial, nor
    // magically super-linear.
    designs::Design d = designs::makeVortex(6, 2);
    rtl::Netlist nl = designs::compileDesign(d);
    double serial = baseline::runBaseline(
                        nl, baseline::simBaselineHost(1), 300)
                        .speedKHz;
    double best = 0;
    for (uint32_t t : {2u, 4u, 8u, 16u}) {
        best = std::max(best,
                        baseline::runBaseline(
                            nl, baseline::simBaselineHost(t), 300)
                            .speedKHz);
    }
    EXPECT_GT(best, serial * 0.5);
    EXPECT_LT(best, serial * 16.0);
}

TEST(Baseline, FinerTasksRaiseParallelism)
{
    rtl::Netlist nl = mixedNetlist();
    auto fine = baseline::runBaseline(
        nl, baseline::simBaselineHost(1), 4);
    auto coarse = baseline::runBaseline(
        nl, baseline::simBaselineHost(1), 4000);
    EXPECT_GE(fine.tasks, coarse.tasks);
    EXPECT_GE(fine.parallelism, coarse.parallelism * 0.9);
}

TEST(Baseline, Zen2PresetSane)
{
    baseline::HostConfig zen = baseline::zen2Host(32);
    EXPECT_EQ(zen.threads, 32u);
    EXPECT_GT(zen.ghz, 3.0);
    EXPECT_GT(zen.llcBytes, 64ull * 1024 * 1024);
}

// ---------------------------------------------------------------------
// Energy / area
// ---------------------------------------------------------------------

TEST(Model, AreaTable2Calibration)
{
    auto rows = model::ashArea(256, 64, 1.0);
    ASSERT_EQ(rows.size(), 5u);
    EXPECT_EQ(rows.back().component, "total");
    EXPECT_NEAR(rows.back().mm2, 115.0, 1.0);
    EXPECT_NEAR(rows[0].mm2, 45.1, 0.1);
    EXPECT_NEAR(rows[1].mm2, 39.3, 0.1);
    EXPECT_NEAR(rows[3].mm2, 5.6, 0.1);
}

TEST(Model, AshSmallerThanZen2)
{
    auto rows = model::ashArea(256, 64, 1.0);
    double ash = rows.back().mm2;
    double zen = model::zen2Area(32);
    EXPECT_GT(zen / ash, 2.5);   // "3x less area" (Sec 9.1).
}

TEST(Model, EnergyBreakdownPositive)
{
    StatSet stats;
    stats.inc("instrs", 1000000);
    stats.inc("l1dAccesses", 200000);
    stats.inc("l2Accesses", 20000);
    stats.inc("dramBytes", 64000);
    stats.inc("nocFlitHops", 500000);
    stats.inc("descsSent", 100000);
    stats.inc("tasksCommitted", 50000);
    auto e = model::computeEnergy(stats, 256, 64.0, 1e-3);
    EXPECT_GT(e.coresMj, 0.0);
    EXPECT_GT(e.cachesMj, 0.0);
    EXPECT_GT(e.tmuMj, 0.0);
    EXPECT_GT(e.nocMj, 0.0);
    EXPECT_GT(e.staticMj, 0.0);
    EXPECT_NEAR(e.totalMj(), e.staticMj + e.coresMj + e.cachesMj +
                                 e.tmuMj + e.nocMj,
                1e-12);
}

// ---------------------------------------------------------------------
// Benchmark designs
// ---------------------------------------------------------------------

TEST(Designs, AllCompileAndValidate)
{
    for (const auto &d : designs::allDesigns()) {
        rtl::Netlist nl = designs::compileDesign(d);
        EXPECT_GT(nl.numNodes(), 500u) << d.name;
        EXPECT_FALSE(nl.outputs().empty()) << d.name;
    }
}

TEST(Designs, ActivityFactorsMatchProfile)
{
    auto all = designs::allDesigns();
    std::map<std::string, double> activity;
    for (const auto &d : all) {
        rtl::Netlist nl = designs::compileDesign(d);
        refsim::ReferenceSimulator sim(nl);
        auto stim = d.makeStimulus();
        sim.run(*stim, 200);
        activity[d.name] = sim.activityFactor();
    }
    EXPECT_LT(activity["vortex"], 0.12);       // Paper: 7.1%.
    EXPECT_LT(activity["chronos_rv"], 0.25);   // Paper: 15.0%.
    EXPECT_GT(activity["ntt"], 0.90);          // Paper: 97%.
    EXPECT_LT(activity["chronos_pe"], 0.6);    // Moderate.
    // Relative order: NTT is by far the most active; vortex least.
    EXPECT_GT(activity["ntt"], activity["chronos_pe"]);
    EXPECT_GT(activity["chronos_pe"], activity["vortex"]);
}

TEST(Designs, NttMatchesTextbookMath)
{
    designs::Design d = designs::makeNtt(16);
    rtl::Netlist nl = designs::compileDesign(d);
    refsim::ReferenceSimulator sim(nl);
    auto stim = d.makeStimulus();
    auto trace = sim.run(*stim, 10);

    std::vector<uint64_t> frame(nl.inputs().size(), 0);
    stim->apply(0, frame);
    std::vector<uint64_t> input(frame.begin() + 1, frame.end());
    auto want = designs::referenceNtt(input);
    // Pipeline latency: input register + log2(16) stages = 5.
    for (size_t i = 0; i < want.size(); ++i)
        EXPECT_EQ(trace[5][i], want[i]) << "point " << i;
    // And the next beat follows one cycle later.
    stim->apply(1, frame);
    std::vector<uint64_t> input1(frame.begin() + 1, frame.end());
    auto want1 = designs::referenceNtt(input1);
    for (size_t i = 0; i < want1.size(); ++i)
        EXPECT_EQ(trace[6][i], want1[i]) << "point " << i;
}

TEST(Designs, StimulusDeterministic)
{
    designs::Design d = designs::makeChronosPe(9);
    auto s1 = d.makeStimulus();
    auto s2 = d.makeStimulus();
    rtl::Netlist nl = designs::compileDesign(d);
    for (uint64_t c : {0ull, 7ull, 100ull}) {
        std::vector<uint64_t> a(nl.inputs().size(), 0);
        std::vector<uint64_t> b(nl.inputs().size(), 0);
        s1->apply(c, a);
        s2->apply(c, b);
        EXPECT_EQ(a, b);
    }
}

TEST(Designs, ScaleKnobChangesSize)
{
    rtl::Netlist small =
        designs::compileDesign(designs::makeNtt(8));
    rtl::Netlist large =
        designs::compileDesign(designs::makeNtt(64));
    EXPECT_GT(large.numNodes(), small.numNodes() * 4);
}

TEST(Designs, RvCoresMakeProgress)
{
    designs::Design d = designs::makeChronosRv(2);
    rtl::Netlist nl = designs::compileDesign(d);
    refsim::ReferenceSimulator sim(nl);
    auto stim = d.makeStimulus();
    auto trace = sim.run(*stim, 120);
    // The checksum output must take multiple distinct values (cores
    // execute their ROM programs).
    std::set<uint64_t> values;
    for (const auto &frame : trace)
        values.insert(frame[0]);
    EXPECT_GT(values.size(), 10u);
}

} // namespace
} // namespace ash
