/**
 * @file
 * The jit engine contract: byte-identical observables against the
 * reference simulator (outputs, stats JSON, VCD, activity), on both
 * the compiled backend and the bytecode fallback interpreter; the
 * fingerprint-keyed kernel cache (second acquire loads the published
 * .so instead of recompiling; corrupt objects are detected and
 * recompiled over; a dead toolchain degrades to the interpreter);
 * checkpoint save -> restore -> byte-identical resume, across
 * backends; and the guard fault sites (jit.compile, jit.dlopen,
 * jit.cache.bytes) driving each failure path deterministically.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "designs/Designs.h"
#include "guard/Fault.h"
#include "jit/JitSimulator.h"
#include "jit/KernelCache.h"
#include "refsim/ReferenceSimulator.h"
#include "refsim/Vcd.h"
#include "tests/TestUtil.h"
#include "verilog/Compile.h"

namespace ash::jit {
namespace {

namespace fs = std::filesystem;
using test::FnStimulus;

/** Fresh, empty scratch directory under the gtest temp root. */
std::string
scratchDir(const std::string &name)
{
    fs::path dir = fs::path(::testing::TempDir()) / ("ash_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

/**
 * Suite-shared kernel cache directory: the expensive toolchain
 * invocations (one per bundled design) happen once per test binary;
 * later tests that only need a working compiled backend reuse the
 * .so files. When the environment pins ASH_JIT_CACHE_DIR (CI
 * persists that directory across runs via actions/cache) we honor
 * it, so a warm CI run exercises the load-don't-recompile path.
 * Cache-behavior tests use their own scratch dirs and uniquely-
 * fingerprinted fixtures instead.
 */
JitOptions
suiteOptions()
{
    JitOptions opts;
    if (!std::getenv("ASH_JIT_CACHE_DIR")) {
        static std::string dir = scratchDir("jit_suite_cache");
        opts.cacheDir = dir;
    }
    return opts;
}

/**
 * A tiny design whose fingerprint is unique per @p salt (the constant
 * lands in the netlist), so cache tests never collide with kernels
 * other tests already pinned in the process-wide registry.
 */
rtl::Netlist
tinyNetlist(unsigned salt)
{
    std::string src =
        "module top(input clk, input [15:0] x, output [15:0] y);\n"
        "  reg [15:0] acc;\n"
        "  always_ff @(posedge clk) acc <= acc + x + 16'd" +
        std::to_string(salt % 9973) +
        ";\n"
        "  assign y = acc ^ (x >> 1);\n"
        "endmodule\n";
    return verilog::compileVerilog(src, "top");
}

FnStimulus::Fn
tinyStimulus()
{
    return [](uint64_t cycle, std::vector<uint64_t> &in) {
        uint64_t z = cycle * 0x9e3779b97f4a7c15ull + 11;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        in[1] = z & 0xffff;
    };
}

/** RAII plan arm/disarm so a failing test never leaks an armed plan. */
struct ArmedPlan
{
    explicit ArmedPlan(const std::string &spec)
    {
        guard::FaultPlan plan;
        std::string err;
        EXPECT_TRUE(guard::FaultPlan::parse(spec, plan, &err)) << err;
        guard::FaultInjector::instance().arm(std::move(plan));
    }
    ~ArmedPlan() { guard::FaultInjector::instance().disarm(); }
};

/**
 * Run refsim and jit over the same netlist/stimulus and require the
 * full observable surface to match byte for byte: output trace,
 * materialized stats JSON, VCD text, activity factor, and the final
 * changed-flag vector.
 */
void
expectJitParity(const rtl::Netlist &nl, refsim::Stimulus &refStim,
                refsim::Stimulus &jitStim, uint64_t cycles,
                const JitOptions &opts, const char *what,
                const char *wantBackend = nullptr)
{
    refsim::ReferenceSimulator ref(nl);
    JitSimulator jit(nl, opts);
    if (wantBackend)
        EXPECT_STREQ(jit.backend(), wantBackend)
            << what << ": " << jit.fallbackReason();

    std::ostringstream refVcd, jitVcd;
    refsim::VcdWriter refW(nl, refVcd);
    refsim::VcdWriter jitW(nl, jitVcd);

    size_t mismatches = 0;
    for (uint64_t cyc = 0; cyc < cycles; ++cyc) {
        ref.step(refStim);
        jit.step(jitStim);
        refW.sample(ref, cyc);
        jitW.sample(jit, cyc);
        refsim::OutputFrame a = ref.outputFrame();
        refsim::OutputFrame b = jit.outputFrame();
        ASSERT_EQ(a.size(), b.size()) << what;
        for (size_t o = 0; o < a.size(); ++o) {
            if (a[o] != b[o] && mismatches++ < 5)
                ADD_FAILURE() << what << ": output mismatch at cycle "
                              << cyc << " output " << o << ": ref="
                              << a[o] << " jit=" << b[o];
        }
    }
    EXPECT_EQ(mismatches, 0u) << what;
    EXPECT_EQ(ref.stats().toJson(), jit.stats().toJson()) << what;
    EXPECT_EQ(refVcd.str(), jitVcd.str()) << what;
    EXPECT_DOUBLE_EQ(ref.activityFactor(), jit.activityFactor())
        << what;
    EXPECT_EQ(ref.changedLastCycle(), jit.changedLastCycle()) << what;
}

// ============================================================================
// Parity: refsim observables, byte for byte
// ============================================================================

// The golden-stats check of the jit engine: over every bundled
// design, the compiled kernel's materialized StatSet must serialize
// byte-identically to refsim's (which is what makes a bench's
// --stats-json engine-independent), alongside outputs, VCD, and
// activity.
TEST(JitGoldenStats, CompiledMatchesRefsimAllDesigns)
{
    for (designs::Design &d : designs::allDesigns()) {
        rtl::Netlist nl = designs::compileDesign(d);
        auto refStim = d.makeStimulus();
        auto jitStim = d.makeStimulus();
        expectJitParity(nl, *refStim, *jitStim, 200, suiteOptions(),
                        d.name.c_str(), "compiled");
    }
}

TEST(JitGoldenStats, InterpreterMatchesRefsim)
{
    JitOptions opts = suiteOptions();
    opts.forceInterp = true;
    rtl::Netlist nl =
        verilog::compileVerilog(test::mixedFixture(), "top");
    FnStimulus refStim(test::mixedStimulus(3));
    FnStimulus jitStim(test::mixedStimulus(3));
    expectJitParity(nl, refStim, jitStim, 300, opts, "mixed/interp",
                    "interp");
}

TEST(JitEngine, FactoryMakesBothEnginesAndRejectsUnknown)
{
    rtl::Netlist nl = tinyNetlist(1);
    auto ref = makeEngine("refsim", nl);
    auto jit = makeEngine("jit", nl, suiteOptions());
    EXPECT_STREQ(ref->engineName(), "refsim");
    EXPECT_STREQ(jit->engineName(), "jit");
    EXPECT_THROW(makeEngine("warp-drive", nl), Error);
}

// ============================================================================
// Kernel cache: hit, corruption, fallback, stale keys
// ============================================================================

TEST(JitCache, SecondAcquireLoadsWithoutRecompiling)
{
    rtl::Netlist nl = tinyNetlist(101);
    JitOptions opts;
    opts.cacheDir = scratchDir("jit_cache_hit");

    KernelCache &cache = KernelCache::instance();
    KernelCache::Snapshot before = cache.stats();
    std::string whyNot;
    KernelPtr first = cache.acquire(nl, opts, &whyNot);
    ASSERT_TRUE(first) << whyNot;
    EXPECT_EQ(cache.stats().compiles, before.compiles + 1);

    // Same process, registry intact: served from memory.
    KernelPtr again = cache.acquire(nl, opts, &whyNot);
    ASSERT_TRUE(again) << whyNot;
    EXPECT_EQ(again.get(), first.get());
    EXPECT_EQ(cache.stats().memoryHits, before.memoryHits + 1);

    // "Second process": drop the registry; the published .so must be
    // loaded as-is — no further toolchain invocation.
    cache.dropInMemory();
    KernelPtr reloaded = cache.acquire(nl, opts, &whyNot);
    ASSERT_TRUE(reloaded) << whyNot;
    EXPECT_EQ(cache.stats().compiles, before.compiles + 1);
    EXPECT_EQ(cache.stats().diskHits, before.diskHits + 1);
}

TEST(JitCache, CorruptCachedObjectIsDetectedAndRecompiled)
{
    rtl::Netlist nl = tinyNetlist(202);
    JitOptions opts;
    opts.cacheDir = scratchDir("jit_cache_corrupt");

    KernelCache &cache = KernelCache::instance();
    std::string whyNot;
    ASSERT_TRUE(cache.acquire(nl, opts, &whyNot)) << whyNot;

    // Trash every published object's bytes (CRC sidecars untouched).
    size_t trashed = 0;
    for (const auto &entry : fs::directory_iterator(opts.cacheDir)) {
        if (entry.path().extension() != ".so")
            continue;
        std::ofstream f(entry.path(),
                        std::ios::binary | std::ios::in);
        f.seekp(0);
        f.write("GARBAGE!", 8);
        ++trashed;
    }
    ASSERT_GT(trashed, 0u);

    KernelCache::Snapshot before = cache.stats();
    cache.dropInMemory();
    KernelPtr kernel = cache.acquire(nl, opts, &whyNot);
    ASSERT_TRUE(kernel) << whyNot;
    EXPECT_EQ(cache.stats().compiles, before.compiles + 1)
        << "corrupt object should force a recompile, not a dlopen";

    // And the recompiled kernel is functionally sound.
    JitSimulator sim(nl, opts);
    EXPECT_STREQ(sim.backend(), "compiled") << sim.fallbackReason();
    refsim::ReferenceSimulator ref(nl);
    FnStimulus a(tinyStimulus()), b(tinyStimulus());
    EXPECT_EQ(ref.run(a, 50), sim.run(b, 50));
}

TEST(JitCache, DeadToolchainFallsBackToInterpreter)
{
    rtl::Netlist nl = tinyNetlist(303);
    JitOptions opts;
    opts.cacheDir = scratchDir("jit_cache_deadcc");
    opts.compiler = "/bin/false";

    JitSimulator sim(nl, opts);
    EXPECT_STREQ(sim.backend(), "interp");
    EXPECT_FALSE(sim.fallbackReason().empty());

    refsim::ReferenceSimulator ref(nl);
    FnStimulus a(tinyStimulus()), b(tinyStimulus());
    EXPECT_EQ(ref.run(a, 50), sim.run(b, 50));
}

TEST(JitCache, KeyChangesWithToolchainStamp)
{
    rtl::Netlist nl = tinyNetlist(404);
    rtl::Netlist other = tinyNetlist(405);
    JitOptions opts;
    JitOptions otherCc;
    otherCc.compiler = "some-other-c++-17.2";

    KernelCache &cache = KernelCache::instance();
    // Structural stale-invalidation: a different toolchain or a
    // different design must land on a different key (old objects
    // simply miss; nothing scans or deletes them).
    EXPECT_NE(cache.keyFor(nl, opts), cache.keyFor(nl, otherCc));
    EXPECT_NE(cache.keyFor(nl, opts), cache.keyFor(other, opts));
    EXPECT_EQ(cache.keyFor(nl, opts), cache.keyFor(nl, opts));
}

// ============================================================================
// Guard fault sites
// ============================================================================

TEST(JitGuard, CompileFaultDegradesToInterpreter)
{
#if !ASH_GUARD_FAULTS
    GTEST_SKIP() << "fault hooks compiled out "
                    "(ASH_GUARD_FAULTS_ENABLED=OFF)";
#else
    rtl::Netlist nl = tinyNetlist(505);
    JitOptions opts;
    opts.cacheDir = scratchDir("jit_fault_compile");

    ArmedPlan plan("jit.compile:error");
    JitSimulator sim(nl, opts);
    EXPECT_STREQ(sim.backend(), "interp");
    EXPECT_FALSE(sim.fallbackReason().empty());

    refsim::ReferenceSimulator ref(nl);
    FnStimulus a(tinyStimulus()), b(tinyStimulus());
    EXPECT_EQ(ref.run(a, 50), sim.run(b, 50));
#endif
}

TEST(JitGuard, DlopenFaultDegradesToInterpreter)
{
#if !ASH_GUARD_FAULTS
    GTEST_SKIP() << "fault hooks compiled out "
                    "(ASH_GUARD_FAULTS_ENABLED=OFF)";
#else
    rtl::Netlist nl = tinyNetlist(606);
    JitOptions opts;
    opts.cacheDir = scratchDir("jit_fault_dlopen");

    ArmedPlan plan("jit.dlopen:error");
    JitSimulator sim(nl, opts);
    EXPECT_STREQ(sim.backend(), "interp");

    refsim::ReferenceSimulator ref(nl);
    FnStimulus a(tinyStimulus()), b(tinyStimulus());
    EXPECT_EQ(ref.run(a, 50), sim.run(b, 50));
#endif
}

TEST(JitGuard, CacheBytesCorruptionForcesRecompile)
{
#if !ASH_GUARD_FAULTS
    GTEST_SKIP() << "fault hooks compiled out "
                    "(ASH_GUARD_FAULTS_ENABLED=OFF)";
#else
    rtl::Netlist nl = tinyNetlist(707);
    JitOptions opts;
    opts.cacheDir = scratchDir("jit_fault_bytes");

    KernelCache &cache = KernelCache::instance();
    std::string whyNot;
    ASSERT_TRUE(cache.acquire(nl, opts, &whyNot)) << whyNot;
    cache.dropInMemory();

    // The CRC check reads the cached bytes through the corrupting
    // fault site, sees the mismatch, and recompiles over the object
    // (the fresh compile publishes and dlopens without re-reading).
    KernelCache::Snapshot before = cache.stats();
    ArmedPlan plan("jit.cache.bytes:corrupt:bytes=8:count=1");
    KernelPtr kernel = cache.acquire(nl, opts, &whyNot);
    ASSERT_TRUE(kernel) << whyNot;
    EXPECT_EQ(cache.stats().compiles, before.compiles + 1);
#endif
}

// ============================================================================
// Checkpoints: save -> restore -> byte-identical resume
// ============================================================================

/**
 * Drive @p engineA for half the run, snapshot it, resume both the
 * original and a freshly-restored @p engineB for the second half,
 * and require byte-identical outputs, stats, and final snapshots.
 */
void
expectResumeIdentical(const rtl::Netlist &nl, JitSimulator &a,
                      JitSimulator &b, const char *what)
{
    constexpr uint64_t kHalf = 40;
    FnStimulus stim(test::mixedStimulus(9));

    for (uint64_t c = 0; c < kHalf; ++c)
        a.step(stim);
    std::ostringstream snap;
    a.save(snap);

    std::istringstream in(snap.str());
    b.restore(in);
    EXPECT_EQ(b.cycle(), a.cycle()) << what;

    std::vector<refsim::OutputFrame> framesA, framesB;
    for (uint64_t c = 0; c < kHalf; ++c) {
        a.step(stim);
        framesA.push_back(a.outputFrame());
        b.step(stim);
        framesB.push_back(b.outputFrame());
    }
    EXPECT_EQ(framesA, framesB) << what;
    EXPECT_EQ(a.stats().toJson(), b.stats().toJson()) << what;

    std::ostringstream endA, endB;
    a.save(endA);
    b.save(endB);
    EXPECT_EQ(endA.str(), endB.str()) << what;
}

TEST(JitCkpt, CompiledSaveRestoreResumesByteIdentical)
{
    rtl::Netlist nl =
        verilog::compileVerilog(test::mixedFixture(), "top");
    JitSimulator a(nl, suiteOptions());
    JitSimulator b(nl, suiteOptions());
    ASSERT_STREQ(a.backend(), "compiled") << a.fallbackReason();
    expectResumeIdentical(nl, a, b, "compiled->compiled");
}

TEST(JitCkpt, SnapshotsCrossBackends)
{
    rtl::Netlist nl =
        verilog::compileVerilog(test::mixedFixture(), "top");
    JitOptions interp = suiteOptions();
    interp.forceInterp = true;

    // Compiled -> interpreter: the snapshot format carries no backend
    // traces, so a host without a toolchain resumes a compiled run.
    {
        JitSimulator a(nl, suiteOptions());
        JitSimulator b(nl, interp);
        ASSERT_STREQ(a.backend(), "compiled") << a.fallbackReason();
        ASSERT_STREQ(b.backend(), "interp");
        expectResumeIdentical(nl, a, b, "compiled->interp");
    }
    // Interpreter -> compiled (the restore path must rebuild the
    // compiled backend's dirty-block and armed-port bitmaps).
    {
        JitSimulator a(nl, interp);
        JitSimulator b(nl, suiteOptions());
        ASSERT_STREQ(b.backend(), "compiled") << b.fallbackReason();
        expectResumeIdentical(nl, a, b, "interp->compiled");
    }
}

} // namespace
} // namespace ash::jit
