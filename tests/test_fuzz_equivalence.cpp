/**
 * @file
 * Property/fuzz tests: randomly generated netlists (random DAGs of
 * combinational ops, registers, and memories) must simulate
 * identically on the reference simulator and on the DASH/SASH chip
 * models, across seeds and configurations. This is the broadest net
 * for engine/compiler bugs.
 */

#include <gtest/gtest.h>

#include "common/Random.h"
#include "exec/SweepRunner.h"
#include "refsim/Vcd.h"
#include "tests/TestUtil.h"

#include <sstream>

namespace ash {
namespace {

/** Build a random but valid netlist. */
rtl::Netlist
randomNetlist(uint64_t seed)
{
    Rng rng(seed);
    rtl::Netlist nl;
    std::vector<rtl::NodeId> pool;   // Value-producing nodes.

    unsigned n_inputs = 2 + rng.below(4);
    for (unsigned i = 0; i < n_inputs; ++i) {
        unsigned width = 1 + rng.below(32);
        pool.push_back(
            nl.addInput("in" + std::to_string(i), width));
    }
    unsigned n_regs = 1 + rng.below(4);
    std::vector<rtl::NodeId> regs;
    for (unsigned i = 0; i < n_regs; ++i) {
        unsigned width = 1 + rng.below(32);
        rtl::NodeId r = nl.addReg("r" + std::to_string(i), width,
                                  rng.below(1u << 16));
        regs.push_back(r);
        pool.push_back(r);
    }
    for (unsigned i = 0; i < 2; ++i)
        pool.push_back(nl.addConst(8 + rng.below(8), rng.next()));

    // A memory with one write and one read port.
    rtl::MemId mem = nl.addMemory("m", 16, 16);

    auto pick = [&]() { return pool[rng.below(pool.size())]; };
    auto resize = [&](rtl::NodeId n, unsigned w) {
        unsigned have = nl.node(n).width;
        if (have == w)
            return n;
        if (have < w)
            return nl.addOp(rtl::Op::ZExt, w, {n});
        return nl.addOp(rtl::Op::Slice, w, {n}, 0);
    };

    unsigned n_ops = 20 + rng.below(60);
    for (unsigned i = 0; i < n_ops; ++i) {
        unsigned w = 1 + rng.below(32);
        rtl::NodeId node;
        switch (rng.below(12)) {
          case 0:
            node = nl.addOp(rtl::Op::Add, w,
                            {resize(pick(), w), resize(pick(), w)});
            break;
          case 1:
            node = nl.addOp(rtl::Op::Sub, w,
                            {resize(pick(), w), resize(pick(), w)});
            break;
          case 2:
            node = nl.addOp(rtl::Op::Mul, w,
                            {resize(pick(), w), resize(pick(), w)});
            break;
          case 3:
            node = nl.addOp(rtl::Op::Xor, w,
                            {resize(pick(), w), resize(pick(), w)});
            break;
          case 4:
            node = nl.addOp(rtl::Op::And, w,
                            {resize(pick(), w), resize(pick(), w)});
            break;
          case 5:
            node = nl.addOp(rtl::Op::Mux, w,
                            {resize(pick(), 1), resize(pick(), w),
                             resize(pick(), w)});
            break;
          case 6:
            node = nl.addOp(rtl::Op::Lt, 1,
                            {resize(pick(), w), resize(pick(), w)});
            break;
          case 7:
            node = nl.addOp(rtl::Op::LShr, w,
                            {resize(pick(), w), resize(pick(), 5)});
            break;
          case 8:
            node = nl.addOp(rtl::Op::Not, w, {resize(pick(), w)});
            break;
          case 9:
            node = nl.addOp(rtl::Op::RedXor, 1, {pick()});
            break;
          case 10:
            node = nl.addMemRead(mem, resize(pick(), 4));
            break;
          default: {
            rtl::NodeId hi = resize(pick(), w);
            rtl::NodeId lo = resize(pick(), 8);
            if (w + 8 <= 64)
                node = nl.addOp(rtl::Op::Concat, w + 8, {hi, lo});
            else
                node = nl.addOp(rtl::Op::Or, w,
                                {hi, resize(lo, w)});
            break;
          }
        }
        pool.push_back(node);
    }

    // Drive register next-values and the memory write port.
    for (rtl::NodeId r : regs)
        nl.setRegNext(r, resize(pick(), nl.node(r).width));
    nl.addMemWrite(mem, resize(pick(), 4), resize(pick(), 16),
                   resize(pick(), 1));

    // Outputs sample late pool nodes.
    for (unsigned i = 0; i < 3; ++i) {
        nl.addOutput("out" + std::to_string(i),
                     pool[pool.size() - 1 - rng.below(8)]);
    }
    nl.validate();
    return nl;
}

/** One equivalence check; runs on whatever sweep thread gets it. */
void
checkSeed(int seed, bool selective)
{
    rtl::Netlist nl = randomNetlist(static_cast<uint64_t>(seed));

    auto stim_fn = [seed = seed](uint64_t cycle,
                                 std::vector<uint64_t> &in) {
        Rng rng(cycle * 977 + static_cast<uint64_t>(seed));
        for (auto &v : in)
            v = rng.next();
    };
    test::FnStimulus ref_stim(stim_fn), ash_stim(stim_fn);

    core::CompilerOptions copts;
    copts.numTiles = 4;
    copts.maxTaskCost = 6;
    core::ArchConfig acfg;
    acfg.numTiles = 4;
    acfg.selective = selective;
    test::expectEquivalent(nl, ref_stim, ash_stim, 30, copts, acfg);
}

// The seed sweep fans out through exec::SweepRunner, the same path
// the benches use for --jobs: 12 seeds x {DASH, SASH} as independent
// jobs. GoogleTest expectations are thread-safe on pthreads, so
// failing seeds are reported individually; an escaped exception
// (e.g. a validate() panic) would surface as a JobFailure instead of
// tearing down the test binary.
TEST(FuzzEquivalence, SeedSweepMatchesReference)
{
    exec::SweepOptions opts;
    opts.maxAttempts = 1;   // Nothing here is transient; no retry.
    exec::SweepRunner sweep(opts);
    for (int seed = 1; seed <= 12; ++seed)
        for (bool selective : {false, true})
            sweep.add("fuzz/s" + std::to_string(seed) +
                          (selective ? "/sash" : "/dash"),
                      [seed, selective](exec::JobContext &) {
                          checkSeed(seed, selective);
                      });
    const auto &failures = sweep.run();
    for (const auto &f : failures)
        ADD_FAILURE() << "job " << f.job
                      << " threw: " << f.error;
    EXPECT_EQ(failures.size(), 0u);
}

/** Serialize a StatSet for bit-exact comparison. */
std::string
statBytes(const StatSet &stats)
{
    std::ostringstream os;
    ckpt::SnapshotWriter w(os, "stats", 0, 0);
    w.beginSection(1);
    ckpt::saveStats(w, stats);
    w.endSection();
    return os.str();
}

/** Hook that saves one snapshot the first time @p at is reached. */
struct SaveAt : ckpt::CycleHook
{
    uint64_t at;
    std::string image;
    explicit SaveAt(uint64_t cycle) : at(cycle) {}
    void
    onCycle(uint64_t cycle, ckpt::Snapshotter &sim) override
    {
        if (cycle >= at && image.empty()) {
            std::ostringstream os;
            sim.save(os);
            image = os.str();
        }
    }
};

/**
 * Snapshot/resume equivalence on a random netlist: capture a mid-run
 * image, restore it into a FRESH engine, run to completion, and
 * require outputs, stats, and final state to match the uninterrupted
 * run bit-for-bit.
 */
void
checkSeedResume(int seed, bool selective)
{
    rtl::Netlist nl = randomNetlist(static_cast<uint64_t>(seed));
    auto stim_fn = [seed = seed](uint64_t cycle,
                                 std::vector<uint64_t> &in) {
        Rng rng(cycle * 977 + static_cast<uint64_t>(seed));
        for (auto &v : in)
            v = rng.next();
    };
    core::CompilerOptions copts;
    copts.numTiles = 4;
    copts.maxTaskCost = 6;
    core::TaskProgram prog = core::compile(nl, copts);
    core::ArchConfig acfg;
    acfg.numTiles = 4;
    acfg.selective = selective;
    constexpr uint64_t kCycles = 30;

    test::FnStimulus stimA(stim_fn);
    core::AshSimulator simA(prog, acfg);
    SaveAt hook(12);
    core::RunResult resA = simA.run(stimA, kCycles, &hook);
    ASSERT_FALSE(hook.image.empty()) << "no snapshot captured";

    core::AshSimulator simB(prog, acfg);
    std::istringstream in(hook.image);
    simB.restore(in);
    test::FnStimulus stimB(stim_fn);
    core::RunResult resB = simB.run(stimB, kCycles);

    EXPECT_EQ(resB.outputs, resA.outputs) << "seed " << seed;
    EXPECT_EQ(resB.chipCycles, resA.chipCycles) << "seed " << seed;
    EXPECT_EQ(statBytes(resB.stats), statBytes(resA.stats))
        << "seed " << seed;
    EXPECT_EQ(simB.stateHash(), simA.stateHash()) << "seed " << seed;
}

// Random mid-run snapshots: the crash-resume guarantee on arbitrary
// netlists, fanned out exactly like the seed sweep above.
TEST(FuzzEquivalence, SnapshotResumeMatchesUninterrupted)
{
    exec::SweepOptions opts;
    opts.maxAttempts = 1;
    exec::SweepRunner sweep(opts);
    for (int seed = 1; seed <= 6; ++seed)
        for (bool selective : {false, true})
            sweep.add("fuzz-ckpt/s" + std::to_string(seed) +
                          (selective ? "/sash" : "/dash"),
                      [seed, selective](exec::JobContext &) {
                          checkSeedResume(seed, selective);
                      });
    const auto &failures = sweep.run();
    for (const auto &f : failures)
        ADD_FAILURE() << "job " << f.job << " threw: " << f.error;
    EXPECT_EQ(failures.size(), 0u);
}

TEST(Vcd, DumpsWellFormedWaveform)
{
    rtl::Netlist nl =
        verilog::compileVerilog(test::mixedFixture(), "top");
    refsim::ReferenceSimulator sim(nl);
    std::ostringstream out;
    refsim::VcdWriter vcd(nl, out, "top");
    test::FnStimulus stim(test::mixedStimulus(4));
    for (uint64_t c = 0; c < 10; ++c) {
        sim.step(stim);
        vcd.sample(sim, c);
    }
    std::string text = out.str();
    EXPECT_NE(text.find("$timescale"), std::string::npos);
    EXPECT_NE(text.find("$enddefinitions"), std::string::npos);
    EXPECT_NE(text.find("$var wire 16"), std::string::npos);
    EXPECT_NE(text.find("#0"), std::string::npos);
    EXPECT_NE(text.find("#9"), std::string::npos);
    // Every declared signal must have an initial value at #0.
    size_t vars = 0, pos = 0;
    while ((pos = text.find("$var", pos)) != std::string::npos) {
        ++vars;
        pos += 4;
    }
    EXPECT_EQ(vars, nl.inputs().size() + nl.outputs().size() +
                        nl.regs().size());
}

TEST(Vcd, OnlyChangesAfterFirstSample)
{
    rtl::Netlist nl;
    rtl::NodeId r = nl.addReg("stable", 8, 7);
    nl.setRegNext(r, r);
    nl.addOutput("q", r);
    refsim::ReferenceSimulator sim(nl);
    std::ostringstream out;
    refsim::VcdWriter vcd(nl, out, "t");
    refsim::ZeroStimulus stim;
    for (uint64_t c = 0; c < 5; ++c) {
        sim.step(stim);
        vcd.sample(sim, c);
    }
    // The constant register should be emitted exactly once.
    std::string text = out.str();
    size_t count = 0, pos = 0;
    while ((pos = text.find("b111 ", pos)) != std::string::npos) {
        ++count;
        pos += 4;
    }
    EXPECT_EQ(count, 2u);   // Once for the reg, once for the output.
}

// A restored run appending to an existing VCD file must produce the
// same bytes as an uninterrupted run: header emitted once, no
// re-dumped initial values, no duplicated timestamps.
TEST(Vcd, ResumeAppendsWithoutDuplicates)
{
    rtl::Netlist nl =
        verilog::compileVerilog(test::mixedFixture(), "top");
    constexpr uint64_t kCycles = 10, kSplit = 5;

    // Uninterrupted 10-cycle dump.
    std::ostringstream full;
    {
        refsim::ReferenceSimulator sim(nl);
        refsim::VcdWriter vcd(nl, full, "top");
        test::FnStimulus stim(test::mixedStimulus(4));
        for (uint64_t c = 0; c < kCycles; ++c) {
            sim.step(stim);
            vcd.sample(sim, c);
        }
    }

    // First half, then checkpoint the engine and the writer's dedup
    // state as two images (one stream each; restore() insists on
    // consuming its image to the end).
    std::ostringstream split;
    std::string engineImage, vcdImage;
    {
        refsim::ReferenceSimulator sim(nl);
        refsim::VcdWriter vcd(nl, split, "top");
        test::FnStimulus stim(test::mixedStimulus(4));
        for (uint64_t c = 0; c < kSplit; ++c) {
            sim.step(stim);
            vcd.sample(sim, c);
        }
        std::ostringstream eng;
        sim.save(eng);
        engineImage = eng.str();
        std::ostringstream img;
        ckpt::SnapshotWriter w(img, "vcd", 0, 0);
        w.beginSection(1);
        vcd.saveState(w);
        w.endSection();
        vcdImage = img.str();
    }

    // Fresh process: restore the engine, attach an append-mode
    // writer restored from the saved dedup state, run the tail.
    {
        refsim::ReferenceSimulator sim(nl);
        std::istringstream in(engineImage);
        sim.restore(in);
        refsim::VcdWriter vcd(nl, split, "top", /*append=*/true);
        std::istringstream vin(vcdImage);
        ckpt::SnapshotReader r(vin);
        r.require("vcd", 0, 0);
        r.section(1);
        vcd.restoreState(r);
        r.endSection();
        r.expectEnd();
        test::FnStimulus stim(test::mixedStimulus(4));
        for (uint64_t c = kSplit; c < kCycles; ++c) {
            sim.step(stim);
            vcd.sample(sim, c);
        }
    }

    EXPECT_EQ(split.str(), full.str());

    // Belt and suspenders: exactly one header, no repeated stamps.
    std::string text = split.str();
    size_t defs = 0, pos = 0;
    while ((pos = text.find("$enddefinitions", pos)) !=
           std::string::npos) {
        ++defs;
        pos += 1;
    }
    EXPECT_EQ(defs, 1u);
    size_t stamp5 = 0;
    pos = 0;
    while ((pos = text.find("#5\n", pos)) != std::string::npos) {
        ++stamp5;
        pos += 1;
    }
    EXPECT_LE(stamp5, 1u);
}

} // namespace
} // namespace ash
