/** @file Tests for the reference simulator. */

#include <gtest/gtest.h>

#include "refsim/ReferenceSimulator.h"
#include "tests/TestUtil.h"
#include "verilog/Compile.h"

namespace ash::refsim {
namespace {

using ash::test::FnStimulus;

TEST(RefSim, CounterCounts)
{
    const char *src = R"(
module top(input clk, input en, output [7:0] q);
  reg [7:0] c;
  always_ff @(posedge clk) begin
    if (en) c <= c + 8'd1;
  end
  assign q = c;
endmodule
)";
    rtl::Netlist nl = verilog::compileVerilog(src, "top");
    ReferenceSimulator sim(nl);
    FnStimulus stim([](uint64_t c, std::vector<uint64_t> &in) {
        in[1] = c % 2;   // Enabled every other cycle.
    });
    auto trace = sim.run(stim, 10);
    // q shows the pre-edge value; enables at odd cycles.
    EXPECT_EQ(trace[0][0], 0u);
    EXPECT_EQ(trace[9][0], 4u);
}

TEST(RefSim, RegisterInitialValue)
{
    rtl::Netlist nl;
    rtl::NodeId r = nl.addReg("r", 8, 42);
    nl.setRegNext(r, r);   // Hold forever.
    nl.addOutput("q", r);
    ReferenceSimulator sim(nl);
    ZeroStimulus stim;
    sim.step(stim);
    EXPECT_EQ(sim.outputFrame()[0], 42u);
}

TEST(RefSim, PipelineLatency)
{
    const char *src = R"(
module top(input clk, input [7:0] x, output [7:0] q);
  reg [7:0] s1;
  reg [7:0] s2;
  always_ff @(posedge clk) begin
    s1 <= x;
    s2 <= s1;
  end
  assign q = s2;
endmodule
)";
    rtl::Netlist nl = verilog::compileVerilog(src, "top");
    ReferenceSimulator sim(nl);
    FnStimulus stim([](uint64_t c, std::vector<uint64_t> &in) {
        in[1] = c + 1;
    });
    auto trace = sim.run(stim, 6);
    EXPECT_EQ(trace[2][0], 1u);   // x(0) visible two cycles later.
    EXPECT_EQ(trace[5][0], 4u);
}

TEST(RefSim, ActivityOfConstantInputsDecays)
{
    rtl::Netlist nl = verilog::compileVerilog(
        ash::test::mixedFixture(), "top");
    ReferenceSimulator sim(nl);
    FnStimulus constant([](uint64_t, std::vector<uint64_t> &in) {
        in[1] = 5;
        in[2] = 2;
    });
    // acc saturates via AND-like op? op=2 is AND: acc&5 settles.
    sim.run(constant, 100);
    EXPECT_LT(sim.activityFactor(), 0.5);

    sim.reset();
    FnStimulus noisy(ash::test::mixedStimulus(3));
    sim.run(noisy, 100);
    EXPECT_GT(sim.activityFactor(), 0.3);
}

TEST(RefSim, ResetRestoresInitialState)
{
    rtl::Netlist nl = verilog::compileVerilog(
        ash::test::mixedFixture(), "top");
    ReferenceSimulator sim(nl);
    FnStimulus stim(ash::test::mixedStimulus(1));
    auto first = sim.run(stim, 20);
    sim.reset();
    FnStimulus stim2(ash::test::mixedStimulus(1));
    auto second = sim.run(stim2, 20);
    EXPECT_EQ(first, second);
}

TEST(RefSim, MemoryOutOfRangeReadsZero)
{
    rtl::Netlist nl;
    rtl::MemId m = nl.addMemory("m", 8, 4);
    rtl::NodeId addr = nl.addInput("a", 8);
    rtl::NodeId q = nl.addMemRead(m, addr);
    nl.addOutput("q", q);
    ReferenceSimulator sim(nl);
    FnStimulus stim([](uint64_t, std::vector<uint64_t> &in) {
        in[0] = 200;   // Beyond depth 4.
    });
    sim.step(stim);
    EXPECT_EQ(sim.outputFrame()[0], 0u);
}

TEST(RefSim, MemoryInitContents)
{
    rtl::Netlist nl;
    rtl::MemId m = nl.addMemory("m", 8, 4);
    nl.setMemoryInit(m, {10, 20, 30});
    rtl::NodeId addr = nl.addInput("a", 2);
    nl.addOutput("q", nl.addMemRead(m, addr));
    ReferenceSimulator sim(nl);
    for (uint64_t a = 0; a < 4; ++a) {
        FnStimulus stim([=](uint64_t, std::vector<uint64_t> &in) {
            in[0] = a;
        });
        ReferenceSimulator fresh(nl);
        fresh.step(stim);
        uint64_t expect = a == 0 ? 10 : a == 1 ? 20 : a == 2 ? 30 : 0;
        EXPECT_EQ(fresh.outputFrame()[0], expect);
    }
}

} // namespace
} // namespace ash::refsim
