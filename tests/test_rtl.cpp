/** @file Unit tests for the RTL netlist IR and transforms. */

#include <gtest/gtest.h>

#include "common/Logging.h"
#include "refsim/ReferenceSimulator.h"
#include "rtl/Cost.h"
#include "rtl/Eval.h"
#include "rtl/Netlist.h"
#include "rtl/Transform.h"
#include "tests/TestUtil.h"

namespace ash::rtl {
namespace {

TEST(Netlist, BuilderBasics)
{
    Netlist nl;
    NodeId a = nl.addInput("a", 8);
    NodeId b = nl.addInput("b", 8);
    NodeId sum = nl.addOp(Op::Add, 8, {a, b});
    nl.addOutput("y", sum);
    EXPECT_EQ(nl.inputs().size(), 2u);
    EXPECT_EQ(nl.outputs().size(), 1u);
    EXPECT_EQ(nl.inputName(a), "a");
    EXPECT_EQ(nl.outputName(nl.outputs()[0]), "y");
    nl.validate();
}

TEST(Netlist, RegisterRoundTrip)
{
    Netlist nl;
    NodeId r = nl.addReg("r", 4, 5);
    NodeId one = nl.addConst(4, 1);
    NodeId next = nl.addOp(Op::Add, 4, {r, one});
    nl.setRegNext(r, next);
    nl.addOutput("y", r);
    nl.validate();
    EXPECT_EQ(nl.regs()[0].init, 5u);
    EXPECT_EQ(nl.regIndex(r), 0u);
}

TEST(Netlist, UndrivenRegisterFails)
{
    Netlist nl;
    nl.addReg("r", 4, 0);
    EXPECT_THROW(nl.validate(), FatalError);
}

TEST(Netlist, ConstTruncation)
{
    Netlist nl;
    NodeId c = nl.addConst(4, 0x1f);
    EXPECT_EQ(nl.node(c).imm, 0xfu);
}

TEST(Netlist, MemoryPorts)
{
    Netlist nl;
    MemId m = nl.addMemory("m", 16, 32);
    NodeId addr = nl.addInput("addr", 5);
    NodeId data = nl.addInput("data", 16);
    NodeId en = nl.addInput("en", 1);
    nl.addMemWrite(m, addr, data, en);
    NodeId rd = nl.addMemRead(m, addr);
    nl.addOutput("q", rd);
    nl.validate();
    EXPECT_EQ(nl.memories()[0].writePorts.size(), 1u);
    EXPECT_EQ(nl.node(rd).width, 16);
}

TEST(Netlist, TopoOrderRespectsOperands)
{
    Netlist nl;
    NodeId a = nl.addInput("a", 8);
    NodeId x = nl.addOp(Op::Not, 8, {a});
    NodeId y = nl.addOp(Op::Add, 8, {x, a});
    nl.addOutput("o", y);
    auto order = nl.topoOrder();
    auto pos = [&](NodeId n) {
        return std::find(order.begin(), order.end(), n) -
               order.begin();
    };
    EXPECT_LT(pos(a), pos(x));
    EXPECT_LT(pos(x), pos(y));
}

TEST(EvalCombOp, Arithmetic)
{
    Netlist nl;
    NodeId a = nl.addInput("a", 8);
    NodeId b = nl.addInput("b", 8);
    uint64_t ops[2] = {200, 100};
    auto run = [&](Op op, unsigned w = 8) {
        Node n;
        n.op = op;
        n.width = static_cast<uint8_t>(w);
        n.operands = {a, b};
        return evalCombOp(n, nl, ops);
    };
    EXPECT_EQ(run(Op::Add), (200 + 100) & 0xff);
    EXPECT_EQ(run(Op::Sub), 100u);
    EXPECT_EQ(run(Op::Mul), (200 * 100) & 0xff);
    EXPECT_EQ(run(Op::Div), 2u);
    EXPECT_EQ(run(Op::Mod), 0u);
    EXPECT_EQ(run(Op::Lt, 1), 0u);
    EXPECT_EQ(run(Op::Gt, 1), 1u);
}

TEST(EvalCombOp, DivByZeroIsZero)
{
    Netlist nl;
    NodeId a = nl.addInput("a", 8);
    NodeId b = nl.addInput("b", 8);
    uint64_t ops[2] = {7, 0};
    Node n;
    n.op = Op::Div;
    n.width = 8;
    n.operands = {a, b};
    EXPECT_EQ(evalCombOp(n, nl, ops), 0u);
    n.op = Op::Mod;
    EXPECT_EQ(evalCombOp(n, nl, ops), 0u);
}

TEST(EvalCombOp, SignedCompare)
{
    Netlist nl;
    NodeId a = nl.addInput("a", 8);
    NodeId b = nl.addInput("b", 8);
    uint64_t ops[2] = {0xff /* -1 */, 1};
    Node n;
    n.op = Op::SLt;
    n.width = 1;
    n.operands = {a, b};
    EXPECT_EQ(evalCombOp(n, nl, ops), 1u);
    n.op = Op::Lt;
    EXPECT_EQ(evalCombOp(n, nl, ops), 0u);
}

TEST(EvalCombOp, ShiftsSaturate)
{
    Netlist nl;
    NodeId a = nl.addInput("a", 8);
    NodeId b = nl.addInput("b", 8);
    uint64_t ops[2] = {0x81, 9};
    Node n;
    n.op = Op::Shl;
    n.width = 8;
    n.operands = {a, b};
    EXPECT_EQ(evalCombOp(n, nl, ops), 0u);
    n.op = Op::LShr;
    EXPECT_EQ(evalCombOp(n, nl, ops), 0u);
    n.op = Op::AShr;
    EXPECT_EQ(evalCombOp(n, nl, ops), 0xffu);   // Sign fill.
}

TEST(EvalCombOp, ConcatMsbFirst)
{
    Netlist nl;
    NodeId a = nl.addInput("a", 4);
    NodeId b = nl.addInput("b", 4);
    uint64_t ops[2] = {0xA, 0x5};
    Node n;
    n.op = Op::Concat;
    n.width = 8;
    n.operands = {a, b};
    EXPECT_EQ(evalCombOp(n, nl, ops), 0xA5u);
}

TEST(EvalCombOp, Reductions)
{
    Netlist nl;
    NodeId a = nl.addInput("a", 4);
    uint64_t all_ones[1] = {0xF};
    uint64_t some[1] = {0x6};
    Node n;
    n.width = 1;
    n.operands = {a};
    n.op = Op::RedAnd;
    EXPECT_EQ(evalCombOp(n, nl, all_ones), 1u);
    EXPECT_EQ(evalCombOp(n, nl, some), 0u);
    n.op = Op::RedOr;
    EXPECT_EQ(evalCombOp(n, nl, some), 1u);
    n.op = Op::RedXor;
    EXPECT_EQ(evalCombOp(n, nl, some), 0u);   // Two bits set.
}

TEST(Cost, SourcesAreFree)
{
    Node n;
    n.op = Op::Input;
    EXPECT_EQ(nodeCost(n), 0u);
    n.op = Op::Mul;
    EXPECT_GT(nodeCost(n), 1u);
    EXPECT_GT(nodeCodeBytes(n), 0u);
}

TEST(Transform, PruneDeadPreservesBehavior)
{
    rtl::Netlist nl =
        verilog::compileVerilog(ash::test::mixedFixture(), "top");
    // compileVerilog already prunes; add a dead node and re-prune.
    NodeId a = nl.addInput("unused", 8);
    nl.addOp(Op::Not, 8, {a});
    rtl::Netlist pruned = pruneDead(nl);
    EXPECT_LE(pruned.numNodes(), nl.numNodes());

    refsim::ReferenceSimulator before(nl);
    refsim::ReferenceSimulator after(pruned);
    ash::test::FnStimulus s1(ash::test::mixedStimulus(1));
    ash::test::FnStimulus s2(ash::test::mixedStimulus(1));
    auto t1 = before.run(s1, 30);
    auto t2 = after.run(s2, 30);
    ASSERT_EQ(t1.size(), t2.size());
    for (size_t c = 0; c < t1.size(); ++c)
        EXPECT_EQ(t1[c], t2[c]) << "cycle " << c;
}

TEST(Transform, PruneKeepsInterface)
{
    rtl::Netlist nl;
    nl.addInput("in", 8);
    NodeId c = nl.addConst(8, 3);
    nl.addOutput("out", c);
    rtl::Netlist pruned = pruneDead(nl);
    EXPECT_EQ(pruned.inputs().size(), 1u);
    EXPECT_EQ(pruned.outputs().size(), 1u);
}

} // namespace
} // namespace ash::rtl
