# ctest driver: the chaos contract, end to end. Run a sweep bench
# fault-free to get the golden stdout and stats JSON, then re-run it
# under a fault plan that injects one transient failure into every
# job body: the retry path must absorb the faults and the healthy
# output must stay byte-identical to the fault-free run — at any
# --jobs count. A final leg corrupts checkpoint images while killing
# the process mid-run (ASH_CKPT_DIE_AFTER) and requires the resumed
# run to detect the damage (CRC), fall back, and still reproduce the
# golden output byte for byte.
# Invoked as:
#   cmake -DBENCH=<binary> -DWORKDIR=<dir> -P RunChaos.cmake

file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")

set(json "${WORKDIR}/stats.json")
set(ckpt "${WORKDIR}/ckpt")

# One injected exception on the first attempt of every job (count=1
# per (site, job) pair); SweepRunner's second attempt must succeed.
set(plan "seed=9;job.body@table5:error:count=1")

# 1. Fault-free golden run.
execute_process(COMMAND "${BENCH}" --jobs 4 --stats-json "${json}"
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE out_golden
                ERROR_VARIABLE err_golden)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "golden run exited with ${rc}:\n${err_golden}")
endif()
file(RENAME "${json}" "${WORKDIR}/stats_golden.json")
file(WRITE "${WORKDIR}/stdout_golden.txt" "${out_golden}")

# 2. Same sweep under the fault plan, serial and parallel: retries
# absorb every injected failure and the output is byte-identical.
foreach(jobs 1 4)
    execute_process(COMMAND "${BENCH}" --jobs ${jobs}
                            --fault-plan "${plan}"
                            --stats-json "${json}"
                    RESULT_VARIABLE rc
                    OUTPUT_VARIABLE out_chaos
                    ERROR_VARIABLE err_chaos)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "fault-plan run (--jobs ${jobs}) exited "
                            "with ${rc}:\n${err_chaos}")
    endif()
    # The plan must actually have armed (and fired) — a silently
    # disarmed injector would make this test vacuous.
    if(NOT err_chaos MATCHES "fault injection armed")
        message(FATAL_ERROR "fault-plan run shows no sign of arming "
                            "the injector:\n${err_chaos}")
    endif()
    file(RENAME "${json}" "${WORKDIR}/stats_chaos${jobs}.json")
    file(WRITE "${WORKDIR}/stdout_chaos${jobs}.txt" "${out_chaos}")

    execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                            "${WORKDIR}/stats_golden.json"
                            "${WORKDIR}/stats_chaos${jobs}.json"
                    RESULT_VARIABLE cmp_rc)
    if(NOT cmp_rc EQUAL 0)
        message(FATAL_ERROR "stats JSON differs between fault-free "
                            "and fault-plan runs at --jobs ${jobs} "
                            "(${WORKDIR}/stats_{golden,chaos${jobs}}.json)")
    endif()
    execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                            "${WORKDIR}/stdout_golden.txt"
                            "${WORKDIR}/stdout_chaos${jobs}.txt"
                    RESULT_VARIABLE cmp_rc)
    if(NOT cmp_rc EQUAL 0)
        message(FATAL_ERROR "stdout differs between fault-free and "
                            "fault-plan runs at --jobs ${jobs} "
                            "(${WORKDIR}/stdout_{golden,chaos${jobs}}.txt)")
    endif()
endforeach()

# 3. Checkpoint-corruption + kill + resume: every job's first image
# write is bit-flipped on disk (the in-memory state is untouched),
# the process is killed after the 6th image, and the resume must
# CRC-detect the damage, fall back (older image or fresh run), and
# still match the golden output byte for byte.
execute_process(COMMAND ${CMAKE_COMMAND} -E env ASH_CKPT_DIE_AFTER=6
                        "${BENCH}" --jobs 4 --checkpoint-every 5
                        --checkpoint-dir "${ckpt}"
                        --fault-plan "seed=9;ckpt.image.bytes:corrupt:bytes=1:count=1"
                        --stats-json "${json}"
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE out_killed
                ERROR_VARIABLE err_killed)
if(NOT rc EQUAL 42)
    message(FATAL_ERROR "crash-injected run exited with ${rc} "
                        "(wanted 42):\n${err_killed}")
endif()
if(NOT EXISTS "${ckpt}")
    message(FATAL_ERROR "killed run left no checkpoint dir ${ckpt}")
endif()

execute_process(COMMAND "${BENCH}" --jobs 4 --resume "${ckpt}"
                        --stats-json "${json}"
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE out_resumed
                ERROR_VARIABLE err_resumed)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "resumed run exited with ${rc}:\n${err_resumed}")
endif()
file(RENAME "${json}" "${WORKDIR}/stats_resumed.json")
file(WRITE "${WORKDIR}/stdout_resumed.txt" "${out_resumed}")

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        "${WORKDIR}/stats_golden.json"
                        "${WORKDIR}/stats_resumed.json"
                RESULT_VARIABLE cmp_rc)
if(NOT cmp_rc EQUAL 0)
    message(FATAL_ERROR "stats JSON differs between golden and "
                        "corrupt-checkpoint resumed runs "
                        "(${WORKDIR}/stats_{golden,resumed}.json)")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        "${WORKDIR}/stdout_golden.txt"
                        "${WORKDIR}/stdout_resumed.txt"
                RESULT_VARIABLE cmp_rc)
if(NOT cmp_rc EQUAL 0)
    message(FATAL_ERROR "stdout differs between golden and "
                        "corrupt-checkpoint resumed runs "
                        "(${WORKDIR}/stdout_{golden,resumed}.txt)")
endif()
