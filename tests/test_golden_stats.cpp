/**
 * @file
 * Golden stats regression tests: the optimized AshSim hot path (dense
 * state slots, pooled TMU queues, indexed event heap) must reproduce
 * the seed engine's timing-visible behavior EXACTLY, not just its
 * committed outputs. These tests pin the key `--stats-json` metrics
 * (commits, aborts, executed tasks, chip cycles, sent descriptors) of
 * deterministic runs to the values recorded from the seed build; any
 * drift means a container swap changed iteration order, event
 * tie-breaks, or allocation-visible behavior, which the fuzz
 * equivalence sweep alone would not catch (outputs can match while
 * timing diverges).
 *
 * To re-capture after an intentional behavioral change, run with
 * ASH_GOLDEN_PRINT=1 and paste the emitted table.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "core/arch/AshSim.h"
#include "core/compiler/Compiler.h"
#include "designs/Designs.h"
#include "tests/TestUtil.h"
#include "verilog/Compile.h"

namespace ash::core {
namespace {

using test::FnStimulus;

/** The pinned metrics of one deterministic run. */
struct Golden
{
    const char *name;
    uint64_t tasksCommitted;
    uint64_t tasksExecuted;
    uint64_t aborts;
    uint64_t chipCycles;
    uint64_t descsSent;
};

void
checkGolden(const Golden &g, const RunResult &res)
{
    if (std::getenv("ASH_GOLDEN_PRINT")) {
        std::printf("GOLDEN {\"%s\", %lluull, %lluull, %lluull, "
                    "%lluull, %lluull},\n",
                    g.name,
                    (unsigned long long)res.stats.get("tasksCommitted"),
                    (unsigned long long)res.stats.get("tasksExecuted"),
                    (unsigned long long)res.stats.get("aborts"),
                    (unsigned long long)res.chipCycles,
                    (unsigned long long)res.stats.get("descsSent"));
        return;
    }
    EXPECT_EQ(res.stats.get("tasksCommitted"), g.tasksCommitted)
        << g.name << ": tasksCommitted drifted";
    EXPECT_EQ(res.stats.get("tasksExecuted"), g.tasksExecuted)
        << g.name << ": tasksExecuted drifted";
    EXPECT_EQ(res.stats.get("aborts"), g.aborts)
        << g.name << ": aborts drifted";
    EXPECT_EQ(res.chipCycles, g.chipCycles)
        << g.name << ": chipCycles drifted";
    EXPECT_EQ(res.stats.get("descsSent"), g.descsSent)
        << g.name << ": descsSent drifted";
}

RunResult
runMixed(bool selective, uint32_t tiles, uint64_t seed,
         uint64_t cycles)
{
    rtl::Netlist nl =
        verilog::compileVerilog(test::mixedFixture(), "top");
    CompilerOptions copts;
    copts.numTiles = tiles;
    ArchConfig acfg;
    acfg.numTiles = tiles;
    acfg.coresPerTile = 2;
    acfg.selective = selective;
    TaskProgram prog = compile(nl, copts);
    AshSimulator sim(prog, acfg);
    FnStimulus stim(test::mixedStimulus(seed));
    return sim.run(stim, cycles);
}

RunResult
runDesign(int design, bool selective, uint32_t tiles, uint64_t cycles)
{
    designs::DesignScale scale;
    scale.nttPoints = 16;
    scale.pes = 9;
    scale.rvCores = 4;
    scale.warps = 4;
    scale.lanes = 2;
    auto all = designs::allDesigns(scale);
    const designs::Design &d = all[design];
    rtl::Netlist nl = designs::compileDesign(d);
    CompilerOptions copts;
    copts.numTiles = tiles;
    ArchConfig acfg;
    acfg.numTiles = tiles;
    acfg.selective = selective;
    TaskProgram prog = compile(nl, copts);
    AshSimulator sim(prog, acfg);
    auto stim = d.makeStimulus();
    return sim.run(*stim, cycles);
}

// Captured from the seed build (commit 183f92d). Do not update these
// to "make the test pass" after touching the engine hot path: a
// mismatch is the regression this suite exists to catch.
const Golden kMixedDash{"mixed/dash/t4", 849ull, 851ull, 0ull,
                        2570ull, 1553ull};
const Golden kMixedSash{"mixed/sash/t4", 554ull, 626ull, 13ull,
                        4280ull, 1223ull};
const Golden kNttDash{"ntt16/dash/t4", 6973ull, 6981ull, 0ull,
                      12180ull, 8911ull};
const Golden kNttSash{"ntt16/sash/t4", 6613ull, 6670ull, 0ull,
                      16220ull, 8528ull};
const Golden kVortexSash{"vortex/sash/t8", 3052ull, 3626ull, 471ull,
                         14300ull, 5884ull};
const Golden kPeSash{"chronos_pe/sash/t4", 1667ull, 1686ull, 7ull,
                     9750ull, 3168ull};

TEST(GoldenStats, MixedDash)
{
    checkGolden(kMixedDash, runMixed(false, 4, 1, 50));
}

TEST(GoldenStats, MixedSash)
{
    checkGolden(kMixedSash, runMixed(true, 4, 1, 50));
}

TEST(GoldenStats, NttDash)
{
    checkGolden(kNttDash, runDesign(3, false, 4, 40));
}

TEST(GoldenStats, NttSash)
{
    checkGolden(kNttSash, runDesign(3, true, 4, 40));
}

TEST(GoldenStats, VortexSash)
{
    checkGolden(kVortexSash, runDesign(0, true, 8, 40));
}

TEST(GoldenStats, ChronosPeSash)
{
    checkGolden(kPeSash, runDesign(1, true, 4, 40));
}

} // namespace
} // namespace ash::core
