/**
 * @file
 * ash_prof unit tests: zone nesting and reentrancy, the perf_event
 * fallback contract, JSONL sample well-formedness, the prof JSON
 * report shape, and deterministic per-job resource accounting
 * through SweepRunner at different --jobs counts. The stdout /
 * stats-json byte-identity guarantee with profiling armed is covered
 * end to end by the Prof.JobsDeterminism ctest (RunProfDeterminism.
 * cmake); these tests pin the library-level invariants.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/Json.h"
#include "exec/SweepRunner.h"
#include "prof/HwCounters.h"
#include "prof/Prof.h"

using namespace ash;

namespace {

/** Arm a pristine profiler (hw counters off: CI containers often
 *  deny perf_event_open, and these tests assert timer behavior). */
class ProfTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        prof::Profiler::instance().clear();
        prof::Profiler::instance().setHwCountersEnabled(false);
        prof::Profiler::instance().arm();
    }

    void
    TearDown() override
    {
        prof::Profiler::instance().clear();
    }
};

} // namespace

// The macro-driven tests need the instrumentation compiled in; the
// ASH_PROF_ENABLED=OFF CI leg builds this binary with the macro
// expanded to ((void)0), where recording nothing is the contract.
#if ASH_PROF

TEST_F(ProfTest, ZonesNestIntoSlashPaths)
{
    {
        ASH_PROF_ZONE("outer");
        {
            ASH_PROF_ZONE("inner");
        }
        {
            ASH_PROF_ZONE("inner");
        }
    }
    auto zones = prof::Profiler::instance().zones();
    ASSERT_EQ(zones.count("outer"), 1u);
    ASSERT_EQ(zones.count("outer/inner"), 1u);
    EXPECT_EQ(zones["outer"].count, 1u);
    EXPECT_EQ(zones["outer/inner"].count, 2u);
    // The child's wall time is attributed to the parent, so self
    // time never exceeds inclusive time.
    EXPECT_LE(zones["outer"].selfWallNs(), zones["outer"].wallNs);
    EXPECT_GE(zones["outer"].wallNs, zones["outer"].childWallNs);
}

TEST_F(ProfTest, ReentrantZoneBuildsDistinctPaths)
{
    // Recursion: the same name on the stack twice is two paths.
    {
        ASH_PROF_ZONE("r");
        {
            ASH_PROF_ZONE("r");
        }
    }
    auto zones = prof::Profiler::instance().zones();
    ASSERT_EQ(zones.count("r"), 1u);
    ASSERT_EQ(zones.count("r/r"), 1u);
    EXPECT_EQ(zones["r"].count, 1u);
    EXPECT_EQ(zones["r/r"].count, 1u);

    // After full unwind, a new top-level zone starts a fresh path.
    {
        ASH_PROF_ZONE("s");
    }
    zones = prof::Profiler::instance().zones();
    ASSERT_EQ(zones.count("s"), 1u);
    EXPECT_EQ(zones.count("r/s"), 0u);
}

TEST_F(ProfTest, DisarmedZoneRecordsNothing)
{
    prof::Profiler::instance().disarm();
    {
        ASH_PROF_ZONE("ghost");
    }
    EXPECT_EQ(prof::Profiler::instance().zones().count("ghost"), 0u);
}

TEST_F(ProfTest, PhaseTimerBalancesAndIsIdempotent)
{
    prof::PhaseTimer t;
    t.begin("phase");
    t.begin("phase");   // Ignored: already begun.
    t.end();
    t.end();            // Ignored: already ended.
    auto zones = prof::Profiler::instance().zones();
    ASSERT_EQ(zones.count("phase"), 1u);
    EXPECT_EQ(zones["phase"].count, 1u);
}

#endif // ASH_PROF

TEST(ProfHwCounters, OpenEitherWorksOrExplainsItself)
{
    // The fallback contract: constructing HwCounters never throws or
    // crashes; either the group opened and read() yields monotone
    // counters, or ok() is false and error() names the reason.
    prof::HwCounters hw;
    if (hw.ok()) {
        prof::HwCounters::Values a;
        prof::HwCounters::Values b;
        ASSERT_TRUE(hw.read(a));
        // Burn some instructions between the reads.
        volatile uint64_t sink = 0;
        for (uint64_t i = 0; i < 100000; ++i)
            sink += i * i;
        ASSERT_TRUE(hw.read(b));
        EXPECT_GE(b.instructions, a.instructions);
        EXPECT_GE(b.cycles, a.cycles);
    } else {
        ASSERT_NE(hw.error(), nullptr);
        EXPECT_NE(std::string(hw.error()), "");
        prof::HwCounters::Values v;
        EXPECT_FALSE(hw.read(v));   // Fails cleanly, no crash.
    }
}

TEST_F(ProfTest, JsonlSamplesAreOneValidJsonObjectPerLine)
{
    std::ostringstream out;
    prof::Profiler::instance().sampleNow(out);
    prof::Profiler::instance().zoneEnter("work");
    prof::Profiler::instance().zoneExit();
    prof::Profiler::instance().sampleNow(out);

    std::istringstream lines(out.str());
    std::string line;
    size_t n = 0;
    while (std::getline(lines, line)) {
        JsonValue doc;
        std::string err;
        ASSERT_TRUE(jsonParse(line, doc, &err))
            << err << "\n" << line;
        EXPECT_TRUE(doc["t_sec"].isNumber());
        EXPECT_TRUE(doc["rss_kb"].isNumber());
        EXPECT_TRUE(doc["zones"].isNumber());
        ++n;
    }
    EXPECT_EQ(n, 2u);
}

TEST_F(ProfTest, ReportJsonIsValidAndStampsBuildInfo)
{
    prof::Profiler::instance().zoneEnter("alpha");
    prof::Profiler::instance().zoneExit();
    std::string doc = prof::Profiler::instance().toJson();
    std::string err;
    JsonValue v;
    ASSERT_TRUE(jsonParse(doc, v, &err)) << err;
    EXPECT_TRUE(v["build"]["git"].isString());
    EXPECT_TRUE(v["build"]["compiler"].isString());
    EXPECT_TRUE(v["build"]["options"].isString());
    ASSERT_TRUE(v["zones"].isArray());
    bool sawAlpha = false;
    for (const JsonValue &z : v["zones"].array())
        sawAlpha = sawAlpha || z["path"].string() == "alpha";
    EXPECT_TRUE(sawAlpha);
}

namespace {

/** Names of the merged job bills, in merge order. */
std::vector<std::string>
sweepCostNames(unsigned jobs)
{
    prof::Profiler::instance().clear();
    prof::Profiler::instance().setHwCountersEnabled(false);
    prof::Profiler::instance().arm();

    exec::SweepOptions opts;
    opts.jobs = jobs;
    opts.backoffBaseMs = 0;
    exec::SweepRunner sweep(opts);
    for (int i = 0; i < 8; ++i) {
        sweep.add("prof/job" + std::to_string(i),
                  [](exec::JobContext &ctx) {
                      volatile uint64_t sink = 0;
                      for (uint64_t k = 0; k < 50000; ++k)
                          sink += k ^ ctx.seed();
                  });
    }
    sweep.run();

    std::vector<std::string> names;
    for (const prof::JobCost &c :
         prof::Profiler::instance().jobCosts()) {
        EXPECT_EQ(c.attempts, 1);
        EXPECT_EQ(c.attemptOutcomes.size(), 1u);
        if (!c.attemptOutcomes.empty())
            EXPECT_EQ(c.attemptOutcomes[0], "ok");
        EXPECT_FALSE(c.failed);
        EXPECT_FALSE(c.replayed);
        EXPECT_GE(c.wallSec, 0.0);
        names.push_back(c.job);
    }
    prof::Profiler::instance().clear();
    return names;
}

} // namespace

TEST(ProfSweep, JobCostsMergeInSubmissionOrderAtAnyJobCount)
{
    std::vector<std::string> at1 = sweepCostNames(1);
    std::vector<std::string> at4 = sweepCostNames(4);
    ASSERT_EQ(at1.size(), 8u);
    // Content AND order are independent of the worker count.
    EXPECT_EQ(at1, at4);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(at1[size_t(i)], "prof/job" + std::to_string(i));
}

TEST(ProfSweep, FailedAndRetriedJobsAreBilledPerAttempt)
{
    prof::Profiler::instance().clear();
    prof::Profiler::instance().setHwCountersEnabled(false);
    prof::Profiler::instance().arm();

    exec::SweepOptions opts;
    opts.jobs = 2;
    opts.maxAttempts = 2;
    opts.backoffBaseMs = 0;
    exec::SweepRunner sweep(opts);
    sweep.add("prof/flaky", [](exec::JobContext &ctx) {
        if (ctx.attempt() == 0)
            throw Error("test", "first attempt fails");
    });
    sweep.add("prof/hopeless", [](exec::JobContext &) {
        throw Error("test", "always fails");
    });
    sweep.run();

    std::vector<prof::JobCost> costs =
        prof::Profiler::instance().jobCosts();
    ASSERT_EQ(costs.size(), 2u);

    EXPECT_EQ(costs[0].job, "prof/flaky");
    EXPECT_EQ(costs[0].attempts, 2);
    ASSERT_EQ(costs[0].attemptOutcomes.size(), 2u);
    EXPECT_EQ(costs[0].attemptOutcomes[0], "error");
    EXPECT_EQ(costs[0].attemptOutcomes[1], "ok");
    EXPECT_FALSE(costs[0].failed);

    EXPECT_EQ(costs[1].job, "prof/hopeless");
    EXPECT_EQ(costs[1].attempts, 2);
    ASSERT_EQ(costs[1].attemptOutcomes.size(), 2u);
    EXPECT_EQ(costs[1].attemptOutcomes[1], "error");
    EXPECT_TRUE(costs[1].failed);

    prof::Profiler::instance().clear();
}
