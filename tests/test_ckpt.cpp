/**
 * @file
 * ash_ckpt test suite: the versioned snapshot format (corruption and
 * version-mismatch rejection, never UB), bit-identical save/restore
 * round trips for all three engines (refsim, DASH/SASH, baseline),
 * the periodic CheckpointManager (retention, manifest, restore), the
 * resumable-sweep layer of ash_exec, the jsonParse() DOM the
 * manifests depend on, and a committed golden snapshot fixture that
 * pins the on-disk format across code changes.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "baseline/Baseline.h"
#include "ckpt/Checkpoint.h"
#include "common/Json.h"
#include "exec/SweepRunner.h"
#include "tests/TestUtil.h"

namespace fs = std::filesystem;

namespace ash {
namespace {

// ============================================================================
// Helpers
// ============================================================================

/** Fresh, empty scratch directory under the gtest temp root. */
std::string
scratchDir(const std::string &name)
{
    fs::path dir = fs::path(::testing::TempDir()) / ("ash_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

/** The mixed reg/mem/logic fixture everything here simulates. */
rtl::Netlist
fixtureNetlist()
{
    return verilog::compileVerilog(test::mixedFixture(), "top");
}

/** Hook that saves one image the first time @p cycle is reached. */
struct SaveAt : ckpt::CycleHook
{
    uint64_t at;
    uint64_t savedCycle = 0;
    std::string image;
    explicit SaveAt(uint64_t cycle) : at(cycle) {}
    void
    onCycle(uint64_t cycle, ckpt::Snapshotter &sim) override
    {
        if (cycle >= at && image.empty()) {
            std::ostringstream os;
            sim.save(os);
            image = os.str();
            savedCycle = cycle;
        }
    }
};

/** Bit-exact StatSet comparison via the shared serializer. */
std::string
statBytes(const StatSet &stats)
{
    std::ostringstream os;
    ckpt::SnapshotWriter w(os, "stats", 0, 0);
    w.beginSection(1);
    ckpt::saveStats(w, stats);
    w.endSection();
    return os.str();
}

/** A small complete snapshot image for format-level tests. */
std::string
sampleImage()
{
    std::ostringstream os;
    ckpt::SnapshotWriter w(os, "refsim", 0x1234, 0x5678);
    w.beginSection(7);
    w.u64(42);
    w.str("hello");
    w.f64(2.5);
    w.endSection();
    w.beginSection(8);
    w.u32(9);
    w.endSection();
    return os.str();
}

// ============================================================================
// Snapshot format
// ============================================================================

TEST(SnapshotFormat, RoundTripsAllFieldTypes)
{
    std::ostringstream os;
    ckpt::SnapshotWriter w(os, "engine", 11, 22);
    w.beginSection(1);
    w.u8(200);
    w.u32(123456);
    w.u64(~0ull);
    w.i64(-5);
    w.f64(-0.1);
    w.b(true);
    w.str("snapshot");
    std::vector<uint32_t> v{1, 2, 3};
    w.vec(v);
    w.endSection();

    std::istringstream is(os.str());
    ckpt::SnapshotReader r(is);
    EXPECT_EQ(r.version(), ckpt::kSnapshotVersion);
    EXPECT_EQ(r.engine(), "engine");
    r.require("engine", 11, 22);
    r.section(1);
    EXPECT_EQ(r.u8(), 200);
    EXPECT_EQ(r.u32(), 123456u);
    EXPECT_EQ(r.u64(), ~0ull);
    EXPECT_EQ(r.i64(), -5);
    EXPECT_EQ(r.f64(), -0.1);
    EXPECT_TRUE(r.b());
    EXPECT_EQ(r.str(), "snapshot");
    std::vector<uint32_t> got;
    r.vec(got);
    EXPECT_EQ(got, v);
    r.endSection();
    r.expectEnd();
}

TEST(SnapshotFormat, RejectsBadMagic)
{
    std::string img = sampleImage();
    img[0] = 'X';
    std::istringstream is(img);
    EXPECT_THROW(ckpt::SnapshotReader r(is), ckpt::SnapshotError);
}

TEST(SnapshotFormat, RejectsVersionMismatch)
{
    std::string img = sampleImage();
    img[8] = static_cast<char>(0xEE);   // u32 version after magic.
    std::istringstream is(img);
    EXPECT_THROW(ckpt::SnapshotReader r(is), ckpt::SnapshotError);
}

TEST(SnapshotFormat, RejectsCorruptedSectionPayload)
{
    std::string img = sampleImage();
    // Flip one payload byte of the first section; its CRC must trip
    // before any field is readable.
    size_t headerEnd = 8 + 4 + 8 + 6 + 8 + 8;   // "refsim" = 6 chars.
    img[headerEnd + 12 + 3] ^= 0x40;
    std::istringstream is(img);
    ckpt::SnapshotReader r(is);
    EXPECT_THROW(r.section(7), ckpt::SnapshotError);
}

TEST(SnapshotFormat, RejectsTruncation)
{
    std::string img = sampleImage();
    std::istringstream is(img.substr(0, img.size() - 9));
    ckpt::SnapshotReader r(is);
    r.section(7);   // First section is intact.
    r.u64();
    r.str();
    r.f64();
    r.endSection();
    EXPECT_THROW(r.section(8), ckpt::SnapshotError);
}

TEST(SnapshotFormat, RequireChecksHeaderFields)
{
    std::string img = sampleImage();
    std::istringstream is(img);
    ckpt::SnapshotReader r(is);
    EXPECT_THROW(r.require("ash", 0x1234, 0x5678),
                 ckpt::SnapshotError);
    EXPECT_THROW(r.require("refsim", 0x9999, 0x5678),
                 ckpt::SnapshotError);
    EXPECT_THROW(r.require("refsim", 0x1234, 0x9999),
                 ckpt::SnapshotError);
    r.require("refsim", 0x1234, 0x5678);
}

TEST(SnapshotFormat, EndSectionDetectsUnreadPayload)
{
    std::string img = sampleImage();
    std::istringstream is(img);
    ckpt::SnapshotReader r(is);
    r.section(7);
    r.u64();   // Leave the string and double unread.
    EXPECT_THROW(r.endSection(), ckpt::SnapshotError);
}

TEST(SnapshotFormat, ExpectEndRejectsTrailingSections)
{
    std::string img = sampleImage();
    std::istringstream is(img);
    ckpt::SnapshotReader r(is);
    r.section(7);
    r.u64();
    r.str();
    r.f64();
    r.endSection();
    EXPECT_THROW(r.expectEnd(), ckpt::SnapshotError);
}

// ============================================================================
// Engine round trips
// ============================================================================

TEST(EngineCkpt, RefsimResumeMatchesUninterrupted)
{
    rtl::Netlist nl = fixtureNetlist();

    test::FnStimulus stimA(test::mixedStimulus(4));
    refsim::ReferenceSimulator simA(nl);
    refsim::OutputTrace golden = simA.run(stimA, 20);

    // Run 8 cycles, snapshot, restore into a FRESH simulator, and
    // run the remaining 12: the tail trace and the final state must
    // be bit-identical to the uninterrupted run's.
    test::FnStimulus stimB(test::mixedStimulus(4));
    refsim::ReferenceSimulator simB(nl);
    refsim::OutputTrace head = simB.run(stimB, 8);
    std::ostringstream image;
    simB.save(image);

    refsim::ReferenceSimulator simC(nl);
    std::istringstream in(image.str());
    simC.restore(in);
    EXPECT_EQ(simC.stateHash(), simB.stateHash());

    test::FnStimulus stimC(test::mixedStimulus(4));
    refsim::OutputTrace tail = simC.run(stimC, 12);

    ASSERT_EQ(head.size() + tail.size(), golden.size());
    for (size_t c = 0; c < head.size(); ++c)
        EXPECT_EQ(head[c], golden[c]) << "head cycle " << c;
    for (size_t c = 0; c < tail.size(); ++c)
        EXPECT_EQ(tail[c], golden[head.size() + c])
            << "tail cycle " << c;
    EXPECT_EQ(simC.stateHash(), simA.stateHash());
}

/** Mid-run snapshot/resume equivalence for the ASH chip model. */
void
checkAshResume(bool selective)
{
    rtl::Netlist nl = fixtureNetlist();
    core::CompilerOptions copts;
    copts.numTiles = 4;
    copts.maxTaskCost = 6;
    core::TaskProgram prog = core::compile(nl, copts);
    core::ArchConfig cfg;
    cfg.numTiles = 4;
    cfg.selective = selective;
    constexpr uint64_t kCycles = 30;

    test::FnStimulus stimA(test::mixedStimulus(4));
    core::AshSimulator simA(prog, cfg);
    SaveAt hook(10);
    core::RunResult resA = simA.run(stimA, kCycles, &hook);
    ASSERT_FALSE(hook.image.empty());

    core::AshSimulator simB(prog, cfg);
    std::istringstream in(hook.image);
    simB.restore(in);
    test::FnStimulus stimB(test::mixedStimulus(4));
    core::RunResult resB = simB.run(stimB, kCycles);

    EXPECT_EQ(resB.outputs, resA.outputs);
    EXPECT_EQ(resB.chipCycles, resA.chipCycles);
    EXPECT_EQ(resB.designCycles, resA.designCycles);
    EXPECT_EQ(statBytes(resB.stats), statBytes(resA.stats));
    EXPECT_EQ(simB.stateHash(), simA.stateHash());
}

TEST(EngineCkpt, DashResumeMatchesUninterrupted)
{
    checkAshResume(false);
}

TEST(EngineCkpt, SashResumeMatchesUninterrupted)
{
    checkAshResume(true);
}

TEST(EngineCkpt, AshRestoreRejectsWrongRunLength)
{
    rtl::Netlist nl = fixtureNetlist();
    core::CompilerOptions copts;
    copts.numTiles = 4;
    copts.maxTaskCost = 6;
    core::TaskProgram prog = core::compile(nl, copts);
    core::ArchConfig cfg;
    cfg.numTiles = 4;

    test::FnStimulus stimA(test::mixedStimulus(4));
    core::AshSimulator simA(prog, cfg);
    SaveAt hook(10);
    simA.run(stimA, 30, &hook);

    core::AshSimulator simB(prog, cfg);
    std::istringstream in(hook.image);
    simB.restore(in);
    test::FnStimulus stimB(test::mixedStimulus(4));
    EXPECT_THROW(simB.run(stimB, 40), ckpt::SnapshotError);
}

TEST(EngineCkpt, AshRestoreRejectsConfigMismatch)
{
    rtl::Netlist nl = fixtureNetlist();
    core::CompilerOptions copts;
    copts.numTiles = 4;
    copts.maxTaskCost = 6;
    core::TaskProgram prog = core::compile(nl, copts);
    core::ArchConfig cfg;
    cfg.numTiles = 4;

    test::FnStimulus stim(test::mixedStimulus(4));
    core::AshSimulator simA(prog, cfg);
    SaveAt hook(10);
    simA.run(stim, 30, &hook);

    core::ArchConfig other = cfg;
    other.selective = !cfg.selective;
    core::AshSimulator simB(prog, other);
    std::istringstream in(hook.image);
    EXPECT_THROW(simB.restore(in), ckpt::SnapshotError);
}

TEST(EngineCkpt, BaselineResumeMatchesUninterrupted)
{
    rtl::Netlist nl = fixtureNetlist();
    baseline::HostConfig host = baseline::simBaselineHost(4);

    baseline::BaselineSimulator simA(nl, host);
    SaveAt hook(7);
    baseline::BaselineResult resA = simA.run(&hook);
    ASSERT_FALSE(hook.image.empty());

    baseline::BaselineSimulator simB(nl, host);
    std::istringstream in(hook.image);
    simB.restore(in);
    baseline::BaselineResult resB = simB.run();

    EXPECT_EQ(resB.cyclesPerDesignCycle, resA.cyclesPerDesignCycle);
    EXPECT_EQ(resB.speedKHz, resA.speedKHz);
    EXPECT_EQ(resB.tasks, resA.tasks);
    EXPECT_EQ(resB.parallelism, resA.parallelism);
    EXPECT_EQ(statBytes(resB.stats), statBytes(resA.stats));
}

TEST(EngineCkpt, StateHashIsStateSensitive)
{
    rtl::Netlist nl = fixtureNetlist();
    refsim::ReferenceSimulator a(nl), b(nl), c(nl);
    test::FnStimulus s1(test::mixedStimulus(4));
    test::FnStimulus s2(test::mixedStimulus(4));
    test::FnStimulus s3(test::mixedStimulus(5));
    a.run(s1, 10);
    b.run(s2, 10);
    c.run(s3, 10);
    EXPECT_EQ(a.stateHash(), b.stateHash());
    EXPECT_NE(a.stateHash(), c.stateHash());
}

TEST(EngineCkpt, RestoreRejectsCrossEngineImage)
{
    rtl::Netlist nl = fixtureNetlist();
    refsim::ReferenceSimulator ref(nl);
    test::FnStimulus stim(test::mixedStimulus(4));
    ref.run(stim, 5);
    std::ostringstream image;
    ref.save(image);

    baseline::BaselineSimulator base(nl,
                                     baseline::simBaselineHost(2));
    std::istringstream in(image.str());
    EXPECT_THROW(base.restore(in), ckpt::SnapshotError);
}

// ============================================================================
// CheckpointManager
// ============================================================================

TEST(CheckpointManager, PeriodicRetentionManifestAndRestore)
{
    std::string dir = scratchDir("ckpt_mgr");
    rtl::Netlist nl = fixtureNetlist();

    test::FnStimulus stimA(test::mixedStimulus(4));
    refsim::ReferenceSimulator simA(nl);
    refsim::OutputTrace golden = simA.run(stimA, 30);

    ckpt::CheckpointOptions opts;
    opts.dir = dir;
    opts.everyCycles = 5;
    opts.keep = 2;
    {
        ckpt::CheckpointManager mgr(opts, "test/run");
        test::FnStimulus stim(test::mixedStimulus(4));
        refsim::ReferenceSimulator sim(nl);
        sim.run(stim, 30, &mgr);

        // keep=2: exactly the last two images survive.
        size_t images = 0;
        for (auto &e : fs::directory_iterator(mgr.keyDir()))
            images += e.path().extension() == ".ashckpt";
        EXPECT_EQ(images, 2u);

        std::ifstream mf(fs::path(mgr.keyDir()) / "manifest.json");
        ASSERT_TRUE(mf.good());
        std::stringstream text;
        text << mf.rdbuf();
        JsonValue doc;
        std::string err;
        ASSERT_TRUE(jsonParse(text.str(), doc, &err)) << err;
        EXPECT_EQ(doc["format"].string(), "ash-ckpt-manifest");
        EXPECT_EQ(doc["key"].string(), "test/run");
        ASSERT_EQ(doc["images"].array().size(), 2u);
        EXPECT_EQ(doc["images"].at(0)["cycle"].asU64(), 25u);
        EXPECT_EQ(doc["images"].at(1)["cycle"].asU64(), 30u);
        // Hashes are hex strings: a u64 above 2^53 would be rounded
        // by the double-backed JSON number path.
        EXPECT_TRUE(doc["images"].at(0)["state_hash"].isString());
    }

    // Restore the newest image into a fresh simulator and finish an
    // interrupted 40-cycle run; the tail must extend the golden run.
    ckpt::CheckpointManager mgr(opts, "test/run");
    refsim::ReferenceSimulator simB(nl);
    ASSERT_TRUE(mgr.tryRestoreLatest(simB));
    EXPECT_EQ(mgr.resumedCycle(), 30u);
    test::FnStimulus stimB(test::mixedStimulus(4));
    refsim::OutputTrace tail = simB.run(stimB, 5);
    test::FnStimulus stimC(test::mixedStimulus(4));
    refsim::OutputTrace goldenFull = simA.run(stimC, 5);
    EXPECT_EQ(tail, goldenFull);
}

TEST(CheckpointManager, FallsBackToOlderImageOnCorruption)
{
    std::string dir = scratchDir("ckpt_fallback");
    rtl::Netlist nl = fixtureNetlist();

    ckpt::CheckpointOptions opts;
    opts.dir = dir;
    opts.everyCycles = 5;
    opts.keep = 3;
    {
        ckpt::CheckpointManager mgr(opts, "fb");
        test::FnStimulus stim(test::mixedStimulus(4));
        refsim::ReferenceSimulator sim(nl);
        sim.run(stim, 20, &mgr);
    }

    // Corrupt the newest image mid-payload.
    fs::path newest = fs::path(dir) / "fb" / "ckpt-20.ashckpt";
    {
        std::fstream f(newest,
                       std::ios::in | std::ios::out |
                           std::ios::binary);
        ASSERT_TRUE(f.good());
        f.seekp(200);
        char byte = 0;
        f.read(&byte, 1);
        f.seekp(200);
        byte ^= 0x10;
        f.write(&byte, 1);
    }

    ckpt::CheckpointManager mgr(opts, "fb");
    refsim::ReferenceSimulator sim(nl);
    ASSERT_TRUE(mgr.tryRestoreLatest(sim));
    EXPECT_EQ(mgr.resumedCycle(), 15u);
}

TEST(CheckpointManager, AllImagesCorruptIsStructuredError)
{
    std::string dir = scratchDir("ckpt_allbad");
    rtl::Netlist nl = fixtureNetlist();

    ckpt::CheckpointOptions opts;
    opts.dir = dir;
    opts.everyCycles = 5;
    opts.keep = 2;
    {
        ckpt::CheckpointManager mgr(opts, "ab");
        test::FnStimulus stim(test::mixedStimulus(4));
        refsim::ReferenceSimulator sim(nl);
        sim.run(stim, 20, &mgr);
    }

    // Flip one payload byte in EVERY surviving image: restore must
    // fail with one aggregated SnapshotError naming each candidate
    // it tried, not abort or silently start from cycle 0.
    std::vector<std::string> images;
    for (auto &e : fs::directory_iterator(fs::path(dir) / "ab")) {
        if (e.path().extension() != ".ashckpt")
            continue;
        images.push_back(e.path().filename().string());
        std::fstream f(e.path(), std::ios::in | std::ios::out |
                                     std::ios::binary);
        ASSERT_TRUE(f.good());
        f.seekp(200);
        char byte = 0;
        f.read(&byte, 1);
        f.seekp(200);
        byte ^= 0x10;
        f.write(&byte, 1);
    }
    ASSERT_EQ(images.size(), 2u);

    ckpt::CheckpointManager mgr(opts, "ab");
    refsim::ReferenceSimulator sim(nl);
    try {
        mgr.tryRestoreLatest(sim);
        FAIL() << "expected SnapshotError";
    } catch (const ckpt::SnapshotError &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("tried 2 image(s)"), std::string::npos)
            << what;
        for (const std::string &img : images)
            EXPECT_NE(what.find(img), std::string::npos)
                << "missing candidate " << img << " in: " << what;
    }
}

TEST(CheckpointManager, MalformedManifestFallsBackToScan)
{
    std::string dir = scratchDir("ckpt_badmanifest");
    rtl::Netlist nl = fixtureNetlist();

    ckpt::CheckpointOptions opts;
    opts.dir = dir;
    opts.everyCycles = 5;
    opts.keep = 2;
    {
        ckpt::CheckpointManager mgr(opts, "bm");
        test::FnStimulus stim(test::mixedStimulus(4));
        refsim::ReferenceSimulator sim(nl);
        sim.run(stim, 20, &mgr);
    }

    // Truncated garbage where the manifest should be: restore falls
    // back to scanning the directory for ckpt-<cycle>.ashckpt files
    // and still resumes from the newest intact image.
    {
        std::ofstream mf(fs::path(dir) / "bm" / "manifest.json",
                         std::ios::trunc);
        mf << "{\"format\": \"ash-ckpt-man";
    }

    ckpt::CheckpointManager mgr(opts, "bm");
    refsim::ReferenceSimulator sim(nl);
    ASSERT_TRUE(mgr.tryRestoreLatest(sim));
    EXPECT_EQ(mgr.resumedCycle(), 20u);
}

TEST(CheckpointManager, MissingManifestFallsBackToScan)
{
    std::string dir = scratchDir("ckpt_nomanifest");
    rtl::Netlist nl = fixtureNetlist();

    ckpt::CheckpointOptions opts;
    opts.dir = dir;
    opts.everyCycles = 5;
    opts.keep = 2;
    {
        ckpt::CheckpointManager mgr(opts, "nm");
        test::FnStimulus stim(test::mixedStimulus(4));
        refsim::ReferenceSimulator sim(nl);
        sim.run(stim, 20, &mgr);
    }
    fs::remove(fs::path(dir) / "nm" / "manifest.json");

    ckpt::CheckpointManager mgr(opts, "nm");
    refsim::ReferenceSimulator sim(nl);
    ASSERT_TRUE(mgr.tryRestoreLatest(sim));
    EXPECT_EQ(mgr.resumedCycle(), 20u);
}

TEST(CheckpointManager, ReturnsFalseWithoutImages)
{
    std::string dir = scratchDir("ckpt_empty");
    ckpt::CheckpointOptions opts;
    opts.dir = dir;
    opts.everyCycles = 5;
    ckpt::CheckpointManager mgr(opts, "none");
    rtl::Netlist nl = fixtureNetlist();
    refsim::ReferenceSimulator sim(nl);
    EXPECT_FALSE(mgr.tryRestoreLatest(sim));
}

TEST(CheckpointManager, SanitizesKeys)
{
    EXPECT_EQ(ckpt::CheckpointManager::sanitizeKey(
                  "table5/gcd/ash#r0"),
              "table5_gcd_ash_r0");
    EXPECT_EQ(ckpt::CheckpointManager::sanitizeKey(""), "run");
}

// ============================================================================
// Resumable sweeps (ash_exec integration)
// ============================================================================

TEST(ExecResume, SkipsCompletedResumableJobs)
{
    std::string dir = scratchDir("exec_resume");
    int runs = 0;
    auto body = [&runs](exec::JobContext &ctx) {
        ++runs;
        ctx.publish("khz", 1.25 + static_cast<double>(ctx.index()));
        StatSet stats;
        stats.inc("tasks", 3 + ctx.index());
        ctx.publishStats("stats", stats);
    };

    {
        exec::SweepOptions opts;
        opts.jobs = 1;
        opts.checkpointDir = dir;
        exec::SweepRunner sweep(opts);
        sweep.addResumable("er/a", body);
        sweep.addResumable("er/b", body);
        sweep.add("er/c", body);
        EXPECT_TRUE(sweep.run().empty());
        EXPECT_EQ(runs, 3);
        EXPECT_EQ(sweep.job(1).publishedValue("khz"), 2.25);
    }
    EXPECT_TRUE(fs::exists(fs::path(dir) / "sweep-manifest.json"));
    EXPECT_TRUE(fs::exists(fs::path(dir) / "jobs" / "er_a.ashjob"));

    {
        exec::SweepOptions opts;
        opts.jobs = 1;
        opts.checkpointDir = dir;
        opts.resume = true;
        exec::SweepRunner sweep(opts);
        sweep.addResumable("er/a", body);
        sweep.addResumable("er/b", body);
        sweep.add("er/c", body);
        EXPECT_TRUE(sweep.run().empty());
        // Only the non-resumable job re-ran.
        EXPECT_EQ(runs, 4);
        EXPECT_EQ(sweep.skippedJobs(), 2u);
        EXPECT_TRUE(sweep.job(0).replayed());
        EXPECT_TRUE(sweep.job(1).replayed());
        EXPECT_FALSE(sweep.job(2).replayed());
        // Replayed output is bit-identical to the original run's.
        EXPECT_EQ(sweep.job(0).publishedValue("khz"), 1.25);
        EXPECT_EQ(sweep.job(1).publishedValue("khz"), 2.25);
        const StatSet *stats = sweep.job(1).publishedStats("stats");
        ASSERT_NE(stats, nullptr);
        EXPECT_EQ(stats->get("tasks"), 4u);
    }
}

TEST(ExecResume, CorruptResultsFileTriggersRerun)
{
    std::string dir = scratchDir("exec_corrupt");
    int runs = 0;
    auto body = [&runs](exec::JobContext &ctx) {
        ++runs;
        ctx.publish("v", 7.5);
    };
    {
        exec::SweepOptions opts;
        opts.jobs = 1;
        opts.checkpointDir = dir;
        exec::SweepRunner sweep(opts);
        sweep.addResumable("cr/a", body);
        sweep.run();
        EXPECT_EQ(runs, 1);
    }

    fs::path file = fs::path(dir) / "jobs" / "cr_a.ashjob";
    {
        std::fstream f(file, std::ios::in | std::ios::out |
                                 std::ios::binary);
        ASSERT_TRUE(f.good());
        f.seekg(40);
        char byte = 0;
        f.read(&byte, 1);
        f.seekp(40);
        byte = static_cast<char>(byte ^ 0x5a);
        f.write(&byte, 1);
    }

    exec::SweepOptions opts;
    opts.jobs = 1;
    opts.checkpointDir = dir;
    opts.resume = true;
    exec::SweepRunner sweep(opts);
    sweep.addResumable("cr/a", body);
    sweep.run();
    EXPECT_EQ(runs, 2);   // Graceful: corrupt file = re-run, not UB.
    EXPECT_EQ(sweep.skippedJobs(), 0u);
    EXPECT_EQ(sweep.job(0).publishedValue("v"), 7.5);
}

TEST(ExecResume, FailedJobsAreNotPersisted)
{
    std::string dir = scratchDir("exec_failed");
    {
        exec::SweepOptions opts;
        opts.jobs = 1;
        opts.maxAttempts = 1;
        opts.checkpointDir = dir;
        exec::SweepRunner sweep(opts);
        sweep.addResumable("ff/x", [](exec::JobContext &) {
            throw std::runtime_error("boom");
        });
        EXPECT_EQ(sweep.run().size(), 1u);
    }
    // A failed job must re-run on resume, not replay a half-result.
    int runs = 0;
    exec::SweepOptions opts;
    opts.jobs = 1;
    opts.checkpointDir = dir;
    opts.resume = true;
    exec::SweepRunner sweep(opts);
    sweep.addResumable("ff/x",
                       [&runs](exec::JobContext &) { ++runs; });
    sweep.run();
    EXPECT_EQ(runs, 1);
    EXPECT_EQ(sweep.skippedJobs(), 0u);
}

// ============================================================================
// jsonParse (the DOM the manifests are read with)
// ============================================================================

TEST(JsonParse, ParsesManifestShapedDocument)
{
    const char *text = R"({
      "format": "ash-sweep-manifest",
      "version": 1,
      "completed": [
        {"job": "a/b", "file": "jobs/a_b.ashjob"},
        {"job": "c", "file": "jobs/c.ashjob"}
      ],
      "extra": [true, false, null, -2.5e1, "A\n"]
    })";
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(jsonParse(text, doc, &err)) << err;
    EXPECT_EQ(doc["format"].string(), "ash-sweep-manifest");
    EXPECT_EQ(doc["version"].asU64(), 1u);
    ASSERT_EQ(doc["completed"].array().size(), 2u);
    EXPECT_EQ(doc["completed"].at(1)["job"].string(), "c");
    const JsonValue &extra = doc["extra"];
    EXPECT_TRUE(extra.at(0).boolean());
    EXPECT_FALSE(extra.at(1).boolean());
    EXPECT_TRUE(extra.at(2).isNull());
    EXPECT_EQ(extra.at(3).number(), -25.0);
    EXPECT_EQ(extra.at(4).string(), "A\n");
    // Absent keys and out-of-range indices are null sentinels.
    EXPECT_TRUE(doc["missing"].isNull());
    EXPECT_TRUE(extra.at(99).isNull());
}

TEST(JsonParse, RejectsMalformedDocuments)
{
    JsonValue v;
    EXPECT_FALSE(jsonParse("", v));
    EXPECT_FALSE(jsonParse("{", v));
    EXPECT_FALSE(jsonParse("{\"a\": }", v));
    EXPECT_FALSE(jsonParse("[1, 2,]", v));
    EXPECT_FALSE(jsonParse("{} trailing", v));
    EXPECT_FALSE(jsonParse("\"unterminated", v));
    std::string err;
    EXPECT_FALSE(jsonParse("[1, x]", v, &err));
    EXPECT_FALSE(err.empty());
}

TEST(JsonParse, RoundTripsJsonWriterOutput)
{
    JsonWriter w;
    w.beginObject();
    w.kv("name", "a \"quoted\" key\n");
    w.kv("count", uint64_t(123));
    w.key("items").beginArray();
    w.value(1.5);
    w.value(false);
    w.endArray();
    w.endObject();
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(jsonParse(w.str(), doc, &err)) << err;
    EXPECT_EQ(doc["name"].string(), "a \"quoted\" key\n");
    EXPECT_EQ(doc["count"].asU64(), 123u);
    EXPECT_EQ(doc["items"].at(0).number(), 1.5);
}

// ============================================================================
// Golden snapshot fixture
// ============================================================================

/**
 * The committed fixture pins the on-disk format: a refsim image of
 * the mixed fixture after 10 cycles of mixedStimulus(4). Regenerate
 * (after an INTENTIONAL format bump) with:
 *   ASH_WRITE_GOLDEN_SNAPSHOT=1 ./ash_tests \
 *       --gtest_filter=GoldenSnapshot.LoadsAndResumes
 */
std::string
goldenPath()
{
    return std::string(ASH_TESTS_DIR) +
           "/golden/refsim_mixed.ashckpt";
}

TEST(GoldenSnapshot, LoadsAndResumes)
{
    rtl::Netlist nl = fixtureNetlist();
    if (std::getenv("ASH_WRITE_GOLDEN_SNAPSHOT")) {
        refsim::ReferenceSimulator sim(nl);
        test::FnStimulus stim(test::mixedStimulus(4));
        sim.run(stim, 10);
        fs::create_directories(
            fs::path(goldenPath()).parent_path());
        std::ofstream out(goldenPath(),
                          std::ios::binary | std::ios::trunc);
        sim.save(out);
        ASSERT_TRUE(out.good());
        GTEST_SKIP() << "wrote " << goldenPath();
    }

    std::ifstream in(goldenPath(), std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden fixture " << goldenPath();
    refsim::ReferenceSimulator sim(nl);
    sim.restore(in);

    // The fixture must resume exactly where cycle 10 of the live
    // run left off.
    refsim::ReferenceSimulator live(nl);
    test::FnStimulus stimLive(test::mixedStimulus(4));
    refsim::OutputTrace golden = live.run(stimLive, 15);
    test::FnStimulus stimTail(test::mixedStimulus(4));
    refsim::OutputTrace tail = sim.run(stimTail, 5);
    ASSERT_EQ(tail.size(), 5u);
    for (size_t c = 0; c < 5; ++c)
        EXPECT_EQ(tail[c], golden[10 + c]) << "tail cycle " << c;
    EXPECT_EQ(sim.stateHash(), live.stateHash());
}

TEST(GoldenSnapshot, RejectsVersionMismatch)
{
    std::ifstream in(goldenPath(), std::ios::binary);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    std::string img = buf.str();
    img[8] = static_cast<char>(0x7f);   // Version u32 after magic.
    std::istringstream is(img);
    rtl::Netlist nl = fixtureNetlist();
    refsim::ReferenceSimulator sim(nl);
    EXPECT_THROW(sim.restore(is), ckpt::SnapshotError);
}

TEST(GoldenSnapshot, RejectsCorruptedCrc)
{
    std::ifstream in(goldenPath(), std::ios::binary);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    std::string img = buf.str();
    img[img.size() / 2] ^= 0x01;   // Payload bit flip.
    std::istringstream is(img);
    rtl::Netlist nl = fixtureNetlist();
    refsim::ReferenceSimulator sim(nl);
    EXPECT_THROW(sim.restore(is), ckpt::SnapshotError);
}

} // namespace
} // namespace ash
