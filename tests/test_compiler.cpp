/** @file Tests for the ASH compiler backend (task formation). */

#include <gtest/gtest.h>

#include <set>

#include "core/compiler/Compiler.h"
#include "designs/Designs.h"
#include "tests/TestUtil.h"
#include "verilog/Compile.h"

namespace ash::core {
namespace {

rtl::Netlist
mixedNetlist()
{
    return verilog::compileVerilog(test::mixedFixture(), "top");
}

TEST(Compiler, EveryNodeInExactlyOneTask)
{
    rtl::Netlist nl = mixedNetlist();
    CompilerOptions opts;
    opts.numTiles = 4;
    TaskProgram prog = compile(nl, opts);

    std::set<rtl::NodeId> seen;
    for (const Task &t : prog.tasks) {
        for (rtl::NodeId raw : t.nodes) {
            if (raw & regWriteFlag)
                continue;
            EXPECT_TRUE(seen.insert(raw).second)
                << "node " << raw << " in two tasks";
        }
    }
    for (rtl::NodeId i = 0; i < nl.numNodes(); ++i) {
        if (nl.node(i).op == rtl::Op::Const)
            continue;
        EXPECT_TRUE(seen.count(i)) << "node " << i << " unassigned";
        EXPECT_NE(prog.taskOfNode[i], invalidTask);
    }
}

TEST(Compiler, LimitsRespected)
{
    rtl::Netlist nl = mixedNetlist();
    for (uint32_t tiles : {1u, 2u, 8u}) {
        CompilerOptions opts;
        opts.numTiles = tiles;
        TaskProgram prog = compile(nl, opts);
        for (const Task &t : prog.tasks) {
            EXPECT_LE(t.pushes.size(), prog.limits.maxPushes);
            EXPECT_LE(t.numParents, prog.limits.maxParents);
            for (const Push &p : t.pushes)
                EXPECT_LE(p.values.size(),
                          prog.limits.maxRegArgValues);
            EXPECT_LT(t.tile, tiles);
        }
    }
}

TEST(Compiler, TightLimitsForceFanTrees)
{
    rtl::Netlist nl = mixedNetlist();
    CompilerOptions opts;
    opts.numTiles = 8;
    opts.maxTaskCost = 2;          // Tiny tasks: many edges.
    opts.limits.maxParents = 4;    // Force fan-in buffers.
    opts.limits.maxPushes = 4;     // Force fan-out relays.
    opts.limits.maxRegArgValues = 2;
    TaskProgram prog = compile(nl, opts);   // validate() runs inside.
    size_t buffers = 0, relays = 0;
    for (const Task &t : prog.tasks) {
        buffers += t.kind == TaskKind::Buffer;
        relays += t.kind == TaskKind::Relay;
    }
    EXPECT_GT(buffers + relays, 0u);
}

TEST(Compiler, CoarseningReducesTasks)
{
    rtl::Netlist nl = mixedNetlist();
    CompilerOptions fine;
    fine.numTiles = 1;
    fine.maxTaskCost = 1;
    CompilerOptions coarse;
    coarse.numTiles = 1;
    coarse.maxTaskCost = 1000;
    TaskProgram fine_prog = compile(nl, fine);
    TaskProgram coarse_prog = compile(nl, coarse);
    EXPECT_GT(fine_prog.tasks.size(), coarse_prog.tasks.size());
    // Finer tasks expose at least as much parallelism.
    EXPECT_GE(fine_prog.stats.parallelism,
              coarse_prog.stats.parallelism * 0.9);
}

TEST(Compiler, TimestampsRespectDepths)
{
    rtl::Netlist nl = mixedNetlist();
    CompilerOptions opts;
    opts.numTiles = 4;
    TaskProgram prog = compile(nl, opts);
    EXPECT_GE(prog.cycleDepth, 1u);
    for (const Task &t : prog.tasks) {
        EXPECT_LT(t.depth, prog.cycleDepth);
        EXPECT_EQ(prog.timestamp(t.id, 3),
                  3 * prog.cycleDepth + t.depth);
    }
}

TEST(Compiler, MemoryLocalityHolds)
{
    // validate() enforces this; compile a memory-heavy design.
    designs::Design d = designs::makeChronosRv(4);
    rtl::Netlist nl = designs::compileDesign(d);
    CompilerOptions opts;
    opts.numTiles = 8;
    TaskProgram prog = compile(nl, opts);   // Panics on violation.
    std::vector<int64_t> mem_tile(nl.memories().size(), -1);
    for (const Task &t : prog.tasks) {
        for (rtl::NodeId raw : t.nodes) {
            const rtl::Node &n = nl.node(raw & ~regWriteFlag);
            if (n.op == rtl::Op::MemRead ||
                n.op == rtl::Op::MemWrite) {
                if (mem_tile[n.mem] < 0)
                    mem_tile[n.mem] = t.tile;
                EXPECT_EQ(mem_tile[n.mem],
                          static_cast<int64_t>(t.tile));
            }
        }
    }
}

TEST(Compiler, MappingReducesCutVsScatter)
{
    designs::Design d = designs::makeVortex(6, 2);
    rtl::Netlist nl = designs::compileDesign(d);
    CompilerOptions mapped;
    mapped.numTiles = 8;
    mapped.useMapping = true;
    CompilerOptions scattered = mapped;
    scattered.useMapping = false;

    auto crossTileBytes = [](const TaskProgram &prog) {
        uint64_t bytes = 0;
        for (const Task &t : prog.tasks) {
            for (const Push &p : t.pushes) {
                if (prog.tasks[p.dst].tile != t.tile)
                    bytes += p.bytes();
            }
        }
        return bytes;
    };
    uint64_t with_map = crossTileBytes(compile(nl, mapped));
    uint64_t without = crossTileBytes(compile(nl, scattered));
    EXPECT_LT(with_map, without);
}

TEST(Compiler, StatsPopulated)
{
    rtl::Netlist nl = mixedNetlist();
    CompilerOptions opts;
    opts.numTiles = 4;
    TaskProgram prog = compile(nl, opts);
    EXPECT_GT(prog.stats.dfgNodes, 0u);
    EXPECT_GT(prog.stats.dfgEdges, 0u);
    EXPECT_EQ(prog.stats.tasks, prog.tasks.size());
    EXPECT_GT(prog.stats.taskEdges, 0u);
    EXPECT_GT(prog.stats.parallelism, 0.0);
    EXPECT_GT(prog.stats.codeFootprintBytes, 0u);
    EXPECT_GE(prog.stats.compileSeconds, 0.0);
}

TEST(Compiler, SingleCycleModeCompiles)
{
    rtl::Netlist nl = mixedNetlist();
    CompilerOptions opts;
    opts.numTiles = 2;
    opts.unrolled = false;
    TaskProgram prog = compile(nl, opts);
    size_t reg_writes = 0;
    for (const Task &t : prog.tasks) {
        for (rtl::NodeId raw : t.nodes)
            reg_writes += (raw & regWriteFlag) != 0;
    }
    EXPECT_EQ(reg_writes, nl.regs().size());
}

class CompilerDesignSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(CompilerDesignSweep, AllDesignsValidate)
{
    auto [design_idx, tiles] = GetParam();
    designs::DesignScale scale;
    scale.nttPoints = 16;
    scale.pes = 9;
    scale.rvCores = 4;
    scale.warps = 4;
    scale.lanes = 2;
    auto all = designs::allDesigns(scale);
    rtl::Netlist nl = designs::compileDesign(all[design_idx]);
    CompilerOptions opts;
    opts.numTiles = static_cast<uint32_t>(tiles);
    TaskProgram prog = compile(nl, opts);   // validate() inside.
    EXPECT_GT(prog.tasks.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CompilerDesignSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(1, 4, 16)));

} // namespace
} // namespace ash::core
