/**
 * @file
 * Unit tests for ash_guard: the recoverable error hierarchy, the
 * deterministic fault injector (plan parsing, fire sequences, buffer
 * corruption), cooperative cancellation and the deadline watchdog,
 * SweepRunner's hardening (retry backoff, deadlines, isolate mode),
 * positioned parser/elaborator diagnostics, and the divergence guard
 * with its quarantine bundle. Plus a small parser fuzz smoke: random
 * mutations of valid Verilog must fail with structured ash::Error
 * diagnostics, never aborts.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "ckpt/Checkpoint.h"
#include "common/Error.h"
#include "common/Logging.h"
#include "common/Random.h"
#include "exec/SweepRunner.h"
#include "guard/Cancel.h"
#include "guard/Divergence.h"
#include "guard/Fault.h"
#include "guard/Watchdog.h"
#include "tests/TestUtil.h"
#include "verilog/Compile.h"
#include "verilog/Parser.h"
#include "verilog/Diag.h"

namespace ash {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

/** Fresh, empty scratch directory under the gtest temp root. */
std::string
scratchDir(const std::string &name)
{
    fs::path dir = fs::path(::testing::TempDir()) / ("ash_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

/** RAII plan arm/disarm so a failing test never leaks an armed plan. */
struct ArmedPlan
{
    explicit ArmedPlan(const std::string &spec)
    {
        guard::FaultPlan plan;
        std::string err;
        EXPECT_TRUE(guard::FaultPlan::parse(spec, plan, &err)) << err;
        guard::FaultInjector::instance().arm(std::move(plan));
    }
    ~ArmedPlan() { guard::FaultInjector::instance().disarm(); }
};

double
elapsedSec(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

// ============================================================================
// Error hierarchy
// ============================================================================

TEST(GuardError, KindsAndHierarchy)
{
    EXPECT_EQ(FatalError("x").kind(), "fatal");
    EXPECT_EQ(ckpt::SnapshotError("x").kind(), "snapshot");
    EXPECT_EQ(exec::JobError("x").kind(), "job");
    EXPECT_EQ(guard::InjectedFault("x").kind(), "fault");
    EXPECT_EQ(guard::CancelledError("x").kind(), "cancel");
    EXPECT_EQ(guard::DivergenceError("x").kind(), "divergence");

    // Every structured failure funnels through one catch site.
    try {
        throw guard::InjectedFault("io lost");
    } catch (const Error &e) {
        EXPECT_EQ(e.kind(), "fault");
        EXPECT_NE(std::string(e.what()).find("io lost"),
                  std::string::npos);
    }

    // Parse/elab diagnostics stay catchable as FatalError (the
    // pre-existing contract of the verilog tests) AND as ash::Error.
    try {
        verilog::throwParseError("assign y = ;",
                                 verilog::SourcePos{"f.v", 1, 12},
                                 "expected expression");
    } catch (const FatalError &e) {
        EXPECT_EQ(e.kind(), "parse");
    }
}

// ============================================================================
// Fault plan parsing
// ============================================================================

TEST(FaultPlan, ParsesFullSpec)
{
    guard::FaultPlan plan;
    std::string err;
    ASSERT_TRUE(guard::FaultPlan::parse(
        "seed=7;ckpt.image.*:corrupt:bytes=3;"
        "job.body@gcd:error:prob=0.5:after=2:every=3:count=4;"
        "exec.persist.write:hang:ms=50",
        plan, &err))
        << err;
    EXPECT_EQ(plan.seed, 7u);
    ASSERT_EQ(plan.rules.size(), 3u);

    EXPECT_EQ(plan.rules[0].site, "ckpt.image.*");
    EXPECT_EQ(plan.rules[0].kind, guard::FaultKind::Corrupt);
    EXPECT_EQ(plan.rules[0].bytes, 3u);

    EXPECT_EQ(plan.rules[1].site, "job.body");
    EXPECT_EQ(plan.rules[1].match, "gcd");
    EXPECT_EQ(plan.rules[1].kind, guard::FaultKind::Error);
    EXPECT_DOUBLE_EQ(plan.rules[1].prob, 0.5);
    EXPECT_EQ(plan.rules[1].after, 2u);
    EXPECT_EQ(plan.rules[1].every, 3u);
    EXPECT_EQ(plan.rules[1].count, 4u);

    EXPECT_EQ(plan.rules[2].kind, guard::FaultKind::Hang);
    EXPECT_EQ(plan.rules[2].ms, 50u);
}

TEST(FaultPlan, EmptySpecIsValidEmptyPlan)
{
    guard::FaultPlan plan;
    ASSERT_TRUE(guard::FaultPlan::parse("", plan));
    EXPECT_TRUE(plan.rules.empty());
    guard::FaultInjector::instance().arm(plan);
    EXPECT_FALSE(guard::FaultInjector::armed());
}

TEST(FaultPlan, RejectsMalformedSpecs)
{
    const char *bad[] = {
        "job.body",                  // Missing ':kind'.
        "job.body:frobnicate",       // Unknown kind.
        "job.body:error:prob=2",     // Probability out of range.
        ":error",                    // Empty site.
        "job.body:error:wat=1",      // Unknown parameter.
        "seed=x",                    // Bad seed.
        "job.body:error:kill",       // Two kinds.
        "job.body:error:after=abc",  // Bad number.
    };
    for (const char *spec : bad) {
        guard::FaultPlan plan;
        std::string err;
        EXPECT_FALSE(guard::FaultPlan::parse(spec, plan, &err))
            << "accepted: " << spec;
        EXPECT_FALSE(err.empty());
    }
}

// ============================================================================
// Fault injector decisions
// ============================================================================

/** Fire @p site @p n times; true marks the hits that threw. */
std::vector<bool>
fireSeq(const char *site, int n)
{
    std::vector<bool> fired;
    for (int i = 0; i < n; ++i) {
        try {
            guard::FaultInjector::instance().fire(site);
            fired.push_back(false);
        } catch (const guard::InjectedFault &) {
            fired.push_back(true);
        }
    }
    return fired;
}

TEST(FaultInjector, AfterEveryCountSequence)
{
    ArmedPlan armed("job.body:error:after=1:every=2:count=2");
    EXPECT_TRUE(guard::FaultInjector::armed());
    // Hit 0 skipped (after=1); hits 1 and 3 fire (every 2nd past the
    // skip window); count=2 exhausts the rule.
    std::vector<bool> expect = {false, true, false, true,
                                false, false, false};
    EXPECT_EQ(fireSeq("job.body", 7), expect);
    EXPECT_EQ(guard::FaultInjector::instance().firedCount(), 2u);

    // Unmentioned sites never fire.
    EXPECT_EQ(fireSeq("ckpt.image.write", 3),
              std::vector<bool>(3, false));
}

TEST(FaultInjector, SequenceIsReproducibleAcrossRearm)
{
    std::vector<bool> first, second;
    {
        ArmedPlan armed("seed=3;job.body:error:prob=0.5");
        first = fireSeq("job.body", 32);
    }
    {
        ArmedPlan armed("seed=3;job.body:error:prob=0.5");
        second = fireSeq("job.body", 32);
    }
    EXPECT_EQ(first, second);
    // A fair-ish coin: some hits fire, some don't.
    EXPECT_NE(first, std::vector<bool>(32, false));
    EXPECT_NE(first, std::vector<bool>(32, true));

    // A different seed reshuffles the decisions.
    ArmedPlan armed("seed=4;job.body:error:prob=0.5");
    EXPECT_NE(fireSeq("job.body", 32), first);
}

TEST(FaultInjector, ScopeMatchRestrictsFiring)
{
    guard::FaultScopeProvider prev =
        guard::faultScopeProviderSlot().load();
    static std::string scope;
    guard::setFaultScopeProvider(+[] { return scope; });

    ArmedPlan armed("job.body@gcd:error");
    scope = "table5/gcd/ash";
    EXPECT_EQ(fireSeq("job.body", 2), (std::vector<bool>{true, true}));
    scope = "table5/sha/ash";
    EXPECT_EQ(fireSeq("job.body", 2),
              (std::vector<bool>{false, false}));

    guard::setFaultScopeProvider(prev);
}

TEST(FaultInjector, DisarmedSitesAreFreeNoOps)
{
    guard::FaultInjector::instance().disarm();
    EXPECT_FALSE(guard::FaultInjector::armed());
    ASH_FAULT_POINT("job.body");   // Must not throw.
    char buf[8] = {0};
    EXPECT_FALSE(ASH_FAULT_CORRUPT("ckpt.image.bytes", buf, 8));
    for (char c : buf)
        EXPECT_EQ(c, 0);
}

TEST(FaultInjector, CorruptionIsDeterministic)
{
    std::string original(64, 'A');
    std::string bufA = original, bufB = original;
    {
        ArmedPlan armed("img:corrupt:bytes=4");
        EXPECT_TRUE(guard::FaultInjector::instance().corrupt(
            "img", &bufA[0], bufA.size()));
    }
    {
        ArmedPlan armed("img:corrupt:bytes=4");
        EXPECT_TRUE(guard::FaultInjector::instance().corrupt(
            "img", &bufB[0], bufB.size()));
    }
    EXPECT_NE(bufA, original);
    EXPECT_EQ(bufA, bufB);   // Same plan, same damage.
}

// ============================================================================
// Retry backoff
// ============================================================================

TEST(RetryBackoff, BoundedAndDeterministic)
{
    const uint64_t base = 25, cap = 2000;
    for (int attempt = 0; attempt < 10; ++attempt) {
        uint64_t full =
            std::min<uint64_t>(cap, base << std::min(attempt, 30));
        uint64_t ms =
            exec::retryBackoffMs(0x1234, attempt, base, cap);
        EXPECT_GE(ms, full / 2) << "attempt " << attempt;
        EXPECT_LE(ms, full) << "attempt " << attempt;
        // Pure function of its arguments.
        EXPECT_EQ(ms,
                  exec::retryBackoffMs(0x1234, attempt, base, cap));
    }

    // The jitter actually depends on the seed (different jobs do not
    // retry in lockstep).
    bool differs = false;
    for (int attempt = 0; attempt < 10 && !differs; ++attempt)
        differs = exec::retryBackoffMs(1, attempt, base, cap) !=
                  exec::retryBackoffMs(2, attempt, base, cap);
    EXPECT_TRUE(differs);
}

// ============================================================================
// Cancellation + watchdog
// ============================================================================

TEST(Cancel, TokenPollThrowsWithFirstReason)
{
    guard::CancelToken token;
    EXPECT_NO_THROW(token.poll());
    token.cancel("deadline of 100 ms exceeded");
    token.cancel("second reason loses");
    EXPECT_TRUE(token.cancelled());
    try {
        token.poll();
        FAIL() << "poll() did not throw";
    } catch (const guard::CancelledError &e) {
        EXPECT_NE(std::string(e.what()).find("deadline of 100 ms"),
                  std::string::npos);
        EXPECT_EQ(e.kind(), "cancel");
    }
}

TEST(Cancel, PollCancelUsesThreadToken)
{
    EXPECT_NO_THROW(guard::pollCancel());   // No token installed.
    guard::CancelToken token;
    {
        guard::CancelScope scope(&token);
        EXPECT_NO_THROW(guard::pollCancel());
        token.cancel("stop");
        EXPECT_THROW(guard::pollCancel(), guard::CancelledError);
    }
    EXPECT_NO_THROW(guard::pollCancel());   // Scope restored.
}

TEST(Watchdog, FiresWithinTwiceTheDeadline)
{
    guard::Watchdog dog;
    guard::CancelToken token;
    auto t0 = Clock::now();
    dog.arm(&token, std::chrono::milliseconds(200), "test job");
    while (!token.cancelled() && elapsedSec(t0) < 5.0)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    double took = elapsedSec(t0);
    ASSERT_TRUE(token.cancelled());
    EXPECT_GE(took, 0.15);
    EXPECT_LT(took, 0.4);   // The 2x acceptance bound.
    EXPECT_EQ(dog.firedCount(), 1u);
    EXPECT_NE(token.reason().find("deadline"), std::string::npos);
    EXPECT_NE(token.reason().find("test job"), std::string::npos);
}

TEST(Watchdog, DisarmStopsTheClock)
{
    guard::Watchdog dog;
    guard::CancelToken token;
    uint64_t id =
        dog.arm(&token, std::chrono::milliseconds(50), "quick");
    EXPECT_TRUE(dog.disarm(id));
    EXPECT_FALSE(dog.disarm(id));   // Idempotent.
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    EXPECT_FALSE(token.cancelled());
    EXPECT_EQ(dog.firedCount(), 0u);
}

// ============================================================================
// SweepRunner hardening
// ============================================================================

TEST(SweepGuard, TransientFaultIsRetriedToSuccess)
{
#if !ASH_GUARD_FAULTS
    GTEST_SKIP() << "fault hooks compiled out "
                    "(ASH_GUARD_FAULTS_ENABLED=OFF)";
#endif
    ArmedPlan armed("job.body@flaky:error:count=1");
    exec::SweepOptions opts;
    opts.jobs = 2;
    opts.maxAttempts = 3;
    opts.backoffBaseMs = 1;
    exec::SweepRunner sweep(opts);
    sweep.add("flaky/a", [](exec::JobContext &ctx) {
        ctx.publish("v", 41.0);
    });
    sweep.add("steady/b", [](exec::JobContext &ctx) {
        ctx.publish("v", 42.0);
    });
    EXPECT_TRUE(sweep.run().empty());
    EXPECT_EQ(sweep.job(0).publishedValue("v"), 41.0);
    EXPECT_EQ(sweep.job(0).attempt(), 1);   // Second try won.
    EXPECT_EQ(sweep.job(1).publishedValue("v"), 42.0);
    EXPECT_EQ(sweep.job(1).attempt(), 0);
}

TEST(SweepGuard, ExhaustedFaultBecomesStructuredFailure)
{
#if !ASH_GUARD_FAULTS
    GTEST_SKIP() << "fault hooks compiled out "
                    "(ASH_GUARD_FAULTS_ENABLED=OFF)";
#endif
    ArmedPlan armed("job.body@doomed:error");
    exec::SweepOptions opts;
    opts.jobs = 2;
    opts.maxAttempts = 2;
    opts.backoffBaseMs = 1;
    exec::SweepRunner sweep(opts);
    sweep.add("doomed/a", [](exec::JobContext &) {});
    sweep.add("steady/b", [](exec::JobContext &ctx) {
        ctx.publish("v", 1.0);
    });
    const auto &failures = sweep.run();
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_EQ(failures[0].job, "doomed/a");
    EXPECT_EQ(failures[0].attempts, 2);
    EXPECT_EQ(failures[0].kind, exec::FailureKind::Exception);
    EXPECT_EQ(failures[0].errorKind, "fault");
    EXPECT_EQ(sweep.job(1).publishedValue("v"), 1.0);
}

TEST(SweepGuard, DeadlineTimesOutCooperatively)
{
    exec::SweepOptions opts;
    opts.jobs = 2;
    opts.maxAttempts = 3;   // Timeouts must NOT be retried.
    opts.jobDeadlineSec = 0.3;
    exec::SweepRunner sweep(opts);
    sweep.add("hang/a", [](exec::JobContext &) {
        auto t0 = Clock::now();
        while (elapsedSec(t0) < 20.0) {
            guard::pollCancel();
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        }
    });
    sweep.add("steady/b", [](exec::JobContext &ctx) {
        ctx.publish("v", 7.0);
    });
    auto t0 = Clock::now();
    const auto &failures = sweep.run();
    double took = elapsedSec(t0);
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_EQ(failures[0].kind, exec::FailureKind::Timeout);
    EXPECT_EQ(failures[0].errorKind, "cancel");
    EXPECT_EQ(failures[0].attempts, 1);
    EXPECT_NE(failures[0].error.find("deadline"), std::string::npos);
    EXPECT_LT(took, 3.0);   // Unwound promptly, not after 20 s.
    EXPECT_EQ(sweep.job(1).publishedValue("v"), 7.0);
}

/** Publish deterministic per-job values (rng depends on key only). */
void
addRngJobs(exec::SweepRunner &sweep)
{
    for (const char *name : {"iso/a", "iso/b", "iso/c"}) {
        sweep.add(name, [](exec::JobContext &ctx) {
            ctx.publish("r0", double(ctx.rng().next() % 100000));
            ctx.publish("r1", double(ctx.rng().next() % 100000));
        });
    }
}

TEST(SweepGuard, IsolateMatchesInProcessResults)
{
    exec::SweepOptions inproc;
    inproc.jobs = 2;
    exec::SweepRunner a(inproc);
    addRngJobs(a);
    EXPECT_TRUE(a.run().empty());

    exec::SweepOptions iso = inproc;
    iso.isolate = true;
    exec::SweepRunner b(iso);
    addRngJobs(b);
    EXPECT_TRUE(b.run().empty());

    for (size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(a.job(i).publishedValue("r0"),
                  b.job(i).publishedValue("r0"))
            << a.job(i).name();
        EXPECT_EQ(a.job(i).publishedValue("r1"),
                  b.job(i).publishedValue("r1"));
    }
}

TEST(SweepGuard, IsolateContainsCrashingChild)
{
    exec::SweepOptions opts;
    opts.jobs = 2;
    opts.maxAttempts = 1;
    opts.isolate = true;
    exec::SweepRunner sweep(opts);
    sweep.add("crash/a", [](exec::JobContext &) {
        ::raise(SIGKILL);   // Un-catchable, like a real wedge.
    });
    sweep.add("steady/b", [](exec::JobContext &ctx) {
        ctx.publish("v", 9.0);
    });
    const auto &failures = sweep.run();
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_EQ(failures[0].job, "crash/a");
    EXPECT_EQ(failures[0].kind, exec::FailureKind::Crash);
    EXPECT_EQ(failures[0].exitSignal, SIGKILL);
    EXPECT_EQ(sweep.job(1).publishedValue("v"), 9.0);
}

TEST(SweepGuard, IsolateKillsHungChildWithinTwiceDeadline)
{
    exec::SweepOptions opts;
    opts.jobs = 2;
    opts.maxAttempts = 3;
    opts.isolate = true;
    opts.jobDeadlineSec = 1.0;
    exec::SweepRunner sweep(opts);
    sweep.add("hang/a", [](exec::JobContext &) {
        std::this_thread::sleep_for(std::chrono::seconds(30));
    });
    sweep.add("steady/b", [](exec::JobContext &ctx) {
        ctx.publish("v", 5.0);
    });
    auto t0 = Clock::now();
    const auto &failures = sweep.run();
    double took = elapsedSec(t0);
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_EQ(failures[0].kind, exec::FailureKind::Timeout);
    EXPECT_EQ(failures[0].attempts, 1);   // Not retried.
    EXPECT_LT(took, 2.0 * opts.jobDeadlineSec);
    EXPECT_EQ(sweep.job(1).publishedValue("v"), 5.0);
}

// ============================================================================
// Positioned parser / elaborator diagnostics
// ============================================================================

TEST(Diag, ParseErrorCarriesLineColumnAndCaret)
{
    const char *src = "module m(input a,\n"
                      "         output y);\n"
                      "  assign y = a +;\n"
                      "endmodule\n";
    try {
        verilog::parse(src, "m.v");
        FAIL() << "parse accepted malformed source";
    } catch (const verilog::ParseError &e) {
        EXPECT_EQ(e.file(), "m.v");
        EXPECT_EQ(e.line(), 3);
        EXPECT_GT(e.col(), 10);
        std::string what = e.what();
        EXPECT_NE(what.find("m.v:3:"), std::string::npos) << what;
        EXPECT_NE(what.find("assign y = a +;"), std::string::npos)
            << what;
        EXPECT_NE(what.find('^'), std::string::npos) << what;
    }
}

TEST(Diag, LexErrorCarriesPosition)
{
    const char *src = "module m(output [3:0] y);\n"
                      "  assign y = 4'b10x0;\n"
                      "endmodule\n";
    try {
        verilog::parse(src);
        FAIL() << "lexer accepted x digits";
    } catch (const verilog::ParseError &e) {
        EXPECT_EQ(e.line(), 2);
        EXPECT_GT(e.col(), 1);
    }
}

TEST(Diag, UnknownSignalIsElabErrorNotAbort)
{
    const char *src = "module top(input clk, output [3:0] y);\n"
                      "  assign y = nosuch;\n"
                      "endmodule\n";
    try {
        verilog::compileVerilog(src, "top");
        FAIL() << "elaborated an undeclared signal";
    } catch (const verilog::ElabError &e) {
        EXPECT_EQ(e.kind(), "elab");
        EXPECT_NE(e.where().find("nosuch"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("unknown signal"),
                  std::string::npos);
    }
}

TEST(Diag, MemoryReadAsScalarIsElabError)
{
    const char *src =
        "module top(input clk, input [3:0] i, output [7:0] y);\n"
        "  reg [7:0] m [0:15];\n"
        "  always_ff @(posedge clk) m[i] <= 8'd1;\n"
        "  assign y = m;\n"
        "endmodule\n";
    try {
        verilog::compileVerilog(src, "top");
        FAIL() << "elaborated a memory as a scalar";
    } catch (const verilog::ElabError &e) {
        EXPECT_NE(std::string(e.what()).find("memory"),
                  std::string::npos);
    }
}

// ============================================================================
// Divergence guard
// ============================================================================

rtl::Netlist
guardNetlist()
{
    return verilog::compileVerilog(test::mixedFixture(), "top");
}

TEST(Divergence, CleanRunChecksAndStaysQuiet)
{
    rtl::Netlist nl = guardNetlist();
    refsim::ReferenceSimulator sim(nl);
    test::FnStimulus stim(test::mixedStimulus(4));

    guard::DivergenceGuard::Options opts;
    opts.everyCycles = 5;
    guard::DivergenceGuard dg(
        nl, std::make_shared<test::FnStimulus>(test::mixedStimulus(4)),
        // The hook fires right after the engine's step for `cycle`,
        // so its current frame IS the committed frame for cycle-1.
        [&](uint64_t) { return sim.outputFrame(); }, opts);
    EXPECT_NO_THROW(sim.run(stim, 30, &dg));
    EXPECT_EQ(dg.checksDone(), 6u);
}

TEST(Divergence, MismatchThrowsAndWritesQuarantineBundle)
{
    std::string qdir = scratchDir("guard_quarantine");
    rtl::Netlist nl = guardNetlist();
    refsim::ReferenceSimulator sim(nl);
    test::FnStimulus stim(test::mixedStimulus(4));

    guard::DivergenceGuard::Options opts;
    opts.everyCycles = 5;
    opts.quarantineDir = qdir;
    opts.key = "div/test";
    guard::DivergenceGuard dg(
        nl, std::make_shared<test::FnStimulus>(test::mixedStimulus(4)),
        [&](uint64_t) {
            refsim::OutputFrame f = sim.outputFrame();
            f[0] ^= 1;   // A deliberately wrong engine.
            return f;
        },
        opts);
    EXPECT_THROW(sim.run(stim, 30, &dg), guard::DivergenceError);

    fs::path bundle = fs::path(qdir) / "div_test-c5";
    ASSERT_TRUE(fs::exists(bundle)) << bundle;
    EXPECT_TRUE(fs::exists(bundle / "ash-state.ashckpt"));
    EXPECT_TRUE(fs::exists(bundle / "golden-state.ashckpt"));
    std::ifstream report(bundle / "report.json");
    ASSERT_TRUE(report.good());
    std::stringstream text;
    text << report.rdbuf();
    EXPECT_NE(text.str().find("\"divergentCycle\""),
              std::string::npos);
    EXPECT_NE(text.str().find("\"outputs\""), std::string::npos);
}

TEST(Divergence, AshSimCommittedFrameAgreesWithGolden)
{
    rtl::Netlist nl = guardNetlist();
    core::CompilerOptions copts;
    copts.numTiles = 4;
    core::TaskProgram prog = core::compile(nl, copts);
    core::ArchConfig acfg;
    acfg.numTiles = 4;
    core::AshSimulator sim(prog, acfg);

    guard::DivergenceGuard::Options opts;
    opts.everyCycles = 7;
    guard::DivergenceGuard dg(
        nl, std::make_shared<test::FnStimulus>(test::mixedStimulus(4)),
        [&](uint64_t cycle) { return sim.committedFrame(cycle + 1); },
        opts);
    test::FnStimulus stim(test::mixedStimulus(4));
    core::RunResult res = sim.run(stim, 42, &dg);
    EXPECT_GE(dg.checksDone(), 1u);
    EXPECT_EQ(res.designCycles, 42u);

    // committedFrame at the end must equal the assembled trace.
    for (uint64_t c : {0ull, 10ull, 41ull})
        EXPECT_EQ(sim.committedFrame(c + 1), res.outputs[c])
            << "cycle " << c;
}

// ============================================================================
// Chained hooks (checkpoint + divergence on one engine slot)
// ============================================================================

TEST(HookChain, FansOutInOrder)
{
    rtl::Netlist nl = guardNetlist();
    std::string dir = scratchDir("guard_hookchain");
    ckpt::CheckpointOptions copts;
    copts.dir = dir;
    copts.everyCycles = 10;
    ckpt::CheckpointManager mgr(copts, "chain");

    refsim::ReferenceSimulator sim(nl);
    test::FnStimulus stim(test::mixedStimulus(4));
    guard::DivergenceGuard::Options dopts;
    dopts.everyCycles = 10;
    guard::DivergenceGuard dg(
        nl, std::make_shared<test::FnStimulus>(test::mixedStimulus(4)),
        [&](uint64_t) { return sim.outputFrame(); }, dopts);

    guard::HookChain chain;
    chain.add(&mgr);
    chain.add(&dg);
    EXPECT_FALSE(chain.empty());
    sim.run(stim, 30, &chain);
    EXPECT_EQ(dg.checksDone(), 3u);
    EXPECT_TRUE(
        fs::exists(fs::path(mgr.keyDir()) / "manifest.json"));
}

// ============================================================================
// Parser fuzz smoke: mutations never abort
// ============================================================================

TEST(GuardFuzz, MutatedVerilogFailsWithStructuredErrors)
{
    const std::string base = test::mixedFixture();
    const char *snippets[] = {"module", "endmodule", "assign", "[",
                              "]",      ";",         "(",      ")",
                              "16'hdead", "@",       "*",      "'"};
    Rng rng(0xf00d);
    int parsed = 0, rejected = 0;
    for (int iter = 0; iter < 200; ++iter) {
        std::string src = base;
        unsigned edits = 1 + rng.below(4);
        for (unsigned e = 0; e < edits; ++e) {
            size_t at = rng.below(src.size());
            switch (rng.below(4)) {
              case 0:   // Flip a character.
                src[at] = static_cast<char>(32 + rng.below(95));
                break;
              case 1:   // Delete a span.
                src.erase(at, 1 + rng.below(8));
                break;
              case 2:   // Duplicate a span.
                src.insert(at,
                           src.substr(at, 1 + rng.below(8)));
                break;
              default:  // Insert a random token.
                src.insert(
                    at, snippets[rng.below(std::size(snippets))]);
                break;
            }
        }
        try {
            verilog::compileVerilog(src, "top");
            ++parsed;   // Some mutations stay legal; fine.
        } catch (const Error &) {
            ++rejected;   // Structured diagnostic: the contract.
        } catch (const std::exception &e) {
            FAIL() << "non-ash exception on iter " << iter << ": "
                   << e.what();
        }
    }
    // The mutator must actually be exercising the error paths.
    EXPECT_GT(rejected, 50) << "parsed=" << parsed;
}

} // namespace
} // namespace ash
