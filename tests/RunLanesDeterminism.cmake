# ctest driver: the ash_lanes determinism contract, end to end. Run a
# sweep bench's lane-batched scenario study twice — per-job execution
# (--lanes 1) and wide batches (--lanes 64) — under a parallel sweep
# (--jobs 4), and require byte-identical stdout AND byte-identical
# --stats-json after dropping the volatile "lanes.wall.*" throughput
# lines (wall-clock keys are the study's only timing-dependent
# output). Any lane-packing, mask, or merge-order dependence on the
# batch width shows up here as a diff.
# Invoked as:
#   cmake -DBENCH=<binary> -DWORKDIR=<dir> -P RunLanesDeterminism.cmake

file(MAKE_DIRECTORY "${WORKDIR}")

# Same JSON filename both times so the "wrote stats JSON: <path>" log
# line cannot excuse a stdout difference.
set(json "${WORKDIR}/lanes_stats.json")

function(strip_wall_keys in out)
    file(READ "${in}" text)
    string(REGEX REPLACE "[^\n]*lanes\\.wall\\.[^\n]*\n" "" text
                 "${text}")
    file(WRITE "${out}" "${text}")
endfunction()

execute_process(COMMAND "${BENCH}" --scenarios 16 --lanes 1 --jobs 4
                        --stats-json "${json}"
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE out_solo
                ERROR_VARIABLE err_solo)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${BENCH} --lanes 1 exited with ${rc}:\n${err_solo}")
endif()
strip_wall_keys("${json}" "${WORKDIR}/lanes_stats_w1.json")
file(WRITE "${WORKDIR}/lanes_stdout_w1.txt" "${out_solo}")

execute_process(COMMAND "${BENCH}" --scenarios 16 --lanes 64 --jobs 4
                        --stats-json "${json}"
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE out_wide
                ERROR_VARIABLE err_wide)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${BENCH} --lanes 64 exited with ${rc}:\n${err_wide}")
endif()
strip_wall_keys("${json}" "${WORKDIR}/lanes_stats_w64.json")
file(WRITE "${WORKDIR}/lanes_stdout_w64.txt" "${out_wide}")

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        "${WORKDIR}/lanes_stdout_w1.txt"
                        "${WORKDIR}/lanes_stdout_w64.txt"
                RESULT_VARIABLE stdout_rc)
if(NOT stdout_rc EQUAL 0)
    message(FATAL_ERROR "stdout differs between --lanes 1 and "
                        "--lanes 64 (${WORKDIR}/lanes_stdout_w{1,64}.txt)")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        "${WORKDIR}/lanes_stats_w1.json"
                        "${WORKDIR}/lanes_stats_w64.json"
                RESULT_VARIABLE json_rc)
if(NOT json_rc EQUAL 0)
    message(FATAL_ERROR "stats JSON differs between --lanes 1 and "
                        "--lanes 64 (${WORKDIR}/lanes_stats_w{1,64}.json)")
endif()
