# ctest driver: the ash_exec determinism contract, end to end. Run a
# sweep bench twice — serial (--jobs 1) and parallel (--jobs 8) — and
# require byte-identical stdout AND byte-identical --stats-json. Any
# completion-order dependence in the merge barrier, record staging, or
# table printing shows up here as a diff.
# Invoked as:
#   cmake -DBENCH=<binary> -DWORKDIR=<dir> -P RunJobsDeterminism.cmake

file(MAKE_DIRECTORY "${WORKDIR}")

# Same JSON filename both times so the "wrote stats JSON: <path>" log
# line cannot excuse a stdout difference.
set(json "${WORKDIR}/det_stats.json")

execute_process(COMMAND "${BENCH}" --jobs 1 --stats-json "${json}"
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE out_serial
                ERROR_VARIABLE err_serial)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${BENCH} --jobs 1 exited with ${rc}:\n${err_serial}")
endif()
file(RENAME "${json}" "${WORKDIR}/det_stats_j1.json")
file(WRITE "${WORKDIR}/det_stdout_j1.txt" "${out_serial}")

execute_process(COMMAND "${BENCH}" --jobs 8 --stats-json "${json}"
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE out_parallel
                ERROR_VARIABLE err_parallel)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${BENCH} --jobs 8 exited with ${rc}:\n${err_parallel}")
endif()
file(RENAME "${json}" "${WORKDIR}/det_stats_j8.json")
file(WRITE "${WORKDIR}/det_stdout_j8.txt" "${out_parallel}")

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        "${WORKDIR}/det_stdout_j1.txt"
                        "${WORKDIR}/det_stdout_j8.txt"
                RESULT_VARIABLE stdout_rc)
if(NOT stdout_rc EQUAL 0)
    message(FATAL_ERROR "stdout differs between --jobs 1 and --jobs 8 "
                        "(${WORKDIR}/det_stdout_j{1,8}.txt)")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        "${WORKDIR}/det_stats_j1.json"
                        "${WORKDIR}/det_stats_j8.json"
                RESULT_VARIABLE json_rc)
if(NOT json_rc EQUAL 0)
    message(FATAL_ERROR "stats JSON differs between --jobs 1 and "
                        "--jobs 8 (${WORKDIR}/det_stats_j{1,8}.json)")
endif()
