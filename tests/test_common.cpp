/** @file Unit tests for the common infrastructure. */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/BitUtils.h"
#include "common/BoundedHeap.h"
#include "common/Logging.h"
#include "common/Random.h"
#include "common/Stats.h"
#include "common/Table.h"

namespace ash {
namespace {

TEST(BitUtils, Mask64)
{
    EXPECT_EQ(mask64(0), 0u);
    EXPECT_EQ(mask64(1), 1u);
    EXPECT_EQ(mask64(8), 0xffu);
    EXPECT_EQ(mask64(63), 0x7fffffffffffffffull);
    EXPECT_EQ(mask64(64), ~0ull);
}

TEST(BitUtils, Truncate)
{
    EXPECT_EQ(truncate(0x1ff, 8), 0xffu);
    EXPECT_EQ(truncate(0x100, 8), 0u);
    EXPECT_EQ(truncate(~0ull, 64), ~0ull);
}

TEST(BitUtils, SignExtend)
{
    EXPECT_EQ(signExtend(0x80, 8), -128);
    EXPECT_EQ(signExtend(0x7f, 8), 127);
    EXPECT_EQ(signExtend(1, 1), -1);
    EXPECT_EQ(signExtend(0, 1), 0);
    EXPECT_EQ(signExtend(0xffff, 16), -1);
}

TEST(BitUtils, BitsFor)
{
    EXPECT_EQ(bitsFor(0), 1u);
    EXPECT_EQ(bitsFor(1), 1u);
    EXPECT_EQ(bitsFor(2), 2u);
    EXPECT_EQ(bitsFor(255), 8u);
    EXPECT_EQ(bitsFor(256), 9u);
    EXPECT_EQ(bitsFor(~0ull), 64u);
}

TEST(BitUtils, CeilDivAndPow2)
{
    EXPECT_EQ(ceilDiv(10, 3), 4u);
    EXPECT_EQ(ceilDiv(9, 3), 3u);
    EXPECT_EQ(roundUpPow2(5), 8u);
    EXPECT_EQ(log2Exact(64), 6u);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, RangeBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        uint64_t v = rng.range(10, 20);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 20u);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(3);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Stats, CountersAndSamples)
{
    StatSet s;
    s.inc("a");
    s.inc("a", 4);
    EXPECT_EQ(s.get("a"), 5u);
    EXPECT_EQ(s.get("missing"), 0u);
    s.sample("x", 2.0);
    s.sample("x", 4.0);
    EXPECT_DOUBLE_EQ(s.accum("x").mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.accum("x").minValue, 2.0);
    EXPECT_DOUBLE_EQ(s.accum("x").maxValue, 4.0);
}

TEST(Stats, Merge)
{
    StatSet a, b;
    a.inc("n", 3);
    b.inc("n", 4);
    a.sample("v", 1.0);
    b.sample("v", 3.0);
    a.merge(b);
    EXPECT_EQ(a.get("n"), 7u);
    EXPECT_DOUBLE_EQ(a.accum("v").mean(), 2.0);
}

TEST(Stats, Geomean)
{
    double vals[] = {1.0, 100.0};
    EXPECT_NEAR(geomean(vals, 2), 10.0, 1e-9);
    double one[] = {7.0};
    EXPECT_NEAR(geomean(one, 1), 7.0, 1e-9);
    EXPECT_EQ(geomean(nullptr, 0), 0.0);
}

TEST(BoundedHeap, OrderedPop)
{
    BoundedHeap<int> heap(16);
    for (int v : {5, 3, 9, 1, 7})
        heap.push(v);
    std::vector<int> out;
    while (!heap.empty())
        out.push_back(heap.pop());
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
    EXPECT_EQ(out.size(), 5u);
}

TEST(BoundedHeap, ExtractWorst)
{
    BoundedHeap<int> heap(8);
    for (int v : {4, 8, 2, 6})
        heap.push(v);
    EXPECT_EQ(heap.extractWorst(), 8);
    EXPECT_EQ(heap.top(), 2);
    EXPECT_EQ(heap.size(), 3u);
}

TEST(BoundedHeap, RemoveIf)
{
    BoundedHeap<int> heap(16);
    for (int v = 0; v < 10; ++v)
        heap.push(v);
    size_t removed = heap.removeIf([](int v) { return v % 2 == 0; });
    EXPECT_EQ(removed, 5u);
    std::vector<int> out;
    while (!heap.empty())
        out.push_back(heap.pop());
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
    for (int v : out)
        EXPECT_EQ(v % 2, 1);
}

/** Property: heap pops match a sorted reference under random ops. */
TEST(BoundedHeap, RandomOpsMatchReference)
{
    Rng rng(123);
    BoundedHeap<uint64_t> heap(64);
    std::vector<uint64_t> ref;
    for (int step = 0; step < 2000; ++step) {
        if (!heap.full() && (ref.empty() || rng.chance(0.6))) {
            uint64_t v = rng.below(1000);
            heap.push(v);
            ref.push_back(v);
        } else {
            auto it = std::min_element(ref.begin(), ref.end());
            EXPECT_EQ(heap.pop(), *it);
            ref.erase(it);
        }
    }
}

TEST(TextTable, AlignmentAndArity)
{
    TextTable table({"name", "value"});
    table.addRow({"alpha", "1"});
    table.addRow({"b", "22"});
    std::string out = table.toString();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TextTable, Formatters)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::integer(42), "42");
    EXPECT_EQ(TextTable::speedup(2.5), "2.5x");
    EXPECT_EQ(TextTable::percent(0.174), "17.4%");
    EXPECT_EQ(TextTable::bytes(512), "512B");
    EXPECT_EQ(TextTable::bytes(2048), "2.0KB");
    EXPECT_EQ(TextTable::bytes(3 * 1024 * 1024), "3.0MB");
}

TEST(Logging, FatalThrows)
{
    EXPECT_THROW(fatal("boom %d", 42), FatalError);
    try {
        fatal("value %d", 7);
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("value 7"),
                  std::string::npos);
    }
}

} // namespace
} // namespace ash
