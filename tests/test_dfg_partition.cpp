/** @file Tests for the dataflow-graph layer and the partitioner. */

#include <gtest/gtest.h>

#include "common/Random.h"
#include "dfg/Dfg.h"
#include "designs/Designs.h"
#include "partition/Partition.h"
#include "tests/TestUtil.h"
#include "verilog/Compile.h"

namespace ash {
namespace {

rtl::Netlist
mixedNetlist()
{
    return verilog::compileVerilog(test::mixedFixture(), "top");
}

TEST(Dfg, ExcludesConstants)
{
    rtl::Netlist nl = mixedNetlist();
    dfg::Dfg graph(nl);
    size_t consts = 0;
    for (rtl::NodeId i = 0; i < nl.numNodes(); ++i) {
        if (nl.node(i).op == rtl::Op::Const) {
            ++consts;
            EXPECT_EQ(graph.dfgNode(i), dfg::invalidDfgNode);
        }
    }
    EXPECT_EQ(graph.numNodes() + consts, nl.numNodes());
}

TEST(Dfg, UnrolledRegistersAreCrossCycleEdges)
{
    rtl::Netlist nl = mixedNetlist();
    dfg::Dfg unrolled(nl, {.unrolled = true});
    size_t cross_value = 0;
    for (const dfg::DfgEdge &e : unrolled.edges()) {
        if (e.crossCycle && e.kind == dfg::EdgeKind::Value)
            ++cross_value;
    }
    // One cross edge per register with a non-constant next value.
    EXPECT_EQ(cross_value, nl.regs().size());
    for (dfg::DfgNodeId i = 0; i < unrolled.numNodes(); ++i)
        EXPECT_FALSE(unrolled.isRegWrite(i));
}

TEST(Dfg, SingleCycleHasRegWriteNodes)
{
    rtl::Netlist nl = mixedNetlist();
    dfg::Dfg single(nl, {.unrolled = false});
    dfg::Dfg unrolled(nl, {.unrolled = true});
    EXPECT_EQ(single.numNodes(),
              unrolled.numNodes() + nl.regs().size());
    size_t reg_writes = 0;
    for (dfg::DfgNodeId i = 0; i < single.numNodes(); ++i)
        reg_writes += single.isRegWrite(i);
    EXPECT_EQ(reg_writes, nl.regs().size());
}

TEST(Dfg, UnrollingHelpsPipelinedDesigns)
{
    // The paper's Sec 4.3.1 claim: turning registers into cross-cycle
    // edges removes WAR hazards; on a deep pipeline the single-cycle
    // graph's synthetic register-store nodes and WAR edges lengthen
    // the critical path relative to the unrolled form.
    rtl::Netlist nl =
        designs::compileDesign(designs::makeNtt(16));
    dfg::Dfg single(nl, {.unrolled = false});
    dfg::Dfg unrolled(nl, {.unrolled = true});
    EXPECT_LE(unrolled.criticalPathCost(),
              single.criticalPathCost());
    EXPECT_GE(unrolled.parallelism(), single.parallelism() * 0.95);
}

TEST(Dfg, DepthsRespectEdges)
{
    rtl::Netlist nl = mixedNetlist();
    dfg::Dfg graph(nl);
    for (const dfg::DfgEdge &e : graph.edges()) {
        if (!e.crossCycle) {
            EXPECT_LT(graph.depths()[e.src], graph.depths()[e.dst]);
        }
    }
}

TEST(Dfg, MemoryOrderingEdgesPresent)
{
    rtl::Netlist nl = mixedNetlist();
    ASSERT_FALSE(nl.memories().empty());
    dfg::Dfg graph(nl);
    size_t war = 0, raw_cross = 0;
    for (const dfg::DfgEdge &e : graph.edges()) {
        if (e.kind == dfg::EdgeKind::War)
            ++war;
        if (e.kind == dfg::EdgeKind::Raw && e.crossCycle)
            ++raw_cross;
    }
    EXPECT_GT(war, 0u);        // Reads ordered before writes.
    EXPECT_GT(raw_cross, 0u);  // Writes ordered before next reads.
}

TEST(Dfg, TotalCostPositive)
{
    rtl::Netlist nl = mixedNetlist();
    dfg::Dfg graph(nl);
    EXPECT_GT(graph.totalCost(), 0u);
    EXPECT_GT(graph.criticalPathCost(), 0u);
    EXPECT_GE(graph.totalCost(), graph.criticalPathCost());
}

// ---------------------------------------------------------------------
// Partitioner
// ---------------------------------------------------------------------

partition::Graph
randomGraph(size_t n, size_t edges, uint64_t seed)
{
    partition::Graph g;
    g.vertexWeight.assign(n, 1);
    g.adj.resize(n);
    Rng rng(seed);
    for (size_t i = 0; i < n; ++i)
        g.vertexWeight[i] = 1 + static_cast<uint32_t>(rng.below(8));
    for (size_t e = 0; e < edges; ++e) {
        uint32_t u = static_cast<uint32_t>(rng.below(n));
        uint32_t v = static_cast<uint32_t>(rng.below(n));
        if (u != v)
            g.addEdge(u, v, 1 + static_cast<uint32_t>(rng.below(10)));
    }
    return g;
}

TEST(Partition, SinglePartitionTrivial)
{
    partition::Graph g = randomGraph(50, 100, 1);
    auto result = partition::partitionGraph(g, 1);
    EXPECT_EQ(result.cutWeight, 0u);
    for (uint32_t label : result.label)
        EXPECT_EQ(label, 0u);
}

TEST(Partition, TwoCliquesWithBridge)
{
    // Two 8-cliques joined by one light edge: the cut must be the
    // bridge.
    partition::Graph g;
    g.vertexWeight.assign(16, 1);
    g.adj.resize(16);
    for (int c = 0; c < 2; ++c) {
        for (int i = 0; i < 8; ++i) {
            for (int j = i + 1; j < 8; ++j)
                g.addEdge(c * 8 + i, c * 8 + j, 100);
        }
    }
    g.addEdge(3, 11, 1);
    auto result = partition::partitionGraph(g, 2);
    EXPECT_EQ(result.cutWeight, 1u);
    EXPECT_NE(result.label[0], result.label[8]);
    for (int i = 1; i < 8; ++i) {
        EXPECT_EQ(result.label[i], result.label[0]);
        EXPECT_EQ(result.label[8 + i], result.label[8]);
    }
}

TEST(Partition, CutWeightMatchesLabels)
{
    partition::Graph g = randomGraph(200, 600, 7);
    auto result = partition::partitionGraph(g, 4);
    EXPECT_EQ(result.cutWeight, partition::cutWeight(g, result.label));
}

TEST(Partition, Deterministic)
{
    partition::Graph g = randomGraph(150, 400, 11);
    auto a = partition::partitionGraph(g, 8);
    auto b = partition::partitionGraph(g, 8);
    EXPECT_EQ(a.label, b.label);
}

class PartitionSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(PartitionSweep, BalanceAndValidity)
{
    auto [k, seed] = GetParam();
    partition::Graph g = randomGraph(300, 900,
                                     static_cast<uint64_t>(seed));
    partition::PartitionOptions opts;
    opts.seed = static_cast<uint64_t>(seed);
    auto result = partition::partitionGraph(
        g, static_cast<uint32_t>(k), opts);

    uint64_t total = 0;
    uint32_t max_vertex = 0;
    for (uint32_t w : g.vertexWeight) {
        total += w;
        max_vertex = std::max(max_vertex, w);
    }
    for (uint32_t label : result.label)
        EXPECT_LT(label, static_cast<uint32_t>(k));
    // Each partition stays within tolerance (plus one vertex of
    // slack for atomicity).
    double cap = (static_cast<double>(total) / k) * 1.35 + max_vertex;
    EXPECT_LE(static_cast<double>(result.maxPartWeight), cap);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionSweep,
    ::testing::Combine(::testing::Values(2, 4, 8, 16),
                       ::testing::Values(1, 2, 3)));

TEST(Partition, RefinementBeatsRandomByALot)
{
    partition::Graph g = randomGraph(400, 1600, 21);
    auto result = partition::partitionGraph(g, 8);
    // Random labeling cut, for scale.
    Rng rng(5);
    std::vector<uint32_t> random_labels(g.numVertices());
    for (auto &l : random_labels)
        l = static_cast<uint32_t>(rng.below(8));
    uint64_t random_cut = partition::cutWeight(g, random_labels);
    EXPECT_LT(result.cutWeight, random_cut);
}

} // namespace
} // namespace ash
