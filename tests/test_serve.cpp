/**
 * @file
 * Tests for the ash_serve subsystem: protocol parsing and the
 * envelope/result byte contract, FairQueue admission/dispatch/drain
 * policies, ResultCache LRU + CRC-checked persistence, and the
 * Server end to end over a real unix socket — cold/memo/warm
 * byte-identity, restart persistence, graceful drain, per-tenant
 * fault targeting, and the two-process shared-state-directory
 * atomicity contract (a reader never observes a torn manifest).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "guard/Fault.h"
#include "serve/FairQueue.h"
#include "serve/Net.h"
#include "serve/Protocol.h"
#include "serve/ResultCache.h"
#include "serve/Server.h"

namespace ash::serve {
namespace {

// ---------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------

TEST(ServeProtocol, SerializeParseRoundTrip)
{
    SimRequest req;
    req.op = "sim";
    req.client = "tenant-7";
    req.design = "gcd";
    req.engine = "dash";
    req.tiles = 32;
    req.cycles = 12345;
    req.nocache = true;
    req.id = 99;

    SimRequest back;
    std::string err;
    ASSERT_TRUE(parseRequest(serializeRequest(req), back, &err)) << err;
    EXPECT_EQ(back.op, req.op);
    EXPECT_EQ(back.client, req.client);
    EXPECT_EQ(back.design, req.design);
    EXPECT_EQ(back.engine, req.engine);
    EXPECT_EQ(back.tiles, req.tiles);
    EXPECT_EQ(back.cycles, req.cycles);
    EXPECT_EQ(back.nocache, req.nocache);
    EXPECT_EQ(back.id, req.id);
}

TEST(ServeProtocol, RejectsMalformedRequests)
{
    SimRequest out;
    std::string err;
    EXPECT_FALSE(parseRequest("not json", out, &err));
    EXPECT_FALSE(parseRequest("{\"op\":\"evil\"}", out, &err));
    EXPECT_FALSE(parseRequest("{\"engine\":\"verilator\"}", out, &err));
    // Client names key fault scopes and accounting tables; reject
    // anything outside the safe charset.
    EXPECT_FALSE(
        parseRequest("{\"client\":\"a/b\"}", out, &err));
    EXPECT_FALSE(parseRequest("{\"tiles\":0}", out, &err));
    EXPECT_FALSE(parseRequest("{\"tiles\":2048}", out, &err));
    EXPECT_FALSE(parseRequest("{\"cycles\":0}", out, &err));
}

TEST(ServeProtocol, ProgramHashSharedAcrossEngines)
{
    SimRequest dash, sash;
    dash.engine = "dash";
    sash.engine = "sash";
    // dash and sash run the same compiled program; only the result
    // key separates them.
    EXPECT_EQ(programHash(dash), programHash(sash));
    EXPECT_NE(configHash(dash), configHash(sash));

    SimRequest other = dash;
    other.tiles = dash.tiles + 1;
    EXPECT_NE(programHash(dash), programHash(other));

    SimRequest longer = dash;
    longer.cycles = dash.cycles + 1;
    EXPECT_EQ(programHash(dash), programHash(longer));
    EXPECT_NE(configHash(dash), configHash(longer));
}

TEST(ServeProtocol, ExtractResultRecoversExactBytes)
{
    SimRequest req;
    req.id = 3;
    const std::string payload =
        "{\"metrics\": {\"speed_khz\": 12.5},\"s\": \"quoted \\\" "
        "and ,\\\"result\\\": inside a string\"}";
    Timing t;
    t.queueMs = 1.25;
    t.serviceMs = 9.75;
    std::string env = okSimEnvelope(req, "k-1", "cold", t, payload);

    std::string out;
    ASSERT_TRUE(extractResult(env, out));
    EXPECT_EQ(out, payload);
    EXPECT_EQ(extractCacheClass(env), "cold");

    std::string errEnv = errorEnvelope(req, "boom", "it broke");
    EXPECT_FALSE(extractResult(errEnv, out));
    EXPECT_EQ(extractCacheClass(errEnv), "");
    EXPECT_EQ(errEnv.rfind("{\"ok\": false", 0), 0u);
}

// ---------------------------------------------------------------
// FairQueue
// ---------------------------------------------------------------

TEST(ServeFairQueue, RoundRobinPreventsStarvation)
{
    QueueLimits limits;
    limits.maxQueuedPerClient = 64;
    FairQueue q(limits);

    std::vector<std::string> ran;
    for (int i = 0; i < 10; ++i)
        ASSERT_EQ(q.push("hog", [] {}), Admit::Ok);
    ASSERT_EQ(q.push("mouse", [] {}), Admit::Ok);

    std::function<void()> work;
    std::string client;
    std::vector<std::string> order;
    for (int i = 0; i < 11; ++i) {
        ASSERT_TRUE(q.pop(work, client));
        order.push_back(client);
        q.done(client);
    }
    // The hog queued first, but the mouse must be served on the
    // next rotation — position 1, not position 10.
    EXPECT_EQ(order[1], "mouse");
}

TEST(ServeFairQueue, PerClientQueueCap)
{
    QueueLimits limits;
    limits.maxQueuedPerClient = 2;
    FairQueue q(limits);
    EXPECT_EQ(q.push("a", [] {}), Admit::Ok);
    EXPECT_EQ(q.push("a", [] {}), Admit::Ok);
    EXPECT_EQ(q.push("a", [] {}), Admit::QueueFull);
    // Backpressure is per client: b is untouched by a's flood.
    EXPECT_EQ(q.push("b", [] {}), Admit::Ok);
    EXPECT_EQ(std::string(admitName(Admit::QueueFull)), "queue_full");
}

TEST(ServeFairQueue, TokenBucketRateLimit)
{
    QueueLimits limits;
    limits.ratePerSec = 1.0;
    limits.burst = 2.0;
    FairQueue q(limits);
    EXPECT_EQ(q.push("a", [] {}), Admit::Ok);
    EXPECT_EQ(q.push("a", [] {}), Admit::Ok);
    // Burst spent; the refill rate (1/s) cannot cover a third
    // immediate request.
    EXPECT_EQ(q.push("a", [] {}), Admit::RateLimited);
    // Fresh clients start with a full burst of their own.
    EXPECT_EQ(q.push("b", [] {}), Admit::Ok);
}

TEST(ServeFairQueue, CloseDrainsAdmittedWork)
{
    FairQueue q(QueueLimits{});
    std::atomic<int> ran{0};
    for (int i = 0; i < 5; ++i)
        ASSERT_EQ(q.push("a", [&] { ran.fetch_add(1); }), Admit::Ok);
    q.close();
    EXPECT_EQ(q.push("a", [] {}), Admit::Closed);

    std::function<void()> work;
    std::string client;
    // Everything admitted before close() still drains through pop.
    while (q.pop(work, client)) {
        work();
        q.done(client);
    }
    EXPECT_EQ(ran.load(), 5);
    EXPECT_EQ(q.depth(), 0u);
}

TEST(ServeFairQueue, InFlightCapThrottlesSoleClient)
{
    QueueLimits limits;
    limits.maxInFlightPerClient = 1;
    FairQueue q(limits);
    ASSERT_EQ(q.push("a", [] {}), Admit::Ok);
    ASSERT_EQ(q.push("a", [] {}), Admit::Ok);

    std::function<void()> w1, w2;
    std::string c1, c2;
    ASSERT_TRUE(q.pop(w1, c1));
    // a is at its in-flight cap; the second item must wait for
    // done() even though a worker is asking.
    std::atomic<bool> second{false};
    std::thread t([&] {
        ASSERT_TRUE(q.pop(w2, c2));
        second.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(second.load());
    q.done(c1);
    t.join();
    EXPECT_TRUE(second.load());
    q.done(c2);
}

// ---------------------------------------------------------------
// ResultCache
// ---------------------------------------------------------------

std::string
testDir(const char *leaf)
{
    std::string dir =
        ::testing::TempDir() + "ash_serve_" + leaf + "_" +
        std::to_string(::getpid());
    ::mkdir(dir.c_str(), 0755);
    return dir;
}

TEST(ServeResultCache, LruEviction)
{
    ResultCache cache(2, "");
    cache.put("a", "1");
    cache.put("b", "2");
    std::string out;
    ASSERT_TRUE(cache.get("a", out));   // refresh a
    cache.put("c", "3");                // evicts b (LRU)
    EXPECT_TRUE(cache.get("a", out));
    EXPECT_FALSE(cache.get("b", out));
    EXPECT_TRUE(cache.get("c", out));
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ServeResultCache, PersistAndReloadByteIdentical)
{
    std::string dir = testDir("memo");
    const std::string payload =
        "{\"metrics\": {\"speed_khz\": 4683.8407494145204},"
        "\"quote\": \"a\\\"b\"}";
    {
        ResultCache cache(16, dir);
        cache.put("key-1", payload);
        cache.put("key-2", "{}");
        EXPECT_EQ(cache.persist(), 2u);
    }
    ResultCache fresh(16, dir);
    EXPECT_EQ(fresh.load(), 2u);
    std::string out;
    ASSERT_TRUE(fresh.get("key-1", out));
    EXPECT_EQ(out, payload);
    EXPECT_EQ(fresh.stats().dropped, 0u);
}

TEST(ServeResultCache, CorruptEntryDroppedNotServed)
{
    std::string dir = testDir("crc");
    {
        ResultCache cache(16, dir);
        cache.put("good", "{\"v\": 1}");
        cache.put("bad", "{\"v\": 2}");
        ASSERT_EQ(cache.persist(), 2u);
    }
    // Flip one byte inside the manifest's payload for "bad": CRC
    // must catch it and load() must drop that entry only.
    std::string path;
    {
        ResultCache probe(16, dir);
        path = probe.manifestPath();
    }
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::string doc;
    {
        char buf[4096];
        size_t n;
        while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
            doc.append(buf, n);
    }
    size_t at = doc.find("\\\"v\\\": 2");
    ASSERT_NE(at, std::string::npos);
    doc[at + 7] = '3';
    std::rewind(f);
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);

    ResultCache fresh(16, dir);
    EXPECT_EQ(fresh.load(), 1u);
    std::string out;
    EXPECT_TRUE(fresh.get("good", out));
    EXPECT_FALSE(fresh.get("bad", out));
    EXPECT_EQ(fresh.stats().dropped, 1u);
}

// ---------------------------------------------------------------
// Server end to end (unix socket, in-process daemon)
// ---------------------------------------------------------------

/** Short socket paths: sun_path caps at ~107 bytes, so use /tmp
 *  directly rather than the (long) gtest temp dir. */
std::string
sockPath(const char *leaf)
{
    return "/tmp/ash-serve-test-" + std::to_string(::getpid()) + "-" +
           leaf + ".sock";
}

/** One request/response round trip on its own connection. */
std::string
ask(const std::string &socket, const SimRequest &req)
{
    std::string err;
    int fd = net::connectUnix(socket, &err);
    EXPECT_GE(fd, 0) << err;
    if (fd < 0)
        return "";
    EXPECT_TRUE(net::writeAll(fd, serializeRequest(req) + "\n"));
    net::LineReader reader(fd);
    std::string envelope;
    EXPECT_EQ(reader.readLine(envelope, nullptr, 120000), 1);
    ::close(fd);
    return envelope;
}

SimRequest
tinySim(const char *client, uint64_t cycles = 8, uint32_t tiles = 4)
{
    SimRequest req;
    req.client = client;
    req.design = "ntt";
    req.engine = "sash";
    req.tiles = tiles;
    req.cycles = cycles;
    return req;
}

TEST(ServeServer, ColdThenMemoByteIdentical)
{
    ServerOptions opts;
    opts.socketPath = sockPath("memo");
    Server server(opts);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    std::string e1 = ask(opts.socketPath, tinySim("t"));
    std::string e2 = ask(opts.socketPath, tinySim("t"));
    EXPECT_EQ(extractCacheClass(e1), "cold");
    EXPECT_EQ(extractCacheClass(e2), "memo");

    std::string r1, r2;
    ASSERT_TRUE(extractResult(e1, r1));
    ASSERT_TRUE(extractResult(e2, r2));
    EXPECT_EQ(r1, r2);   // the memo contract, to the byte

    // nocache forces execution on the hot program: "warm", same
    // bytes again.
    SimRequest forced = tinySim("t");
    forced.nocache = true;
    std::string e3 = ask(opts.socketPath, forced);
    EXPECT_EQ(extractCacheClass(e3), "warm");
    std::string r3;
    ASSERT_TRUE(extractResult(e3, r3));
    EXPECT_EQ(r1, r3);

    server.stop();
}

TEST(ServeServer, StatsAndPingOps)
{
    ServerOptions opts;
    opts.socketPath = sockPath("stats");
    Server server(opts);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    SimRequest ping;
    ping.op = "ping";
    std::string pong = ask(opts.socketPath, ping);
    EXPECT_EQ(pong.rfind("{\"ok\": true", 0), 0u);

    ask(opts.socketPath, tinySim("s"));
    ask(opts.socketPath, tinySim("s"));

    SimRequest stats;
    stats.op = "stats";
    std::string env = ask(opts.socketPath, stats);
    EXPECT_EQ(env.rfind("{\"ok\": true", 0), 0u);
    EXPECT_NE(env.find("\"result_cache\""), std::string::npos);
    EXPECT_NE(env.find("\"design_cache\""), std::string::npos);
    EXPECT_NE(env.find("\"queue\""), std::string::npos);
    EXPECT_NE(env.find("\"clients\""), std::string::npos);

    server.stop();
}

TEST(ServeServer, RestartServesMemoFromDisk)
{
    ServerOptions opts;
    opts.socketPath = sockPath("restart");
    opts.stateDir = testDir("restart_state");

    std::string coldBytes;
    {
        Server server(opts);
        std::string err;
        ASSERT_TRUE(server.start(&err)) << err;
        std::string env = ask(opts.socketPath, tinySim("r"));
        EXPECT_EQ(extractCacheClass(env), "cold");
        ASSERT_TRUE(extractResult(env, coldBytes));
        server.stop();   // persists the result manifest
    }
    {
        Server server(opts);
        std::string err;
        ASSERT_TRUE(server.start(&err)) << err;
        std::string env = ask(opts.socketPath, tinySim("r"));
        // Same fingerprint+config across a restart: a memo hit with
        // byte-identical result bytes, without running anything.
        EXPECT_EQ(extractCacheClass(env), "memo");
        std::string bytes;
        ASSERT_TRUE(extractResult(env, bytes));
        EXPECT_EQ(bytes, coldBytes);
        server.stop();
    }
}

TEST(ServeServer, UnknownDesignIsStructuredError)
{
    ServerOptions opts;
    opts.socketPath = sockPath("baddesign");
    Server server(opts);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    SimRequest req = tinySim("x");
    req.design = "no_such_design";
    std::string env = ask(opts.socketPath, req);
    EXPECT_EQ(env.rfind("{\"ok\": false", 0), 0u);
    EXPECT_NE(env.find("unknown_design"), std::string::npos);

    // The daemon keeps serving after the error.
    std::string good = ask(opts.socketPath, tinySim("x"));
    EXPECT_EQ(good.rfind("{\"ok\": true", 0), 0u);
    server.stop();
}

TEST(ServeServer, FaultPlanHitsOnlyTargetTenant)
{
    // Arm a plan that kills every job of the "faulty" tenant; the
    // serve job key embeds the client name, so the scope match
    // cannot touch anyone else.
    guard::FaultPlan plan;
    std::string perr;
    ASSERT_TRUE(
        guard::FaultPlan::parse("job.body@serve/faulty/:error", plan,
                                &perr))
        << perr;
    guard::FaultInjector::instance().arm(plan);

    ServerOptions opts;
    opts.socketPath = sockPath("fault");
    Server server(opts);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    SimRequest doomed = tinySim("faulty");
    doomed.nocache = true;   // memo would dodge the fault site
    std::string bad = ask(opts.socketPath, doomed);
    EXPECT_EQ(bad.rfind("{\"ok\": false", 0), 0u);
    EXPECT_NE(bad.find("\"fault\""), std::string::npos);

    // An innocent tenant with the same config is untouched, and the
    // daemon keeps serving.
    std::string good = ask(opts.socketPath, tinySim("innocent"));
    EXPECT_EQ(good.rfind("{\"ok\": true", 0), 0u);

    server.stop();
    guard::FaultInjector::instance().disarm();
}

TEST(ServeServer, DrainAnswersEveryAdmittedRequest)
{
    ServerOptions opts;
    opts.socketPath = sockPath("drain");
    opts.workers = 1;   // force queuing
    Server server(opts);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    // Several distinct configs (nothing memoized) from separate
    // connections, then a stop request racing the queue.
    constexpr int kN = 4;
    std::vector<std::thread> threads;
    std::vector<std::string> envs(kN);
    for (int i = 0; i < kN; ++i)
        threads.emplace_back([&, i] {
            SimRequest req = tinySim("drain");
            req.cycles = 8 + static_cast<uint64_t>(i);
            envs[static_cast<size_t>(i)] =
                ask(opts.socketPath, req);
        });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    server.requestStop();
    for (std::thread &t : threads)
        t.join();
    server.stop();

    // Graceful drain contract: everything admitted was ANSWERED —
    // each thread got either a success or a structured
    // shutting_down rejection, never a dropped connection.
    for (const std::string &env : envs) {
        ASSERT_FALSE(env.empty());
        bool ok = env.rfind("{\"ok\": true", 0) == 0;
        bool rejected =
            env.find("shutting_down") != std::string::npos;
        EXPECT_TRUE(ok || rejected) << env;
    }
}

// ---------------------------------------------------------------
// Two-process shared state directory: the atomic-manifest contract
// ---------------------------------------------------------------

TEST(ServeSharedState, ConcurrentPersistNeverTearsManifest)
{
    std::string dir = testDir("shared");

    // Two writer processes hammer persist() into ONE directory with
    // different entry sets while the parent loads concurrently.
    // unique tmp names + atomic rename mean every load() must see a
    // complete, CRC-clean manifest from one writer or the other —
    // never a torn mix.
    auto writer = [&dir](const char *tag) -> pid_t {
        pid_t pid = ::fork();
        if (pid != 0)
            return pid;
        ResultCache cache(64, dir);
        for (int i = 0; i < 40; ++i) {
            cache.put(std::string(tag) + "-" + std::to_string(i),
                      "{\"writer\": \"" + std::string(tag) +
                          "\",\"i\": " + std::to_string(i) + "}");
            if (cache.persist() == 0)
                ::_exit(3);   // any write failure fails the test
        }
        ::_exit(0);
    };

    pid_t a = writer("a");
    ASSERT_GT(a, 0);
    pid_t b = writer("b");
    ASSERT_GT(b, 0);

    int cleanLoads = 0;
    for (int i = 0; i < 60; ++i) {
        ResultCache reader(4096, dir);
        size_t n = reader.load();
        // A missing manifest (before the first persist) loads 0;
        // once anything loads, it must be complete and CRC-clean.
        if (n > 0)
            ++cleanLoads;
        EXPECT_EQ(reader.stats().dropped, 0u)
            << "torn manifest observed on load " << i;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }

    int status = 0;
    ASSERT_EQ(::waitpid(a, &status, 0), a);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    ASSERT_EQ(::waitpid(b, &status, 0), b);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    EXPECT_GT(cleanLoads, 0);

    // The survivor is one writer's complete final manifest.
    ResultCache last(4096, dir);
    EXPECT_EQ(last.load(), 40u);
    EXPECT_EQ(last.stats().dropped, 0u);
}

} // namespace
} // namespace ash::serve
