/**
 * @file
 * Tests for the ash_serve subsystem: protocol parsing and the
 * envelope/result byte contract, FairQueue admission/dispatch/drain
 * policies, ResultCache LRU + CRC-checked persistence, and the
 * Server end to end over a real unix socket — cold/memo/warm
 * byte-identity, restart persistence, graceful drain, per-tenant
 * fault targeting, and the two-process shared-state-directory
 * atomicity contract (a reader never observes a torn manifest).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "guard/Fault.h"
#include "serve/FairQueue.h"
#include "serve/Net.h"
#include "serve/Protocol.h"
#include "serve/ResultCache.h"
#include "serve/Server.h"

namespace ash::serve {
namespace {

// ---------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------

TEST(ServeProtocol, SerializeParseRoundTrip)
{
    SimRequest req;
    req.op = "sim";
    req.client = "tenant-7";
    req.design = "gcd";
    req.engine = "dash";
    req.tiles = 32;
    req.cycles = 12345;
    req.nocache = true;
    req.id = 99;
    req.deadlineMs = 2500;

    SimRequest back;
    std::string err;
    ASSERT_TRUE(parseRequest(serializeRequest(req), back, &err)) << err;
    EXPECT_EQ(back.op, req.op);
    EXPECT_EQ(back.client, req.client);
    EXPECT_EQ(back.design, req.design);
    EXPECT_EQ(back.engine, req.engine);
    EXPECT_EQ(back.tiles, req.tiles);
    EXPECT_EQ(back.cycles, req.cycles);
    EXPECT_EQ(back.nocache, req.nocache);
    EXPECT_EQ(back.id, req.id);
    EXPECT_EQ(back.deadlineMs, req.deadlineMs);

    // A deadline changes whether a result arrives, never what it is:
    // it must not enter the memo key.
    SimRequest hurried = req;
    hurried.deadlineMs = 1;
    EXPECT_EQ(configHash(req), configHash(hurried));
}

TEST(ServeProtocol, RejectsMalformedRequests)
{
    SimRequest out;
    std::string err;
    EXPECT_FALSE(parseRequest("not json", out, &err));
    EXPECT_FALSE(parseRequest("{\"op\":\"evil\"}", out, &err));
    EXPECT_FALSE(parseRequest("{\"engine\":\"verilator\"}", out, &err));
    // Client names key fault scopes and accounting tables; reject
    // anything outside the safe charset.
    EXPECT_FALSE(
        parseRequest("{\"client\":\"a/b\"}", out, &err));
    EXPECT_FALSE(parseRequest("{\"tiles\":0}", out, &err));
    EXPECT_FALSE(parseRequest("{\"tiles\":2048}", out, &err));
    EXPECT_FALSE(parseRequest("{\"cycles\":0}", out, &err));
}

TEST(ServeProtocol, ProgramHashSharedAcrossEngines)
{
    SimRequest dash, sash;
    dash.engine = "dash";
    sash.engine = "sash";
    // dash and sash run the same compiled program; only the result
    // key separates them.
    EXPECT_EQ(programHash(dash), programHash(sash));
    EXPECT_NE(configHash(dash), configHash(sash));

    SimRequest other = dash;
    other.tiles = dash.tiles + 1;
    EXPECT_NE(programHash(dash), programHash(other));

    SimRequest longer = dash;
    longer.cycles = dash.cycles + 1;
    EXPECT_EQ(programHash(dash), programHash(longer));
    EXPECT_NE(configHash(dash), configHash(longer));
}

TEST(ServeProtocol, ExtractResultRecoversExactBytes)
{
    SimRequest req;
    req.id = 3;
    const std::string payload =
        "{\"metrics\": {\"speed_khz\": 12.5},\"s\": \"quoted \\\" "
        "and ,\\\"result\\\": inside a string\"}";
    Timing t;
    t.queueMs = 1.25;
    t.serviceMs = 9.75;
    std::string env = okSimEnvelope(req, "k-1", "cold", t, payload);

    std::string out;
    ASSERT_TRUE(extractResult(env, out));
    EXPECT_EQ(out, payload);
    EXPECT_EQ(extractCacheClass(env), "cold");

    std::string errEnv = errorEnvelope(req, "boom", "it broke");
    EXPECT_FALSE(extractResult(errEnv, out));
    EXPECT_EQ(extractCacheClass(errEnv), "");
    EXPECT_EQ(errEnv.rfind("{\"ok\": false", 0), 0u);
}

// ---------------------------------------------------------------
// FairQueue
// ---------------------------------------------------------------

TEST(ServeFairQueue, RoundRobinPreventsStarvation)
{
    QueueLimits limits;
    limits.maxQueuedPerClient = 64;
    FairQueue q(limits);

    std::vector<std::string> ran;
    for (int i = 0; i < 10; ++i)
        ASSERT_EQ(q.push("hog", [] {}), Admit::Ok);
    ASSERT_EQ(q.push("mouse", [] {}), Admit::Ok);

    std::function<void()> work;
    std::string client;
    std::vector<std::string> order;
    for (int i = 0; i < 11; ++i) {
        ASSERT_TRUE(q.pop(work, client));
        order.push_back(client);
        q.done(client);
    }
    // The hog queued first, but the mouse must be served on the
    // next rotation — position 1, not position 10.
    EXPECT_EQ(order[1], "mouse");
}

TEST(ServeFairQueue, PerClientQueueCap)
{
    QueueLimits limits;
    limits.maxQueuedPerClient = 2;
    FairQueue q(limits);
    EXPECT_EQ(q.push("a", [] {}), Admit::Ok);
    EXPECT_EQ(q.push("a", [] {}), Admit::Ok);
    EXPECT_EQ(q.push("a", [] {}), Admit::QueueFull);
    // Backpressure is per client: b is untouched by a's flood.
    EXPECT_EQ(q.push("b", [] {}), Admit::Ok);
    EXPECT_EQ(std::string(admitName(Admit::QueueFull)), "queue_full");
}

TEST(ServeFairQueue, TokenBucketRateLimit)
{
    QueueLimits limits;
    limits.ratePerSec = 1.0;
    limits.burst = 2.0;
    FairQueue q(limits);
    EXPECT_EQ(q.push("a", [] {}), Admit::Ok);
    EXPECT_EQ(q.push("a", [] {}), Admit::Ok);
    // Burst spent; the refill rate (1/s) cannot cover a third
    // immediate request.
    EXPECT_EQ(q.push("a", [] {}), Admit::RateLimited);
    // Fresh clients start with a full burst of their own.
    EXPECT_EQ(q.push("b", [] {}), Admit::Ok);
}

TEST(ServeFairQueue, CloseDrainsAdmittedWork)
{
    FairQueue q(QueueLimits{});
    std::atomic<int> ran{0};
    for (int i = 0; i < 5; ++i)
        ASSERT_EQ(q.push("a", [&] { ran.fetch_add(1); }), Admit::Ok);
    q.close();
    EXPECT_EQ(q.push("a", [] {}), Admit::Closed);

    std::function<void()> work;
    std::string client;
    // Everything admitted before close() still drains through pop.
    while (q.pop(work, client)) {
        work();
        q.done(client);
    }
    EXPECT_EQ(ran.load(), 5);
    EXPECT_EQ(q.depth(), 0u);
}

TEST(ServeFairQueue, InFlightCapThrottlesSoleClient)
{
    QueueLimits limits;
    limits.maxInFlightPerClient = 1;
    FairQueue q(limits);
    ASSERT_EQ(q.push("a", [] {}), Admit::Ok);
    ASSERT_EQ(q.push("a", [] {}), Admit::Ok);

    std::function<void()> w1, w2;
    std::string c1, c2;
    ASSERT_TRUE(q.pop(w1, c1));
    // a is at its in-flight cap; the second item must wait for
    // done() even though a worker is asking.
    std::atomic<bool> second{false};
    std::thread t([&] {
        ASSERT_TRUE(q.pop(w2, c2));
        second.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(second.load());
    q.done(c1);
    t.join();
    EXPECT_TRUE(second.load());
    q.done(c2);
}

TEST(ServeFairQueue, GlobalCapShedsOverload)
{
    QueueLimits limits;
    limits.maxQueuedPerClient = 64;
    limits.maxQueuedGlobal = 2;
    FairQueue q(limits);
    EXPECT_EQ(q.push("a", [] {}), Admit::Ok);
    EXPECT_EQ(q.push("b", [] {}), Admit::Ok);
    // The global line is full: even a fresh client is shed, and the
    // rejection is distinguishable from a per-client cap.
    EXPECT_EQ(q.push("c", [] {}), Admit::Overloaded);
    EXPECT_EQ(std::string(admitName(Admit::Overloaded)),
              "overloaded");

    // Draining one slot reopens admission.
    std::function<void()> work;
    std::string client;
    ASSERT_TRUE(q.pop(work, client));
    q.done(client);
    EXPECT_EQ(q.push("c", [] {}), Admit::Ok);

    uint64_t shed = 0;
    for (const auto &cs : q.snapshot())
        shed += cs.rejectedOverload;
    EXPECT_EQ(shed, 1u);
}

// ---------------------------------------------------------------
// ResultCache
// ---------------------------------------------------------------

std::string
testDir(const char *leaf)
{
    std::string dir =
        ::testing::TempDir() + "ash_serve_" + leaf + "_" +
        std::to_string(::getpid());
    ::mkdir(dir.c_str(), 0755);
    return dir;
}

TEST(ServeResultCache, LruEviction)
{
    ResultCache cache(2, "");
    cache.put("a", "1");
    cache.put("b", "2");
    std::string out;
    ASSERT_TRUE(cache.get("a", out));   // refresh a
    cache.put("c", "3");                // evicts b (LRU)
    EXPECT_TRUE(cache.get("a", out));
    EXPECT_FALSE(cache.get("b", out));
    EXPECT_TRUE(cache.get("c", out));
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ServeResultCache, PersistAndReloadByteIdentical)
{
    std::string dir = testDir("memo");
    const std::string payload =
        "{\"metrics\": {\"speed_khz\": 4683.8407494145204},"
        "\"quote\": \"a\\\"b\"}";
    {
        ResultCache cache(16, dir);
        cache.put("key-1", payload);
        cache.put("key-2", "{}");
        EXPECT_EQ(cache.persist(), 2u);
    }
    ResultCache fresh(16, dir);
    EXPECT_EQ(fresh.load(), 2u);
    std::string out;
    ASSERT_TRUE(fresh.get("key-1", out));
    EXPECT_EQ(out, payload);
    EXPECT_EQ(fresh.stats().dropped, 0u);
}

TEST(ServeResultCache, CorruptEntryDroppedNotServed)
{
    std::string dir = testDir("crc");
    {
        ResultCache cache(16, dir);
        cache.put("good", "{\"v\": 1}");
        cache.put("bad", "{\"v\": 2}");
        ASSERT_EQ(cache.persist(), 2u);
    }
    // Flip one byte inside the manifest's payload for "bad": CRC
    // must catch it and load() must drop that entry only.
    std::string path;
    {
        ResultCache probe(16, dir);
        path = probe.manifestPath();
    }
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::string doc;
    {
        char buf[4096];
        size_t n;
        while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
            doc.append(buf, n);
    }
    size_t at = doc.find("\\\"v\\\": 2");
    ASSERT_NE(at, std::string::npos);
    doc[at + 7] = '3';
    std::rewind(f);
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);

    ResultCache fresh(16, dir);
    EXPECT_EQ(fresh.load(), 1u);
    std::string out;
    EXPECT_TRUE(fresh.get("good", out));
    EXPECT_FALSE(fresh.get("bad", out));
    EXPECT_EQ(fresh.stats().dropped, 1u);
}

// ---------------------------------------------------------------
// Server end to end (unix socket, in-process daemon)
// ---------------------------------------------------------------

/** Short socket paths: sun_path caps at ~107 bytes, so use /tmp
 *  directly rather than the (long) gtest temp dir. */
std::string
sockPath(const char *leaf)
{
    return "/tmp/ash-serve-test-" + std::to_string(::getpid()) + "-" +
           leaf + ".sock";
}

/** One request/response round trip on its own connection. */
std::string
ask(const std::string &socket, const SimRequest &req)
{
    std::string err;
    int fd = net::connectUnix(socket, &err);
    EXPECT_GE(fd, 0) << err;
    if (fd < 0)
        return "";
    EXPECT_TRUE(net::writeAll(fd, serializeRequest(req) + "\n"));
    net::LineReader reader(fd);
    std::string envelope;
    EXPECT_EQ(reader.readLine(envelope, nullptr, 120000), 1);
    ::close(fd);
    return envelope;
}

SimRequest
tinySim(const char *client, uint64_t cycles = 8, uint32_t tiles = 4)
{
    SimRequest req;
    req.client = client;
    req.design = "ntt";
    req.engine = "sash";
    req.tiles = tiles;
    req.cycles = cycles;
    return req;
}

TEST(ServeServer, ColdThenMemoByteIdentical)
{
    ServerOptions opts;
    opts.socketPath = sockPath("memo");
    Server server(opts);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    std::string e1 = ask(opts.socketPath, tinySim("t"));
    std::string e2 = ask(opts.socketPath, tinySim("t"));
    EXPECT_EQ(extractCacheClass(e1), "cold");
    EXPECT_EQ(extractCacheClass(e2), "memo");

    std::string r1, r2;
    ASSERT_TRUE(extractResult(e1, r1));
    ASSERT_TRUE(extractResult(e2, r2));
    EXPECT_EQ(r1, r2);   // the memo contract, to the byte

    // nocache forces execution on the hot program: "warm", same
    // bytes again.
    SimRequest forced = tinySim("t");
    forced.nocache = true;
    std::string e3 = ask(opts.socketPath, forced);
    EXPECT_EQ(extractCacheClass(e3), "warm");
    std::string r3;
    ASSERT_TRUE(extractResult(e3, r3));
    EXPECT_EQ(r1, r3);

    server.stop();
}

TEST(ServeServer, StatsAndPingOps)
{
    ServerOptions opts;
    opts.socketPath = sockPath("stats");
    Server server(opts);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    SimRequest ping;
    ping.op = "ping";
    std::string pong = ask(opts.socketPath, ping);
    EXPECT_EQ(pong.rfind("{\"ok\": true", 0), 0u);

    ask(opts.socketPath, tinySim("s"));
    ask(opts.socketPath, tinySim("s"));

    SimRequest stats;
    stats.op = "stats";
    std::string env = ask(opts.socketPath, stats);
    EXPECT_EQ(env.rfind("{\"ok\": true", 0), 0u);
    EXPECT_NE(env.find("\"result_cache\""), std::string::npos);
    EXPECT_NE(env.find("\"design_cache\""), std::string::npos);
    EXPECT_NE(env.find("\"queue\""), std::string::npos);
    EXPECT_NE(env.find("\"clients\""), std::string::npos);

    server.stop();
}

TEST(ServeServer, RestartServesMemoFromDisk)
{
    ServerOptions opts;
    opts.socketPath = sockPath("restart");
    opts.stateDir = testDir("restart_state");

    std::string coldBytes;
    {
        Server server(opts);
        std::string err;
        ASSERT_TRUE(server.start(&err)) << err;
        std::string env = ask(opts.socketPath, tinySim("r"));
        EXPECT_EQ(extractCacheClass(env), "cold");
        ASSERT_TRUE(extractResult(env, coldBytes));
        server.stop();   // persists the result manifest
    }
    {
        Server server(opts);
        std::string err;
        ASSERT_TRUE(server.start(&err)) << err;
        std::string env = ask(opts.socketPath, tinySim("r"));
        // Same fingerprint+config across a restart: a memo hit with
        // byte-identical result bytes, without running anything.
        EXPECT_EQ(extractCacheClass(env), "memo");
        std::string bytes;
        ASSERT_TRUE(extractResult(env, bytes));
        EXPECT_EQ(bytes, coldBytes);
        server.stop();
    }
}

TEST(ServeServer, UnknownDesignIsStructuredError)
{
    ServerOptions opts;
    opts.socketPath = sockPath("baddesign");
    Server server(opts);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    SimRequest req = tinySim("x");
    req.design = "no_such_design";
    std::string env = ask(opts.socketPath, req);
    EXPECT_EQ(env.rfind("{\"ok\": false", 0), 0u);
    EXPECT_NE(env.find("unknown_design"), std::string::npos);

    // The daemon keeps serving after the error.
    std::string good = ask(opts.socketPath, tinySim("x"));
    EXPECT_EQ(good.rfind("{\"ok\": true", 0), 0u);
    server.stop();
}

TEST(ServeServer, FaultPlanHitsOnlyTargetTenant)
{
    // Arm a plan that kills every job of the "faulty" tenant; the
    // serve job key embeds the client name, so the scope match
    // cannot touch anyone else.
    guard::FaultPlan plan;
    std::string perr;
    ASSERT_TRUE(
        guard::FaultPlan::parse("job.body@serve/faulty/:error", plan,
                                &perr))
        << perr;
    guard::FaultInjector::instance().arm(plan);

    ServerOptions opts;
    opts.socketPath = sockPath("fault");
    Server server(opts);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    SimRequest doomed = tinySim("faulty");
    doomed.nocache = true;   // memo would dodge the fault site
    std::string bad = ask(opts.socketPath, doomed);
    EXPECT_EQ(bad.rfind("{\"ok\": false", 0), 0u);
    EXPECT_NE(bad.find("\"fault\""), std::string::npos);

    // An innocent tenant with the same config is untouched, and the
    // daemon keeps serving.
    std::string good = ask(opts.socketPath, tinySim("innocent"));
    EXPECT_EQ(good.rfind("{\"ok\": true", 0), 0u);

    server.stop();
    guard::FaultInjector::instance().disarm();
}

TEST(ServeServer, DrainAnswersEveryAdmittedRequest)
{
    ServerOptions opts;
    opts.socketPath = sockPath("drain");
    opts.workers = 1;   // force queuing
    Server server(opts);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    // Several distinct configs (nothing memoized) from separate
    // connections, then a stop request racing the queue.
    constexpr int kN = 4;
    std::vector<std::thread> threads;
    std::vector<std::string> envs(kN);
    for (int i = 0; i < kN; ++i)
        threads.emplace_back([&, i] {
            SimRequest req = tinySim("drain");
            req.cycles = 8 + static_cast<uint64_t>(i);
            envs[static_cast<size_t>(i)] =
                ask(opts.socketPath, req);
        });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    server.requestStop();
    for (std::thread &t : threads)
        t.join();
    server.stop();

    // Graceful drain contract: everything admitted was ANSWERED —
    // each thread got either a success or a structured
    // shutting_down rejection, never a dropped connection.
    for (const std::string &env : envs) {
        ASSERT_FALSE(env.empty());
        bool ok = env.rfind("{\"ok\": true", 0) == 0;
        bool rejected =
            env.find("shutting_down") != std::string::npos;
        EXPECT_TRUE(ok || rejected) << env;
    }
}

// ---------------------------------------------------------------
// Two-process shared state directory: the atomic-manifest contract
// ---------------------------------------------------------------

TEST(ServeSharedState, ConcurrentPersistNeverTearsManifest)
{
    std::string dir = testDir("shared");

    // Two writer processes hammer persist() into ONE directory with
    // different entry sets while the parent loads concurrently.
    // unique tmp names + atomic rename mean every load() must see a
    // complete, CRC-clean manifest from one writer or the other —
    // never a torn mix.
    auto writer = [&dir](const char *tag) -> pid_t {
        pid_t pid = ::fork();
        if (pid != 0)
            return pid;
        ResultCache cache(64, dir);
        for (int i = 0; i < 40; ++i) {
            cache.put(std::string(tag) + "-" + std::to_string(i),
                      "{\"writer\": \"" + std::string(tag) +
                          "\",\"i\": " + std::to_string(i) + "}");
            if (cache.persist() == 0)
                ::_exit(3);   // any write failure fails the test
        }
        ::_exit(0);
    };

    pid_t a = writer("a");
    ASSERT_GT(a, 0);
    pid_t b = writer("b");
    ASSERT_GT(b, 0);

    int cleanLoads = 0;
    for (int i = 0; i < 60; ++i) {
        ResultCache reader(4096, dir);
        size_t n = reader.load();
        // A missing manifest (before the first persist) loads 0;
        // once anything loads, it must be complete and CRC-clean.
        if (n > 0)
            ++cleanLoads;
        EXPECT_EQ(reader.stats().dropped, 0u)
            << "torn manifest observed on load " << i;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }

    int status = 0;
    ASSERT_EQ(::waitpid(a, &status, 0), a);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    ASSERT_EQ(::waitpid(b, &status, 0), b);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    EXPECT_GT(cleanLoads, 0);

    // The survivor is one writer's complete final manifest.
    ResultCache last(4096, dir);
    EXPECT_EQ(last.load(), 40u);
    EXPECT_EQ(last.stats().dropped, 0u);
}

// ---------------------------------------------------------------
// Pool mode: crash containment, quarantine, shedding (end to end)
// ---------------------------------------------------------------

TEST(ServePool, WorkerCrashIsContainedAndMemoSurvives)
{
    // Kill the worker on every request from the "victim" tenant; the
    // daemon must convert each death into a structured worker_crash
    // while other tenants' results stay byte-identical. Armed BEFORE
    // start() so the forked workers inherit the plan.
    guard::FaultPlan plan;
    std::string perr;
    ASSERT_TRUE(guard::FaultPlan::parse(
        "pool.worker.kill@serve/victim/:kill", plan, &perr))
        << perr;
    guard::FaultInjector::instance().arm(plan);

    ServerOptions opts;
    opts.socketPath = sockPath("poolcrash");
    opts.pool = true;
    opts.workers = 1;
    Server server(opts);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    // Establish the fault-free oracle bytes and memoize them.
    std::string e1 = ask(opts.socketPath, tinySim("healthy"));
    EXPECT_EQ(extractCacheClass(e1), "cold");
    std::string oracle;
    ASSERT_TRUE(extractResult(e1, oracle));

    // The victim's request dies in the worker, not the daemon.
    SimRequest doomed = tinySim("victim");
    doomed.nocache = true;   // the memo fast path never hits the pool
    std::string bad = ask(opts.socketPath, doomed);
    EXPECT_EQ(bad.rfind("{\"ok\": false", 0), 0u);
    EXPECT_NE(bad.find("worker_crash"), std::string::npos) << bad;

    // The slot respawned: the healthy tenant executes again (nocache
    // forces a real run on the fresh worker) with identical bytes.
    SimRequest rerun = tinySim("healthy");
    rerun.nocache = true;
    std::string e2 = ask(opts.socketPath, rerun);
    EXPECT_EQ(e2.rfind("{\"ok\": true", 0), 0u) << e2;
    std::string rerunBytes;
    ASSERT_TRUE(extractResult(e2, rerunBytes));
    EXPECT_EQ(rerunBytes, oracle);

    // And the memo entry published before the crash is untouched.
    std::string e3 = ask(opts.socketPath, tinySim("healthy"));
    EXPECT_EQ(extractCacheClass(e3), "memo");
    std::string memoBytes;
    ASSERT_TRUE(extractResult(e3, memoBytes));
    EXPECT_EQ(memoBytes, oracle);

    // /stats surfaces the supervision counters.
    SimRequest stats;
    stats.op = "stats";
    std::string env = ask(opts.socketPath, stats);
    EXPECT_NE(env.find("\"pool\""), std::string::npos);
    EXPECT_NE(env.find("\"crashes\""), std::string::npos);
    EXPECT_NE(env.find("\"restarts\""), std::string::npos);

    server.stop();
    guard::FaultInjector::instance().disarm();
}

TEST(ServePool, CrashLoopTripsBreakerAndProbeRecovers)
{
    // The "looper" tenant's design crash-loops its worker. After K
    // crashes the design's breaker opens: fail-fast circuit_open, no
    // respawn burned, while a different design keeps its fast path.
    guard::FaultPlan plan;
    std::string perr;
    ASSERT_TRUE(guard::FaultPlan::parse(
        "pool.worker.kill@serve/looper/:kill", plan, &perr))
        << perr;
    guard::FaultInjector::instance().arm(plan);

    ServerOptions opts;
    opts.socketPath = sockPath("poolloop");
    opts.pool = true;
    opts.workers = 1;
    opts.breaker.threshold = 2;
    opts.breaker.windowMs = 60000;
    opts.breaker.cooldownMs = 300;
    Server server(opts);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    // The breaker keys on the design fingerprint, so the looper must
    // poison a design of its own, distinct from healthy traffic.
    SimRequest doomed = tinySim("looper");
    doomed.design = "chronos_pe";
    doomed.nocache = true;

    std::string c1 = ask(opts.socketPath, doomed);
    EXPECT_NE(c1.find("worker_crash"), std::string::npos) << c1;
    std::string c2 = ask(opts.socketPath, doomed);
    EXPECT_NE(c2.find("worker_crash"), std::string::npos) << c2;

    // Threshold reached: quarantined, instantly.
    std::string c3 = ask(opts.socketPath, doomed);
    EXPECT_NE(c3.find("circuit_open"), std::string::npos) << c3;

    // Cure the design BEFORE any further traffic: respawned workers
    // fork from the parent's current injector state, so the next
    // spawned worker is clean. (Disarming later would let a healthy
    // request respawn a worker that still carries the armed plan.)
    guard::FaultInjector::instance().disarm();

    // Other designs are untouched by the quarantine: the looper's
    // breaker is still open while the bystander runs.
    std::string good = ask(opts.socketPath, tinySim("bystander"));
    EXPECT_EQ(good.rfind("{\"ok\": true", 0), 0u) << good;

    // Wait out the cooldown; the half-open probe closes the breaker.
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    std::string probe = ask(opts.socketPath, doomed);
    EXPECT_EQ(probe.rfind("{\"ok\": true", 0), 0u) << probe;
    std::string again = ask(opts.socketPath, doomed);
    EXPECT_EQ(again.rfind("{\"ok\": true", 0), 0u) << again;

    server.stop();
}

TEST(ServePool, QueueWaitBudgetShedsInsteadOfServingLate)
{
    ServerOptions opts;
    opts.socketPath = sockPath("poolshed");
    opts.pool = true;
    opts.workers = 1;
    // A budget of zero milliseconds is already spent by the time any
    // request reaches the worker thread: everything pool-bound sheds
    // with a structured "overloaded", and the memo fast path (which
    // never queues) keeps working.
    opts.queueWaitBudgetMs = 0;
    Server server(opts);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    SimRequest req = tinySim("shed");
    std::string env = ask(opts.socketPath, req);
    // queueWaitBudgetMs = 0 means "no budget" (disabled) — the
    // request must succeed...
    EXPECT_EQ(env.rfind("{\"ok\": true", 0), 0u) << env;
    server.stop();

    // ...whereas a 1 ms budget with a worker pinned by a slow first
    // request sheds the request stuck behind it.
    ServerOptions tight = opts;
    tight.socketPath = sockPath("poolshed2");
    tight.queueWaitBudgetMs = 1;
    Server server2(tight);
    ASSERT_TRUE(server2.start(&err)) << err;

    std::vector<std::string> envs(3);
    std::vector<std::thread> threads;
    for (int i = 0; i < 3; ++i)
        threads.emplace_back([&, i] {
            SimRequest r = tinySim("shed");
            r.cycles = 4096 + static_cast<uint64_t>(i);
            r.nocache = true;
            envs[static_cast<size_t>(i)] =
                ask(tight.socketPath, r);
        });
    for (std::thread &t : threads)
        t.join();

    int okCount = 0, shedCount = 0;
    for (const std::string &e : envs) {
        if (e.rfind("{\"ok\": true", 0) == 0)
            ++okCount;
        else if (e.find("overloaded") != std::string::npos)
            ++shedCount;
    }
    // With one worker and a 1 ms wait budget, at least one of the
    // three racing requests had to queue past its budget; every
    // outcome is a structured answer either way.
    EXPECT_EQ(okCount + shedCount, 3) << envs[0] << envs[1] << envs[2];
    EXPECT_GE(shedCount, 1);
    server2.stop();
}

TEST(ServePool, DeadlineExceededBeforeWorkerIsStructured)
{
    ServerOptions opts;
    opts.socketPath = sockPath("pooldeadline");
    opts.pool = true;
    opts.workers = 1;
    Server server(opts);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    // Pin the worker with a big job, then send a request whose
    // deadline expires while it queues: the daemon must shed it with
    // deadline_exceeded before wasting a worker lease on it.
    std::thread pin([&] {
        SimRequest big = tinySim("pin");
        big.cycles = 8192;   // ~seconds of sim: pins the sole worker
        big.nocache = true;
        ask(opts.socketPath, big);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));

    SimRequest hurried = tinySim("hurried");
    hurried.cycles = 16;
    hurried.nocache = true;
    hurried.deadlineMs = 1;
    std::string env = ask(opts.socketPath, hurried);
    pin.join();
    EXPECT_EQ(env.rfind("{\"ok\": false", 0), 0u) << env;
    EXPECT_NE(env.find("deadline_exceeded"), std::string::npos)
        << env;
    server.stop();
}

} // namespace
} // namespace ash::serve
