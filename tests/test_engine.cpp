/**
 * @file
 * End-to-end equivalence tests: the DASH and SASH chip models must
 * produce bit-exact committed outputs versus the reference simulator
 * across configurations, feature switches, and all four benchmark
 * designs. These are the backbone tests of the reproduction.
 */

#include <gtest/gtest.h>

#include "core/arch/AshSim.h"
#include "core/compiler/Compiler.h"
#include "designs/Designs.h"
#include "tests/TestUtil.h"
#include "verilog/Compile.h"

namespace ash::core {
namespace {

using test::FnStimulus;
using test::expectEquivalent;

struct EngineCase
{
    bool selective;
    uint32_t tiles;
    uint32_t maxTaskCost;
    uint64_t seed;
};

class MixedEquivalence : public ::testing::TestWithParam<EngineCase>
{
};

TEST_P(MixedEquivalence, MatchesReference)
{
    const EngineCase &tc = GetParam();
    rtl::Netlist nl =
        verilog::compileVerilog(test::mixedFixture(), "top");
    CompilerOptions copts;
    copts.numTiles = tc.tiles;
    copts.maxTaskCost = tc.maxTaskCost;
    ArchConfig acfg;
    acfg.numTiles = tc.tiles;
    acfg.coresPerTile = 2;
    acfg.selective = tc.selective;
    FnStimulus ref_stim(test::mixedStimulus(tc.seed));
    FnStimulus ash_stim(test::mixedStimulus(tc.seed));
    expectEquivalent(nl, ref_stim, ash_stim, 50, copts, acfg);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MixedEquivalence,
    ::testing::Values(
        EngineCase{false, 1, 8, 1}, EngineCase{false, 4, 8, 1},
        EngineCase{false, 16, 8, 1}, EngineCase{false, 4, 2, 2},
        EngineCase{false, 4, 64, 3}, EngineCase{true, 1, 8, 1},
        EngineCase{true, 4, 8, 1}, EngineCase{true, 16, 8, 1},
        EngineCase{true, 4, 2, 2}, EngineCase{true, 4, 64, 3},
        EngineCase{true, 8, 16, 4}, EngineCase{false, 8, 16, 4}));

TEST(Engine, UnorderedDataflowMatchesReference)
{
    rtl::Netlist nl =
        verilog::compileVerilog(test::mixedFixture(), "top");
    CompilerOptions copts;
    copts.numTiles = 4;
    ArchConfig acfg;
    acfg.numTiles = 4;
    acfg.prioritized = false;   // Fig 15 configuration.
    FnStimulus a(test::mixedStimulus(5)), b(test::mixedStimulus(5));
    expectEquivalent(nl, a, b, 40, copts, acfg);
}

TEST(Engine, NoPrefetchStillCorrectAndSlower)
{
    rtl::Netlist nl =
        verilog::compileVerilog(test::mixedFixture(), "top");
    CompilerOptions copts;
    copts.numTiles = 2;
    ArchConfig fast;
    fast.numTiles = 2;
    ArchConfig slow = fast;
    slow.prefetch = false;
    FnStimulus a(test::mixedStimulus(6)), b(test::mixedStimulus(6));
    auto with = expectEquivalent(nl, a, b, 40, copts, fast);
    FnStimulus c(test::mixedStimulus(6)), d(test::mixedStimulus(6));
    auto without = expectEquivalent(nl, c, d, 40, copts, slow);
    EXPECT_LE(with.chipCycles, without.chipCycles);
}

TEST(Engine, SoftwareDataflowCorrectAndSlower)
{
    rtl::Netlist nl =
        verilog::compileVerilog(test::mixedFixture(), "top");
    CompilerOptions copts;
    copts.numTiles = 4;
    ArchConfig hw;
    hw.numTiles = 4;
    ArchConfig sw = hw;
    sw.hwDataflow = false;   // Swarm/Chronos-like (Fig 19).
    FnStimulus a(test::mixedStimulus(7)), b(test::mixedStimulus(7));
    auto hw_res = expectEquivalent(nl, a, b, 40, copts, hw);
    FnStimulus c(test::mixedStimulus(7)), d(test::mixedStimulus(7));
    auto sw_res = expectEquivalent(nl, c, d, 40, copts, sw);
    EXPECT_LT(hw_res.chipCycles, sw_res.chipCycles);
}

TEST(Engine, SharedLlcMatchesReference)
{
    rtl::Netlist nl =
        verilog::compileVerilog(test::mixedFixture(), "top");
    CompilerOptions copts;
    copts.numTiles = 4;
    ArchConfig acfg;
    acfg.numTiles = 4;
    acfg.sharedLlc = true;
    FnStimulus a(test::mixedStimulus(8)), b(test::mixedStimulus(8));
    expectEquivalent(nl, a, b, 40, copts, acfg);
}

TEST(Engine, TinyQueuesExerciseSpillsCorrectly)
{
    rtl::Netlist nl =
        verilog::compileVerilog(test::mixedFixture(), "top");
    CompilerOptions copts;
    copts.numTiles = 2;
    copts.maxTaskCost = 2;
    ArchConfig acfg;
    acfg.numTiles = 2;
    acfg.aqEntries = 8;      // Force AQ spilling.
    acfg.tcqEntries = 16;    // Force TCQ-full stalls.
    acfg.selective = true;
    FnStimulus a(test::mixedStimulus(9)), b(test::mixedStimulus(9));
    auto res = expectEquivalent(nl, a, b, 50, copts, acfg);
    EXPECT_GT(res.stats.get("aqSpills"), 0u);
}

TEST(Engine, SmallMergeWindowCorrect)
{
    rtl::Netlist nl =
        verilog::compileVerilog(test::mixedFixture(), "top");
    CompilerOptions copts;
    copts.numTiles = 2;
    copts.maxTaskCost = 2;
    ArchConfig acfg;
    acfg.numTiles = 2;
    acfg.mergeEntries = 2;
    FnStimulus a(test::mixedStimulus(10)), b(test::mixedStimulus(10));
    expectEquivalent(nl, a, b, 40, copts, acfg);
}

TEST(Engine, MoreCoresNotSlower)
{
    designs::Design d = designs::makeNtt(16);
    rtl::Netlist nl = designs::compileDesign(d);
    uint64_t prev = ~0ull;
    for (uint32_t tiles : {1u, 4u, 16u}) {
        CompilerOptions copts;
        copts.numTiles = tiles;
        ArchConfig acfg;
        acfg.numTiles = tiles;
        auto ref_stim = d.makeStimulus();
        auto ash_stim = d.makeStimulus();
        auto res = expectEquivalent(nl, *ref_stim, *ash_stim, 30,
                                    copts, acfg);
        EXPECT_LT(res.chipCycles, prev * 12 / 10)
            << tiles << " tiles regressed";
        prev = res.chipCycles;
    }
}

TEST(Engine, SelectiveExecutesFewerTasks)
{
    designs::Design d = designs::makeVortex(6, 2);
    rtl::Netlist nl = designs::compileDesign(d);
    CompilerOptions copts;
    copts.numTiles = 8;
    ArchConfig dash;
    dash.numTiles = 8;
    ArchConfig sash = dash;
    sash.selective = true;
    auto s1 = d.makeStimulus();
    auto s2 = d.makeStimulus();
    auto dash_res = expectEquivalent(nl, *s1, *s2, 40, copts, dash);
    auto s3 = d.makeStimulus();
    auto s4 = d.makeStimulus();
    auto sash_res = expectEquivalent(nl, *s3, *s4, 40, copts, sash);
    EXPECT_LT(sash_res.stats.get("tasksCommitted"),
              dash_res.stats.get("tasksCommitted") / 2);
}

struct DesignCase
{
    int design;
    bool selective;
    uint32_t tiles;
};

class DesignEquivalence : public ::testing::TestWithParam<DesignCase>
{
};

TEST_P(DesignEquivalence, MatchesReference)
{
    const DesignCase &tc = GetParam();
    designs::DesignScale scale;
    scale.nttPoints = 16;
    scale.pes = 9;
    scale.rvCores = 4;
    scale.warps = 4;
    scale.lanes = 2;
    auto all = designs::allDesigns(scale);
    const designs::Design &d = all[tc.design];
    rtl::Netlist nl = designs::compileDesign(d);
    CompilerOptions copts;
    copts.numTiles = tc.tiles;
    ArchConfig acfg;
    acfg.numTiles = tc.tiles;
    acfg.selective = tc.selective;
    auto ref_stim = d.makeStimulus();
    auto ash_stim = d.makeStimulus();
    expectEquivalent(nl, *ref_stim, *ash_stim, 40, copts, acfg);
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, DesignEquivalence,
    ::testing::Values(
        DesignCase{0, false, 4}, DesignCase{0, true, 4},
        DesignCase{1, false, 4}, DesignCase{1, true, 4},
        DesignCase{2, false, 4}, DesignCase{2, true, 4},
        DesignCase{3, false, 4}, DesignCase{3, true, 4},
        DesignCase{0, true, 16}, DesignCase{1, true, 16},
        DesignCase{2, true, 16}, DesignCase{3, true, 16},
        DesignCase{0, false, 1}, DesignCase{3, true, 1}));

TEST(Engine, SingleCycleGraphMatchesReference)
{
    rtl::Netlist nl =
        verilog::compileVerilog(test::mixedFixture(), "top");
    CompilerOptions copts;
    copts.numTiles = 4;
    copts.unrolled = false;   // Fig 18's pre-unroll configuration.
    ArchConfig acfg;
    acfg.numTiles = 4;
    FnStimulus a(test::mixedStimulus(11)), b(test::mixedStimulus(11));
    expectEquivalent(nl, a, b, 40, copts, acfg);
}

TEST(Engine, StatsBreakdownConsistent)
{
    rtl::Netlist nl =
        verilog::compileVerilog(test::mixedFixture(), "top");
    CompilerOptions copts;
    copts.numTiles = 4;
    ArchConfig acfg;
    acfg.numTiles = 4;
    acfg.selective = true;
    FnStimulus a(test::mixedStimulus(12)), b(test::mixedStimulus(12));
    auto res = expectEquivalent(nl, a, b, 40, copts, acfg);
    uint64_t total =
        res.chipCycles * acfg.numTiles * acfg.coresPerTile;
    EXPECT_EQ(res.stats.get("coreCyclesCommitted") +
                  res.stats.get("coreCyclesAborted") +
                  res.stats.get("coreCyclesIdle"),
              total);
    EXPECT_GT(res.stats.get("tasksCommitted"), 0u);
    EXPECT_GT(res.stats.get("descsSent"), 0u);
}

} // namespace
} // namespace ash::core
