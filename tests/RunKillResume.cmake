# ctest driver: the crash-resume contract, end to end. Run a sweep
# bench uninterrupted to get the golden stats JSON, run it again with
# checkpointing and ASH_CKPT_DIE_AFTER so the process _exit(42)s
# mid-run (the portable SIGKILL stand-in), then run a third time with
# --resume and require the resumed stats JSON and stdout to be
# byte-identical to the uninterrupted run's.
# Invoked as:
#   cmake -DBENCH=<binary> -DWORKDIR=<dir> -P RunKillResume.cmake

file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")

set(json "${WORKDIR}/stats.json")
set(ckpt "${WORKDIR}/ckpt")

# 1. Uninterrupted golden run.
execute_process(COMMAND "${BENCH}" --jobs 4 --stats-json "${json}"
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE out_golden
                ERROR_VARIABLE err_golden)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "golden run exited with ${rc}:\n${err_golden}")
endif()
file(RENAME "${json}" "${WORKDIR}/stats_golden.json")
file(WRITE "${WORKDIR}/stdout_golden.txt" "${out_golden}")

# 2. Checkpointed run, killed after the 6th snapshot image write.
execute_process(COMMAND ${CMAKE_COMMAND} -E env ASH_CKPT_DIE_AFTER=6
                        "${BENCH}" --jobs 4 --checkpoint-every 5
                        --checkpoint-dir "${ckpt}"
                        --stats-json "${json}"
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE out_killed
                ERROR_VARIABLE err_killed)
if(NOT rc EQUAL 42)
    message(FATAL_ERROR "crash-injected run exited with ${rc} "
                        "(wanted 42):\n${err_killed}")
endif()
if(NOT EXISTS "${ckpt}")
    message(FATAL_ERROR "killed run left no checkpoint dir ${ckpt}")
endif()

# 3. Resume and finish.
execute_process(COMMAND "${BENCH}" --jobs 4 --resume "${ckpt}"
                        --stats-json "${json}"
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE out_resumed
                ERROR_VARIABLE err_resumed)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "resumed run exited with ${rc}:\n${err_resumed}")
endif()
file(RENAME "${json}" "${WORKDIR}/stats_resumed.json")
file(WRITE "${WORKDIR}/stdout_resumed.txt" "${out_resumed}")

# The resumed run must NOT have started from scratch.
if(NOT err_resumed MATCHES "resume" AND NOT out_resumed MATCHES "resume")
    message(FATAL_ERROR "resumed run shows no sign of resuming "
                        "(no 'resume' in its output)")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        "${WORKDIR}/stats_golden.json"
                        "${WORKDIR}/stats_resumed.json"
                RESULT_VARIABLE json_rc)
if(NOT json_rc EQUAL 0)
    message(FATAL_ERROR "stats JSON differs between uninterrupted and "
                        "resumed runs (${WORKDIR}/stats_{golden,resumed}.json)")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        "${WORKDIR}/stdout_golden.txt"
                        "${WORKDIR}/stdout_resumed.txt"
                RESULT_VARIABLE stdout_rc)
if(NOT stdout_rc EQUAL 0)
    message(FATAL_ERROR "stdout differs between uninterrupted and "
                        "resumed runs (${WORKDIR}/stdout_{golden,resumed}.txt)")
endif()
