/** @file Tests for lane-batched execution (src/lanes). */

#include <gtest/gtest.h>

#include <sstream>

#include "ckpt/Snapshot.h"
#include "designs/Designs.h"
#include "lanes/LaneBatchEngine.h"
#include "lanes/ScenarioGen.h"
#include "refsim/ReferenceSimulator.h"
#include "tests/TestUtil.h"
#include "verilog/Compile.h"

namespace ash::lanes {
namespace {

std::vector<designs::Design>
testDesigns()
{
    designs::DesignScale scale;
    scale.nttPoints = 16;
    scale.pes = 9;
    scale.rvCores = 4;
    scale.warps = 4;
    scale.lanes = 2;
    return designs::allDesigns(scale);
}

/** Per-lane scenario bundle for a W-wide batch. */
LaneStimulus
sweepStimulus(const rtl::Netlist &nl, uint64_t seed, uint32_t w)
{
    std::vector<refsim::StimulusPtr> lanes;
    for (const ScenarioSpec &spec : scenarioSweep(seed, w))
        lanes.push_back(makeScenario(nl, spec));
    return LaneStimulus(std::move(lanes));
}

// ---------------------------------------------------------------------
// ScenarioGen
// ---------------------------------------------------------------------

TEST(ScenarioGen, PureFunctionOfCycle)
{
    rtl::Netlist nl;
    nl.addInput("a", 16);
    nl.addInput("b", 5);
    ScenarioSpec spec;
    spec.kind = ScenarioKind::Random;
    spec.seed = 99;
    refsim::StimulusPtr s1 = makeScenario(nl, spec);
    refsim::StimulusPtr s2 = makeScenario(nl, spec);
    std::vector<uint64_t> in1(2), in2(2);
    // Same cycle queried out of order and repeatedly: same values.
    for (uint64_t cycle : {7u, 3u, 7u, 0u, 7u}) {
        std::fill(in1.begin(), in1.end(), 0);
        std::fill(in2.begin(), in2.end(), 0);
        s1->apply(cycle, in1);
        s2->apply(cycle, in2);
        EXPECT_EQ(in1, in2) << "cycle " << cycle;
        EXPECT_LE(in1[1], 31u) << "input width respected";
    }
}

TEST(ScenarioGen, KindsShapeTheStream)
{
    rtl::Netlist nl;
    nl.addInput("x", 32);
    std::vector<uint64_t> in(1);

    ScenarioSpec rst;
    rst.kind = ScenarioKind::ResetPulse;
    rst.resetCycles = 5;
    refsim::StimulusPtr s = makeScenario(nl, rst);
    for (uint64_t c = 0; c < 5; ++c) {
        in[0] = 123;
        in[0] = 0;
        s->apply(c, in);
        EXPECT_EQ(in[0], 0u) << "held in reset at cycle " << c;
    }
    s->apply(5, in);
    EXPECT_NE(in[0], 0u);

    ScenarioSpec gate;
    gate.kind = ScenarioKind::ClockGate;
    gate.period = 4;
    gate.duty = 2;
    s = makeScenario(nl, gate);
    for (uint64_t c = 0; c < 12; ++c) {
        in[0] = 0;
        s->apply(c, in);
        if (c % 4 < 2)
            EXPECT_NE(in[0], 0u) << "enabled slice at cycle " << c;
        else
            EXPECT_EQ(in[0], 0u) << "gated slice at cycle " << c;
    }

    ScenarioSpec hold;
    hold.kind = ScenarioKind::ActivitySweep;
    hold.holdCycles = 8;
    s = makeScenario(nl, hold);
    uint64_t first = 0;
    s->apply(0, in);
    first = in[0];
    for (uint64_t c = 1; c < 8; ++c) {
        in[0] = 0;
        s->apply(c, in);
        EXPECT_EQ(in[0], first) << "held block at cycle " << c;
    }
    s->apply(8, in);
    EXPECT_NE(in[0], first);
}

TEST(ScenarioGen, SweepIsPrefixStable)
{
    auto wide = scenarioSweep(17, 64);
    auto narrow = scenarioSweep(17, 9);
    ASSERT_EQ(wide.size(), 64u);
    for (size_t i = 0; i < narrow.size(); ++i) {
        EXPECT_EQ(narrow[i].kind, wide[i].kind);
        EXPECT_EQ(narrow[i].seed, wide[i].seed);
        EXPECT_EQ(narrow[i].name(), wide[i].name());
    }
    // Distinct seeds produce distinct programs.
    EXPECT_NE(scenarioSweep(18, 9)[0].seed, narrow[0].seed);
}

TEST(ScenarioGen, LaneStimulusForwardsLaneZero)
{
    rtl::Netlist nl;
    nl.addInput("x", 24);
    auto specs = scenarioSweep(5, 3);
    std::vector<refsim::StimulusPtr> lanes;
    for (const ScenarioSpec &spec : specs)
        lanes.push_back(makeScenario(nl, spec));
    LaneStimulus bundle(lanes);
    std::vector<uint64_t> a(1, 0), b(1, 0);
    bundle.apply(11, a);
    lanes[0]->apply(11, b);
    EXPECT_EQ(a, b);
    bundle.applyLane(2, 11, a);
    lanes[2]->apply(11, b);
    EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------
// Lane parity: every design x W in {1, 3, 64, 65}
// ---------------------------------------------------------------------

struct ParityCase
{
    int design;
    uint32_t lanes;
};

class LaneParity : public ::testing::TestWithParam<ParityCase>
{
};

TEST_P(LaneParity, EveryLaneMatchesSoloRefsim)
{
    const ParityCase &tc = GetParam();
    auto all = testDesigns();
    const designs::Design &d = all[tc.design];
    rtl::Netlist nl = designs::compileDesign(d);
    const uint32_t w = tc.lanes;
    const uint64_t cycles = 24;

    auto specs = scenarioSweep(1234, w);
    LaneStimulus bundle = sweepStimulus(nl, 1234, w);
    LaneBatchEngine batch(nl, w);
    EXPECT_FALSE(batch.usesCompiledKernel());
    batch.run(bundle, cycles);

    for (uint32_t l = 0; l < w; ++l) {
        refsim::ReferenceSimulator solo(nl);
        refsim::StimulusPtr stim = makeScenario(nl, specs[l]);
        refsim::OutputTrace ref = solo.run(*stim, cycles);
        ASSERT_EQ(batch.laneTrace(l), ref)
            << d.name << " lane " << l << " of " << w;
        // Stats byte-identical: same names, values, recording order.
        EXPECT_EQ(batch.laneStats(l).toJson(),
                  solo.stats().toJson())
            << d.name << " lane " << l << " of " << w;
        // Same double accumulation order => exact equality.
        EXPECT_EQ(batch.laneActivityFactor(l), solo.activityFactor())
            << d.name << " lane " << l << " of " << w;
        EXPECT_EQ(batch.laneChanged(l), solo.changedLastCycle())
            << d.name << " lane " << l << " of " << w;
    }

    // The CycleEngine surface is the lane-0 view.
    EXPECT_EQ(batch.outputFrame(), batch.laneOutputFrame(0));
    EXPECT_EQ(batch.stats().toJson(), batch.laneStats(0).toJson());
    EXPECT_EQ(batch.cycle(), cycles);
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, LaneParity,
    ::testing::Values(
        ParityCase{0, 1}, ParityCase{0, 3}, ParityCase{0, 64},
        ParityCase{0, 65}, ParityCase{1, 1}, ParityCase{1, 3},
        ParityCase{1, 64}, ParityCase{1, 65}, ParityCase{2, 1},
        ParityCase{2, 3}, ParityCase{2, 64}, ParityCase{2, 65},
        ParityCase{3, 1}, ParityCase{3, 3}, ParityCase{3, 64},
        ParityCase{3, 65}),
    [](const ::testing::TestParamInfo<ParityCase> &info) {
        return "d" + std::to_string(info.param.design) + "_w" +
               std::to_string(info.param.lanes);
    });

// A broadcast (non-Lane) stimulus feeds every lane identically.
TEST(Lanes, BroadcastStimulusFillsAllLanes)
{
    auto all = testDesigns();
    rtl::Netlist nl = designs::compileDesign(all[0]);
    auto stim = all[0].makeStimulus();
    LaneBatchEngine batch(nl, 7);
    batch.run(*stim, 12);
    for (uint32_t l = 1; l < 7; ++l)
        EXPECT_EQ(batch.laneTrace(l), batch.laneTrace(0));
}

// ---------------------------------------------------------------------
// Checkpointing mid-batch
// ---------------------------------------------------------------------

TEST(Lanes, MidBatchSaveRestoreResumesByteIdentical)
{
    auto all = testDesigns();
    const designs::Design &d = all[1];
    rtl::Netlist nl = designs::compileDesign(d);
    const uint32_t w = 5;

    LaneStimulus bundle = sweepStimulus(nl, 77, w);
    LaneBatchEngine a(nl, w);
    a.run(bundle, 15);
    std::stringstream img;
    a.save(img);

    // Tail of the original run.
    a.run(bundle, 10);
    std::vector<refsim::OutputTrace> tail(w);
    std::vector<std::string> stats(w);
    for (uint32_t l = 0; l < w; ++l) {
        tail[l] = a.laneTrace(l);
        stats[l] = a.laneStats(l).toJson();
    }

    // Restored engine replays the identical tail, stats included.
    LaneBatchEngine b(nl, w);
    b.restore(img);
    EXPECT_EQ(b.cycle(), 15u);
    b.run(bundle, 10);
    for (uint32_t l = 0; l < w; ++l) {
        EXPECT_EQ(b.laneTrace(l), tail[l]) << "lane " << l;
        EXPECT_EQ(b.laneStats(l).toJson(), stats[l]) << "lane " << l;
        EXPECT_EQ(b.laneActivityFactor(l), a.laneActivityFactor(l));
    }

    // Width is the snapshot config hash: wrong-width restore fails
    // cleanly instead of mangling state.
    img.clear();
    img.seekg(0);
    LaneBatchEngine narrow(nl, w - 1);
    EXPECT_THROW(narrow.restore(img), ckpt::SnapshotError);
}

TEST(Lanes, ResetReturnsToTimeZero)
{
    auto all = testDesigns();
    rtl::Netlist nl = designs::compileDesign(all[2]);
    const uint32_t w = 3;
    LaneStimulus bundle = sweepStimulus(nl, 9, w);
    LaneBatchEngine eng(nl, w);
    refsim::OutputTrace first = eng.run(bundle, 10);
    std::string statsJson = eng.stats().toJson();
    eng.reset();
    EXPECT_EQ(eng.cycle(), 0u);
    refsim::OutputTrace again = eng.run(bundle, 10);
    EXPECT_EQ(again, first);
    EXPECT_EQ(eng.stats().toJson(), statsJson);
}

} // namespace
} // namespace ash::lanes
