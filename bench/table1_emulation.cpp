/**
 * @file
 * Table 1 reproduction: simulation vs FPGA emulation. Compile times
 * and simulation speeds for software simulation and SASH are measured
 * from this repository's pipeline; the 2-FPGA emulation row uses the
 * paper's reported numbers as an analytic model (documented
 * substitution — we have no FPGAs).
 */

#include <chrono>
#include <cstdio>

#include "BenchCommon.h"

using namespace ash;

namespace {

std::string
duration(double seconds)
{
    char buf[64];
    if (seconds < 120)
        std::snprintf(buf, sizeof(buf), "%.1f s", seconds);
    else if (seconds < 7200)
        std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60);
    else if (seconds < 2 * 86400)
        std::snprintf(buf, sizeof(buf), "%.1f hours",
                      seconds / 3600);
    else if (seconds < 2 * 86400 * 365.0)
        std::snprintf(buf, sizeof(buf), "%.1f days",
                      seconds / 86400);
    else
        std::snprintf(buf, sizeof(buf), "%.1f years",
                      seconds / (86400 * 365.0));
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    if (!bench::init("table1_emulation", argc, argv))
        return 1;
    bench::banner("Table 1: simulation vs FPGA emulation "
                  "(chronos_pe-like design)");

    auto &entry = bench::DesignSet::standard().entries()[1];

    // Measured compile time: frontend + backend.
    auto t0 = std::chrono::steady_clock::now();
    rtl::Netlist nl = designs::compileDesign(entry.design);
    core::TaskProgram prog = bench::compileFor(nl, 64);
    double compile_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    double sw_khz = baseline::runBaseline(
                        nl, baseline::simBaselineHost(1))
                        .speedKHz;
    core::ArchConfig sash_cfg;
    sash_cfg.selective = true;
    double sash_khz =
        bench::runAsh(prog, entry.design, sash_cfg).speedKHz();

    struct Row
    {
        const char *name;
        double compile_s;
        double khz;
    };
    // FPGA row: the paper's measured 2-FPGA setup (13 h compile,
    // 1.4 MHz), scaled as an analytic model.
    Row rows[] = {{"SW sim", compile_s, sw_khz},
                  {"SASH", compile_s, sash_khz},
                  {"FPGA x2", 13.0 * 3600, 1400.0}};

    TextTable table({"system", "compile", "sim speed", "1M cycles",
                     "1B cycles", "1T cycles"});
    for (const Row &r : rows) {
        auto total = [&](double cycles) {
            return duration(r.compile_s + cycles / (r.khz * 1e3));
        };
        table.addRow({r.name, duration(r.compile_s),
                      TextTable::num(r.khz, 1) + " KHz", total(1e6),
                      total(1e9), total(1e12)});
    }
    bench::record("compile_s", compile_s);
    bench::record("khz.sw_sim", sw_khz);
    bench::record("khz.sash", sash_khz);
    std::printf("%s", table.toString().c_str());
    std::printf("\nExpected shape: SASH compiles in seconds-to-minutes "
                "like software simulation (vs hours for FPGAs) and "
                "closes most of the speed gap to emulation.\n");
    return bench::finish();
}
