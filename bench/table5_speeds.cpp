/**
 * @file
 * Table 5 reproduction: simulation speeds (KHz) for the Zen2-like
 * commercial host (serial and best thread count), the simulated
 * multicore baseline (serial and best), and 256-core DASH and SASH,
 * with SASH's speedups over both baselines.
 *
 * Each design contributes three ash_exec sweep jobs — the Zen2 host
 * runs, the simulated-baseline runs, and the DASH/SASH pair (which
 * shares one compiled program) — and all recording and printing
 * happens after the merge barrier.
 */

#include <cstdio>

#include "BenchCommon.h"

using namespace ash;

int
main(int argc, char **argv)
{
    if (!bench::init("table5_speeds", argc, argv))
        return 1;
    bench::banner("Table 5: simulation speeds (KHz) and speedups");

    auto &designs = bench::DesignSet::standard().entries();

    std::vector<std::string> header = {"system"};
    for (auto &e : designs)
        header.push_back(e.design.name);
    header.push_back("gmean");
    TextTable table(header);

    auto addRow = [&](const std::string &name,
                      const std::vector<double> &khz) {
        std::vector<std::string> row = {name};
        for (double v : khz)
            row.push_back(TextTable::num(v, 1));
        row.push_back(TextTable::num(bench::gmeanOf(khz), 1));
        table.addRow(row);
    };

    size_t n = designs.size();
    std::vector<double> zen1(n), zenb(n), base1(n), baseb(n),
        dash(n), sash(n);
    std::vector<StatSet> sash_stats(n);

    // Every job publishes its results through the JobContext (no
    // captured-slot writes), which makes them resumable: a killed
    // sweep re-run with --resume skips completed jobs and replays
    // their published output bit-exactly.
    exec::SweepRunner sweep(bench::sweepOptions());
    for (size_t di = 0; di < n; ++di) {
        const std::string &name = designs[di].design.name;
        sweep.addResumable(
            "table5/" + name + "/zen2",
            [&, di](exec::JobContext &ctx) {
                const rtl::Netlist &nl = designs[di].netlist;
                ctx.publish("serial",
                            baseline::runBaseline(
                                nl, baseline::zen2Host(1))
                                .speedKHz);
                double best = 0;
                for (uint32_t t : {2u, 4u, 8u, 16u, 32u})
                    best = std::max(
                        best, baseline::runBaseline(
                                  nl, baseline::zen2Host(t))
                                  .speedKHz);
                ctx.publish("best", best);
            });
        sweep.addResumable(
            "table5/" + name + "/baseline",
            [&, di](exec::JobContext &ctx) {
                const rtl::Netlist &nl = designs[di].netlist;
                ctx.publish("serial",
                            baseline::runBaseline(
                                nl, baseline::simBaselineHost(1))
                                .speedKHz);
                double best = 0;
                for (uint32_t t : {4u, 16u, 64u, 128u})
                    best = std::max(
                        best, baseline::runBaseline(
                                  nl, baseline::simBaselineHost(t))
                                  .speedKHz);
                ctx.publish("best", best);
            });
        sweep.addResumable(
            "table5/" + name + "/ash",
            [&, di](exec::JobContext &ctx) {
                auto &entry = designs[di];
                core::TaskProgram prog =
                    bench::compileFor(entry.netlist, 64);
                core::ArchConfig dcfg;
                ctx.publish("dash",
                            bench::runAsh(prog, entry.design, dcfg)
                                .speedKHz());
                core::ArchConfig scfg;
                scfg.selective = true;
                core::RunResult sres =
                    bench::runAsh(prog, entry.design, scfg);
                ctx.publish("sash", sres.speedKHz());
                ctx.publishStats("sash", sres.stats);
            });
    }
    bench::runSweep(sweep);

    for (size_t di = 0; di < n; ++di) {
        // Jobs were added zen2, baseline, ash per design, in order.
        const exec::JobContext &zen = sweep.job(di * 3 + 0);
        const exec::JobContext &base = sweep.job(di * 3 + 1);
        const exec::JobContext &ash = sweep.job(di * 3 + 2);
        zen1[di] = zen.publishedValue("serial");
        zenb[di] = zen.publishedValue("best");
        base1[di] = base.publishedValue("serial");
        baseb[di] = base.publishedValue("best");
        dash[di] = ash.publishedValue("dash");
        sash[di] = ash.publishedValue("sash");
        if (const StatSet *s = ash.publishedStats("sash"))
            sash_stats[di] = *s;
    }

    for (size_t di = 0; di < n; ++di) {
        const std::string &d = designs[di].design.name;
        bench::record("khz.zen2_serial." + d, zen1[di]);
        bench::record("khz.zen2_best." + d, zenb[di]);
        bench::record("khz.baseline_serial." + d, base1[di]);
        bench::record("khz.baseline_best." + d, baseb[di]);
        bench::record("khz.dash." + d, dash[di]);
        bench::record("khz.sash." + d, sash[di]);
        bench::record("speedup.sash_vs_zen2." + d,
                      sash[di] / zenb[di]);
        bench::record("speedup.sash_vs_baseline." + d,
                      sash[di] / baseb[di]);
        bench::recordStats("sash." + d, sash_stats[di]);
    }

    addRow("Zen2 t=1", zen1);
    addRow("Zen2 best", zenb);
    addRow("Baseline t=1", base1);
    addRow("Baseline best", baseb);
    addRow("DASH 256-core", dash);
    addRow("SASH 256-core", sash);

    auto speedups = [&](const std::vector<double> &over) {
        std::vector<std::string> row = {"SASH/" +
                                        std::string(&over == &zenb
                                                        ? "Zen2 best"
                                                        : "Baseline "
                                                          "best")};
        std::vector<double> ratio;
        for (size_t i = 0; i < sash.size(); ++i)
            ratio.push_back(sash[i] / over[i]);
        for (double v : ratio)
            row.push_back(TextTable::speedup(v, 1));
        row.push_back(TextTable::speedup(bench::gmeanOf(ratio), 1));
        table.addRow(row);
    };
    speedups(zenb);
    speedups(baseb);

    auto ratios = [](const std::vector<double> &a,
                     const std::vector<double> &b) {
        std::vector<double> r;
        for (size_t i = 0; i < a.size(); ++i)
            r.push_back(a[i] / b[i]);
        return r;
    };
    bench::record("speedup.sash_vs_zen2.gmean",
                  bench::gmeanOf(ratios(sash, zenb)));
    bench::record("speedup.sash_vs_baseline.gmean",
                  bench::gmeanOf(ratios(sash, baseb)));

    std::printf("%s", table.toString().c_str());
    std::printf("\nExpected shape (paper Table 5): DASH and SASH beat "
                "both baselines by large factors; SASH's edge over "
                "DASH tracks (1 - activity), vanishing on NTT.\n");
    return bench::finish();
}
