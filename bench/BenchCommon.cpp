#include "BenchCommon.h"

#include <cstdio>

namespace ash::bench {

DesignSet &
DesignSet::standard()
{
    static DesignSet *set = [] {
        auto *s = new DesignSet();
        for (designs::Design &d : designs::allDesigns()) {
            DesignSet::Entry entry{std::move(d), rtl::Netlist{}, 0.0};
            entry.netlist = designs::compileDesign(entry.design);
            refsim::ReferenceSimulator sim(entry.netlist);
            auto stim = entry.design.makeStimulus();
            sim.run(*stim, 200);
            entry.activity = sim.activityFactor();
            s->_entries.push_back(std::move(entry));
        }
        return s;
    }();
    return *set;
}

core::TaskProgram
compileFor(const rtl::Netlist &nl, uint32_t tiles,
           const core::CompilerOptions &base)
{
    core::CompilerOptions opts = base;
    opts.numTiles = tiles;
    return core::compile(nl, opts);
}

core::RunResult
runAsh(const core::TaskProgram &prog, const designs::Design &design,
       core::ArchConfig cfg, uint64_t cycles)
{
    cfg.numTiles = prog.numTiles;
    core::AshSimulator sim(prog, cfg);
    auto stim = design.makeStimulus();
    return sim.run(*stim, cycles);
}

core::RunResult
runAshAt(const DesignSet::Entry &entry, uint32_t tiles, bool selective,
         uint64_t cycles)
{
    core::TaskProgram prog = compileFor(entry.netlist, tiles);
    core::ArchConfig cfg;
    cfg.selective = selective;
    return runAsh(prog, entry.design, cfg, cycles);
}

double
gmeanOf(const std::vector<double> &values)
{
    return geomean(values.data(), values.size());
}

void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

bool
init(const std::string &name, int &argc, char **argv)
{
    obs::Report::global().setName(name);
    return obs::Report::global().parseArgs(argc, argv);
}

void
record(const std::string &key, double value)
{
    obs::Report::global().record(key, value);
}

void
recordStats(const std::string &scope, const StatSet &stats)
{
    obs::Report::global().recordStats(scope, stats);
}

int
finish()
{
    return obs::Report::global().finish();
}

} // namespace ash::bench
