#include "BenchCommon.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <future>
#include <mutex>
#include <optional>

#include <chrono>

#include "common/Logging.h"
#include "common/Shutdown.h"
#include "exec/ThreadPool.h"
#include "guard/Divergence.h"
#include "guard/Fault.h"
#include "lanes/LaneBatchEngine.h"
#include "prof/Prof.h"

namespace ash::bench {

namespace {

/** Parsed --jobs value; 0 = auto (hardware concurrency). */
unsigned gJobs = 0;

/** Parsed --lanes value; scenario-batch width, minimum 1. */
unsigned gLanes = 1;

/** Parsed --scenarios value; 0 = no scenario study. */
size_t gScenarios = 0;

/** Jobs that exhausted their retries across all sweeps this run. */
size_t gSweepFailures = 0;

/** Parsed --checkpoint-* options; everyCycles 0 = no engine images. */
ckpt::CheckpointOptions gCkpt;

/** --resume given: restore engines and skip completed sweep jobs. */
bool gResume = false;

/** --job-deadline seconds; 0 = no per-job deadline. */
double gJobDeadlineSec = 0.0;

/** --isolate: fork each sweep job attempt into a subprocess. */
bool gIsolate = false;

/** --isolate-rss-mb: child address-space cap; 0 = unlimited. */
uint64_t gIsolateRssMb = 0;

/** --divergence-every cycles; 0 = no golden cross-check. */
uint64_t gDivergenceEvery = 0;

/** --quarantine-dir: where divergence bundles land. */
std::string gQuarantineDir = ".ash-quarantine";

/** Engine-run counter for checkpoint keys outside any sweep job. */
std::atomic<uint64_t> gMainEngineRuns{0};

/**
 * Periodic snapshotter for one engine run, or nullptr when
 * checkpointing is off. The key must be stable across a crash and
 * its resumed process: inside a sweep job it is the job key plus the
 * job's deterministic engine-run index; on the main thread it is the
 * report name plus a process-wide counter (main-thread benches run
 * their engines in a fixed order).
 */
std::string
nextEngineRunKey()
{
    if (exec::JobContext *job = exec::JobContext::current())
        return job->name() + "#r" +
               std::to_string(job->nextEngineRun());
    return obs::Report::global().name() + "#r" +
           std::to_string(gMainEngineRuns++);
}

std::unique_ptr<ckpt::CheckpointManager>
engineCheckpointer(const std::string &key)
{
    if (gCkpt.everyCycles == 0 || gCkpt.dir.empty())
        return nullptr;
    ckpt::CheckpointOptions opts = gCkpt;
    opts.dir = (std::filesystem::path(gCkpt.dir) / "engines").string();
    return std::make_unique<ckpt::CheckpointManager>(std::move(opts),
                                                     key);
}

} // namespace

DesignSet &
DesignSet::standard()
{
    static DesignSet *set = [] {
        auto *s = new DesignSet();
        for (designs::Design &d : designs::allDesigns()) {
            DesignSet::Entry entry{std::move(d), rtl::Netlist{}, 0.0};
            entry.netlist = designs::compileDesign(entry.design);
            refsim::ReferenceSimulator sim(entry.netlist);
            auto stim = entry.design.makeStimulus();
            sim.run(*stim, 200);
            entry.activity = sim.activityFactor();
            s->_entries.push_back(std::move(entry));
        }
        return s;
    }();
    return *set;
}

core::TaskProgram
compileFor(const rtl::Netlist &nl, uint32_t tiles,
           const core::CompilerOptions &base)
{
    core::CompilerOptions opts = base;
    opts.numTiles = tiles;

    // Memoize on netlist identity plus every option that shapes the
    // program. Sweeps hit the same (design, tiles) point from many
    // configs (fig19 asks for each design's 64-tile program six
    // times), so concurrent requesters share one compilation through
    // a future: the first caller compiles, the rest block on it.
    using Cached = std::shared_ptr<const core::TaskProgram>;
    static std::mutex cacheMutex;
    static std::map<std::string, std::shared_future<Cached>> cache;

    char key[192];
    std::snprintf(key, sizeof(key),
                  "%p|%u|%d|%u|%d|%u|%u|%u|%llu|%.9g",
                  static_cast<const void *>(&nl), tiles,
                  opts.unrolled ? 1 : 0, opts.maxTaskCost,
                  opts.useMapping ? 1 : 0,
                  opts.limits.maxRegArgValues, opts.limits.maxParents,
                  opts.limits.maxPushes,
                  (unsigned long long)opts.seed, opts.imbalance);

    std::promise<Cached> promise;
    std::shared_future<Cached> future;
    bool compile_here = false;
    {
        std::lock_guard<std::mutex> lock(cacheMutex);
        auto it = cache.find(key);
        if (it == cache.end()) {
            future = promise.get_future().share();
            cache.emplace(key, future);
            compile_here = true;
        } else {
            future = it->second;
        }
    }
    if (compile_here) {
        try {
            promise.set_value(std::make_shared<const core::TaskProgram>(
                core::compile(nl, opts)));
        } catch (...) {
            promise.set_exception(std::current_exception());
        }
    }
    return *future.get();   // Rethrows a failed compilation.
}

core::RunResult
runAsh(const core::TaskProgram &prog, const designs::Design &design,
       core::ArchConfig cfg, uint64_t cycles, const rtl::Netlist *nl)
{
    cfg.numTiles = prog.numTiles;
    auto stim = design.makeStimulus();

    bool wantCkpt = gCkpt.everyCycles != 0 && !gCkpt.dir.empty();
    bool wantDivergence = gDivergenceEvery != 0 && nl != nullptr;
    // One key names both the checkpoint set and any quarantine
    // bundle, so an operator can correlate them after a bad run.
    std::string key;
    if (wantCkpt || wantDivergence)
        key = nextEngineRunKey();

    std::unique_ptr<ckpt::CheckpointManager> mgr =
        engineCheckpointer(key);
    std::optional<core::AshSimulator> sim;
    sim.emplace(prog, cfg);
    if (mgr && gResume) {
        try {
            mgr->tryRestoreLatest(*sim);
        } catch (const ckpt::SnapshotError &e) {
            // A failed restore leaves the engine half-written; throw
            // it away and run from the start.
            warn("%s for '%s'; running fresh", e.what(),
                 mgr->keyDir().c_str());
            sim.emplace(prog, cfg);
        }
    }

    guard::HookChain hooks;
    hooks.add(mgr.get());
    std::optional<guard::DivergenceGuard> divergence;
    if (wantDivergence) {
        guard::DivergenceGuard::Options dopts;
        dopts.everyCycles = gDivergenceEvery;
        dopts.quarantineDir = gQuarantineDir;
        dopts.key = key;
        divergence.emplace(
            *nl, design.makeStimulus(),
            [&sim](uint64_t cycle) {
                return sim->committedFrame(cycle);
            },
            std::move(dopts));
        hooks.add(&*divergence);
    }
    return sim->run(*stim, cycles,
                    hooks.empty() ? nullptr : &hooks);
}

core::RunResult
runAshAt(const DesignSet::Entry &entry, uint32_t tiles, bool selective,
         uint64_t cycles)
{
    core::TaskProgram prog = compileFor(entry.netlist, tiles);
    core::ArchConfig cfg;
    cfg.selective = selective;
    return runAsh(prog, entry.design, cfg, cycles, &entry.netlist);
}

double
gmeanOf(const std::vector<double> &values)
{
    return geomean(values.data(), values.size());
}

void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

bool
init(const std::string &name, int &argc, char **argv)
{
    // Graceful drain on ctrl-C / SIGTERM: sweeps stop launching new
    // jobs, in-flight ones finish and persist, and finish() still
    // writes a partial --stats-json stamped "interrupted": true.
    installShutdownSignalHandlers();
    obs::Report::global().setName(name);
    if (!obs::Report::global().parseArgs(argc, argv))
        return false;

    // Our own flags: --jobs <n> (n >= 1; 0 or absent = auto) and the
    // checkpoint family. Unknown arguments stay in place for the
    // bench, as in parseArgs().
    auto usage = [&] {
        std::fprintf(stderr,
                     "usage: %s [--jobs <n>] [--lanes <w>] "
                     "[--scenarios <n>] "
                     "[--checkpoint-every <cycles>] "
                     "[--checkpoint-dir <dir>] [--checkpoint-keep "
                     "<k>] [--resume <dir>] [--fault-plan <spec>] "
                     "[--job-deadline <sec>] [--isolate] "
                     "[--isolate-rss-mb <n>] "
                     "[--divergence-every <cycles>] "
                     "[--quarantine-dir <dir>] "
                     "[--prof-json <file>] [--prof-jsonl <file>] "
                     "[--progress <sec>]\n",
                     argc > 0 ? argv[0] : "bench");
        return false;
    };
    auto numArg = [&](int &i, const char *flag, long min,
                      long &value) {
        if (i + 1 >= argc)
            return false;
        char *end = nullptr;
        value = std::strtol(argv[++i], &end, 10);
        if (end == argv[i] || *end != '\0' || value < min) {
            std::fprintf(stderr, "%s wants n >= %ld, got %s\n", flag,
                         min, argv[i]);
            return false;
        }
        return true;
    };
    int out = 1;
    std::string faultSpec;
    bool faultFlagSeen = false;
    std::string profJson;
    std::string profJsonl;
    double progressSec = 0.0;
    bool profWanted = false;
    for (int i = 1; i < argc; ++i) {
        long n = 0;
        if (std::strcmp(argv[i], "--jobs") == 0) {
            if (!numArg(i, "--jobs", 0, n))
                return usage();
            gJobs = static_cast<unsigned>(n);
        } else if (std::strcmp(argv[i], "--lanes") == 0) {
            if (!numArg(i, "--lanes", 1, n))
                return usage();
            gLanes = static_cast<unsigned>(n);
        } else if (std::strcmp(argv[i], "--scenarios") == 0) {
            if (!numArg(i, "--scenarios", 0, n))
                return usage();
            gScenarios = static_cast<size_t>(n);
        } else if (std::strcmp(argv[i], "--checkpoint-every") == 0) {
            if (!numArg(i, "--checkpoint-every", 0, n))
                return usage();
            gCkpt.everyCycles = static_cast<uint64_t>(n);
        } else if (std::strcmp(argv[i], "--checkpoint-keep") == 0) {
            if (!numArg(i, "--checkpoint-keep", 1, n))
                return usage();
            gCkpt.keep = static_cast<unsigned>(n);
        } else if (std::strcmp(argv[i], "--checkpoint-dir") == 0) {
            if (i + 1 >= argc)
                return usage();
            gCkpt.dir = argv[++i];
        } else if (std::strcmp(argv[i], "--resume") == 0) {
            if (i + 1 >= argc)
                return usage();
            gCkpt.dir = argv[++i];
            gResume = true;
        } else if (std::strcmp(argv[i], "--fault-plan") == 0) {
            if (i + 1 >= argc)
                return usage();
            faultSpec = argv[++i];
            faultFlagSeen = true;
        } else if (std::strcmp(argv[i], "--job-deadline") == 0) {
            if (i + 1 >= argc)
                return usage();
            char *end = nullptr;
            gJobDeadlineSec = std::strtod(argv[++i], &end);
            if (end == argv[i] || *end != '\0' ||
                gJobDeadlineSec < 0.0) {
                std::fprintf(stderr,
                             "--job-deadline wants seconds >= 0, "
                             "got %s\n",
                             argv[i]);
                return usage();
            }
        } else if (std::strcmp(argv[i], "--isolate") == 0) {
            gIsolate = true;
        } else if (std::strcmp(argv[i], "--isolate-rss-mb") == 0) {
            if (!numArg(i, "--isolate-rss-mb", 1, n))
                return usage();
            gIsolateRssMb = static_cast<uint64_t>(n);
        } else if (std::strcmp(argv[i], "--divergence-every") == 0) {
            if (!numArg(i, "--divergence-every", 0, n))
                return usage();
            gDivergenceEvery = static_cast<uint64_t>(n);
        } else if (std::strcmp(argv[i], "--quarantine-dir") == 0) {
            if (i + 1 >= argc)
                return usage();
            gQuarantineDir = argv[++i];
        } else if (std::strcmp(argv[i], "--prof-json") == 0) {
            if (i + 1 >= argc)
                return usage();
            profJson = argv[++i];
            profWanted = true;
        } else if (std::strcmp(argv[i], "--prof-jsonl") == 0) {
            if (i + 1 >= argc)
                return usage();
            profJsonl = argv[++i];
            profWanted = true;
        } else if (std::strcmp(argv[i], "--progress") == 0) {
            if (i + 1 >= argc)
                return usage();
            char *end = nullptr;
            progressSec = std::strtod(argv[++i], &end);
            if (end == argv[i] || *end != '\0' || progressSec <= 0.0) {
                std::fprintf(stderr,
                             "--progress wants seconds > 0, got %s\n",
                             argv[i]);
                return usage();
            }
            profWanted = true;
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    if (gCkpt.everyCycles != 0 && gCkpt.dir.empty())
        gCkpt.dir = ".ash-ckpt";

    // Fault plan: the flag wins; ASH_FAULT is the env fallback so CI
    // can chaos-test unmodified command lines.
    if (!faultFlagSeen) {
        if (const char *env = std::getenv("ASH_FAULT"))
            faultSpec = env;
    }
    if (!faultSpec.empty()) {
#if ASH_GUARD_FAULTS
        guard::FaultPlan plan;
        std::string perr;
        if (!guard::FaultPlan::parse(faultSpec, plan, &perr)) {
            std::fprintf(stderr, "bad fault plan '%s': %s\n",
                         faultSpec.c_str(), perr.c_str());
            return usage();
        }
        guard::FaultInjector::instance().arm(plan);
        warn("fault injection armed: %s", faultSpec.c_str());
#else
        std::fprintf(stderr,
                     "fault plan given but fault hooks were compiled "
                     "out (ASH_GUARD_FAULTS_ENABLED=OFF)\n");
        return false;
#endif
    }

    // Host profiling: any of the three flags arms the profiler for
    // the whole bench run. Its output goes only to the --prof files
    // and stderr; stdout/--stats-json stay byte-identical (see
    // prof/Prof.h).
    if (profWanted) {
#if ASH_PROF
        prof::Profiler &prof = prof::Profiler::instance();
        prof.setJsonPath(profJson);
        prof.setJsonlPath(profJsonl);
        prof.setProgressPeriodSec(progressSec);
        prof.arm();
#else
        std::fprintf(stderr,
                     "profiling flags given but ash_prof was compiled "
                     "out (ASH_PROF_ENABLED=OFF); ignoring\n");
#endif
    }
    return true;
}

unsigned
jobs()
{
    return gJobs != 0 ? gJobs : exec::hardwareConcurrency();
}

unsigned
lanes()
{
    return gLanes;
}

size_t
scenarios()
{
    return gScenarios;
}

const ckpt::CheckpointOptions &
checkpointOptions()
{
    return gCkpt;
}

bool
resuming()
{
    return gResume;
}

exec::SweepOptions
sweepOptions()
{
    exec::SweepOptions opts;
    opts.jobs = jobs();
    opts.lanes = gLanes;
    opts.checkpointDir = gCkpt.dir;
    opts.resume = gResume;
    opts.jobDeadlineSec = gJobDeadlineSec;
    opts.isolate = gIsolate;
    opts.isolateRssMb = gIsolateRssMb;
    return opts;
}

void
runSweep(exec::SweepRunner &sweep)
{
    gSweepFailures += sweep.run().size();
}

namespace {

/** FNV-1a over one lane's output trace, folded to 53 bits so the
 *  checksum round-trips exactly through a report double. */
double
traceChecksum(const refsim::OutputTrace &trace)
{
    uint64_t h = 1469598103934665603ull;
    for (const refsim::OutputFrame &frame : trace)
        for (uint64_t v : frame)
            for (int b = 0; b < 64; b += 8) {
                h ^= (v >> b) & 0xff;
                h *= 1099511628211ull;
            }
    return static_cast<double>(h & ((1ull << 53) - 1));
}

} // namespace

void
scenarioStudy(const std::string &prefix, uint64_t cycles)
{
    if (gScenarios == 0)
        return;
    const unsigned w = gLanes;
    auto &entries = DesignSet::standard().entries();
    const std::vector<ash::lanes::ScenarioSpec> specs =
        ash::lanes::scenarioSweep(0x5ca1ab1eull, gScenarios);

    // The stdout header must not mention the lane width: stdout is
    // byte-identical at any --lanes value (the width only changes how
    // the work is scheduled, never what it computes).
    std::printf("\n-- lane-batched scenario study: %zu scenario(s) "
                "per design --\n\n",
                gScenarios);

    // Deterministic per-scenario results through the sweep, so the
    // study exercises the addBatch scheduling path at the configured
    // --lanes width. Each lane stages its own records: the report is
    // byte-identical at any --lanes and --jobs value.
    exec::SweepRunner sweep(sweepOptions());
    for (size_t di = 0; di < entries.size(); ++di) {
        std::vector<std::string> names;
        names.reserve(specs.size());
        for (size_t i = 0; i < specs.size(); ++i)
            names.push_back(prefix + "/" + entries[di].design.name +
                            "/s" + std::to_string(i));
        sweep.addBatch(
            prefix + "/" + entries[di].design.name, names,
            [&, di](exec::BatchContext &bctx) {
                auto &entry = entries[di];
                // Lane k's scenario index rides in its job key
                // (".../s<i>"), so a retry of a lane subset replays
                // exactly the scenarios that failed.
                std::vector<refsim::StimulusPtr> stims;
                stims.reserve(bctx.laneCount());
                for (size_t k = 0; k < bctx.laneCount(); ++k) {
                    const std::string &nm = bctx.lane(k).name();
                    const size_t idx = std::stoul(
                        nm.substr(nm.rfind("/s") + 2));
                    stims.push_back(ash::lanes::makeScenario(
                        entry.netlist, specs.at(idx)));
                }
                ash::lanes::LaneBatchEngine eng(
                    entry.netlist,
                    static_cast<uint32_t>(bctx.laneCount()));
                ash::lanes::LaneStimulus stim(std::move(stims));
                eng.run(stim, cycles);
                for (size_t k = 0; k < bctx.laneCount(); ++k) {
                    exec::JobContext &lane = bctx.lane(k);
                    const auto l = static_cast<uint32_t>(k);
                    const double activity =
                        eng.laneActivityFactor(l);
                    const double checksum =
                        traceChecksum(eng.laneTrace(l));
                    lane.record(lane.name() + ".activity", activity);
                    lane.record(lane.name() + ".checksum", checksum);
                    lane.publish("activity", activity);
                    lane.publish("checksum", checksum);
                }
            });
    }
    runSweep(sweep);

    // Per-design summary from the merged per-lane results —
    // deterministic, so it may go to stdout.
    for (size_t di = 0; di < entries.size(); ++di) {
        double activitySum = 0.0;
        uint64_t combined = 0;
        for (size_t i = 0; i < specs.size(); ++i) {
            const exec::JobContext &job =
                sweep.job(di * specs.size() + i);
            activitySum += job.publishedValue("activity");
            combined ^= static_cast<uint64_t>(
                job.publishedValue("checksum"));
        }
        std::printf("%-12s mean activity %5.1f%%  checksum "
                    "%013llx\n",
                    entries[di].design.name.c_str(),
                    100.0 * activitySum /
                        static_cast<double>(specs.size()),
                    static_cast<unsigned long long>(combined));
    }

    // Wall-clock throughput: batched at --lanes W versus per-job
    // reference simulation of the same scenarios. Timing-dependent by
    // nature, so it goes only to stderr and to volatile
    // "lanes.wall.*" report keys that the determinism harnesses
    // filter out of comparisons.
    using Clock = std::chrono::steady_clock;
    auto secondsSince = [](Clock::time_point t0) {
        return std::chrono::duration<double>(Clock::now() - t0)
            .count();
    };
    for (auto &entry : entries) {
        auto t0 = Clock::now();
        for (size_t base = 0; base < specs.size(); base += w) {
            const size_t n = std::min<size_t>(w, specs.size() - base);
            std::vector<refsim::StimulusPtr> stims;
            stims.reserve(n);
            for (size_t k = 0; k < n; ++k)
                stims.push_back(ash::lanes::makeScenario(
                    entry.netlist, specs[base + k]));
            ash::lanes::LaneBatchEngine eng(
                entry.netlist, static_cast<uint32_t>(n));
            ash::lanes::LaneStimulus stim(std::move(stims));
            eng.run(stim, cycles);
        }
        const double batchedSec =
            std::max(secondsSince(t0), 1e-9);

        t0 = Clock::now();
        for (const auto &spec : specs) {
            refsim::ReferenceSimulator sim(entry.netlist);
            auto stim = ash::lanes::makeScenario(entry.netlist, spec);
            sim.run(*stim, cycles);
        }
        const double perJobSec = std::max(secondsSince(t0), 1e-9);

        const double scnCount =
            static_cast<double>(specs.size());
        const double batchedRate = scnCount / batchedSec;
        const double perJobRate = scnCount / perJobSec;
        const std::string &name = entry.design.name;
        record("lanes.wall.batched_scn_per_sec." + name,
               batchedRate);
        record("lanes.wall.per_job_scn_per_sec." + name, perJobRate);
        record("lanes.wall.speedup." + name,
               batchedRate / perJobRate);
        std::fprintf(stderr,
                     "lanes: %s --lanes %u: batched %.1f scn/s, "
                     "per-job %.1f scn/s, speedup %.2fx\n",
                     name.c_str(), w, batchedRate, perJobRate,
                     batchedRate / perJobRate);
    }
}

void
record(const std::string &key, double value)
{
    if (exec::JobContext *job = exec::JobContext::current())
        job->record(key, value);
    else
        obs::Report::global().record(key, value);
}

void
recordStats(const std::string &scope, const StatSet &stats)
{
    if (exec::JobContext *job = exec::JobContext::current())
        job->recordStats(scope, stats);
    else
        obs::Report::global().recordStats(scope, stats);
}

int
finish()
{
    int rc = obs::Report::global().finish();
    rc |= prof::Profiler::instance().finish();
    if (gSweepFailures != 0) {
        warn("%zu sweep job(s) failed; exiting nonzero",
             gSweepFailures);
        return 1;
    }
    if (shutdownRequested()) {
        // The partial stats/checkpoints are already on disk; the
        // nonzero exit tells callers the run did not complete.
        warn("run interrupted (SIGINT/SIGTERM drain); partial "
             "results written; exiting nonzero");
        return 1;
    }
    return rc;
}

} // namespace ash::bench
