#include "BenchCommon.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <mutex>

#include "common/Logging.h"
#include "exec/ThreadPool.h"

namespace ash::bench {

namespace {

/** Parsed --jobs value; 0 = auto (hardware concurrency). */
unsigned gJobs = 0;

/** Jobs that exhausted their retries across all sweeps this run. */
size_t gSweepFailures = 0;

} // namespace

DesignSet &
DesignSet::standard()
{
    static DesignSet *set = [] {
        auto *s = new DesignSet();
        for (designs::Design &d : designs::allDesigns()) {
            DesignSet::Entry entry{std::move(d), rtl::Netlist{}, 0.0};
            entry.netlist = designs::compileDesign(entry.design);
            refsim::ReferenceSimulator sim(entry.netlist);
            auto stim = entry.design.makeStimulus();
            sim.run(*stim, 200);
            entry.activity = sim.activityFactor();
            s->_entries.push_back(std::move(entry));
        }
        return s;
    }();
    return *set;
}

core::TaskProgram
compileFor(const rtl::Netlist &nl, uint32_t tiles,
           const core::CompilerOptions &base)
{
    core::CompilerOptions opts = base;
    opts.numTiles = tiles;

    // Memoize on netlist identity plus every option that shapes the
    // program. Sweeps hit the same (design, tiles) point from many
    // configs (fig19 asks for each design's 64-tile program six
    // times), so concurrent requesters share one compilation through
    // a future: the first caller compiles, the rest block on it.
    using Cached = std::shared_ptr<const core::TaskProgram>;
    static std::mutex cacheMutex;
    static std::map<std::string, std::shared_future<Cached>> cache;

    char key[192];
    std::snprintf(key, sizeof(key),
                  "%p|%u|%d|%u|%d|%u|%u|%u|%llu|%.9g",
                  static_cast<const void *>(&nl), tiles,
                  opts.unrolled ? 1 : 0, opts.maxTaskCost,
                  opts.useMapping ? 1 : 0,
                  opts.limits.maxRegArgValues, opts.limits.maxParents,
                  opts.limits.maxPushes,
                  (unsigned long long)opts.seed, opts.imbalance);

    std::promise<Cached> promise;
    std::shared_future<Cached> future;
    bool compile_here = false;
    {
        std::lock_guard<std::mutex> lock(cacheMutex);
        auto it = cache.find(key);
        if (it == cache.end()) {
            future = promise.get_future().share();
            cache.emplace(key, future);
            compile_here = true;
        } else {
            future = it->second;
        }
    }
    if (compile_here) {
        try {
            promise.set_value(std::make_shared<const core::TaskProgram>(
                core::compile(nl, opts)));
        } catch (...) {
            promise.set_exception(std::current_exception());
        }
    }
    return *future.get();   // Rethrows a failed compilation.
}

core::RunResult
runAsh(const core::TaskProgram &prog, const designs::Design &design,
       core::ArchConfig cfg, uint64_t cycles)
{
    cfg.numTiles = prog.numTiles;
    core::AshSimulator sim(prog, cfg);
    auto stim = design.makeStimulus();
    return sim.run(*stim, cycles);
}

core::RunResult
runAshAt(const DesignSet::Entry &entry, uint32_t tiles, bool selective,
         uint64_t cycles)
{
    core::TaskProgram prog = compileFor(entry.netlist, tiles);
    core::ArchConfig cfg;
    cfg.selective = selective;
    return runAsh(prog, entry.design, cfg, cycles);
}

double
gmeanOf(const std::vector<double> &values)
{
    return geomean(values.data(), values.size());
}

void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

bool
init(const std::string &name, int &argc, char **argv)
{
    obs::Report::global().setName(name);
    if (!obs::Report::global().parseArgs(argc, argv))
        return false;

    // Our own flag: --jobs <n> (n >= 1; 0 or absent = auto). Unknown
    // arguments stay in place for the bench, as in parseArgs().
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "usage: %s [--jobs <n>]\n",
                             argc > 0 ? argv[0] : "bench");
                return false;
            }
            char *end = nullptr;
            long n = std::strtol(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0' || n < 0) {
                std::fprintf(stderr, "--jobs wants n >= 0, got %s\n",
                             argv[i]);
                return false;
            }
            gJobs = static_cast<unsigned>(n);
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    return true;
}

unsigned
jobs()
{
    return gJobs != 0 ? gJobs : exec::hardwareConcurrency();
}

exec::SweepOptions
sweepOptions()
{
    exec::SweepOptions opts;
    opts.jobs = jobs();
    return opts;
}

void
runSweep(exec::SweepRunner &sweep)
{
    gSweepFailures += sweep.run().size();
}

void
record(const std::string &key, double value)
{
    if (exec::JobContext *job = exec::JobContext::current())
        job->record(key, value);
    else
        obs::Report::global().record(key, value);
}

void
recordStats(const std::string &scope, const StatSet &stats)
{
    if (exec::JobContext *job = exec::JobContext::current())
        job->recordStats(scope, stats);
    else
        obs::Report::global().recordStats(scope, stats);
}

int
finish()
{
    int rc = obs::Report::global().finish();
    if (gSweepFailures != 0) {
        warn("%zu sweep job(s) failed; exiting nonzero",
             gSweepFailures);
        return 1;
    }
    return rc;
}

} // namespace ash::bench
