/**
 * @file
 * google-benchmark microbenchmarks for the key data structures and
 * hot paths: the AQ priority heap, the cache model, the NoC, node
 * evaluation, the partitioner, and end-to-end Verilog compilation.
 */

#include <benchmark/benchmark.h>

#include "common/BoundedHeap.h"
#include "common/Random.h"
#include "core/arch/Cache.h"
#include "core/arch/Noc.h"
#include "partition/Partition.h"
#include "rtl/Eval.h"
#include "verilog/Compile.h"

using namespace ash;

static void
BM_BoundedHeapPushPop(benchmark::State &state)
{
    BoundedHeap<uint64_t> heap(512);
    Rng rng(1);
    for (int i = 0; i < 256; ++i)
        heap.push(rng.next());
    for (auto _ : state) {
        heap.push(rng.next());
        benchmark::DoNotOptimize(heap.pop());
    }
}
BENCHMARK(BM_BoundedHeapPushPop);

static void
BM_CacheAccess(benchmark::State &state)
{
    core::CacheModel cache(16 * 1024, 8, 64);
    Rng rng(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            cache.access(rng.below(1 << 18) * 64));
}
BENCHMARK(BM_CacheAccess);

static void
BM_NocSend(benchmark::State &state)
{
    core::NocModel noc(64);
    Rng rng(3);
    uint64_t now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            noc.send(static_cast<uint32_t>(rng.below(64)),
                     static_cast<uint32_t>(rng.below(64)), 40,
                     now++));
    }
}
BENCHMARK(BM_NocSend);

static void
BM_EvalCombOp(benchmark::State &state)
{
    rtl::Netlist nl;
    rtl::NodeId a = nl.addInput("a", 32);
    rtl::NodeId b = nl.addInput("b", 32);
    rtl::Node n;
    n.op = rtl::Op::Mul;
    n.width = 32;
    n.operands = {a, b};
    uint64_t ops[2] = {12345, 6789};
    for (auto _ : state) {
        benchmark::DoNotOptimize(rtl::evalCombOp(n, nl, ops));
        ++ops[0];
    }
}
BENCHMARK(BM_EvalCombOp);

static void
BM_PartitionGraph(benchmark::State &state)
{
    partition::Graph g;
    size_t n = 2000;
    g.vertexWeight.assign(n, 1);
    g.adj.resize(n);
    Rng rng(4);
    for (size_t e = 0; e < 6000; ++e) {
        uint32_t u = static_cast<uint32_t>(rng.below(n));
        uint32_t v = static_cast<uint32_t>(rng.below(n));
        if (u != v)
            g.addEdge(u, v, 1);
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(partition::partitionGraph(g, 16));
}
BENCHMARK(BM_PartitionGraph)->Unit(benchmark::kMillisecond);

static void
BM_CompileVerilog(benchmark::State &state)
{
    const char *src = R"(
module top(input clk, input [15:0] x, output [15:0] y);
  reg [15:0] acc;
  always_ff @(posedge clk) acc <= acc + x * 16'd3;
  assign y = acc ^ (x >> 2);
endmodule
)";
    for (auto _ : state)
        benchmark::DoNotOptimize(
            verilog::compileVerilog(src, "top"));
}
BENCHMARK(BM_CompileVerilog)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
