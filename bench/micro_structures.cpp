/**
 * @file
 * google-benchmark microbenchmarks for the key data structures and
 * hot paths: the AQ priority heap, the cache model, the NoC, node
 * evaluation, the partitioner, end-to-end Verilog compilation, and
 * the ash_exec thread-pool dispatch path.
 */

#include <benchmark/benchmark.h>

#include <atomic>

#include "common/BoundedHeap.h"
#include "common/Random.h"
#include "core/arch/Cache.h"
#include "core/arch/Noc.h"
#include "exec/SweepRunner.h"
#include "exec/ThreadPool.h"
#include "partition/Partition.h"
#include "rtl/Eval.h"
#include "verilog/Compile.h"

using namespace ash;

static void
BM_BoundedHeapPushPop(benchmark::State &state)
{
    BoundedHeap<uint64_t> heap(512);
    Rng rng(1);
    for (int i = 0; i < 256; ++i)
        heap.push(rng.next());
    for (auto _ : state) {
        heap.push(rng.next());
        benchmark::DoNotOptimize(heap.pop());
    }
}
BENCHMARK(BM_BoundedHeapPushPop);

static void
BM_CacheAccess(benchmark::State &state)
{
    core::CacheModel cache(16 * 1024, 8, 64);
    Rng rng(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            cache.access(rng.below(1 << 18) * 64));
}
BENCHMARK(BM_CacheAccess);

static void
BM_NocSend(benchmark::State &state)
{
    core::NocModel noc(64);
    Rng rng(3);
    uint64_t now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            noc.send(static_cast<uint32_t>(rng.below(64)),
                     static_cast<uint32_t>(rng.below(64)), 40,
                     now++));
    }
}
BENCHMARK(BM_NocSend);

static void
BM_EvalCombOp(benchmark::State &state)
{
    rtl::Netlist nl;
    rtl::NodeId a = nl.addInput("a", 32);
    rtl::NodeId b = nl.addInput("b", 32);
    rtl::Node n;
    n.op = rtl::Op::Mul;
    n.width = 32;
    n.operands = {a, b};
    uint64_t ops[2] = {12345, 6789};
    for (auto _ : state) {
        benchmark::DoNotOptimize(rtl::evalCombOp(n, nl, ops));
        ++ops[0];
    }
}
BENCHMARK(BM_EvalCombOp);

static void
BM_PartitionGraph(benchmark::State &state)
{
    partition::Graph g;
    size_t n = 2000;
    g.vertexWeight.assign(n, 1);
    g.adj.resize(n);
    Rng rng(4);
    for (size_t e = 0; e < 6000; ++e) {
        uint32_t u = static_cast<uint32_t>(rng.below(n));
        uint32_t v = static_cast<uint32_t>(rng.below(n));
        if (u != v)
            g.addEdge(u, v, 1);
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(partition::partitionGraph(g, 16));
}
BENCHMARK(BM_PartitionGraph)->Unit(benchmark::kMillisecond);

static void
BM_CompileVerilog(benchmark::State &state)
{
    const char *src = R"(
module top(input clk, input [15:0] x, output [15:0] y);
  reg [15:0] acc;
  always_ff @(posedge clk) acc <= acc + x * 16'd3;
  assign y = acc ^ (x >> 2);
endmodule
)";
    for (auto _ : state)
        benchmark::DoNotOptimize(
            verilog::compileVerilog(src, "top"));
}
BENCHMARK(BM_CompileVerilog)->Unit(benchmark::kMicrosecond);

/**
 * Per-task dispatch overhead of the work-stealing pool: submit+run
 * a batch of trivial tasks and wait. Time per iteration / batch size
 * is the round-trip cost of one submit through the shared-mutex
 * deques — the number that must stay far below the milliseconds a
 * real sweep job takes. Arg is the worker-thread count.
 */
static void
BM_ThreadPoolDispatch(benchmark::State &state)
{
    constexpr int kBatch = 256;
    exec::ThreadPool pool(
        static_cast<unsigned>(state.range(0)));
    std::atomic<uint64_t> sink{0};
    for (auto _ : state) {
        for (int i = 0; i < kBatch; ++i)
            pool.submit([&] {
                sink.fetch_add(1, std::memory_order_relaxed);
            });
        pool.wait();
    }
    state.SetItemsProcessed(state.iterations() * kBatch);
    benchmark::DoNotOptimize(sink.load());
}
BENCHMARK(BM_ThreadPoolDispatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/**
 * Sweep scaling shape: a fixed bundle of CPU-bound jobs (spin loops
 * sized like a small simulation kernel) through SweepRunner at
 * several worker counts. On a multi-core host the per-iteration time
 * should drop roughly linearly with the arg until it hits the core
 * count; on a 1-core host it stays flat, which bounds the framework's
 * own overhead.
 */
static void
BM_SweepRunnerScaling(benchmark::State &state)
{
    constexpr int kJobs = 8;
    for (auto _ : state) {
        exec::SweepOptions opts;
        opts.jobs = static_cast<unsigned>(state.range(0));
        exec::SweepRunner sweep(opts);
        std::atomic<uint64_t> sink{0};
        for (int j = 0; j < kJobs; ++j)
            sweep.add("micro/job" + std::to_string(j),
                      [&sink](exec::JobContext &ctx) {
                          uint64_t acc = ctx.seed();
                          for (int i = 0; i < 200000; ++i)
                              acc = acc * 6364136223846793005ull +
                                    1442695040888963407ull;
                          sink.fetch_add(
                              acc, std::memory_order_relaxed);
                      });
        sweep.run();
        benchmark::DoNotOptimize(sink.load());
    }
    state.SetItemsProcessed(state.iterations() * kJobs);
}
BENCHMARK(BM_SweepRunnerScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
