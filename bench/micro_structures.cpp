/**
 * @file
 * google-benchmark microbenchmarks for the key data structures and
 * hot paths: the AQ priority heap, the cache model, the NoC, node
 * evaluation, the partitioner, end-to-end Verilog compilation, and
 * the ash_exec thread-pool dispatch path.
 */

#include <benchmark/benchmark.h>

#include <atomic>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <unordered_map>

#include "common/BoundedHeap.h"
#include "common/EventHeap.h"
#include "common/Random.h"
#include "common/SlotAllocator.h"
#include "common/SortedPool.h"
#include "core/arch/Cache.h"
#include "core/arch/Noc.h"
#include "exec/SweepRunner.h"
#include "exec/ThreadPool.h"
#include "jit/KernelCache.h"
#include "partition/Partition.h"
#include "rtl/Eval.h"
#include "verilog/Compile.h"

using namespace ash;

static void
BM_BoundedHeapPushPop(benchmark::State &state)
{
    BoundedHeap<uint64_t> heap(512);
    Rng rng(1);
    for (int i = 0; i < 256; ++i)
        heap.push(rng.next());
    for (auto _ : state) {
        heap.push(rng.next());
        benchmark::DoNotOptimize(heap.pop());
    }
}
BENCHMARK(BM_BoundedHeapPushPop);

/**
 * Dense slot-indexed state vs a node-keyed unordered_map: the access
 * pattern of the engine's per-task argument buffers. Keys are sparse
 * node ids; the slot variant pays one precomputed indirection into a
 * flat array, the map variant hashes on every read/write.
 */
static void
BM_DenseSlotState(benchmark::State &state)
{
    constexpr size_t kKeys = 64;
    SlotAllocator slots;
    std::vector<uint32_t> keys;
    Rng rng(7);
    while (keys.size() < kKeys) {
        uint32_t k = static_cast<uint32_t>(rng.below(1 << 20));
        if (slots.add(k) == keys.size())
            keys.push_back(k);
    }
    std::vector<uint64_t> state_arr(slots.size(), 0);
    uint64_t i = 0;
    for (auto _ : state) {
        uint32_t k = keys[i++ % kKeys];
        uint64_t &v = state_arr[slots.slot(k)];
        benchmark::DoNotOptimize(v);
        v += k;
    }
}
BENCHMARK(BM_DenseSlotState);

static void
BM_UnorderedMapState(benchmark::State &state)
{
    constexpr size_t kKeys = 64;
    std::vector<uint32_t> keys;
    std::unordered_map<uint32_t, uint64_t> m;
    Rng rng(7);
    while (keys.size() < kKeys) {
        uint32_t k = static_cast<uint32_t>(rng.below(1 << 20));
        if (m.emplace(k, 0).second)
            keys.push_back(k);
    }
    uint64_t i = 0;
    for (auto _ : state) {
        uint32_t k = keys[i++ % kKeys];
        uint64_t &v = m[k];
        benchmark::DoNotOptimize(v);
        v += k;
    }
}
BENCHMARK(BM_UnorderedMapState);

/**
 * The TMU queue churn pattern — emplace a keyed entry holding a
 * vector payload, push into it, erase the minimum — as served by the
 * pooled sorted index vs std::map. The pool recycles the payload
 * vector's heap allocation; the map frees and reallocates it on
 * every insert/erase cycle.
 */
static void
BM_PooledQueueChurn(benchmark::State &state)
{
    using Key = std::tuple<uint64_t, uint32_t, uint64_t>;
    SortedPool<Key, std::vector<uint64_t>> pool;
    Rng rng(11);
    uint64_t t = 0;
    for (int i = 0; i < 32; ++i) {
        auto [it, fresh] =
            pool.emplace(Key{rng.below(1000), i, t++});
        it->second.clear();
        it->second.push_back(t);
    }
    for (auto _ : state) {
        auto [it, fresh] =
            pool.emplace(Key{rng.below(1000), 99, t++});
        if (fresh)
            it->second.clear();
        for (int i = 0; i < 8; ++i)
            it->second.push_back(t + i);
        benchmark::DoNotOptimize(pool.begin()->second.size());
        pool.erase(pool.begin());
    }
}
BENCHMARK(BM_PooledQueueChurn);

static void
BM_StdMapQueueChurn(benchmark::State &state)
{
    using Key = std::tuple<uint64_t, uint32_t, uint64_t>;
    std::map<Key, std::vector<uint64_t>> q;
    Rng rng(11);
    uint64_t t = 0;
    for (int i = 0; i < 32; ++i)
        q[Key{rng.below(1000), static_cast<uint32_t>(i), t++}]
            .push_back(t);
    for (auto _ : state) {
        auto [it, fresh] =
            q.emplace(Key{rng.below(1000), 99, t++},
                      std::vector<uint64_t>{});
        for (int i = 0; i < 8; ++i)
            it->second.push_back(t + i);
        benchmark::DoNotOptimize(q.begin()->second.size());
        q.erase(q.begin());
    }
}
BENCHMARK(BM_StdMapQueueChurn);

/**
 * Event scheduling with fat payloads: the indexed heap sifts 16-byte
 * handles and parks the payload; the textbook alternative (as
 * std::priority_queue did in the engines) sifts the whole event,
 * shared_ptr refcounts included.
 */
struct FatEvent
{
    uint64_t time = 0;
    uint64_t a = 0, b = 0, c = 0;
    std::shared_ptr<int> payload;
    bool operator>(const FatEvent &o) const { return time > o.time; }
};

static void
BM_EventHeapPushPop(benchmark::State &state)
{
    EventHeap<FatEvent> heap;
    Rng rng(13);
    auto p = std::make_shared<int>(7);
    for (int i = 0; i < 256; ++i) {
        FatEvent e;
        e.time = rng.below(1 << 20);
        e.payload = p;
        heap.push(e.time, std::move(e));
    }
    for (auto _ : state) {
        FatEvent e;
        e.time = rng.below(1 << 20);
        e.payload = p;
        heap.push(e.time, std::move(e));
        benchmark::DoNotOptimize(heap.pop());
    }
}
BENCHMARK(BM_EventHeapPushPop);

static void
BM_PriorityQueuePushPop(benchmark::State &state)
{
    std::priority_queue<FatEvent, std::vector<FatEvent>,
                        std::greater<FatEvent>> heap;
    Rng rng(13);
    auto p = std::make_shared<int>(7);
    for (int i = 0; i < 256; ++i) {
        FatEvent e;
        e.time = rng.below(1 << 20);
        e.payload = p;
        heap.push(std::move(e));
    }
    for (auto _ : state) {
        FatEvent e;
        e.time = rng.below(1 << 20);
        e.payload = p;
        heap.push(std::move(e));
        FatEvent out = heap.top();
        heap.pop();
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_PriorityQueuePushPop);

static void
BM_CacheAccess(benchmark::State &state)
{
    core::CacheModel cache(16 * 1024, 8, 64);
    Rng rng(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            cache.access(rng.below(1 << 18) * 64));
}
BENCHMARK(BM_CacheAccess);

static void
BM_NocSend(benchmark::State &state)
{
    core::NocModel noc(64);
    Rng rng(3);
    uint64_t now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            noc.send(static_cast<uint32_t>(rng.below(64)),
                     static_cast<uint32_t>(rng.below(64)), 40,
                     now++));
    }
}
BENCHMARK(BM_NocSend);

static void
BM_EvalCombOp(benchmark::State &state)
{
    rtl::Netlist nl;
    rtl::NodeId a = nl.addInput("a", 32);
    rtl::NodeId b = nl.addInput("b", 32);
    rtl::Node n;
    n.op = rtl::Op::Mul;
    n.width = 32;
    n.operands = {a, b};
    uint64_t ops[2] = {12345, 6789};
    for (auto _ : state) {
        benchmark::DoNotOptimize(rtl::evalCombOp(n, nl, ops));
        ++ops[0];
    }
}
BENCHMARK(BM_EvalCombOp);

static void
BM_PartitionGraph(benchmark::State &state)
{
    partition::Graph g;
    size_t n = 2000;
    g.vertexWeight.assign(n, 1);
    g.adj.resize(n);
    Rng rng(4);
    for (size_t e = 0; e < 6000; ++e) {
        uint32_t u = static_cast<uint32_t>(rng.below(n));
        uint32_t v = static_cast<uint32_t>(rng.below(n));
        if (u != v)
            g.addEdge(u, v, 1);
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(partition::partitionGraph(g, 16));
}
BENCHMARK(BM_PartitionGraph)->Unit(benchmark::kMillisecond);

static void
BM_CompileVerilog(benchmark::State &state)
{
    const char *src = R"(
module top(input clk, input [15:0] x, output [15:0] y);
  reg [15:0] acc;
  always_ff @(posedge clk) acc <= acc + x * 16'd3;
  assign y = acc ^ (x >> 2);
endmodule
)";
    for (auto _ : state)
        benchmark::DoNotOptimize(
            verilog::compileVerilog(src, "top"));
}
BENCHMARK(BM_CompileVerilog)->Unit(benchmark::kMicrosecond);

/** Small fixed design for the jit kernel-cache microbenchmarks. */
static const rtl::Netlist &
jitMicroNetlist()
{
    static rtl::Netlist nl = verilog::compileVerilog(R"(
module top(input clk, input [31:0] x, output [31:0] y);
  reg [31:0] a;
  reg [31:0] b;
  always_ff @(posedge clk) a <= a + x;
  always_ff @(posedge clk) b <= b ^ (a << 1);
  assign y = a + b;
endmodule
)",
                                                     "top");
    return nl;
}

/**
 * Cold kernel acquisition: emit C++, invoke the host toolchain, and
 * dlopen — what the first-ever run of a design pays. Each iteration
 * uses a fresh cache directory (and drops the in-process registry) so
 * nothing is reused. Fixed iteration count: one toolchain invocation
 * per iteration is seconds-scale, not something to auto-tune.
 */
static void
BM_JitCompileCold(benchmark::State &state)
{
    const rtl::Netlist &nl = jitMicroNetlist();
    uint64_t seq = 0;
    for (auto _ : state) {
        state.PauseTiming();
        jit::KernelCache::instance().dropInMemory();
        std::filesystem::path dir =
            std::filesystem::temp_directory_path() /
            ("ash-jit-micro-cold-" + std::to_string(++seq));
        jit::JitOptions opts;
        opts.cacheDir = dir.string();
        std::string whyNot;
        state.ResumeTiming();
        jit::KernelPtr kernel =
            jit::KernelCache::instance().acquire(nl, opts, &whyNot);
        benchmark::DoNotOptimize(kernel);
        state.PauseTiming();
        if (!kernel)
            state.SkipWithError(whyNot.c_str());
        kernel.reset();
        std::filesystem::remove_all(dir);
        state.ResumeTiming();
    }
}
BENCHMARK(BM_JitCompileCold)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

/**
 * Warm-cache acquisition: the .so already exists on disk, so each
 * iteration pays validation (CRC sidecar) plus dlopen — what a second
 * process, or a CI run restoring the cache directory, pays instead of
 * a compile. The in-process registry is dropped each iteration to
 * force the disk path.
 */
static void
BM_JitCacheHitLoad(benchmark::State &state)
{
    const rtl::Netlist &nl = jitMicroNetlist();
    std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "ash-jit-micro-hit";
    jit::JitOptions opts;
    opts.cacheDir = dir.string();
    {
        std::string whyNot;
        jit::KernelPtr warm =
            jit::KernelCache::instance().acquire(nl, opts, &whyNot);
        if (!warm) {
            state.SkipWithError(whyNot.c_str());
            return;
        }
    }
    for (auto _ : state) {
        jit::KernelCache::instance().dropInMemory();
        jit::KernelPtr kernel =
            jit::KernelCache::instance().acquire(nl, opts);
        benchmark::DoNotOptimize(kernel);
    }
    std::filesystem::remove_all(dir);
}
BENCHMARK(BM_JitCacheHitLoad)->Unit(benchmark::kMillisecond);

/**
 * Per-task dispatch overhead of the work-stealing pool: submit+run
 * a batch of trivial tasks and wait. Time per iteration / batch size
 * is the round-trip cost of one submit through the shared-mutex
 * deques — the number that must stay far below the milliseconds a
 * real sweep job takes. Arg is the worker-thread count.
 */
static void
BM_ThreadPoolDispatch(benchmark::State &state)
{
    constexpr int kBatch = 256;
    exec::ThreadPool pool(
        static_cast<unsigned>(state.range(0)));
    std::atomic<uint64_t> sink{0};
    for (auto _ : state) {
        for (int i = 0; i < kBatch; ++i)
            pool.submit([&] {
                sink.fetch_add(1, std::memory_order_relaxed);
            });
        pool.wait();
    }
    state.SetItemsProcessed(state.iterations() * kBatch);
    benchmark::DoNotOptimize(sink.load());
}
BENCHMARK(BM_ThreadPoolDispatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/**
 * Sweep scaling shape: a fixed bundle of CPU-bound jobs (spin loops
 * sized like a small simulation kernel) through SweepRunner at
 * several worker counts. On a multi-core host the per-iteration time
 * should drop roughly linearly with the arg until it hits the core
 * count; on a 1-core host it stays flat, which bounds the framework's
 * own overhead.
 */
static void
BM_SweepRunnerScaling(benchmark::State &state)
{
    constexpr int kJobs = 8;
    for (auto _ : state) {
        exec::SweepOptions opts;
        opts.jobs = static_cast<unsigned>(state.range(0));
        exec::SweepRunner sweep(opts);
        std::atomic<uint64_t> sink{0};
        for (int j = 0; j < kJobs; ++j)
            sweep.add("micro/job" + std::to_string(j),
                      [&sink](exec::JobContext &ctx) {
                          uint64_t acc = ctx.seed();
                          for (int i = 0; i < 200000; ++i)
                              acc = acc * 6364136223846793005ull +
                                    1442695040888963407ull;
                          sink.fetch_add(
                              acc, std::memory_order_relaxed);
                      });
        sweep.run();
        benchmark::DoNotOptimize(sink.load());
    }
    state.SetItemsProcessed(state.iterations() * kJobs);
}
BENCHMARK(BM_SweepRunnerScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
