/**
 * @file
 * serve_load: closed-loop multi-client load generator for ash_served.
 * Spawns (or attaches to) a daemon and runs four phases:
 *
 *  1. COLD — a serial "seed" client touches each of K configs once
 *     (configs differ in TILE count, so each is a distinct compiled
 *     program and a genuine cold compile). These latencies are the
 *     cold baseline, and the result bytes seed the identity oracle.
 *  2. FLOOD — N concurrent clients each issue M requests rotating
 *     over the seeded configs; every one should be a memo hit. This
 *     is where memo p50/p99 come from, under real concurrency.
 *  3. WARM VERIFY — a serial "verify" client re-executes each
 *     config with nocache (forced run on the hot design cache) and
 *     checks the warm result bytes against the oracle.
 *  4. FAULT LEG (overlaps the flood) — a sacrificial "faulty"
 *     tenant whose jobs a fault plan kills; its errors must stay
 *     structured and must not disturb any other client.
 *  5. CHAOS LEG (--chaos-kill, overlaps the flood) — two more
 *     sacrificial tenants drive the worker pool's supervision paths:
 *     "chaos" has its worker SIGKILLed on alternating requests
 *     (every death must come back as a structured worker_crash on a
 *     LIVE connection, and a retry must succeed on the respawned
 *     worker), and "looper" crash-loops one design until its circuit
 *     breaker opens (circuit_open must appear). The gates: zero
 *     transport failures across both tenants, at least one
 *     worker_crash, at least one circuit_open, byte-identical result
 *     bytes throughout, and a clean daemon exit.
 *
 * The memoization contract is verified throughout: every response
 * for one cache key must carry byte-identical result bytes whether
 * cold, warm, or memo. In spawn mode the run fails unless
 * memo p99 * 10 <= cold p50.
 *
 * This bench does NOT go through the obs::Report determinism
 * machinery: latency numbers are timing by definition, so — like
 * BENCH_hostperf.json — the output goes to its own sink and is never
 * byte-compared.
 *
 *   serve_load --spawn PATH_TO_ASH_SERVED [--socket PATH]
 *              [--clients N] [--requests N] [--design NAME]
 *              [--engine E] [--tiles N] [--cycles N] [--configs K]
 *              [--out BENCH_serve.json] [--no-fault-leg]
 *              [--http-port N] [--state-dir DIR] [--workers N]
 *              [--keep-daemon]
 *   serve_load --socket PATH ...          # attach to a running daemon
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/Json.h"
#include "common/Logging.h"
#include "serve/Net.h"
#include "serve/Protocol.h"

using namespace ash;
using Clock = std::chrono::steady_clock;

namespace {

struct Options
{
    std::string spawnPath;       ///< ash_served binary; "" = attach.
    std::string socketPath;
    std::string stateDir;
    std::string outPath = "BENCH_serve.json";
    unsigned clients = 8;
    unsigned requestsPerClient = 125;
    unsigned configs = 4;        ///< Distinct tile-count points.
    std::string design = "ntt";
    std::string engine = "sash";
    uint32_t tiles = 8;          ///< Base tiles; configs step by 8.
    uint64_t cycles = 400;       ///< Fixed cycles for every config.
    unsigned workers = 0;        ///< Daemon workers (0 = default).
    bool faultLeg = true;
    bool chaosKill = false;      ///< Worker-kill chaos leg (pool).
    uint16_t httpPort = 0;       ///< Also smoke the HTTP endpoint.
    bool keepDaemon = false;     ///< Skip SIGTERM (external manage).
};

struct ClassAgg
{
    std::vector<double> latMs;
    void
    add(double v)
    {
        std::lock_guard<std::mutex> lock(mutex());
        latMs.push_back(v);
    }
    static std::mutex &
    mutex()
    {
        static std::mutex m;
        return m;
    }
    double
    pct(double p) const
    {
        if (latMs.empty())
            return 0.0;
        std::vector<double> s = latMs;
        std::sort(s.begin(), s.end());
        double rank = p * static_cast<double>(s.size() - 1);
        size_t lo = static_cast<size_t>(rank);
        size_t hi = lo + 1 < s.size() ? lo + 1 : lo;
        return s[lo] + (s[hi] - s[lo]) * (rank - double(lo));
    }
    double
    mean() const
    {
        double t = 0;
        for (double v : latMs)
            t += v;
        return latMs.empty() ? 0.0
                             : t / static_cast<double>(latMs.size());
    }
};

struct Totals
{
    ClassAgg cold, warm, memo;
    std::atomic<uint64_t> ok{0};
    std::atomic<uint64_t> errors{0};
    std::atomic<uint64_t> faultErrors{0};
    std::atomic<uint64_t> verified{0};
    std::atomic<uint64_t> mismatches{0};

    // Chaos-leg accounting (--chaos-kill).
    std::atomic<uint64_t> chaosAnswered{0};
    std::atomic<uint64_t> chaosTransport{0};
    std::atomic<uint64_t> chaosCrashes{0};
    std::atomic<uint64_t> chaosCircuitOpen{0};
    std::atomic<uint64_t> chaosRecovered{0};

    /** key -> first-seen result bytes (the byte-identity oracle). */
    std::mutex oracleMutex;
    std::map<std::string, std::string> oracle;
};

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--spawn ASH_SERVED] [--socket PATH]\n"
                 "  [--clients N] [--requests N] [--configs K]\n"
                 "  [--design NAME] [--engine E] [--tiles N]\n"
                 "  [--cycles N] [--workers N] [--out PATH]\n"
                 "  [--state-dir DIR] [--no-fault-leg] [--chaos-kill]\n"
                 "  [--http-port N] [--keep-daemon]\n",
                 argv0);
    return 2;
}

/** Issue one request over @p fd; returns false on transport error. */
bool
roundTrip(int fd, serve::net::LineReader &reader,
          const serve::SimRequest &req, std::string &envelopeOut)
{
    if (!serve::net::writeAll(fd, serve::serializeRequest(req) + "\n"))
        return false;
    return reader.readLine(envelopeOut, nullptr, 10 * 60 * 1000) == 1;
}

/**
 * Check the memoization contract on @p envelope: all responses with
 * one cache key carry byte-identical result bytes regardless of
 * class. First sighting of a key seeds the oracle.
 */
void
verifyEnvelope(Totals &totals, const std::string &envelope)
{
    std::string result;
    if (!serve::extractResult(envelope, result))
        return;
    // The key is inside the result payload ("key":"<fp>-<cfg>").
    size_t at = envelope.find("\"key\": \"");
    if (at == std::string::npos)
        return;
    size_t begin = at + 8;
    size_t end = envelope.find('"', begin);
    std::string key = envelope.substr(begin, end - begin);

    std::lock_guard<std::mutex> lock(totals.oracleMutex);
    auto [it, inserted] = totals.oracle.emplace(key, result);
    if (inserted)
        return;
    ++totals.verified;
    if (it->second != result)
        ++totals.mismatches;
}

/** Config k's tile count: distinct tiles => distinct programs, so
 *  each config's first-ever request is a genuine cold compile. */
uint32_t
configTiles(const Options &opts, unsigned k)
{
    return opts.tiles + 8 * (k % opts.configs);
}

/** Record one classified response into the per-class aggregates. */
void
recordEnvelope(Totals &totals, const std::string &envelope, double ms)
{
    std::string cls = serve::extractCacheClass(envelope);
    if (cls == "cold")
        totals.cold.add(ms);
    else if (cls == "warm")
        totals.warm.add(ms);
    else if (cls == "memo")
        totals.memo.add(ms);
    if (cls.empty()) {
        totals.errors.fetch_add(1);
    } else {
        totals.ok.fetch_add(1);
        verifyEnvelope(totals, envelope);
    }
}

/**
 * Serial phase from one dedicated client: touch every config once.
 * Runs uncontended, so its latencies are a clean baseline — cold
 * when the daemon is fresh (phase 1), warm when @p nocache forces
 * execution against the hot design cache (phase 3).
 */
bool
serialPhase(const Options &opts, const char *clientName, bool nocache,
            Totals &totals)
{
    std::string err;
    int fd = serve::net::connectUnix(opts.socketPath, &err);
    if (fd < 0) {
        warn("client %s: %s", clientName, err.c_str());
        return false;
    }
    serve::net::LineReader reader(fd);
    serve::SimRequest req;
    req.client = clientName;
    req.design = opts.design;
    req.engine = opts.engine;
    req.cycles = opts.cycles;
    req.nocache = nocache;
    bool ok = true;
    for (unsigned k = 0; k < opts.configs; ++k) {
        req.tiles = configTiles(opts, k);
        req.id = k;
        Clock::time_point t0 = Clock::now();
        std::string envelope;
        if (!roundTrip(fd, reader, req, envelope)) {
            warn("client %s: transport failure at config %u",
                 clientName, k);
            ok = false;
            break;
        }
        double ms = std::chrono::duration<double, std::milli>(
                        Clock::now() - t0)
                        .count();
        recordEnvelope(totals, envelope, ms);
    }
    ::close(fd);
    return ok;
}

void
clientLoop(const Options &opts, unsigned clientIdx, Totals &totals,
           std::atomic<bool> &abort)
{
    std::string err;
    int fd = serve::net::connectUnix(opts.socketPath, &err);
    if (fd < 0) {
        warn("client c%u: %s", clientIdx, err.c_str());
        abort.store(true);
        return;
    }
    serve::net::LineReader reader(fd);

    serve::SimRequest req;
    req.client = "c" + std::to_string(clientIdx);
    req.design = opts.design;
    req.engine = opts.engine;
    req.cycles = opts.cycles;

    for (unsigned j = 0; j < opts.requestsPerClient; ++j) {
        if (abort.load(std::memory_order_relaxed))
            break;
        // Rotate over the configs the cold phase seeded: every
        // request should be a memo hit, answered inline without
        // touching the queue or an engine.
        req.tiles = configTiles(opts, j + clientIdx);
        req.id = j;

        Clock::time_point t0 = Clock::now();
        std::string envelope;
        if (!roundTrip(fd, reader, req, envelope)) {
            warn("client %s: transport failure at request %u",
                 req.client.c_str(), j);
            break;
        }
        double ms = std::chrono::duration<double, std::milli>(
                        Clock::now() - t0)
                        .count();
        recordEnvelope(totals, envelope, ms);
    }
    ::close(fd);
}

/** The sacrificial tenant every fault-plan rule targets. */
void
faultLoop(const Options &opts, Totals &totals)
{
    std::string err;
    int fd = serve::net::connectUnix(opts.socketPath, &err);
    if (fd < 0)
        return;
    serve::net::LineReader reader(fd);
    serve::SimRequest req;
    req.client = "faulty";
    req.design = opts.design;
    req.engine = opts.engine;
    req.tiles = opts.tiles;
    req.nocache = true;   // Always execute: memo would dodge faults.
    for (unsigned j = 0; j < 8; ++j) {
        req.cycles = opts.cycles + j;   // Distinct keys.
        req.id = j;
        std::string envelope;
        if (!roundTrip(fd, reader, req, envelope))
            break;
        if (envelope.rfind("{\"ok\": false", 0) == 0)
            totals.faultErrors.fetch_add(1);
    }
    ::close(fd);
}

/**
 * The "chaos" tenant: its worker is SIGKILLed on alternating
 * requests (pool.worker.kill, after=1:every=2). Every kill must
 * surface as a structured worker_crash envelope on the SAME still-
 * open connection — the daemon, not the connection, owns the blast
 * radius — and retrying the key must succeed on the respawned
 * worker. Successful results flow into the global byte-identity
 * oracle, then a memo re-read of each key cross-checks that the
 * supervisor memoized exactly the bytes it answered.
 */
void
chaosLoop(const Options &opts, Totals &totals)
{
    std::string err;
    int fd = serve::net::connectUnix(opts.socketPath, &err);
    if (fd < 0) {
        totals.chaosTransport.fetch_add(1);
        return;
    }
    serve::net::LineReader reader(fd);
    serve::SimRequest req;
    req.client = "chaos";
    req.design = "vortex";   // Own design: its breaker is its own.
    req.engine = opts.engine;
    req.tiles = 4;
    for (unsigned k = 0; k < 6; ++k) {
        req.cycles = 64 + k;   // One distinct key per k.
        bool okSeen = false;
        for (unsigned attempt = 0; attempt < 6 && !okSeen;
             ++attempt) {
            req.nocache = true;   // Memo would dodge the kill site.
            req.id = k * 16 + attempt;
            std::string envelope;
            if (!roundTrip(fd, reader, req, envelope)) {
                totals.chaosTransport.fetch_add(1);
                ::close(fd);
                return;
            }
            totals.chaosAnswered.fetch_add(1);
            if (envelope.rfind("{\"ok\": true", 0) == 0) {
                okSeen = true;
                if (attempt > 0)
                    totals.chaosRecovered.fetch_add(1);
                recordEnvelope(totals, envelope, 0.0);
            } else if (envelope.find("worker_crash") !=
                       std::string::npos) {
                totals.chaosCrashes.fetch_add(1);
            } else if (envelope.find("circuit_open") !=
                       std::string::npos) {
                totals.chaosCircuitOpen.fetch_add(1);
                // Wait out the breaker cooldown before probing.
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(600));
            }
        }
        if (okSeen) {
            // Memo re-read: the supervisor-side memoization of a
            // crash-adjacent key must serve the exact bytes the
            // execution answered (checked via the oracle).
            req.nocache = false;
            req.id = k * 16 + 15;
            std::string envelope;
            if (!roundTrip(fd, reader, req, envelope)) {
                totals.chaosTransport.fetch_add(1);
                ::close(fd);
                return;
            }
            totals.chaosAnswered.fetch_add(1);
            recordEnvelope(totals, envelope, 0.0);
        }
    }
    ::close(fd);
}

/**
 * The "looper" tenant: EVERY request kills its worker, so the design
 * crash-loops until its per-design circuit breaker opens. The gate:
 * circuit_open must appear (quarantine engaged) while every envelope
 * stays structured on a live connection.
 */
void
looperLoop(const Options &opts, Totals &totals)
{
    std::string err;
    int fd = serve::net::connectUnix(opts.socketPath, &err);
    if (fd < 0) {
        totals.chaosTransport.fetch_add(1);
        return;
    }
    serve::net::LineReader reader(fd);
    serve::SimRequest req;
    req.client = "looper";
    req.design = "chronos_pe";   // Distinct design = distinct breaker.
    req.engine = opts.engine;
    req.tiles = 4;
    req.cycles = 32;
    req.nocache = true;
    for (unsigned j = 0; j < 8; ++j) {
        req.id = j;
        std::string envelope;
        if (!roundTrip(fd, reader, req, envelope)) {
            totals.chaosTransport.fetch_add(1);
            ::close(fd);
            return;
        }
        totals.chaosAnswered.fetch_add(1);
        if (envelope.find("worker_crash") != std::string::npos)
            totals.chaosCrashes.fetch_add(1);
        else if (envelope.find("circuit_open") != std::string::npos)
            totals.chaosCircuitOpen.fetch_add(1);
    }
    ::close(fd);
}

/** One HTTP POST /sim round trip (smoke for the TCP endpoint). */
bool
httpRoundTrip(uint16_t port, const serve::SimRequest &req)
{
    std::string err;
    int fd = serve::net::connectTcp(port, &err);
    if (fd < 0)
        return false;
    std::string body = serve::serializeRequest(req);
    std::string http = "POST /sim HTTP/1.1\r\nHost: localhost\r\n"
                       "Content-Length: " +
                       std::to_string(body.size()) + "\r\n\r\n" + body;
    bool ok = serve::net::writeAll(fd, http);
    std::string line;
    serve::net::LineReader reader(fd);
    ok = ok && reader.readLine(line, nullptr, 60000) == 1 &&
         line.rfind("HTTP/1.1 200", 0) == 0;
    ::close(fd);
    return ok;
}

pid_t
spawnDaemon(const Options &opts)
{
    pid_t pid = fork();
    if (pid != 0)
        return pid;
    std::vector<std::string> args = {opts.spawnPath, "--socket",
                                     opts.socketPath};
    if (!opts.stateDir.empty()) {
        args.push_back("--state-dir");
        args.push_back(opts.stateDir);
    }
    if (opts.workers != 0) {
        args.push_back("--workers");
        args.push_back(std::to_string(opts.workers));
    }
    std::string plan;
    if (opts.faultLeg) {
        // Every job of the tenant named "faulty" dies; nobody else
        // matches the scope.
        plan = "job.body@serve/faulty/:error";
    }
    if (opts.chaosKill) {
        // Worker-kill chaos: alternating kills for "chaos" (per
        // worker: the first request survives, the second dies, ...),
        // and an unconditional crash loop for "looper". Scopes are
        // client-keyed, so the flood and the seed/verify phases
        // never match.
        if (!plan.empty())
            plan += ";";
        plan += "pool.worker.kill@serve/chaos/:kill:after=1:every=2;"
                "pool.worker.kill@serve/looper/:kill";
        // A tight breaker so the looper quarantines within the run.
        args.push_back("--breaker-k");
        args.push_back("3");
        args.push_back("--breaker-cooldown-ms");
        args.push_back("500");
    }
    if (!plan.empty()) {
        args.push_back("--fault-plan");
        args.push_back(plan);
    }
    if (opts.httpPort != 0) {
        args.push_back("--http");
        args.push_back(std::to_string(opts.httpPort));
    }
    std::vector<char *> argv;
    for (std::string &a : args)
        argv.push_back(a.data());
    argv.push_back(nullptr);
    execv(argv[0], argv.data());
    std::fprintf(stderr, "serve_load: cannot exec %s\n",
                 opts.spawnPath.c_str());
    _exit(127);
}

bool
waitForSocket(const std::string &path, int timeoutMs)
{
    Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(timeoutMs);
    while (Clock::now() < deadline) {
        std::string err;
        int fd = serve::net::connectUnix(path, &err);
        if (fd >= 0) {
            ::close(fd);
            return true;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto value = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        const char *v;
        if (std::strcmp(arg, "--spawn") == 0 && (v = value()))
            opts.spawnPath = v;
        else if (std::strcmp(arg, "--socket") == 0 && (v = value()))
            opts.socketPath = v;
        else if (std::strcmp(arg, "--clients") == 0 && (v = value()))
            opts.clients = static_cast<unsigned>(std::atoi(v));
        else if (std::strcmp(arg, "--requests") == 0 && (v = value()))
            opts.requestsPerClient =
                static_cast<unsigned>(std::atoi(v));
        else if (std::strcmp(arg, "--configs") == 0 && (v = value()))
            opts.configs =
                std::max(1u, static_cast<unsigned>(std::atoi(v)));
        else if (std::strcmp(arg, "--design") == 0 && (v = value()))
            opts.design = v;
        else if (std::strcmp(arg, "--engine") == 0 && (v = value()))
            opts.engine = v;
        else if (std::strcmp(arg, "--tiles") == 0 && (v = value()))
            opts.tiles = static_cast<uint32_t>(std::atoi(v));
        else if (std::strcmp(arg, "--cycles") == 0 && (v = value()))
            opts.cycles = static_cast<uint64_t>(std::atoll(v));
        else if (std::strcmp(arg, "--workers") == 0 && (v = value()))
            opts.workers = static_cast<unsigned>(std::atoi(v));
        else if (std::strcmp(arg, "--out") == 0 && (v = value()))
            opts.outPath = v;
        else if (std::strcmp(arg, "--state-dir") == 0 && (v = value()))
            opts.stateDir = v;
        else if (std::strcmp(arg, "--no-fault-leg") == 0)
            opts.faultLeg = false;
        else if (std::strcmp(arg, "--chaos-kill") == 0)
            opts.chaosKill = true;
        else if (std::strcmp(arg, "--http-port") == 0 && (v = value()))
            opts.httpPort = static_cast<uint16_t>(std::atoi(v));
        else if (std::strcmp(arg, "--keep-daemon") == 0)
            opts.keepDaemon = true;
        else
            return usage(argv[0]);
    }
    if (opts.socketPath.empty())
        opts.socketPath =
            "/tmp/ash-serve-" + std::to_string(getpid()) + ".sock";

    pid_t daemon = -1;
    if (!opts.spawnPath.empty()) {
        daemon = spawnDaemon(opts);
        if (daemon < 0) {
            std::fprintf(stderr, "serve_load: fork failed\n");
            return 1;
        }
    }
    if (!waitForSocket(opts.socketPath, 30000)) {
        std::fprintf(stderr, "serve_load: daemon never came up on %s\n",
                     opts.socketPath.c_str());
        if (daemon > 0)
            kill(daemon, SIGKILL);
        return 1;
    }

    inform("serve_load: %u client(s) x %u request(s) against %s",
           opts.clients, opts.requestsPerClient,
           opts.socketPath.c_str());

    Totals totals;
    std::atomic<bool> abort{false};
    Clock::time_point t0 = Clock::now();

    // Phase 1: cold baseline — serial, uncontended, cache empty.
    if (!serialPhase(opts, "seed", false, totals)) {
        if (daemon > 0)
            kill(daemon, SIGKILL);
        return 1;
    }

    // Phase 2: the memo flood (+ overlapping fault leg).
    std::vector<std::thread> threads;
    for (unsigned c = 0; c < opts.clients; ++c)
        threads.emplace_back([&opts, c, &totals, &abort] {
            clientLoop(opts, c, totals, abort);
        });
    std::thread faulter;
    if (opts.faultLeg)
        faulter = std::thread([&opts, &totals] {
            faultLoop(opts, totals);
        });
    std::thread chaoser, looper;
    if (opts.chaosKill) {
        chaoser = std::thread([&opts, &totals] {
            chaosLoop(opts, totals);
        });
        looper = std::thread([&opts, &totals] {
            looperLoop(opts, totals);
        });
    }
    for (std::thread &t : threads)
        t.join();
    if (faulter.joinable())
        faulter.join();
    if (chaoser.joinable())
        chaoser.join();
    if (looper.joinable())
        looper.join();

    // Phase 3: warm verify — forced execution on the hot cache must
    // reproduce the cold bytes exactly.
    serialPhase(opts, "verify", true, totals);

    double elapsedMs = std::chrono::duration<double, std::milli>(
                           Clock::now() - t0)
                           .count();

    // The daemon must still be healthy after the fault leg: one more
    // request has to succeed.
    bool aliveAfterFaults = false;
    {
        std::string err;
        int fd = serve::net::connectUnix(opts.socketPath, &err);
        if (fd >= 0) {
            serve::net::LineReader reader(fd);
            serve::SimRequest ping;
            ping.op = "ping";
            ping.client = "health";
            std::string envelope;
            aliveAfterFaults =
                roundTrip(fd, reader, ping, envelope) &&
                envelope.rfind("{\"ok\": true", 0) == 0;
            ::close(fd);
        }
    }

    bool httpOk = true;
    if (opts.httpPort != 0) {
        serve::SimRequest hreq;
        hreq.client = "http";
        hreq.design = opts.design;
        hreq.engine = opts.engine;
        hreq.tiles = opts.tiles;
        hreq.cycles = opts.cycles;
        httpOk = httpRoundTrip(opts.httpPort, hreq);
        if (!httpOk)
            warn("serve_load: HTTP endpoint smoke failed");
    }

    int exitCode = httpOk ? 0 : 1;
    int daemonExit = -1;
    if (daemon > 0 && !opts.keepDaemon) {
        // Graceful drain: SIGTERM, daemon must exit 0.
        kill(daemon, SIGTERM);
        int status = 0;
        if (waitpid(daemon, &status, 0) == daemon &&
            WIFEXITED(status))
            daemonExit = WEXITSTATUS(status);
        if (daemonExit != 0) {
            warn("serve_load: daemon exit %d (want 0)", daemonExit);
            exitCode = 1;
        }
    }

    uint64_t total = totals.ok.load() + totals.errors.load();
    double memoP99 = totals.memo.pct(0.99);
    double coldP50 = totals.cold.pct(0.50);
    bool memoFast = !totals.memo.latMs.empty() &&
                    !totals.cold.latMs.empty() &&
                    memoP99 * 10.0 <= coldP50;
    if (daemon > 0 && !memoFast) {
        // Spawn mode started from an empty cache, so the cold
        // baseline is real; the memo edge is an acceptance gate.
        warn("serve_load: memo p99 %.3f ms not 10x under cold p50 "
             "%.3f ms",
             memoP99, coldP50);
        exitCode = 1;
    }

    if (totals.mismatches.load() != 0) {
        warn("serve_load: %llu memoized result(s) were NOT "
             "byte-identical",
             (unsigned long long)totals.mismatches.load());
        exitCode = 1;
    }
    if (!aliveAfterFaults) {
        warn("serve_load: daemon unhealthy after fault leg");
        exitCode = 1;
    }
    if (opts.faultLeg && daemon > 0 &&
        totals.faultErrors.load() == 0) {
        // The spawn-mode fault plan targets the "faulty" tenant on
        // every job; zero structured errors means the plan never
        // reached the job body.
        warn("serve_load: fault leg produced no structured errors");
        exitCode = 1;
    }
    if (opts.chaosKill && daemon > 0) {
        // The supervision gates: every chaos request was ANSWERED
        // (a worker death never cost a connection), kills really
        // happened and came back structured, and the crash-looping
        // design was quarantined by its breaker.
        if (totals.chaosTransport.load() != 0) {
            warn("serve_load: %llu chaos transport failure(s) — a "
                 "worker death leaked to a connection",
                 (unsigned long long)totals.chaosTransport.load());
            exitCode = 1;
        }
        if (totals.chaosCrashes.load() == 0) {
            warn("serve_load: chaos leg produced no worker_crash");
            exitCode = 1;
        }
        if (totals.chaosCircuitOpen.load() == 0) {
            warn("serve_load: crash loop never tripped the circuit "
                 "breaker");
            exitCode = 1;
        }
    }

    JsonWriter w(true);
    w.beginObject();
    w.kv("bench", "serve_load");
    w.kv("design", opts.design);
    w.kv("engine", opts.engine);
    w.kv("tiles", opts.tiles);
    w.kv("clients", opts.clients);
    w.kv("requests_per_client", opts.requestsPerClient);
    w.kv("total_requests", total);
    w.kv("elapsed_ms", elapsedMs);
    w.kv("throughput_rps", elapsedMs > 0.0
                               ? double(total) * 1000.0 / elapsedMs
                               : 0.0);
    auto classObj = [&](const char *name, const ClassAgg &agg) {
        w.key(name).beginObject();
        w.kv("count", static_cast<uint64_t>(agg.latMs.size()));
        w.kv("p50_ms", agg.pct(0.50));
        w.kv("p99_ms", agg.pct(0.99));
        w.kv("mean_ms", agg.mean());
        w.endObject();
    };
    w.key("classes").beginObject();
    classObj("cold", totals.cold);
    classObj("warm", totals.warm);
    classObj("memo", totals.memo);
    w.endObject();
    w.key("verify").beginObject();
    w.kv("checked", totals.verified.load());
    w.kv("mismatches", totals.mismatches.load());
    w.endObject();
    w.key("faults").beginObject();
    w.kv("leg_enabled", opts.faultLeg);
    w.kv("fault_errors", totals.faultErrors.load());
    w.kv("alive_after", aliveAfterFaults);
    w.endObject();
    w.key("chaos").beginObject();
    w.kv("enabled", opts.chaosKill);
    w.kv("answered", totals.chaosAnswered.load());
    w.kv("transport_failures", totals.chaosTransport.load());
    w.kv("worker_crashes", totals.chaosCrashes.load());
    w.kv("circuit_open", totals.chaosCircuitOpen.load());
    w.kv("recovered_after_crash", totals.chaosRecovered.load());
    w.endObject();
    w.kv("memo_p99_ms", memoP99);
    w.kv("cold_p50_ms", coldP50);
    w.kv("memo_p99_10x_under_cold_p50", memoFast);
    w.kv("daemon_exit", static_cast<int64_t>(daemonExit));
    w.endObject();
    std::string doc = w.str();

    std::FILE *f = std::fopen(opts.outPath.c_str(), "w");
    if (!f) {
        warn("serve_load: cannot write %s", opts.outPath.c_str());
        return 1;
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    inform("serve_load: wrote %s (memo p99 %.3f ms, cold p50 %.1f "
           "ms, %llu ok / %llu errors)",
           opts.outPath.c_str(), memoP99, coldP50,
           (unsigned long long)totals.ok.load(),
           (unsigned long long)totals.errors.load());
    return exitCode;
}
