/**
 * @file
 * Figure 11 reproduction: speedup of the baseline, DASH, and SASH
 * over serial simulation as the system grows from 4 to 256 cores
 * (1 to 64 tiles, 4 cores each).
 *
 * The 4 designs x 5 tile counts x 3 systems grid is 60 independent
 * simulations; they fan out across host threads as ash_exec sweep
 * jobs (one per design/tile-count point, plus one serial-reference
 * job per design) and the tables are printed from the merged results,
 * so output is identical at any --jobs count.
 */

#include <array>
#include <cstdio>

#include "BenchCommon.h"

using namespace ash;

int
main(int argc, char **argv)
{
    if (!bench::init("fig11_scalability", argc, argv))
        return 1;
    bench::banner("Figure 11: scalability, speedup over 1-core "
                  "serial simulation");

    constexpr std::array<uint32_t, 5> tile_counts{1, 4, 16, 32, 64};

    auto &designs = bench::DesignSet::standard().entries();

    struct Cell
    {
        double base = 0.0;
        double dash = 0.0;
        double sash = 0.0;
    };
    std::vector<double> serial(designs.size(), 0.0);
    std::vector<std::array<Cell, tile_counts.size()>> cells(
        designs.size());

    // Jobs publish through the JobContext, so the sweep is
    // resumable: --resume replays completed points from disk.
    exec::SweepRunner sweep(bench::sweepOptions());
    for (size_t di = 0; di < designs.size(); ++di) {
        const std::string &name = designs[di].design.name;
        sweep.addResumable(
            "fig11/" + name + "/serial",
            [&, di](exec::JobContext &ctx) {
                ctx.publish("khz",
                            baseline::runBaseline(
                                designs[di].netlist,
                                baseline::simBaselineHost(1))
                                .speedKHz);
            });
        for (size_t ti = 0; ti < tile_counts.size(); ++ti) {
            uint32_t tiles = tile_counts[ti];
            sweep.addResumable(
                "fig11/" + name + "/t" + std::to_string(tiles),
                [&, di, tiles](exec::JobContext &ctx) {
                    auto &entry = designs[di];
                    const rtl::Netlist &nl = entry.netlist;
                    ctx.publish("base",
                                baseline::runBaseline(
                                    nl, baseline::simBaselineHost(
                                            tiles * 4))
                                    .speedKHz);
                    core::TaskProgram prog =
                        bench::compileFor(nl, tiles);
                    core::ArchConfig dcfg;
                    ctx.publish("dash",
                                bench::runAsh(prog, entry.design,
                                              dcfg)
                                    .speedKHz());
                    core::ArchConfig scfg;
                    scfg.selective = true;
                    ctx.publish("sash",
                                bench::runAsh(prog, entry.design,
                                              scfg)
                                    .speedKHz());
                });
        }
    }
    bench::runSweep(sweep);

    constexpr size_t jobs_per_design = 1 + tile_counts.size();
    for (size_t di = 0; di < designs.size(); ++di) {
        serial[di] = sweep.job(di * jobs_per_design)
                         .publishedValue("khz");
        for (size_t ti = 0; ti < tile_counts.size(); ++ti) {
            const exec::JobContext &job =
                sweep.job(di * jobs_per_design + 1 + ti);
            cells[di][ti] = {job.publishedValue("base"),
                             job.publishedValue("dash"),
                             job.publishedValue("sash")};
        }
    }

    for (size_t di = 0; di < designs.size(); ++di) {
        auto &entry = designs[di];
        double serial_khz = serial[di];
        TextTable table({"cores", "baseline", "DASH", "SASH"});
        for (size_t ti = 0; ti < tile_counts.size(); ++ti) {
            uint32_t cores = tile_counts[ti] * 4;
            const Cell &c = cells[di][ti];
            table.addRow(
                {TextTable::integer(cores),
                 TextTable::speedup(c.base / serial_khz, 1),
                 TextTable::speedup(c.dash / serial_khz, 1),
                 TextTable::speedup(c.sash / serial_khz, 1)});
            const std::string key = entry.design.name + ".c" +
                                    std::to_string(cores);
            bench::record("speedup.baseline." + key,
                          c.base / serial_khz);
            bench::record("speedup.dash." + key,
                          c.dash / serial_khz);
            bench::record("speedup.sash." + key,
                          c.sash / serial_khz);
        }
        std::printf("-- %s (activity %.0f%%) --\n%s\n",
                    entry.design.name.c_str(), entry.activity * 100,
                    table.toString().c_str());
    }
    std::printf("Expected shape (paper Fig 11): DASH/SASH keep "
                "scaling with cores while the baseline saturates "
                "early; SASH leads where activity is low.\n");

    // Optional lane-batched scenario study (--scenarios N, --lanes W).
    bench::scenarioStudy("fig11/scn");
    return bench::finish();
}
