/**
 * @file
 * Figure 11 reproduction: speedup of the baseline, DASH, and SASH
 * over serial simulation as the system grows from 4 to 256 cores
 * (1 to 64 tiles, 4 cores each).
 */

#include <cstdio>

#include "BenchCommon.h"

using namespace ash;

int
main(int argc, char **argv)
{
    if (!bench::init("fig11_scalability", argc, argv))
        return 1;
    bench::banner("Figure 11: scalability, speedup over 1-core "
                  "serial simulation");

    const uint32_t tile_counts[] = {1, 4, 16, 32, 64};

    for (auto &entry : bench::DesignSet::standard().entries()) {
        const rtl::Netlist &nl = entry.netlist;
        double serial_khz = baseline::runBaseline(
                                nl, baseline::simBaselineHost(1))
                                .speedKHz;

        TextTable table({"cores", "baseline", "DASH", "SASH"});
        for (uint32_t tiles : tile_counts) {
            uint32_t cores = tiles * 4;
            double base_khz = baseline::runBaseline(
                                  nl,
                                  baseline::simBaselineHost(cores))
                                  .speedKHz;
            core::TaskProgram prog = bench::compileFor(nl, tiles);
            core::ArchConfig dcfg;
            double dash_khz =
                bench::runAsh(prog, entry.design, dcfg).speedKHz();
            core::ArchConfig scfg;
            scfg.selective = true;
            double sash_khz =
                bench::runAsh(prog, entry.design, scfg).speedKHz();
            table.addRow(
                {TextTable::integer(cores),
                 TextTable::speedup(base_khz / serial_khz, 1),
                 TextTable::speedup(dash_khz / serial_khz, 1),
                 TextTable::speedup(sash_khz / serial_khz, 1)});
            const std::string key = entry.design.name + ".c" +
                                    std::to_string(cores);
            bench::record("speedup.baseline." + key,
                          base_khz / serial_khz);
            bench::record("speedup.dash." + key,
                          dash_khz / serial_khz);
            bench::record("speedup.sash." + key,
                          sash_khz / serial_khz);
        }
        std::printf("-- %s (activity %.0f%%) --\n%s\n",
                    entry.design.name.c_str(), entry.activity * 100,
                    table.toString().c_str());
    }
    std::printf("Expected shape (paper Fig 11): DASH/SASH keep "
                "scaling with cores while the baseline saturates "
                "early; SASH leads where activity is low.\n");
    return bench::finish();
}
