/**
 * @file
 * Figure 18 reproduction: factor analysis. Starting from the best
 * parallel software baseline, add: hardware dataflow on the
 * single-cycle graph (+hw df), the unrolled dataflow graph (+unroll),
 * partition-aware mapping and coarsening (+mapping = DASH), and
 * selective execution (+selective = SASH).
 */

#include <cstdio>

#include "BenchCommon.h"

using namespace ash;

int
main(int argc, char **argv)
{
    if (!bench::init("fig18_factor", argc, argv))
        return 1;
    bench::banner("Figure 18: factor analysis, gmean speedup over "
                  "best parallel baseline");

    struct Step
    {
        const char *name;
        bool unrolled;
        bool mapping;
        bool selective;
    };
    Step steps[] = {{"+hw df", false, false, false},
                    {"+unroll", true, false, false},
                    {"+mapping (DASH)", true, true, false},
                    {"+selective (SASH)", true, true, true}};

    std::map<std::string, std::vector<double>> ratios;
    for (auto &entry : bench::DesignSet::standard().entries()) {
        const rtl::Netlist &nl = entry.netlist;
        double best_base = 0;
        for (uint32_t t : {4u, 16u, 64u, 128u})
            best_base = std::max(
                best_base, baseline::runBaseline(
                               nl, baseline::simBaselineHost(t))
                               .speedKHz);

        for (const Step &step : steps) {
            core::CompilerOptions copts;
            copts.unrolled = step.unrolled;
            copts.useMapping = step.mapping;
            core::TaskProgram prog =
                bench::compileFor(nl, 64, copts);
            core::ArchConfig cfg;
            cfg.selective = step.selective;
            double khz =
                bench::runAsh(prog, entry.design, cfg).speedKHz();
            ratios[step.name].push_back(khz / best_base);
        }
    }

    TextTable table({"configuration", "gmean speedup"});
    table.addRow({"parallel baseline", "1.0x"});
    for (const Step &step : steps) {
        table.addRow({step.name,
                      TextTable::speedup(
                          bench::gmeanOf(ratios[step.name]), 1)});
        bench::record(std::string("gmean_speedup.") + step.name,
                      bench::gmeanOf(ratios[step.name]));
    }
    std::printf("%s", table.toString().c_str());
    std::printf("\nExpected shape (paper Fig 18): each step adds a "
                "substantial gain, with unrolling and mapping "
                "enabling dataflow hardware to pull away.\n");
    return bench::finish();
}
