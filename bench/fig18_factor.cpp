/**
 * @file
 * Figure 18 reproduction: factor analysis. Starting from the best
 * parallel software baseline, add: hardware dataflow on the
 * single-cycle graph (+hw df), the unrolled dataflow graph (+unroll),
 * partition-aware mapping and coarsening (+mapping = DASH), and
 * selective execution (+selective = SASH).
 *
 * One ash_exec sweep job per design for the best-baseline search and
 * one per (design, step) point; ratios, gmeans, and printing happen
 * after the merge barrier.
 */

#include <cstdio>

#include "BenchCommon.h"

using namespace ash;

namespace {

struct Step
{
    const char *name;
    bool unrolled;
    bool mapping;
    bool selective;
};

constexpr Step kSteps[] = {{"+hw df", false, false, false},
                           {"+unroll", true, false, false},
                           {"+mapping (DASH)", true, true, false},
                           {"+selective (SASH)", true, true, true}};
constexpr size_t kNumSteps = 4;

} // namespace

int
main(int argc, char **argv)
{
    if (!bench::init("fig18_factor", argc, argv))
        return 1;
    bench::banner("Figure 18: factor analysis, gmean speedup over "
                  "best parallel baseline");

    auto &designs = bench::DesignSet::standard().entries();
    std::vector<double> best_base(designs.size(), 0.0);
    std::vector<std::array<double, kNumSteps>> khz(designs.size());

    exec::SweepRunner sweep(bench::sweepOptions());
    for (size_t di = 0; di < designs.size(); ++di) {
        const std::string &name = designs[di].design.name;
        sweep.add("fig18/" + name + "/baseline",
                  [&, di](exec::JobContext &) {
                      double best = 0;
                      for (uint32_t t : {4u, 16u, 64u, 128u})
                          best = std::max(
                              best,
                              baseline::runBaseline(
                                  designs[di].netlist,
                                  baseline::simBaselineHost(t))
                                  .speedKHz);
                      best_base[di] = best;
                  });
        for (size_t si = 0; si < kNumSteps; ++si) {
            sweep.add("fig18/" + name + "/" + kSteps[si].name,
                      [&, di, si](exec::JobContext &) {
                          auto &entry = designs[di];
                          core::CompilerOptions copts;
                          copts.unrolled = kSteps[si].unrolled;
                          copts.useMapping = kSteps[si].mapping;
                          core::TaskProgram prog = bench::compileFor(
                              entry.netlist, 64, copts);
                          core::ArchConfig cfg;
                          cfg.selective = kSteps[si].selective;
                          khz[di][si] = bench::runAsh(prog,
                                                      entry.design,
                                                      cfg)
                                            .speedKHz();
                      });
        }
    }
    bench::runSweep(sweep);

    std::map<std::string, std::vector<double>> ratios;
    for (size_t di = 0; di < designs.size(); ++di)
        for (size_t si = 0; si < kNumSteps; ++si)
            ratios[kSteps[si].name].push_back(khz[di][si] /
                                              best_base[di]);

    TextTable table({"configuration", "gmean speedup"});
    table.addRow({"parallel baseline", "1.0x"});
    for (const Step &step : kSteps) {
        table.addRow({step.name,
                      TextTable::speedup(
                          bench::gmeanOf(ratios[step.name]), 1)});
        bench::record(std::string("gmean_speedup.") + step.name,
                      bench::gmeanOf(ratios[step.name]));
    }
    std::printf("%s", table.toString().c_str());
    std::printf("\nExpected shape (paper Fig 18): each step adds a "
                "substantial gain, with unrolling and mapping "
                "enabling dataflow hardware to pull away.\n");

    // Optional lane-batched scenario study (--scenarios N, --lanes W):
    // per-scenario activity/checksum records plus batched-vs-per-job
    // throughput on stderr. Off by default.
    bench::scenarioStudy("fig18/scn");
    return bench::finish();
}
