/**
 * @file
 * Figure 12 reproduction: breakdown of aggregate core cycles for SASH
 * (committed / aborted / idle) as the system scales. Each
 * (design, tile-count) point is one ash_exec sweep job; the per-point
 * fractions are recorded from inside the job (staged, merged in
 * submission order) and the tables are printed after the barrier.
 */

#include <array>
#include <cstdio>

#include "BenchCommon.h"

using namespace ash;

int
main(int argc, char **argv)
{
    if (!bench::init("fig12_cycle_breakdown", argc, argv))
        return 1;
    bench::banner("Figure 12: SASH core-cycle breakdown");

    constexpr std::array<uint32_t, 5> tile_counts{1, 4, 16, 32, 64};

    auto &designs = bench::DesignSet::standard().entries();

    struct Cell
    {
        uint64_t committed = 0;
        uint64_t aborted = 0;
        uint64_t idle = 0;

        uint64_t total() const { return committed + aborted + idle; }
    };
    std::vector<std::array<Cell, tile_counts.size()>> cells(
        designs.size());

    exec::SweepRunner sweep(bench::sweepOptions());
    for (size_t di = 0; di < designs.size(); ++di) {
        for (size_t ti = 0; ti < tile_counts.size(); ++ti) {
            uint32_t tiles = tile_counts[ti];
            sweep.add("fig12/" + designs[di].design.name + "/t" +
                          std::to_string(tiles),
                      [&, di, ti, tiles](exec::JobContext &) {
                          auto res = bench::runAshAt(designs[di],
                                                     tiles, true);
                          Cell c;
                          c.committed = res.stats.get(
                              "coreCyclesCommitted");
                          c.aborted =
                              res.stats.get("coreCyclesAborted");
                          c.idle = res.stats.get("coreCyclesIdle");
                          cells[di][ti] = c;
                          const std::string key =
                              designs[di].design.name + ".c" +
                              std::to_string(tiles * 4);
                          double total = static_cast<double>(
                              c.total());
                          bench::record("frac_committed." + key,
                                        c.committed / total);
                          bench::record("frac_aborted." + key,
                                        c.aborted / total);
                          bench::record("frac_idle." + key,
                                        c.idle / total);
                      });
        }
    }
    bench::runSweep(sweep);

    for (size_t di = 0; di < designs.size(); ++di) {
        TextTable table({"cores", "committed", "aborted", "idle",
                         "agg cycles vs 4-core"});
        uint64_t one_tile_total = cells[di][0].total();
        for (size_t ti = 0; ti < tile_counts.size(); ++ti) {
            const Cell &c = cells[di][ti];
            double total = static_cast<double>(c.total());
            table.addRow(
                {TextTable::integer(tile_counts[ti] * 4),
                 TextTable::percent(c.committed / total),
                 TextTable::percent(c.aborted / total),
                 TextTable::percent(c.idle / total),
                 TextTable::num(total / static_cast<double>(
                                            one_tile_total),
                                2)});
        }
        std::printf("-- %s --\n%s\n",
                    designs[di].design.name.c_str(),
                    table.toString().c_str());
    }
    std::printf("Expected shape (paper Fig 12): committed work "
                "dominates everywhere, aborts stay small, and idle "
                "grows at the largest sizes for low-activity "
                "designs.\n");
    return bench::finish();
}
