/**
 * @file
 * Figure 12 reproduction: breakdown of aggregate core cycles for SASH
 * (committed / aborted / idle) as the system scales.
 */

#include <cstdio>

#include "BenchCommon.h"

using namespace ash;

int
main(int argc, char **argv)
{
    if (!bench::init("fig12_cycle_breakdown", argc, argv))
        return 1;
    bench::banner("Figure 12: SASH core-cycle breakdown");

    for (auto &entry : bench::DesignSet::standard().entries()) {
        TextTable table({"cores", "committed", "aborted", "idle",
                         "agg cycles vs 4-core"});
        uint64_t one_tile_total = 0;
        for (uint32_t tiles : {1u, 4u, 16u, 32u, 64u}) {
            auto res = bench::runAshAt(entry, tiles, true);
            uint64_t committed =
                res.stats.get("coreCyclesCommitted");
            uint64_t aborted = res.stats.get("coreCyclesAborted");
            uint64_t idle = res.stats.get("coreCyclesIdle");
            uint64_t total = committed + aborted + idle;
            if (tiles == 1)
                one_tile_total = total;
            table.addRow(
                {TextTable::integer(tiles * 4),
                 TextTable::percent(static_cast<double>(committed) /
                                    total),
                 TextTable::percent(static_cast<double>(aborted) /
                                    total),
                 TextTable::percent(static_cast<double>(idle) /
                                    total),
                 TextTable::num(static_cast<double>(total) /
                                    static_cast<double>(
                                        one_tile_total),
                                2)});
            const std::string key = entry.design.name + ".c" +
                                    std::to_string(tiles * 4);
            bench::record("frac_committed." + key,
                          static_cast<double>(committed) / total);
            bench::record("frac_aborted." + key,
                          static_cast<double>(aborted) / total);
            bench::record("frac_idle." + key,
                          static_cast<double>(idle) / total);
        }
        std::printf("-- %s --\n%s\n", entry.design.name.c_str(),
                    table.toString().c_str());
    }
    std::printf("Expected shape (paper Fig 12): committed work "
                "dominates everywhere, aborts stay small, and idle "
                "grows at the largest sizes for low-activity "
                "designs.\n");
    return bench::finish();
}
