/**
 * @file
 * Figure 3 reproduction: how task granularity affects (a) expected
 * parallelism, (b) parallel-Verilator speedup on a multicore host,
 * and (c) the fraction of work in active tasks. The paper sweeps
 * Verilator's merge level on Chronos; we sweep the coarsening cap on
 * the Chronos-PE-like design.
 */

#include <cstdio>

#include "BenchCommon.h"

using namespace ash;

int
main(int argc, char **argv)
{
    if (!bench::init("fig03_granularity", argc, argv))
        return 1;
    bench::banner("Figure 3: task granularity sweep (chronos_pe)");

    auto &entry = bench::DesignSet::standard().entries()[1];
    const rtl::Netlist &nl = entry.netlist;

    // Per-cycle node change flags drive the task-level activity
    // measurement in (c).
    refsim::ReferenceSimulator ref(nl);
    auto stim = entry.design.makeStimulus();
    constexpr uint64_t kCycles = 120;
    std::vector<std::vector<uint8_t>> changed;
    for (uint64_t c = 0; c < kCycles; ++c) {
        ref.step(*stim);
        changed.push_back(ref.changedLastCycle());
    }

    TextTable table({"max task cost", "tasks", "parallelism",
                     "best threads", "par speedup", "activity"});

    double serial_khz = baseline::runBaseline(
                            nl, baseline::simBaselineHost(1), 100000)
                            .speedKHz;

    for (uint32_t cap : {100000u, 20000u, 4000u, 1000u, 256u, 64u,
                         16u, 4u, 1u}) {
        core::CompilerOptions copts;
        copts.numTiles = 1;
        copts.maxTaskCost = cap;
        copts.unrolled = false;
        core::TaskProgram prog = core::compile(nl, copts);

        // (b): best thread count on the simulated 32-core host.
        double best_khz = 0;
        uint32_t best_threads = 1;
        for (uint32_t t : {1u, 2u, 4u, 8u, 16u, 32u}) {
            double khz = baseline::runBaseline(
                             nl, baseline::simBaselineHost(t), cap)
                             .speedKHz;
            if (khz > best_khz) {
                best_khz = khz;
                best_threads = t;
            }
        }

        // (c): a task is active in a cycle if any of its nodes'
        // inputs changed; weight by task cost.
        double active_cost = 0, total_cost = 0;
        for (uint64_t c = 10; c < kCycles; ++c) {   // Skip warmup.
            for (const core::Task &t : prog.tasks) {
                bool active = false;
                for (rtl::NodeId raw : t.nodes) {
                    rtl::NodeId id = raw & ~core::regWriteFlag;
                    for (rtl::NodeId oper : nl.node(id).operands) {
                        if (changed[c][oper]) {
                            active = true;
                            break;
                        }
                    }
                    if (active)
                        break;
                }
                total_cost += t.cost;
                if (active)
                    active_cost += t.cost;
            }
        }

        table.addRow({TextTable::integer(cap),
                      TextTable::integer(prog.tasks.size()),
                      TextTable::num(prog.stats.parallelism, 1),
                      TextTable::integer(best_threads),
                      TextTable::speedup(best_khz / serial_khz, 2),
                      TextTable::percent(active_cost /
                                         std::max(1.0, total_cost))});
        const std::string key = "cap" + std::to_string(cap);
        bench::record("parallelism." + key, prog.stats.parallelism);
        bench::record("par_speedup." + key, best_khz / serial_khz);
        bench::record("activity." + key,
                      active_cost / std::max(1.0, total_cost));
    }
    bench::recordStats("refsim", ref.stats());
    std::printf("%s", table.toString().c_str());
    std::printf("\nExpected shapes: parallelism grows as tasks shrink "
                "(3a); parallel speedup peaks at moderate counts and "
                "stays in the low single digits (3b); activity drops "
                "only once tasks are small (3c).\n");
    return bench::finish();
}
