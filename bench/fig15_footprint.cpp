/**
 * @file
 * Figure 15 reproduction: in-flight argument footprint of prioritized
 * (timestamp-ordered) vs unordered dataflow execution under DASH.
 */

#include <cstdio>

#include "BenchCommon.h"

using namespace ash;

int
main(int argc, char **argv)
{
    if (!bench::init("fig15_footprint", argc, argv))
        return 1;
    bench::banner("Figure 15: in-flight argument footprint, "
                  "prioritized vs unordered dataflow (DASH)");

    TextTable table({"design", "TS order (KB)", "unordered (KB)",
                     "blowup"});
    std::vector<double> blowups;
    for (auto &entry : bench::DesignSet::standard().entries()) {
        core::TaskProgram prog =
            bench::compileFor(entry.netlist, 64);
        // A wide run-ahead window lets the *ordering policy* (not
        // testbench backpressure) determine how many arguments stay
        // alive, as in the paper's unthrottled dataflow baselines.
        core::ArchConfig ordered;
        ordered.stimulusWindow = 48;
        auto ores = bench::runAsh(prog, entry.design, ordered);
        core::ArchConfig unordered = ordered;
        unordered.prioritized = false;
        unordered.aqEntries = 1u << 20;   // Wait-match is unbounded
                                          // in unordered designs.
        auto ures = bench::runAsh(prog, entry.design, unordered);

        double okb =
            ores.stats.accum("footprintBytes").mean() / 1024.0;
        double ukb =
            ures.stats.accum("footprintBytes").mean() / 1024.0;
        double blowup = okb > 0 ? ukb / okb : 0;
        blowups.push_back(std::max(blowup, 1e-3));
        table.addRow({entry.design.name, TextTable::num(okb, 1),
                      TextTable::num(ukb, 1),
                      TextTable::speedup(blowup, 1)});
        bench::record("footprint_blowup." + entry.design.name,
                      blowup);
    }
    std::printf("%s", table.toString().c_str());
    bench::record("footprint_blowup.gmean", bench::gmeanOf(blowups));
    std::printf("\ngmean blowup: %.1fx (paper: 16.8x gmean, up to "
                "47x)\nExpected shape: unordered execution keeps an "
                "order of magnitude more arguments alive.\n",
                bench::gmeanOf(blowups));
    return bench::finish();
}
