/**
 * @file
 * Figure 13 reproduction: chip energy breakdown (static / cores /
 * caches / TMU / NoC) for the 256-core baseline-like configuration,
 * DASH, and SASH. The baseline is modeled as the same chip running
 * software dataflow through a shared LLC (our proxy for the paper's
 * best-thread-count multicore; documented substitution).
 */

#include <cstdio>

#include "BenchCommon.h"
#include "model/EnergyArea.h"

using namespace ash;

int
main(int argc, char **argv)
{
    if (!bench::init("fig13_energy", argc, argv))
        return 1;
    bench::banner("Figure 13: energy breakdown at 256 cores "
                  "(normalized to the baseline total)");

    for (auto &entry : bench::DesignSet::standard().entries()) {
        core::TaskProgram prog =
            bench::compileFor(entry.netlist, 64);

        struct Config
        {
            const char *name;
            bool selective;
            bool hwDataflow;
            bool sharedLlc;
        };
        Config configs[] = {{"Base", false, false, true},
                            {"DASH", false, true, false},
                            {"SASH", true, true, false}};

        TextTable table({"config", "static", "cores", "caches",
                         "TMU", "NoC", "total (norm)"});
        double base_total = 0;
        for (const Config &c : configs) {
            core::ArchConfig cfg;
            cfg.selective = c.selective;
            cfg.hwDataflow = c.hwDataflow;
            cfg.sharedLlc = c.sharedLlc;
            auto res = bench::runAsh(prog, entry.design, cfg);
            double seconds =
                static_cast<double>(res.chipCycles) / 2.5e9;
            auto e = model::computeEnergy(res.stats, 256, 64.0,
                                          seconds);
            if (base_total == 0)
                base_total = e.totalMj();
            auto pct = [&](double mj) {
                return TextTable::percent(mj / base_total);
            };
            table.addRow({c.name, pct(e.staticMj), pct(e.coresMj),
                          pct(e.cachesMj), pct(e.tmuMj),
                          pct(e.nocMj),
                          TextTable::percent(e.totalMj() /
                                             base_total)});
            bench::record("energy_norm." + entry.design.name + "." +
                              c.name,
                          e.totalMj() / base_total);
        }
        std::printf("-- %s --\n%s\n", entry.design.name.c_str(),
                    table.toString().c_str());
    }
    std::printf("Expected shape (paper Fig 13): DASH uses less energy "
                "than the baseline; SASH reduces it further except on "
                "NTT; TMU energy stays small.\n");
    return bench::finish();
}
