/**
 * @file
 * Figure 13 reproduction: chip energy breakdown (static / cores /
 * caches / TMU / NoC) for the 256-core baseline-like configuration,
 * DASH, and SASH. The baseline is modeled as the same chip running
 * software dataflow through a shared LLC (our proxy for the paper's
 * best-thread-count multicore; documented substitution).
 *
 * Each (design, config) point is one ash_exec sweep job; the
 * normalization to the baseline total and all printing happen after
 * the merge barrier. The three configs of a design share the same
 * compiled program through the compileFor cache.
 */

#include <array>
#include <cstdio>

#include "BenchCommon.h"
#include "model/EnergyArea.h"

using namespace ash;

namespace {

struct Config
{
    const char *name;
    bool selective;
    bool hwDataflow;
    bool sharedLlc;
};

constexpr Config kConfigs[] = {{"Base", false, false, true},
                               {"DASH", false, true, false},
                               {"SASH", true, true, false}};
constexpr size_t kNumConfigs = 3;

} // namespace

int
main(int argc, char **argv)
{
    if (!bench::init("fig13_energy", argc, argv))
        return 1;
    bench::banner("Figure 13: energy breakdown at 256 cores "
                  "(normalized to the baseline total)");

    auto &designs = bench::DesignSet::standard().entries();
    std::vector<std::array<model::EnergyBreakdown, kNumConfigs>>
        energy(designs.size());

    exec::SweepRunner sweep(bench::sweepOptions());
    for (size_t di = 0; di < designs.size(); ++di) {
        for (size_t ci = 0; ci < kNumConfigs; ++ci) {
            sweep.add("fig13/" + designs[di].design.name + "/" +
                          kConfigs[ci].name,
                      [&, di, ci](exec::JobContext &) {
                          auto &entry = designs[di];
                          core::TaskProgram prog =
                              bench::compileFor(entry.netlist, 64);
                          core::ArchConfig cfg;
                          cfg.selective = kConfigs[ci].selective;
                          cfg.hwDataflow = kConfigs[ci].hwDataflow;
                          cfg.sharedLlc = kConfigs[ci].sharedLlc;
                          auto res = bench::runAsh(
                              prog, entry.design, cfg);
                          double seconds =
                              static_cast<double>(res.chipCycles) /
                              2.5e9;
                          energy[di][ci] = model::computeEnergy(
                              res.stats, 256, 64.0, seconds);
                      });
        }
    }
    bench::runSweep(sweep);

    for (size_t di = 0; di < designs.size(); ++di) {
        auto &entry = designs[di];
        TextTable table({"config", "static", "cores", "caches",
                         "TMU", "NoC", "total (norm)"});
        double base_total = energy[di][0].totalMj();
        for (size_t ci = 0; ci < kNumConfigs; ++ci) {
            const auto &e = energy[di][ci];
            auto pct = [&](double mj) {
                return TextTable::percent(mj / base_total);
            };
            table.addRow({kConfigs[ci].name, pct(e.staticMj),
                          pct(e.coresMj), pct(e.cachesMj),
                          pct(e.tmuMj), pct(e.nocMj),
                          TextTable::percent(e.totalMj() /
                                             base_total)});
            bench::record("energy_norm." + entry.design.name + "." +
                              kConfigs[ci].name,
                          e.totalMj() / base_total);
        }
        std::printf("-- %s --\n%s\n", entry.design.name.c_str(),
                    table.toString().c_str());
    }
    std::printf("Expected shape (paper Fig 13): DASH uses less energy "
                "than the baseline; SASH reduces it further except on "
                "NTT; TMU energy stays small.\n");
    return bench::finish();
}
