/**
 * @file
 * Shared infrastructure for the paper-reproduction benchmark binaries.
 * Each bench regenerates one table or figure of the paper; this header
 * provides the standard design set, cached compilation, and run
 * helpers so the benches stay declarative.
 */

#ifndef ASH_BENCH_BENCHCOMMON_H
#define ASH_BENCH_BENCHCOMMON_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baseline/Baseline.h"
#include "common/Stats.h"
#include "common/Table.h"
#include "core/arch/AshSim.h"
#include "core/compiler/Compiler.h"
#include "designs/Designs.h"
#include "obs/Report.h"
#include "refsim/ReferenceSimulator.h"

namespace ash::bench {

/** Number of simulated design cycles per timing run. */
constexpr uint64_t kRunCycles = 60;

/** The four benchmark designs with compiled netlists (cached). */
class DesignSet
{
  public:
    struct Entry
    {
        designs::Design design;
        rtl::Netlist netlist;
        double activity = 0.0;
    };

    /** Build (and functionally warm) the standard four designs. */
    static DesignSet &standard();

    std::vector<Entry> &entries() { return _entries; }

  private:
    std::vector<Entry> _entries;
};

/** Compile a netlist for a tile count (cached per call site). */
core::TaskProgram compileFor(const rtl::Netlist &nl, uint32_t tiles,
                             const core::CompilerOptions &base = {});

/** Run the ASH chip model; cfg.numTiles must match the program. */
core::RunResult runAsh(const core::TaskProgram &prog,
                       const designs::Design &design,
                       core::ArchConfig cfg,
                       uint64_t cycles = kRunCycles);

/** Convenience: compile + run at a tile count / mode. */
core::RunResult runAshAt(const DesignSet::Entry &entry, uint32_t tiles,
                         bool selective, uint64_t cycles = kRunCycles);

/** Geometric mean over a vector. */
double gmeanOf(const std::vector<double> &values);

/** Print a header line for a bench. */
void banner(const std::string &title);

/**
 * Standard bench entry point: names the run's report and parses the
 * common observability flags (--stats-json, --trace, --trace-events),
 * compacting argv down to the bench's own arguments. Returns false on
 * a malformed command line; the bench should `return 1` in that case.
 */
bool init(const std::string &name, int &argc, char **argv);

/** Record one headline number into the run report. */
void record(const std::string &key, double value);

/** Merge a simulator StatSet into the report under @p scope. */
void recordStats(const std::string &scope, const StatSet &stats);

/**
 * Standard bench exit: writes the stats JSON and/or trace file when
 * requested. Use as `return bench::finish();`.
 */
int finish();

} // namespace ash::bench

#endif // ASH_BENCH_BENCHCOMMON_H
