/**
 * @file
 * Shared infrastructure for the paper-reproduction benchmark binaries.
 * Each bench regenerates one table or figure of the paper; this header
 * provides the standard design set, cached compilation, run helpers,
 * and the host-parallel sweep plumbing (ash_exec) so the benches stay
 * declarative.
 *
 * Parallel sweeps: every bench accepts `--jobs N` (default: host
 * hardware concurrency). A sweep bench builds an exec::SweepRunner
 * from sweepOptions(), adds one job per independent (design, config,
 * system) point, and calls runSweep(); record()/recordStats() made
 * inside a job body are staged per job and merged in submission
 * order, so tables and --stats-json output are byte-identical at any
 * job count. Printing must stay on the main thread, after runSweep().
 */

#ifndef ASH_BENCH_BENCHCOMMON_H
#define ASH_BENCH_BENCHCOMMON_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baseline/Baseline.h"
#include "ckpt/Checkpoint.h"
#include "common/Stats.h"
#include "common/Table.h"
#include "core/arch/AshSim.h"
#include "core/compiler/Compiler.h"
#include "designs/Designs.h"
#include "exec/SweepRunner.h"
#include "obs/Report.h"
#include "refsim/ReferenceSimulator.h"

namespace ash::bench {

/** Number of simulated design cycles per timing run. */
constexpr uint64_t kRunCycles = 60;

/**
 * The four benchmark designs with compiled netlists (cached).
 *
 * Concurrency contract: the set is built once, under the C++ magic-
 * static lock, on first use — benches construct their sweep from
 * standard() on the main thread, so the warm-up reference runs never
 * race. During a sweep, jobs only READ entries (netlists are shared
 * immutable inputs; makeStimulus() returns a fresh per-job stimulus).
 */
class DesignSet
{
  public:
    struct Entry
    {
        designs::Design design;
        rtl::Netlist netlist;
        double activity = 0.0;
    };

    /** Build (and functionally warm) the standard four designs. */
    static DesignSet &standard();

    std::vector<Entry> &entries() { return _entries; }

  private:
    std::vector<Entry> _entries;
};

/**
 * Compile a netlist for a tile count, memoized process-wide on
 * (netlist identity, tiles, options). Concurrent jobs requesting the
 * same program share one compilation; the others block on its result.
 * The netlist must outlive the process cache — DesignSet entries
 * qualify; stack-local netlists should call core::compile directly.
 */
core::TaskProgram compileFor(const rtl::Netlist &nl, uint32_t tiles,
                             const core::CompilerOptions &base = {});

/**
 * Run the ASH chip model; cfg.numTiles must match the program.
 * When @p nl is given and --divergence-every is set, the run is
 * periodically cross-checked against the reference simulator and a
 * mismatch throws guard::DivergenceError after writing a quarantine
 * bundle (see guard::DivergenceGuard).
 */
core::RunResult runAsh(const core::TaskProgram &prog,
                       const designs::Design &design,
                       core::ArchConfig cfg,
                       uint64_t cycles = kRunCycles,
                       const rtl::Netlist *nl = nullptr);

/** Convenience: compile + run at a tile count / mode. */
core::RunResult runAshAt(const DesignSet::Entry &entry, uint32_t tiles,
                         bool selective, uint64_t cycles = kRunCycles);

/** Geometric mean over a vector. */
double gmeanOf(const std::vector<double> &values);

/** Print a header line for a bench. */
void banner(const std::string &title);

/**
 * Standard bench entry point: names the run's report and parses the
 * common flags (--stats-json, --trace, --trace-events from obs, plus
 * --jobs <n> and the checkpoint flags --checkpoint-every <cycles>,
 * --checkpoint-dir <dir>, --checkpoint-keep <k>, --resume <dir>),
 * compacting argv down to the bench's own arguments. Returns false
 * on a malformed command line; the bench should `return 1` in that
 * case.
 *
 * Lane batching (ash_lanes):
 *   --lanes <W>               scenario-batch width for scenarioStudy()
 *                             sweeps (default 1 = per-job execution)
 *   --scenarios <N>           run an N-scenario lane-batched study
 *                             after the bench's own sweep (default 0
 *                             = off)
 *
 * Robustness flags (ash_guard):
 *   --fault-plan <spec>       arm the fault injector (see
 *                             guard::FaultPlan::parse); the ASH_FAULT
 *                             environment variable is the fallback
 *                             when the flag is absent
 *   --job-deadline <sec>      per-sweep-job wall-clock deadline
 *   --isolate                 fork each sweep job attempt into a
 *                             rlimit-bounded subprocess
 *   --isolate-rss-mb <n>      child address-space cap for --isolate
 *   --divergence-every <c>    cross-check AshSim against the golden
 *                             reference every <c> committed cycles
 *   --quarantine-dir <dir>    where divergence bundles are written
 *                             (default .ash-quarantine)
 */
bool init(const std::string &name, int &argc, char **argv);

/** Resolved worker count: --jobs value, default hw concurrency. */
unsigned jobs();

/** Lane-batch width: --lanes value, default 1 (per-job execution). */
unsigned lanes();

/** Scenario count for scenarioStudy(): --scenarios value, default 0. */
size_t scenarios();

/**
 * The lane-batched multi-scenario study (`--scenarios N`): generate N
 * deterministic scenarios per benchmark design (lanes::scenarioSweep)
 * and run them through lanes::LaneBatchEngine as SweepRunner lane
 * batches of --lanes width. Per scenario, records "<key>.activity"
 * and "<key>.checksum" into the report — byte-identical at any
 * --lanes and --jobs value — and prints one deterministic summary
 * line per design. Wall-clock throughput (batched at --lanes W vs
 * per-job reference simulation) goes to stderr and to volatile
 * "lanes.wall.*" report keys, which the determinism harnesses filter
 * out. No-op when --scenarios is 0.
 */
void scenarioStudy(const std::string &prefix, uint64_t cycles = 120);

/**
 * Engine checkpoint options parsed from the --checkpoint-* flags.
 * dir empty / everyCycles 0 when checkpointing is off. Engine
 * snapshot images live under <dir>/engines/; sweep job results
 * under <dir>/jobs/ (see exec::SweepOptions::checkpointDir).
 */
const ckpt::CheckpointOptions &checkpointOptions();

/** True when --resume <dir> was given. */
bool resuming();

/**
 * Sweep options honoring the parsed --jobs flag and routing
 * --checkpoint-dir / --resume into the sweep's job persistence.
 */
exec::SweepOptions sweepOptions();

/**
 * Run a sweep to its merge barrier. Failed jobs are reported by
 * exec::SweepRunner as a structured warning block and remembered so
 * finish() exits nonzero, but the bench keeps going and still emits
 * whatever completed.
 */
void runSweep(exec::SweepRunner &sweep);

/**
 * Record one headline number into the run report. Inside a sweep job
 * this stages into the job's context (deterministic merge at the
 * barrier); outside it records directly.
 */
void record(const std::string &key, double value);

/** Merge a simulator StatSet into the report under @p scope. */
void recordStats(const std::string &scope, const StatSet &stats);

/**
 * Standard bench exit: writes the stats JSON and/or trace file when
 * requested. Returns nonzero if that fails or any sweep job failed.
 * Use as `return bench::finish();`.
 */
int finish();

} // namespace ash::bench

#endif // ASH_BENCH_BENCHCOMMON_H
