/**
 * @file
 * Table 2 reproduction: area breakdown of the 256-core ASH chip at
 * 7 nm, plus the Zen2-class comparison from Sec 9.1.
 */

#include <cstdio>

#include "BenchCommon.h"
#include "model/EnergyArea.h"

using namespace ash;

int
main(int argc, char **argv)
{
    if (!bench::init("table2_area", argc, argv))
        return 1;
    bench::banner("Table 2: ASH area breakdown (256 cores, 64 tiles, "
                  "1 MB L2/tile, 7 nm)");

    TextTable table({"component", "area (mm^2)"});
    auto rows = model::ashArea(256, 64, 1.0);
    for (const auto &row : rows)
        table.addRow({row.component, TextTable::num(row.mm2, 1)});
    std::printf("%s", table.toString().c_str());

    double ash = rows.back().mm2;
    double zen = model::zen2Area(32);
    std::printf("\n32-core Zen2-class CPU: %.1f mm^2 -> ASH uses "
                "%.1fx less area (paper: ~3x)\n", zen, zen / ash);
    bench::record("area_mm2.ash", ash);
    bench::record("area_mm2.zen2_32c", zen);
    bench::record("area_ratio", zen / ash);
    return bench::finish();
}
