/**
 * @file
 * Table 4 reproduction: characteristics of the benchmark hardware
 * designs after compilation — dataflow nodes/edges, tasks, DTT share,
 * descriptor edges, parallelism, activity factor, serial simulation
 * cost, code footprint, and compile time.
 */

#include <chrono>
#include <cstdio>

#include "BenchCommon.h"

using namespace ash;

int
main(int argc, char **argv)
{
    if (!bench::init("table4_designs", argc, argv))
        return 1;
    bench::banner("Table 4: benchmark design characteristics");

    TextTable table({"design", "nodes", "edges", "tasks", "%DTTs",
                     "task edges", "parallelism", "activity",
                     "1-core cyc/cyc", "code", "compile"});

    for (auto &entry : bench::DesignSet::standard().entries()) {
        auto t0 = std::chrono::steady_clock::now();
        rtl::Netlist nl = designs::compileDesign(entry.design);
        core::TaskProgram prog = bench::compileFor(nl, 64);
        double compile_s = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();

        auto serial = baseline::runBaseline(
            nl, baseline::simBaselineHost(1));

        table.addRow(
            {entry.design.name,
             TextTable::integer(prog.stats.dfgNodes),
             TextTable::integer(prog.stats.dfgEdges),
             TextTable::integer(prog.stats.tasks),
             TextTable::percent(
                 static_cast<double>(prog.stats.dttTasks) /
                 static_cast<double>(prog.stats.tasks)),
             TextTable::integer(prog.stats.taskEdges),
             TextTable::num(prog.stats.parallelism, 0),
             TextTable::percent(entry.activity),
             TextTable::num(serial.cyclesPerDesignCycle, 0),
             TextTable::bytes(prog.stats.codeFootprintBytes),
             TextTable::num(compile_s, 2) + "s"});
        const std::string &d = entry.design.name;
        bench::record("tasks." + d,
                      static_cast<double>(prog.stats.tasks));
        bench::record("parallelism." + d, prog.stats.parallelism);
        bench::record("activity." + d, entry.activity);
        bench::record("serial_cyc_per_cyc." + d,
                      serial.cyclesPerDesignCycle);
    }
    std::printf("%s", table.toString().c_str());
    std::printf("\nExpected shape (paper Table 4): NTT is the "
                "smallest and most active design; the GPU-like design "
                "has the lowest activity; DTT share is highest for "
                "memory-rich designs.\n");
    return bench::finish();
}
