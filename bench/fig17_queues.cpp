/**
 * @file
 * Figure 17 reproduction: average Argument Queue and Task Commit
 * Queue occupancy per tile for 256-core SASH (512-entry structures).
 */

#include <cstdio>

#include "BenchCommon.h"

using namespace ash;

int
main(int argc, char **argv)
{
    if (!bench::init("fig17_queues", argc, argv))
        return 1;
    bench::banner("Figure 17: average AQ / TCQ occupancy per tile "
                  "(64-tile SASH, 512 entries each)");

    TextTable table({"design", "AQ avg", "TCQ avg", "AQ spills"});
    for (auto &entry : bench::DesignSet::standard().entries()) {
        auto res = bench::runAshAt(entry, 64, true);
        table.addRow(
            {entry.design.name,
             TextTable::num(res.stats.accum("aqOccupancy").mean(), 1),
             TextTable::num(res.stats.accum("tcqOccupancy").mean(),
                            1),
             TextTable::integer(res.stats.get("aqSpills"))});
        const std::string &d = entry.design.name;
        bench::record("aq_avg." + d,
                      res.stats.accum("aqOccupancy").mean());
        bench::record("tcq_avg." + d,
                      res.stats.accum("tcqOccupancy").mean());
        bench::recordStats(d, res.stats);
    }
    std::printf("%s", table.toString().c_str());
    std::printf("\nExpected shape (paper Fig 17): occupancies sit "
                "comfortably below the 512-entry capacity and spills "
                "are rare or absent.\n");
    return bench::finish();
}
