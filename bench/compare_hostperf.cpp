/**
 * @file
 * Host-perf regression gate: diff two BENCH_hostperf.json documents
 * (a committed baseline and a fresh run) cell by cell and exit
 * nonzero when any engine x design cell slowed down beyond the noise
 * tolerance. Compares sim_khz — a throughput, so a baseline taken at
 * --cycles 2000 stays comparable with a CI smoke run at --cycles 200.
 *
 * Usage:
 *   compare_hostperf <baseline.json> <current.json>
 *       [--tolerance <frac>] [--min-khz <khz>]
 *
 * --tolerance is the allowed fractional slowdown before a cell is
 * flagged (default 0.30: CI runners are noisy shared machines, so the
 * gate only trips on gross regressions). --min-khz skips cells whose
 * baseline throughput is below the floor (default 1.0 kHz), where a
 * ratio is all jitter. Cells present on only one side are reported
 * but never fail the gate — the matrix is allowed to grow.
 *
 * Exit codes: 0 = within tolerance, 1 = regression(s), 2 = bad
 * input. The CI step runs this warn-only (|| true) so a noisy runner
 * cannot block a merge, but the log keeps the evidence.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "common/Json.h"

using namespace ash;

namespace {

/** sim_khz per "engine/design" cell of one hostperf document. */
bool
loadCells(const char *path, std::map<std::string, double> &out,
          std::string *err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        *err = std::string("cannot open ") + path;
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();

    JsonValue doc;
    if (!jsonParse(text.str(), doc, err))
        return false;
    if (doc["bench"].string() != "host_perf") {
        *err = std::string(path) + " is not a host_perf report";
        return false;
    }
    for (const JsonValue &cell : doc["cells"].array()) {
        if (!cell["engine"].isString() ||
            !cell["design"].isString() ||
            !cell["sim_khz"].isNumber())
            continue;
        out[cell["engine"].string() + "/" +
            cell["design"].string()] = cell["sim_khz"].number();
    }
    if (out.empty()) {
        *err = std::string(path) + " has no usable cells";
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *basePath = nullptr;
    const char *curPath = nullptr;
    double tolerance = 0.30;
    double minKhz = 1.0;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--tolerance") == 0 &&
            i + 1 < argc) {
            tolerance = std::strtod(argv[++i], nullptr);
        } else if (std::strcmp(argv[i], "--min-khz") == 0 &&
                   i + 1 < argc) {
            minKhz = std::strtod(argv[++i], nullptr);
        } else if (!basePath) {
            basePath = argv[i];
        } else if (!curPath) {
            curPath = argv[i];
        } else {
            std::fprintf(stderr, "unexpected argument: %s\n",
                         argv[i]);
            return 2;
        }
    }
    if (!basePath || !curPath || tolerance < 0.0) {
        std::fprintf(stderr,
                     "usage: compare_hostperf <baseline.json> "
                     "<current.json> [--tolerance <frac>] "
                     "[--min-khz <khz>]\n");
        return 2;
    }

    std::map<std::string, double> base;
    std::map<std::string, double> cur;
    std::string err;
    if (!loadCells(basePath, base, &err) ||
        !loadCells(curPath, cur, &err)) {
        std::fprintf(stderr, "compare_hostperf: %s\n", err.c_str());
        return 2;
    }

    std::printf("%-24s %12s %12s %9s\n", "cell", "base-KHz",
                "cur-KHz", "ratio");
    int regressions = 0;
    for (const auto &[cell, baseKhz] : base) {
        auto it = cur.find(cell);
        if (it == cur.end()) {
            std::printf("%-24s %12.1f %12s %9s\n", cell.c_str(),
                        baseKhz, "absent", "-");
            continue;
        }
        double curKhz = it->second;
        double ratio = baseKhz > 0.0 ? curKhz / baseKhz : 1.0;
        const char *mark = "";
        if (baseKhz < minKhz) {
            mark = "  (below --min-khz floor; ignored)";
        } else if (ratio < 1.0 - tolerance) {
            mark = "  REGRESSION";
            ++regressions;
        }
        std::printf("%-24s %12.1f %12.1f %8.2fx%s\n", cell.c_str(),
                    baseKhz, curKhz, ratio, mark);
    }
    for (const auto &[cell, curKhz] : cur) {
        if (base.find(cell) == base.end())
            std::printf("%-24s %12s %12.1f %9s  (new cell)\n",
                        cell.c_str(), "absent", curKhz, "-");
    }

    if (regressions != 0) {
        std::fprintf(stderr,
                     "compare_hostperf: %d cell(s) regressed more "
                     "than %.0f%% vs %s\n",
                     regressions, tolerance * 100.0, basePath);
        return 1;
    }
    std::printf("compare_hostperf: all cells within %.0f%% of %s\n",
                tolerance * 100.0, basePath);
    return 0;
}
