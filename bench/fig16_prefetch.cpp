/**
 * @file
 * Figure 16 reproduction: speedup from task-driven instruction
 * prefetching (Sec 6) on SASH across system sizes. Each
 * (tile count, design) point — a prefetch-on/prefetch-off pair of
 * runs — is one ash_exec sweep job; gmeans are taken after the merge
 * barrier.
 */

#include <array>
#include <cstdio>

#include "BenchCommon.h"

using namespace ash;

int
main(int argc, char **argv)
{
    if (!bench::init("fig16_prefetch", argc, argv))
        return 1;
    bench::banner("Figure 16: task-driven instruction prefetching "
                  "speedup (SASH)");

    constexpr std::array<uint32_t, 4> tile_counts{1, 4, 16, 64};

    auto &designs = bench::DesignSet::standard().entries();
    std::vector<std::vector<double>> ratios(
        tile_counts.size(), std::vector<double>(designs.size(), 0.0));

    exec::SweepRunner sweep(bench::sweepOptions());
    for (size_t ti = 0; ti < tile_counts.size(); ++ti) {
        uint32_t tiles = tile_counts[ti];
        for (size_t di = 0; di < designs.size(); ++di) {
            sweep.add("fig16/t" + std::to_string(tiles) + "/" +
                          designs[di].design.name,
                      [&, ti, di, tiles](exec::JobContext &) {
                          auto &entry = designs[di];
                          core::TaskProgram prog = bench::compileFor(
                              entry.netlist, tiles);
                          core::ArchConfig on;
                          on.selective = true;
                          core::ArchConfig off = on;
                          off.prefetch = false;
                          double with = bench::runAsh(prog,
                                                      entry.design,
                                                      on)
                                            .speedKHz();
                          double without = bench::runAsh(
                                               prog, entry.design,
                                               off)
                                               .speedKHz();
                          ratios[ti][di] = with / without;
                      });
        }
    }
    bench::runSweep(sweep);

    TextTable table({"cores", "gmean speedup from prefetching"});
    for (size_t ti = 0; ti < tile_counts.size(); ++ti) {
        table.addRow({TextTable::integer(tile_counts[ti] * 4),
                      TextTable::speedup(bench::gmeanOf(ratios[ti]),
                                         2)});
        bench::record("prefetch_speedup.c" +
                          std::to_string(tile_counts[ti] * 4),
                      bench::gmeanOf(ratios[ti]));
    }
    std::printf("%s", table.toString().c_str());
    std::printf("\nExpected shape (paper Fig 16): prefetching helps "
                "at every size and most at small systems where less "
                "code fits on chip.\n");
    return bench::finish();
}
