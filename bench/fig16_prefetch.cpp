/**
 * @file
 * Figure 16 reproduction: speedup from task-driven instruction
 * prefetching (Sec 6) on SASH across system sizes.
 */

#include <cstdio>

#include "BenchCommon.h"

using namespace ash;

int
main(int argc, char **argv)
{
    if (!bench::init("fig16_prefetch", argc, argv))
        return 1;
    bench::banner("Figure 16: task-driven instruction prefetching "
                  "speedup (SASH)");

    TextTable table({"cores", "gmean speedup from prefetching"});
    for (uint32_t tiles : {1u, 4u, 16u, 64u}) {
        std::vector<double> ratios;
        for (auto &entry : bench::DesignSet::standard().entries()) {
            core::TaskProgram prog =
                bench::compileFor(entry.netlist, tiles);
            core::ArchConfig on;
            on.selective = true;
            core::ArchConfig off = on;
            off.prefetch = false;
            double with =
                bench::runAsh(prog, entry.design, on).speedKHz();
            double without =
                bench::runAsh(prog, entry.design, off).speedKHz();
            ratios.push_back(with / without);
        }
        table.addRow({TextTable::integer(tiles * 4),
                      TextTable::speedup(bench::gmeanOf(ratios), 2)});
        bench::record("prefetch_speedup.c" +
                          std::to_string(tiles * 4),
                      bench::gmeanOf(ratios));
    }
    std::printf("%s", table.toString().c_str());
    std::printf("\nExpected shape (paper Fig 16): prefetching helps "
                "at every size and most at small systems where less "
                "code fits on chip.\n");
    return bench::finish();
}
