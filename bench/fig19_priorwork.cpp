/**
 * @file
 * Figure 19 reproduction: prior task-level speculative architectures
 * (Swarm- and Chronos-like) running software dataflow (+DF) and
 * software selective execution (+SE) versus DASH and SASH, as
 * speedups over the best parallel baseline. Swarm-like systems use a
 * shared coherent LLC; Chronos-like systems use tile-private caches.
 */

#include <cstdio>

#include "BenchCommon.h"

using namespace ash;

int
main(int argc, char **argv)
{
    if (!bench::init("fig19_priorwork", argc, argv))
        return 1;
    bench::banner("Figure 19: prior speculative architectures vs "
                  "DASH/SASH (speedup over best parallel baseline)");

    struct Config
    {
        const char *name;
        bool hwDataflow;
        bool sharedLlc;
        bool selective;
    };
    Config configs[] = {{"Swarm+DF", false, true, false},
                        {"Swarm+SE", false, true, true},
                        {"Chronos+DF", false, false, false},
                        {"Chronos+SE", false, false, true},
                        {"DASH", true, false, false},
                        {"SASH", true, false, true}};

    std::vector<std::string> header = {"system"};
    auto &designs = bench::DesignSet::standard().entries();
    for (auto &e : designs)
        header.push_back(e.design.name);
    header.push_back("gmean");
    TextTable table(header);

    std::vector<double> base_khz;
    for (auto &entry : designs) {
        double best = 0;
        for (uint32_t t : {4u, 16u, 64u, 128u})
            best = std::max(best,
                            baseline::runBaseline(
                                entry.netlist,
                                baseline::simBaselineHost(t))
                                .speedKHz);
        base_khz.push_back(best);
    }

    for (const Config &c : configs) {
        std::vector<std::string> row = {c.name};
        std::vector<double> ratios;
        for (size_t i = 0; i < designs.size(); ++i) {
            core::TaskProgram prog =
                bench::compileFor(designs[i].netlist, 64);
            core::ArchConfig cfg;
            cfg.hwDataflow = c.hwDataflow;
            cfg.sharedLlc = c.sharedLlc;
            cfg.selective = c.selective;
            double khz = bench::runAsh(prog, designs[i].design, cfg)
                             .speedKHz();
            ratios.push_back(khz / base_khz[i]);
            row.push_back(TextTable::speedup(ratios.back(), 1));
        }
        row.push_back(TextTable::speedup(bench::gmeanOf(ratios), 1));
        table.addRow(row);
        bench::record(std::string("gmean_speedup.") + c.name,
                      bench::gmeanOf(ratios));
    }
    std::printf("%s", table.toString().c_str());
    std::printf("\nExpected shape (paper Fig 19): software-dataflow "
                "Swarm/Chronos variants land far below DASH/SASH; "
                "hardware dataflow support is what makes RTL "
                "simulation scale.\n");
    return bench::finish();
}
