/**
 * @file
 * Figure 19 reproduction: prior task-level speculative architectures
 * (Swarm- and Chronos-like) running software dataflow (+DF) and
 * software selective execution (+SE) versus DASH and SASH, as
 * speedups over the best parallel baseline. Swarm-like systems use a
 * shared coherent LLC; Chronos-like systems use tile-private caches.
 *
 * One ash_exec sweep job per design for the best-baseline search and
 * one per (config, design) point. All six configs of a design reuse
 * the same 64-tile program through the compileFor cache, so the
 * parallel sweep also compiles each design exactly once.
 */

#include <array>
#include <cstdio>

#include "BenchCommon.h"

using namespace ash;

namespace {

struct Config
{
    const char *name;
    bool hwDataflow;
    bool sharedLlc;
    bool selective;
};

constexpr Config kConfigs[] = {{"Swarm+DF", false, true, false},
                               {"Swarm+SE", false, true, true},
                               {"Chronos+DF", false, false, false},
                               {"Chronos+SE", false, false, true},
                               {"DASH", true, false, false},
                               {"SASH", true, false, true}};
constexpr size_t kNumConfigs = 6;

} // namespace

int
main(int argc, char **argv)
{
    if (!bench::init("fig19_priorwork", argc, argv))
        return 1;
    bench::banner("Figure 19: prior speculative architectures vs "
                  "DASH/SASH (speedup over best parallel baseline)");

    auto &designs = bench::DesignSet::standard().entries();

    std::vector<std::string> header = {"system"};
    for (auto &e : designs)
        header.push_back(e.design.name);
    header.push_back("gmean");
    TextTable table(header);

    std::vector<double> base_khz(designs.size(), 0.0);
    std::vector<std::array<double, kNumConfigs>> khz(designs.size());

    exec::SweepRunner sweep(bench::sweepOptions());
    for (size_t di = 0; di < designs.size(); ++di) {
        const std::string &name = designs[di].design.name;
        sweep.add("fig19/" + name + "/baseline",
                  [&, di](exec::JobContext &) {
                      double best = 0;
                      for (uint32_t t : {4u, 16u, 64u, 128u})
                          best = std::max(
                              best,
                              baseline::runBaseline(
                                  designs[di].netlist,
                                  baseline::simBaselineHost(t))
                                  .speedKHz);
                      base_khz[di] = best;
                  });
        for (size_t ci = 0; ci < kNumConfigs; ++ci) {
            sweep.add("fig19/" + name + "/" + kConfigs[ci].name,
                      [&, di, ci](exec::JobContext &) {
                          core::TaskProgram prog = bench::compileFor(
                              designs[di].netlist, 64);
                          core::ArchConfig cfg;
                          cfg.hwDataflow = kConfigs[ci].hwDataflow;
                          cfg.sharedLlc = kConfigs[ci].sharedLlc;
                          cfg.selective = kConfigs[ci].selective;
                          khz[di][ci] =
                              bench::runAsh(prog,
                                            designs[di].design, cfg)
                                  .speedKHz();
                      });
        }
    }
    bench::runSweep(sweep);

    for (size_t ci = 0; ci < kNumConfigs; ++ci) {
        std::vector<std::string> row = {kConfigs[ci].name};
        std::vector<double> ratios;
        for (size_t di = 0; di < designs.size(); ++di) {
            ratios.push_back(khz[di][ci] / base_khz[di]);
            row.push_back(TextTable::speedup(ratios.back(), 1));
        }
        row.push_back(TextTable::speedup(bench::gmeanOf(ratios), 1));
        table.addRow(row);
        bench::record(std::string("gmean_speedup.") +
                          kConfigs[ci].name,
                      bench::gmeanOf(ratios));
    }
    std::printf("%s", table.toString().c_str());
    std::printf("\nExpected shape (paper Fig 19): software-dataflow "
                "Swarm/Chronos variants land far below DASH/SASH; "
                "hardware dataflow support is what makes RTL "
                "simulation scale.\n");
    return bench::finish();
}
