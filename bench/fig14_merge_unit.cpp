/**
 * @file
 * Figure 14 reproduction: DASH sensitivity to the merge-unit capacity
 * (gmean performance change relative to the default of 16 entries).
 */

#include <cstdio>

#include "BenchCommon.h"

using namespace ash;

int
main(int argc, char **argv)
{
    if (!bench::init("fig14_merge_unit", argc, argv))
        return 1;
    bench::banner("Figure 14: DASH merge-unit capacity sensitivity");

    auto &designs = bench::DesignSet::standard().entries();
    std::map<uint32_t, std::vector<double>> khz;
    std::map<uint32_t, uint64_t> evictions;
    const uint32_t sizes[] = {1, 2, 4, 8, 16, 1u << 20};

    for (auto &entry : designs) {
        core::TaskProgram prog =
            bench::compileFor(entry.netlist, 64);
        for (uint32_t size : sizes) {
            core::ArchConfig cfg;
            cfg.mergeEntries = size;
            auto res = bench::runAsh(prog, entry.design, cfg);
            khz[size].push_back(res.speedKHz());
            evictions[size] += res.stats.get("mergeEvictions");
        }
    }

    double ref = bench::gmeanOf(khz[16]);
    TextTable table({"merge entries", "gmean speed change",
                     "total evictions"});
    for (uint32_t size : sizes) {
        std::string label = size >= (1u << 20)
                                ? std::string("unbounded")
                                : TextTable::integer(size);
        double pct = (bench::gmeanOf(khz[size]) / ref - 1.0) * 100.0;
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%+.1f%%", pct);
        table.addRow({label, buf,
                      TextTable::integer(evictions[size])});
        bench::record("speed_change_pct." + label, pct);
    }
    std::printf("%s", table.toString().c_str());
    std::printf("\nExpected shape (paper Fig 14): a 16-entry merge "
                "window is within a few percent of unbounded; small "
                "windows cost a little.\n");
    return bench::finish();
}
