/**
 * @file
 * Wall-clock perf harness for the cycle-level engines: the reference
 * simulator, the jit compiled-kernel engine, the multicore Baseline
 * timing model, and the ASH chip model (DASH and SASH). Unlike the
 * table/figure benches,
 * which report *simulated* speeds, this bench times the host
 * execution of each engine over the bundled designs and writes
 * BENCH_hostperf.json with simulated-cycles/sec and ns per evaluated
 * design node — the repo's perf trajectory record.
 *
 * Methodology: each engine×design cell runs `--repeats` times (fresh
 * simulator each run, same deterministic stimulus) and reports the
 * best wall time, which is the stable statistic on a shared/1-core
 * host. A warm-up run per design populates the compile cache first
 * so compilation never pollutes the timings.
 *
 * Flags: --cycles N (simulated design cycles per run, default 2000),
 * --repeats N (default 3), --out PATH (default BENCH_hostperf.json),
 * plus the common bench flags.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "BenchCommon.h"
#include "common/BuildInfo.h"
#include "common/Json.h"
#include "jit/JitSimulator.h"
#include "prof/Prof.h"

using namespace ash;
using Clock = std::chrono::steady_clock;

namespace {

struct Cell
{
    std::string engine;
    std::string design;
    double wallSec = 0.0;     ///< Best-of-repeats wall time.
    double simKhz = 0.0;      ///< Simulated design-cycles / sec / 1e3.
    double nsPerNode = 0.0;   ///< Wall ns per evaluated design node.
};

/** Best-of-N wall time of @p body (which must do one full run). */
template <typename Fn>
double
bestWallSec(unsigned repeats, Fn &&body)
{
    double best = 0.0;
    for (unsigned r = 0; r < repeats; ++r) {
        auto t0 = Clock::now();
        body();
        std::chrono::duration<double> dt = Clock::now() - t0;
        if (r == 0 || dt.count() < best)
            best = dt.count();
    }
    return best;
}

Cell
makeCell(const std::string &engine, const std::string &design,
         double wall_sec, uint64_t cycles, uint64_t nodes)
{
    Cell c;
    c.engine = engine;
    c.design = design;
    c.wallSec = wall_sec;
    c.simKhz = cycles / wall_sec / 1e3;
    c.nsPerNode =
        wall_sec * 1e9 / (double(cycles) * double(nodes));
    return c;
}

} // namespace

int
main(int argc, char **argv)
{
    if (!bench::init("host_perf", argc, argv))
        return 1;

    uint64_t cycles = 2000;
    unsigned repeats = 3;
    std::string out = "BENCH_hostperf.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--cycles") == 0 && i + 1 < argc)
            cycles = std::strtoull(argv[++i], nullptr, 10);
        else if (std::strcmp(argv[i], "--repeats") == 0 &&
                 i + 1 < argc)
            repeats = unsigned(std::strtoul(argv[++i], nullptr, 10));
        else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out = argv[++i];
    }

    bench::banner("Host wall-clock performance (engine x design)");
    std::printf("%-10s %-12s %12s %12s %12s\n", "engine", "design",
                "wall-ms", "sim-KHz", "ns/node");

    std::vector<Cell> cells;
    auto time_engine = [&](const std::string &engine,
                           const std::string &name, uint64_t nodes,
                           uint64_t engine_cycles, auto &&run_once) {
        // One prof zone per engine x design cell; the engines'
        // own run/compile zones nest under it, giving the
        // --prof-json report a per-cell phase breakdown.
        const std::string zoneName = "cell:" + engine + ":" + name;
        prof::ScopedZone zone(zoneName.c_str());
        double wall = bestWallSec(repeats, run_once);
        cells.push_back(
            makeCell(engine, name, wall, engine_cycles, nodes));
        const Cell &c = cells.back();
        std::printf("%-10s %-12s %12.2f %12.1f %12.2f\n",
                    engine.c_str(), name.c_str(), c.wallSec * 1e3,
                    c.simKhz, c.nsPerNode);
        bench::record("khz." + engine + "." + name, c.simKhz);
        bench::record("nspernode." + engine + "." + name,
                      c.nsPerNode);
    };

    auto bench_t0 = Clock::now();
    for (auto &entry : bench::DesignSet::standard().entries()) {
        const std::string &name = entry.design.name;
        uint64_t nodes = entry.netlist.topoOrder().size();

        // Warm the compile cache outside the timed region; the 16-
        // tile program serves both ASH modes. The jit warm-up
        // populates the fingerprint-keyed .so cache, so the timed jit
        // runs below measure cache-hit construction plus simulation —
        // the steady-state cost — not a cold toolchain invocation.
        core::TaskProgram prog =
            bench::compileFor(entry.netlist, 16);
        { jit::JitSimulator warmJit(entry.netlist); }

        // The Baseline is a one-shot timing analysis whose host cost
        // scales with its warm window, not the requested horizon.
        uint64_t base_cycles = std::min<uint64_t>(cycles, 200);

        time_engine("refsim", name, nodes, cycles, [&] {
            refsim::ReferenceSimulator sim(entry.netlist);
            auto stim = entry.design.makeStimulus();
            sim.run(*stim, cycles);
        });
        time_engine("jit", name, nodes, cycles, [&] {
            jit::JitSimulator sim(entry.netlist);
            auto stim = entry.design.makeStimulus();
            sim.run(*stim, cycles);
        });
        time_engine("baseline", name, nodes, base_cycles, [&] {
            baseline::runBaseline(entry.netlist,
                                  baseline::zen2Host(32), 2000,
                                  uint32_t(base_cycles));
        });
        time_engine("dash", name, nodes, cycles, [&] {
            core::ArchConfig cfg;
            cfg.selective = false;
            bench::runAsh(prog, entry.design, cfg, cycles);
        });
        time_engine("sash", name, nodes, cycles, [&] {
            core::ArchConfig cfg;
            cfg.selective = true;
            bench::runAsh(prog, entry.design, cfg, cycles);
        });
    }

    // The largest bundled design: the vortex generator at its maximum
    // supported scale (64 warps x 4 lanes, ~18k nodes). This is where
    // the compiled-kernel speedup is most visible — activity stays
    // roughly constant while refsim's dense sweep scales with size —
    // so it anchors the jit-vs-refsim headline ratio. Only the two
    // functional engines run here; the timing models' cost on a
    // design this size would dominate the bench wall clock without
    // adding signal.
    {
        designs::Design xl = designs::makeVortex(64, 4);
        xl.name = "vortex_xl";
        rtl::Netlist nl = designs::compileDesign(xl);
        uint64_t nodes = nl.topoOrder().size();
        { jit::JitSimulator warmJit(nl); }

        time_engine("refsim", xl.name, nodes, cycles, [&] {
            refsim::ReferenceSimulator sim(nl);
            auto stim = xl.makeStimulus();
            sim.run(*stim, cycles);
        });
        time_engine("jit", xl.name, nodes, cycles, [&] {
            jit::JitSimulator sim(nl);
            auto stim = xl.makeStimulus();
            sim.run(*stim, cycles);
        });
    }
    std::chrono::duration<double> benchWall = Clock::now() - bench_t0;

    // Phase coverage check (stderr only): the top-level prof zones —
    // the per-cell zones plus setup phases like frontend/compile —
    // should account for nearly all of the measured loop wall time.
    // A low figure means a new expensive phase is missing its zone.
    if (prof::Profiler::enabled()) {
        double covered = 0.0;
        size_t nTop = 0;
        for (const auto &[path, stat] :
             prof::Profiler::instance().zones()) {
            if (path.find('/') != std::string::npos)
                continue;
            covered += double(stat.wallNs) * 1e-9;
            ++nTop;
        }
        double total = benchWall.count();
        std::fprintf(stderr,
                     "[prof] host_perf phase coverage: %.1f%% of "
                     "%.3f s in %zu top-level zones\n",
                     total > 0.0 ? 100.0 * covered / total : 0.0,
                     total, nTop);
    }

    JsonWriter w;
    w.beginObject();
    w.kv("bench", "host_perf");
    w.key("build").beginObject();
    w.kv("git", buildinfo::kGitHash);
    w.kv("compiler", buildinfo::kCompiler);
    w.kv("build_type", buildinfo::kBuildType);
    w.kv("options", buildinfo::kOptions);
    w.endObject();
    w.kv("cycles", cycles);
    w.kv("repeats", uint64_t(repeats));
    w.key("cells").beginArray();
    for (const Cell &c : cells) {
        w.beginObject();
        w.kv("engine", c.engine);
        w.kv("design", c.design);
        w.kv("wall_sec", c.wallSec);
        w.kv("sim_khz", c.simKhz);
        w.kv("ns_per_node", c.nsPerNode);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    std::ofstream f(out);
    f << w.str() << "\n";
    if (!f) {
        std::fprintf(stderr, "failed to write %s\n", out.c_str());
        return 1;
    }
    std::printf("\nwrote %s\n", out.c_str());
    return bench::finish();
}
