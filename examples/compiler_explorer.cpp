/**
 * @file
 * Compiler explorer: walk a small Verilog design through every ASH
 * compiler stage, printing the dataflow graph statistics, the tile
 * mapping, and the generated C++-like task code (Fig 5 / Fig 7 of the
 * paper).
 *
 *   $ ./build/examples/compiler_explorer
 */

#include <cstdio>

#include "core/compiler/Codegen.h"
#include "core/compiler/Compiler.h"
#include "dfg/Dfg.h"
#include "verilog/Compile.h"

using namespace ash;

// The paper's running example: a registered adder tree (Fig 1).
static const char *kVerilog = R"(
module top(input clk,
           input [15:0] a0, input [15:0] b0,
           input [15:0] a1, input [15:0] b1,
           input [15:0] a2, input [15:0] b2,
           input [15:0] a3, input [15:0] b3,
           output [15:0] dot);
  reg [15:0] p0;
  reg [15:0] p1;
  reg [15:0] p2;
  reg [15:0] p3;
  reg [15:0] out;
  always_ff @(posedge clk) begin
    p0 <= a0 * b0;
    p1 <= a1 * b1;
    p2 <= a2 * b2;
    p3 <= a3 * b3;
    out <= (p0 + p1) + (p2 + p3);
  end
  assign dot = out;
endmodule
)";

int
main()
{
    rtl::Netlist nl = verilog::compileVerilog(kVerilog, "top");
    std::printf("--- frontend: %zu IR nodes, %zu regs ---\n",
                nl.numNodes(), nl.regs().size());

    dfg::Dfg unrolled(nl, {.unrolled = true});
    dfg::Dfg single(nl, {.unrolled = false});
    std::printf("--- dataflow graphs ---\n");
    std::printf("single-cycle: %zu nodes, parallelism %.2f\n",
                single.numNodes(), single.parallelism());
    std::printf("unrolled:     %zu nodes, parallelism %.2f "
                "(registers became cross-cycle edges)\n",
                unrolled.numNodes(), unrolled.parallelism());

    core::CompilerOptions copts;
    copts.numTiles = 2;
    copts.maxTaskCost = 6;
    core::TaskProgram prog = core::compile(nl, copts);
    std::printf("\n--- task program ---\n%s",
                core::programSummary(prog).c_str());

    std::printf("\n--- generated task code ---\n");
    for (const core::Task &t : prog.tasks) {
        std::printf("%s\n",
                    core::emitTaskCode(prog, t.id).c_str());
    }
    return 0;
}
