/**
 * @file
 * Quickstart: compile a small Verilog design, check it against the
 * reference simulator, and run it on the modeled SASH chip.
 *
 *   $ ./build/examples/quickstart
 */

#include <cstdio>

#include "core/arch/AshSim.h"
#include "core/compiler/Compiler.h"
#include "refsim/ReferenceSimulator.h"
#include "verilog/Compile.h"

using namespace ash;

// A tiny design: a gated accumulator with a peak detector.
static const char *kVerilog = R"(
module top(input clk, input en, input [15:0] x,
           output [15:0] total, output [15:0] peak);
  reg [15:0] acc;
  reg [15:0] best;
  always_ff @(posedge clk) begin
    if (en) begin
      acc <= acc + x;
      if (x > best)
        best <= x;
    end
  end
  assign total = acc;
  assign peak = best;
endmodule
)";

namespace {

class Testbench : public refsim::Stimulus
{
  public:
    void
    apply(uint64_t cycle, std::vector<uint64_t> &in) override
    {
        in[1] = cycle % 4 != 3;            // en
        in[2] = (cycle * 37 + 11) % 500;   // x
    }
};

} // namespace

int
main()
{
    // 1. Verilog -> netlist.
    rtl::Netlist netlist = verilog::compileVerilog(kVerilog, "top");
    std::printf("compiled: %zu IR nodes, %zu registers\n",
                netlist.numNodes(), netlist.regs().size());

    // 2. Golden run on the reference simulator.
    refsim::ReferenceSimulator ref(netlist);
    Testbench tb;
    refsim::OutputTrace golden = ref.run(tb, 100);

    // 3. Compile for a 4-tile ASH chip and run SASH.
    core::CompilerOptions copts;
    copts.numTiles = 4;
    core::TaskProgram prog = core::compile(netlist, copts);
    std::printf("task program: %zu tasks, depth %u, parallelism "
                "%.1f\n", prog.tasks.size(), prog.cycleDepth,
                prog.stats.parallelism);

    core::ArchConfig acfg;
    acfg.numTiles = 4;
    acfg.selective = true;   // SASH
    core::AshSimulator chip(prog, acfg);
    Testbench tb2;
    core::RunResult result = chip.run(tb2, 100);

    // 4. Verify bit-exact outputs.
    size_t mismatches = 0;
    for (size_t c = 0; c < golden.size(); ++c) {
        if (golden[c] != result.outputs[c])
            ++mismatches;
    }
    std::printf("outputs: %s (total=%llu peak=%llu at cycle 99)\n",
                mismatches ? "MISMATCH" : "bit-exact vs reference",
                static_cast<unsigned long long>(golden[99][0]),
                static_cast<unsigned long long>(golden[99][1]));
    std::printf("SASH: %llu chip cycles for 100 design cycles "
                "(%.0f simulated KHz), %llu tasks committed, %llu "
                "aborts\n",
                static_cast<unsigned long long>(result.chipCycles),
                result.speedKHz(),
                static_cast<unsigned long long>(
                    result.stats.get("tasksCommitted")),
                static_cast<unsigned long long>(
                    result.stats.get("aborts")));
    return mismatches ? 1 : 0;
}
