/**
 * @file
 * Design-space exploration over the four benchmark designs: sweep
 * tile counts and execution modes, printing speed, work, and
 * speculation behavior for each point.
 *
 *   $ ./build/examples/design_explorer [design] [cycles]
 *     design: vortex | chronos_pe | chronos_rv | ntt (default all)
 */

#include <cstdio>
#include <cstring>

#include "common/Table.h"
#include "core/arch/AshSim.h"
#include "core/compiler/Compiler.h"
#include "designs/Designs.h"

using namespace ash;

static void
explore(const designs::Design &design, uint64_t cycles)
{
    rtl::Netlist nl = designs::compileDesign(design);
    std::printf("\n== %s: %zu IR nodes ==\n", design.name.c_str(),
                nl.numNodes());

    TextTable table({"tiles", "mode", "sim KHz", "tasks committed",
                     "descs filtered", "aborts", "idle"});
    for (uint32_t tiles : {4u, 16u, 64u}) {
        core::CompilerOptions copts;
        copts.numTiles = tiles;
        core::TaskProgram prog = core::compile(nl, copts);
        for (bool selective : {false, true}) {
            core::ArchConfig cfg;
            cfg.numTiles = tiles;
            cfg.selective = selective;
            core::AshSimulator chip(prog, cfg);
            auto stim = design.makeStimulus();
            auto res = chip.run(*stim, cycles);
            double total_cycles =
                static_cast<double>(res.chipCycles) * tiles * 4;
            table.addRow(
                {TextTable::integer(tiles),
                 selective ? "SASH" : "DASH",
                 TextTable::num(res.speedKHz(), 0),
                 TextTable::integer(
                     res.stats.get("tasksCommitted")),
                 TextTable::integer(
                     res.stats.get("descsFiltered")),
                 TextTable::integer(res.stats.get("aborts")),
                 TextTable::percent(
                     static_cast<double>(
                         res.stats.get("coreCyclesIdle")) /
                     total_cycles)});
        }
    }
    std::printf("%s", table.toString().c_str());
}

int
main(int argc, char **argv)
{
    const char *which = argc > 1 ? argv[1] : nullptr;
    uint64_t cycles = argc > 2 ? strtoull(argv[2], nullptr, 10) : 60;

    for (const designs::Design &d : designs::allDesigns()) {
        if (which && d.name != which)
            continue;
        explore(d, cycles);
    }
    return 0;
}
