/**
 * @file
 * Building a design directly with the rtl::Netlist builder API — no
 * Verilog involved — and simulating it on DASH. The circuit is a
 * four-tap moving-sum filter with a small coefficient ROM.
 *
 *   $ ./build/examples/custom_circuit
 */

#include <cstdio>

#include "core/arch/AshSim.h"
#include "core/compiler/Compiler.h"
#include "refsim/ReferenceSimulator.h"
#include "rtl/Netlist.h"

using namespace ash;

namespace {

class Ramp : public refsim::Stimulus
{
  public:
    void
    apply(uint64_t cycle, std::vector<uint64_t> &in) override
    {
        in[0] = (cycle * 13 + 5) % 256;
    }
};

} // namespace

int
main()
{
    rtl::Netlist nl;

    // Input sample and a 4-deep shift register of taps.
    rtl::NodeId x = nl.addInput("x", 16);
    rtl::NodeId taps[4];
    taps[0] = nl.addReg("tap0", 16);
    taps[1] = nl.addReg("tap1", 16);
    taps[2] = nl.addReg("tap2", 16);
    taps[3] = nl.addReg("tap3", 16);
    nl.setRegNext(taps[0], x);
    nl.setRegNext(taps[1], taps[0]);
    nl.setRegNext(taps[2], taps[1]);
    nl.setRegNext(taps[3], taps[2]);

    // Coefficient ROM in a memory, indexed by a rotating pointer.
    rtl::MemId rom = nl.addMemory("coeffs", 16, 4);
    nl.setMemoryInit(rom, {1, 2, 3, 4});
    rtl::NodeId ptr = nl.addReg("ptr", 2);
    rtl::NodeId one2 = nl.addConst(2, 1);
    nl.setRegNext(ptr, nl.addOp(rtl::Op::Add, 2, {ptr, one2}));

    // sum = tap0*c[ptr] + tap1 + tap2 + tap3
    rtl::NodeId coeff = nl.addMemRead(rom, ptr);
    rtl::NodeId scaled = nl.addOp(rtl::Op::Mul, 16, {taps[0], coeff});
    rtl::NodeId s1 = nl.addOp(rtl::Op::Add, 16, {scaled, taps[1]});
    rtl::NodeId s2 = nl.addOp(rtl::Op::Add, 16, {s1, taps[2]});
    rtl::NodeId sum = nl.addOp(rtl::Op::Add, 16, {s2, taps[3]});
    nl.addOutput("sum", sum);
    nl.addOutput("coeff", coeff);
    nl.validate();

    // Golden model.
    refsim::ReferenceSimulator ref(nl);
    Ramp tb;
    auto golden = ref.run(tb, 64);

    // DASH on 2 tiles.
    core::CompilerOptions copts;
    copts.numTiles = 2;
    copts.maxTaskCost = 8;
    core::TaskProgram prog = core::compile(nl, copts);
    core::ArchConfig acfg;
    acfg.numTiles = 2;
    core::AshSimulator chip(prog, acfg);
    Ramp tb2;
    auto result = chip.run(tb2, 64);

    size_t bad = 0;
    for (size_t c = 0; c < golden.size(); ++c)
        bad += golden[c] != result.outputs[c];
    std::printf("filter outputs %s; sample sums:",
                bad ? "MISMATCH" : "match the reference");
    for (size_t c = 60; c < 64; ++c)
        std::printf(" %llu",
                    static_cast<unsigned long long>(golden[c][0]));
    std::printf("\nDASH: %llu chip cycles, %zu tasks, %.0f simulated "
                "KHz\n",
                static_cast<unsigned long long>(result.chipCycles),
                prog.tasks.size(), result.speedKHz());
    return bad ? 1 : 0;
}
