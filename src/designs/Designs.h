/**
 * @file
 * Benchmark hardware designs (Table 4 substitutes). Each generator
 * emits parametric synthesizable Verilog exercising the same
 * structure and activity profile as the paper's design, plus a
 * deterministic testbench stimulus:
 *
 *  - ntt: a real N-point number-theoretic-transform pipeline with
 *    modular butterflies and per-stage registers (CraterLake-style,
 *    ~100% activity).
 *  - chronos_pe: a grid of graph-update processing elements with
 *    task FIFOs and distance memories (sparse task arrivals, ~15-20%
 *    activity).
 *  - chronos_rv: a manycore of tiny 16-bit RISC cores with ROM
 *    programs, register files and data memories, duty-cycled enables
 *    (~15% activity).
 *  - vortex: a SIMT GPU-like array: warp scheduler + per-lane ALUs
 *    and register files; one warp issues per cycle so activity is
 *    roughly 1/warps (~7%).
 */

#ifndef ASH_DESIGNS_DESIGNS_H
#define ASH_DESIGNS_DESIGNS_H

#include <functional>
#include <string>
#include <vector>

#include "refsim/Stimulus.h"
#include "rtl/Netlist.h"

namespace ash::designs {

/** One benchmark design: source plus testbench. */
struct Design
{
    std::string name;
    std::string verilog;
    std::string top;
    /** Fresh deterministic stimulus (pure function of cycle). */
    std::function<refsim::StimulusPtr()> makeStimulus;
};

/** Scale knob: 1 = default bench size (thousands of DFG nodes). */
struct DesignScale
{
    unsigned nttPoints = 32;       ///< Power of two, <= 256.
    unsigned pes = 36;             ///< Chronos/PE processing elements.
    unsigned rvCores = 16;         ///< Chronos/RV cores.
    unsigned warps = 14;           ///< Vortex warps.
    unsigned lanes = 4;            ///< Vortex lanes per warp.
};

Design makeNtt(unsigned points = 32);
Design makeChronosPe(unsigned pes = 36);
Design makeChronosRv(unsigned cores = 16);
Design makeVortex(unsigned warps = 14, unsigned lanes = 4);

/** The four paper designs at the given scale. */
std::vector<Design> allDesigns(const DesignScale &scale = {});

/** Compile a design's Verilog to a validated netlist. */
rtl::Netlist compileDesign(const Design &design);

/**
 * Reference NTT of @p input (size = points) modulo the generator's
 * prime, for validating the ntt design against textbook math.
 */
std::vector<uint64_t> referenceNtt(const std::vector<uint64_t> &input);

/** The NTT modulus used by makeNtt. */
uint64_t nttModulus();

} // namespace ash::designs

#endif // ASH_DESIGNS_DESIGNS_H
