#include "designs/Designs.h"

#include <sstream>

#include "common/BitUtils.h"
#include "common/Logging.h"
#include "common/Random.h"
#include "verilog/Compile.h"

namespace ash::designs {

namespace {

// NTT parameters: a classic negacyclic-friendly NTT prime and a
// primitive root. 7681 = 15 * 2^9 + 1; ord(17) = 7680.
constexpr uint64_t kNttP = 7681;
constexpr uint64_t kNttG = 17;
constexpr unsigned kNttW = 13;

uint64_t
powMod(uint64_t base, uint64_t exp, uint64_t mod)
{
    uint64_t result = 1;
    base %= mod;
    while (exp) {
        if (exp & 1)
            result = result * base % mod;
        base = base * base % mod;
        exp >>= 1;
    }
    return result;
}

unsigned
bitReverse(unsigned value, unsigned bits)
{
    unsigned out = 0;
    for (unsigned i = 0; i < bits; ++i) {
        out = (out << 1) | (value & 1);
        value >>= 1;
    }
    return out;
}

/** Deterministic per-(cycle, lane) pseudo-random value. */
uint64_t
hashCycle(uint64_t cycle, uint64_t lane, uint64_t salt)
{
    uint64_t z = cycle * 0x9e3779b97f4a7c15ull + lane * 0xbf58476d1ce4e5b9ull +
                 salt;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

class LambdaStimulus : public refsim::Stimulus
{
  public:
    using Fn = std::function<void(uint64_t, std::vector<uint64_t> &)>;
    explicit LambdaStimulus(Fn fn) : _fn(std::move(fn)) {}
    void
    apply(uint64_t cycle, std::vector<uint64_t> &in) override
    {
        _fn(cycle, in);
    }

  private:
    Fn _fn;
};

std::function<refsim::StimulusPtr()>
stimulusFactory(LambdaStimulus::Fn fn)
{
    return [fn]() {
        return std::make_shared<LambdaStimulus>(fn);
    };
}

} // namespace

uint64_t
nttModulus()
{
    return kNttP;
}

std::vector<uint64_t>
referenceNtt(const std::vector<uint64_t> &input)
{
    size_t n = input.size();
    unsigned bits = log2Exact(n);
    uint64_t omega = powMod(kNttG, (kNttP - 1) / n, kNttP);

    std::vector<uint64_t> a(n);
    for (size_t i = 0; i < n; ++i)
        a[i] = input[bitReverse(static_cast<unsigned>(i), bits)] %
               kNttP;
    for (unsigned s = 0; s < bits; ++s) {
        size_t m = 1ull << (s + 1);
        uint64_t wm = powMod(omega, n / m, kNttP);
        for (size_t k = 0; k < n; k += m) {
            uint64_t w = 1;
            for (size_t j = 0; j < m / 2; ++j) {
                uint64_t t = w * a[k + j + m / 2] % kNttP;
                uint64_t u = a[k + j];
                a[k + j] = (u + t) % kNttP;
                a[k + j + m / 2] = (u + kNttP - t) % kNttP;
                w = w * wm % kNttP;
            }
        }
    }
    return a;
}

Design
makeNtt(unsigned points)
{
    ASH_ASSERT(points >= 4 && points <= 256 &&
               (points & (points - 1)) == 0,
               "NTT points must be a power of two in [4,256]");
    unsigned bits = log2Exact(points);
    uint64_t omega = powMod(kNttG, (kNttP - 1) / points, kNttP);

    std::ostringstream v;
    v << "// Generated " << points << "-point NTT pipeline, mod "
      << kNttP << "\n";
    v << "module bfly #(parameter TW = 1)\n"
      << "  (input [" << kNttW - 1 << ":0] a, input [" << kNttW - 1
      << ":0] b,\n"
      << "   output [" << kNttW - 1 << ":0] x, output [" << kNttW - 1
      << ":0] y);\n"
      << "  wire [31:0] bw;\n"
      << "  assign bw = b;\n"
      << "  wire [31:0] t32 = (bw * TW) % " << kNttP << ";\n"
      << "  wire [" << kNttW - 1 << ":0] t = t32[" << kNttW - 1
      << ":0];\n"
      << "  wire [" << kNttW << ":0] aw;\n"
      << "  assign aw = a;\n"
      << "  wire [" << kNttW << ":0] s = aw + t;\n"
      << "  assign x = (s >= " << kNttP << ") ? (s - " << kNttP
      << ") : s;\n"
      << "  wire [" << kNttW << ":0] d = (aw + " << kNttP
      << ") - t;\n"
      << "  assign y = (d >= " << kNttP << ") ? (d - " << kNttP
      << ") : d;\n"
      << "endmodule\n\n";

    v << "module ntt_top(input clk";
    for (unsigned i = 0; i < points; ++i)
        v << ",\n  input [" << kNttW - 1 << ":0] x" << i;
    for (unsigned i = 0; i < points; ++i)
        v << ",\n  output [" << kNttW - 1 << ":0] y" << i;
    v << ");\n";

    // Stage 0 registers latch bit-reversed inputs.
    for (unsigned i = 0; i < points; ++i)
        v << "  reg [" << kNttW - 1 << ":0] st0_r" << i << ";\n";
    v << "  always_ff @(posedge clk) begin\n";
    for (unsigned i = 0; i < points; ++i)
        v << "    st0_r" << i << " <= x" << bitReverse(i, bits)
          << ";\n";
    v << "  end\n";

    for (unsigned s = 0; s < bits; ++s) {
        unsigned m = 1u << (s + 1);
        uint64_t wm = powMod(omega, points / m, kNttP);
        // Butterflies: stage s consumes st{s}_r*, produces st{s}_w*.
        for (unsigned i = 0; i < points; ++i)
            v << "  wire [" << kNttW - 1 << ":0] st" << s << "_w" << i
              << ";\n";
        for (unsigned k = 0; k < points; k += m) {
            uint64_t w = 1;
            for (unsigned j = 0; j < m / 2; ++j) {
                unsigned hi = k + j;
                unsigned lo = k + j + m / 2;
                v << "  bfly #(.TW(" << w << ")) bf_" << s << "_" << hi
                  << " (.a(st" << s << "_r" << hi << "), .b(st" << s
                  << "_r" << lo << "), .x(st" << s << "_w" << hi
                  << "), .y(st" << s << "_w" << lo << "));\n";
                w = w * wm % kNttP;
            }
        }
        // Pipeline registers into the next stage.
        for (unsigned i = 0; i < points; ++i)
            v << "  reg [" << kNttW - 1 << ":0] st" << s + 1 << "_r"
              << i << ";\n";
        v << "  always_ff @(posedge clk) begin\n";
        for (unsigned i = 0; i < points; ++i)
            v << "    st" << s + 1 << "_r" << i << " <= st" << s
              << "_w" << i << ";\n";
        v << "  end\n";
    }
    for (unsigned i = 0; i < points; ++i)
        v << "  assign y" << i << " = st" << bits << "_r" << i
          << ";\n";
    v << "endmodule\n";

    Design d;
    d.name = "ntt";
    d.top = "ntt_top";
    d.verilog = v.str();
    unsigned n = points;
    d.makeStimulus = stimulusFactory(
        [n](uint64_t cycle, std::vector<uint64_t> &in) {
            // in[0] is clk; inputs follow in declaration order.
            for (unsigned i = 0; i < n; ++i)
                in[1 + i] = hashCycle(cycle, i, 0x17) % kNttP;
        });
    return d;
}

Design
makeChronosPe(unsigned pes)
{
    ASH_ASSERT(pes >= 2 && pes <= 256);
    std::ostringstream v;
    v << "// Generated Chronos-style graph-accelerator PE grid ("
      << pes << " PEs)\n";
    v << R"(
module pe #(parameter ID = 0)
  (input clk,
   input in_valid, input [5:0] in_node, input [15:0] in_dist,
   output out_valid, output [5:0] out_node, output [15:0] out_dist,
   output [15:0] probe);
  reg [15:0] dist [0:63];
  reg [5:0] q_node [0:7];
  reg [15:0] q_dist [0:7];
  reg [2:0] head;
  reg [2:0] tail;
  reg [3:0] count;
  reg [15:0] last_write;
  wire empty = count == 4'd0;
  wire full = count >= 4'd8;
  wire pop = !empty;
  wire push = in_valid && !full;
  wire [5:0] cur_node = q_node[head];
  wire [15:0] cur_dist = q_dist[head];
  wire [15:0] old_dist = dist[cur_node];
  wire improve = pop && ((cur_dist < old_dist) || (old_dist == 16'd0));
  always_ff @(posedge clk) begin
    if (push) begin
      q_node[tail] <= in_node;
      q_dist[tail] <= in_dist;
      tail <= tail + 3'd1;
    end
    if (pop)
      head <= head + 3'd1;
    count <= (count + (push ? 4'd1 : 4'd0)) - (pop ? 4'd1 : 4'd0);
    if (improve)
      dist[cur_node] <= cur_dist;
    if (improve)
      last_write <= cur_dist ^ {10'd0, cur_node};
  end
  assign out_valid = improve;
  assign out_node = cur_node ^ 6'd1;
  assign out_dist = cur_dist + {10'd0, cur_node[5:0]} + 16'd3;
  assign probe = last_write;
endmodule
)";
    v << "\nmodule pe_top(input clk, input [" << pes - 1
      << ":0] inj_valid, input [5:0] inj_node, input [15:0] inj_dist,\n"
      << "  output [15:0] checksum, output any_update);\n";
    for (unsigned i = 0; i < pes; ++i) {
        unsigned prev = (i + pes - 1) % pes;
        v << "  wire ov" << i << "; wire [5:0] on" << i
          << "; wire [15:0] od" << i << "; wire [15:0] pr" << i
          << ";\n";
        v << "  wire iv" << i << " = inj_valid[" << i << "] | ov"
          << prev << ";\n"
          << "  wire [5:0] in_n" << i << " = inj_valid[" << i
          << "] ? inj_node : on" << prev << ";\n"
          << "  wire [15:0] in_d" << i << " = inj_valid[" << i
          << "] ? inj_dist : od" << prev << ";\n";
    }
    for (unsigned i = 0; i < pes; ++i) {
        v << "  pe #(.ID(" << i << ")) u_pe" << i << " (.clk(clk), "
          << ".in_valid(iv" << i << "), .in_node(in_n" << i
          << "), .in_dist(in_d" << i << "), .out_valid(ov" << i
          << "), .out_node(on" << i << "), .out_dist(od" << i
          << "), .probe(pr" << i << "));\n";
    }
    v << "  assign checksum = ";
    for (unsigned i = 0; i < pes; ++i)
        v << (i ? " ^ " : "") << "pr" << i;
    v << ";\n  assign any_update = ";
    for (unsigned i = 0; i < pes; ++i)
        v << (i ? " | " : "") << "ov" << i;
    v << ";\nendmodule\n";

    Design d;
    d.name = "chronos_pe";
    d.top = "pe_top";
    d.verilog = v.str();
    unsigned n = pes;
    d.makeStimulus = stimulusFactory(
        [n](uint64_t cycle, std::vector<uint64_t> &in) {
            // Bursty, sparse task injection: most cycles are idle so
            // the shared injection buses stay quiet, matching the
            // low activity factors of graph accelerators.
            bool burst = cycle % 8 < 2;
            uint64_t mask = 0;
            if (burst) {
                for (unsigned i = 0; i < n; ++i) {
                    if (hashCycle(cycle, i, 0x9e) % 100 < 8)
                        mask |= 1ull << (i % 64);
                }
            }
            in[1] = mask;
            if (mask) {
                in[2] = hashCycle(cycle, 101, 0x9e) % 64;
                in[3] = hashCycle(cycle, 202, 0x9e) % 50000 + 1;
            }
        });
    return d;
}

namespace {

/** Tiny 16-bit ISA assembler for the manycore and GPU kernels. */
uint16_t
asmIns(unsigned op, unsigned rd, unsigned rs1, unsigned imm7)
{
    return static_cast<uint16_t>((op & 7) << 13 | (rd & 7) << 10 |
                                 (rs1 & 7) << 7 | (imm7 & 0x7f));
}

/** ROM as an always_comb case table. */
void
emitRom(std::ostringstream &v, const std::vector<uint16_t> &program,
        const char *pc_name, const char *out_name, unsigned pc_bits)
{
    v << "  reg [15:0] " << out_name << ";\n"
      << "  always_comb begin\n    case (" << pc_name << ")\n";
    for (size_t i = 0; i < program.size(); ++i) {
        v << "      " << pc_bits << "'d" << i << ": " << out_name
          << " = 16'd" << program[i] << ";\n";
    }
    v << "      default: " << out_name << " = 16'd"
      << asmIns(7, 0, 0, 0) << ";\n    endcase\n  end\n";
}

} // namespace

Design
makeChronosRv(unsigned cores)
{
    ASH_ASSERT(cores >= 2 && cores <= 64);
    // Kernel: accumulate a rolling sum through data memory with a
    // loop: r1 += r2; mem[r2] = r1; r4 = mem[r2]; r1 ^= r4 >> 1;
    // r2 += 1; branch back while r2 != r3; then reset r2.
    std::vector<uint16_t> prog = {
        asmIns(0, 3, 3, 24),   // 0: addi r3, r3, 24  (loop bound)
        asmIns(0, 2, 2, 1),    // 1: addi r2, r2, 1
        asmIns(1, 1, 1, 2 << 4),   // 2: add r1, r1, r2
        asmIns(4, 1, 2, 0),    // 3: st mem[r2] = r1
        asmIns(3, 4, 2, 0),    // 4: ld r4 = mem[r2]
        asmIns(6, 4, 4, 1),    // 5: sll r4 = r4 << 1
        asmIns(2, 1, 1, 4 << 4),   // 6: xor r1, r1, r4
        asmIns(5, 3, 2, 0x7a), // 7: bne r2,r3 -> pc += -6
        asmIns(0, 2, 0, 0),    // 8: addi r2, r0, 0
        asmIns(7, 0, 0, 0),    // 9: jmp 0
    };

    std::ostringstream v;
    v << "// Generated Chronos-style RISC manycore (" << cores
      << " cores)\n";
    v << "module rvcore(input clk, input en, input [15:0] id,\n"
      << "              output [15:0] sig);\n"
      << "  reg [7:0] pc;\n"
      << "  reg [15:0] rf [0:7];\n"
      << "  reg [15:0] dmem [0:31];\n";
    emitRom(v, prog, "pc", "instr", 8);
    v << R"(
  wire [2:0] op = instr[15:13];
  wire [2:0] rd = instr[12:10];
  wire [2:0] rs1 = instr[9:7];
  wire [2:0] rs2 = instr[6:4];
  wire [6:0] imm = instr[6:0];
  wire [15:0] v1 = rf[rs1];
  wire [15:0] v2 = rf[rs2];
  wire [15:0] vd = rf[rd];
  wire [15:0] addr = v1 + {9'd0, imm};
  wire [15:0] mem_rd = dmem[addr[4:0]];
  always_ff @(posedge clk) begin
    if (en) begin
      pc <= pc + 8'd1;
      case (op)
        3'd0: rf[rd] <= v1 + {9'd0, imm};
        3'd1: rf[rd] <= v1 + v2;
        3'd2: rf[rd] <= (v1 ^ v2) + id;
        3'd3: rf[rd] <= mem_rd;
        3'd4: dmem[addr[4:0]] <= vd;
        3'd5: begin
          if (v1 != vd)
            pc <= pc + {{9{imm[6]}}, imm};
        end
        3'd6: rf[rd] <= v1 << imm[3:0];
        3'd7: pc <= {1'd0, imm};
      endcase
    end
  end
  assign sig = rf[1] ^ {8'd0, pc};
endmodule
)";
    v << "\nmodule rv_top(input clk, input [" << cores - 1
      << ":0] en, output [15:0] checksum);\n";
    for (unsigned i = 0; i < cores; ++i) {
        v << "  wire [15:0] sig" << i << ";\n"
          << "  rvcore u_c" << i << " (.clk(clk), .en(en[" << i
          << "]), .id(16'd" << (i * 37 + 5) << "), .sig(sig" << i
          << "));\n";
    }
    v << "  assign checksum = ";
    for (unsigned i = 0; i < cores; ++i)
        v << (i ? " ^ " : "") << "sig" << i;
    v << ";\nendmodule\n";

    Design d;
    d.name = "chronos_rv";
    d.top = "rv_top";
    d.verilog = v.str();
    unsigned n = cores;
    d.makeStimulus = stimulusFactory(
        [n](uint64_t cycle, std::vector<uint64_t> &in) {
            // ~15% duty cycle per core, staggered phases.
            uint64_t mask = 0;
            for (unsigned i = 0; i < n; ++i) {
                if ((cycle + i * 3) % 7 == 0)
                    mask |= 1ull << i;
            }
            in[1] = mask;
        });
    return d;
}

Design
makeVortex(unsigned warps, unsigned lanes)
{
    ASH_ASSERT(warps >= 2 && warps <= 64 && lanes >= 1 && lanes <= 16);
    // SIMT kernel: a vector-add-style loop over lane-private memory.
    std::vector<uint16_t> prog = {
        asmIns(0, 2, 2, 1),    // 0: addi r2, r2, 1   (index)
        asmIns(3, 3, 2, 0),    // 1: ld r3 = mem[r2]
        asmIns(0, 4, 2, 8),    // 2: addi r4 = r2 + 8
        asmIns(3, 5, 4, 0),    // 3: ld r5 = mem[r4]
        asmIns(1, 6, 3, 5 << 4),   // 4: add r6 = r3 + r5
        asmIns(4, 6, 2, 16),   // 5: st mem[r2+16] = r6
        asmIns(2, 1, 1, 6 << 4),   // 6: xor r1 ^= r6 (plus id)
        asmIns(7, 0, 0, 0),    // 7: jmp 0
    };

    std::ostringstream v;
    v << "// Generated Vortex-style SIMT array (" << warps
      << " warps x " << lanes << " lanes)\n";
    v << "module lane(input clk, input issue,\n"
      << "            input [2:0] op, input [2:0] rd, input [2:0] rs1,\n"
      << "            input [2:0] rs2, input [6:0] imm,\n"
      << "            input [15:0] id, output [15:0] sig);\n"
      << "  reg [15:0] rf [0:7];\n"
      << "  reg [15:0] dmem [0:31];\n"
      << R"(
  wire [15:0] v1 = rf[rs1];
  wire [15:0] v2 = rf[rs2];
  wire [15:0] vd = rf[rd];
  wire [15:0] addr = v1 + {9'd0, imm};
  wire [15:0] mem_rd = dmem[addr[4:0]];
  always_ff @(posedge clk) begin
    if (issue) begin
      case (op)
        3'd0: rf[rd] <= v1 + {9'd0, imm};
        3'd1: rf[rd] <= v1 + v2;
        3'd2: rf[rd] <= (v1 ^ v2) + id;
        3'd3: rf[rd] <= mem_rd;
        3'd4: dmem[addr[4:0]] <= vd;
        3'd6: rf[rd] <= v1 << imm[3:0];
        default: rf[rd] <= v1;
      endcase
    end
  end
  assign sig = rf[1];
endmodule
)";
    v << "\nmodule warpunit #(parameter WID = 0, parameter LANES = "
      << lanes << ")\n"
      << "  (input clk, input run, output [15:0] sig);\n"
      << "  reg [3:0] pc;\n";
    emitRom(v, prog, "pc", "instr", 4);
    v << "  wire [2:0] op = instr[15:13];\n"
      << "  wire [2:0] rd = instr[12:10];\n"
      << "  wire [2:0] rs1 = instr[9:7];\n"
      << "  wire [2:0] rs2 = instr[6:4];\n"
      << "  wire [6:0] imm = instr[6:0];\n"
      << "  always_ff @(posedge clk) begin\n"
      << "    if (run) begin\n"
      << "      if (op == 3'd7) pc <= {1'd0, imm[2:0]};\n"
      << "      else pc <= pc + 4'd1;\n"
      << "    end\n"
      << "  end\n";
    for (unsigned l = 0; l < lanes; ++l) {
        v << "  wire [15:0] lsig" << l << ";\n"
          << "  lane u_l" << l
          << " (.clk(clk), .issue(run), .op(op), .rd(rd), .rs1(rs1), "
          << ".rs2(rs2), .imm(imm), .id(16'd"
          << "0 + " << (l * 97 + 13) << " + WID), .sig(lsig" << l
          << "));\n";
    }
    v << "  assign sig = ";
    for (unsigned l = 0; l < lanes; ++l)
        v << (l ? " ^ " : "") << "lsig" << l;
    v << ";\nendmodule\n";

    v << "\nmodule vx_top(input clk, input [" << warps - 1
      << ":0] run, output [15:0] checksum);\n";
    for (unsigned w = 0; w < warps; ++w) {
        v << "  wire [15:0] wsig" << w << ";\n"
          << "  warpunit #(.WID(" << w * 11 << ")) u_w" << w
          << " (.clk(clk), .run(run[" << w << "]), .sig(wsig" << w
          << "));\n";
    }
    v << "  assign checksum = ";
    for (unsigned w = 0; w < warps; ++w)
        v << (w ? " ^ " : "") << "wsig" << w;
    v << ";\nendmodule\n";

    Design d;
    d.name = "vortex";
    d.top = "vx_top";
    d.verilog = v.str();
    unsigned nw = warps;
    d.makeStimulus = stimulusFactory(
        [nw](uint64_t cycle, std::vector<uint64_t> &in) {
            // Round-robin single-issue with occasional stall cycles,
            // like a warp scheduler with mostly-blocked warps.
            if (cycle % 16 == 15)
                return;   // Stall: nothing issues.
            in[1] = 1ull << (cycle % nw);
        });
    return d;
}

std::vector<Design>
allDesigns(const DesignScale &scale)
{
    return {makeVortex(scale.warps, scale.lanes),
            makeChronosPe(scale.pes), makeChronosRv(scale.rvCores),
            makeNtt(scale.nttPoints)};
}

rtl::Netlist
compileDesign(const Design &design)
{
    return verilog::compileVerilog(design.verilog, design.top);
}

} // namespace ash::designs
