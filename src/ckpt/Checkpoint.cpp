#include "ckpt/Checkpoint.h"

#include "common/TmpPath.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "common/Json.h"
#include "common/Logging.h"
#include "guard/Fault.h"
#include "obs/Trace.h"
#include "prof/Prof.h"
#include "rtl/Netlist.h"

namespace fs = std::filesystem;

namespace ash::ckpt {

uint64_t
Snapshotter::stateHash() const
{
    std::ostringstream image;
    save(image);
    const std::string &bytes = image.str();
    return fnv1a(bytes.data(), bytes.size());
}

uint64_t
designFingerprint(const rtl::Netlist &nl)
{
    Fnv f;
    f.u64(nl.numNodes());
    for (rtl::NodeId id = 0; id < nl.numNodes(); ++id) {
        const rtl::Node &n = nl.node(id);
        f.u64(static_cast<uint64_t>(n.op));
        f.u64(n.width);
        f.u64(n.mem);
        f.u64(n.imm);
        f.u64(n.operands.size());
        for (rtl::NodeId op : n.operands)
            f.u64(op);
    }
    f.u64(nl.inputs().size());
    for (rtl::NodeId id : nl.inputs()) {
        f.u64(id);
        f.str(nl.inputName(id));
    }
    f.u64(nl.outputs().size());
    for (rtl::NodeId id : nl.outputs()) {
        f.u64(id);
        f.str(nl.outputName(id));
    }
    f.u64(nl.regs().size());
    for (const rtl::RegInfo &r : nl.regs()) {
        f.u64(r.node);
        f.u64(r.next);
        f.u64(r.init);
        f.str(r.name);
    }
    f.u64(nl.memories().size());
    for (const rtl::MemInfo &m : nl.memories()) {
        f.str(m.name);
        f.u64(m.width);
        f.u64(m.depth);
        f.u64(m.init.size());
        for (uint64_t v : m.init)
            f.u64(v);
        f.u64(m.writePorts.size());
        for (rtl::NodeId p : m.writePorts)
            f.u64(p);
    }
    return f.value();
}

// ---------------------------------------------------------------------
// CheckpointManager
// ---------------------------------------------------------------------

namespace {

/**
 * Crash injection for the kill-and-resume tests: when the
 * ASH_CKPT_DIE_AFTER environment variable holds K > 0, the process
 * _exit(42)s immediately after completing its K-th snapshot image
 * write — skipping every destructor and flush, which is the closest
 * portable approximation of SIGKILL that ctest can still sequence
 * deterministically. Counted process-wide so parallel sweeps die
 * once regardless of which job crosses the threshold.
 */
void
maybeDieAfterWrite()
{
    static const long configured = [] {
        const char *env = std::getenv("ASH_CKPT_DIE_AFTER");
        return env ? std::atol(env) : 0L;
    }();
    if (configured <= 0)
        return;
    static std::atomic<long> writes{0};
    if (writes.fetch_add(1) + 1 == configured) {
        warn("ASH_CKPT_DIE_AFTER=%ld reached; simulating crash",
             configured);
        _exit(42);
    }
}

/** Manifest state_hash field: 16 hex digits in a JSON string. */
uint64_t
parseHashHex(const JsonValue &v)
{
    if (!v.isString())
        return 0;
    return std::strtoull(v.string().c_str(), nullptr, 16);
}

} // namespace

std::string
CheckpointManager::sanitizeKey(const std::string &key)
{
    std::string out;
    out.reserve(key.size());
    for (char c : key) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '-' || c == '.' ||
                  c == '_';
        out += ok ? c : '_';
    }
    return out.empty() ? std::string("run") : out;
}

CheckpointManager::CheckpointManager(CheckpointOptions opts,
                                     std::string key)
    : _opts(std::move(opts)), _key(std::move(key))
{
    ASH_ASSERT(!_opts.dir.empty(), "checkpoint dir required");
    if (_opts.keep == 0)
        _opts.keep = 1;
    _keyDir = (fs::path(_opts.dir) / sanitizeKey(_key)).string();
}

std::string
CheckpointManager::imagePath(uint64_t cycle) const
{
    return (fs::path(_keyDir) /
            ("ckpt-" + std::to_string(cycle) + ".ashckpt"))
        .string();
}

void
CheckpointManager::writeImage(const std::string &path,
                              const Snapshotter &sim)
{
    std::string tmp = uniqueTmpPath(path);
    {
        ASH_FAULT_POINT("ckpt.image.write");
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            throw SnapshotError("cannot open " + tmp + " for writing");
        sim.save(out);
        out.flush();
        if (!out)
            throw SnapshotError("write failed for " + tmp);
    }
    ASH_FAULT_POINT("ckpt.image.rename");
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec)
        throw SnapshotError("rename " + tmp + " -> " + path +
                            " failed: " + ec.message());
    maybeDieAfterWrite();
}

void
CheckpointManager::writeManifest() const
{
    JsonWriter w(true);
    w.beginObject();
    w.kv("format", "ash-ckpt-manifest");
    w.kv("version", kSnapshotVersion);
    w.kv("key", _key);
    w.kv("engine", "");   // Reserved; images carry the engine name.
    w.kv("every_cycles", _opts.everyCycles);
    w.key("images").beginArray();
    for (size_t i = 0; i < _cycles.size(); ++i) {
        w.beginObject();
        w.kv("cycle", _cycles[i]);
        w.kv("file", "ckpt-" + std::to_string(_cycles[i]) +
                         ".ashckpt");
        // As a hex STRING: JsonValue parses numbers into double,
        // which silently rounds u64 hashes above 2^53.
        char hash[20];
        std::snprintf(hash, sizeof(hash), "%016llx",
                      static_cast<unsigned long long>(_hashes[i]));
        w.kv("state_hash", hash);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    std::string path =
        (fs::path(_keyDir) / "manifest.json").string();
    std::string tmp = uniqueTmpPath(path);
    {
        ASH_FAULT_POINT("ckpt.manifest.write");
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            throw SnapshotError("cannot open " + tmp + " for writing");
        out << w.str() << '\n';
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec)
        throw SnapshotError("rename of manifest failed: " +
                            ec.message());
}

void
CheckpointManager::snapshot(uint64_t cycle, Snapshotter &sim)
{
    ASH_PROF_ZONE("snapshot");
    std::error_code ec;
    fs::create_directories(_keyDir, ec);
    if (ec)
        throw SnapshotError("cannot create " + _keyDir + ": " +
                            ec.message());

    // Serialize once; hash and file share the same bytes. The hash
    // is taken BEFORE fault-plan corruption, so an injected bit flip
    // in the written file is caught on restore exactly like real
    // on-disk rot.
    std::ostringstream image;
    sim.save(image);
    std::string bytes = image.str();
    uint64_t hash = fnv1a(bytes.data(), bytes.size());
    if (!bytes.empty())
        ASH_FAULT_CORRUPT("ckpt.image.bytes", &bytes[0], bytes.size());

    std::string path = imagePath(cycle);
    std::string tmp = uniqueTmpPath(path);
    {
        ASH_FAULT_POINT("ckpt.image.write");
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            throw SnapshotError("cannot open " + tmp + " for writing");
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        out.flush();
        if (!out)
            throw SnapshotError("write failed for " + tmp);
    }
    ASH_FAULT_POINT("ckpt.image.rename");
    fs::rename(tmp, path, ec);
    if (ec)
        throw SnapshotError("rename " + tmp + " -> " + path +
                            " failed: " + ec.message());

    _cycles.push_back(cycle);
    _hashes.push_back(hash);
    while (_cycles.size() > _opts.keep) {
        fs::remove(imagePath(_cycles.front()), ec);   // Best-effort.
        _cycles.erase(_cycles.begin());
        _hashes.erase(_hashes.begin());
    }
    writeManifest();

    ASH_OBS_EVENT(obs::EventKind::Checkpoint, cycle, 0, 0, 0, cycle,
                  0);
    debugLog("checkpoint: %s @ cycle %llu (hash %016llx)",
             path.c_str(), static_cast<unsigned long long>(cycle),
             static_cast<unsigned long long>(hash));
    maybeDieAfterWrite();
}

void
CheckpointManager::onCycle(uint64_t cycle, Snapshotter &sim)
{
    if (_disabled || _opts.everyCycles == 0 || cycle == 0)
        return;
    uint64_t bucket = cycle / _opts.everyCycles;
    if (bucket <= _lastBucket)
        return;
    _lastBucket = bucket;
    // A checkpoint is a safety net, not a correctness requirement:
    // losing one must not kill a healthy run. Structured failures
    // (disk full, I/O error, injected fault) are warned about and
    // the simulation continues; three in a row means the disk is
    // not coming back, so stop burning serialization time on it.
    try {
        snapshot(cycle, sim);
        _failStreak = 0;
    } catch (const Error &e) {
        ++_failStreak;
        warn("checkpoint at cycle %llu failed (%s): %s",
             static_cast<unsigned long long>(cycle), e.kind().c_str(),
             e.what());
        if (_failStreak >= 3) {
            _disabled = true;
            warn("checkpointing disabled for '%s' after %d "
                 "consecutive failures; run continues without "
                 "crash protection",
                 _key.c_str(), _failStreak);
        }
    }
}

namespace {

/** FNV-1a of a file's bytes; 0 when the file cannot be read. */
uint64_t
fileHash(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return 0;
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string &bytes = buf.str();
    return fnv1a(bytes.data(), bytes.size());
}

} // namespace

bool
CheckpointManager::tryRestoreLatest(Snapshotter &sim)
{
    ASH_PROF_ZONE("restore");
    std::string manifestPath =
        (fs::path(_keyDir) / "manifest.json").string();
    std::ifstream manifestIn(manifestPath, std::ios::binary);
    if (!manifestIn) {
        // No manifest at all — but a crash between an image rename
        // and the manifest rewrite can leave orphaned images; a
        // directory with images and no manifest is still resumable.
        std::error_code probe;
        if (!fs::exists(_keyDir, probe))
            return false;   // Nothing saved for this key yet.
    }
    ASH_FAULT_POINT("ckpt.manifest.read");
    std::stringstream buf;
    if (manifestIn)
        buf << manifestIn.rdbuf();

    // Candidate images, oldest first.
    struct Candidate
    {
        uint64_t cycle = 0;
        std::string file;
        bool haveHash = false;
        uint64_t hash = 0;
    };
    std::vector<Candidate> cands;

    JsonValue doc;
    std::string err;
    bool usable = manifestIn && jsonParse(buf.str(), doc, &err) &&
                  doc.isObject() &&
                  doc["format"].string() == "ash-ckpt-manifest";
    if (usable) {
        const JsonValue &images = doc["images"];
        if (!images.isArray() || images.array().empty())
            return false;
        for (size_t i = 0; i < images.array().size(); ++i) {
            const JsonValue &entry = images.at(i);
            Candidate c;
            c.cycle = entry["cycle"].asU64();
            c.file = entry["file"].string();
            if (entry.has("state_hash")) {
                c.haveHash = true;
                c.hash = parseHashHex(entry["state_hash"]);
            }
            cands.push_back(std::move(c));
        }
    } else {
        // Manifest missing, truncated, or corrupt: the images are
        // the ground truth, so degrade to a directory scan instead
        // of declaring the whole key unresumable. Restored hashes
        // are then verified only by each image's own CRC.
        if (manifestIn)
            warn("manifest %s is unusable (%s); scanning %s for "
                 "checkpoint images",
                 manifestPath.c_str(),
                 err.empty() ? "unexpected format" : err.c_str(),
                 _keyDir.c_str());
        std::error_code ec;
        for (const auto &de : fs::directory_iterator(_keyDir, ec)) {
            std::string name = de.path().filename().string();
            const std::string pre = "ckpt-", suf = ".ashckpt";
            if (name.size() <= pre.size() + suf.size() ||
                name.compare(0, pre.size(), pre) != 0 ||
                name.compare(name.size() - suf.size(), suf.size(),
                             suf) != 0)
                continue;
            std::string digits = name.substr(
                pre.size(), name.size() - pre.size() - suf.size());
            if (digits.empty() ||
                digits.find_first_not_of("0123456789") !=
                    std::string::npos)
                continue;
            Candidate c;
            c.cycle = std::strtoull(digits.c_str(), nullptr, 10);
            c.file = name;
            cands.push_back(std::move(c));
        }
        if (cands.empty())
            return false;
        std::sort(cands.begin(), cands.end(),
                  [](const Candidate &a, const Candidate &b) {
                      return a.cycle < b.cycle;
                  });
    }

    // Newest image last; fall back to older ones if the newest is
    // unreadable or corrupt (e.g. the crash clipped it despite
    // tmp+rename). A failed restore leaves @p sim partial, but the
    // next restore overwrites every field again, so retrying an
    // older image is safe.
    std::vector<std::string> failures;
    for (size_t i = cands.size(); i-- > 0;) {
        const Candidate &cand = cands[i];
        std::string path = (fs::path(_keyDir) / cand.file).string();
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            warn("checkpoint image %s missing; trying older",
                 path.c_str());
            failures.push_back(path + ": missing or unreadable");
            continue;
        }
        try {
            sim.restore(in);
            if (cand.haveHash && sim.stateHash() != cand.hash)
                throw SnapshotError(
                    "restored state hash differs from manifest "
                    "entry for " + path);
        } catch (const SnapshotError &e) {
            failures.push_back(path + ": " + e.what());
            if (i > 0)
                warn("%s; trying older image", e.what());
            continue;
        }
        _resumedCycle = cand.cycle;
        _lastBucket = _opts.everyCycles
                          ? cand.cycle / _opts.everyCycles
                          : 0;
        // Re-adopt the retained set so new snapshots extend it.
        _cycles.clear();
        _hashes.clear();
        for (size_t j = 0; j <= i; ++j) {
            uint64_t h = cands[j].haveHash
                             ? cands[j].hash
                             : fileHash((fs::path(_keyDir) /
                                         cands[j].file)
                                            .string());
            _cycles.push_back(cands[j].cycle);
            _hashes.push_back(h);
        }
        ASH_OBS_EVENT(obs::EventKind::Checkpoint, cand.cycle, 0, 0,
                      0, cand.cycle, 1);
        inform("resumed '%s' from checkpoint at cycle %llu",
               _key.c_str(),
               static_cast<unsigned long long>(cand.cycle));
        return true;
    }

    // Every candidate failed: report all of them, so the operator
    // sees the full damage instead of only the oldest image's error.
    std::string msg = "no usable checkpoint for '" + _key +
                      "'; tried " + std::to_string(cands.size()) +
                      " image(s):";
    for (const std::string &f : failures)
        msg += "\n  " + f;
    throw SnapshotError(msg);
}

} // namespace ash::ckpt
