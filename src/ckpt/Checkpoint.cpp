#include "ckpt/Checkpoint.h"

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "common/Json.h"
#include "common/Logging.h"
#include "obs/Trace.h"
#include "rtl/Netlist.h"

namespace fs = std::filesystem;

namespace ash::ckpt {

uint64_t
Snapshotter::stateHash() const
{
    std::ostringstream image;
    save(image);
    const std::string &bytes = image.str();
    return fnv1a(bytes.data(), bytes.size());
}

uint64_t
designFingerprint(const rtl::Netlist &nl)
{
    Fnv f;
    f.u64(nl.numNodes());
    for (rtl::NodeId id = 0; id < nl.numNodes(); ++id) {
        const rtl::Node &n = nl.node(id);
        f.u64(static_cast<uint64_t>(n.op));
        f.u64(n.width);
        f.u64(n.mem);
        f.u64(n.imm);
        f.u64(n.operands.size());
        for (rtl::NodeId op : n.operands)
            f.u64(op);
    }
    f.u64(nl.inputs().size());
    for (rtl::NodeId id : nl.inputs()) {
        f.u64(id);
        f.str(nl.inputName(id));
    }
    f.u64(nl.outputs().size());
    for (rtl::NodeId id : nl.outputs()) {
        f.u64(id);
        f.str(nl.outputName(id));
    }
    f.u64(nl.regs().size());
    for (const rtl::RegInfo &r : nl.regs()) {
        f.u64(r.node);
        f.u64(r.next);
        f.u64(r.init);
        f.str(r.name);
    }
    f.u64(nl.memories().size());
    for (const rtl::MemInfo &m : nl.memories()) {
        f.str(m.name);
        f.u64(m.width);
        f.u64(m.depth);
        f.u64(m.init.size());
        for (uint64_t v : m.init)
            f.u64(v);
        f.u64(m.writePorts.size());
        for (rtl::NodeId p : m.writePorts)
            f.u64(p);
    }
    return f.value();
}

// ---------------------------------------------------------------------
// CheckpointManager
// ---------------------------------------------------------------------

namespace {

/**
 * Crash injection for the kill-and-resume tests: when the
 * ASH_CKPT_DIE_AFTER environment variable holds K > 0, the process
 * _exit(42)s immediately after completing its K-th snapshot image
 * write — skipping every destructor and flush, which is the closest
 * portable approximation of SIGKILL that ctest can still sequence
 * deterministically. Counted process-wide so parallel sweeps die
 * once regardless of which job crosses the threshold.
 */
void
maybeDieAfterWrite()
{
    static const long configured = [] {
        const char *env = std::getenv("ASH_CKPT_DIE_AFTER");
        return env ? std::atol(env) : 0L;
    }();
    if (configured <= 0)
        return;
    static std::atomic<long> writes{0};
    if (writes.fetch_add(1) + 1 == configured) {
        warn("ASH_CKPT_DIE_AFTER=%ld reached; simulating crash",
             configured);
        _exit(42);
    }
}

/** Manifest state_hash field: 16 hex digits in a JSON string. */
uint64_t
parseHashHex(const JsonValue &v)
{
    if (!v.isString())
        return 0;
    return std::strtoull(v.string().c_str(), nullptr, 16);
}

} // namespace

std::string
CheckpointManager::sanitizeKey(const std::string &key)
{
    std::string out;
    out.reserve(key.size());
    for (char c : key) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '-' || c == '.' ||
                  c == '_';
        out += ok ? c : '_';
    }
    return out.empty() ? std::string("run") : out;
}

CheckpointManager::CheckpointManager(CheckpointOptions opts,
                                     std::string key)
    : _opts(std::move(opts)), _key(std::move(key))
{
    ASH_ASSERT(!_opts.dir.empty(), "checkpoint dir required");
    if (_opts.keep == 0)
        _opts.keep = 1;
    _keyDir = (fs::path(_opts.dir) / sanitizeKey(_key)).string();
}

std::string
CheckpointManager::imagePath(uint64_t cycle) const
{
    return (fs::path(_keyDir) /
            ("ckpt-" + std::to_string(cycle) + ".ashckpt"))
        .string();
}

void
CheckpointManager::writeImage(const std::string &path,
                              const Snapshotter &sim)
{
    std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            throw SnapshotError("cannot open " + tmp + " for writing");
        sim.save(out);
        out.flush();
        if (!out)
            throw SnapshotError("write failed for " + tmp);
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec)
        throw SnapshotError("rename " + tmp + " -> " + path +
                            " failed: " + ec.message());
    maybeDieAfterWrite();
}

void
CheckpointManager::writeManifest() const
{
    JsonWriter w(true);
    w.beginObject();
    w.kv("format", "ash-ckpt-manifest");
    w.kv("version", kSnapshotVersion);
    w.kv("key", _key);
    w.kv("engine", "");   // Reserved; images carry the engine name.
    w.kv("every_cycles", _opts.everyCycles);
    w.key("images").beginArray();
    for (size_t i = 0; i < _cycles.size(); ++i) {
        w.beginObject();
        w.kv("cycle", _cycles[i]);
        w.kv("file", "ckpt-" + std::to_string(_cycles[i]) +
                         ".ashckpt");
        // As a hex STRING: JsonValue parses numbers into double,
        // which silently rounds u64 hashes above 2^53.
        char hash[20];
        std::snprintf(hash, sizeof(hash), "%016llx",
                      static_cast<unsigned long long>(_hashes[i]));
        w.kv("state_hash", hash);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    std::string path =
        (fs::path(_keyDir) / "manifest.json").string();
    std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            throw SnapshotError("cannot open " + tmp + " for writing");
        out << w.str() << '\n';
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec)
        throw SnapshotError("rename of manifest failed: " +
                            ec.message());
}

void
CheckpointManager::snapshot(uint64_t cycle, Snapshotter &sim)
{
    std::error_code ec;
    fs::create_directories(_keyDir, ec);
    if (ec)
        throw SnapshotError("cannot create " + _keyDir + ": " +
                            ec.message());

    // Serialize once; hash and file share the same bytes.
    std::ostringstream image;
    sim.save(image);
    const std::string &bytes = image.str();
    uint64_t hash = fnv1a(bytes.data(), bytes.size());

    std::string path = imagePath(cycle);
    std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            throw SnapshotError("cannot open " + tmp + " for writing");
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        out.flush();
        if (!out)
            throw SnapshotError("write failed for " + tmp);
    }
    fs::rename(tmp, path, ec);
    if (ec)
        throw SnapshotError("rename " + tmp + " -> " + path +
                            " failed: " + ec.message());

    _cycles.push_back(cycle);
    _hashes.push_back(hash);
    while (_cycles.size() > _opts.keep) {
        fs::remove(imagePath(_cycles.front()), ec);   // Best-effort.
        _cycles.erase(_cycles.begin());
        _hashes.erase(_hashes.begin());
    }
    writeManifest();

    ASH_OBS_EVENT(obs::EventKind::Checkpoint, cycle, 0, 0, 0, cycle,
                  0);
    debugLog("checkpoint: %s @ cycle %llu (hash %016llx)",
             path.c_str(), static_cast<unsigned long long>(cycle),
             static_cast<unsigned long long>(hash));
    maybeDieAfterWrite();
}

void
CheckpointManager::onCycle(uint64_t cycle, Snapshotter &sim)
{
    if (_opts.everyCycles == 0 || cycle == 0)
        return;
    uint64_t bucket = cycle / _opts.everyCycles;
    if (bucket <= _lastBucket)
        return;
    _lastBucket = bucket;
    snapshot(cycle, sim);
}

bool
CheckpointManager::tryRestoreLatest(Snapshotter &sim)
{
    std::string manifestPath =
        (fs::path(_keyDir) / "manifest.json").string();
    std::ifstream manifestIn(manifestPath, std::ios::binary);
    if (!manifestIn)
        return false;   // Nothing saved for this key yet.
    std::stringstream buf;
    buf << manifestIn.rdbuf();

    JsonValue doc;
    std::string err;
    if (!jsonParse(buf.str(), doc, &err))
        throw SnapshotError("manifest " + manifestPath +
                            " is not valid JSON: " + err);
    if (!doc.isObject() ||
        doc["format"].string() != "ash-ckpt-manifest")
        throw SnapshotError("manifest " + manifestPath +
                            " has unexpected format");

    const JsonValue &images = doc["images"];
    if (!images.isArray() || images.array().empty())
        return false;

    // Newest image last; fall back to older ones if the newest is
    // unreadable or corrupt (e.g. the crash clipped it despite
    // tmp+rename). A failed restore leaves @p sim partial, but the
    // next restore overwrites every field again, so retrying an
    // older image is safe.
    for (size_t i = images.array().size(); i-- > 0;) {
        const JsonValue &entry = images.at(i);
        uint64_t cycle = entry["cycle"].asU64();
        std::string file = entry["file"].string();
        std::string path = (fs::path(_keyDir) / file).string();
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            warn("checkpoint image %s missing; trying older",
                 path.c_str());
            continue;
        }
        try {
            sim.restore(in);
            if (entry.has("state_hash") &&
                sim.stateHash() !=
                    parseHashHex(entry["state_hash"]))
                throw SnapshotError(
                    "restored state hash differs from manifest "
                    "entry for " + path);
        } catch (const SnapshotError &e) {
            if (i == 0)
                throw;   // Nothing older to fall back to.
            warn("%s; trying older image", e.what());
            continue;
        }
        _resumedCycle = cycle;
        _lastBucket = _opts.everyCycles
                          ? cycle / _opts.everyCycles
                          : 0;
        // Re-adopt the retained set so new snapshots extend it.
        _cycles.clear();
        _hashes.clear();
        for (size_t j = 0; j <= i; ++j) {
            _cycles.push_back(images.at(j)["cycle"].asU64());
            _hashes.push_back(
                parseHashHex(images.at(j)["state_hash"]));
        }
        ASH_OBS_EVENT(obs::EventKind::Checkpoint, cycle, 0, 0, 0,
                      cycle, 1);
        inform("resumed '%s' from checkpoint at cycle %llu",
               _key.c_str(),
               static_cast<unsigned long long>(cycle));
        return true;
    }
    return false;
}

} // namespace ash::ckpt
