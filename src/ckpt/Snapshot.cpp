#include "ckpt/Snapshot.h"

#include <array>

#include "common/Logging.h"
#include "common/Stats.h"

namespace ash::ckpt {

namespace {

std::array<uint32_t, 256>
makeCrcTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

} // namespace

uint32_t
crc32(const void *data, size_t len)
{
    static const std::array<uint32_t, 256> table = makeCrcTable();
    const auto *p = static_cast<const unsigned char *>(data);
    uint32_t c = 0xFFFFFFFFu;
    for (size_t i = 0; i < len; ++i)
        c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

uint64_t
fnv1a(const void *data, size_t len, uint64_t seed)
{
    const auto *p = static_cast<const unsigned char *>(data);
    uint64_t h = seed;
    for (size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

// ---------------------------------------------------------------------
// SnapshotWriter
// ---------------------------------------------------------------------

SnapshotWriter::SnapshotWriter(std::ostream &out,
                               const std::string &engine,
                               uint64_t designFingerprint,
                               uint64_t configHash)
    : _out(out)
{
    _out.write(kSnapshotMagic, sizeof(kSnapshotMagic));
    uint32_t version = kSnapshotVersion;
    _out.write(reinterpret_cast<const char *>(&version),
               sizeof(version));
    uint64_t nameLen = engine.size();
    _out.write(reinterpret_cast<const char *>(&nameLen),
               sizeof(nameLen));
    _out.write(engine.data(),
               static_cast<std::streamsize>(engine.size()));
    _out.write(reinterpret_cast<const char *>(&designFingerprint),
               sizeof(designFingerprint));
    _out.write(reinterpret_cast<const char *>(&configHash),
               sizeof(configHash));
}

void
SnapshotWriter::beginSection(uint32_t tag)
{
    ASH_ASSERT(!_open, "nested snapshot section");
    _open = true;
    _tag = tag;
    _section.clear();
}

void
SnapshotWriter::raw(const void *data, size_t len)
{
    ASH_ASSERT(_open, "snapshot write outside a section");
    if (len)
        _section.append(static_cast<const char *>(data), len);
}

void
SnapshotWriter::endSection()
{
    ASH_ASSERT(_open, "endSection without beginSection");
    _open = false;
    uint64_t len = _section.size();
    uint32_t crc = crc32(_section.data(), _section.size());
    _out.write(reinterpret_cast<const char *>(&_tag), sizeof(_tag));
    _out.write(reinterpret_cast<const char *>(&len), sizeof(len));
    _out.write(_section.data(),
               static_cast<std::streamsize>(_section.size()));
    _out.write(reinterpret_cast<const char *>(&crc), sizeof(crc));
    if (!_out)
        throw SnapshotError("write failed while emitting section");
}

// ---------------------------------------------------------------------
// SnapshotReader
// ---------------------------------------------------------------------

namespace {

/** Read exactly @p len bytes or throw. */
void
readExact(std::istream &in, void *data, size_t len,
          const char *what)
{
    in.read(static_cast<char *>(data),
            static_cast<std::streamsize>(len));
    if (static_cast<size_t>(in.gcount()) != len)
        throw SnapshotError(std::string("truncated image reading ") +
                            what);
}

} // namespace

SnapshotReader::SnapshotReader(std::istream &in) : _in(in)
{
    char magic[sizeof(kSnapshotMagic)];
    readExact(_in, magic, sizeof(magic), "magic");
    if (std::memcmp(magic, kSnapshotMagic, sizeof(magic)) != 0)
        throw SnapshotError("bad magic; not an ASH checkpoint image");
    readExact(_in, &_version, sizeof(_version), "version");
    if (_version != kSnapshotVersion)
        throw SnapshotError(
            "unsupported snapshot version " +
            std::to_string(_version) + " (expected " +
            std::to_string(kSnapshotVersion) + ")");
    uint64_t nameLen = 0;
    readExact(_in, &nameLen, sizeof(nameLen), "engine name length");
    if (nameLen > 256)
        throw SnapshotError("implausible engine name length");
    _engine.resize(nameLen);
    if (nameLen)
        readExact(_in, _engine.data(), nameLen, "engine name");
    readExact(_in, &_designFingerprint, sizeof(_designFingerprint),
              "design fingerprint");
    readExact(_in, &_configHash, sizeof(_configHash), "config hash");
}

void
SnapshotReader::require(const std::string &engine,
                        uint64_t designFingerprint,
                        uint64_t configHash) const
{
    if (_engine != engine)
        throw SnapshotError("engine mismatch: image is '" + _engine +
                            "', simulator is '" + engine + "'");
    if (_designFingerprint != designFingerprint)
        throw SnapshotError(
            "design fingerprint mismatch: image was taken of a "
            "different netlist");
    if (_configHash != configHash)
        throw SnapshotError(
            "config hash mismatch: image was taken under a "
            "different engine configuration");
}

void
SnapshotReader::section(uint32_t tag)
{
    ASH_ASSERT(!_open, "nested snapshot section");
    uint32_t fileTag = 0;
    readExact(_in, &fileTag, sizeof(fileTag), "section tag");
    uint64_t len = 0;
    readExact(_in, &len, sizeof(len), "section length");
    if (len > (1ull << 40))
        throw SnapshotError("implausible section length");
    _section.resize(len);
    if (len)
        readExact(_in, _section.data(), len, "section payload");
    uint32_t fileCrc = 0;
    readExact(_in, &fileCrc, sizeof(fileCrc), "section CRC");
    uint32_t actual = crc32(_section.data(), _section.size());
    if (fileCrc != actual)
        throw SnapshotError("CRC mismatch in section " +
                            std::to_string(fileTag) +
                            "; image is corrupt");
    if (fileTag != tag)
        throw SnapshotError("unexpected section tag " +
                            std::to_string(fileTag) + " (expected " +
                            std::to_string(tag) + ")");
    _tag = fileTag;
    _pos = 0;
    _open = true;
}

void
SnapshotReader::endSection()
{
    ASH_ASSERT(_open, "endSection without section");
    if (_pos != _section.size())
        throw SnapshotError(
            "section " + std::to_string(_tag) + " has " +
            std::to_string(_section.size() - _pos) +
            " unread payload bytes; layout mismatch");
    _open = false;
}

void
SnapshotReader::expectEnd()
{
    ASH_ASSERT(!_open, "expectEnd inside a section");
    if (_in.peek() != std::istream::traits_type::eof())
        throw SnapshotError("trailing bytes after final section");
}

void
SnapshotReader::checkAvail(uint64_t len) const
{
    ASH_ASSERT(_open, "snapshot read outside a section");
    if (len > _section.size() - _pos)
        throw SnapshotError("section " + std::to_string(_tag) +
                            " over-read; layout mismatch");
}

void
SnapshotReader::raw(void *data, size_t len)
{
    checkAvail(len);
    if (len)
        std::memcpy(data, _section.data() + _pos, len);
    _pos += len;
}

uint8_t
SnapshotReader::u8()
{
    uint8_t v;
    raw(&v, sizeof(v));
    return v;
}

uint32_t
SnapshotReader::u32()
{
    uint32_t v;
    raw(&v, sizeof(v));
    return v;
}

uint64_t
SnapshotReader::u64()
{
    uint64_t v;
    raw(&v, sizeof(v));
    return v;
}

std::string
SnapshotReader::str()
{
    uint64_t n = u64();
    checkAvail(n);
    std::string s(n, '\0');
    raw(s.data(), n);
    return s;
}

// ---------------------------------------------------------------------
// StatSet IO
// ---------------------------------------------------------------------

void
saveStats(SnapshotWriter &w, const StatSet &stats)
{
    w.u64(stats.counters().size());
    for (const auto &[name, value] : stats.counters()) {
        w.str(name);
        w.u64(value);
    }
    w.u64(stats.accumulators().size());
    for (const auto &[name, acc] : stats.accumulators()) {
        w.str(name);
        w.u64(acc.count);
        w.f64(acc.sum);
        w.f64(acc.minValue);
        w.f64(acc.maxValue);
    }
    w.u64(stats.histograms().size());
    for (const auto &[name, h] : stats.histograms()) {
        w.str(name);
        w.u64(h.count);
        w.u64(h.sum);
        w.u64(h.minValue);
        w.u64(h.maxValue);
        w.raw(h.buckets.data(),
              h.buckets.size() * sizeof(h.buckets[0]));
    }
}

void
restoreStats(SnapshotReader &r, StatSet &out)
{
    out.clear();
    uint64_t counters = r.u64();
    for (uint64_t i = 0; i < counters; ++i) {
        std::string name = r.str();
        out.set(name, r.u64());
    }
    uint64_t accums = r.u64();
    for (uint64_t i = 0; i < accums; ++i) {
        std::string name = r.str();
        Accumulator acc;
        acc.count = r.u64();
        acc.sum = r.f64();
        acc.minValue = r.f64();
        acc.maxValue = r.f64();
        out.addAccum(name, acc);
    }
    uint64_t hists = r.u64();
    for (uint64_t i = 0; i < hists; ++i) {
        std::string name = r.str();
        Histogram h;
        h.count = r.u64();
        h.sum = r.u64();
        h.minValue = r.u64();
        h.maxValue = r.u64();
        r.raw(h.buckets.data(),
              h.buckets.size() * sizeof(h.buckets[0]));
        out.addHistogram(name, h);
    }
}

} // namespace ash::ckpt
