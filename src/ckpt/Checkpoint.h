/**
 * @file
 * Engine-facing checkpoint interfaces and the periodic
 * CheckpointManager. A Snapshotter is anything that can serialize
 * its complete simulated state into the Snapshot format and restore
 * it to a bit-identical replica; all three engines (refsim, AshSim,
 * baseline) implement it. A CycleHook is invoked by an engine's run
 * loop once per simulated design cycle at the engine's quiescent
 * point — the only place a snapshot is guaranteed self-consistent.
 *
 * CheckpointManager implements CycleHook: every N cycles it writes
 * <dir>/<key>/ckpt-<cycle>.ashckpt atomically (tmp + rename), prunes
 * all but the last K images, and rewrites a manifest.json describing
 * what is on disk, so a crashed run can restore the newest image and
 * continue deterministically.
 */

#ifndef ASH_CKPT_CHECKPOINT_H
#define ASH_CKPT_CHECKPOINT_H

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/Snapshot.h"

namespace ash {
namespace rtl {
class Netlist;
} // namespace rtl

namespace ckpt {

/** An engine whose full simulated state can round-trip a Snapshot. */
class Snapshotter
{
  public:
    virtual ~Snapshotter() = default;

    /** Serialize complete state; restore() must rebuild it exactly. */
    virtual void save(std::ostream &out) const = 0;

    /**
     * Replace all state with the image in @p in. Throws
     * SnapshotError on any mismatch or corruption; on throw the
     * simulator must not be used further (state may be partial).
     */
    virtual void restore(std::istream &in) = 0;

    /** Short stable engine identifier stored in the image header. */
    virtual const char *engineName() const = 0;

    /**
     * FNV-1a over the serialized image: two engines with equal
     * hashes hold bit-identical simulated state. Used for periodic
     * differential checks and manifest integrity entries.
     */
    uint64_t stateHash() const;
};

/** Periodic callback fired by an engine run loop between cycles. */
class CycleHook
{
  public:
    virtual ~CycleHook() = default;

    /** @p cycle design cycles have fully committed in @p sim. */
    virtual void onCycle(uint64_t cycle, Snapshotter &sim) = 0;
};

/**
 * Structural FNV-1a fingerprint of a netlist: ops, widths,
 * operands, immediates, memories, registers, and port names. Two
 * netlists with equal fingerprints are interchangeable for
 * simulation, so a snapshot of one restores into the other.
 */
uint64_t designFingerprint(const rtl::Netlist &nl);

struct CheckpointOptions
{
    std::string dir;           ///< Root checkpoint directory.
    uint64_t everyCycles = 0;  ///< Snapshot period; 0 disables.
    unsigned keep = 3;         ///< Retained images per key.
};

/**
 * Periodic snapshotting with retention and a JSON manifest; one
 * manager per simulation run, identified inside @p dir by @p key
 * (e.g. the sweep job name). Also the restore entry point:
 * tryRestoreLatest() loads the newest intact image for the key.
 */
class CheckpointManager : public CycleHook
{
  public:
    CheckpointManager(CheckpointOptions opts, std::string key);

    /**
     * Snapshot when the period elapses. A failed snapshot (disk
     * full, I/O error, injected fault) is warned about and the run
     * continues; after three consecutive failures checkpointing is
     * disabled for the rest of the run rather than stalling the
     * simulation on a dead disk. Any success resets the counter.
     */
    void onCycle(uint64_t cycle, Snapshotter &sim) override;

    /** True once repeated snapshot failures disabled checkpointing. */
    bool disabled() const { return _disabled; }

    /**
     * Restore @p sim from the newest manifest-listed image for this
     * key. Returns false when no usable image exists; throws
     * SnapshotError when an image exists but does not match @p sim.
     * After success resumedCycle() tells where the run left off.
     */
    bool tryRestoreLatest(Snapshotter &sim);

    uint64_t resumedCycle() const { return _resumedCycle; }

    /** Directory holding this key's images and manifest. */
    const std::string &keyDir() const { return _keyDir; }

    /** Filesystem-safe mangling of a job key ('/' and co -> '_'). */
    static std::string sanitizeKey(const std::string &key);

    /**
     * Write one snapshot image atomically (tmp + rename). Honors the
     * ASH_CKPT_DIE_AFTER crash-injection hook; see Checkpoint.cpp.
     */
    static void writeImage(const std::string &path,
                           const Snapshotter &sim);

  private:
    void snapshot(uint64_t cycle, Snapshotter &sim);
    void writeManifest() const;
    std::string imagePath(uint64_t cycle) const;

    CheckpointOptions _opts;
    std::string _key;
    std::string _keyDir;
    uint64_t _lastBucket = 0;       ///< cycle / everyCycles of last image.
    uint64_t _resumedCycle = 0;
    int _failStreak = 0;            ///< Consecutive snapshot failures.
    bool _disabled = false;         ///< Set after 3 straight failures.
    /** Cycles with on-disk images, oldest first (retention window). */
    std::vector<uint64_t> _cycles;
    /** stateHash of each retained image, parallel to _cycles. */
    std::vector<uint64_t> _hashes;
};

} // namespace ckpt
} // namespace ash

#endif // ASH_CKPT_CHECKPOINT_H
