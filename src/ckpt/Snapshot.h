/**
 * @file
 * Versioned binary snapshot format shared by every engine's
 * checkpoint implementation. An image is:
 *
 *   header:   magic "ASHCKPT1" (8 bytes)
 *             u32 format version (kSnapshotVersion)
 *             str engine name ("refsim", "ash", "baseline")
 *             u64 design fingerprint (FNV-1a over netlist structure)
 *             u64 engine-config hash (FNV-1a over config fields)
 *   sections: zero or more of
 *             u32 tag, u64 payload length, payload bytes, u32 CRC32
 *
 * All integers are little-endian fixed-width; doubles travel as
 * their IEEE-754 bit pattern, so save/restore round-trips are exact.
 * SnapshotWriter buffers one section at a time and emits tag/len/
 * payload/CRC on endSection(); SnapshotReader validates the CRC of
 * each section before any field of it can be read, and every decode
 * error — bad magic, version or fingerprint mismatch, truncation,
 * CRC failure, over-read — throws SnapshotError rather than
 * producing silently wrong simulator state.
 */

#ifndef ASH_CKPT_SNAPSHOT_H
#define ASH_CKPT_SNAPSHOT_H

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/Error.h"

namespace ash::ckpt {

/** Bump when the section layout of any engine changes. */
constexpr uint32_t kSnapshotVersion = 1;

/** 8-byte file magic; the trailing digit is NOT the format version. */
constexpr char kSnapshotMagic[8] = {'A', 'S', 'H', 'C',
                                    'K', 'P', 'T', '1'};

/** Structured decode/validation failure; never UB, never a crash. */
class SnapshotError : public Error
{
  public:
    explicit SnapshotError(const std::string &what)
        : Error("snapshot", "snapshot: " + what)
    {
    }
};

/** CRC32 (IEEE 802.3, reflected 0xEDB88320) of @p len bytes. */
uint32_t crc32(const void *data, size_t len);

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

/** One FNV-1a step chain over a byte range. */
uint64_t fnv1a(const void *data, size_t len,
               uint64_t seed = kFnvOffset);

/** Incremental FNV-1a hasher for fingerprints and config hashes. */
struct Fnv
{
    uint64_t h = kFnvOffset;

    void
    bytes(const void *data, size_t len)
    {
        h = fnv1a(data, len, h);
    }
    void
    u64(uint64_t v)
    {
        bytes(&v, sizeof(v));
    }
    void
    f64(double v)
    {
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }
    void
    str(const std::string &s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }
    uint64_t value() const { return h; }
};

/**
 * Streaming snapshot writer. Construct with the header fields (the
 * header is emitted immediately), then beginSection()/field writes/
 * endSection() per section. Sections must not nest.
 */
class SnapshotWriter
{
  public:
    SnapshotWriter(std::ostream &out, const std::string &engine,
                   uint64_t designFingerprint, uint64_t configHash);

    void beginSection(uint32_t tag);
    void endSection();

    void
    u8(uint8_t v)
    {
        raw(&v, sizeof(v));
    }
    void
    u32(uint32_t v)
    {
        raw(&v, sizeof(v));
    }
    void
    u64(uint64_t v)
    {
        raw(&v, sizeof(v));
    }
    void
    i64(int64_t v)
    {
        u64(static_cast<uint64_t>(v));
    }
    void
    f64(double v)
    {
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }
    void
    b(bool v)
    {
        u8(v ? 1 : 0);
    }
    void
    str(const std::string &s)
    {
        u64(s.size());
        raw(s.data(), s.size());
    }
    /** Length-prefixed vector of a trivially-copyable element type. */
    template <typename T>
    void
    vec(const std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        u64(v.size());
        raw(v.data(), v.size() * sizeof(T));
    }
    void raw(const void *data, size_t len);

  private:
    std::ostream &_out;
    std::string _section;
    uint32_t _tag = 0;
    bool _open = false;
};

/**
 * Snapshot reader. The constructor consumes and validates the
 * header; sections are pulled with section(tag) — which reads the
 * next section from the stream, checks its tag and CRC, and makes
 * its fields readable — and closed with endSection(), which insists
 * every payload byte was consumed (layout drift detector).
 */
class SnapshotReader
{
  public:
    explicit SnapshotReader(std::istream &in);

    uint32_t version() const { return _version; }
    const std::string &engine() const { return _engine; }
    uint64_t designFingerprint() const { return _designFingerprint; }
    uint64_t configHash() const { return _configHash; }

    /** Throw unless the header matches what the engine expects. */
    void require(const std::string &engine,
                 uint64_t designFingerprint, uint64_t configHash) const;

    /** Open the next section; throws unless its tag is @p tag. */
    void section(uint32_t tag);
    /** Close the current section; throws on unread payload bytes. */
    void endSection();
    /** Throw unless the stream holds no further sections. */
    void expectEnd();

    uint8_t u8();
    uint32_t u32();
    uint64_t u64();
    int64_t i64() { return static_cast<int64_t>(u64()); }
    double
    f64()
    {
        uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }
    bool b() { return u8() != 0; }
    std::string str();
    template <typename T>
    void
    vec(std::vector<T> &out)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        uint64_t n = u64();
        checkAvail(n * sizeof(T));
        out.resize(n);
        raw(out.data(), n * sizeof(T));
    }
    void raw(void *data, size_t len);

  private:
    void checkAvail(uint64_t len) const;

    std::istream &_in;
    uint32_t _version = 0;
    std::string _engine;
    uint64_t _designFingerprint = 0;
    uint64_t _configHash = 0;

    std::string _section;
    size_t _pos = 0;
    uint32_t _tag = 0;
    bool _open = false;
};

} // namespace ash::ckpt

namespace ash {
class StatSet;
namespace ckpt {

/**
 * StatSet (de)serialization shared by all engines. restoreStats()
 * clears @p out first; the rebuilt set compares bit-identical to the
 * saved one (set() recreates zero-valued counters, and merge-into-
 * empty copies accumulators/histograms exactly).
 */
void saveStats(SnapshotWriter &w, const StatSet &stats);
void restoreStats(SnapshotReader &r, StatSet &out);

} // namespace ckpt
} // namespace ash

#endif // ASH_CKPT_SNAPSHOT_H
