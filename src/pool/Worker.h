/**
 * @file
 * The worker side of the pool: the loop a freshly forked child runs
 * over its end of the supervisor socketpair. One frame in (a
 * WorkRequest), run the handler, one frame out (the WorkReply with
 * the resource bill). The child never outlives the stream: EOF from
 * the supervisor — drain or parent death — is a clean _exit(0), and
 * an undecodable frame is a desync the child cannot repair, so it
 * exits and lets the supervisor respawn a trusted stream.
 *
 * Fault scope: while a request is being framed (before the handler's
 * own SweepRunner installs the job-key scope provider), the pool
 * provides the request's scope string, so `pool.worker.kill@<match>`
 * plans can target one tenant or design exactly like `job.body@...`
 * plans do.
 */

#ifndef ASH_POOL_WORKER_H
#define ASH_POOL_WORKER_H

#include <functional>

#include "pool/Ipc.h"

namespace ash::pool {

/** Runs one request inside the worker process. Must not throw —
 *  failures travel as ok=false replies. */
using Handler = std::function<WorkReply(const WorkRequest &)>;

/**
 * Serve requests on @p fd until EOF; never returns (the child
 * _exit()s). The `pool.worker.kill` fault site fires once per
 * request, under the request's scope, before the handler runs.
 */
[[noreturn]] void workerMain(int fd, const Handler &handler);

} // namespace ash::pool

#endif // ASH_POOL_WORKER_H
