/**
 * @file
 * The supervised worker-process pool: crash containment for services
 * that execute untrusted-by-construction work (dlopened jit kernels,
 * unbounded simulations) on behalf of many tenants.
 *
 * PROCESS TREE — start() forks N long-lived workers, each holding
 * one end of a private socketpair and its own copy-on-write address
 * space (so each worker owns a private jit KernelCache handle, a
 * private design cache, and cannot scribble on its siblings).
 * submit() leases a worker slot, frames the request in, and blocks
 * for the reply frame (result bytes + the prof-style cost bill).
 *
 * CRASH CONTAINMENT — a worker that dies (EOF on its socketpair,
 * confirmed by a waitpid reap) converts the in-flight request into a
 * structured `worker_crash` failure; the slot respawns on its next
 * lease with deterministic bounded exponential backoff (the exec
 * retry math) that resets after the first healthy reply. A worker
 * that blows its request deadline (+ grace) is SIGKILLed by the
 * supervisor — the parent-side backstop behind the worker's own
 * in-process watchdog — and reported as `worker_timeout`.
 *
 * QUARANTINE — every submit() passes through a per-key circuit
 * breaker (Breaker.h; the serve layer keys it by design
 * fingerprint). Containment-class failures (crash/timeout/IPC) feed
 * the breaker; an OPEN key fails fast with `circuit_open`, spending
 * no worker, no fork, no time.
 *
 * Fault sites: `pool.worker.spawn` (spawn-path failures, retried
 * under the same backoff), `pool.worker.kill` (in the child, per
 * request), `pool.ipc.corrupt` (reply framing).
 *
 * FORK SAFETY — the initial fork happens in start(), before the
 * caller spawns its service threads. Respawns later fork from a
 * threaded process; that is the same trade the serve daemon's
 * --isolate mode already makes, and the child runs only
 * async-signal-tolerant glibc paths (pthread_atfork resets malloc)
 * before settling into its own single-threaded loop.
 */

#ifndef ASH_POOL_SUPERVISOR_H
#define ASH_POOL_SUPERVISOR_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include <sys/types.h>

#include "pool/Breaker.h"
#include "pool/Ipc.h"
#include "pool/Worker.h"

namespace ash::pool {

/** Pool sizing, supervision, and quarantine knobs. */
struct PoolOptions
{
    unsigned workers = 2;

    BreakerOptions breaker;

    /** Respawn backoff (exec::retryBackoffMs shape). */
    uint64_t respawnBaseMs = 25;
    uint64_t respawnCapMs = 2000;

    /** Parent-side kill grace past the request deadline, ms. */
    uint64_t killGraceMs = 1000;

    /** Reply wait for requests WITHOUT a deadline, ms. */
    uint64_t replyTimeoutMs = 10 * 60 * 1000;

    /** Runs in the child right after fork (close inherited listen
     *  fds and the like) before the worker loop starts. */
    std::function<void()> childInit;
};

/** Counters for /stats. */
struct PoolStats
{
    unsigned workers = 0;
    uint64_t spawns = 0;        ///< Successful forks, ever.
    uint64_t restarts = 0;      ///< Spawns replacing a dead worker.
    uint64_t spawnRetries = 0;  ///< Spawn attempts that failed.
    uint64_t crashes = 0;       ///< Requests lost to worker death.
    uint64_t timeouts = 0;      ///< Parent-side deadline kills.
    uint64_t ipcErrors = 0;     ///< Corrupt/desynced reply frames.
    uint64_t rejectedOpen = 0;  ///< Fast-failed by an open breaker.
    uint64_t breakerOpens = 0;  ///< Breaker open flips.
    std::vector<BreakerBoard::Snap> breakers;
};

/** The pool; one per serving process. */
class Supervisor
{
  public:
    Supervisor(PoolOptions opts, Handler handler);
    ~Supervisor();

    Supervisor(const Supervisor &) = delete;
    Supervisor &operator=(const Supervisor &) = delete;

    /** Fork the initial workers. Call before spawning service
     *  threads. False with a message in @p err if no worker could
     *  be spawned at all. */
    bool start(std::string *err);

    /** Kill and reap every worker; idempotent. */
    void stop();

    /**
     * Run @p req on a worker (blocking). Every outcome is a reply:
     * ok, or a structured failure with kind one of the handler's own
     * kinds, "worker_crash", "worker_timeout", "pool_ipc",
     * "circuit_open", or "pool_stopped".
     */
    WorkReply submit(const WorkRequest &req);

    PoolStats stats() const;

    /** The breaker table (tests, direct probes). */
    BreakerBoard &breakers() { return _breakers; }

  private:
    struct Slot
    {
        pid_t pid = -1;
        int fd = -1;
        bool leased = false;
        /** Consecutive containment failures; keys respawn backoff. */
        int strikes = 0;
        uint64_t seq = 0;
        uint64_t backoffSeed = 0;
    };

    /** Block for a free slot; nullptr once stopped. */
    Slot *lease();
    void release(Slot &slot);

    /** Ensure slot has a live worker, forking (with backoff) if not.
     *  False when every spawn attempt failed. */
    bool ensureAlive(Slot &slot);

    /** SIGKILL + reap + close; safe on an already-dead slot. */
    void killSlot(Slot &slot);

    /** True when the slot's child has exited (reaps it). */
    bool reapIfDead(Slot &slot);

    PoolOptions _opts;
    Handler _handler;
    BreakerBoard _breakers;

    mutable std::mutex _mutex;
    std::condition_variable _cv;
    std::vector<Slot> _slots;
    bool _started = false;
    bool _stopped = false;

    uint64_t _spawns = 0;
    uint64_t _restarts = 0;
    uint64_t _spawnRetries = 0;
    uint64_t _crashes = 0;
    uint64_t _timeouts = 0;
    uint64_t _ipcErrors = 0;
};

} // namespace ash::pool

#endif // ASH_POOL_SUPERVISOR_H
