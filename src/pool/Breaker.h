/**
 * @file
 * Per-key circuit breakers for the worker pool: crash-loop
 * quarantine at design granularity. One poisoned design — a kernel
 * that segfaults its worker, a netlist that never meets its deadline
 * — must 503 cleanly instead of burning a worker respawn per request
 * while every other tenant's designs keep their fast paths.
 *
 * State machine per key (the design fingerprint):
 *
 *   CLOSED --K failures in window--> OPEN --cooldown--> HALF-OPEN
 *   HALF-OPEN --probe succeeds--> CLOSED
 *   HALF-OPEN --probe fails----> OPEN (cooldown restarts)
 *
 * Only containment-class failures count toward K: worker crashes,
 * deadline timeouts, and IPC breakdowns. Structured simulation
 * errors (bad request, injected job faults) are the request's own
 * problem and never open the breaker.
 *
 * While OPEN, admit() rejects instantly — no worker lease, no fork,
 * no queue slot. After cooldownMs one caller is admitted as the
 * half-open probe; concurrent callers keep getting rejected until
 * that probe reports back. Time is passed in by the caller so tests
 * can drive the state machine without sleeping.
 */

#ifndef ASH_POOL_BREAKER_H
#define ASH_POOL_BREAKER_H

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace ash::pool {

/** Breaker policy knobs. */
struct BreakerOptions
{
    /** Failures within the window that open the breaker. */
    int threshold = 3;
    /** Rolling failure-count window, milliseconds. */
    uint64_t windowMs = 30000;
    /** OPEN -> HALF-OPEN cooldown, milliseconds. */
    uint64_t cooldownMs = 1000;
};

enum class BreakerState : uint8_t { Closed, Open, HalfOpen };

inline const char *
breakerStateName(BreakerState s)
{
    switch (s) {
      case BreakerState::Closed:   return "closed";
      case BreakerState::Open:     return "open";
      case BreakerState::HalfOpen: return "half_open";
    }
    return "?";
}

/** What admit() decided for one request. */
enum class BreakerVerdict
{
    Allow,  ///< Closed (or no history): run it.
    Probe,  ///< Half-open: run it, and report the outcome faithfully.
    Reject, ///< Open: fail fast with a structured circuit_open error.
};

/** Keyed breaker table; thread-safe. */
class BreakerBoard
{
  public:
    using Clock = std::chrono::steady_clock;

    struct Snap
    {
        std::string key;
        BreakerState state = BreakerState::Closed;
        uint64_t failures = 0;  ///< Containment failures, all time.
        uint64_t rejected = 0;  ///< Requests refused while open.
        uint64_t opens = 0;     ///< Closed/half-open -> open flips.
    };

    explicit BreakerBoard(BreakerOptions opts) : _opts(opts) {}

    /** Gate one request for @p key. */
    BreakerVerdict
    admit(const std::string &key, Clock::time_point now = Clock::now())
    {
        std::lock_guard<std::mutex> lock(_mutex);
        Entry &e = _entries[key];
        if (e.state == BreakerState::Closed)
            return BreakerVerdict::Allow;
        if (e.state == BreakerState::Open) {
            if (now - e.openedAt <
                std::chrono::milliseconds(_opts.cooldownMs)) {
                ++e.rejected;
                ++_rejected;
                return BreakerVerdict::Reject;
            }
            e.state = BreakerState::HalfOpen;
            e.probing = true;
            return BreakerVerdict::Probe;
        }
        // Half-open: exactly one probe in flight at a time.
        if (e.probing) {
            ++e.rejected;
            ++_rejected;
            return BreakerVerdict::Reject;
        }
        e.probing = true;
        return BreakerVerdict::Probe;
    }

    /** The request for @p key finished cleanly (or failed for
     *  non-containment reasons — the design is not poisoned). */
    void
    onSuccess(const std::string &key,
              Clock::time_point now = Clock::now())
    {
        (void)now;
        std::lock_guard<std::mutex> lock(_mutex);
        Entry &e = _entries[key];
        if (e.state == BreakerState::HalfOpen) {
            e.state = BreakerState::Closed;
            e.probing = false;
            e.recent.clear();
        }
    }

    /** The request for @p key died in a containment-class way
     *  (worker crash, deadline, IPC breakdown). */
    void
    onFailure(const std::string &key,
              Clock::time_point now = Clock::now())
    {
        std::lock_guard<std::mutex> lock(_mutex);
        Entry &e = _entries[key];
        ++e.failures;
        if (e.state == BreakerState::HalfOpen) {
            // The probe failed: straight back to open, fresh cooldown.
            e.state = BreakerState::Open;
            e.probing = false;
            e.openedAt = now;
            ++e.opens;
            ++_opens;
            return;
        }
        e.recent.push_back(now);
        auto cutoff =
            now - std::chrono::milliseconds(_opts.windowMs);
        while (!e.recent.empty() && e.recent.front() < cutoff)
            e.recent.pop_front();
        if (e.state == BreakerState::Closed &&
            static_cast<int>(e.recent.size()) >= _opts.threshold) {
            e.state = BreakerState::Open;
            e.openedAt = now;
            e.recent.clear();
            ++e.opens;
            ++_opens;
        }
    }

    BreakerState
    state(const std::string &key) const
    {
        std::lock_guard<std::mutex> lock(_mutex);
        auto it = _entries.find(key);
        return it == _entries.end() ? BreakerState::Closed
                                    : it->second.state;
    }

    /** Total open flips / rejections (for /stats). */
    uint64_t opens() const
    {
        std::lock_guard<std::mutex> lock(_mutex);
        return _opens;
    }
    uint64_t rejected() const
    {
        std::lock_guard<std::mutex> lock(_mutex);
        return _rejected;
    }

    /** Per-key snapshots, sorted by key. */
    std::vector<Snap>
    snapshot() const
    {
        std::lock_guard<std::mutex> lock(_mutex);
        std::vector<Snap> out;
        out.reserve(_entries.size());
        for (const auto &[key, e] : _entries) {
            Snap s;
            s.key = key;
            s.state = e.state;
            s.failures = e.failures;
            s.rejected = e.rejected;
            s.opens = e.opens;
            out.push_back(std::move(s));
        }
        return out;
    }

  private:
    struct Entry
    {
        BreakerState state = BreakerState::Closed;
        bool probing = false;
        Clock::time_point openedAt{};
        std::deque<Clock::time_point> recent;
        uint64_t failures = 0;
        uint64_t rejected = 0;
        uint64_t opens = 0;
    };

    BreakerOptions _opts;
    mutable std::mutex _mutex;
    std::map<std::string, Entry> _entries;
    uint64_t _opens = 0;
    uint64_t _rejected = 0;
};

} // namespace ash::pool

#endif // ASH_POOL_BREAKER_H
