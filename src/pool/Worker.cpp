#include "pool/Worker.h"

#include <ctime>

#include <unistd.h>

#include "common/Logging.h"
#include "guard/Fault.h"

namespace ash::pool {

namespace {

/**
 * The pool's fault scope while a request is being framed. The
 * handler's SweepRunner re-registers its own job-key provider for
 * the duration of the job body; the worker loop re-registers this
 * one at the top of every iteration, so sites that fire OUTSIDE a
 * job (pool.worker.kill, pool.ipc.corrupt) still carry the
 * request's tenant/design scope for @match targeting.
 */
std::string &
poolScopeSlot()
{
    static thread_local std::string scope;
    return scope;
}

std::string
currentPoolScope()
{
    return poolScopeSlot();
}

double
threadCpuSec()
{
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0)
        return 0.0;
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

} // namespace

void
workerMain(int fd, const Handler &handler)
{
    using Clock = std::chrono::steady_clock;
    for (;;) {
        guard::setFaultScopeProvider(&currentPoolScope);
        poolScopeSlot().clear();

        std::string text;
        // The worker waits for work indefinitely; the supervisor owns
        // all deadlines.
        FrameResult rc = readFrame(fd, text, 0);
        if (rc == FrameResult::Eof)
            _exit(0);   // Drain or parent death: clean exit.
        if (rc != FrameResult::Ok)
            _exit(3);   // Desync: respawn is the only safe repair.

        WorkRequest req;
        if (!decodeRequest(text, req))
            _exit(3);
        poolScopeSlot() = req.scope;

        WorkReply reply;
        reply.seq = req.seq;
        Clock::time_point t0 = Clock::now();
        double cpu0 = threadCpuSec();
        try {
            // The chaos hook: a `kill` rule here is the deterministic
            // stand-in for a kernel segfault mid-request.
            ASH_FAULT_POINT("pool.worker.kill");
            reply = handler(req);
            reply.seq = req.seq;
        } catch (const std::exception &e) {
            reply.ok = false;
            reply.kind = "exception";
            reply.message = e.what();
        }
        reply.wallSec =
            std::chrono::duration<double>(Clock::now() - t0).count();
        reply.cpuSec = threadCpuSec() - cpu0;

        if (!writeFrame(fd, encodeReply(reply)))
            _exit(0);   // Supervisor went away mid-reply.
    }
}

} // namespace ash::pool
