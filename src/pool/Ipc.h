/**
 * @file
 * Length-prefixed framing for the supervisor <-> worker socketpair.
 * One frame is
 *
 *   [magic u32][length u32][crc32 u32][payload bytes]
 *
 * with the CRC computed over the payload, so a torn write, a short
 * read, or injected corruption (`pool.ipc.corrupt`) is detected
 * before any payload byte is trusted. The stream carries exactly one
 * request frame in and one reply frame out per job; after ANY framing
 * error the supervisor kills and respawns the worker instead of
 * trying to resynchronize a byte stream it no longer trusts.
 *
 * Payloads are single-line JSON objects (common/Json.h), so the wire
 * stays debuggable with strace and the request body — itself a serve
 * protocol line — nests without escapes beyond standard JSON.
 */

#ifndef ASH_POOL_IPC_H
#define ASH_POOL_IPC_H

#include <cstdint>
#include <string>

namespace ash::pool {

/** Outcome of one readFrame() call. */
enum class FrameResult
{
    Ok,       ///< A whole, CRC-clean frame is in the out buffer.
    Eof,      ///< Peer closed (worker death or supervisor drain).
    Timeout,  ///< Deadline passed with the frame incomplete.
    Corrupt,  ///< Bad magic, absurd length, or CRC mismatch.
};

/**
 * Write one frame. The `pool.ipc.corrupt` fault site flips payload
 * bytes AFTER the CRC is computed, so injected damage is exactly the
 * damage the reader's CRC check must catch. False on any write error
 * (EPIPE when the peer died mid-frame).
 */
bool writeFrame(int fd, const std::string &payload);

/**
 * Read one frame into @p out, waiting at most @p timeoutMs
 * (<= 0 means wait forever). Partial frames followed by EOF report
 * Eof — a worker killed mid-reply looks identical to one killed
 * between replies.
 */
FrameResult readFrame(int fd, std::string &out, int timeoutMs);

/** One unit of work shipped to a worker. */
struct WorkRequest
{
    uint64_t seq = 0;        ///< Per-slot sequence (desync detection).
    std::string scope;       ///< Fault/breaker scope, e.g. job-key prefix.
    std::string breakerKey;  ///< Circuit-breaker key (design fingerprint).
    uint64_t deadlineMs = 0; ///< Remaining budget; 0 = none.
    std::string body;        ///< Opaque request line for the handler.
};

/** A worker's answer: result bytes plus the resource bill. */
struct WorkReply
{
    uint64_t seq = 0;
    bool ok = false;
    std::string cls;     ///< Cache class on success ("cold"/"warm").
    std::string kind;    ///< Stable machine tag on failure.
    std::string message; ///< Human-readable failure detail.
    std::string payload; ///< Result bytes on success.
    double wallSec = 0.0; ///< prof::JobCost-style bill: wall time.
    double cpuSec = 0.0;  ///< ... and thread-CPU time, in the child.
};

std::string encodeRequest(const WorkRequest &req);
bool decodeRequest(const std::string &text, WorkRequest &out);

std::string encodeReply(const WorkReply &reply);
bool decodeReply(const std::string &text, WorkReply &out);

} // namespace ash::pool

#endif // ASH_POOL_IPC_H
