#include "pool/Ipc.h"

#include <chrono>
#include <cstring>
#include <vector>

#include <poll.h>
#include <sys/socket.h>

#include "ckpt/Snapshot.h"
#include "common/Json.h"
#include "guard/Fault.h"

namespace ash::pool {

namespace {

constexpr uint32_t kMagic = 0x41504631u; // "APF1"
/** Sanity bound: no request or reply is anywhere near this. */
constexpr uint32_t kMaxFrameBytes = 256u << 20;

struct FrameHeader
{
    uint32_t magic;
    uint32_t length;
    uint32_t crc;
};

bool
sendAll(int fd, const void *data, size_t len)
{
    const char *p = static_cast<const char *>(data);
    while (len > 0) {
        ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        p += n;
        len -= static_cast<size_t>(n);
    }
    return true;
}

/**
 * Read exactly @p len bytes, polling in short slices so the caller's
 * total timeout stays honest. Returns Ok/Eof/Timeout.
 */
FrameResult
recvExact(int fd, void *data, size_t len, int timeoutMs)
{
    using Clock = std::chrono::steady_clock;
    Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(
                           timeoutMs > 0 ? timeoutMs : 0);
    char *p = static_cast<char *>(data);
    while (len > 0) {
        int slice = 100;
        if (timeoutMs > 0) {
            auto left = std::chrono::duration_cast<
                            std::chrono::milliseconds>(deadline -
                                                       Clock::now())
                            .count();
            if (left <= 0)
                return FrameResult::Timeout;
            slice = static_cast<int>(
                left < 100 ? left : 100);
        }
        pollfd pfd{fd, POLLIN, 0};
        int rc = ::poll(&pfd, 1, slice);
        if (rc < 0)
            return FrameResult::Eof;
        if (rc == 0)
            continue;
        ssize_t n = ::recv(fd, p, len, 0);
        if (n <= 0)
            return FrameResult::Eof;
        p += n;
        len -= static_cast<size_t>(n);
    }
    return FrameResult::Ok;
}

} // namespace

bool
writeFrame(int fd, const std::string &payload)
{
    std::vector<char> bytes(payload.begin(), payload.end());
    FrameHeader hdr;
    hdr.magic = kMagic;
    hdr.length = static_cast<uint32_t>(bytes.size());
    hdr.crc = ckpt::crc32(bytes.data(), bytes.size());
    // CRC first, corruption second: the flipped bytes travel under a
    // checksum computed over the clean payload, so the reader's CRC
    // check fails — exactly the failure mode real wire damage causes.
    ASH_FAULT_CORRUPT("pool.ipc.corrupt", bytes.data(), bytes.size());
    if (!sendAll(fd, &hdr, sizeof(hdr)))
        return false;
    return bytes.empty() || sendAll(fd, bytes.data(), bytes.size());
}

FrameResult
readFrame(int fd, std::string &out, int timeoutMs)
{
    FrameHeader hdr{};
    FrameResult rc = recvExact(fd, &hdr, sizeof(hdr), timeoutMs);
    if (rc != FrameResult::Ok)
        return rc;
    if (hdr.magic != kMagic || hdr.length > kMaxFrameBytes)
        return FrameResult::Corrupt;
    out.resize(hdr.length);
    if (hdr.length > 0) {
        rc = recvExact(fd, out.data(), hdr.length, timeoutMs);
        if (rc != FrameResult::Ok)
            return rc;
    }
    if (ckpt::crc32(out.data(), out.size()) != hdr.crc)
        return FrameResult::Corrupt;
    return FrameResult::Ok;
}

std::string
encodeRequest(const WorkRequest &req)
{
    JsonWriter w(false);
    w.beginObject();
    w.kv("seq", req.seq);
    w.kv("scope", req.scope);
    w.kv("breaker_key", req.breakerKey);
    w.kv("deadline_ms", req.deadlineMs);
    w.kv("body", req.body);
    w.endObject();
    return w.str();
}

bool
decodeRequest(const std::string &text, WorkRequest &out)
{
    JsonValue doc;
    if (!jsonParse(text, doc) || !doc.isObject())
        return false;
    if (!doc["seq"].isNumber() || !doc["scope"].isString() ||
        !doc["breaker_key"].isString() ||
        !doc["deadline_ms"].isNumber() || !doc["body"].isString())
        return false;
    out.seq = doc["seq"].asU64();
    out.scope = doc["scope"].string();
    out.breakerKey = doc["breaker_key"].string();
    out.deadlineMs = doc["deadline_ms"].asU64();
    out.body = doc["body"].string();
    return true;
}

std::string
encodeReply(const WorkReply &reply)
{
    JsonWriter w(false);
    w.beginObject();
    w.kv("seq", reply.seq);
    w.kv("ok", reply.ok);
    w.kv("class", reply.cls);
    w.kv("kind", reply.kind);
    w.kv("message", reply.message);
    w.kv("payload", reply.payload);
    w.kv("wall_sec", reply.wallSec);
    w.kv("cpu_sec", reply.cpuSec);
    w.endObject();
    return w.str();
}

bool
decodeReply(const std::string &text, WorkReply &out)
{
    JsonValue doc;
    if (!jsonParse(text, doc) || !doc.isObject())
        return false;
    if (!doc["seq"].isNumber() || !doc["ok"].isBool() ||
        !doc["class"].isString() || !doc["kind"].isString() ||
        !doc["message"].isString() || !doc["payload"].isString() ||
        !doc["wall_sec"].isNumber() || !doc["cpu_sec"].isNumber())
        return false;
    out.seq = doc["seq"].asU64();
    out.ok = doc["ok"].boolean();
    out.cls = doc["class"].string();
    out.kind = doc["kind"].string();
    out.message = doc["message"].string();
    out.payload = doc["payload"].string();
    out.wallSec = doc["wall_sec"].number();
    out.cpuSec = doc["cpu_sec"].number();
    return true;
}

} // namespace ash::pool
