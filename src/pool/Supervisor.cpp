#include "pool/Supervisor.h"

#include <cerrno>
#include <chrono>
#include <thread>

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/Logging.h"
#include "exec/Job.h"
#include "exec/SweepRunner.h"
#include "guard/Fault.h"

namespace ash::pool {

namespace {

/** Spawn attempts per ensureAlive() call before giving up on the
 *  request (the NEXT request tries again from scratch). */
constexpr int kSpawnAttempts = 4;

WorkReply
failure(uint64_t seq, const char *kind, std::string message)
{
    WorkReply r;
    r.seq = seq;
    r.ok = false;
    r.kind = kind;
    r.message = std::move(message);
    return r;
}

} // namespace

Supervisor::Supervisor(PoolOptions opts, Handler handler)
    : _opts(std::move(opts)), _handler(std::move(handler)),
      _breakers(_opts.breaker)
{
    if (_opts.workers == 0)
        _opts.workers = 1;
}

Supervisor::~Supervisor() { stop(); }

bool
Supervisor::start(std::string *err)
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        if (_started)
            return true;
        _started = true;
        _slots.resize(_opts.workers);
        for (unsigned i = 0; i < _opts.workers; ++i)
            _slots[i].backoffSeed =
                exec::stableSeed("pool/slot" + std::to_string(i));
    }
    unsigned alive = 0;
    for (Slot &slot : _slots)
        if (ensureAlive(slot))
            ++alive;
    if (alive == 0) {
        if (err)
            *err = "pool: could not spawn any worker";
        return false;
    }
    inform("pool: started %u/%u workers", alive, _opts.workers);
    return true;
}

void
Supervisor::stop()
{
    std::vector<Slot> doomed;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        if (!_started || _stopped) {
            _stopped = true;
            _cv.notify_all();
            return;
        }
        _stopped = true;
        doomed = _slots; // pids/fds by value; slots stay for stats.
        for (Slot &slot : _slots) {
            slot.pid = -1;
            slot.fd = -1;
        }
        _cv.notify_all();
    }
    // Closing the supervisor end is the drain signal: workers see EOF
    // and _exit(0). SIGKILL is only the backstop for a worker wedged
    // mid-request.
    for (Slot &slot : doomed)
        if (slot.fd >= 0)
            ::close(slot.fd);
    using Clock = std::chrono::steady_clock;
    Clock::time_point grace =
        Clock::now() + std::chrono::milliseconds(_opts.killGraceMs);
    for (Slot &slot : doomed) {
        if (slot.pid < 0)
            continue;
        for (;;) {
            int status = 0;
            pid_t got = ::waitpid(slot.pid, &status, WNOHANG);
            if (got == slot.pid || (got < 0 && errno == ECHILD))
                break;
            if (Clock::now() >= grace) {
                ::kill(slot.pid, SIGKILL);
                ::waitpid(slot.pid, &status, 0);
                break;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
        }
        slot.pid = -1;
    }
}

Supervisor::Slot *
Supervisor::lease()
{
    std::unique_lock<std::mutex> lock(_mutex);
    for (;;) {
        if (_stopped || !_started)
            return nullptr;
        for (Slot &slot : _slots) {
            if (!slot.leased) {
                slot.leased = true;
                return &slot;
            }
        }
        _cv.wait(lock);
    }
}

void
Supervisor::release(Slot &slot)
{
    std::lock_guard<std::mutex> lock(_mutex);
    slot.leased = false;
    _cv.notify_one();
}

bool
Supervisor::reapIfDead(Slot &slot)
{
    if (slot.pid < 0)
        return true;
    int status = 0;
    pid_t got = ::waitpid(slot.pid, &status, WNOHANG);
    if (got == 0)
        return false; // Still running.
    // Exited (or already reaped elsewhere): tear the slot down.
    if (slot.fd >= 0)
        ::close(slot.fd);
    slot.fd = -1;
    slot.pid = -1;
    return true;
}

void
Supervisor::killSlot(Slot &slot)
{
    if (slot.pid >= 0) {
        ::kill(slot.pid, SIGKILL);
        int status = 0;
        ::waitpid(slot.pid, &status, 0);
        slot.pid = -1;
    }
    if (slot.fd >= 0)
        ::close(slot.fd);
    slot.fd = -1;
}

bool
Supervisor::ensureAlive(Slot &slot)
{
    bool alive = slot.pid >= 0 && !reapIfDead(slot);
    if (alive)
        return true;
    bool replacing = slot.strikes > 0;
    for (int attempt = 0; attempt < kSpawnAttempts; ++attempt) {
        // Deterministic bounded backoff, keyed by the slot and its
        // consecutive-failure count — crash loops slow down instead
        // of fork-bombing, and the schedule replays run to run.
        int step = slot.strikes + attempt;
        if (step > 0) {
            uint64_t delayMs = exec::retryBackoffMs(
                slot.backoffSeed, step - 1, _opts.respawnBaseMs,
                _opts.respawnCapMs);
            if (delayMs > 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(delayMs));
        }
        try {
            ASH_FAULT_POINT("pool.worker.spawn");
        } catch (const std::exception &) {
            std::lock_guard<std::mutex> lock(_mutex);
            ++_spawnRetries;
            continue;
        }
        int sv[2] = {-1, -1};
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
            std::lock_guard<std::mutex> lock(_mutex);
            ++_spawnRetries;
            continue;
        }
        pid_t pid = ::fork();
        if (pid < 0) {
            ::close(sv[0]);
            ::close(sv[1]);
            std::lock_guard<std::mutex> lock(_mutex);
            ++_spawnRetries;
            continue;
        }
        if (pid == 0) {
            ::close(sv[0]);
            if (_opts.childInit)
                _opts.childInit();
            workerMain(sv[1], _handler); // noreturn
        }
        ::close(sv[1]);
        slot.pid = pid;
        slot.fd = sv[0];
        std::lock_guard<std::mutex> lock(_mutex);
        ++_spawns;
        if (replacing)
            ++_restarts;
        return true;
    }
    return false;
}

WorkReply
Supervisor::submit(const WorkRequest &req)
{
    // 1. Breaker gate: an open key fails fast, before any worker or
    //    queue slot is spent on it.
    BreakerVerdict verdict = BreakerVerdict::Allow;
    if (!req.breakerKey.empty())
        verdict = _breakers.admit(req.breakerKey);
    if (verdict == BreakerVerdict::Reject)
        return failure(req.seq, "circuit_open",
                       "design quarantined after repeated worker "
                       "crashes; retry after cooldown");

    auto settle = [&](bool contained) {
        if (req.breakerKey.empty())
            return;
        if (contained)
            _breakers.onFailure(req.breakerKey);
        else
            _breakers.onSuccess(req.breakerKey);
    };

    Slot *slot = lease();
    if (!slot) {
        settle(false); // Shutdown is nobody's poison.
        return failure(req.seq, "pool_stopped",
                       "worker pool is shut down");
    }

    WorkReply reply;
    bool contained = false;
    const char *containKind = nullptr;
    if (!ensureAlive(*slot)) {
        contained = true;
        containKind = "worker_spawn";
        reply = failure(req.seq, containKind,
                        "could not spawn a worker for this request");
    } else {
        WorkRequest framed = req;
        framed.seq = ++slot->seq;
        if (!writeFrame(slot->fd, encodeRequest(framed))) {
            // The worker died between lease and write.
            contained = true;
            containKind = "worker_crash";
        } else {
            int timeoutMs =
                framed.deadlineMs > 0
                    ? static_cast<int>(framed.deadlineMs +
                                       _opts.killGraceMs)
                    : static_cast<int>(_opts.replyTimeoutMs);
            std::string text;
            FrameResult rc = readFrame(slot->fd, text, timeoutMs);
            switch (rc) {
              case FrameResult::Ok:
                if (!decodeReply(text, reply) ||
                    reply.seq != framed.seq) {
                    contained = true;
                    containKind = "pool_ipc";
                } else {
                    reply.seq = req.seq;
                }
                break;
              case FrameResult::Eof:
                contained = true;
                containKind = "worker_crash";
                break;
              case FrameResult::Timeout:
                contained = true;
                containKind = "worker_timeout";
                break;
              case FrameResult::Corrupt:
                contained = true;
                containKind = "pool_ipc";
                break;
            }
        }
        if (contained) {
            // Whatever the failure, the stream is no longer trusted:
            // kill (idempotent on a dead child) and respawn later.
            killSlot(*slot);
            const char *what =
                std::string(containKind) == "worker_crash"
                    ? "worker process died mid-request"
                : std::string(containKind) == "worker_timeout"
                    ? "worker blew its deadline and was killed"
                    : "worker reply frame was corrupt or desynced";
            reply = failure(req.seq, containKind, what);
        }
    }

    {
        std::lock_guard<std::mutex> lock(_mutex);
        if (contained) {
            ++slot->strikes;
            std::string kind = containKind ? containKind : "";
            if (kind == "worker_crash" || kind == "worker_spawn")
                ++_crashes;
            else if (kind == "worker_timeout")
                ++_timeouts;
            else
                ++_ipcErrors;
        } else {
            slot->strikes = 0;
        }
    }
    settle(contained);
    release(*slot);
    return reply;
}

PoolStats
Supervisor::stats() const
{
    PoolStats s;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        s.workers = _opts.workers;
        s.spawns = _spawns;
        s.restarts = _restarts;
        s.spawnRetries = _spawnRetries;
        s.crashes = _crashes;
        s.timeouts = _timeouts;
        s.ipcErrors = _ipcErrors;
    }
    s.rejectedOpen = _breakers.rejected();
    s.breakerOpens = _breakers.opens();
    s.breakers = _breakers.snapshot();
    return s;
}

} // namespace ash::pool
