#include "baseline/Baseline.h"

#include <algorithm>
#include <numeric>

#include "common/Logging.h"
#include "core/arch/Cache.h"
#include "core/compiler/Compiler.h"
#include "obs/Trace.h"

namespace ash::baseline {

using core::Task;
using core::TaskProgram;

HostConfig
zen2Host(uint32_t threads)
{
    HostConfig h;
    h.threads = threads;
    h.ghz = 3.5;
    h.cpi = 1.0;          // Wide OOO core, but Verilator's footprint
                          // and branches keep IPC near 1 (Sec 9.1).
    h.l1iBytes = 32 * 1024;
    h.l1dBytes = 32 * 1024;
    h.llcBytes = 128ull * 1024 * 1024;   // Threadripper-class L3.
    h.llcLatency = 40;
    h.barrierCycles = 250;
    h.coherenceMiss = 90;
    return h;
}

HostConfig
simBaselineHost(uint32_t threads)
{
    HostConfig h;
    h.threads = threads;
    h.ghz = 2.5;
    h.cpi = 1.4;
    // Tile-proportional LLC: the simulated baseline keeps the same
    // cache-per-core ratio as ASH (Sec 9.1), 1 MB per 4 cores.
    h.llcBytes = std::max<uint64_t>(1, (threads + 3) / 4) * 1024 *
                 1024;
    h.llcLatency = 25;
    h.barrierCycles = 180;
    h.coherenceMiss = 60;
    return h;
}

BaselineResult
runBaseline(const rtl::Netlist &nl, const HostConfig &host,
            uint32_t max_task_cost, uint32_t warm_cycles)
{
    // Verilator parallelizes the single-cycle graph: registers stay
    // in memory and cycles do not overlap.
    core::CompilerOptions copts;
    copts.numTiles = 1;
    copts.unrolled = false;
    copts.maxTaskCost = max_task_cost;
    copts.useMapping = false;
    TaskProgram prog = core::compile(nl, copts);

    BaselineResult result;
    result.tasks = prog.tasks.size();
    result.parallelism = prog.stats.parallelism;

    // Static wave schedule: tasks grouped by depth, LPT-packed onto
    // threads within each wave.
    uint32_t waves = prog.cycleDepth;
    std::vector<std::vector<const Task *>> wave_tasks(waves);
    for (const Task &t : prog.tasks)
        wave_tasks[t.depth].push_back(&t);

    std::vector<std::vector<const Task *>> assign(host.threads);
    std::vector<std::vector<std::vector<const Task *>>> schedule(
        waves, std::vector<std::vector<const Task *>>(host.threads));
    std::vector<uint32_t> thread_of(prog.tasks.size(), 0);
    for (uint32_t w = 0; w < waves; ++w) {
        std::sort(wave_tasks[w].begin(), wave_tasks[w].end(),
                  [](const Task *a, const Task *b) {
                      return a->cost > b->cost;
                  });
        std::vector<uint64_t> load(host.threads, 0);
        for (const Task *t : wave_tasks[w]) {
            uint32_t best = static_cast<uint32_t>(
                std::min_element(load.begin(), load.end()) -
                load.begin());
            schedule[w][best].push_back(t);
            thread_of[t->id] = best;
            load[best] += t->cost;
        }
    }

    // Cross-thread consumer edges pay coherence misses.
    std::vector<uint32_t> cross_edges(prog.tasks.size(), 0);
    for (const Task &t : prog.tasks) {
        for (const core::Push &p : t.pushes) {
            if (thread_of[t.id] != thread_of[p.dst])
                ++cross_edges[p.dst];
        }
    }

    // Per-thread cache models; one shared LLC.
    std::vector<core::CacheModel> l1is, l1ds;
    for (uint32_t th = 0; th < host.threads; ++th) {
        l1is.emplace_back(host.l1iBytes, host.l1Ways, host.lineBytes);
        l1ds.emplace_back(host.l1dBytes, host.l1Ways, host.lineBytes);
    }
    core::CacheModel llc(host.llcBytes, host.llcWays, host.lineBytes);

    // Static per-task addresses: code, private data, memory state.
    std::vector<uint64_t> code_base(prog.tasks.size());
    uint64_t addr = 0x40000000ull;
    for (const Task &t : prog.tasks) {
        code_base[t.id] = addr;
        addr += (t.codeBytes + 63) & ~63ull;
    }
    std::vector<uint64_t> mem_base(nl.memories().size());
    addr = 0x80000000ull;
    for (size_t m = 0; m < nl.memories().size(); ++m) {
        mem_base[m] = addr;
        addr += (static_cast<uint64_t>(nl.memories()[m].depth) * 8 +
                 63) & ~63ull;
    }

    StatSet stats;
    auto taskTime = [&](const Task &t, uint32_t th,
                        uint64_t cycle) -> uint64_t {
        uint64_t instr = t.cost + host.perTaskOverhead;
        double time = static_cast<double>(instr) * host.cpi;

        // Code fetch.
        uint32_t code_lines = (t.codeBytes + host.lineBytes - 1) /
                              host.lineBytes;
        for (uint32_t i = 0; i < code_lines; ++i) {
            uint64_t a = code_base[t.id] + i * host.lineBytes;
            if (l1is[th].access(a))
                continue;
            stats.inc("l1iMisses");
            time += llc.access(a) ? host.llcLatency : host.llcLatency +
                                                          host.memLatency;
        }
        // Data: one private line plus one line per memory port node,
        // walking the memory sequentially with the design cycle (a
        // coarse but stable access pattern).
        uint64_t data_lines = 1;
        for (rtl::NodeId raw : t.nodes) {
            rtl::NodeId id = raw & ~core::regWriteFlag;
            const rtl::Node &n = nl.node(id);
            if (n.op == rtl::Op::MemRead || n.op == rtl::Op::MemWrite) {
                uint64_t depth = nl.memories()[n.mem].depth;
                uint64_t a = mem_base[n.mem] +
                             ((cycle * 7 + id) % std::max<uint64_t>(
                                                     1, depth)) * 8;
                if (!l1ds[th].access(a)) {
                    time += llc.access(a)
                                ? host.llcLatency
                                : host.llcLatency + host.memLatency;
                }
            }
        }
        for (uint64_t i = 0; i < data_lines; ++i) {
            uint64_t a = 0x100000ull + t.id * 128 + i * 64;
            if (!l1ds[th].access(a)) {
                time += llc.access(a) ? host.llcLatency
                                      : host.llcLatency +
                                            host.memLatency;
            }
        }
        // Cross-thread argument reads.
        time += static_cast<double>(cross_edges[t.id]) *
                host.coherenceMiss;
        return static_cast<uint64_t>(time);
    };

    // Task-size distribution of the static schedule (Fig 3's axis).
    for (const Task &t : prog.tasks)
        stats.hist("taskCost", t.cost);

    // Model warm_cycles design cycles; the first is warmup.
    double total = 0.0;
    uint64_t measured = 0;
    for (uint64_t cycle = 0; cycle < warm_cycles; ++cycle) {
        double cycle_time = 0.0;
        for (uint32_t w = 0; w < waves; ++w) {
            uint64_t worst = 0;
            uint64_t wave_sum = 0;
            for (uint32_t th = 0; th < host.threads; ++th) {
                uint64_t sum = 0;
                for (const Task *t : schedule[w][th])
                    sum += taskTime(*t, th, cycle);
                // Trace each thread's share of the wave as one slab
                // on that thread's track (pid 0 = the host machine).
                ASH_OBS_EVENT(obs::EventKind::BaselineWave,
                              static_cast<uint64_t>(total +
                                                    cycle_time),
                              static_cast<uint32_t>(sum), 0,
                              static_cast<uint16_t>(th), w, cycle);
                wave_sum += sum;
                worst = std::max(worst, sum);
            }
            bool wave_empty = wave_tasks[w].empty();
            if (!wave_empty && worst > 0) {
                stats.hist("waveLength", worst);
                // Imbalance: slowest thread vs mean over threads.
                stats.sample("waveImbalance",
                             static_cast<double>(worst) *
                                 host.threads /
                                 static_cast<double>(wave_sum));
            }
            cycle_time += static_cast<double>(worst);
            if (!wave_empty && host.threads > 1) {
                cycle_time += host.barrierCycles;
                stats.inc("barriers");
            }
        }
        if (cycle >= 2) {   // Skip cold-cache warmup.
            total += cycle_time;
            ++measured;
        }
    }
    stats.set("llcMisses", llc.misses());
    stats.set("llcHits", llc.hits());

    result.cyclesPerDesignCycle = measured ? total / measured : 0.0;
    result.speedKHz = result.cyclesPerDesignCycle > 0
                          ? host.ghz * 1e6 /
                                result.cyclesPerDesignCycle
                          : 0.0;
    result.stats = std::move(stats);
    return result;
}

} // namespace ash::baseline
