#include "baseline/Baseline.h"

#include <algorithm>
#include <numeric>

#include "common/Logging.h"
#include "core/arch/Cache.h"
#include "guard/Cancel.h"
#include "core/compiler/Compiler.h"
#include "obs/Trace.h"
#include "prof/Prof.h"

namespace ash::baseline {

using core::Task;
using core::TaskProgram;

HostConfig
zen2Host(uint32_t threads)
{
    HostConfig h;
    h.threads = threads;
    h.ghz = 3.5;
    h.cpi = 1.0;          // Wide OOO core, but Verilator's footprint
                          // and branches keep IPC near 1 (Sec 9.1).
    h.l1iBytes = 32 * 1024;
    h.l1dBytes = 32 * 1024;
    h.llcBytes = 128ull * 1024 * 1024;   // Threadripper-class L3.
    h.llcLatency = 40;
    h.barrierCycles = 250;
    h.coherenceMiss = 90;
    return h;
}

HostConfig
simBaselineHost(uint32_t threads)
{
    HostConfig h;
    h.threads = threads;
    h.ghz = 2.5;
    h.cpi = 1.4;
    // Tile-proportional LLC: the simulated baseline keeps the same
    // cache-per-core ratio as ASH (Sec 9.1), 1 MB per 4 cores.
    h.llcBytes = std::max<uint64_t>(1, (threads + 3) / 4) * 1024 *
                 1024;
    h.llcLatency = 25;
    h.barrierCycles = 180;
    h.coherenceMiss = 60;
    return h;
}

namespace {

TaskProgram
compileBaseline(const rtl::Netlist &nl, uint32_t max_task_cost)
{
    // Verilator parallelizes the single-cycle graph: registers stay
    // in memory and cycles do not overlap.
    core::CompilerOptions copts;
    copts.numTiles = 1;
    copts.unrolled = false;
    copts.maxTaskCost = max_task_cost;
    copts.useMapping = false;
    return core::compile(nl, copts);
}

} // namespace

struct BaselineSimulator::Impl
{
    const rtl::Netlist &nl;
    HostConfig host;
    uint32_t maxTaskCost;
    uint32_t warmCycles;

    // --- static schedule (rebuilt identically by the ctor) ---
    TaskProgram prog;
    /** [wave][thread] -> tasks, LPT-packed within each wave. */
    std::vector<std::vector<std::vector<const Task *>>> schedule;
    std::vector<uint8_t> waveEmpty;
    std::vector<uint32_t> crossEdges;   ///< Per consumer task.
    std::vector<uint64_t> codeBase;
    std::vector<uint64_t> memBase;

    // --- per-cycle mutable state (checkpointed) ---
    std::vector<core::CacheModel> l1is, l1ds;
    core::CacheModel llc;
    StatSet stats;
    double total = 0.0;
    uint64_t measured = 0;
    uint64_t cycle = 0;

    // Snapshot section tags.
    enum : uint32_t { kSecState = 1, kSecStats = 2 };

    Impl(const rtl::Netlist &netlist, const HostConfig &h,
         uint32_t max_task_cost, uint32_t warm_cycles)
        : nl(netlist), host(h), maxTaskCost(max_task_cost),
          warmCycles(warm_cycles),
          prog(compileBaseline(netlist, max_task_cost)),
          llc(host.llcBytes, host.llcWays, host.lineBytes)
    {
        // Static wave schedule: tasks grouped by depth, LPT-packed
        // onto threads within each wave.
        uint32_t waves = prog.cycleDepth;
        std::vector<std::vector<const Task *>> wave_tasks(waves);
        for (const Task &t : prog.tasks)
            wave_tasks[t.depth].push_back(&t);

        schedule.assign(
            waves,
            std::vector<std::vector<const Task *>>(host.threads));
        std::vector<uint32_t> thread_of(prog.tasks.size(), 0);
        for (uint32_t w = 0; w < waves; ++w) {
            std::sort(wave_tasks[w].begin(), wave_tasks[w].end(),
                      [](const Task *a, const Task *b) {
                          return a->cost > b->cost;
                      });
            std::vector<uint64_t> load(host.threads, 0);
            for (const Task *t : wave_tasks[w]) {
                uint32_t best = static_cast<uint32_t>(
                    std::min_element(load.begin(), load.end()) -
                    load.begin());
                schedule[w][best].push_back(t);
                thread_of[t->id] = best;
                load[best] += t->cost;
            }
        }
        waveEmpty.resize(waves);
        for (uint32_t w = 0; w < waves; ++w)
            waveEmpty[w] = wave_tasks[w].empty() ? 1 : 0;

        // Cross-thread consumer edges pay coherence misses.
        crossEdges.assign(prog.tasks.size(), 0);
        for (const Task &t : prog.tasks) {
            for (const core::Push &p : t.pushes) {
                if (thread_of[t.id] != thread_of[p.dst])
                    ++crossEdges[p.dst];
            }
        }

        // Per-thread cache models; one shared LLC.
        for (uint32_t th = 0; th < host.threads; ++th) {
            l1is.emplace_back(host.l1iBytes, host.l1Ways,
                              host.lineBytes);
            l1ds.emplace_back(host.l1dBytes, host.l1Ways,
                              host.lineBytes);
        }

        // Static per-task addresses: code, private data, mem state.
        codeBase.resize(prog.tasks.size());
        uint64_t addr = 0x40000000ull;
        for (const Task &t : prog.tasks) {
            codeBase[t.id] = addr;
            addr += (t.codeBytes + 63) & ~63ull;
        }
        memBase.resize(nl.memories().size());
        addr = 0x80000000ull;
        for (size_t m = 0; m < nl.memories().size(); ++m) {
            memBase[m] = addr;
            addr += (static_cast<uint64_t>(nl.memories()[m].depth) *
                         8 + 63) & ~63ull;
        }

        // Task-size distribution of the static schedule (Fig 3's
        // axis).
        for (const Task &t : prog.tasks)
            stats.hist("taskCost", t.cost);
    }

    uint64_t
    taskTime(const Task &t, uint32_t th, uint64_t cyc)
    {
        uint64_t instr = t.cost + host.perTaskOverhead;
        double time = static_cast<double>(instr) * host.cpi;

        // Code fetch.
        uint32_t code_lines = (t.codeBytes + host.lineBytes - 1) /
                              host.lineBytes;
        for (uint32_t i = 0; i < code_lines; ++i) {
            uint64_t a = codeBase[t.id] + i * host.lineBytes;
            if (l1is[th].access(a))
                continue;
            stats.inc("l1iMisses");
            time += llc.access(a) ? host.llcLatency : host.llcLatency +
                                                          host.memLatency;
        }
        // Data: one private line plus one line per memory port node,
        // walking the memory sequentially with the design cycle (a
        // coarse but stable access pattern).
        uint64_t data_lines = 1;
        for (rtl::NodeId raw : t.nodes) {
            rtl::NodeId id = raw & ~core::regWriteFlag;
            const rtl::Node &n = nl.node(id);
            if (n.op == rtl::Op::MemRead || n.op == rtl::Op::MemWrite) {
                uint64_t depth = nl.memories()[n.mem].depth;
                uint64_t a = memBase[n.mem] +
                             ((cyc * 7 + id) % std::max<uint64_t>(
                                                   1, depth)) * 8;
                if (!l1ds[th].access(a)) {
                    time += llc.access(a)
                                ? host.llcLatency
                                : host.llcLatency + host.memLatency;
                }
            }
        }
        for (uint64_t i = 0; i < data_lines; ++i) {
            uint64_t a = 0x100000ull + t.id * 128 + i * 64;
            if (!l1ds[th].access(a)) {
                time += llc.access(a) ? host.llcLatency
                                      : host.llcLatency +
                                            host.memLatency;
            }
        }
        // Cross-thread argument reads.
        time += static_cast<double>(crossEdges[t.id]) *
                host.coherenceMiss;
        return static_cast<uint64_t>(time);
    }

    /** Model one design cycle; the first two are cache warmup. */
    void
    stepCycle()
    {
        uint32_t waves = static_cast<uint32_t>(schedule.size());
        double cycle_time = 0.0;
        for (uint32_t w = 0; w < waves; ++w) {
            uint64_t worst = 0;
            uint64_t wave_sum = 0;
            for (uint32_t th = 0; th < host.threads; ++th) {
                uint64_t sum = 0;
                for (const Task *t : schedule[w][th])
                    sum += taskTime(*t, th, cycle);
                // Trace each thread's share of the wave as one slab
                // on that thread's track (pid 0 = the host machine).
                ASH_OBS_EVENT(obs::EventKind::BaselineWave,
                              static_cast<uint64_t>(total +
                                                    cycle_time),
                              static_cast<uint32_t>(sum), 0,
                              static_cast<uint16_t>(th), w, cycle);
                wave_sum += sum;
                worst = std::max(worst, sum);
            }
            bool wave_empty = waveEmpty[w];
            if (!wave_empty && worst > 0) {
                stats.hist("waveLength", worst);
                // Imbalance: slowest thread vs mean over threads.
                stats.sample("waveImbalance",
                             static_cast<double>(worst) *
                                 host.threads /
                                 static_cast<double>(wave_sum));
            }
            cycle_time += static_cast<double>(worst);
            if (!wave_empty && host.threads > 1) {
                cycle_time += host.barrierCycles;
                stats.inc("barriers");
            }
        }
        if (cycle >= 2) {   // Skip cold-cache warmup.
            total += cycle_time;
            ++measured;
        }
        ++cycle;
    }

    BaselineResult
    run(ckpt::CycleHook *hook, ckpt::Snapshotter &self)
    {
        ASH_PROF_ZONE("run:baseline");
        while (cycle < warmCycles) {
            // Cooperative cancellation (job deadlines): free when no
            // token is installed on this thread.
            guard::pollCancel();
            stepCycle();
            if (hook)
                hook->onCycle(cycle, self);
        }
        stats.set("llcMisses", llc.misses());
        stats.set("llcHits", llc.hits());

        BaselineResult result;
        result.tasks = prog.tasks.size();
        result.parallelism = prog.stats.parallelism;
        result.cyclesPerDesignCycle = measured ? total / measured
                                               : 0.0;
        result.speedKHz = result.cyclesPerDesignCycle > 0
                              ? host.ghz * 1e6 /
                                    result.cyclesPerDesignCycle
                              : 0.0;
        result.stats = std::move(stats);
        return result;
    }

    /** Host model + run shape; the image layout depends on both. */
    uint64_t
    configHash() const
    {
        ckpt::Fnv f;
        f.u64(host.threads);
        f.f64(host.ghz);
        f.f64(host.cpi);
        f.u64(host.l1iBytes);
        f.u64(host.l1dBytes);
        f.u64(host.l1Ways);
        f.u64(host.l1Latency);
        f.u64(host.llcBytes);
        f.u64(host.llcWays);
        f.u64(host.llcLatency);
        f.u64(host.lineBytes);
        f.u64(host.memLatency);
        f.u64(host.barrierCycles);
        f.u64(host.coherenceMiss);
        f.u64(host.perTaskOverhead);
        f.u64(maxTaskCost);
        f.u64(warmCycles);
        return f.value();
    }

    void
    saveState(ckpt::SnapshotWriter &w) const
    {
        w.beginSection(kSecState);
        w.u64(cycle);
        w.f64(total);
        w.u64(measured);
        llc.saveState(w);
        for (const core::CacheModel &c : l1is)
            c.saveState(w);
        for (const core::CacheModel &c : l1ds)
            c.saveState(w);
        w.endSection();

        w.beginSection(kSecStats);
        ckpt::saveStats(w, stats);
        w.endSection();
    }

    void
    restoreState(ckpt::SnapshotReader &r)
    {
        r.section(kSecState);
        cycle = r.u64();
        total = r.f64();
        measured = r.u64();
        llc.restoreState<ckpt::SnapshotReader,
                         ckpt::SnapshotError>(r);
        for (core::CacheModel &c : l1is)
            c.restoreState<ckpt::SnapshotReader,
                           ckpt::SnapshotError>(r);
        for (core::CacheModel &c : l1ds)
            c.restoreState<ckpt::SnapshotReader,
                           ckpt::SnapshotError>(r);
        r.endSection();

        r.section(kSecStats);
        ckpt::restoreStats(r, stats);
        r.endSection();
    }
};

BaselineSimulator::BaselineSimulator(const rtl::Netlist &nl,
                                     const HostConfig &host,
                                     uint32_t max_task_cost,
                                     uint32_t warm_cycles)
    : _impl(std::make_unique<Impl>(nl, host, max_task_cost,
                                   warm_cycles))
{
}

BaselineSimulator::~BaselineSimulator() = default;

BaselineResult
BaselineSimulator::run(ckpt::CycleHook *hook)
{
    return _impl->run(hook, *this);
}

void
BaselineSimulator::save(std::ostream &out) const
{
    ckpt::SnapshotWriter w(out, engineName(),
                           ckpt::designFingerprint(_impl->nl),
                           _impl->configHash());
    _impl->saveState(w);
}

void
BaselineSimulator::restore(std::istream &in)
{
    ckpt::SnapshotReader r(in);
    r.require(engineName(), ckpt::designFingerprint(_impl->nl),
              _impl->configHash());
    _impl->restoreState(r);
    r.expectEnd();
}

BaselineResult
runBaseline(const rtl::Netlist &nl, const HostConfig &host,
            uint32_t max_task_cost, uint32_t warm_cycles)
{
    BaselineSimulator sim(nl, host, max_task_cost, warm_cycles);
    return sim.run();
}

} // namespace ash::baseline
