/**
 * @file
 * Multicore software-simulator baselines: a timing model of a
 * Verilator-style compiled simulator running on a conventional
 * shared-memory multicore (Sec 2.2 and the "Baseline" rows of
 * Table 5). The netlist is coarsened into macro-tasks on the
 * single-cycle dataflow graph, statically scheduled onto threads in
 * depth waves (longest-processing-time first), and each simulated
 * design cycle costs the sum over waves of the slowest thread plus
 * barrier synchronization. Cross-thread value edges pay coherence
 * misses through the shared LLC.
 *
 * Functional outputs of this baseline are by construction those of
 * the reference simulator (same netlist, full evaluation in
 * dependency order), so only timing is modeled here.
 *
 * Two parameter presets mirror the paper's hosts: the simulated
 * multicore baseline (Table 3 parameters, shared LLC) and a
 * Zen2-like commercial CPU (3.5 GHz, large caches, OOO CPI).
 */

#ifndef ASH_BASELINE_BASELINE_H
#define ASH_BASELINE_BASELINE_H

#include <memory>

#include "ckpt/Checkpoint.h"
#include "common/Stats.h"
#include "rtl/Netlist.h"

namespace ash::baseline {

/** Host machine model. */
struct HostConfig
{
    uint32_t threads = 1;
    double ghz = 2.5;
    double cpi = 1.4;              ///< Base CPI without memory stalls.
    uint32_t l1iBytes = 16 * 1024;
    uint32_t l1dBytes = 16 * 1024;
    uint32_t l1Ways = 8;
    uint32_t l1Latency = 2;
    uint64_t llcBytes = 1 * 1024 * 1024;   ///< Shared LLC (scaled by
                                           ///< threads for the
                                           ///< simulated baseline).
    uint32_t llcWays = 16;
    uint32_t llcLatency = 25;
    uint32_t lineBytes = 64;
    uint32_t memLatency = 120;
    /** Cycles for one barrier among all threads. */
    uint32_t barrierCycles = 180;
    /** Extra latency when a consumer reads a cross-thread value. */
    uint32_t coherenceMiss = 60;
    /** Scheduling overhead per task (queue bookkeeping). */
    uint32_t perTaskOverhead = 8;
};

/** Zen2-like commercial CPU preset (Threadripper-class). */
HostConfig zen2Host(uint32_t threads);

/** Simulated multicore baseline preset (Table 3-like, shared LLC). */
HostConfig simBaselineHost(uint32_t threads);

/** Result of a baseline timing run. */
struct BaselineResult
{
    double cyclesPerDesignCycle = 0.0;
    double speedKHz = 0.0;
    uint64_t tasks = 0;
    double parallelism = 0.0;   ///< Task-graph parallelism.
    StatSet stats;
};

/**
 * Steppable baseline engine. Construction performs all static work
 * (coarsening compile, wave schedule, address layout); run() then
 * models the remaining design cycles one at a time, so the engine
 * can checkpoint between cycles and resume mid-run.
 */
class BaselineSimulator : public ckpt::Snapshotter
{
  public:
    /**
     * @param max_task_cost Coarsening cap (instructions per
     *                      macro-task); Verilator's merge level. The
     *                      Fig 3 sweep varies this.
     * @param warm_cycles   Design cycles to model (first two are
     *                      cache warmup and excluded from timing).
     */
    BaselineSimulator(const rtl::Netlist &nl, const HostConfig &host,
                      uint32_t max_task_cost = 2000,
                      uint32_t warm_cycles = 30);
    ~BaselineSimulator();

    /**
     * Model all remaining design cycles and produce the result.
     * After a restore() this continues from the restored cycle;
     * @p hook, when set, fires after every completed design cycle.
     */
    BaselineResult run(ckpt::CycleHook *hook = nullptr);

    /// @name ckpt::Snapshotter
    /// @{
    void save(std::ostream &out) const override;
    void restore(std::istream &in) override;
    const char *engineName() const override { return "baseline"; }
    /// @}

  private:
    struct Impl;
    std::unique_ptr<Impl> _impl;
};

/**
 * Model @p warm_cycles simulated design cycles of a Verilator-style
 * compiled simulation of @p nl on @p host. Convenience wrapper over
 * BaselineSimulator: construct and run to completion.
 */
BaselineResult runBaseline(const rtl::Netlist &nl,
                           const HostConfig &host,
                           uint32_t max_task_cost = 2000,
                           uint32_t warm_cycles = 30);

} // namespace ash::baseline

#endif // ASH_BASELINE_BASELINE_H
