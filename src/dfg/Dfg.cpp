#include "dfg/Dfg.h"

#include <algorithm>

#include "common/Logging.h"
#include "rtl/Cost.h"

namespace ash::dfg {

using rtl::Node;
using rtl::NodeId;
using rtl::Op;

Dfg::Dfg(const rtl::Netlist &netlist, const DfgOptions &opts)
    : _nl(netlist), _unrolled(opts.unrolled)
{
    // Nodes: everything except constants (folded into consumers).
    _dfgOf.assign(_nl.numNodes(), invalidDfgNode);
    for (NodeId id = 0; id < _nl.numNodes(); ++id) {
        if (_nl.node(id).op == Op::Const)
            continue;
        _dfgOf[id] = static_cast<DfgNodeId>(_rtlOf.size());
        _rtlOf.push_back(id);
        uint32_t c = std::max(1u, rtl::nodeCost(_nl.node(id)));
        _cost.push_back(c);
    }

    _outEdges.resize(_rtlOf.size());
    _inEdges.resize(_rtlOf.size());

    // Value edges from operand relations.
    for (DfgNodeId n = 0; n < _rtlOf.size(); ++n) {
        const Node &node = _nl.node(_rtlOf[n]);
        for (NodeId oper : node.operands) {
            DfgNodeId src = _dfgOf[oper];
            if (src == invalidDfgNode)
                continue;   // Constant operand.
            addEdge(src, n, EdgeKind::Value, _nl.node(oper).width,
                    false);
        }
    }

    // Registers.
    for (const rtl::RegInfo &reg : _nl.regs()) {
        DfgNodeId reg_node = _dfgOf[reg.node];
        DfgNodeId producer = _dfgOf[reg.next];
        if (_unrolled) {
            // The paper's unrolled graph: the next-value producer at
            // cycle c feeds the register node at cycle c+1.
            if (producer != invalidDfgNode) {
                addEdge(producer, reg_node, EdgeKind::Value,
                        _nl.node(reg.node).width, true);
            }
            // Constant next (rare): the engine re-injects the constant
            // each cycle; no edge needed.
        } else {
            // Single-cycle graph: the register lives in memory. A
            // synthetic RegWrite node stores the next value; WAR edges
            // order it after the (distributing) register read, and a
            // cross-cycle RAW edge orders next-cycle reads after it.
            DfgNodeId writer = static_cast<DfgNodeId>(_rtlOf.size());
            _rtlOf.push_back(reg.node);
            _cost.push_back(1);
            _outEdges.emplace_back();
            _inEdges.emplace_back();
            _isRegWrite.resize(_rtlOf.size(), 0);
            _isRegWrite[writer] = 1;
            if (producer != invalidDfgNode) {
                addEdge(producer, writer, EdgeKind::Value,
                        _nl.node(reg.node).width, false);
            }
            addEdge(reg_node, writer, EdgeKind::War, 0, false);
            addEdge(writer, reg_node, EdgeKind::Raw, 0, true);
        }
    }
    _isRegWrite.resize(_rtlOf.size(), 0);

    // Memory ordering edges.
    for (size_t m = 0; m < _nl.memories().size(); ++m) {
        const rtl::MemInfo &mem = _nl.memories()[m];
        std::vector<DfgNodeId> reads;
        for (NodeId id = 0; id < _nl.numNodes(); ++id) {
            const Node &node = _nl.node(id);
            if (node.op == Op::MemRead && node.mem == m)
                reads.push_back(_dfgOf[id]);
        }
        if (mem.writePorts.empty())
            continue;   // ROM: no ordering needed.
        DfgNodeId first_port = _dfgOf[mem.writePorts.front()];
        for (DfgNodeId read : reads)
            addEdge(read, first_port, EdgeKind::War, 0, false);
        for (size_t p = 0; p + 1 < mem.writePorts.size(); ++p) {
            addEdge(_dfgOf[mem.writePorts[p]],
                    _dfgOf[mem.writePorts[p + 1]], EdgeKind::Raw, 0,
                    false);
        }
        DfgNodeId last_port = _dfgOf[mem.writePorts.back()];
        for (DfgNodeId read : reads)
            addEdge(last_port, read, EdgeKind::Raw, 0, true);
    }

    for (uint32_t c : _cost)
        _totalCost += c;

    computeDepths();
}

void
Dfg::addEdge(DfgNodeId src, DfgNodeId dst, EdgeKind kind, uint8_t bits,
             bool cross)
{
    ASH_ASSERT(src < _rtlOf.size() && dst < _rtlOf.size());
    if (src == dst)
        return;   // Self-loop (e.g. reg holding itself): implicit.
    uint32_t e = static_cast<uint32_t>(_edges.size());
    _edges.push_back(DfgEdge{src, dst, kind, bits, cross});
    _outEdges[src].push_back(e);
    _inEdges[dst].push_back(e);
}

void
Dfg::computeDepths()
{
    // Kahn over same-cycle edges; depth = longest unit chain, and the
    // critical path is the cost-weighted longest chain.
    size_t n = _rtlOf.size();
    _depth.assign(n, 0);
    std::vector<uint64_t> cost_depth(n, 0);
    std::vector<uint32_t> pending(n, 0);
    for (const DfgEdge &e : _edges) {
        if (!e.crossCycle)
            ++pending[e.dst];
    }
    std::vector<DfgNodeId> frontier;
    for (DfgNodeId i = 0; i < n; ++i) {
        if (pending[i] == 0) {
            cost_depth[i] = _cost[i];
            frontier.push_back(i);
        }
    }
    size_t processed = 0;
    while (!frontier.empty()) {
        DfgNodeId u = frontier.back();
        frontier.pop_back();
        ++processed;
        _critCost = std::max(_critCost, cost_depth[u]);
        for (uint32_t ei : _outEdges[u]) {
            const DfgEdge &e = _edges[ei];
            if (e.crossCycle)
                continue;
            _depth[e.dst] = std::max(_depth[e.dst], _depth[u] + 1);
            cost_depth[e.dst] = std::max(cost_depth[e.dst],
                                         cost_depth[u] + _cost[e.dst]);
            if (--pending[e.dst] == 0)
                frontier.push_back(e.dst);
        }
    }
    ASH_ASSERT(processed == n,
               "same-cycle dataflow edges form a cycle (%zu of %zu)",
               processed, n);
}

} // namespace ash::dfg
