/**
 * @file
 * Dataflow-graph extraction from the RTL netlist (Sec 2.1, Sec 4.3.1).
 *
 * Every netlist node except constants becomes a dataflow node; operand
 * relations become edges carrying the producer's bit width. Two graph
 * forms are supported:
 *
 *  - Single-cycle: register values live in memory; the register-update
 *    node is ordered after all readers with WAR edges, and no edges
 *    cross cycle boundaries. This is the representation conventional
 *    simulators use, and it serializes across cycles.
 *  - Unrolled (the paper's contribution): registers become cross-cycle
 *    dataflow edges, removing WAR hazards and letting consecutive
 *    simulated cycles overlap.
 *
 * Memory ordering is encoded with dataflow edges in both forms: reads
 * precede same-cycle writes (WAR), write ports are chained in priority
 * order, and writes precede next-cycle reads (RAW, cross-cycle).
 */

#ifndef ASH_DFG_DFG_H
#define ASH_DFG_DFG_H

#include <cstdint>
#include <vector>

#include "rtl/Netlist.h"

namespace ash::dfg {

/** Dense dataflow node index. */
using DfgNodeId = uint32_t;
constexpr DfgNodeId invalidDfgNode = ~0u;

/** Edge kinds distinguish value-carrying edges from ordering edges. */
enum class EdgeKind : uint8_t {
    Value,   ///< Carries the producer node's value.
    War,     ///< Write-after-read ordering; no payload.
    Raw,     ///< Read-after-write memory ordering; no payload.
};

/** One dataflow edge. */
struct DfgEdge
{
    DfgNodeId src;
    DfgNodeId dst;
    EdgeKind kind;
    uint8_t bits;        ///< Payload width (0 for ordering edges).
    bool crossCycle;     ///< Producer cycle c feeds consumer cycle c+1.
};

/** Construction options. */
struct DfgOptions
{
    /** Build the unrolled graph (registers as cross-cycle edges). */
    bool unrolled = true;
};

/** The task-formation substrate: nodes, edges, depths, parallelism. */
class Dfg
{
  public:
    Dfg(const rtl::Netlist &netlist, const DfgOptions &opts = {});

    const rtl::Netlist &netlist() const { return _nl; }
    bool unrolled() const { return _unrolled; }

    size_t numNodes() const { return _rtlOf.size(); }
    const std::vector<DfgEdge> &edges() const { return _edges; }

    /** RTL node backing a dataflow node. */
    rtl::NodeId rtlNode(DfgNodeId id) const { return _rtlOf[id]; }
    /** Dataflow node for an RTL node (invalid for constants). */
    DfgNodeId dfgNode(rtl::NodeId id) const { return _dfgOf[id]; }
    /**
     * True for the synthetic register-store nodes that only exist in
     * the single-cycle graph (rtlNode() then names the register).
     */
    bool isRegWrite(DfgNodeId id) const { return _isRegWrite[id]; }

    /** Instruction cost of a node (>=1 so scheduling is meaningful). */
    uint32_t cost(DfgNodeId id) const { return _cost[id]; }
    uint64_t totalCost() const { return _totalCost; }

    /** Outgoing / incoming edge indices per node. */
    const std::vector<uint32_t> &outEdges(DfgNodeId id) const
    { return _outEdges[id]; }
    const std::vector<uint32_t> &inEdges(DfgNodeId id) const
    { return _inEdges[id]; }

    /**
     * Depth of each node: longest-cost chain of same-cycle edges from
     * a cycle-start source, measured in nodes.
     */
    const std::vector<uint32_t> &depths() const { return _depth; }

    /** Critical path cost through same-cycle edges (instructions). */
    uint64_t criticalPathCost() const { return _critCost; }

    /** totalCost / criticalPathCost: the available parallelism. */
    double
    parallelism() const
    {
        return _critCost ? static_cast<double>(_totalCost) /
                               static_cast<double>(_critCost)
                         : 0.0;
    }

  private:
    void addEdge(DfgNodeId src, DfgNodeId dst, EdgeKind kind,
                 uint8_t bits, bool cross);
    void computeDepths();

    const rtl::Netlist &_nl;
    bool _unrolled;
    std::vector<rtl::NodeId> _rtlOf;
    std::vector<DfgNodeId> _dfgOf;
    std::vector<uint8_t> _isRegWrite;
    std::vector<uint32_t> _cost;
    std::vector<DfgEdge> _edges;
    std::vector<std::vector<uint32_t>> _outEdges;
    std::vector<std::vector<uint32_t>> _inEdges;
    std::vector<uint32_t> _depth;
    uint64_t _totalCost = 0;
    uint64_t _critCost = 0;
};

} // namespace ash::dfg

#endif // ASH_DFG_DFG_H
