/**
 * @file
 * The compiled task program shared by the ASH compiler and the ASH
 * chip model. A TaskProgram is DASH/SASH "machine code": fine-grained
 * tasks mapped to tiles, connected by descriptor pushes (the
 * push_args interface of Sec 4.1), with timestamps assigned per
 * Sec 4.3.3 and argument-allocation transforms per Sec 4.3.4 already
 * applied (DTTs, fan-in/fan-out relays, WAR edges).
 */

#ifndef ASH_CORE_COMPILER_TASKGRAPH_H
#define ASH_CORE_COMPILER_TASKGRAPH_H

#include <cstdint>
#include <string>
#include <vector>

#include "dfg/Dfg.h"
#include "rtl/Netlist.h"

namespace ash::core {

using TaskId = uint32_t;
constexpr TaskId invalidTask = ~0u;

/**
 * Marker bit for entries of Task::nodes that denote the synthetic
 * register-store operation of the single-cycle graph: the entry is
 * (regNodeId | regWriteFlag) and stores the register's next value into
 * tile-local register state.
 */
constexpr rtl::NodeId regWriteFlag = 1u << 31;

/** Hardware limits from the paper's implementation (Sec 4.1, 4.3.4). */
struct HwLimits
{
    unsigned maxRegArgValues = 5;   ///< 64-bit register args/descriptor.
    unsigned maxParents = 8;        ///< Incoming descriptors per task.
    unsigned maxPushes = 8;         ///< Outgoing descriptors per task.
};

/** Kinds of descriptor a task pushes. */
enum class PushKind : uint8_t {
    Value,   ///< Carries up to five 64-bit values in register args.
    Raw,     ///< Argumentless read-after-write ordering token.
    War,     ///< Argumentless write-after-read token (SASH discards).
};

/** One push_args a task performs each time it executes. */
struct Push
{
    TaskId dst = invalidTask;
    PushKind kind = PushKind::Value;
    bool crossCycle = false;     ///< Consumer instance is at cycle+1.
    /**
     * RTL nodes whose values ride in register args. For a Reg node id,
     * the pushed value is the register's next-value (computed this
     * cycle, consumed as the register's value next cycle).
     */
    std::vector<rtl::NodeId> values;

    /** Descriptor size on the NoC: metadata + payload. */
    uint32_t
    bytes() const
    {
        return 16 + 8 * static_cast<uint32_t>(values.size());
    }
};

/** Task role. */
enum class TaskKind : uint8_t {
    Normal,   ///< Evaluates IR nodes.
    Buffer,   ///< DTT / fan-in relay: spills values to consumer-tile
              ///< memory and sends an argumentless RAW token.
    Relay,    ///< Fan-out relay: re-pushes received values.
};

/**
 * Compiler-resolved buffered-input reference: the value of @p node is
 * staged by buffer task @p bufTask in its carriedValues slot @p slot.
 * When several buffer parents carry the same node, the first parent
 * (bufferParents order) wins, matching the engine's historical scan.
 */
struct BufSlotRef
{
    rtl::NodeId node = rtl::invalidNode;
    TaskId bufTask = invalidTask;
    uint32_t slot = 0;
};

/** One compiled task. */
struct Task
{
    TaskId id = invalidTask;
    TaskKind kind = TaskKind::Normal;
    uint32_t tile = 0;
    uint32_t depth = 0;          ///< d: same-cycle chain depth.
    uint32_t cost = 1;           ///< Instructions per execution.
    uint32_t codeBytes = 16;     ///< Instruction footprint.
    uint32_t numParents = 0;     ///< Incoming descriptors per cycle.

    /** IR nodes evaluated, in a valid intra-task order (Normal only). */
    std::vector<rtl::NodeId> nodes;

    /** External values consumed via direct descriptors. */
    std::vector<rtl::NodeId> directInputs;
    /** External values read from tile memory (written by Buffers). */
    std::vector<rtl::NodeId> bufferedInputs;
    /** Buffer tasks feeding this task (parents of kind Buffer). */
    std::vector<TaskId> bufferParents;

    /**
     * Dense argument-buffer slot map: (node, slot) sorted by node,
     * where slot is the node's position in directInputs. The engine
     * keeps per-task argument state (last-value buffers) in flat
     * arrays indexed by these slots instead of node-keyed hash maps.
     */
    std::vector<std::pair<rtl::NodeId, uint32_t>> argSlotOf;
    /**
     * Buffered-input slot map, sorted by node: where each buffered
     * value lives (which buffer parent, which carriedValues slot).
     */
    std::vector<BufSlotRef> bufSlotOf;

    /** For Buffer/Relay tasks: the values they stage or re-push. */
    std::vector<rtl::NodeId> carriedValues;
    /** For Buffer tasks: the consumer they serve. */
    TaskId serves = invalidTask;

    /** Descriptors pushed on each execution. */
    std::vector<Push> pushes;

    /** True when the task evaluates design Input nodes (stimulus). */
    bool consumesInputs = false;
    /** True when any of its parents is the stimulus activation. */
    uint32_t stimulusParents = 0;
};

/** Compilation statistics (Table 4 columns). */
struct CompileStats
{
    uint64_t dfgNodes = 0;
    uint64_t dfgEdges = 0;
    uint64_t tasks = 0;
    uint64_t dttTasks = 0;        ///< Buffer+Relay tasks.
    uint64_t taskEdges = 0;       ///< Total descriptor pushes.
    double parallelism = 0.0;     ///< Task-graph cost / critical path.
    uint64_t codeFootprintBytes = 0;
    double compileSeconds = 0.0;
    uint64_t cycleDepth = 0;      ///< D.
};

/** The complete compiled program. */
struct TaskProgram
{
    const rtl::Netlist *nl = nullptr;
    uint32_t numTiles = 1;
    bool unrolled = true;
    uint32_t cycleDepth = 1;     ///< D: timestamps advance D per cycle.
    HwLimits limits;
    std::vector<Task> tasks;
    CompileStats stats;

    /** Producing task of each RTL node (invalidTask for constants). */
    std::vector<TaskId> taskOfNode;

    /**
     * Timestamp of a task instance (Sec 4.3.3):
     * ts = D * cycle + depth.
     */
    uint64_t
    timestamp(TaskId t, uint64_t cycle) const
    {
        return cycleDepth * cycle + tasks[t].depth;
    }

    /** Validate structural invariants; panics on violation. */
    void validate() const;
};

} // namespace ash::core

#endif // ASH_CORE_COMPILER_TASKGRAPH_H
