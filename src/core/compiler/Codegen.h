/**
 * @file
 * Task-code emission: renders a compiled task as the C++-like code the
 * ASH compiler's final stage generates (Fig 5 of the paper). The chip
 * model executes tasks from the in-memory TaskProgram directly; this
 * printer exists for inspection, debugging, and the compiler-explorer
 * example.
 */

#ifndef ASH_CORE_COMPILER_CODEGEN_H
#define ASH_CORE_COMPILER_CODEGEN_H

#include <string>

#include "core/compiler/TaskGraph.h"

namespace ash::core {

/** Render one task as C++-like source (Fig 5 style). */
std::string emitTaskCode(const TaskProgram &prog, TaskId task);

/** Render a short human-readable summary of the whole program. */
std::string programSummary(const TaskProgram &prog);

} // namespace ash::core

#endif // ASH_CORE_COMPILER_CODEGEN_H
