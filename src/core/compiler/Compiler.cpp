#include "core/compiler/Compiler.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <numeric>

#include "common/Logging.h"
#include "common/SlotAllocator.h"
#include "partition/Partition.h"
#include "prof/Prof.h"
#include "rtl/Cost.h"

namespace ash::core {

using dfg::Dfg;
using dfg::DfgEdge;
using dfg::DfgNodeId;
using dfg::EdgeKind;
using rtl::NodeId;
using rtl::Op;

namespace {

/** Union-find over dataflow nodes used by tile contraction/coarsening. */
class UnionFind
{
  public:
    explicit UnionFind(size_t n) : _parent(n)
    {
        std::iota(_parent.begin(), _parent.end(), 0u);
    }

    uint32_t
    find(uint32_t x)
    {
        while (_parent[x] != x) {
            _parent[x] = _parent[_parent[x]];
            x = _parent[x];
        }
        return x;
    }

    /** Union b into a's set; returns the new root. */
    uint32_t
    unite(uint32_t a, uint32_t b)
    {
        a = find(a);
        b = find(b);
        if (a != b)
            _parent[b] = a;
        return a;
    }

  private:
    std::vector<uint32_t> _parent;
};

void
contractMemory(const Dfg &graph, size_t mem, UnionFind &uf)
{
    DfgNodeId first = dfg::invalidDfgNode;
    for (DfgNodeId i = 0; i < graph.numNodes(); ++i) {
        const rtl::Node &node = graph.netlist().node(graph.rtlNode(i));
        bool touches = (node.op == Op::MemRead ||
                        node.op == Op::MemWrite) &&
                       node.mem == mem && !graph.isRegWrite(i);
        if (!touches)
            continue;
        if (first == dfg::invalidDfgNode)
            first = i;
        else
            uf.unite(first, i);
    }
}

/**
 * Map dataflow nodes to tiles (Sec 4.3.2). Nodes that access the same
 * memory (and, in the single-cycle graph, a register and its writer)
 * are contracted into one partitioning vertex so they land on the same
 * tile.
 */
std::vector<uint32_t>
mapToTiles(const Dfg &graph, const CompilerOptions &opts)
{
    ASH_PROF_ZONE("partition");
    size_t n = graph.numNodes();
    std::vector<uint32_t> tile(n, 0);
    if (opts.numTiles <= 1)
        return tile;

    if (!opts.useMapping) {
        // Verilator-style scatter: round-robin by node id, but keep
        // memory groups together (a hard correctness constraint).
        UnionFind uf(static_cast<uint32_t>(n));
        for (size_t m = 0; m < graph.netlist().memories().size(); ++m)
            contractMemory(graph, m, uf);
        for (DfgNodeId i = 0; i < n; ++i) {
            uint32_t root = uf.find(i);
            tile[i] = root % opts.numTiles;
        }
        return tile;
    }

    // Contract constrained groups.
    UnionFind uf(static_cast<uint32_t>(n));
    for (size_t m = 0; m < graph.netlist().memories().size(); ++m)
        contractMemory(graph, m, uf);
    for (DfgNodeId i = 0; i < n; ++i) {
        if (graph.isRegWrite(i)) {
            DfgNodeId reg_node =
                graph.dfgNode(graph.rtlNode(i));
            uf.unite(reg_node, i);
        }
    }

    // Dense group ids.
    std::vector<uint32_t> group(n);
    std::map<uint32_t, uint32_t> root_to_group;
    for (DfgNodeId i = 0; i < n; ++i) {
        uint32_t root = uf.find(i);
        auto [it, fresh] = root_to_group.try_emplace(
            root, static_cast<uint32_t>(root_to_group.size()));
        (void)fresh;
        group[i] = it->second;
    }

    partition::Graph pg;
    pg.vertexWeight.assign(root_to_group.size(), 0);
    pg.adj.resize(root_to_group.size());
    for (DfgNodeId i = 0; i < n; ++i)
        pg.vertexWeight[group[i]] += graph.cost(i);
    for (const DfgEdge &e : graph.edges()) {
        uint32_t gu = group[e.src];
        uint32_t gv = group[e.dst];
        if (gu == gv)
            continue;
        uint32_t w = e.kind == EdgeKind::Value
                         ? 16 + (e.bits + 7) / 8
                         : 16;
        pg.addEdge(gu, gv, w);
    }

    partition::PartitionOptions popts;
    popts.seed = opts.seed;
    popts.imbalance = opts.imbalance;
    partition::PartitionResult pr =
        partition::partitionGraph(pg, opts.numTiles, popts);
    for (DfgNodeId i = 0; i < n; ++i)
        tile[i] = pr.label[group[i]];
    return tile;
}

/**
 * Coarsen dataflow nodes into tasks within each tile using the two
 * provably cycle-free merge rules: (a) merge v into u when u is v's
 * only same-cycle predecessor task; (b) merge v into u when v is u's
 * only same-cycle successor task. Iterated to a fixpoint under the
 * task-cost cap. Cross-cycle edges are never merged across (they
 * become cross-cycle self-pushes only when both endpoints merge via
 * same-cycle rules).
 */
std::vector<uint32_t>
coarsen(const Dfg &graph, const std::vector<uint32_t> &tile,
        uint32_t max_task_cost)
{
    size_t n = graph.numNodes();
    UnionFind uf(static_cast<uint32_t>(n));
    std::vector<uint64_t> cost(n);
    std::vector<std::vector<DfgNodeId>> members(n);
    for (DfgNodeId i = 0; i < n; ++i) {
        cost[i] = graph.cost(i);
        members[i] = {i};
    }

    // A merged task may expose at most this many distinct values to
    // other tasks; this keeps the later fan-out pass convergent
    // (3 descriptors' worth of register arguments).
    const size_t max_external_outputs = 15;
    auto externalOutputs = [&](uint32_t ra, uint32_t rb) {
        size_t count = 0;
        for (uint32_t root : {ra, rb}) {
            for (DfgNodeId m : members[root]) {
                bool external = false;
                for (uint32_t ei : graph.outEdges(m)) {
                    const DfgEdge &e = graph.edges()[ei];
                    if (e.kind != EdgeKind::Value)
                        continue;
                    uint32_t rd = uf.find(e.dst);
                    if (rd != ra && rd != rb) {
                        external = true;
                        break;
                    }
                }
                if (external)
                    ++count;
            }
        }
        return count;
    };

    // Same-cycle edges only.
    std::vector<std::pair<uint32_t, uint32_t>> edges;
    for (const DfgEdge &e : graph.edges()) {
        if (!e.crossCycle)
            edges.emplace_back(e.src, e.dst);
    }

    for (unsigned pass = 0; pass < 64; ++pass) {
        // Distinct pred/succ task counts per root, with the unique
        // neighbor remembered.
        std::map<std::pair<uint32_t, uint32_t>, char> seen;
        std::vector<uint32_t> pred_count(n, 0), succ_count(n, 0);
        std::vector<uint32_t> only_pred(n, ~0u), only_succ(n, ~0u);
        seen.clear();
        for (auto [s, d] : edges) {
            uint32_t rs = uf.find(s);
            uint32_t rd = uf.find(d);
            if (rs == rd)
                continue;
            if (seen.emplace(std::make_pair(rs, rd), 0).second) {
                if (++pred_count[rd] == 1)
                    only_pred[rd] = rs;
                if (++succ_count[rs] == 1)
                    only_succ[rs] = rd;
            }
        }

        std::vector<uint8_t> dirty(n, 0);
        size_t merges = 0;
        for (auto [s, d] : edges) {
            uint32_t rs = uf.find(s);
            uint32_t rd = uf.find(d);
            if (rs == rd || dirty[rs] || dirty[rd])
                continue;
            if (tile[rs] != tile[rd])
                continue;
            if (cost[rs] + cost[rd] > max_task_cost)
                continue;
            bool rule_a = pred_count[rd] == 1 && only_pred[rd] == rs;
            bool rule_b = succ_count[rs] == 1 && only_succ[rs] == rd;
            if (!rule_a && !rule_b)
                continue;
            if (externalOutputs(rs, rd) > max_external_outputs)
                continue;
            uint32_t root = uf.unite(rs, rd);
            uint32_t other = root == rs ? rd : rs;
            cost[root] += cost[other];
            members[root].insert(members[root].end(),
                                 members[other].begin(),
                                 members[other].end());
            members[other].clear();
            dirty[rs] = dirty[rd] = 1;
            ++merges;
        }
        if (merges == 0)
            break;
    }

    std::vector<uint32_t> task_of(n);
    for (DfgNodeId i = 0; i < n; ++i)
        task_of[i] = uf.find(i);
    return task_of;
}

/** Intermediate grouped inter-task link. */
struct Link
{
    bool hasValue = false;
    bool hasRaw = false;
    bool hasWar = false;
    std::vector<NodeId> values;
};

} // namespace

void
TaskProgram::validate() const
{
    std::vector<uint32_t> parents(tasks.size(), 0);
    for (const Task &t : tasks) {
        ASH_ASSERT(t.pushes.size() <= limits.maxPushes,
                   "task %u has %zu pushes (limit %u)", t.id,
                   t.pushes.size(), limits.maxPushes);
        for (const Push &p : t.pushes) {
            ASH_ASSERT(p.dst < tasks.size());
            ASH_ASSERT(p.values.size() <= limits.maxRegArgValues,
                       "push carries %zu values", p.values.size());
            ASH_ASSERT(p.kind == PushKind::Value || p.values.empty());
            ++parents[p.dst];
            if (!p.crossCycle) {
                ASH_ASSERT(t.depth < tasks[p.dst].depth,
                           "same-cycle push %u->%u violates depth "
                           "order (%u >= %u)", t.id, p.dst, t.depth,
                           tasks[p.dst].depth);
            }
        }
        if (t.kind == TaskKind::Buffer) {
            ASH_ASSERT(t.serves != invalidTask);
            ASH_ASSERT(t.tile == tasks[t.serves].tile,
                       "buffer %u not on consumer tile", t.id);
        }
    }
    for (const Task &t : tasks) {
        uint32_t total = parents[t.id] + t.stimulusParents;
        ASH_ASSERT(total == t.numParents,
                   "task %u parent count mismatch (%u vs %u)", t.id,
                   total, t.numParents);
        ASH_ASSERT(t.numParents <= limits.maxParents,
                   "task %u has %u parents (limit %u)", t.id,
                   t.numParents, limits.maxParents);
    }
    // Memory locality: all ports of one memory on one tile.
    std::vector<int64_t> mem_tile(nl->memories().size(), -1);
    for (const Task &t : tasks) {
        for (NodeId raw_id : t.nodes) {
            NodeId id = raw_id & ~regWriteFlag;
            const rtl::Node &node = nl->node(id);
            if (node.op != Op::MemRead && node.op != Op::MemWrite)
                continue;
            if (mem_tile[node.mem] < 0)
                mem_tile[node.mem] = t.tile;
            ASH_ASSERT(mem_tile[node.mem] ==
                           static_cast<int64_t>(t.tile),
                       "memory %u split across tiles", node.mem);
        }
    }
}

TaskProgram
compile(const rtl::Netlist &nl, const CompilerOptions &opts)
{
    ASH_PROF_ZONE("compile");
    auto t_start = std::chrono::steady_clock::now();

    dfg::DfgOptions dopts;
    dopts.unrolled = opts.unrolled;
    Dfg graph = [&] {
        ASH_PROF_ZONE("dfg");
        return Dfg(nl, dopts);
    }();

    std::vector<uint32_t> node_tile = mapToTiles(graph, opts);
    std::vector<uint32_t> task_root = [&] {
        ASH_PROF_ZONE("coarsen");
        return coarsen(graph, node_tile, opts.maxTaskCost);
    }();

    TaskProgram prog;
    prog.nl = &nl;
    prog.numTiles = opts.numTiles;
    prog.unrolled = opts.unrolled;
    prog.limits = opts.limits;

    // Dense task ids; nodes sorted by (depth, id) which is a valid
    // intra-task topological order over same-cycle edges.
    std::map<uint32_t, TaskId> root_to_task;
    for (DfgNodeId i = 0; i < graph.numNodes(); ++i) {
        uint32_t root = task_root[i];
        auto [it, fresh] = root_to_task.try_emplace(
            root, static_cast<TaskId>(root_to_task.size()));
        if (fresh) {
            Task t;
            t.id = it->second;
            t.tile = node_tile[i];
            prog.tasks.push_back(std::move(t));
        }
    }
    std::vector<std::vector<DfgNodeId>> members(prog.tasks.size());
    for (DfgNodeId i = 0; i < graph.numNodes(); ++i)
        members[root_to_task[task_root[i]]].push_back(i);
    const auto &depths = graph.depths();
    for (auto &m : members) {
        std::sort(m.begin(), m.end(),
                  [&](DfgNodeId a, DfgNodeId b) {
                      if (depths[a] != depths[b])
                          return depths[a] < depths[b];
                      return a < b;
                  });
    }

    prog.taskOfNode.assign(nl.numNodes(), invalidTask);
    for (TaskId t = 0; t < prog.tasks.size(); ++t) {
        Task &task = prog.tasks[t];
        uint32_t node_cost = 0;
        uint32_t code = 24;   // Task prologue/epilogue.
        for (DfgNodeId d : members[t]) {
            NodeId id = graph.rtlNode(d);
            if (graph.isRegWrite(d)) {
                task.nodes.push_back(id | regWriteFlag);
            } else {
                task.nodes.push_back(id);
                prog.taskOfNode[id] = t;
            }
            node_cost += graph.cost(d);
            code += rtl::nodeCodeBytes(nl.node(id)) + 4;
            if (nl.node(id).op == Op::Input)
                task.consumesInputs = true;
        }
        task.cost = std::max(1u, node_cost);
        task.codeBytes = code;
    }

    // Group inter-task dataflow edges into links.
    std::map<std::tuple<TaskId, TaskId, bool>, Link> links;
    for (const DfgEdge &e : graph.edges()) {
        TaskId ts = root_to_task[task_root[e.src]];
        TaskId td = root_to_task[task_root[e.dst]];
        if (ts == td && !e.crossCycle)
            continue;   // Internal.
        Link &link = links[{ts, td, e.crossCycle}];
        if (e.kind == EdgeKind::Value) {
            // The carried id is what the consumer references: the
            // register node for cross-cycle reg edges, the producer
            // node otherwise.
            NodeId carried;
            const rtl::Node &dn = nl.node(graph.rtlNode(e.dst));
            if (dn.op == Op::Reg && e.crossCycle &&
                !graph.isRegWrite(e.dst)) {
                carried = graph.rtlNode(e.dst);
            } else {
                carried = graph.rtlNode(e.src);
            }
            if (std::find(link.values.begin(), link.values.end(),
                          carried) == link.values.end())
                link.values.push_back(carried);
            link.hasValue = true;
        } else if (e.kind == EdgeKind::Raw) {
            link.hasRaw = true;
        } else {
            link.hasWar = true;
        }
    }

    // Argument allocation (Sec 4.3.4): links become pushes; overflow
    // values go through Buffer tasks (DTTs).
    const unsigned max_vals = opts.limits.maxRegArgValues;
    auto newBuffer = [&](TaskId serves, bool in_cross) -> TaskId {
        Task buf;
        buf.id = static_cast<TaskId>(prog.tasks.size());
        buf.kind = TaskKind::Buffer;
        buf.tile = prog.tasks[serves].tile;
        buf.serves = serves;
        buf.cost = 6;        // Stores + compare + push.
        buf.codeBytes = 48;
        (void)in_cross;
        prog.tasks.push_back(std::move(buf));
        return prog.tasks.back().id;
    };

    for (const auto &[key, link] : links) {
        auto [src, dst, cross] = key;
        Task &s = prog.tasks[src];
        if (link.values.size() <= max_vals) {
            Push p;
            p.dst = dst;
            p.crossCycle = cross;
            if (link.hasValue) {
                p.kind = PushKind::Value;
                p.values = link.values;
            } else if (link.hasRaw) {
                p.kind = PushKind::Raw;
            } else {
                p.kind = PushKind::War;
            }
            s.pushes.push_back(std::move(p));
            continue;
        }
        // Direct descriptor with the first five values; the rest ship
        // through DTTs (Fig 9).
        Push direct;
        direct.dst = dst;
        direct.crossCycle = cross;
        direct.kind = PushKind::Value;
        direct.values.assign(link.values.begin(),
                             link.values.begin() + max_vals);
        s.pushes.push_back(std::move(direct));
        for (size_t i = max_vals; i < link.values.size();
             i += max_vals) {
            size_t end = std::min(link.values.size(), i + max_vals);
            TaskId buf = newBuffer(dst, cross);
            Task &b = prog.tasks[buf];
            b.carriedValues.assign(link.values.begin() + i,
                                   link.values.begin() + end);
            // src -> DTT carries the chunk (keeps the link's flag).
            Push to_buf;
            to_buf.dst = buf;
            to_buf.crossCycle = cross;
            to_buf.kind = PushKind::Value;
            to_buf.values = b.carriedValues;
            prog.tasks[src].pushes.push_back(std::move(to_buf));
            // DTT -> consumer: argumentless RAW, same cycle.
            Push raw;
            raw.dst = dst;
            raw.kind = PushKind::Raw;
            raw.crossCycle = false;
            b.pushes.push_back(std::move(raw));
            // consumer -> next-cycle DTT: WAR, cross cycle.
            Push war;
            war.dst = buf;
            war.kind = PushKind::War;
            war.crossCycle = true;
            prog.tasks[dst].pushes.push_back(std::move(war));
        }
    }

    // Fan-in: cap incoming descriptors per task with relay buffers.
    auto countParents = [&]() {
        std::vector<std::vector<std::pair<TaskId, size_t>>> incoming(
            prog.tasks.size());
        for (const Task &t : prog.tasks) {
            for (size_t pi = 0; pi < t.pushes.size(); ++pi)
                incoming[t.pushes[pi].dst].emplace_back(t.id, pi);
        }
        return incoming;
    };
    bool changed = true;
    unsigned fanin_rounds = 0;
    while (changed) {
        changed = false;
        ASH_ASSERT(++fanin_rounds < 1000, "fan-in failed to converge");
        auto incoming = countParents();
        size_t num_tasks = prog.tasks.size();
        for (TaskId t = 0; t < num_tasks; ++t) {
            uint32_t stim = prog.tasks[t].consumesInputs ? 1 : 0;
            if (incoming[t].size() + stim <= opts.limits.maxParents)
                continue;
            changed = true;
            // Move the highest-index parents into a relay buffer, a
            // full buffer's worth at a time so every round makes net
            // progress (each buffer absorbs up to maxParents-1 pushes
            // and contributes one RAW parent back). Value/RAW pushes
            // move first; WAR tokens are relayed only as a last
            // resort (their conflict check then lands on the buffer,
            // which is conservative but safe).
            std::vector<std::pair<TaskId, size_t>> moved;
            for (int pass = 0; pass < 2 && moved.size() < 2; ++pass) {
                moved.clear();
                for (auto it = incoming[t].rbegin();
                     it != incoming[t].rend() &&
                     moved.size() <
                         static_cast<size_t>(opts.limits.maxParents -
                                             1);
                     ++it) {
                    const Push &p =
                        prog.tasks[it->first].pushes[it->second];
                    if (pass == 0 && p.kind == PushKind::War)
                        continue;
                    moved.push_back(*it);
                }
            }
            if (moved.size() < 2)
                fatal("cannot satisfy parent limit on task %u", t);
            TaskId buf = newBuffer(t, false);
            Task &b = prog.tasks[buf];
            for (auto [pt, pi] : moved) {
                Push &p = prog.tasks[pt].pushes[pi];
                p.dst = buf;
                for (NodeId v : p.values) {
                    if (std::find(b.carriedValues.begin(),
                                  b.carriedValues.end(), v) ==
                        b.carriedValues.end())
                        b.carriedValues.push_back(v);
                }
            }
            Push raw;
            raw.dst = t;
            raw.kind = PushKind::Raw;
            raw.crossCycle = false;
            b.pushes.push_back(std::move(raw));
            Push war;
            war.dst = buf;
            war.kind = PushKind::War;
            war.crossCycle = true;
            prog.tasks[t].pushes.push_back(std::move(war));
        }
    }

    // Fan-out: cap outgoing descriptors with relay tasks. Pushes are
    // clustered (at most half the push budget per cluster, to leave
    // headroom for WAR tokens); each cluster's pushes move to a relay.
    // The relay receives the union of needed values: up to five
    // directly, the rest through DTT buffers, exactly like any other
    // consumer.
    changed = true;
    unsigned fanout_rounds = 0;
    while (changed) {
        changed = false;
        ASH_ASSERT(++fanout_rounds < 32, "fan-out failed to converge");
        size_t num_tasks = prog.tasks.size();
        for (TaskId t = 0; t < num_tasks; ++t) {
            if (prog.tasks[t].pushes.size() <= opts.limits.maxPushes)
                continue;
            changed = true;
            std::vector<Push> pushes = std::move(prog.tasks[t].pushes);
            prog.tasks[t].pushes.clear();
            // First-fit clustering: a cluster's value union must fit
            // in one descriptor, its size stays below the push budget
            // so the relay itself is legal, and all members share the
            // cross-cycle flag (a register id names *different*
            // values on same- vs cross-cycle pushes).
            std::vector<std::vector<Push>> clusters;
            std::vector<std::vector<NodeId>> unions;
            for (Push &p : pushes) {
                bool placed = false;
                for (size_t c = 0; c < clusters.size() && !placed;
                     ++c) {
                    if (clusters[c].size() + 1 >=
                        opts.limits.maxPushes)
                        continue;
                    if (clusters[c].front().crossCycle != p.crossCycle)
                        continue;
                    std::vector<NodeId> u = unions[c];
                    for (NodeId v : p.values) {
                        if (std::find(u.begin(), u.end(), v) ==
                            u.end())
                            u.push_back(v);
                    }
                    if (u.size() > max_vals)
                        continue;
                    unions[c] = std::move(u);
                    clusters[c].push_back(std::move(p));
                    placed = true;
                }
                if (!placed) {
                    unions.push_back(p.values);
                    clusters.emplace_back();
                    clusters.back().push_back(std::move(p));
                }
            }
            // The coarsening bound on distinct external outputs
            // guarantees clustering makes progress.
            ASH_ASSERT(clusters.size() < pushes.size(),
                       "fan-out clustering stalled on task %u "
                       "(%zu pushes)", t, pushes.size());
            for (size_t c = 0; c < clusters.size(); ++c) {
                if (clusters[c].size() == 1) {
                    prog.tasks[t].pushes.push_back(
                        std::move(clusters[c][0]));
                    continue;
                }
                Task relay;
                TaskId relay_id =
                    static_cast<TaskId>(prog.tasks.size());
                relay.id = relay_id;
                relay.kind = TaskKind::Relay;
                std::map<uint32_t, int> votes;
                for (const Push &p : clusters[c])
                    ++votes[prog.tasks[p.dst].tile];
                relay.tile = std::max_element(
                                 votes.begin(), votes.end(),
                                 [](auto &a, auto &b) {
                                     return a.second < b.second;
                                 })
                                 ->first;
                relay.cost = 2 + 2 * static_cast<uint32_t>(
                                         clusters[c].size());
                relay.codeBytes =
                    24 + 10 * static_cast<uint32_t>(
                                  clusters[c].size());
                relay.carriedValues = unions[c];
                // The relay instance is aligned to the consumers'
                // cycle: the cross hop (if any) moves to the
                // src->relay edge and the re-pushes become same-cycle.
                bool cluster_cross = clusters[c].front().crossCycle;
                relay.pushes = std::move(clusters[c]);
                for (Push &rp : relay.pushes)
                    rp.crossCycle = false;
                Push to_relay;
                to_relay.dst = relay_id;
                to_relay.crossCycle = cluster_cross;
                if (unions[c].empty()) {
                    to_relay.kind = PushKind::Raw;
                } else {
                    to_relay.kind = PushKind::Value;
                    to_relay.values = unions[c];
                }
                prog.tasks.push_back(std::move(relay));
                prog.tasks[t].pushes.push_back(std::move(to_relay));
            }
        }
    }

    // Parent counts, direct/buffered input sets.
    {
        std::vector<uint32_t> parents(prog.tasks.size(), 0);
        for (const Task &t : prog.tasks) {
            for (const Push &p : t.pushes)
                ++parents[p.dst];
        }
        for (Task &t : prog.tasks) {
            t.stimulusParents = t.consumesInputs ? 1 : 0;
            t.numParents = parents[t.id] + t.stimulusParents;
            if (t.numParents == 0) {
                // No dataflow parents at all (e.g. a register with a
                // constant next-value): the engine activates it like
                // the stimulus does.
                t.stimulusParents = 1;
                t.numParents = 1;
            }
        }
        // Direct inputs double as the argument-buffer slot map: slot
        // ids are assigned densely in first-arrival order (what the
        // old find-based dedup produced), so directInputs[slot] is
        // the node held in slot `slot`.
        std::vector<SlotAllocator> arg_slots(prog.tasks.size());
        for (const Task &t : prog.tasks) {
            for (const Push &p : t.pushes) {
                if (p.kind != PushKind::Value)
                    continue;
                Task &d = prog.tasks[p.dst];
                for (NodeId v : p.values) {
                    if (arg_slots[p.dst].add(v) ==
                        d.directInputs.size())
                        d.directInputs.push_back(v);
                }
            }
        }
        std::vector<SlotAllocator> buffered(prog.tasks.size());
        for (const Task &t : prog.tasks) {
            if (t.kind != TaskKind::Buffer)
                continue;
            Task &d = prog.tasks[t.serves];
            d.bufferParents.push_back(t.id);
            for (NodeId v : t.carriedValues) {
                if (buffered[t.serves].add(v) ==
                    d.bufferedInputs.size())
                    d.bufferedInputs.push_back(v);
            }
        }

        // Emit the engine-facing slot maps, sorted by node for
        // binary-search lookup. Buffered slots resolve the historical
        // "scan bufferParents in order, first carrier wins" rule at
        // compile time.
        for (Task &d : prog.tasks) {
            d.argSlotOf.reserve(d.directInputs.size());
            for (uint32_t s = 0;
                 s < static_cast<uint32_t>(d.directInputs.size());
                 ++s)
                d.argSlotOf.emplace_back(d.directInputs[s], s);
            std::sort(d.argSlotOf.begin(), d.argSlotOf.end());

            SlotAllocator seen;
            for (TaskId buf : d.bufferParents) {
                const auto &carried =
                    prog.tasks[buf].carriedValues;
                for (uint32_t s = 0;
                     s < static_cast<uint32_t>(carried.size()); ++s) {
                    if (seen.slot(carried[s]) != SlotAllocator::npos)
                        continue;   // An earlier parent carries it.
                    seen.add(carried[s]);
                    d.bufSlotOf.push_back(
                        BufSlotRef{carried[s], buf, s});
                }
            }
            std::sort(d.bufSlotOf.begin(), d.bufSlotOf.end(),
                      [](const BufSlotRef &a, const BufSlotRef &b) {
                          return a.node < b.node;
                      });
        }
    }

    // Prioritization (Sec 4.3.3): depth via Kahn over same-cycle
    // pushes, ignoring WAR edges into buffers from their consumers
    // (those are cross-cycle by construction).
    {
        size_t n = prog.tasks.size();
        std::vector<uint32_t> pending(n, 0);
        for (const Task &t : prog.tasks) {
            for (const Push &p : t.pushes) {
                if (!p.crossCycle)
                    ++pending[p.dst];
            }
        }
        std::vector<TaskId> frontier;
        for (TaskId t = 0; t < n; ++t) {
            if (pending[t] == 0)
                frontier.push_back(t);
        }
        size_t processed = 0;
        std::vector<uint64_t> cost_depth(n, 0);
        uint64_t crit = 1;
        while (!frontier.empty()) {
            TaskId u = frontier.back();
            frontier.pop_back();
            ++processed;
            cost_depth[u] += prog.tasks[u].cost;
            crit = std::max(crit, cost_depth[u]);
            for (const Push &p : prog.tasks[u].pushes) {
                if (p.crossCycle)
                    continue;
                Task &d = prog.tasks[p.dst];
                d.depth = std::max(d.depth, prog.tasks[u].depth + 1);
                cost_depth[p.dst] = std::max(cost_depth[p.dst],
                                             cost_depth[u]);
                if (--pending[p.dst] == 0)
                    frontier.push_back(p.dst);
            }
        }
        ASH_ASSERT(processed == n,
                   "task graph has a same-cycle cycle (%zu of %zu)",
                   processed, n);
        uint32_t max_depth = 0;
        uint64_t total_cost = 0;
        for (const Task &t : prog.tasks) {
            max_depth = std::max(max_depth, t.depth);
            total_cost += t.cost;
        }
        prog.cycleDepth = max_depth + 1;
        prog.stats.parallelism =
            static_cast<double>(total_cost) / static_cast<double>(crit);
    }

    // Statistics.
    prog.stats.dfgNodes = graph.numNodes();
    prog.stats.dfgEdges = graph.edges().size();
    prog.stats.tasks = prog.tasks.size();
    prog.stats.cycleDepth = prog.cycleDepth;
    for (const Task &t : prog.tasks) {
        if (t.kind != TaskKind::Normal)
            ++prog.stats.dttTasks;
        prog.stats.taskEdges += t.pushes.size();
        prog.stats.codeFootprintBytes += t.codeBytes;
    }
    prog.stats.compileSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t_start)
            .count();

    prog.validate();
    return prog;
}

} // namespace ash::core
