/**
 * @file
 * The ASH compiler backend (Fig 7): netlist -> dataflow graph ->
 * tile mapping -> coarsening -> prioritization -> argument allocation
 * -> TaskProgram. The frontend (Verilog -> netlist) lives in
 * src/verilog; this backend consumes any netlist, including ones built
 * directly with the rtl builder API.
 */

#ifndef ASH_CORE_COMPILER_COMPILER_H
#define ASH_CORE_COMPILER_COMPILER_H

#include "core/compiler/TaskGraph.h"
#include "dfg/Dfg.h"
#include "rtl/Netlist.h"

namespace ash::core {

/** Backend options. */
struct CompilerOptions
{
    uint32_t numTiles = 64;

    /** Use the unrolled dataflow graph (Sec 4.3.1). */
    bool unrolled = true;

    /**
     * Coarsening cap: maximum instructions per task. Smaller caps give
     * more, finer tasks (the Fig 3 sweep varies this).
     */
    uint32_t maxTaskCost = 48;

    /**
     * Use the partitioner to map nodes to tiles minimizing cut
     * (Sec 4.3.2). When false, tasks are scattered round-robin, which
     * models Verilator's locality-oblivious mapping (Fig 18).
     */
    bool useMapping = true;

    HwLimits limits;
    uint64_t seed = 1;
    double imbalance = 0.10;
};

/** Compile @p nl into a task program for @p opts.numTiles tiles. */
TaskProgram compile(const rtl::Netlist &nl, const CompilerOptions &opts);

} // namespace ash::core

#endif // ASH_CORE_COMPILER_COMPILER_H
