#include "core/compiler/Codegen.h"

#include <sstream>

#include "common/Logging.h"

namespace ash::core {

namespace {

std::string
valueName(const rtl::Netlist &nl, rtl::NodeId id)
{
    std::ostringstream os;
    const rtl::Node &n = nl.node(id);
    switch (n.op) {
      case rtl::Op::Input:
        os << "in_" << nl.inputName(id);
        break;
      case rtl::Op::Reg:
        os << "reg_" << nl.regs()[nl.regIndex(id)].name;
        break;
      default:
        os << "v" << id;
        break;
    }
    // Flatten hierarchical separators for identifier-ness.
    std::string s = os.str();
    for (char &c : s) {
        if (c == '.' || c == '[' || c == ']')
            c = '_';
    }
    return s;
}

const char *
opToken(rtl::Op op)
{
    switch (op) {
      case rtl::Op::And: return "&";
      case rtl::Op::Or: return "|";
      case rtl::Op::Xor: return "^";
      case rtl::Op::Add: return "+";
      case rtl::Op::Sub: return "-";
      case rtl::Op::Mul: return "*";
      case rtl::Op::Div: return "/";
      case rtl::Op::Mod: return "%";
      case rtl::Op::Shl: return "<<";
      case rtl::Op::LShr: return ">>";
      case rtl::Op::Eq: return "==";
      case rtl::Op::Ne: return "!=";
      case rtl::Op::Lt: return "<";
      case rtl::Op::Le: return "<=";
      case rtl::Op::Gt: return ">";
      case rtl::Op::Ge: return ">=";
      default: return "?";
    }
}

} // namespace

std::string
emitTaskCode(const TaskProgram &prog, TaskId task)
{
    const rtl::Netlist &nl = *prog.nl;
    const Task &t = prog.tasks[task];
    std::ostringstream os;

    os << "// tile " << t.tile << ", depth " << t.depth << ", ~"
       << t.cost << " instrs, " << t.numParents << " parents\n";
    os << "void task_" << task << "(uint16_t ts";
    for (rtl::NodeId in : t.directInputs)
        os << ", uint64_t " << valueName(nl, in);
    os << ") {\n";
    for (rtl::NodeId in : t.bufferedInputs) {
        os << "  uint64_t " << valueName(nl, in)
           << " = mem_args[" << in << "];  // staged by DTT\n";
    }

    if (t.kind == TaskKind::Buffer) {
        os << "  // data-transfer task: stage values for task_"
           << t.serves << "\n";
        for (rtl::NodeId v : t.carriedValues)
            os << "  mem_args[" << v << "] = " << valueName(nl, v)
               << ";\n";
    } else if (t.kind == TaskKind::Relay) {
        os << "  // fan-out relay\n";
    } else {
        for (rtl::NodeId raw : t.nodes) {
            rtl::NodeId id = raw & ~regWriteFlag;
            const rtl::Node &n = nl.node(id);
            if (raw & regWriteFlag) {
                os << "  reg_state["
                   << nl.regs()[nl.regIndex(id)].name << "] = "
                   << valueName(nl, nl.regs()[nl.regIndex(id)].next)
                   << ";\n";
                continue;
            }
            auto operand = [&](size_t i) {
                rtl::NodeId o = n.operands[i];
                if (nl.node(o).op == rtl::Op::Const) {
                    std::ostringstream c;
                    c << nl.node(o).imm << "ull";
                    return c.str();
                }
                return valueName(nl, o);
            };
            switch (n.op) {
              case rtl::Op::Input:
              case rtl::Op::Reg:
                break;   // Arrive as arguments.
              case rtl::Op::MemRead:
                os << "  uint64_t " << valueName(nl, id) << " = "
                   << nl.memories()[n.mem].name << "[" << operand(0)
                   << "];\n";
                break;
              case rtl::Op::MemWrite:
                os << "  if (" << operand(2) << ") "
                   << nl.memories()[n.mem].name << "[" << operand(0)
                   << "] = " << operand(1) << ";\n";
                break;
              case rtl::Op::Output:
                os << "  emit_output(\"" << nl.outputName(id)
                   << "\", " << operand(0) << ");\n";
                break;
              case rtl::Op::Mux:
                os << "  uint64_t " << valueName(nl, id) << " = "
                   << operand(0) << " ? " << operand(1) << " : "
                   << operand(2) << ";\n";
                break;
              case rtl::Op::Not:
                os << "  uint64_t " << valueName(nl, id) << " = ~"
                   << operand(0) << " & " << mask64(n.width)
                   << "ull;\n";
                break;
              case rtl::Op::Slice:
                os << "  uint64_t " << valueName(nl, id) << " = ("
                   << operand(0) << " >> " << n.imm << ") & "
                   << mask64(n.width) << "ull;\n";
                break;
              default:
                if (n.operands.size() == 2) {
                    os << "  uint64_t " << valueName(nl, id) << " = ("
                       << operand(0) << " " << opToken(n.op) << " "
                       << operand(1) << ") & " << mask64(n.width)
                       << "ull;\n";
                } else {
                    os << "  uint64_t " << valueName(nl, id)
                       << " = " << rtl::opName(n.op) << "(";
                    for (size_t i = 0; i < n.operands.size(); ++i)
                        os << (i ? ", " : "") << operand(i);
                    os << ") & " << mask64(n.width) << "ull;\n";
                }
                break;
            }
        }
    }

    for (const Push &p : t.pushes) {
        os << "  push_args<&task_" << p.dst << ", TILE_"
           << prog.tasks[p.dst].tile << ">(ts"
           << (p.crossCycle ? " + 1" : "");
        for (rtl::NodeId v : p.values)
            os << ", " << valueName(nl, v);
        if (p.kind == PushKind::Raw)
            os << ", /*RAW*/";
        if (p.kind == PushKind::War)
            os << ", /*WAR*/";
        os << ");\n";
    }
    os << "}\n";
    return os.str();
}

std::string
programSummary(const TaskProgram &prog)
{
    std::ostringstream os;
    os << "tasks: " << prog.tasks.size() << " (DTT/relay: "
       << prog.stats.dttTasks << ")\n"
       << "tiles: " << prog.numTiles << "\n"
       << "cycle depth D: " << prog.cycleDepth << "\n"
       << "descriptor edges: " << prog.stats.taskEdges << "\n"
       << "parallelism: " << prog.stats.parallelism << "\n"
       << "code footprint: " << prog.stats.codeFootprintBytes
       << " bytes\n";
    return os.str();
}

} // namespace ash::core
