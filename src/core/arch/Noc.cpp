#include "core/arch/Noc.h"

#include <algorithm>
#include <cmath>

#include "common/Logging.h"
#include "obs/Trace.h"

namespace ash::core {

NocModel::NocModel(uint32_t num_tiles, uint32_t flit_bytes)
    : _flitBytes(flit_bytes)
{
    _dimX = static_cast<uint32_t>(
        std::ceil(std::sqrt(static_cast<double>(num_tiles))));
    if (_dimX == 0)
        _dimX = 1;
    _dimY = (num_tiles + _dimX - 1) / _dimX;
    // Four directed links per tile position (E, W, N, S).
    _linkFree.assign(static_cast<size_t>(_dimX) * _dimY * 4, 0);
}

size_t
NocModel::linkIndex(uint32_t a, bool horizontal, bool positive) const
{
    size_t dir = (horizontal ? 0 : 2) + (positive ? 0 : 1);
    return static_cast<size_t>(a) * 4 + dir;
}

uint32_t
NocModel::baseLatency(uint32_t src, uint32_t dst) const
{
    if (src == dst)
        return 1;
    uint32_t dx = tileX(src) > tileX(dst) ? tileX(src) - tileX(dst)
                                          : tileX(dst) - tileX(src);
    uint32_t dy = tileY(src) > tileY(dst) ? tileY(src) - tileY(dst)
                                          : tileY(dst) - tileY(src);
    uint32_t lat = dx + dy;
    if (dx > 0 && dy > 0)
        lat += 1;   // Turn penalty: 2 cycles on the turning hop.
    return lat + 1; // Ejection.
}

uint64_t
NocModel::send(uint32_t src, uint32_t dst, uint32_t bytes, uint64_t now)
{
    ++_messages;
    uint32_t flits = std::max(1u, (bytes + _flitBytes - 1) / _flitBytes);
    if (src == dst) {
        _flitHops += flits;
        ASH_OBS_EVENT(obs::EventKind::NocSend, now, 1, src, 0, dst,
                      bytes);
        return now + 1;
    }

    uint64_t t = now;
    uint32_t x = tileX(src), y = tileY(src);
    uint32_t tx = tileX(dst), ty = tileY(dst);
    bool turned = false;
    auto hop = [&](uint32_t tile, bool horizontal, bool positive,
                   bool is_turn) {
        uint64_t &free_at = _linkFree[linkIndex(tile, horizontal,
                                                positive)];
        uint64_t start = std::max(t, free_at);
        uint64_t hop_lat = is_turn ? 2 : 1;
        t = start + hop_lat;
        // Wormhole serialization: the link is busy for the whole
        // packet duration.
        free_at = start + flits;
        _flitHops += flits;
    };
    while (x != tx) {
        bool positive = tx > x;
        hop(y * _dimX + x, true, positive, false);
        x = positive ? x + 1 : x - 1;
    }
    while (y != ty) {
        bool positive = ty > y;
        bool is_turn = !turned && (tileX(src) != tx);
        turned = true;
        hop(y * _dimX + x, false, positive, is_turn);
        y = positive ? y + 1 : y - 1;
    }
    uint64_t arrive = t + 1;   // Ejection into the destination tile.
    ASH_OBS_EVENT(obs::EventKind::NocSend, now,
                  static_cast<uint32_t>(arrive - now), src, 0, dst,
                  bytes);
    return arrive;
}

} // namespace ash::core
