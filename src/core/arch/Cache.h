/**
 * @file
 * Set-associative LRU cache model used for L1I, L1D, and L2 timing.
 * Tracks tags only; data values live in the functional engine. Accesses
 * are at cache-line granularity and return hit/miss so callers can
 * charge the appropriate latency and propagate misses down a level.
 */

#ifndef ASH_CORE_ARCH_CACHE_H
#define ASH_CORE_ARCH_CACHE_H

#include <cstdint>
#include <vector>

#include "common/BitUtils.h"
#include "common/Logging.h"

namespace ash::core {

/** Tag-only set-associative cache with LRU replacement. */
class CacheModel
{
  public:
    /**
     * @param size_bytes Total capacity.
     * @param ways       Associativity.
     * @param line_bytes Line size.
     */
    CacheModel(uint64_t size_bytes, unsigned ways, unsigned line_bytes)
        : _ways(ways), _lineBytes(line_bytes)
    {
        uint64_t lines = std::max<uint64_t>(ways, size_bytes /
                                                      line_bytes);
        _sets = std::max<uint64_t>(1, roundUpPow2(lines / ways) / 1);
        if (_sets * ways > lines && _sets > 1)
            _sets /= 2;
        _tags.assign(_sets * _ways, ~0ull);
        _lru.assign(_sets * _ways, 0);
    }

    /**
     * Access the line containing @p addr; returns true on hit. On a
     * miss, the line is installed (evicting LRU).
     */
    bool
    access(uint64_t addr)
    {
        uint64_t line = addr / _lineBytes;
        uint64_t set = line & (_sets - 1);
        uint64_t *tags = &_tags[set * _ways];
        uint32_t *lru = &_lru[set * _ways];
        ++_stamp;
        for (unsigned w = 0; w < _ways; ++w) {
            if (tags[w] == line) {
                lru[w] = _stamp;
                ++_hits;
                return true;
            }
        }
        // Miss: replace LRU way.
        unsigned victim = 0;
        for (unsigned w = 1; w < _ways; ++w) {
            if (lru[w] < lru[victim])
                victim = w;
        }
        if (tags[victim] != ~0ull)
            ++_evictions;   // A valid line was displaced (capacity
                            // or conflict), not a cold fill.
        tags[victim] = line;
        lru[victim] = _stamp;
        ++_misses;
        return false;
    }

    uint64_t hits() const { return _hits; }
    uint64_t misses() const { return _misses; }
    uint64_t evictions() const { return _evictions; }
    uint64_t accesses() const { return _hits + _misses; }
    double missRate() const
    {
        uint64_t n = accesses();
        return n ? static_cast<double>(_misses) /
                       static_cast<double>(n) : 0.0;
    }
    unsigned lineBytes() const { return _lineBytes; }

    /** Record hit/miss/eviction counters into @p scope. */
    template <typename Scope>
    void
    reportStats(Scope scope) const
    {
        scope.set("hits", _hits);
        scope.set("misses", _misses);
        scope.set("evictions", _evictions);
    }

    /**
     * Serialize mutable state (tags, LRU stamps, counters) into a
     * ckpt::SnapshotWriter section. Geometry (_ways/_sets) is
     * re-derived from the constructor config, so a restore into a
     * same-config cache is exact; a geometry mismatch is rejected.
     */
    template <typename Writer>
    void
    saveState(Writer &w) const
    {
        w.u64(_sets);
        w.u32(_ways);
        w.vec(_tags);
        w.vec(_lru);
        w.u32(_stamp);
        w.u64(_hits);
        w.u64(_misses);
        w.u64(_evictions);
    }

    template <typename Reader, typename Error>
    void
    restoreState(Reader &r)
    {
        if (r.u64() != _sets || r.u32() != _ways)
            throw Error("cache geometry mismatch");
        r.vec(_tags);
        r.vec(_lru);
        _stamp = r.u32();
        _hits = r.u64();
        _misses = r.u64();
        _evictions = r.u64();
        if (_tags.size() != _sets * _ways ||
            _lru.size() != _sets * _ways)
            throw Error("cache tag array size mismatch");
    }

  private:
    unsigned _ways;
    unsigned _lineBytes;
    uint64_t _sets;
    std::vector<uint64_t> _tags;
    std::vector<uint32_t> _lru;
    uint32_t _stamp = 0;
    uint64_t _hits = 0;
    uint64_t _misses = 0;
    uint64_t _evictions = 0;
};

} // namespace ash::core

#endif // ASH_CORE_ARCH_CACHE_H
