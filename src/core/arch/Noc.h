/**
 * @file
 * Mesh network-on-chip timing model (Table 3): X-Y dimension-order
 * routing, one cycle per straight hop, two on turns, with per-link
 * serialization modeled through link next-free times. Used for
 * descriptor traffic between tiles and for memory traffic to the edge
 * DRAM controllers.
 */

#ifndef ASH_CORE_ARCH_NOC_H
#define ASH_CORE_ARCH_NOC_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ash::core {

/** 2D mesh connecting tiles; link contention via next-free times. */
class NocModel
{
  public:
    /**
     * @param num_tiles   Tiles in the mesh (rounded up to a rectangle).
     * @param flit_bytes  Payload bytes per flit.
     */
    NocModel(uint32_t num_tiles, uint32_t flit_bytes = 8);

    /**
     * Send @p bytes from @p src tile to @p dst tile at time @p now.
     * Returns the arrival time; updates link occupancy and counters.
     */
    uint64_t send(uint32_t src, uint32_t dst, uint32_t bytes,
                  uint64_t now);

    /** Zero-load latency between two tiles (for memory modeling). */
    uint32_t baseLatency(uint32_t src, uint32_t dst) const;

    uint64_t flitHops() const { return _flitHops; }
    uint64_t messages() const { return _messages; }
    uint32_t dimX() const { return _dimX; }

    /** Serialize mutable state; mesh dims re-derive from config. */
    template <typename Writer>
    void
    saveState(Writer &w) const
    {
        w.vec(_linkFree);
        w.u64(_flitHops);
        w.u64(_messages);
    }

    template <typename Reader, typename Error>
    void
    restoreState(Reader &r)
    {
        std::vector<uint64_t> links;
        r.vec(links);
        if (links.size() != _linkFree.size())
            throw Error("NoC link array size mismatch");
        _linkFree = std::move(links);
        _flitHops = r.u64();
        _messages = r.u64();
    }

  private:
    uint32_t tileX(uint32_t t) const { return t % _dimX; }
    uint32_t tileY(uint32_t t) const { return t / _dimX; }
    /** Link array index for a hop from tile a toward tile b. */
    size_t linkIndex(uint32_t a, bool horizontal, bool positive) const;

    uint32_t _dimX;
    uint32_t _dimY;
    uint32_t _flitBytes;
    std::vector<uint64_t> _linkFree;
    uint64_t _flitHops = 0;
    uint64_t _messages = 0;
};

} // namespace ash::core

#endif // ASH_CORE_ARCH_NOC_H
