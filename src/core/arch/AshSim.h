/**
 * @file
 * The ASH chip model: a functional + timing co-simulator of DASH
 * (prioritized hardware task dataflow, Sec 4) and SASH (selective,
 * speculative execution, Sec 5), with tiles, simple cores, L1/L2
 * caches, a mesh NoC, DRAM controllers, the Task Management Unit
 * (Argument Queue with spilling, merge window, ready-task buffer,
 * Argument Send Buffer), the Task Commit Queue, Virtual-Time bulk
 * commit, and task-driven instruction prefetching (Sec 6).
 *
 * The engine executes the compiled TaskProgram *functionally* (tasks
 * compute real values, speculation really rolls back through undo
 * logs), so its committed outputs can be compared bit-for-bit against
 * the reference simulator — that equivalence is the backbone of the
 * test suite.
 *
 * Documented deviation from the paper (DESIGN.md): SASH's WAR-token
 * race on in-memory arguments is closed with version tags checked at
 * read time (aborting the too-early writer), a conservative
 * strengthening of the paper's conflict detection that only adds
 * aborts.
 */

#ifndef ASH_CORE_ARCH_ASHSIM_H
#define ASH_CORE_ARCH_ASHSIM_H

#include <memory>

#include "ckpt/Checkpoint.h"
#include "common/Stats.h"
#include "core/compiler/TaskGraph.h"
#include "refsim/ReferenceSimulator.h"
#include "refsim/Stimulus.h"

namespace ash::core {

/** Chip configuration (defaults follow Table 3). */
struct ArchConfig
{
    uint32_t numTiles = 64;
    uint32_t coresPerTile = 4;
    double ghz = 2.5;

    // Memory hierarchy.
    uint32_t l1iBytes = 16 * 1024;
    uint32_t l1dBytes = 16 * 1024;
    uint32_t l1Ways = 8;
    uint32_t l1Latency = 2;
    uint32_t l2Bytes = 1024 * 1024;
    uint32_t l2Ways = 16;
    uint32_t l2Latency = 9;
    uint32_t lineBytes = 64;
    uint32_t dramLatency = 120;
    uint32_t dramCtrls = 4;
    double dramBytesPerCycle = 16.0;   ///< Per controller.

    // TMU structures.
    uint32_t aqEntries = 512;
    uint32_t mergeEntries = 16;
    uint32_t tcqEntries = 512;
    uint32_t vtIntervalCycles = 10;   ///< Virtual-Time + gate-refresh
                                       ///< cadence (see DESIGN.md).
    uint32_t spillPenalty = 30;        ///< Refill latency per bundle.
    uint32_t mergeGraceCycles = 10;     ///< SASH partial-dispatch grace.
    /**
     * SASH: an instance missing arguments may dispatch speculatively
     * only when its cycle is within this many simulated cycles of the
     * global virtual time (missing-argument speculation is then
     * "producer was skipped", which is usually right; farther ahead
     * it is usually "producer is late", which always aborts).
     */
    uint32_t incompleteLookahead = 2;
    /**
     * SASH: how long an instance waits for a deliver-predicted but
     * still-missing argument before optimistically dispatching with
     * the stale value.
     */
    uint32_t deliverWaitCycles = 60;

    // Execution model.
    double baseCpi = 1.4;              ///< Scalar in-order, folded
                                       ///< front-end effects.
    uint32_t dispatchOverhead = 3;     ///< Cycles per task start.
    uint32_t pushCost = 2;             ///< Instructions per push_args.

    // Feature switches (the paper's design points).
    bool selective = false;        ///< SASH when true, DASH when false.
    bool prioritized = true;       ///< Timestamp order vs unordered.
    bool prefetch = true;          ///< Task-driven i-prefetch (Sec 6).
    bool hwDataflow = true;        ///< False: Swarm/Chronos software
                                   ///< dataflow overheads (Sec 10.1).
    bool sharedLlc = false;        ///< Swarm-style shared LLC.

    /** Simulated-cycle run-ahead window for stimulus injection. */
    uint32_t stimulusWindow = 8;

    /**
     * SASH: maximum simulated cycles an instance may run ahead of the
     * global virtual time before dispatch is held back. Bounds
     * speculative run-away of cheap self-activating chains (real
     * hardware is bounded the same way by TCQ/AQ capacity).
     */
    uint32_t speculationWindow = 12;
};

/** Result of one run. */
struct RunResult
{
    StatSet stats;
    refsim::OutputTrace outputs;
    uint64_t chipCycles = 0;
    uint64_t designCycles = 0;

    /** Simulation speed in simulated KHz (paper Table 5 metric). */
    double
    speedKHz(double ghz = 2.5) const
    {
        if (chipCycles == 0)
            return 0.0;
        return static_cast<double>(designCycles) * ghz * 1e6 /
               static_cast<double>(chipCycles);
    }
};

/** Execute a TaskProgram on the modeled ASH chip. */
class AshSimulator : public ckpt::Snapshotter
{
  public:
    AshSimulator(const TaskProgram &prog, const ArchConfig &cfg);
    ~AshSimulator();

    /**
     * Run @p design_cycles simulated cycles fed by @p stimulus.
     * After a restore() the run resumes mid-flight: @p design_cycles
     * must equal the original run's, and @p stimulus must produce
     * the same frames. @p hook, when set, fires each time the global
     * virtual time advances to a new committed design cycle — the
     * engine's quiescent point between events.
     */
    RunResult run(refsim::Stimulus &stimulus, uint64_t design_cycles,
                  ckpt::CycleHook *hook = nullptr);

    /**
     * Output frame as committed at design cycle @p cycle (1-based:
     * the values visible after that cycle's commit), assembled from
     * the committed-output log with skipped cycles carried forward.
     * Valid mid-run from a CycleHook for any cycle at or below the
     * hook's committed cycle; used by guard::DivergenceGuard to
     * cross-check against the reference simulator.
     */
    refsim::OutputFrame committedFrame(uint64_t cycle) const;

    /// @name ckpt::Snapshotter
    /// @{
    void save(std::ostream &out) const override;
    void restore(std::istream &in) override;
    const char *engineName() const override { return "ash"; }
    /// @}

  private:
    struct Impl;
    std::unique_ptr<Impl> _impl;
};

} // namespace ash::core

#endif // ASH_CORE_ARCH_ASHSIM_H
