#include "core/arch/AshSim.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "common/EventHeap.h"
#include "common/Logging.h"
#include "common/SortedPool.h"
#include "core/arch/Cache.h"
#include "guard/Cancel.h"
#include "prof/Prof.h"
#include "core/arch/Noc.h"
#include "obs/Trace.h"
#include "rtl/Eval.h"

namespace ash::core {

using refsim::Stimulus;
using rtl::NodeId;
using rtl::Op;

namespace {

/** Instance key: one execution of a task at one simulated cycle. */
using InstKey = std::pair<TaskId, uint64_t>;

/** An argument descriptor traveling between task instances. */
struct Desc
{
    TaskId dst = invalidTask;
    uint64_t inst = 0;
    TaskId src = invalidTask;      ///< Producing task (stimulus: invalid).
    PushKind kind = PushKind::Value;
    bool stimulus = false;
    std::vector<std::pair<NodeId, uint64_t>> values;
    uint32_t bytes = 16;
    uint64_t ts = 0;

    enum class St : uint8_t { InFlight, Queued, Consumed, Cancelled };
    St state = St::InFlight;
};
using DescPtr = std::shared_ptr<Desc>;

/** Queued descriptors of one not-yet-dispatched instance. */
struct Bundle
{
    std::vector<DescPtr> descs;
    uint64_t firstArrival = ~0ull;
    uint64_t lastArrival = 0;
    /**
     * Running sum of the queued descriptors' bytes, maintained by
     * enqueue/unqueue so the per-round footprint sampling does not
     * walk every descriptor of every bundle.
     */
    uint32_t byteSum = 0;
    bool spilled = false;

    uint32_t
    bytes() const
    {
        return byteSum;
    }
};

/** AQ priority key: (priority, task, instance). */
using AqKey = std::tuple<uint64_t, TaskId, uint64_t>;

/**
 * One undo-log record (eager versioning, Sec 5.2). Plain data: the
 * variable-length Filter payload lives in the owning TcqEntry's
 * undoPayload buffer (recycled with the entry) at [payloadOff,
 * payloadOff + payloadLen), so logging an undo never allocates.
 */
struct UndoRec
{
    enum class Kind : uint8_t {
        Mem,       ///< Design memory word.
        RegState,  ///< Single-cycle register state.
        BufMem,    ///< Buffer-task staging memory.
        Filter,    ///< Output-argument filter buffer.
        LastVals,  ///< Input-argument buffer.
    };
    Kind kind;
    bool existed = true;
    uint32_t a = 0;          ///< mem / reg idx / buffer task / task.
    uint64_t b = 0;          ///< addr / state slot / push index.
    uint64_t oldVal = 0;
    uint64_t oldTag = 0;
    TaskId oldWriter = invalidTask;
    uint32_t payloadOff = 0;
    uint32_t payloadLen = 0;
};

/** Versioned value: tag = writer instance + 1 (0 = initial state). */
struct Versioned
{
    uint64_t val = 0;
    uint64_t tag = 0;
    TaskId writer = invalidTask;
};

/** A speculative (or, in DASH, merely in-flight) task execution. */
struct TcqEntry
{
    TaskId task = invalidTask;
    uint64_t inst = 0;
    uint64_t ts = 0;
    uint64_t epoch = 0;
    bool completed = false;
    uint64_t duration = 0;
    uint64_t dispatchedAt = 0;   ///< Chip cycle of dispatch.
    uint32_t core = 0;           ///< Core it ran on (observability).
    std::vector<DescPtr> consumed;
    std::vector<DescPtr> sent;
    std::vector<UndoRec> undo;
    std::vector<uint64_t> undoPayload;   ///< Filter undo values.
    std::vector<std::pair<uint32_t, uint64_t>> outputs; ///< (idx, val).
};

/** Pending event. */
struct Event
{
    enum class Type : uint8_t { DescArrive, CoreFree, VtRound, Retry };
    uint64_t time = 0;
    Type type = Type::VtRound;
    uint32_t tile = 0;
    uint32_t core = 0;
    DescPtr desc;
    TaskId task = invalidTask;
    uint64_t inst = 0;
    uint64_t epoch = 0;

    bool
    operator>(const Event &o) const
    {
        return time > o.time;
    }
};

} // namespace

struct AshSimulator::Impl
{
    const TaskProgram &prog;
    ArchConfig cfg;
    const rtl::Netlist &nl;

    // --- static program info ---
    std::vector<std::vector<std::pair<NodeId, uint32_t>>> taskInputs;
    std::vector<TaskId> activatedTasks;   ///< Stimulus-driven tasks.
    std::vector<uint32_t> outputIndexOf;  ///< Output node -> index.
    std::vector<uint64_t> codeBase;       ///< Per-task code address.
    std::vector<uint64_t> memBase;        ///< Per design memory.
    std::vector<int64_t> regConstNext;    ///< -1 or constant value.
    std::vector<uint32_t> inputIdxOf;     ///< Node -> input idx, ~0u.

    // --- timing state ---
    EventHeap<Event> events;
    uint64_t now = 0;
    NocModel noc;
    std::vector<std::vector<uint64_t>> coreFreeAt;   // [tile][core]
    std::vector<std::unique_ptr<CacheModel>> l1i;    // per core
    std::vector<std::unique_ptr<CacheModel>> l1d;    // per core
    std::vector<std::unique_ptr<CacheModel>> l2;     // per tile
    std::vector<uint64_t> dramFree;
    uint64_t epochCounter = 0;
    uint64_t busyCommitted = 0, busyAborted = 0, busyUnresolved = 0;

    // --- TMU state ---
    using AqIter = SortedPool<AqKey, Bundle>::iterator;
    using TcqIter = SortedPool<InstKey, TcqEntry>::iterator;
    std::vector<SortedPool<AqKey, Bundle>> aq;       // per tile
    std::vector<SortedPool<InstKey, TcqEntry>> tcq;  // per tile
    std::multiset<uint64_t> inFlight;
    uint64_t aqSeq = 0;

    // --- functional state ---
    std::vector<std::vector<Versioned>> memData;
    std::vector<Versioned> regState;
    /** Buffer-task staging memory, [task][carriedValues slot]. */
    std::vector<std::vector<Versioned>> bufMem;
    std::vector<std::vector<uint8_t>> bufMemValid;
    std::vector<std::vector<std::vector<uint64_t>>> filters; // task,push
    std::vector<std::vector<uint8_t>> filterValid;
    /** Last-value argument buffers, [task][directInputs slot]. */
    std::vector<std::vector<uint64_t>> lastVals;
    std::vector<std::vector<uint8_t>> lastValsValid;
    std::map<std::pair<uint64_t, uint32_t>, uint64_t> finalOutputs;

    // --- dispatch scratch (one dispatch at a time; recycled) ---
    /**
     * Node-indexed value arrays for the instance currently executing,
     * validated by stamp == the instance's dispatch epoch. Replaces
     * the per-dispatch local/recv hash maps.
     */
    std::vector<uint64_t> localVal, localStamp;
    std::vector<uint64_t> recvVal, recvStamp;
    std::vector<NodeId> recvNodes;      ///< Recv set, arrival order.
    std::vector<uint64_t> bufVals;      ///< Buffer-task staging temp.
    Bundle dispatchBundle;              ///< Swapped out of the AQ.
    TcqEntry dispatchEntry;             ///< Swapped into the TCQ.

    // --- stimulus ---
    Stimulus *stim = nullptr;
    std::vector<std::vector<uint64_t>> frames;
    uint64_t designCycles = 0;
    uint64_t injectedUpTo = 0;
    bool done = false;

    StatSet stats;
    uint64_t lastSample = 0;

    // Per-tile rollup counters, folded into hierarchical scoped
    // stats ("tile3.commits") once at end of run so the hot paths
    // stay string-free.
    std::vector<uint64_t> tileDispatches, tileCommits, tileAborts;

    /**
     * Hot-path statistics, accumulated in plain members and folded
     * into `stats` once at end of run. The string-keyed StatSet maps
     * cost a lookup (and often a heap string) per call; at tens of
     * millions of events per run that was several percent of wall
     * time. Folding preserves the exact key set the per-event calls
     * would have created: a key is emitted iff its call site was
     * reached, which the guards in foldHotStats() reconstruct.
     */
    struct HotStats
    {
        uint64_t tasksExecuted = 0, tasksCommitted = 0;
        uint64_t instrs = 0;
        uint64_t descsConsumed = 0, descsFiltered = 0;
        uint64_t descsSent = 0, descBytes = 0, descsArrived = 0;
        uint64_t warDiscarded = 0, stimulusDescs = 0;
        uint64_t l1dAccesses = 0, l1iAccesses = 0, l1iMisses = 0;
        uint64_t l2Accesses = 0, l2iMisses = 0;
        uint64_t dramAccesses = 0, dramBytes = 0;
        uint64_t aqSpills = 0;
        uint64_t tcqFullStalls = 0, mergeEvictions = 0;
        uint64_t commitRounds = 0;
        uint64_t cancelMessages = 0, aborts = 0;
        Histogram taskLength, bundleDescs, abortDistance;
        Histogram aqDepth, tcqDepth;
        Accumulator aqOccupancy, tcqOccupancy, footprintBytes;
    } hot;

    /**
     * Per-tile count of bundles whose descriptor count has reached
     * the destination task's parent count. Lets the DASH scheduler
     * skip its AQ scan entirely when nothing is dispatchable — by far
     * the common case, since every arrival and VT round re-polls.
     */
    std::vector<uint32_t> aqComplete;

    Impl(const TaskProgram &p, const ArchConfig &c)
        : prog(p), cfg(c), nl(*p.nl), noc(c.numTiles)
    {
        ASH_ASSERT(prog.numTiles == cfg.numTiles,
                   "program compiled for %u tiles, chip has %u",
                   prog.numTiles, cfg.numTiles);
        ASH_ASSERT(cfg.prioritized || !cfg.selective,
                   "unordered dataflow is modeled for DASH only");

        size_t nt = prog.tasks.size();
        taskInputs.resize(nt);
        filters.resize(nt);
        filterValid.resize(nt);
        lastVals.resize(nt);
        lastValsValid.resize(nt);
        bufMem.resize(nt);
        bufMemValid.resize(nt);
        codeBase.resize(nt);

        localVal.assign(nl.numNodes(), 0);
        localStamp.assign(nl.numNodes(), 0);
        recvVal.assign(nl.numNodes(), 0);
        recvStamp.assign(nl.numNodes(), 0);

        // Map input nodes to stimulus indices.
        inputIdxOf.assign(nl.numNodes(), ~0u);
        for (size_t i = 0; i < nl.inputs().size(); ++i)
            inputIdxOf[nl.inputs()[i]] = static_cast<uint32_t>(i);
        const auto &input_idx = inputIdxOf;
        outputIndexOf.assign(nl.numNodes(), ~0u);
        for (size_t i = 0; i < nl.outputs().size(); ++i)
            outputIndexOf[nl.outputs()[i]] = static_cast<uint32_t>(i);

        uint64_t code_addr = 0x40000000ull;
        for (const Task &t : prog.tasks) {
            codeBase[t.id] = code_addr;
            code_addr += (t.codeBytes + 63) & ~63ull;
            filters[t.id].resize(t.pushes.size());
            filterValid[t.id].assign(t.pushes.size(), 0);
            bufMem[t.id].resize(t.carriedValues.size());
            bufMemValid[t.id].assign(t.carriedValues.size(), 0);
            lastVals[t.id].assign(t.directInputs.size(), 0);
            lastValsValid[t.id].assign(t.directInputs.size(), 0);
            for (NodeId raw : t.nodes) {
                NodeId id = raw & ~regWriteFlag;
                if (!(raw & regWriteFlag) &&
                    nl.node(id).op == Op::Input) {
                    taskInputs[t.id].emplace_back(id,
                                                  input_idx.at(id));
                }
            }
            if (t.stimulusParents > 0)
                activatedTasks.push_back(t.id);
        }

        parentsOf.resize(nt);
        for (const Task &t : prog.tasks) {
            for (const Push &p : t.pushes) {
                if (p.kind == PushKind::War)
                    continue;   // Discarded on arrival in SASH.
                parentsOf[p.dst].emplace_back(t.id, p.crossCycle);
            }
        }
        parentPred.resize(nt);
        for (size_t i = 0; i < nt; ++i)
            parentPred[i].assign(parentsOf[i].size(), 3);

        regConstNext.assign(nl.regs().size(), -1);
        for (size_t r = 0; r < nl.regs().size(); ++r) {
            const rtl::Node &next = nl.node(nl.regs()[r].next);
            if (next.op == Op::Const) {
                regConstNext[r] = static_cast<int64_t>(next.imm);
            } else if (nl.regs()[r].next == nl.regs()[r].node) {
                // A register feeding itself holds its initial value
                // forever; the dataflow graph drops the self-loop, so
                // the engine supplies the constant directly.
                regConstNext[r] =
                    static_cast<int64_t>(nl.regs()[r].init);
            }
        }

        // Functional state.
        memBase.resize(nl.memories().size());
        uint64_t mem_addr = 0x80000000ull;
        for (size_t m = 0; m < nl.memories().size(); ++m) {
            const rtl::MemInfo &mi = nl.memories()[m];
            memBase[m] = mem_addr;
            mem_addr += (static_cast<uint64_t>(mi.depth) * 8 + 63) &
                        ~63ull;
            std::vector<Versioned> contents(mi.depth);
            for (size_t i = 0; i < mi.init.size(); ++i)
                contents[i].val = mi.init[i];
            memData.push_back(std::move(contents));
        }
        regState.resize(nl.regs().size());
        for (size_t r = 0; r < nl.regs().size(); ++r)
            regState[r].val = nl.regs()[r].init;

        // Hardware structures.
        tileDispatches.assign(cfg.numTiles, 0);
        tileCommits.assign(cfg.numTiles, 0);
        tileAborts.assign(cfg.numTiles, 0);
        coreFreeAt.assign(cfg.numTiles,
                          std::vector<uint64_t>(cfg.coresPerTile, 0));
        aq.resize(cfg.numTiles);
        aqComplete.assign(cfg.numTiles, 0);
        tileMinTs.assign(cfg.numTiles, ~0ull);
        for (uint32_t t = 0; t < cfg.numTiles; ++t)
            tileMins.insert(~0ull);
        tcq.resize(cfg.numTiles);
        dramFree.assign(cfg.dramCtrls, 0);
        for (uint32_t t = 0; t < cfg.numTiles; ++t) {
            l2.push_back(std::make_unique<CacheModel>(
                cfg.l2Bytes, cfg.l2Ways, cfg.lineBytes));
            for (uint32_t c = 0; c < cfg.coresPerTile; ++c) {
                l1i.push_back(std::make_unique<CacheModel>(
                    cfg.l1iBytes, cfg.l1Ways, cfg.lineBytes));
                l1d.push_back(std::make_unique<CacheModel>(
                    cfg.l1dBytes, cfg.l1Ways, cfg.lineBytes));
            }
        }
    }

    // =====================================================================
    // Helpers
    // =====================================================================

    uint64_t
    ts(TaskId t, uint64_t inst) const
    {
        return prog.timestamp(t, inst);
    }

    const std::vector<uint64_t> &
    frame(uint64_t cycle)
    {
        while (frames.size() <= cycle) {
            std::vector<uint64_t> f(nl.inputs().size(), 0);
            stim->apply(frames.size(), f);
            for (size_t i = 0; i < f.size(); ++i)
                f[i] = truncate(f[i], nl.node(nl.inputs()[i]).width);
            frames.push_back(std::move(f));
        }
        return frames[cycle];
    }

    /** Dense argument slot of @p id in task @p t, or ~0u if none. */
    uint32_t
    argSlot(TaskId t, NodeId id) const
    {
        const auto &m = prog.tasks[t].argSlotOf;
        auto it = std::lower_bound(
            m.begin(), m.end(), id,
            [](const std::pair<NodeId, uint32_t> &e, NodeId n) {
                return e.first < n;
            });
        if (it != m.end() && it->first == id)
            return it->second;
        return ~0u;
    }

    /** Buffered-input staging slot of @p id, or nullptr if none. */
    const BufSlotRef *
    bufRef(TaskId t, NodeId id) const
    {
        const auto &m = prog.tasks[t].bufSlotOf;
        auto it = std::lower_bound(m.begin(), m.end(), id,
                                   [](const BufSlotRef &e, NodeId n) {
                                       return e.node < n;
                                   });
        if (it != m.end() && it->node == id)
            return &*it;
        return nullptr;
    }

    void
    pushEvent(Event ev)
    {
        uint64_t time = ev.time;
        events.push(time, std::move(ev));
    }

    CacheModel &coreL1i(uint32_t tile, uint32_t core)
    { return *l1i[tile * cfg.coresPerTile + core]; }
    CacheModel &coreL1d(uint32_t tile, uint32_t core)
    { return *l1d[tile * cfg.coresPerTile + core]; }

    /** DRAM access latency with controller bandwidth queueing. */
    uint64_t
    dramAccess(uint32_t tile, uint64_t at, uint32_t bytes)
    {
        uint32_t ctrl = tile % cfg.dramCtrls;
        uint64_t queue = dramFree[ctrl] > at ? dramFree[ctrl] - at : 0;
        dramFree[ctrl] = std::max(dramFree[ctrl], at) +
                         static_cast<uint64_t>(
                             bytes / cfg.dramBytesPerCycle) + 1;
        ++hot.dramAccesses;
        hot.dramBytes += bytes;
        ASH_OBS_EVENT(obs::EventKind::DramAccess, at, 0, tile, 0,
                      ctrl, bytes);
        return cfg.dramLatency + queue + 8;   // 8: mesh to edge.
    }

    /** Data access through L1D/L2/DRAM; returns stall cycles. */
    uint64_t
    dataAccess(uint32_t tile, uint32_t core, uint64_t addr, uint64_t at)
    {
        ++hot.l1dAccesses;
        if (coreL1d(tile, core).access(addr))
            return cfg.l1Latency;
        ASH_OBS_EVENT(obs::EventKind::L1dMiss, at, 0, tile,
                      static_cast<uint16_t>(core), addr, 0);
        uint64_t lat = cfg.l1Latency;
        uint32_t home = cfg.sharedLlc
                            ? static_cast<uint32_t>(
                                  (addr / cfg.lineBytes) % cfg.numTiles)
                            : tile;
        if (cfg.sharedLlc && home != tile)
            lat += 2 * noc.baseLatency(tile, home);
        ++hot.l2Accesses;
        if (l2[home]->access(addr))
            return lat + cfg.l2Latency;
        ASH_OBS_EVENT(obs::EventKind::L2Miss, at, 0, home, 0, addr,
                      0);
        return lat + cfg.l2Latency + dramAccess(tile, at,
                                                cfg.lineBytes);
    }

    /** Instruction fetch for a task's code; returns stall cycles. */
    uint64_t
    fetchCode(uint32_t tile, uint32_t core, const Task &t, uint64_t at)
    {
        uint64_t stall = 0;
        uint32_t lines = (t.codeBytes + cfg.lineBytes - 1) /
                         cfg.lineBytes;
        for (uint32_t i = 0; i < lines; ++i) {
            uint64_t addr = codeBase[t.id] + i * cfg.lineBytes;
            ++hot.l1iAccesses;
            if (coreL1i(tile, core).access(addr))
                continue;
            ++hot.l1iMisses;
            ASH_OBS_EVENT(obs::EventKind::L1iMiss, at, 0, tile,
                          static_cast<uint16_t>(core), addr, t.id);
            uint64_t miss = cfg.l2Latency;
            ++hot.l2Accesses;
            if (!l2[tile]->access(addr)) {
                ++hot.l2iMisses;
                ASH_OBS_EVENT(obs::EventKind::L2Miss, at, 0, tile, 0,
                              addr, t.id);
                miss += dramAccess(tile, at, cfg.lineBytes);
            }
            stall += miss;
        }
        // Task-driven prefetching (Sec 6) hides nearly all of the
        // fetch latency behind the previous task's execution.
        if (cfg.prefetch) {
            if (stall > 0)
                ASH_OBS_EVENT(obs::EventKind::Prefetch, at, 0, tile,
                              static_cast<uint16_t>(core), t.id,
                              stall - stall / 16);
            return stall / 16;
        }
        return stall;
    }

    // =====================================================================
    // Versioned state with read-time conflict checks
    // =====================================================================

    /**
     * Read a versioned cell as instance @p inst with write-visibility
     * horizon @p max_tag. Writers with tags beyond the horizon were
     * dispatched too early; abort them so the restored value is
     * consistent (see file header).
     */
    template <typename Reload>
    uint64_t
    readVersioned(Versioned *cell, Reload reload, uint64_t max_tag)
    {
        unsigned guard = 0;
        while (cell && cell->tag > max_tag) {
            TaskId writer = cell->writer;
            uint64_t winst = cell->tag - 1;
            ASH_ASSERT(++guard < 10000,
                       "version abort loop: writer T%u inst %llu tag "
                       "%llu max %llu in-tcq %d", writer,
                       static_cast<unsigned long long>(winst),
                       static_cast<unsigned long long>(cell->tag),
                       static_cast<unsigned long long>(max_tag),
                       static_cast<int>(
                           tcq[prog.tasks[writer].tile].count(
                               {writer, winst})));
            abortInstance(prog.tasks[writer].tile, {writer, winst},
                          "read-version");
            cell = reload();
        }
        return cell ? cell->val : 0;
    }

    // =====================================================================
    // AQ management
    // =====================================================================

    AqKey
    aqKey(TaskId t, uint64_t inst, uint64_t prio) const
    {
        return {prio, t, inst};
    }

    /** Find a bundle by instance (priority is recomputable). */
    AqIter
    findBundle(uint32_t tile, TaskId t, uint64_t inst)
    {
        if (cfg.prioritized)
            return aq[tile].find(aqKey(t, inst, ts(t, inst)));
        // Unordered mode: linear scan (DASH-only analysis runs).
        for (auto it = aq[tile].begin(); it != aq[tile].end(); ++it) {
            if (std::get<1>(it->first) == t &&
                std::get<2>(it->first) == inst)
                return it;
        }
        return aq[tile].end();
    }

    /** Enqueue a descriptor at its destination tile. */
    void
    enqueue(uint32_t tile, const DescPtr &d)
    {
        auto it = findBundle(tile, d->dst, d->inst);
        if (it == aq[tile].end()) {
            uint64_t prio = cfg.prioritized ? d->ts : ++aqSeq;
            it = aq[tile].emplace(aqKey(d->dst, d->inst, prio)).first;
            // The pooled bundle slot is recycled: reset live fields.
            it->second.descs.clear();
            it->second.firstArrival = ~0ull;
            it->second.lastArrival = 0;
            it->second.byteSum = 0;
            it->second.spilled = false;
            if (aq[tile].size() > cfg.aqEntries) {
                // Spill the highest-priority-key bundle (Sec 4.2).
                auto worst = aq[tile].end();
                --worst;
                if (!worst->second.spilled) {
                    worst->second.spilled = true;
                    ++hot.aqSpills;
                    hot.dramBytes += worst->second.bytes();
                    ASH_OBS_EVENT(obs::EventKind::AqSpill, now, 0,
                                  tile, 0,
                                  std::get<1>(worst->first),
                                  std::get<2>(worst->first));
                }
            }
        }
        if (trace)
            std::fprintf(stderr, "[%llu] enqueue T%u/%llu kind=%d "
                         "src=T%u n=%zu\n",
                         (unsigned long long)now, d->dst,
                         (unsigned long long)d->inst,
                         static_cast<int>(d->kind), d->src,
                         it->second.descs.size() + 1);
        d->state = Desc::St::Queued;
        it->second.descs.push_back(d);
        it->second.byteSum += d->bytes;
        {
            // Completeness-count maintenance: this push either
            // created the bundle or grew it by one, so the count
            // crosses the threshold iff the new size just reached it.
            size_t sz = it->second.descs.size();
            uint32_t need = prog.tasks[d->dst].numParents;
            if (sz >= need && (sz == 1 || sz == need))
                ++aqComplete[tile];
        }
        it->second.lastArrival = now;
        if (it->second.firstArrival == ~0ull)
            it->second.firstArrival = now;
        ASH_OBS_EVENT(obs::EventKind::TmuEnqueue, now, 0, tile, 0,
                      d->dst, d->inst);
        updateTileMin(tile);
    }

    /** Remove one descriptor from its queued bundle. */
    void
    unqueue(uint32_t tile, const DescPtr &d)
    {
        auto it = findBundle(tile, d->dst, d->inst);
        ASH_ASSERT(it != aq[tile].end(), "cancel: bundle missing");
        auto &descs = it->second.descs;
        auto pos = std::find(descs.begin(), descs.end(), d);
        ASH_ASSERT(pos != descs.end());
        if (trace)
            std::fprintf(stderr, "[%llu] unqueue T%u/%llu src=T%u\n",
                         (unsigned long long)now, d->dst,
                         (unsigned long long)d->inst, d->src);
        {
            size_t sz = descs.size();
            uint32_t need = prog.tasks[d->dst].numParents;
            // Complete before, and gone or below threshold after.
            if (sz >= need && !(sz - 1 > 0 && sz - 1 >= need))
                --aqComplete[tile];
        }
        it->second.byteSum -= d->bytes;
        descs.erase(pos);
        if (descs.empty())
            aq[tile].erase(it);
        ASH_OBS_EVENT(obs::EventKind::TmuDequeue, now, 0, tile, 0,
                      d->dst, d->inst);
        updateTileMin(tile);
    }

    // =====================================================================
    // Abort machinery (SASH)
    // =====================================================================

    void
    abortInstance(uint32_t tile, InstKey key, const char *reason)
    {
        auto it = tcq[tile].find(key);
        if (trace)
            std::fprintf(stderr, "[%llu] abort T%u/%llu (%s) found=%d\n",
                         (unsigned long long)now, key.first,
                         (unsigned long long)key.second, reason,
                         it != tcq[tile].end());
        if (it == tcq[tile].end())
            return;   // Already aborted via another path.

        // Younger dispatched instances of the same task observed the
        // per-task argument buffers this abort rewinds; kill them
        // first (youngest first) so undo logs unwind in order.
        {
            std::vector<InstKey> younger;
            for (auto jt = tcq[tile].upper_bound(key);
                 jt != tcq[tile].end() && jt->first.first == key.first;
                 ++jt)
                younger.push_back(jt->first);
            for (auto k = younger.rbegin(); k != younger.rend(); ++k)
                abortInstance(tile, *k, "same-task-order");
            it = tcq[tile].find(key);
            ASH_ASSERT(it != tcq[tile].end(),
                       "instance vanished while aborting successors");
        }

        TcqEntry entry = std::move(it->second);
        tcq[tile].erase(it);
        ++hot.aborts;
        stats.inc(std::string("aborts.") + reason);
        // Abort distance: how long this instance had been running
        // (speculatively) before the rollback caught it.
        hot.abortDistance.record(now - entry.dispatchedAt);
        ++tileAborts[tile];
        ASH_OBS_EVENT(obs::EventKind::TaskAbort, now, 0, tile,
                      static_cast<uint16_t>(entry.core), entry.task,
                      entry.inst, obs::abortCauseOf(reason));
        busyAborted += entry.duration;
        busyUnresolved -= entry.duration;

        // Cancel children FIRST (Time-Warp anti-messages): children
        // wrote after this instance, so their rollbacks must land
        // before ours or our restored values would be re-clobbered.
        for (const DescPtr &d : entry.sent) {
            uint32_t dst_tile = prog.tasks[d->dst].tile;
            switch (d->state) {
              case Desc::St::InFlight:
                d->state = Desc::St::Cancelled;
                ++hot.cancelMessages;
                break;
              case Desc::St::Queued:
                unqueue(dst_tile, d);
                d->state = Desc::St::Cancelled;
                ++hot.cancelMessages;
                break;
              case Desc::St::Consumed:
                abortInstance(dst_tile, {d->dst, d->inst}, "cascade");
                // The consumer's abort re-queued this descriptor; now
                // cancel it from the AQ.
                if (d->state == Desc::St::Queued) {
                    unqueue(dst_tile, d);
                    d->state = Desc::St::Cancelled;
                }
                ++hot.cancelMessages;
                break;
              case Desc::St::Cancelled:
                break;
            }
        }

        // Roll back memory effects in reverse order.
        for (auto u = entry.undo.rbegin(); u != entry.undo.rend();
             ++u) {
            switch (u->kind) {
              case UndoRec::Kind::Mem:
                if (traceMem == static_cast<int64_t>(u->a))
                    std::fprintf(stderr,
                                 "[%llu] undo m%u[%llu]->%llu "
                                 "(T%u/%llu)\n",
                                 (unsigned long long)now, u->a,
                                 (unsigned long long)u->b,
                                 (unsigned long long)u->oldVal,
                                 entry.task,
                                 (unsigned long long)entry.inst);
                memData[u->a][u->b] =
                    Versioned{u->oldVal, u->oldTag,
                              u->existed ? u->oldWriter : invalidTask};
                break;
              case UndoRec::Kind::RegState:
                regState[u->a] =
                    Versioned{u->oldVal, u->oldTag,
                              u->existed ? u->oldWriter : invalidTask};
                break;
              case UndoRec::Kind::BufMem: {
                uint32_t slot = static_cast<uint32_t>(u->b);
                if (u->existed) {
                    bufMem[u->a][slot] =
                        Versioned{u->oldVal, u->oldTag, u->oldWriter};
                    bufMemValid[u->a][slot] = 1;
                } else {
                    bufMemValid[u->a][slot] = 0;
                }
                break;
              }
              case UndoRec::Kind::Filter:
                filters[u->a][u->b].assign(
                    entry.undoPayload.begin() + u->payloadOff,
                    entry.undoPayload.begin() + u->payloadOff +
                        u->payloadLen);
                filterValid[u->a][u->b] = u->existed;
                break;
              case UndoRec::Kind::LastVals: {
                uint32_t slot = static_cast<uint32_t>(u->b);
                if (u->existed) {
                    lastVals[u->a][slot] = u->oldVal;
                    lastValsValid[u->a][slot] = 1;
                } else {
                    lastValsValid[u->a][slot] = 0;
                }
                break;
              }
            }
        }

        // Requeue the instance with its original descriptors.
        for (const DescPtr &d : entry.consumed) {
            if (d->state == Desc::St::Consumed)
                enqueue(tile, d);
        }
        // Rollback semantics (Time Warp): an aborted instance MUST
        // re-execute — its pushes were cancelled, and a producer whose
        // re-push is filtered will never re-activate it. A synthetic,
        // uncancellable token guarantees the re-run.
        auto token = std::make_shared<Desc>();
        token->dst = key.first;
        token->inst = key.second;
        token->kind = PushKind::Raw;
        token->bytes = 16;
        token->ts = entry.ts;
        enqueue(tile, token);
        Event ev;
        ev.time = now + 1;
        ev.type = Event::Type::Retry;
        ev.tile = tile;
        pushEvent(std::move(ev));
    }

    // =====================================================================
    // Functional execution
    // =====================================================================

    /**
     * Execution context of the instance currently dispatching. Local
     * and received values live in the global node-indexed arrays
     * (localVal/recvVal), validated by stamp == this context's
     * dispatch epoch — dispatch is not re-entrant, so one set of
     * arrays serves every execution without per-dispatch clearing.
     */
    struct Ctx
    {
        TaskId task;
        uint64_t inst;
        uint64_t stamp = 0;
        TcqEntry *entry = nullptr;
        uint64_t dataStallLines = 0;
    };

    void
    setLocal(const Ctx &ctx, NodeId id, uint64_t v)
    {
        localVal[id] = v;
        localStamp[id] = ctx.stamp;
    }

    void
    setRecv(const Ctx &ctx, NodeId id, uint64_t v)
    {
        if (recvStamp[id] != ctx.stamp) {
            recvStamp[id] = ctx.stamp;
            recvNodes.push_back(id);
        }
        recvVal[id] = v;   // Last write wins, as with the old map.
    }

    uint64_t
    regNextValue(Ctx &ctx, size_t reg_idx)
    {
        // The next value is either computed in-task, constant, or —
        // in the single-cycle graph — delivered by descriptor from
        // the producing task; resolve() covers all three.
        return resolve(ctx, nl.regs()[reg_idx].next);
    }

    /** Resolve the value of @p id as seen by instance ctx. */
    uint64_t
    resolve(Ctx &ctx, NodeId id)
    {
        if (localStamp[id] == ctx.stamp)
            return localVal[id];
        const rtl::Node &n = nl.node(id);
        if (n.op == Op::Const)
            return n.imm;
        if (recvStamp[id] == ctx.stamp)
            return recvVal[id];
        if (n.op == Op::Input)
            return frame(ctx.inst)[inputIndex(id)];
        if (n.op == Op::Reg) {
            size_t r = nl.regIndex(id);
            if (!prog.unrolled) {
                // Single-cycle graph: registers live in tile memory.
                ++ctx.dataStallLines;
                return readVersioned(
                    &regState[r], [&]() { return &regState[r]; },
                    ctx.inst);
            }
            if (regConstNext[r] >= 0) {
                return ctx.inst == 0
                           ? nl.regs()[r].init
                           : static_cast<uint64_t>(regConstNext[r]);
            }
            // Fall through to lastVals / zero below.
        }
        // Buffered inputs (DTT / fan-in staging memory). The compiler
        // resolved which buffer parent stages each node (first parent
        // wins, matching the historical scan) into bufSlotOf.
        if (const BufSlotRef *br = bufRef(ctx.task, id)) {
            ++ctx.dataStallLines;
            TaskId buf = br->bufTask;
            uint32_t slot = br->slot;
            auto find_cell = [&]() -> Versioned * {
                return bufMemValid[buf][slot] ? &bufMem[buf][slot]
                                              : nullptr;
            };
            Versioned *cell = find_cell();
            // Never staged yet: old-value path below.
            if (cell)
                return readVersioned(cell, find_cell, ctx.inst + 1);
        }
        if (cfg.selective) {
            uint32_t slot = argSlot(ctx.task, id);
            if (slot != ~0u && lastValsValid[ctx.task][slot])
                return lastVals[ctx.task][slot];
            return 0;   // Speculative cold read; aborts repair it.
        }
        panic("DASH: value %u missing for task %u inst %llu", id,
              ctx.task, static_cast<unsigned long long>(ctx.inst));
    }

    uint32_t
    inputIndex(NodeId id) const
    {
        uint32_t idx = inputIdxOf[id];
        ASH_ASSERT(idx != ~0u, "node %u is not an input", id);
        return idx;
    }

    void
    logLastVal(Ctx &ctx, NodeId id, uint64_t val)
    {
        uint32_t slot = argSlot(ctx.task, id);
        ASH_ASSERT(slot != ~0u, "node %u has no arg slot in task %u",
                   id, ctx.task);
        UndoRec u;
        u.kind = UndoRec::Kind::LastVals;
        u.a = ctx.task;
        u.b = slot;
        u.existed = lastValsValid[ctx.task][slot] != 0;
        u.oldVal = u.existed ? lastVals[ctx.task][slot] : 0;
        ctx.entry->undo.push_back(u);
        lastVals[ctx.task][slot] = val;
        lastValsValid[ctx.task][slot] = 1;
    }

    /** Execute the task body; fills ctx.local, pushes undo records. */
    void
    executeBody(Ctx &ctx)
    {
        const Task &t = prog.tasks[ctx.task];
        uint64_t scratch[8];
        for (NodeId raw : t.nodes) {
            if (raw & regWriteFlag) {
                NodeId reg = raw & ~regWriteFlag;
                size_t r = nl.regIndex(reg);
                uint64_t v = regNextValue(ctx, r);
                UndoRec u;
                u.kind = UndoRec::Kind::RegState;
                u.a = static_cast<uint32_t>(r);
                u.oldVal = regState[r].val;
                u.oldTag = regState[r].tag;
                u.oldWriter = regState[r].writer;
                ctx.entry->undo.push_back(u);
                regState[r] = Versioned{v, ctx.inst + 1, ctx.task};
                ++ctx.dataStallLines;
                continue;
            }
            const rtl::Node &n = nl.node(raw);
            switch (n.op) {
              case Op::Input:
                setLocal(ctx, raw, frame(ctx.inst)[inputIndex(raw)]);
                break;
              case Op::Reg:
                setLocal(ctx, raw, resolve(ctx, raw));
                break;
              case Op::MemRead: {
                uint64_t addr = resolve(ctx, n.operands[0]);
                auto &mem = memData[n.mem];
                ++ctx.dataStallLines;
                uint64_t v = 0;
                if (addr < mem.size()) {
                    v = readVersioned(&mem[addr],
                                      [&]() { return &mem[addr]; },
                                      ctx.inst);
                }
                setLocal(ctx, raw, v);
                break;
              }
              case Op::MemWrite: {
                uint64_t addr = resolve(ctx, n.operands[0]);
                uint64_t data = resolve(ctx, n.operands[1]);
                uint64_t en = resolve(ctx, n.operands[2]);
                ++ctx.dataStallLines;
                if (traceMem == static_cast<int64_t>(n.mem))
                    std::fprintf(stderr,
                                 "[%llu] write m%u[%llu]=%llu en=%llu"
                                 " T%u/%llu node %u\n",
                                 (unsigned long long)now, n.mem,
                                 (unsigned long long)addr,
                                 (unsigned long long)data,
                                 (unsigned long long)en, ctx.task,
                                 (unsigned long long)ctx.inst, raw);
                if (en && addr < memData[n.mem].size()) {
                    Versioned &cell = memData[n.mem][addr];
                    UndoRec u;
                    u.kind = UndoRec::Kind::Mem;
                    u.a = n.mem;
                    u.b = addr;
                    u.oldVal = cell.val;
                    u.oldTag = cell.tag;
                    u.existed = true;
                    u.oldWriter = cell.writer;
                    ctx.entry->undo.push_back(u);
                    cell = Versioned{data, ctx.inst + 1, ctx.task};
                }
                break;
              }
              case Op::Output: {
                uint64_t v = resolve(ctx, n.operands[0]);
                ctx.entry->outputs.emplace_back(outputIndexOf[raw], v);
                break;
              }
              default: {
                for (size_t i = 0; i < n.operands.size(); ++i)
                    scratch[i] = resolve(ctx, n.operands[i]);
                setLocal(ctx, raw, rtl::evalCombOp(n, nl, scratch));
                break;
              }
            }
        }
    }

    /**
     * Value a push carries for node @p id. A register id on a
     * cross-cycle push means "the register's value at cycle+1", i.e.
     * the next-value this instance computed; on a same-cycle push it
     * is the register's current value.
     */
    uint64_t
    pushValue(Ctx &ctx, NodeId id, bool cross_cycle)
    {
        const rtl::Node &n = nl.node(id);
        if (n.op == Op::Reg && cross_cycle) {
            NodeId next = nl.regs()[nl.regIndex(id)].next;
            if (nl.node(next).op == Op::Const)
                return nl.node(next).imm;
            if (localStamp[next] == ctx.stamp)
                return localVal[next];
            return resolve(ctx, next);
        }
        return resolve(ctx, id);
    }

    // =====================================================================
    // Dispatch, completion, commit
    // =====================================================================

    /** Dispatch one AQ bundle on a core; returns execution duration. */
    void
    dispatch(uint32_t tile, uint32_t core, AqIter bit)
    {
        TaskId task = std::get<1>(bit->first);
        uint64_t inst = std::get<2>(bit->first);
        const Task &t = prog.tasks[task];
        // Swap the bundle's contents into the dispatch scratch so the
        // AQ pool slot keeps (and the scratch recycles) its vector
        // capacity; dispatch is never re-entered, so one scratch
        // bundle suffices.
        Bundle &bundle = dispatchBundle;
        bundle.descs.clear();
        bundle.descs.swap(bit->second.descs);
        bundle.firstArrival = bit->second.firstArrival;
        bundle.lastArrival = bit->second.lastArrival;
        bundle.spilled = bit->second.spilled;
        if (bundle.descs.size() >= t.numParents)
            --aqComplete[tile];
        aq[tile].erase(bit);
        updateTileMin(tile);

        // Same-task future instances read state this instance will
        // change: abort them first (conservative, SASH only).
        if (cfg.selective) {
            std::vector<InstKey> doomed;
            for (auto it = tcq[tile].lower_bound({task, inst + 1});
                 it != tcq[tile].end() && it->first.first == task;
                 ++it)
                doomed.push_back(it->first);
            // Youngest first, so undo logs unwind in order.
            for (auto k = doomed.rbegin(); k != doomed.rend(); ++k)
                abortInstance(tile, *k, "same-task-order");
        }

        // Build into the recycled scratch entry; its vectors keep the
        // capacity a previous (committed) entry grew.
        TcqEntry &entry = dispatchEntry;
        entry.task = task;
        entry.inst = inst;
        entry.ts = ts(task, inst);
        entry.epoch = ++epochCounter;
        entry.completed = false;
        entry.duration = 0;
        entry.dispatchedAt = now;
        entry.core = core;
        entry.consumed.clear();
        entry.sent.clear();
        entry.undo.clear();
        entry.undoPayload.clear();
        entry.outputs.clear();

        if (cfg.selective) {
            for (size_t pi = 0; pi < parentsOf[task].size(); ++pi) {
                auto [ptask, cross] = parentsOf[task][pi];
                if (cross && inst == 0)
                    continue;
                bool have = false;
                for (const DescPtr &d : bundle.descs) {
                    if (d->src == ptask) {
                        have = true;
                        break;
                    }
                }
                uint8_t &ctr = parentPred[task][pi];
                if (have)
                    ctr = static_cast<uint8_t>(std::min(3, ctr + 1));
                else if (ctr > 0)
                    --ctr;
            }
        }

        Ctx ctx;
        ctx.task = task;
        ctx.inst = inst;
        ctx.stamp = entry.epoch;
        ctx.entry = &entry;
        recvNodes.clear();
        uint32_t arrived = 0;
        for (const DescPtr &d : bundle.descs) {
            d->state = Desc::St::Consumed;
            ++arrived;
            for (auto &[node, val] : d->values)
                setRecv(ctx, node, val);
            entry.consumed.push_back(d);
        }
        if (cfg.selective) {
            for (NodeId node : recvNodes)
                logLastVal(ctx, node, recvVal[node]);
        }

        // Functional execution.
        uint64_t sent_pushes = 0;
        uint64_t filtered = 0;
        if (t.kind == TaskKind::Buffer) {
            // Raw tokens from upstream buffers in a fan-in chain mean
            // "the consumer must run"; they propagate regardless of
            // this buffer's own values.
            bool got_raw = false;
            for (const DescPtr &d : bundle.descs) {
                if (d->kind == PushKind::Raw)
                    got_raw = true;
            }
            bool all_same = true;
            bufVals.clear();
            for (size_t i = 0; i < t.carriedValues.size(); ++i) {
                uint64_t val = resolve(ctx, t.carriedValues[i]);
                bufVals.push_back(val);
                if (!bufMemValid[task][i] ||
                    bufMem[task][i].val != val)
                    all_same = false;
            }
            if (trace)
                std::fprintf(stderr,
                             "[%llu] buffer T%u/%llu all_same=%d "
                             "raw=%d recv=%zu\n",
                             (unsigned long long)now, task,
                             (unsigned long long)inst, all_same,
                             got_raw, recvNodes.size());
            if (!(cfg.selective && all_same && !got_raw)) {
                for (size_t i = 0; i < t.carriedValues.size(); ++i) {
                    UndoRec u;
                    u.kind = UndoRec::Kind::BufMem;
                    u.a = task;
                    u.b = i;
                    u.existed = bufMemValid[task][i] != 0;
                    if (u.existed) {
                        u.oldVal = bufMem[task][i].val;
                        u.oldTag = bufMem[task][i].tag;
                        u.oldWriter = bufMem[task][i].writer;
                    }
                    entry.undo.push_back(u);
                    bufMem[task][i] =
                        Versioned{bufVals[i], inst + 1, task};
                    bufMemValid[task][i] = 1;
                    ++ctx.dataStallLines;
                }
                sendPushes(tile, entry, ctx, sent_pushes, filtered,
                           /*force=*/false);
            } else {
                filtered += t.pushes.size();
            }
        } else {
            executeBody(ctx);
            sendPushes(tile, entry, ctx, sent_pushes, filtered,
                       /*force=*/false);
        }

        // Timing.
        uint64_t instr = t.cost + cfg.pushCost * sent_pushes;
        if (cfg.selective)
            instr += static_cast<uint64_t>(t.pushes.size());
        if (!cfg.hwDataflow) {
            // Software dataflow (Swarm/Chronos, Sec 10.1): spawn
            // bookkeeping, argument stores/loads through memory, and
            // a counter-decrement join per parent.
            instr += 12 + 6ull * t.numParents + 10ull * t.pushes.size();
            if (cfg.selective)
                instr += 4ull * t.numParents;
        }
        uint64_t stall = fetchCode(tile, core, t, now);
        // Argument/filter buffers and touched state lines.
        uint64_t data_lines = 1 + (cfg.selective ? 1 : 0) +
                              ctx.dataStallLines;
        if (!cfg.hwDataflow)
            data_lines += t.numParents;
        for (uint64_t i = 0; i < data_lines; ++i) {
            uint64_t addr = 0x100000ull + task * 256 + i * 64;
            stall += dataAccess(tile, core, addr, now);
        }
        uint64_t duration =
            static_cast<uint64_t>(static_cast<double>(instr) *
                                  cfg.baseCpi) +
            stall + cfg.dispatchOverhead +
            (bundle.spilled ? cfg.spillPenalty : 0);
        duration = std::max<uint64_t>(duration, 2);
        entry.duration = duration;
        busyUnresolved += duration;

        ++hot.tasksExecuted;
        hot.instrs += instr;
        hot.descsConsumed += arrived;
        hot.descsFiltered += filtered;
        hot.taskLength.record(duration);
        hot.bundleDescs.record(arrived);
        ++tileDispatches[tile];
        ASH_OBS_EVENT(obs::EventKind::TaskDispatch, now,
                      static_cast<uint32_t>(duration), tile,
                      static_cast<uint16_t>(core), task, inst);

        coreFreeAt[tile][core] = now + duration;
        Event ev;
        ev.time = now + duration;
        ev.type = Event::Type::CoreFree;
        ev.tile = tile;
        ev.core = core;
        ev.task = task;
        ev.inst = inst;
        ev.epoch = entry.epoch;
        pushEvent(std::move(ev));

        if (trace)
            std::fprintf(stderr, "[%llu] dispatch T%u/%llu dur=%llu\n",
                         (unsigned long long)now, task,
                         (unsigned long long)inst,
                         (unsigned long long)entry.duration);
        // Swap scratch and pool slot: the slot receives this entry,
        // the scratch inherits the (stale) previous occupant's vector
        // capacities for the next dispatch.
        auto [tit, fresh] = tcq[tile].emplace(InstKey{task, inst});
        ASH_ASSERT(fresh, "double dispatch of task %u inst %llu",
                   task, static_cast<unsigned long long>(inst));
        std::swap(tit->second, dispatchEntry);
    }

    bool trace = getenv("ASH_TRACE") != nullptr;
    int64_t traceMem = getenv("ASH_TRACE_MEM")
                           ? atoll(getenv("ASH_TRACE_MEM"))
                           : -1;
    uint64_t lastGvtCycle = 0;

    // --- incomplete-dispatch gate bookkeeping -------------------------
    std::vector<std::vector<std::pair<TaskId, bool>>> parentsOf;
    /**
     * Per-(task, parent) 2-bit delivery predictor: >=2 means this
     * parent historically delivers its argument (so wait for it),
     * <2 means it is historically filtered/skipped (dispatch without
     * it). Mirrors hardware skip prediction; mispredictions are
     * repaired by the speculation machinery.
     */
    std::vector<std::vector<uint8_t>> parentPred;
    /**
     * In-flight descriptor counts per destination instance. Only ever
     * probed point-wise (never iterated), so a hash map serves; the
     * instance index is small, leaving the task id room in the high
     * bits.
     */
    struct InstKeyHash
    {
        size_t
        operator()(const InstKey &k) const
        {
            return std::hash<uint64_t>()(
                (static_cast<uint64_t>(k.first) << 40) ^ k.second);
        }
    };
    std::unordered_map<InstKey, uint32_t, InstKeyHash> inFlightTo;
    std::vector<uint64_t> tileMinTs;    ///< Min queued ts per tile.
    std::multiset<uint64_t> tileMins;   ///< All per-tile minima.
    std::set<uint32_t> gateBlocked;     ///< Tiles waiting on the gate.
    uint64_t prevGateMin = ~0ull;

    /** Refresh @p tile's entry in the global queued-ts minima. */
    void
    updateTileMin(uint32_t tile)
    {
        uint64_t fresh = aq[tile].empty()
                             ? ~0ull
                             : std::get<0>(aq[tile].begin()->first);
        if (fresh == tileMinTs[tile])
            return;
        auto it = tileMins.find(tileMinTs[tile]);
        ASH_ASSERT(it != tileMins.end());
        tileMins.erase(it);
        tileMins.insert(fresh);
        tileMinTs[tile] = fresh;
    }

    /** Wake gate-blocked tiles when the global picture changed. */
    void
    wakeGateBlocked()
    {
        uint64_t cur = tileMins.empty() ? ~0ull : *tileMins.begin();
        if (!inFlight.empty())
            cur = std::min(cur, *inFlight.begin());
        if (cur == prevGateMin || gateBlocked.empty()) {
            prevGateMin = cur;
            return;
        }
        prevGateMin = cur;
        for (uint32_t tile : gateBlocked) {
            Event ev;
            ev.time = now + 1;
            ev.type = Event::Type::Retry;
            ev.tile = tile;
            pushEvent(std::move(ev));
        }
        gateBlocked.clear();
    }

    void
    sendPushes(uint32_t tile, TcqEntry &entry, Ctx &ctx,
               uint64_t &sent, uint64_t &filtered, bool force)
    {
        const Task &t = prog.tasks[ctx.task];
        (void)force;
        for (size_t pi = 0; pi < t.pushes.size(); ++pi) {
            const Push &p = t.pushes[pi];
            uint64_t dst_inst = ctx.inst + (p.crossCycle ? 1 : 0);
            std::vector<std::pair<NodeId, uint64_t>> payload;
            for (NodeId v : p.values)
                payload.emplace_back(v, pushValue(ctx, v,
                                                  p.crossCycle));

            if (cfg.selective && p.kind == PushKind::Value) {
                // Output-argument filtering (Sec 5.1).
                bool same = filterValid[ctx.task][pi];
                if (same) {
                    const auto &prev = filters[ctx.task][pi];
                    for (size_t i = 0; i < payload.size(); ++i) {
                        if (prev[i] != payload[i].second) {
                            same = false;
                            break;
                        }
                    }
                }
                if (same) {
                    ++filtered;
                    continue;
                }
                UndoRec u;
                u.kind = UndoRec::Kind::Filter;
                u.a = ctx.task;
                u.b = pi;
                // Old filter values go into the entry's pooled undo
                // payload buffer instead of a per-record vector.
                const auto &prev_f = filters[ctx.task][pi];
                u.payloadOff = static_cast<uint32_t>(
                    ctx.entry->undoPayload.size());
                u.payloadLen = static_cast<uint32_t>(prev_f.size());
                ctx.entry->undoPayload.insert(
                    ctx.entry->undoPayload.end(), prev_f.begin(),
                    prev_f.end());
                u.existed = filterValid[ctx.task][pi];
                ctx.entry->undo.push_back(u);
                auto &f = filters[ctx.task][pi];
                f.clear();
                for (auto &[n, v] : payload)
                    f.push_back(v);
                filterValid[ctx.task][pi] = 1;
            }

            auto d = std::make_shared<Desc>();
            d->dst = p.dst;
            d->inst = dst_inst;
            d->src = ctx.task;
            d->kind = p.kind;
            d->values = std::move(payload);
            d->bytes = p.bytes();
            d->ts = ts(p.dst, dst_inst);
            d->state = Desc::St::InFlight;
            uint32_t dst_tile = prog.tasks[p.dst].tile;
            uint64_t arrive = noc.send(tile, dst_tile, d->bytes,
                                       now + 2 + sent);
            inFlight.insert(d->ts);
            ++inFlightTo[{d->dst, d->inst}];
            entry.sent.push_back(d);
            ++sent;
            ++hot.descsSent;
            hot.descBytes += d->bytes;

            Event ev;
            ev.time = arrive;
            ev.type = Event::Type::DescArrive;
            ev.tile = dst_tile;
            ev.desc = std::move(d);
            pushEvent(std::move(ev));
        }
    }

    // =====================================================================
    // Scheduling
    // =====================================================================

    /** Try to dispatch work on every free core of @p tile. */
    void
    trySchedule(uint32_t tile)
    {
        while (true) {
            // Find a free core.
            uint32_t core = ~0u;
            for (uint32_t c = 0; c < cfg.coresPerTile; ++c) {
                if (coreFreeAt[tile][c] <= now) {
                    core = c;
                    break;
                }
            }
            if (core == ~0u)
                return;
            if (cfg.selective &&
                tcq[tile].size() >= cfg.tcqEntries) {
                ++hot.tcqFullStalls;
                return;
            }

            auto bit = pickBundle(tile);
            if (bit == aq[tile].end())
                return;
            dispatch(tile, core, bit);
        }
    }

    /** Choose the next bundle to dispatch, or end() if none. */
    AqIter
    pickBundle(uint32_t tile)
    {
        auto &q = aq[tile];
        if (q.empty())
            return q.end();

        if (cfg.selective) {
            // SASH: lowest-timestamp instance; incomplete bundles get
            // a short merge grace period.
            auto it = q.begin();
            TaskId task = std::get<1>(it->first);
            uint64_t inst = std::get<2>(it->first);
            if (inst > lastGvtCycle + cfg.speculationWindow)
                return q.end();   // Bound speculative run-ahead.
            uint32_t need = prog.tasks[task].numParents;
            if (it->second.descs.size() < need) {
                // Missing arguments: speculate "producer skipped"
                // only when the missing producers could not still be
                // on the way — no descriptor to this instance in
                // flight, and no missing parent queued anywhere. A
                // parent that never activates is the selective-skip
                // case this dispatch bets on.
                if (now < it->second.lastArrival +
                              cfg.mergeGraceCycles) {
                    Event ev;
                    ev.time = it->second.lastArrival +
                              cfg.mergeGraceCycles;
                    ev.type = Event::Type::Retry;
                    ev.tile = tile;
                    pushEvent(std::move(ev));
                    return q.end();
                }
                if (inFlightTo.count({task, inst})) {
                    gateBlocked.insert(tile);
                    return q.end();
                }
                uint64_t global_min = tileMins.empty()
                                          ? ~0ull
                                          : *tileMins.begin();
                if (!inFlight.empty())
                    global_min = std::min(global_min,
                                          *inFlight.begin());
                bool blocked = false;
                for (size_t pi = 0; pi < parentsOf[task].size();
                     ++pi) {
                    auto [ptask, cross] = parentsOf[task][pi];
                    if (cross && inst == 0)
                        continue;   // Bootstrap always delivers.
                    uint64_t pinst = inst - (cross ? 1 : 0);
                    bool have = false;
                    for (const DescPtr &d : it->second.descs) {
                        if (d->src == ptask) {
                            have = true;
                            break;
                        }
                    }
                    if (have)
                        continue;
                    uint32_t ptile = prog.tasks[ptask].tile;
                    if (findBundle(ptile, ptask, pinst) !=
                        aq[ptile].end()) {
                        blocked = true;   // Producer queued: wait.
                        break;
                    }
                    // Not queued, not in flight: skip-predicted
                    // parents are speculated away immediately;
                    // deliver-predicted parents are waited for, but
                    // only for a bounded window — past it we
                    // speculate with the stale value and let a late
                    // arrival abort us (the paper's optimistic bet).
                    bool strong = parentPred[task][pi] >= 3;
                    if (parentPred[task][pi] >= 2 &&
                        global_min <= ts(ptask, pinst) &&
                        (strong ||
                         now < it->second.firstArrival +
                                   cfg.deliverWaitCycles)) {
                        if (!strong) {
                            Event ev;
                            ev.time = it->second.firstArrival +
                                      cfg.deliverWaitCycles;
                            ev.type = Event::Type::Retry;
                            ev.tile = tile;
                            pushEvent(std::move(ev));
                        }
                        blocked = true;
                        break;
                    }
                }
                if (blocked) {
                    gateBlocked.insert(tile);
                    return q.end();
                }
            }
            return it;
        }

        // DASH: dispatch complete bundles, preferring those within
        // the merge window; completing beyond it models an eviction.
        // The maintained completeness count short-circuits the scan
        // when nothing is dispatchable (the common case: the tile is
        // re-polled on every arrival and VT round).
        if (aqComplete[tile] == 0)
            return q.end();
        uint32_t scanned = 0;
        auto first_beyond = q.end();
        for (auto it = q.begin(); it != q.end(); ++it) {
            TaskId task = std::get<1>(it->first);
            bool complete =
                it->second.descs.size() >=
                prog.tasks[task].numParents;
            if (complete) {
                if (scanned < cfg.mergeEntries)
                    return it;
                first_beyond = it;
                break;
            }
            ++scanned;
        }
        if (first_beyond != q.end()) {
            ++hot.mergeEvictions;
            return first_beyond;
        }
        return q.end();
    }

    // =====================================================================
    // Event handlers
    // =====================================================================

    void
    onDescArrive(uint32_t tile, const DescPtr &d)
    {
        auto fit = inFlight.find(d->ts);
        if (fit != inFlight.end())
            inFlight.erase(fit);
        auto tit2 = inFlightTo.find({d->dst, d->inst});
        if (tit2 != inFlightTo.end() && --tit2->second == 0)
            inFlightTo.erase(tit2);
        if (d->state == Desc::St::Cancelled)
            return;
        ++hot.descsArrived;

        if (cfg.selective) {
            // Conflict detection (Sec 5.2).
            auto tit = tcq[tile].find({d->dst, d->inst});
            if (tit != tcq[tile].end()) {
                abortInstance(tile, {d->dst, d->inst}, "late-arg");
                // Train the skip predictor: this parent delivers.
                for (size_t pi = 0; pi < parentsOf[d->dst].size();
                     ++pi) {
                    if (parentsOf[d->dst][pi].first == d->src)
                        parentPred[d->dst][pi] = 3;
                }
            }
            if (d->kind == PushKind::War) {
                // Conflict-checked, then discarded.
                d->state = Desc::St::Cancelled;
                ++hot.warDiscarded;
                trySchedule(tile);
                return;
            }
        }
        enqueue(tile, d);
        trySchedule(tile);
    }

    void
    onCoreFree(const Event &ev)
    {
        auto it = tcq[ev.tile].find({ev.task, ev.inst});
        if (it != tcq[ev.tile].end() &&
            it->second.epoch == ev.epoch) {
            it->second.completed = true;
            if (!cfg.selective)
                commitEntry(ev.tile, it);
        }
        trySchedule(ev.tile);
    }

    /**
     * Finalize one entry: record outputs, account committed time.
     * Returns the position after the erased entry. The entry is
     * erased in place — its vectors stay in the pool slot, capacity
     * intact, for the next dispatch to recycle.
     */
    TcqIter
    commitEntry(uint32_t tile, TcqIter it)
    {
        TcqEntry &e = it->second;
        for (auto &[idx, val] : e.outputs) {
            if (e.inst < designCycles)
                finalOutputs[{e.inst, idx}] = val;
        }
        busyCommitted += e.duration;
        busyUnresolved -= e.duration;
        ++hot.tasksCommitted;
        ++tileCommits[tile];
        ASH_OBS_EVENT(obs::EventKind::TaskCommit, now, 0, tile,
                      static_cast<uint16_t>(e.core), e.task, e.inst);
        if (trace)
            std::fprintf(stderr, "[%llu] commit T%u/%llu\n",
                         (unsigned long long)now, e.task,
                         (unsigned long long)e.inst);
        return tcq[tile].erase(it);
    }

    void
    onVtRound()
    {
        ++hot.commitRounds;
        ASH_OBS_EVENT(obs::EventKind::VtCommitRound, now, 0, 0, 0,
                      lastGvtCycle, 0);

        // GVT over AQ, TCQ, in-flight, and uninjected stimulus.
        uint64_t g = ~0ull;
        for (uint32_t t = 0; t < cfg.numTiles; ++t) {
            if (cfg.prioritized) {
                if (!aq[t].empty()) {
                    auto &key = aq[t].begin()->first;
                    g = std::min(g, ts(std::get<1>(key),
                                       std::get<2>(key)));
                }
            } else {
                // Unordered mode: keys are arrival order, so scan.
                for (const auto &[key, b] : aq[t])
                    g = std::min(g, ts(std::get<1>(key),
                                       std::get<2>(key)));
            }
            for (const auto &[k, e] : tcq[t]) {
                if (!e.completed || cfg.selective)
                    g = std::min(g, e.ts);
            }
        }
        if (!inFlight.empty())
            g = std::min(g, *inFlight.begin());
        if (injectedUpTo < designCycles)
            g = std::min(g, prog.cycleDepth * injectedUpTo);

        // Bulk commit (SASH).
        if (cfg.selective) {
            for (uint32_t t = 0; t < cfg.numTiles; ++t) {
                for (auto it = tcq[t].begin(); it != tcq[t].end();) {
                    if (it->second.completed && it->second.ts <= g)
                        it = commitEntry(t, it);
                    else
                        ++it;
                }
            }
        }

        // Stimulus top-up within the run-ahead window.
        uint64_t gvt_cycle = g == ~0ull ? designCycles
                                        : g / prog.cycleDepth;
        lastGvtCycle = gvt_cycle;
        uint64_t target = std::min<uint64_t>(
            designCycles, gvt_cycle + cfg.stimulusWindow);
        while (injectedUpTo < target)
            injectStimulus(injectedUpTo++);

        // Occupancy sampling (time-weighted by uniform rounds).
        uint64_t aq_total = 0, tcq_total = 0, foot = 0;
        for (uint32_t t = 0; t < cfg.numTiles; ++t) {
            aq_total += aq[t].size();
            tcq_total += tcq[t].size();
            for (const auto &[k, b] : aq[t])
                foot += b.bytes();
        }
        hot.aqDepth.record(aq_total);
        hot.tcqDepth.record(tcq_total);
        hot.aqOccupancy.sample(
            static_cast<double>(aq_total) / cfg.numTiles);
        hot.tcqOccupancy.sample(
            static_cast<double>(tcq_total) / cfg.numTiles);
        hot.footprintBytes.sample(
            static_cast<double>(foot) + 16.0 *
                static_cast<double>(inFlight.size()));

        for (uint32_t t = 0; t < cfg.numTiles; ++t)
            trySchedule(t);

        if (g >= prog.cycleDepth * designCycles &&
            injectedUpTo >= designCycles) {
            done = true;
            return;
        }
        Event ev;
        ev.time = now + cfg.vtIntervalCycles;
        ev.type = Event::Type::VtRound;
        pushEvent(std::move(ev));
    }

    void
    injectStimulus(uint64_t cycle)
    {
        const auto &cur = frame(cycle);
        const auto *prev = cycle > 0 ? &frame(cycle - 1) : nullptr;
        for (TaskId t : activatedTasks) {
            bool fire = true;
            if (cfg.selective && cycle > 1) {
                if (taskInputs[t].empty()) {
                    fire = false;   // Constant-register bootstrap.
                } else {
                    fire = false;
                    for (auto &[node, idx] : taskInputs[t]) {
                        if ((*prev)[idx] != cur[idx]) {
                            fire = true;
                            break;
                        }
                    }
                }
            }
            if (!fire)
                continue;
            auto d = std::make_shared<Desc>();
            d->dst = t;
            d->inst = cycle;
            d->kind = PushKind::Value;
            d->stimulus = true;
            d->bytes = 16 + 8 * static_cast<uint32_t>(
                                    taskInputs[t].size());
            d->ts = ts(t, cycle);
            Event ev;
            ev.time = now + 1;
            ev.type = Event::Type::DescArrive;
            ev.tile = prog.tasks[t].tile;
            ev.desc = d;
            inFlight.insert(d->ts);
            ++inFlightTo[{d->dst, d->inst}];
            pushEvent(std::move(ev));
            ++hot.stimulusDescs;
            ASH_OBS_EVENT(obs::EventKind::Stimulus, now, 0, ev.tile,
                          0, t, cycle);
        }
    }

    /** Cycle-0 bootstrap: cross-cycle edges carry register inits. */
    void
    bootstrap()
    {
        for (const Task &t : prog.tasks) {
            for (const Push &p : t.pushes) {
                if (!p.crossCycle)
                    continue;
                auto d = std::make_shared<Desc>();
                d->dst = p.dst;
                d->inst = 0;
                d->kind = p.kind;
                d->bytes = p.bytes();
                d->ts = ts(p.dst, 0);
                for (NodeId v : p.values) {
                    uint64_t init = 0;
                    if (nl.node(v).op == Op::Reg)
                        init = nl.regs()[nl.regIndex(v)].init;
                    d->values.emplace_back(v, init);
                }
                Event ev;
                ev.time = 1;
                ev.type = Event::Type::DescArrive;
                ev.tile = prog.tasks[p.dst].tile;
                ev.desc = d;
                d->src = t.id;
                inFlight.insert(d->ts);
                ++inFlightTo[{d->dst, d->inst}];
                pushEvent(std::move(ev));
            }
        }
    }

    /**
     * Fold the raw hot-path statistics into the string-keyed StatSet.
     * The guards reproduce the per-event key-creation semantics
     * exactly: a counter key appears iff its original call site was
     * reached at least once (some sites pass a delta that can be
     * zero, e.g. descsFiltered under DASH, so those fold whenever a
     * dispatch happened, even with total 0). Histogram/accumulator
     * folds are no-ops when never recorded.
     */
    void
    foldHotStats()
    {
        auto fold = [&](const char *name, uint64_t v) {
            if (v)
                stats.inc(name, v);
        };
        if (hot.tasksExecuted) {
            stats.inc("tasksExecuted", hot.tasksExecuted);
            stats.inc("instrs", hot.instrs);
            stats.inc("descsConsumed", hot.descsConsumed);
            stats.inc("descsFiltered", hot.descsFiltered);
        }
        fold("tasksCommitted", hot.tasksCommitted);
        if (hot.descsSent) {
            stats.inc("descsSent", hot.descsSent);
            stats.inc("descBytes", hot.descBytes);
        }
        fold("descsArrived", hot.descsArrived);
        fold("warDiscarded", hot.warDiscarded);
        fold("stimulusDescs", hot.stimulusDescs);
        fold("l1dAccesses", hot.l1dAccesses);
        fold("l1iAccesses", hot.l1iAccesses);
        fold("l1iMisses", hot.l1iMisses);
        fold("l2Accesses", hot.l2Accesses);
        fold("l2iMisses", hot.l2iMisses);
        fold("dramAccesses", hot.dramAccesses);
        if (hot.dramAccesses || hot.aqSpills)
            stats.inc("dramBytes", hot.dramBytes);
        fold("aqSpills", hot.aqSpills);
        fold("tcqFullStalls", hot.tcqFullStalls);
        fold("mergeEvictions", hot.mergeEvictions);
        fold("commitRounds", hot.commitRounds);
        fold("cancelMessages", hot.cancelMessages);
        fold("aborts", hot.aborts);
        stats.addHistogram("taskLength", hot.taskLength);
        stats.addHistogram("bundleDescs", hot.bundleDescs);
        stats.addHistogram("abortDistance", hot.abortDistance);
        stats.addHistogram("aqDepth", hot.aqDepth);
        stats.addHistogram("tcqDepth", hot.tcqDepth);
        stats.addAccum("aqOccupancy", hot.aqOccupancy);
        stats.addAccum("tcqOccupancy", hot.tcqOccupancy);
        stats.addAccum("footprintBytes", hot.footprintBytes);
    }

    // =====================================================================
    // Checkpointing
    // =====================================================================

    /// True once restoreState() ran: run() then resumes mid-flight
    /// instead of bootstrapping from cycle 0.
    bool restored = false;

    // Snapshot section tags.
    enum : uint32_t {
        kSecDescs = 1,
        kSecTiming = 2,
        kSecTmu = 3,
        kSecFunc = 4,
        kSecStats = 5,
    };

    /**
     * Covers everything besides the netlist (whose identity travels
     * as the design fingerprint) that shapes both the engine's
     * behavior and the image layout: the image stores per-task state
     * indexed by the compiler's layout, so a differently partitioned
     * program must be rejected even over the same netlist.
     */
    uint64_t
    configHash() const
    {
        ckpt::Fnv f;
        f.u64(cfg.numTiles);
        f.u64(cfg.coresPerTile);
        f.f64(cfg.ghz);
        f.u64(cfg.l1iBytes);
        f.u64(cfg.l1dBytes);
        f.u64(cfg.l1Ways);
        f.u64(cfg.l1Latency);
        f.u64(cfg.l2Bytes);
        f.u64(cfg.l2Ways);
        f.u64(cfg.l2Latency);
        f.u64(cfg.lineBytes);
        f.u64(cfg.dramLatency);
        f.u64(cfg.dramCtrls);
        f.f64(cfg.dramBytesPerCycle);
        f.u64(cfg.aqEntries);
        f.u64(cfg.mergeEntries);
        f.u64(cfg.tcqEntries);
        f.u64(cfg.vtIntervalCycles);
        f.u64(cfg.spillPenalty);
        f.u64(cfg.mergeGraceCycles);
        f.u64(cfg.incompleteLookahead);
        f.u64(cfg.deliverWaitCycles);
        f.f64(cfg.baseCpi);
        f.u64(cfg.dispatchOverhead);
        f.u64(cfg.pushCost);
        f.u64(cfg.selective);
        f.u64(cfg.prioritized);
        f.u64(cfg.prefetch);
        f.u64(cfg.hwDataflow);
        f.u64(cfg.sharedLlc);
        f.u64(cfg.stimulusWindow);
        f.u64(cfg.speculationWindow);
        f.u64(prog.numTiles);
        f.u64(prog.unrolled);
        f.u64(prog.cycleDepth);
        f.u64(prog.tasks.size());
        for (const Task &t : prog.tasks) {
            f.u64(t.tile);
            f.u64(t.numParents);
            f.u64(t.nodes.size());
            f.u64(t.pushes.size());
            f.u64(t.directInputs.size());
            f.u64(t.carriedValues.size());
        }
        return f.value();
    }

    /**
     * Descriptors are shared: an in-flight event, an AQ bundle, and a
     * TCQ consumed/sent list can alias the same Desc, whose state
     * mutates through any alias (the cancel paths rely on that). The
     * registry assigns each live Desc a dense id in deterministic
     * order — event-heap array order, then per-tile AQ bundles, then
     * per-tile TCQ lists — so the image stores each once and aliases
     * survive the round trip.
     */
    struct DescRegistry
    {
        std::unordered_map<const Desc *, uint32_t> ids;
        std::vector<const Desc *> order;

        void
        add(const DescPtr &d)
        {
            if (!d)
                return;
            auto [it, fresh] =
                ids.emplace(d.get(),
                            static_cast<uint32_t>(order.size()));
            if (fresh)
                order.push_back(d.get());
        }

        uint32_t
        id(const DescPtr &d) const
        {
            return d ? ids.at(d.get()) : ~0u;
        }
    };

    static void
    saveDesc(ckpt::SnapshotWriter &w, const Desc &d)
    {
        w.u32(d.dst);
        w.u64(d.inst);
        w.u32(d.src);
        w.u8(static_cast<uint8_t>(d.kind));
        w.b(d.stimulus);
        w.u64(d.values.size());
        for (const auto &[node, val] : d.values) {
            w.u32(node);
            w.u64(val);
        }
        w.u32(d.bytes);
        w.u64(d.ts);
        w.u8(static_cast<uint8_t>(d.state));
    }

    static void
    restoreDesc(ckpt::SnapshotReader &r, Desc &d)
    {
        d.dst = r.u32();
        d.inst = r.u64();
        d.src = r.u32();
        d.kind = static_cast<PushKind>(r.u8());
        d.stimulus = r.b();
        uint64_t n = r.u64();
        d.values.clear();
        d.values.reserve(n);
        for (uint64_t i = 0; i < n; ++i) {
            NodeId node = r.u32();
            uint64_t val = r.u64();
            d.values.emplace_back(node, val);
        }
        d.bytes = r.u32();
        d.ts = r.u64();
        d.state = static_cast<Desc::St>(r.u8());
    }

    static void
    saveHist(ckpt::SnapshotWriter &w, const Histogram &h)
    {
        w.u64(h.count);
        w.u64(h.sum);
        w.u64(h.minValue);
        w.u64(h.maxValue);
        w.raw(h.buckets.data(),
              h.buckets.size() * sizeof(h.buckets[0]));
    }

    static void
    restoreHist(ckpt::SnapshotReader &r, Histogram &h)
    {
        h.count = r.u64();
        h.sum = r.u64();
        h.minValue = r.u64();
        h.maxValue = r.u64();
        r.raw(h.buckets.data(),
              h.buckets.size() * sizeof(h.buckets[0]));
    }

    static void
    saveAccum(ckpt::SnapshotWriter &w, const Accumulator &a)
    {
        w.u64(a.count);
        w.f64(a.sum);
        w.f64(a.minValue);
        w.f64(a.maxValue);
    }

    static void
    restoreAccum(ckpt::SnapshotReader &r, Accumulator &a)
    {
        a.count = r.u64();
        a.sum = r.f64();
        a.minValue = r.f64();
        a.maxValue = r.f64();
    }

    // Logically const; SortedPool iteration is non-const only.
    void
    saveState(ckpt::SnapshotWriter &w)
    {
        DescRegistry reg;
        events.visitEntries(
            [&](uint64_t, uint32_t, const Event &ev) {
                reg.add(ev.desc);
            });
        for (uint32_t t = 0; t < cfg.numTiles; ++t)
            for (const auto &[key, b] : aq[t])
                for (const DescPtr &d : b.descs)
                    reg.add(d);
        for (uint32_t t = 0; t < cfg.numTiles; ++t) {
            for (const auto &[key, e] : tcq[t]) {
                for (const DescPtr &d : e.consumed)
                    reg.add(d);
                for (const DescPtr &d : e.sent)
                    reg.add(d);
            }
        }

        w.beginSection(kSecDescs);
        w.u64(reg.order.size());
        for (const Desc *d : reg.order)
            saveDesc(w, *d);
        w.endSection();

        w.beginSection(kSecTiming);
        w.u64(events.size());
        events.visitEntries(
            [&](uint64_t time, uint32_t seq, const Event &ev) {
                w.u64(time);
                w.u32(seq);
                w.u64(ev.time);
                w.u8(static_cast<uint8_t>(ev.type));
                w.u32(ev.tile);
                w.u32(ev.core);
                w.u32(reg.id(ev.desc));
                w.u32(ev.task);
                w.u64(ev.inst);
                w.u64(ev.epoch);
            });
        w.u32(events.nextSeq());
        w.u64(now);
        noc.saveState(w);
        for (const auto &tile_cores : coreFreeAt)
            w.vec(tile_cores);
        for (const auto &c : l2)
            c->saveState(w);
        for (const auto &c : l1i)
            c->saveState(w);
        for (const auto &c : l1d)
            c->saveState(w);
        w.vec(dramFree);
        w.u64(epochCounter);
        w.u64(busyCommitted);
        w.u64(busyAborted);
        w.u64(busyUnresolved);
        w.u64(designCycles);
        w.u64(injectedUpTo);
        w.b(done);
        w.u64(lastGvtCycle);
        w.endSection();

        w.beginSection(kSecTmu);
        for (uint32_t t = 0; t < cfg.numTiles; ++t) {
            w.u64(aq[t].size());
            for (const auto &[key, b] : aq[t]) {
                w.u64(std::get<0>(key));
                w.u32(std::get<1>(key));
                w.u64(std::get<2>(key));
                w.u64(b.descs.size());
                for (const DescPtr &d : b.descs)
                    w.u32(reg.id(d));
                w.u64(b.firstArrival);
                w.u64(b.lastArrival);
                w.u32(b.byteSum);
                w.b(b.spilled);
            }
        }
        for (uint32_t t = 0; t < cfg.numTiles; ++t) {
            w.u64(tcq[t].size());
            for (const auto &[key, e] : tcq[t]) {
                w.u32(e.task);
                w.u64(e.inst);
                w.u64(e.ts);
                w.u64(e.epoch);
                w.b(e.completed);
                w.u64(e.duration);
                w.u64(e.dispatchedAt);
                w.u32(e.core);
                w.u64(e.consumed.size());
                for (const DescPtr &d : e.consumed)
                    w.u32(reg.id(d));
                w.u64(e.sent.size());
                for (const DescPtr &d : e.sent)
                    w.u32(reg.id(d));
                // Per-field, not vec(): UndoRec has padding holes
                // that would leak nondeterministic heap bytes into
                // the image and break state-hash comparisons.
                w.u64(e.undo.size());
                for (const UndoRec &u : e.undo) {
                    w.u8(static_cast<uint8_t>(u.kind));
                    w.b(u.existed);
                    w.u32(u.a);
                    w.u64(u.b);
                    w.u64(u.oldVal);
                    w.u64(u.oldTag);
                    w.u32(u.oldWriter);
                    w.u32(u.payloadOff);
                    w.u32(u.payloadLen);
                }
                w.vec(e.undoPayload);
                w.u64(e.outputs.size());
                for (const auto &[idx, val] : e.outputs) {
                    w.u32(idx);
                    w.u64(val);
                }
            }
        }
        w.u64(inFlight.size());
        for (uint64_t v : inFlight)
            w.u64(v);
        w.u64(aqSeq);
        w.vec(aqComplete);
        {
            std::vector<std::pair<InstKey, uint32_t>> ift(
                inFlightTo.begin(), inFlightTo.end());
            std::sort(ift.begin(), ift.end());
            w.u64(ift.size());
            for (const auto &[k, n] : ift) {
                w.u32(k.first);
                w.u64(k.second);
                w.u32(n);
            }
        }
        for (const auto &pp : parentPred)
            w.vec(pp);
        w.vec(tileMinTs);
        w.u64(gateBlocked.size());
        for (uint32_t t : gateBlocked)
            w.u32(t);
        w.u64(prevGateMin);
        w.endSection();

        w.beginSection(kSecFunc);
        for (const auto &m : memData)
            w.vec(m);
        w.vec(regState);
        for (size_t t = 0; t < bufMem.size(); ++t) {
            w.vec(bufMem[t]);
            w.vec(bufMemValid[t]);
        }
        for (size_t t = 0; t < filters.size(); ++t) {
            w.u64(filters[t].size());
            for (const auto &fv : filters[t])
                w.vec(fv);
            w.vec(filterValid[t]);
        }
        for (size_t t = 0; t < lastVals.size(); ++t) {
            w.vec(lastVals[t]);
            w.vec(lastValsValid[t]);
        }
        w.u64(finalOutputs.size());
        for (const auto &[k, v] : finalOutputs) {
            w.u64(k.first);
            w.u32(k.second);
            w.u64(v);
        }
        w.endSection();

        w.beginSection(kSecStats);
        ckpt::saveStats(w, stats);
        w.u64(lastSample);
        w.vec(tileDispatches);
        w.vec(tileCommits);
        w.vec(tileAborts);
        w.u64(hot.tasksExecuted);
        w.u64(hot.tasksCommitted);
        w.u64(hot.instrs);
        w.u64(hot.descsConsumed);
        w.u64(hot.descsFiltered);
        w.u64(hot.descsSent);
        w.u64(hot.descBytes);
        w.u64(hot.descsArrived);
        w.u64(hot.warDiscarded);
        w.u64(hot.stimulusDescs);
        w.u64(hot.l1dAccesses);
        w.u64(hot.l1iAccesses);
        w.u64(hot.l1iMisses);
        w.u64(hot.l2Accesses);
        w.u64(hot.l2iMisses);
        w.u64(hot.dramAccesses);
        w.u64(hot.dramBytes);
        w.u64(hot.aqSpills);
        w.u64(hot.tcqFullStalls);
        w.u64(hot.mergeEvictions);
        w.u64(hot.commitRounds);
        w.u64(hot.cancelMessages);
        w.u64(hot.aborts);
        saveHist(w, hot.taskLength);
        saveHist(w, hot.bundleDescs);
        saveHist(w, hot.abortDistance);
        saveHist(w, hot.aqDepth);
        saveHist(w, hot.tcqDepth);
        saveAccum(w, hot.aqOccupancy);
        saveAccum(w, hot.tcqOccupancy);
        saveAccum(w, hot.footprintBytes);
        w.endSection();
    }

    void
    restoreState(ckpt::SnapshotReader &r)
    {
        using ckpt::SnapshotError;

        r.section(kSecDescs);
        uint64_t ndescs = r.u64();
        std::vector<DescPtr> table;
        table.reserve(ndescs);
        for (uint64_t i = 0; i < ndescs; ++i) {
            auto d = std::make_shared<Desc>();
            restoreDesc(r, *d);
            table.push_back(std::move(d));
        }
        r.endSection();
        auto descAt = [&](uint32_t id) -> DescPtr {
            if (id == ~0u)
                return nullptr;
            if (id >= table.size())
                throw SnapshotError("descriptor id out of range");
            return table[id];
        };

        r.section(kSecTiming);
        events.clear();
        uint64_t nevents = r.u64();
        for (uint64_t i = 0; i < nevents; ++i) {
            uint64_t time = r.u64();
            uint32_t seq = r.u32();
            Event ev;
            ev.time = r.u64();
            ev.type = static_cast<Event::Type>(r.u8());
            ev.tile = r.u32();
            ev.core = r.u32();
            ev.desc = descAt(r.u32());
            ev.task = r.u32();
            ev.inst = r.u64();
            ev.epoch = r.u64();
            events.restoreEntry(time, seq, std::move(ev));
        }
        events.restoreSeq(r.u32());
        now = r.u64();
        noc.restoreState<ckpt::SnapshotReader, SnapshotError>(r);
        for (auto &tile_cores : coreFreeAt) {
            r.vec(tile_cores);
            if (tile_cores.size() != cfg.coresPerTile)
                throw SnapshotError("core-slot count mismatch");
        }
        for (const auto &c : l2)
            c->restoreState<ckpt::SnapshotReader, SnapshotError>(r);
        for (const auto &c : l1i)
            c->restoreState<ckpt::SnapshotReader, SnapshotError>(r);
        for (const auto &c : l1d)
            c->restoreState<ckpt::SnapshotReader, SnapshotError>(r);
        r.vec(dramFree);
        if (dramFree.size() != cfg.dramCtrls)
            throw SnapshotError("DRAM controller count mismatch");
        epochCounter = r.u64();
        busyCommitted = r.u64();
        busyAborted = r.u64();
        busyUnresolved = r.u64();
        designCycles = r.u64();
        injectedUpTo = r.u64();
        done = r.b();
        lastGvtCycle = r.u64();
        r.endSection();

        r.section(kSecTmu);
        for (uint32_t t = 0; t < cfg.numTiles; ++t) {
            aq[t].clear();
            uint64_t n = r.u64();
            for (uint64_t i = 0; i < n; ++i) {
                uint64_t prio = r.u64();
                TaskId task = r.u32();
                uint64_t inst = r.u64();
                auto [it, fresh] =
                    aq[t].emplace(AqKey{prio, task, inst});
                if (!fresh)
                    throw SnapshotError("duplicate AQ key");
                // Pool slots are recycled; every live field must be
                // assigned, not merely the non-default ones.
                Bundle &b = it->second;
                b.descs.clear();
                uint64_t nd = r.u64();
                b.descs.reserve(nd);
                for (uint64_t j = 0; j < nd; ++j)
                    b.descs.push_back(descAt(r.u32()));
                b.firstArrival = r.u64();
                b.lastArrival = r.u64();
                b.byteSum = r.u32();
                b.spilled = r.b();
            }
        }
        for (uint32_t t = 0; t < cfg.numTiles; ++t) {
            tcq[t].clear();
            uint64_t n = r.u64();
            for (uint64_t i = 0; i < n; ++i) {
                TaskId task = r.u32();
                uint64_t inst = r.u64();
                auto [it, fresh] =
                    tcq[t].emplace(InstKey{task, inst});
                if (!fresh)
                    throw SnapshotError("duplicate TCQ key");
                TcqEntry &e = it->second;
                e.task = task;
                e.inst = inst;
                e.ts = r.u64();
                e.epoch = r.u64();
                e.completed = r.b();
                e.duration = r.u64();
                e.dispatchedAt = r.u64();
                e.core = r.u32();
                e.consumed.clear();
                uint64_t nc = r.u64();
                e.consumed.reserve(nc);
                for (uint64_t j = 0; j < nc; ++j)
                    e.consumed.push_back(descAt(r.u32()));
                e.sent.clear();
                uint64_t ns = r.u64();
                e.sent.reserve(ns);
                for (uint64_t j = 0; j < ns; ++j)
                    e.sent.push_back(descAt(r.u32()));
                e.undo.clear();
                uint64_t nu = r.u64();
                e.undo.reserve(nu);
                for (uint64_t j = 0; j < nu; ++j) {
                    UndoRec u;
                    u.kind = static_cast<UndoRec::Kind>(r.u8());
                    u.existed = r.b();
                    u.a = r.u32();
                    u.b = r.u64();
                    u.oldVal = r.u64();
                    u.oldTag = r.u64();
                    u.oldWriter = r.u32();
                    u.payloadOff = r.u32();
                    u.payloadLen = r.u32();
                    e.undo.push_back(u);
                }
                r.vec(e.undoPayload);
                e.outputs.clear();
                uint64_t no = r.u64();
                e.outputs.reserve(no);
                for (uint64_t j = 0; j < no; ++j) {
                    uint32_t idx = r.u32();
                    uint64_t val = r.u64();
                    e.outputs.emplace_back(idx, val);
                }
            }
        }
        inFlight.clear();
        uint64_t nif = r.u64();
        for (uint64_t i = 0; i < nif; ++i)
            inFlight.insert(inFlight.end(), r.u64());
        aqSeq = r.u64();
        r.vec(aqComplete);
        if (aqComplete.size() != cfg.numTiles)
            throw SnapshotError("AQ-complete tile count mismatch");
        inFlightTo.clear();
        uint64_t nift = r.u64();
        for (uint64_t i = 0; i < nift; ++i) {
            TaskId task = r.u32();
            uint64_t inst = r.u64();
            uint32_t count = r.u32();
            inFlightTo.emplace(InstKey{task, inst}, count);
        }
        for (auto &pp : parentPred) {
            size_t expect = pp.size();
            r.vec(pp);
            if (pp.size() != expect)
                throw SnapshotError(
                    "parent-predictor shape mismatch");
        }
        r.vec(tileMinTs);
        if (tileMinTs.size() != cfg.numTiles)
            throw SnapshotError("tile-minima count mismatch");
        tileMins.clear();
        for (uint64_t v : tileMinTs)
            tileMins.insert(v);
        gateBlocked.clear();
        uint64_t ngb = r.u64();
        for (uint64_t i = 0; i < ngb; ++i)
            gateBlocked.insert(r.u32());
        prevGateMin = r.u64();
        r.endSection();

        r.section(kSecFunc);
        for (size_t m = 0; m < memData.size(); ++m) {
            r.vec(memData[m]);
            if (memData[m].size() != nl.memories()[m].depth)
                throw SnapshotError("memory depth mismatch");
        }
        r.vec(regState);
        if (regState.size() != nl.regs().size())
            throw SnapshotError("register count mismatch");
        for (size_t t = 0; t < bufMem.size(); ++t) {
            size_t slots = prog.tasks[t].carriedValues.size();
            r.vec(bufMem[t]);
            r.vec(bufMemValid[t]);
            if (bufMem[t].size() != slots ||
                bufMemValid[t].size() != slots)
                throw SnapshotError("buffer-slot shape mismatch");
        }
        for (size_t t = 0; t < filters.size(); ++t) {
            if (r.u64() != prog.tasks[t].pushes.size())
                throw SnapshotError("filter shape mismatch");
            for (auto &fv : filters[t])
                r.vec(fv);
            r.vec(filterValid[t]);
            if (filterValid[t].size() !=
                prog.tasks[t].pushes.size())
                throw SnapshotError("filter-valid shape mismatch");
        }
        for (size_t t = 0; t < lastVals.size(); ++t) {
            size_t slots = prog.tasks[t].directInputs.size();
            r.vec(lastVals[t]);
            r.vec(lastValsValid[t]);
            if (lastVals[t].size() != slots ||
                lastValsValid[t].size() != slots)
                throw SnapshotError("last-value shape mismatch");
        }
        finalOutputs.clear();
        uint64_t nfo = r.u64();
        for (uint64_t i = 0; i < nfo; ++i) {
            uint64_t cycle = r.u64();
            uint32_t idx = r.u32();
            uint64_t val = r.u64();
            finalOutputs.emplace_hint(
                finalOutputs.end(), std::make_pair(cycle, idx), val);
        }
        r.endSection();

        r.section(kSecStats);
        ckpt::restoreStats(r, stats);
        lastSample = r.u64();
        r.vec(tileDispatches);
        r.vec(tileCommits);
        r.vec(tileAborts);
        if (tileDispatches.size() != cfg.numTiles ||
            tileCommits.size() != cfg.numTiles ||
            tileAborts.size() != cfg.numTiles)
            throw SnapshotError("tile-counter count mismatch");
        hot = HotStats{};
        hot.tasksExecuted = r.u64();
        hot.tasksCommitted = r.u64();
        hot.instrs = r.u64();
        hot.descsConsumed = r.u64();
        hot.descsFiltered = r.u64();
        hot.descsSent = r.u64();
        hot.descBytes = r.u64();
        hot.descsArrived = r.u64();
        hot.warDiscarded = r.u64();
        hot.stimulusDescs = r.u64();
        hot.l1dAccesses = r.u64();
        hot.l1iAccesses = r.u64();
        hot.l1iMisses = r.u64();
        hot.l2Accesses = r.u64();
        hot.l2iMisses = r.u64();
        hot.dramAccesses = r.u64();
        hot.dramBytes = r.u64();
        hot.aqSpills = r.u64();
        hot.tcqFullStalls = r.u64();
        hot.mergeEvictions = r.u64();
        hot.commitRounds = r.u64();
        hot.cancelMessages = r.u64();
        hot.aborts = r.u64();
        restoreHist(r, hot.taskLength);
        restoreHist(r, hot.bundleDescs);
        restoreHist(r, hot.abortDistance);
        restoreHist(r, hot.aqDepth);
        restoreHist(r, hot.tcqDepth);
        restoreAccum(r, hot.aqOccupancy);
        restoreAccum(r, hot.tcqOccupancy);
        restoreAccum(r, hot.footprintBytes);
        r.endSection();

        // Per-dispatch scratch: stale stamps must never collide with
        // the resumed epoch counters, and the recycled dispatch
        // buffers start empty (their stale contents were capacity
        // donors only).
        std::fill(localStamp.begin(), localStamp.end(), 0);
        std::fill(recvStamp.begin(), recvStamp.end(), 0);
        recvNodes.clear();
        dispatchBundle = Bundle{};
        dispatchEntry = TcqEntry{};
        frames.clear();   // Regenerated lazily from the stimulus.
        restored = true;
    }

    // =====================================================================
    // Main loop
    // =====================================================================

    RunResult
    run(Stimulus &stimulus, uint64_t design_cycles,
        ckpt::CycleHook *hook, ckpt::Snapshotter &self)
    {
        ASH_PROF_ZONE("run:ash");
        stim = &stimulus;
        // Stamp log output with the simulated chip cycle while the
        // run is in progress.
        LogCycleScope logCycle(
            [](const void *ctx) {
                return static_cast<const Impl *>(ctx)->now;
            },
            this);
        if (restored) {
            // The serialized event heap already holds the bootstrap
            // descriptors and the pending VtRound; re-seeding either
            // would double-inject.
            if (design_cycles != designCycles)
                throw ckpt::SnapshotError(
                    "restored run expects " +
                    std::to_string(designCycles) +
                    " design cycles, got " +
                    std::to_string(design_cycles));
        } else {
            designCycles = design_cycles;
            bootstrap();

            Event vt;
            vt.time = cfg.vtIntervalCycles;
            vt.type = Event::Type::VtRound;
            pushEvent(std::move(vt));
        }

        uint64_t hookCycle = lastGvtCycle;
        uint64_t processed = 0;
        while (!events.empty() && !done) {
            Event ev = events.pop();
            ASH_ASSERT(ev.time >= now, "time went backwards");
            now = ev.time;
            ++processed;
            ASH_ASSERT(processed < 4000000000ull, "runaway simulation");
            // Cooperative cancellation (job deadlines): a TLS load
            // and branch, amortized across 4096 events.
            if ((processed & 4095) == 0)
                guard::pollCancel();
            switch (ev.type) {
              case Event::Type::DescArrive:
                onDescArrive(ev.tile, ev.desc);
                break;
              case Event::Type::CoreFree:
                onCoreFree(ev);
                break;
              case Event::Type::VtRound:
                onVtRound();
                break;
              case Event::Type::Retry:
                trySchedule(ev.tile);
                break;
            }
            if (cfg.selective)
                wakeGateBlocked();
            // Quiescent point: the event is fully applied and the
            // global virtual time just advanced — fire the
            // checkpoint hook with the committed design cycle.
            if (hook && !done && lastGvtCycle > hookCycle) {
                hookCycle = lastGvtCycle;
                hook->onCycle(hookCycle, self);
            }
        }
        ASH_ASSERT(done, "simulation deadlocked at cycle %llu",
                   static_cast<unsigned long long>(now));
        foldHotStats();

        RunResult result;
        result.chipCycles = now;
        result.designCycles = designCycles;

        // Assemble the output trace, carrying skipped cycles forward.
        size_t n_out = nl.outputs().size();
        result.outputs.assign(designCycles,
                              refsim::OutputFrame(n_out, 0));
        for (uint64_t c = 0; c < designCycles; ++c) {
            for (size_t o = 0; o < n_out; ++o) {
                auto it = finalOutputs.find(
                    {c, static_cast<uint32_t>(o)});
                if (it != finalOutputs.end())
                    result.outputs[c][o] = it->second;
                else if (c > 0)
                    result.outputs[c][o] = result.outputs[c - 1][o];
            }
        }

        // Core-cycle breakdown.
        uint64_t total_core_cycles =
            now * cfg.numTiles * cfg.coresPerTile;
        uint64_t busy = busyCommitted + busyAborted + busyUnresolved;
        stats.set("coreCyclesCommitted",
                  busyCommitted + busyUnresolved);
        stats.set("coreCyclesAborted", busyAborted);
        stats.set("coreCyclesIdle",
                  total_core_cycles > busy ? total_core_cycles - busy
                                           : 0);
        stats.set("chipCycles", now);
        uint64_t l1d_miss = 0, l1i_hits = 0;
        for (auto &c : l1d)
            l1d_miss += c->misses();
        for (auto &c : l1i)
            l1i_hits += c->hits();
        stats.set("l1dMisses", l1d_miss);
        stats.set("l1iHits", l1i_hits);
        stats.set("nocFlitHops", noc.flitHops());
        stats.set("nocMessages", noc.messages());

        // Per-tile rollups under hierarchical scoped names; done once
        // here so the hot paths above never touch string keys per
        // tile.
        for (uint32_t t = 0; t < cfg.numTiles; ++t) {
            StatScope tileScope =
                stats.scope("tile" + std::to_string(t));
            tileScope.set("dispatches", tileDispatches[t]);
            tileScope.set("commits", tileCommits[t]);
            tileScope.set("aborts", tileAborts[t]);
            uint64_t tl1d_m = 0, tl1d_h = 0, tl1i_m = 0, tl1i_h = 0;
            for (uint32_t c = 0; c < cfg.coresPerTile; ++c) {
                tl1d_m += coreL1d(t, c).misses();
                tl1d_h += coreL1d(t, c).hits();
                tl1i_m += coreL1i(t, c).misses();
                tl1i_h += coreL1i(t, c).hits();
            }
            StatScope l1dScope = tileScope.scope("l1d");
            l1dScope.set("misses", tl1d_m);
            l1dScope.set("hits", tl1d_h);
            StatScope l1iScope = tileScope.scope("l1i");
            l1iScope.set("misses", tl1i_m);
            l1iScope.set("hits", tl1i_h);
            StatScope l2Scope = tileScope.scope("l2");
            l2Scope.set("misses", l2[t]->misses());
            l2Scope.set("hits", l2[t]->hits());
            l2Scope.set("evictions", l2[t]->evictions());
        }

        result.stats = std::move(stats);
        return result;
    }
};

AshSimulator::AshSimulator(const TaskProgram &prog,
                           const ArchConfig &cfg)
    : _impl(std::make_unique<Impl>(prog, cfg))
{
}

AshSimulator::~AshSimulator() = default;

RunResult
AshSimulator::run(refsim::Stimulus &stimulus, uint64_t design_cycles,
                  ckpt::CycleHook *hook)
{
    return _impl->run(stimulus, design_cycles, hook, *this);
}

void
AshSimulator::save(std::ostream &out) const
{
    ckpt::SnapshotWriter w(out, engineName(),
                           ckpt::designFingerprint(_impl->nl),
                           _impl->configHash());
    _impl->saveState(w);
}

refsim::OutputFrame
AshSimulator::committedFrame(uint64_t cycle) const
{
    const Impl &im = *_impl;
    size_t n_out = im.nl.outputs().size();
    refsim::OutputFrame frame(n_out, 0);
    if (cycle == 0)
        return frame;
    // finalOutputs is keyed (cycle, outIdx) in lexicographic order;
    // a single forward walk up to the requested cycle leaves the
    // latest committed value per output, which carries skipped
    // cycles forward exactly like the end-of-run trace assembly.
    uint64_t last = cycle - 1; // log is 0-based per design cycle
    auto end = im.finalOutputs.upper_bound({last, ~uint32_t(0)});
    for (auto it = im.finalOutputs.begin(); it != end; ++it)
        frame[it->first.second] = it->second;
    return frame;
}

void
AshSimulator::restore(std::istream &in)
{
    ckpt::SnapshotReader r(in);
    r.require(engineName(), ckpt::designFingerprint(_impl->nl),
              _impl->configHash());
    _impl->restoreState(r);
    r.expectEnd();
}

} // namespace ash::core
