/**
 * @file
 * Elaboration: turns a parsed module hierarchy into a flat rtl::Netlist.
 *
 * Works in three phases:
 *  1. Flatten — recursively expand instances and generate-for loops,
 *     binding parameters and building hierarchical signal names.
 *  2. Driver synthesis — resolve each flat signal's driver on demand
 *     (continuous assigns, always_comb blocks, instance port bindings),
 *     lowering expressions and procedural control flow to IR nodes.
 *     Registers break cycles; genuine combinational loops are detected
 *     and reported.
 *  3. Sequential synthesis — process always_ff blocks into register
 *     next-values (mux-join semantics for partial assignment) and
 *     memory write ports with path-condition enables.
 */

#ifndef ASH_VERILOG_ELABORATOR_H
#define ASH_VERILOG_ELABORATOR_H

#include <map>
#include <string>

#include "rtl/Netlist.h"
#include "verilog/Ast.h"

namespace ash::verilog {

/**
 * Elaborate @p top from @p unit into a netlist.
 *
 * @param unit       Parsed modules (all referenced modules must be here).
 * @param top        Name of the top-level module.
 * @param top_params Parameter overrides for the top module.
 */
rtl::Netlist elaborate(const SourceUnit &unit, const std::string &top,
                       const std::map<std::string, int64_t> &top_params =
                           {});

} // namespace ash::verilog

#endif // ASH_VERILOG_ELABORATOR_H
