/**
 * @file
 * Lexer for the Verilog subset. Handles identifiers, sized and unsized
 * integer literals (binary/octal/decimal/hex), all supported operators,
 * and both comment styles. Two-state values only: x/z digits are
 * rejected (documented subset restriction).
 */

#ifndef ASH_VERILOG_LEXER_H
#define ASH_VERILOG_LEXER_H

#include <string>
#include <vector>

#include "verilog/Token.h"

namespace ash::verilog {

/** Tokenize @p source; calls ash::fatal() on lexical errors. */
std::vector<Token> lex(const std::string &source,
                       const std::string &filename = "<input>");

} // namespace ash::verilog

#endif // ASH_VERILOG_LEXER_H
