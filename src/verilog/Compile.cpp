#include "verilog/Compile.h"

#include "rtl/Transform.h"
#include "verilog/Elaborator.h"
#include "verilog/Parser.h"

namespace ash::verilog {

rtl::Netlist
compileVerilog(const std::string &source, const std::string &top,
               const std::map<std::string, int64_t> &params)
{
    SourceUnit unit = parse(source);
    rtl::Netlist raw = elaborate(unit, top, params);
    rtl::Netlist pruned = rtl::pruneDead(raw);
    pruned.validate();
    return pruned;
}

} // namespace ash::verilog
