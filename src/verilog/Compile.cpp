#include "verilog/Compile.h"

#include "prof/Prof.h"
#include "rtl/Transform.h"
#include "verilog/Elaborator.h"
#include "verilog/Parser.h"

namespace ash::verilog {

rtl::Netlist
compileVerilog(const std::string &source, const std::string &top,
               const std::map<std::string, int64_t> &params)
{
    ASH_PROF_ZONE("frontend");
    SourceUnit unit = [&] {
        ASH_PROF_ZONE("parse");
        return parse(source);
    }();
    rtl::Netlist raw = [&] {
        ASH_PROF_ZONE("elaborate");
        return elaborate(unit, top, params);
    }();
    rtl::Netlist pruned = [&] {
        ASH_PROF_ZONE("prune");
        return rtl::pruneDead(raw);
    }();
    pruned.validate();
    return pruned;
}

} // namespace ash::verilog
