#include "verilog/Parser.h"

#include <cstdarg>
#include <cstdio>
#include <optional>

#include "common/Logging.h"
#include "verilog/Diag.h"
#include "verilog/Lexer.h"

namespace ash::verilog {

ExprPtr
cloneExpr(const Expr &e)
{
    auto out = std::make_unique<Expr>();
    out->kind = e.kind;
    out->op = e.op;
    out->text = e.text;
    out->value = e.value;
    out->width = e.width;
    out->sized = e.sized;
    out->line = e.line;
    for (const auto &child : e.children)
        out->children.push_back(cloneExpr(*child));
    return out;
}

namespace {

/** Recursive-descent parser state. */
class Parser
{
  public:
    Parser(std::vector<Token> tokens, const std::string &source,
           std::string filename)
        : _toks(std::move(tokens)), _src(source),
          _file(std::move(filename))
    {
    }

    SourceUnit
    parseUnit()
    {
        SourceUnit unit;
        while (!at(Tok::Eof)) {
            expectKeyword("module");
            unit.modules.push_back(parseModule());
        }
        return unit;
    }

  private:
    // --- token helpers -------------------------------------------------

    const Token &peek(size_t ahead = 0) const
    {
        size_t i = _pos + ahead;
        return i < _toks.size() ? _toks[i] : _toks.back();
    }
    bool at(Tok kind) const { return peek().kind == kind; }
    bool
    atKeyword(const char *kw) const
    {
        return at(Tok::Ident) && peek().text == kw;
    }
    const Token &
    advance()
    {
        const Token &t = _toks[_pos];
        if (_pos + 1 < _toks.size())
            ++_pos;
        return t;
    }
    bool
    accept(Tok kind)
    {
        if (!at(kind))
            return false;
        advance();
        return true;
    }
    bool
    acceptKeyword(const char *kw)
    {
        if (!atKeyword(kw))
            return false;
        advance();
        return true;
    }
    /**
     * Positioned syntax rejection: throws ParseError carrying @p t's
     * line/column and a caret-annotated snippet of that source line.
     */
    [[noreturn]] void
    errorAt(const Token &t, const char *fmt, ...) const
        __attribute__((format(printf, 3, 4)))
    {
        va_list args;
        va_start(args, fmt);
        char buf[512];
        vsnprintf(buf, sizeof(buf), fmt, args);
        va_end(args);
        throwParseError(_src, SourcePos{_file, t.line, t.col}, buf);
    }

    /** Printable spelling of the current token, for diagnostics. */
    const char *
    peekSpelling() const
    {
        return at(Tok::Ident) ? peek().text.c_str()
                              : tokName(peek().kind);
    }

    const Token &
    expect(Tok kind, const char *context)
    {
        if (!at(kind)) {
            errorAt(peek(), "expected '%s' %s, got '%s'",
                    tokName(kind), context, peekSpelling());
        }
        return advance();
    }
    void
    expectKeyword(const char *kw)
    {
        if (!atKeyword(kw)) {
            errorAt(peek(), "expected '%s', got '%s'", kw,
                    peekSpelling());
        }
        advance();
    }
    std::string
    expectIdent(const char *context)
    {
        return expect(Tok::Ident, context).text;
    }

    [[noreturn]] void
    syntaxError(const char *what)
    {
        errorAt(peek(), "%s (near '%s')", what, peekSpelling());
    }

    // --- expressions ----------------------------------------------------

    ExprPtr
    makeExpr(Expr::Kind kind)
    {
        auto e = std::make_unique<Expr>();
        e->kind = kind;
        e->line = peek().line;
        return e;
    }

    ExprPtr
    parsePrimary()
    {
        if (at(Tok::Number)) {
            const Token &t = advance();
            auto e = makeExpr(Expr::Kind::Number);
            e->value = t.value;
            e->width = t.width;
            e->sized = t.sized;
            e->line = t.line;
            return e;
        }
        if (accept(Tok::LParen)) {
            ExprPtr e = parseExpr();
            expect(Tok::RParen, "to close parenthesized expression");
            return e;
        }
        if (at(Tok::LBrace))
            return parseConcat();
        if (at(Tok::Ident)) {
            const Token &t = advance();
            std::string name = t.text;
            if (name == "$signed" || name == "$unsigned") {
                // Pass-through: the subset is unsigned-only; $signed is
                // rejected to avoid silent misinterpretation.
                errorAt(t, "%s is not supported (unsigned-only subset)",
                        name.c_str());
            }
            if (!at(Tok::LBracket)) {
                auto e = makeExpr(Expr::Kind::Ident);
                e->text = name;
                e->line = t.line;
                return e;
            }
            advance(); // '['
            ExprPtr first = parseExpr();
            if (accept(Tok::Colon)) {
                ExprPtr lsb = parseExpr();
                expect(Tok::RBracket, "to close part select");
                auto e = makeExpr(Expr::Kind::RangeSel);
                e->text = name;
                e->line = t.line;
                e->children.push_back(std::move(first));
                e->children.push_back(std::move(lsb));
                return e;
            }
            if (accept(Tok::PlusColon)) {
                ExprPtr width = parseExpr();
                expect(Tok::RBracket, "to close indexed part select");
                auto e = makeExpr(Expr::Kind::PartSel);
                e->text = name;
                e->line = t.line;
                e->children.push_back(std::move(first));
                e->children.push_back(std::move(width));
                return e;
            }
            expect(Tok::RBracket, "to close index");
            auto e = makeExpr(Expr::Kind::Index);
            e->text = name;
            e->line = t.line;
            e->children.push_back(std::move(first));
            return e;
        }
        syntaxError("expected expression");
    }

    ExprPtr
    parseConcat()
    {
        int line = peek().line;
        expect(Tok::LBrace, "to open concatenation");
        ExprPtr first = parseExpr();
        if (at(Tok::LBrace)) {
            // Replication {N{...}}.
            ExprPtr inner = parseConcat();
            expect(Tok::RBrace, "to close replication");
            auto e = makeExpr(Expr::Kind::Repl);
            e->line = line;
            e->children.push_back(std::move(first));
            e->children.push_back(std::move(inner));
            return e;
        }
        auto e = makeExpr(Expr::Kind::Concat);
        e->line = line;
        e->children.push_back(std::move(first));
        while (accept(Tok::Comma))
            e->children.push_back(parseExpr());
        expect(Tok::RBrace, "to close concatenation");
        return e;
    }

    ExprPtr
    parseUnary()
    {
        struct UnaryOp { Tok tok; const char *spelling; };
        static const UnaryOp ops[] = {
            {Tok::Bang, "!"}, {Tok::Tilde, "~"}, {Tok::Minus, "-"},
            {Tok::Plus, "+"}, {Tok::Amp, "&"}, {Tok::Pipe, "|"},
            {Tok::Caret, "^"}, {Tok::TildeAmp, "~&"},
            {Tok::TildePipe, "~|"}, {Tok::TildeCaret, "~^"},
        };
        for (const UnaryOp &op : ops) {
            if (at(op.tok)) {
                int line = peek().line;
                advance();
                auto e = makeExpr(Expr::Kind::Unary);
                e->op = op.spelling;
                e->line = line;
                e->children.push_back(parseUnary());
                return e;
            }
        }
        return parsePrimary();
    }

    /** Binary operator precedence; higher binds tighter. */
    static int
    binaryPrec(Tok kind)
    {
        switch (kind) {
          case Tok::Star: case Tok::Slash: case Tok::Percent: return 10;
          case Tok::Plus: case Tok::Minus: return 9;
          case Tok::Shl: case Tok::Shr: case Tok::AShr: return 8;
          case Tok::Lt: case Tok::LtEq: case Tok::Gt: case Tok::Ge:
            return 7;
          case Tok::EqEq: case Tok::NotEq: return 6;
          case Tok::Amp: return 5;
          case Tok::Caret: case Tok::TildeCaret: return 4;
          case Tok::Pipe: return 3;
          case Tok::AmpAmp: return 2;
          case Tok::PipePipe: return 1;
          default: return 0;
        }
    }

    static const char *
    binarySpelling(Tok kind)
    {
        switch (kind) {
          case Tok::Star: return "*";
          case Tok::Slash: return "/";
          case Tok::Percent: return "%";
          case Tok::Plus: return "+";
          case Tok::Minus: return "-";
          case Tok::Shl: return "<<";
          case Tok::Shr: return ">>";
          case Tok::AShr: return ">>>";
          case Tok::Lt: return "<";
          case Tok::LtEq: return "<=";
          case Tok::Gt: return ">";
          case Tok::Ge: return ">=";
          case Tok::EqEq: return "==";
          case Tok::NotEq: return "!=";
          case Tok::Amp: return "&";
          case Tok::Caret: return "^";
          case Tok::TildeCaret: return "~^";
          case Tok::Pipe: return "|";
          case Tok::AmpAmp: return "&&";
          case Tok::PipePipe: return "||";
          default: return "?";
        }
    }

    ExprPtr
    parseBinary(int min_prec)
    {
        ExprPtr lhs = parseUnary();
        while (true) {
            int prec = binaryPrec(peek().kind);
            if (prec == 0 || prec < min_prec)
                break;
            Tok op = peek().kind;
            int line = peek().line;
            advance();
            ExprPtr rhs = parseBinary(prec + 1);
            auto e = makeExpr(Expr::Kind::Binary);
            e->op = binarySpelling(op);
            e->line = line;
            e->children.push_back(std::move(lhs));
            e->children.push_back(std::move(rhs));
            lhs = std::move(e);
        }
        return lhs;
    }

    ExprPtr
    parseExpr()
    {
        ExprPtr cond = parseBinary(1);
        if (!accept(Tok::Question))
            return cond;
        ExprPtr then_val = parseExpr();
        expect(Tok::Colon, "in ternary expression");
        ExprPtr else_val = parseExpr();
        auto e = makeExpr(Expr::Kind::Ternary);
        e->children.push_back(std::move(cond));
        e->children.push_back(std::move(then_val));
        e->children.push_back(std::move(else_val));
        return e;
    }

    // --- statements -----------------------------------------------------

    LValue
    parseLValue()
    {
        LValue lv;
        lv.name = expectIdent("as assignment target");
        if (accept(Tok::LBracket)) {
            ExprPtr first = parseExpr();
            if (accept(Tok::Colon)) {
                lv.rangeMsb = std::move(first);
                lv.rangeLsb = parseExpr();
            } else if (accept(Tok::PlusColon)) {
                lv.partLo = std::move(first);
                lv.partWidth = parseExpr();
            } else {
                lv.index = std::move(first);
            }
            expect(Tok::RBracket, "to close target select");
        }
        return lv;
    }

    StmtPtr
    makeStmt(Stmt::Kind kind)
    {
        auto s = std::make_unique<Stmt>();
        s->kind = kind;
        s->line = peek().line;
        return s;
    }

    StmtPtr
    parseStmt()
    {
        if (acceptKeyword("begin")) {
            auto s = makeStmt(Stmt::Kind::Block);
            if (accept(Tok::Colon))
                expectIdent("as block label");
            while (!atKeyword("end"))
                s->stmts.push_back(parseStmt());
            advance(); // end
            return s;
        }
        if (acceptKeyword("if")) {
            auto s = makeStmt(Stmt::Kind::If);
            expect(Tok::LParen, "after 'if'");
            s->cond = parseExpr();
            expect(Tok::RParen, "after if condition");
            s->thenStmt = parseStmt();
            if (acceptKeyword("else"))
                s->elseStmt = parseStmt();
            return s;
        }
        if (atKeyword("case") || atKeyword("casez")) {
            if (atKeyword("casez"))
                errorAt(peek(),
                        "casez is not supported (two-state subset)");
            advance();
            auto s = makeStmt(Stmt::Kind::Case);
            expect(Tok::LParen, "after 'case'");
            s->cond = parseExpr();
            expect(Tok::RParen, "after case selector");
            while (!atKeyword("endcase")) {
                if (acceptKeyword("default")) {
                    accept(Tok::Colon);
                    if (s->defaultStmt)
                        errorAt(peek(), "duplicate default case");
                    s->defaultStmt = parseStmt();
                    continue;
                }
                Stmt::CaseItem item;
                item.labels.push_back(parseExpr());
                while (accept(Tok::Comma))
                    item.labels.push_back(parseExpr());
                expect(Tok::Colon, "after case label");
                item.body = parseStmt();
                s->caseItems.push_back(std::move(item));
            }
            advance(); // endcase
            return s;
        }
        if (acceptKeyword("for")) {
            auto s = makeStmt(Stmt::Kind::For);
            expect(Tok::LParen, "after 'for'");
            // Optional 'int'/'integer' loop-var declaration.
            if (atKeyword("int") || atKeyword("integer"))
                advance();
            s->loopVar = expectIdent("as loop variable");
            expect(Tok::Assign, "in for initializer");
            s->forInit = parseExpr();
            expect(Tok::Semi, "after for initializer");
            s->forCond = parseExpr();
            expect(Tok::Semi, "after for condition");
            std::string step_var = expectIdent("in for step");
            if (step_var != s->loopVar)
                errorAt(peek(),
                        "for step must assign the loop variable");
            expect(Tok::Assign, "in for step");
            s->forStep = parseExpr();
            expect(Tok::RParen, "after for header");
            s->forBody = parseStmt();
            return s;
        }
        // Assignment statement.
        auto s = makeStmt(Stmt::Kind::Assign);
        s->lhs = parseLValue();
        if (accept(Tok::LtEq)) {
            s->nonblocking = true;
        } else {
            expect(Tok::Assign, "in assignment");
        }
        s->rhs = parseExpr();
        expect(Tok::Semi, "after assignment");
        return s;
    }

    // --- declarations and module items -----------------------------------

    /** Parse "[msb:lsb]" if present into @p decl. */
    void
    parsePackedRange(Decl &decl)
    {
        if (accept(Tok::LBracket)) {
            decl.msb = parseExpr();
            expect(Tok::Colon, "in packed range");
            decl.lsb = parseExpr();
            expect(Tok::RBracket, "to close packed range");
        }
    }

    NetKind
    parseNetKind()
    {
        if (acceptKeyword("wire"))
            return NetKind::Wire;
        if (acceptKeyword("reg"))
            return NetKind::Reg;
        if (acceptKeyword("logic"))
            return NetKind::Logic;
        if (acceptKeyword("integer") || acceptKeyword("int"))
            return NetKind::Integer;
        if (acceptKeyword("genvar"))
            return NetKind::Genvar;
        syntaxError("expected net kind");
    }

    /** Parse declarations after the kind keyword has been consumed. */
    std::vector<Decl>
    parseDeclBodies(NetKind kind)
    {
        std::vector<Decl> decls;
        Decl proto;
        proto.kind = kind;
        proto.line = peek().line;
        parsePackedRange(proto);
        while (true) {
            Decl d;
            d.kind = kind;
            d.line = peek().line;
            if (proto.msb) {
                d.msb = cloneExpr(*proto.msb);
                d.lsb = cloneExpr(*proto.lsb);
            }
            d.name = expectIdent("in declaration");
            if (accept(Tok::LBracket)) {
                d.memLeft = parseExpr();
                expect(Tok::Colon, "in unpacked range");
                d.memRight = parseExpr();
                expect(Tok::RBracket, "to close unpacked range");
            }
            if (accept(Tok::Assign))
                d.init = parseExpr();
            decls.push_back(std::move(d));
            if (!accept(Tok::Comma))
                break;
        }
        expect(Tok::Semi, "after declaration");
        return decls;
    }

    ParamDecl
    parseParamBody(bool local)
    {
        ParamDecl p;
        p.local = local;
        p.line = peek().line;
        // Optional type/range noise: parameter [31:0] N = 4; or
        // parameter int N = 4;
        if (atKeyword("int") || atKeyword("integer"))
            advance();
        if (accept(Tok::LBracket)) {
            parseExpr();
            expect(Tok::Colon, "in parameter range");
            parseExpr();
            expect(Tok::RBracket, "to close parameter range");
        }
        p.name = expectIdent("as parameter name");
        expect(Tok::Assign, "in parameter declaration");
        p.value = parseExpr();
        return p;
    }

    ItemPtr
    makeItem(Item::Kind kind)
    {
        auto item = std::make_unique<Item>();
        item->kind = kind;
        item->line = peek().line;
        return item;
    }

    ItemPtr
    parseAlways()
    {
        bool is_ff = false;
        bool is_comb = false;
        std::string clock;
        if (acceptKeyword("always_comb")) {
            is_comb = true;
        } else if (acceptKeyword("always_ff")) {
            is_ff = true;
        } else {
            expectKeyword("always");
        }
        if (!is_comb) {
            if (accept(Tok::At)) {
                expect(Tok::LParen, "after '@'");
                if (accept(Tok::Star)) {
                    is_comb = true;
                } else if (acceptKeyword("posedge")) {
                    is_ff = true;
                    clock = expectIdent("as clock name");
                } else if (acceptKeyword("negedge")) {
                    errorAt(peek(),
                            "negedge clocks are not supported");
                } else {
                    errorAt(peek(), "only @(*) and @(posedge clk) "
                                    "sensitivity lists are supported");
                }
                expect(Tok::RParen, "to close sensitivity list");
            } else if (is_ff) {
                expect(Tok::At, "after always_ff");
            } else {
                errorAt(peek(),
                        "plain 'always' needs a sensitivity list");
            }
        }
        auto item = makeItem(is_ff ? Item::Kind::AlwaysFF
                                   : Item::Kind::AlwaysComb);
        item->clockName = clock;
        item->body = parseStmt();
        return item;
    }

    ItemPtr
    parseInstance(std::string module_name)
    {
        auto item = makeItem(Item::Kind::Instance);
        item->moduleName = std::move(module_name);
        if (accept(Tok::Hash)) {
            expect(Tok::LParen, "after '#'");
            if (at(Tok::Dot)) {
                while (accept(Tok::Dot)) {
                    std::string pname = expectIdent("as parameter name");
                    expect(Tok::LParen, "in parameter override");
                    item->paramOverrides.emplace_back(pname, parseExpr());
                    expect(Tok::RParen, "to close parameter override");
                    if (!accept(Tok::Comma))
                        break;
                }
            } else {
                // Positional parameter overrides.
                size_t index = 0;
                do {
                    item->paramOverrides.emplace_back(
                        "#" + std::to_string(index++), parseExpr());
                } while (accept(Tok::Comma));
            }
            expect(Tok::RParen, "to close parameter overrides");
        }
        item->instName = expectIdent("as instance name");
        expect(Tok::LParen, "to open port connections");
        if (at(Tok::Dot)) {
            while (accept(Tok::Dot)) {
                std::string pname = expectIdent("as port name");
                expect(Tok::LParen, "in port connection");
                ExprPtr conn;
                if (!at(Tok::RParen))
                    conn = parseExpr();
                expect(Tok::RParen, "to close port connection");
                item->connections.emplace_back(pname, std::move(conn));
                if (!accept(Tok::Comma))
                    break;
            }
        } else if (!at(Tok::RParen)) {
            item->positionalConns = true;
            size_t index = 0;
            do {
                item->connections.emplace_back(
                    "#" + std::to_string(index++), parseExpr());
            } while (accept(Tok::Comma));
        }
        expect(Tok::RParen, "to close port connections");
        expect(Tok::Semi, "after instance");
        return item;
    }

    ItemPtr
    parseGenerateFor()
    {
        auto item = makeItem(Item::Kind::GenerateFor);
        expectKeyword("for");
        expect(Tok::LParen, "after 'for'");
        if (atKeyword("genvar"))
            advance();
        item->genVar = expectIdent("as genvar");
        expect(Tok::Assign, "in generate-for initializer");
        item->genInit = parseExpr();
        expect(Tok::Semi, "after generate-for initializer");
        item->genCond = parseExpr();
        expect(Tok::Semi, "after generate-for condition");
        std::string step_var = expectIdent("in generate-for step");
        if (step_var != item->genVar)
            errorAt(peek(),
                    "generate-for step must assign the genvar");
        expect(Tok::Assign, "in generate-for step");
        item->genStep = parseExpr();
        expect(Tok::RParen, "after generate-for header");
        expectKeyword("begin");
        if (accept(Tok::Colon))
            item->genLabel = expectIdent("as generate label");
        while (!atKeyword("end"))
            item->genBody.push_back(parseItem());
        advance(); // end
        return item;
    }

    ItemPtr
    parseItem()
    {
        if (atKeyword("wire") || atKeyword("reg") || atKeyword("logic") ||
            atKeyword("integer") || atKeyword("int") ||
            atKeyword("genvar")) {
            auto item = makeItem(Item::Kind::Decl);
            NetKind kind = parseNetKind();
            item->decls = parseDeclBodies(kind);
            return item;
        }
        if (atKeyword("parameter") || atKeyword("localparam")) {
            bool local = atKeyword("localparam");
            advance();
            auto item = makeItem(Item::Kind::Param);
            item->param = parseParamBody(local);
            expect(Tok::Semi, "after parameter");
            return item;
        }
        if (acceptKeyword("assign")) {
            auto item = makeItem(Item::Kind::Assign);
            item->assignLhs = parseLValue();
            expect(Tok::Assign, "in continuous assign");
            item->assignRhs = parseExpr();
            expect(Tok::Semi, "after continuous assign");
            return item;
        }
        if (atKeyword("always") || atKeyword("always_comb") ||
            atKeyword("always_ff")) {
            return parseAlways();
        }
        if (acceptKeyword("generate")) {
            ItemPtr item = parseGenerateFor();
            expectKeyword("endgenerate");
            return item;
        }
        if (atKeyword("for"))
            return parseGenerateFor();
        if (atKeyword("initial"))
            errorAt(peek(), "initial blocks are not supported; use "
                            "case tables for ROMs");
        if (at(Tok::Ident)) {
            std::string name = advance().text;
            return parseInstance(std::move(name));
        }
        syntaxError("expected module item");
    }

    Module
    parseModule()
    {
        Module mod;
        mod.line = peek().line;
        mod.name = expectIdent("as module name");
        if (accept(Tok::Hash)) {
            expect(Tok::LParen, "after '#'");
            while (!at(Tok::RParen)) {
                bool local = false;
                if (acceptKeyword("parameter")) {
                    // fine
                } else if (acceptKeyword("localparam")) {
                    local = true;
                }
                mod.params.push_back(parseParamBody(local));
                if (!accept(Tok::Comma))
                    break;
            }
            expect(Tok::RParen, "to close parameter list");
        }
        expect(Tok::LParen, "to open port list");
        PortDir dir = PortDir::Input;
        NetKind kind = NetKind::Wire;
        bool first = true;
        while (!at(Tok::RParen)) {
            bool explicit_dir = false;
            if (acceptKeyword("input")) {
                dir = PortDir::Input;
                explicit_dir = true;
            } else if (acceptKeyword("output")) {
                dir = PortDir::Output;
                explicit_dir = true;
            } else if (first) {
                errorAt(peek(),
                        "ANSI-style port lists are required");
            }
            if (explicit_dir) {
                kind = NetKind::Wire;
                if (atKeyword("wire") || atKeyword("reg") ||
                    atKeyword("logic"))
                    kind = parseNetKind();
            }
            Port port;
            port.dir = dir;
            port.decl.kind = kind;
            port.decl.line = peek().line;
            if (explicit_dir)
                parsePackedRange(port.decl);
            else if (!mod.ports.empty() && mod.ports.back().decl.msb) {
                port.decl.msb = cloneExpr(*mod.ports.back().decl.msb);
                port.decl.lsb = cloneExpr(*mod.ports.back().decl.lsb);
            }
            port.decl.name = expectIdent("as port name");
            mod.ports.push_back(std::move(port));
            first = false;
            if (!accept(Tok::Comma))
                break;
        }
        expect(Tok::RParen, "to close port list");
        expect(Tok::Semi, "after module header");
        while (!atKeyword("endmodule"))
            mod.items.push_back(parseItem());
        advance(); // endmodule
        return mod;
    }

    std::vector<Token> _toks;
    const std::string &_src;  ///< Original text, for caret snippets.
    std::string _file;
    size_t _pos = 0;
};

} // namespace

SourceUnit
parse(const std::string &source, const std::string &filename)
{
    Parser parser(lex(source, filename), source, filename);
    return parser.parseUnit();
}

} // namespace ash::verilog
