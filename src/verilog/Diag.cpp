#include "verilog/Diag.h"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace ash::verilog {

namespace {

/** The text of 1-based line @p line of @p source, sans newline. */
std::string
sourceLine(const std::string &source, int line)
{
    if (line <= 0)
        return "";
    size_t pos = 0;
    for (int i = 1; i < line; ++i) {
        pos = source.find('\n', pos);
        if (pos == std::string::npos)
            return "";
        ++pos;
    }
    size_t end = source.find('\n', pos);
    return source.substr(
        pos, end == std::string::npos ? std::string::npos : end - pos);
}

} // namespace

void
throwParseError(const std::string &source, SourcePos pos,
                const std::string &message)
{
    std::string diag = pos.file + ":" + std::to_string(pos.line);
    if (pos.col > 0)
        diag += ":" + std::to_string(pos.col);
    diag += ": " + message;

    std::string text = sourceLine(source, pos.line);
    if (!text.empty() && text.size() < 400) {
        diag += "\n    " + text;
        if (pos.col > 0 &&
            static_cast<size_t>(pos.col) <= text.size() + 1) {
            diag += "\n    ";
            for (int i = 1; i < pos.col; ++i)
                // Tabs must advance the caret the way they advanced
                // the echoed source line, or the caret drifts.
                diag += text[i - 1] == '\t' ? '\t' : ' ';
            diag += '^';
        }
    }
    throw ParseError(std::move(pos), message, diag);
}

void
parseErrorf(const std::string &source, SourcePos pos, const char *fmt,
            ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    int len = vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::vector<char> buf(len > 0 ? len + 1 : 1, '\0');
    if (len > 0)
        vsnprintf(buf.data(), buf.size(), fmt, args);
    va_end(args);
    throwParseError(source, std::move(pos),
                    std::string(buf.data()));
}

} // namespace ash::verilog
