/**
 * @file
 * One-call Verilog-to-netlist driver: lex, parse, elaborate, prune.
 * This is the frontend half of the ASH compiler (Fig 7's "Verilator
 * IR" stage); the backend passes live in src/core/compiler.
 */

#ifndef ASH_VERILOG_COMPILE_H
#define ASH_VERILOG_COMPILE_H

#include <map>
#include <string>

#include "rtl/Netlist.h"

namespace ash::verilog {

/**
 * Compile Verilog source text to a flat, validated, pruned netlist.
 *
 * @param source Verilog source (may contain multiple modules).
 * @param top    Top-level module name.
 * @param params Parameter overrides for the top module.
 */
rtl::Netlist compileVerilog(
    const std::string &source, const std::string &top,
    const std::map<std::string, int64_t> &params = {});

} // namespace ash::verilog

#endif // ASH_VERILOG_COMPILE_H
