#include "verilog/Lexer.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

#include "common/BitUtils.h"
#include "common/Logging.h"
#include "verilog/Diag.h"

namespace ash::verilog {

const char *
tokName(Tok kind)
{
    switch (kind) {
      case Tok::Eof: return "end of file";
      case Tok::Ident: return "identifier";
      case Tok::Number: return "number";
      case Tok::LParen: return "(";
      case Tok::RParen: return ")";
      case Tok::LBracket: return "[";
      case Tok::RBracket: return "]";
      case Tok::LBrace: return "{";
      case Tok::RBrace: return "}";
      case Tok::Semi: return ";";
      case Tok::Comma: return ",";
      case Tok::Colon: return ":";
      case Tok::Dot: return ".";
      case Tok::Hash: return "#";
      case Tok::At: return "@";
      case Tok::Question: return "?";
      case Tok::Assign: return "=";
      case Tok::Plus: return "+";
      case Tok::Minus: return "-";
      case Tok::Star: return "*";
      case Tok::Slash: return "/";
      case Tok::Percent: return "%";
      case Tok::Amp: return "&";
      case Tok::Pipe: return "|";
      case Tok::Caret: return "^";
      case Tok::Tilde: return "~";
      case Tok::AmpAmp: return "&&";
      case Tok::PipePipe: return "||";
      case Tok::Bang: return "!";
      case Tok::Lt: return "<";
      case Tok::Gt: return ">";
      case Tok::Ge: return ">=";
      case Tok::EqEq: return "==";
      case Tok::NotEq: return "!=";
      case Tok::Shl: return "<<";
      case Tok::Shr: return ">>";
      case Tok::AShr: return ">>>";
      case Tok::LtEq: return "<=";
      case Tok::PlusColon: return "+:";
      case Tok::TildeAmp: return "~&";
      case Tok::TildePipe: return "~|";
      case Tok::TildeCaret: return "~^";
    }
    return "?";
}

namespace {

struct Cursor
{
    const std::string &src;
    const std::string &file;
    size_t pos = 0;
    int line = 1;
    size_t lineStart = 0;    ///< Offset of the current line's start.

    bool done() const { return pos >= src.size(); }
    char peek(size_t ahead = 0) const
    {
        return pos + ahead < src.size() ? src[pos + ahead] : '\0';
    }
    char
    advance()
    {
        char c = src[pos++];
        if (c == '\n') {
            ++line;
            lineStart = pos;
        }
        return c;
    }
    int col() const { return static_cast<int>(pos - lineStart) + 1; }
};

/** Positioned, caret-annotated lexer rejection (a ParseError). */
[[noreturn]] void
lexError(const Cursor &cur, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

[[noreturn]] void
lexError(const Cursor &cur, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    char buf[512];
    vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    throwParseError(cur.src, SourcePos{cur.file, cur.line, cur.col()},
                    buf);
}

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == '$';
}

bool
isIdentChar(char c)
{
    return isIdentStart(c) || std::isdigit(static_cast<unsigned char>(c));
}

unsigned
digitValue(char c, unsigned base, Cursor &cur)
{
    unsigned v;
    if (c >= '0' && c <= '9')
        v = static_cast<unsigned>(c - '0');
    else if (c >= 'a' && c <= 'f')
        v = static_cast<unsigned>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F')
        v = static_cast<unsigned>(c - 'A' + 10);
    else if (c == 'x' || c == 'X' || c == 'z' || c == 'Z' || c == '?')
        lexError(cur, "x/z digits are not supported (two-state subset)");
    else
        lexError(cur, "invalid digit '%c'", c);
    if (v >= base)
        lexError(cur, "digit '%c' out of range for base %u", c, base);
    return v;
}

/** Lex digits (underscores allowed) in @p base into a 64-bit value. */
uint64_t
lexDigits(Cursor &cur, unsigned base)
{
    uint64_t value = 0;
    bool any = false;
    while (!cur.done()) {
        char c = cur.peek();
        if (c == '_') {
            cur.advance();
            continue;
        }
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '?')
            break;
        value = value * base + digitValue(c, base, cur);
        cur.advance();
        any = true;
    }
    if (!any)
        lexError(cur, "expected digits");
    return value;
}

} // namespace

std::vector<Token>
lex(const std::string &source, const std::string &filename)
{
    Cursor cur{source, filename};
    std::vector<Token> out;

    // Start position of the token being lexed (set before consuming).
    int tok_line = 1;
    int tok_col = 1;

    auto push = [&](Tok kind) {
        Token t;
        t.kind = kind;
        t.line = tok_line;
        t.col = tok_col;
        out.push_back(std::move(t));
    };

    while (!cur.done()) {
        char c = cur.peek();
        if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
            cur.advance();
            continue;
        }
        if (c == '/' && cur.peek(1) == '/') {
            while (!cur.done() && cur.peek() != '\n')
                cur.advance();
            continue;
        }
        if (c == '/' && cur.peek(1) == '*') {
            cur.advance();
            cur.advance();
            while (!cur.done() &&
                   !(cur.peek() == '*' && cur.peek(1) == '/'))
                cur.advance();
            if (cur.done())
                lexError(cur, "unterminated block comment");
            cur.advance();
            cur.advance();
            continue;
        }
        if (c == '`') {
            // Preprocessor directives: skip the rest of the line
            // (`timescale, `default_nettype). Macros are unsupported.
            while (!cur.done() && cur.peek() != '\n')
                cur.advance();
            continue;
        }

        tok_line = cur.line;
        tok_col = cur.col();
        if (isIdentStart(c)) {
            std::string text;
            while (!cur.done() && isIdentChar(cur.peek()))
                text.push_back(cur.advance());
            Token t;
            t.kind = Tok::Ident;
            t.text = std::move(text);
            t.line = tok_line;
            t.col = tok_col;
            out.push_back(std::move(t));
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) || c == '\'') {
            Token t;
            t.kind = Tok::Number;
            t.line = tok_line;
            t.col = tok_col;
            uint64_t prefix = 0;
            bool have_prefix = false;
            if (std::isdigit(static_cast<unsigned char>(c))) {
                prefix = lexDigits(cur, 10);
                have_prefix = true;
            }
            if (cur.peek() == '\'') {
                cur.advance();
                char base_char = cur.peek();
                if (base_char == 's' || base_char == 'S') {
                    cur.advance();
                    base_char = cur.peek();
                }
                unsigned base;
                switch (base_char) {
                  case 'b': case 'B': base = 2; break;
                  case 'o': case 'O': base = 8; break;
                  case 'd': case 'D': base = 10; break;
                  case 'h': case 'H': base = 16; break;
                  default:
                    lexError(cur, "invalid literal base '%c'",
                             base_char);
                }
                cur.advance();
                t.value = lexDigits(cur, base);
                if (have_prefix) {
                    if (prefix == 0 || prefix > maxSignalWidth)
                        lexError(cur,
                                 "literal width %llu out of range "
                                 "(1..64)",
                                 static_cast<unsigned long long>(
                                     prefix));
                    t.width = static_cast<unsigned>(prefix);
                    t.sized = true;
                    t.value = truncate(t.value, t.width);
                }
            } else {
                t.value = prefix;
            }
            out.push_back(std::move(t));
            continue;
        }

        cur.advance();
        switch (c) {
          case '(': push(Tok::LParen); break;
          case ')': push(Tok::RParen); break;
          case '[': push(Tok::LBracket); break;
          case ']': push(Tok::RBracket); break;
          case '{': push(Tok::LBrace); break;
          case '}': push(Tok::RBrace); break;
          case ';': push(Tok::Semi); break;
          case ',': push(Tok::Comma); break;
          case ':': push(Tok::Colon); break;
          case '.': push(Tok::Dot); break;
          case '#': push(Tok::Hash); break;
          case '@': push(Tok::At); break;
          case '?': push(Tok::Question); break;
          case '+':
            if (cur.peek() == ':') {
                cur.advance();
                push(Tok::PlusColon);
            } else {
                push(Tok::Plus);
            }
            break;
          case '-': push(Tok::Minus); break;
          case '*': push(Tok::Star); break;
          case '/': push(Tok::Slash); break;
          case '%': push(Tok::Percent); break;
          case '~':
            if (cur.peek() == '&') {
                cur.advance();
                push(Tok::TildeAmp);
            } else if (cur.peek() == '|') {
                cur.advance();
                push(Tok::TildePipe);
            } else if (cur.peek() == '^') {
                cur.advance();
                push(Tok::TildeCaret);
            } else {
                push(Tok::Tilde);
            }
            break;
          case '^':
            if (cur.peek() == '~') {
                cur.advance();
                push(Tok::TildeCaret);
            } else {
                push(Tok::Caret);
            }
            break;
          case '&':
            if (cur.peek() == '&') {
                cur.advance();
                push(Tok::AmpAmp);
            } else {
                push(Tok::Amp);
            }
            break;
          case '|':
            if (cur.peek() == '|') {
                cur.advance();
                push(Tok::PipePipe);
            } else {
                push(Tok::Pipe);
            }
            break;
          case '!':
            if (cur.peek() == '=') {
                cur.advance();
                push(Tok::NotEq);
            } else {
                push(Tok::Bang);
            }
            break;
          case '=':
            if (cur.peek() == '=') {
                cur.advance();
                push(Tok::EqEq);
            } else {
                push(Tok::Assign);
            }
            break;
          case '<':
            if (cur.peek() == '<') {
                cur.advance();
                push(Tok::Shl);
            } else if (cur.peek() == '=') {
                cur.advance();
                push(Tok::LtEq);
            } else {
                push(Tok::Lt);
            }
            break;
          case '>':
            if (cur.peek() == '>' && cur.peek(1) == '>') {
                cur.advance();
                cur.advance();
                push(Tok::AShr);
            } else if (cur.peek() == '>') {
                cur.advance();
                push(Tok::Shr);
            } else if (cur.peek() == '=') {
                cur.advance();
                push(Tok::Ge);
            } else {
                push(Tok::Gt);
            }
            break;
          default:
            lexError(cur, "unexpected character '%c'", c);
        }
    }

    Token eof;
    eof.kind = Tok::Eof;
    eof.line = cur.line;
    eof.col = cur.col();
    out.push_back(std::move(eof));
    return out;
}

} // namespace ash::verilog
