/**
 * @file
 * Abstract syntax tree for the Verilog subset. The parser produces one
 * Module per `module ... endmodule`; the elaborator flattens the module
 * hierarchy and lowers to the rtl::Netlist IR.
 *
 * Supported subset (documented in README):
 *  - ANSI-style module headers with parameters and input/output ports
 *  - wire / reg / logic declarations, vectors up to 64 bits, one
 *    unpacked dimension (memories)
 *  - parameter / localparam, genvar + generate-for with begin:label
 *  - continuous assign (whole-signal LHS)
 *  - always_comb / always @(*) with blocking assigns
 *  - always_ff / always @(posedge clk) with nonblocking assigns
 *  - if/else, case with default, for loops with elaboration-constant
 *    bounds, begin/end blocks
 *  - full expression grammar: arithmetic, bitwise, logical, reduction,
 *    shifts, comparisons, ternary, concatenation, replication, bit and
 *    part selects (constant and variable index, +: form)
 *  - module instantiation with named or positional connections and
 *    parameter overrides
 * Unsupported (rejected with diagnostics): 4-state values, signed
 * arithmetic, tasks/functions, initial blocks, multiple clocks or
 * negedge logic, delays, strings, hierarchical references.
 */

#ifndef ASH_VERILOG_AST_H
#define ASH_VERILOG_AST_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ash::verilog {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/** Expression node. */
struct Expr
{
    enum class Kind : uint8_t {
        Number,    ///< value/width/sized
        Ident,     ///< text
        Unary,     ///< op + children[0]
        Binary,    ///< op + children[0,1]
        Ternary,   ///< children[0]?children[1]:children[2]
        Concat,    ///< {a, b, ...} children MSB-first
        Repl,      ///< {N{expr}}: children[0]=count, children[1]=expr
        Index,     ///< base[idx]: text=base, children[0]=idx
        RangeSel,  ///< base[msb:lsb]: text=base, children[0,1]
        PartSel,   ///< base[lo +: W]: text=base, children[0]=lo, [1]=W
    };

    /** Operator spellings for Unary/Binary, e.g. "+", "&&", "~|". */
    Kind kind;
    std::string op;
    std::string text;
    uint64_t value = 0;
    unsigned width = 0;
    bool sized = false;
    int line = 0;
    std::vector<ExprPtr> children;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/** One target of a procedural assignment. */
struct LValue
{
    std::string name;
    ExprPtr index;       ///< Bit/element select (memories); may be null.
    ExprPtr rangeMsb;    ///< Constant part select; may be null.
    ExprPtr rangeLsb;
    ExprPtr partLo;      ///< +: part select base; may be null.
    ExprPtr partWidth;
};

/** Procedural statement. */
struct Stmt
{
    enum class Kind : uint8_t {
        Block,        ///< begin ... end: stmts
        If,           ///< cond; thenStmt; elseStmt (may be null)
        Case,         ///< selector; items; defaultStmt (may be null)
        Assign,       ///< lhs = rhs (blocking) or lhs <= rhs
        For,          ///< loop var init/cond/step + body
    };

    struct CaseItem
    {
        std::vector<ExprPtr> labels;
        StmtPtr body;
    };

    Kind kind;
    int line = 0;

    // Block.
    std::vector<StmtPtr> stmts;
    // If / Case selector.
    ExprPtr cond;
    StmtPtr thenStmt;
    StmtPtr elseStmt;
    // Case.
    std::vector<CaseItem> caseItems;
    StmtPtr defaultStmt;
    // Assign.
    LValue lhs;
    ExprPtr rhs;
    bool nonblocking = false;
    // For.
    std::string loopVar;
    ExprPtr forInit;
    ExprPtr forCond;
    ExprPtr forStep;
    StmtPtr forBody;
};

/** Signal kind as declared. */
enum class NetKind : uint8_t { Wire, Reg, Logic, Integer, Genvar };

/** One declared name (possibly a vector and/or memory). */
struct Decl
{
    NetKind kind = NetKind::Wire;
    std::string name;
    ExprPtr msb;          ///< Packed range [msb:lsb]; null for scalars.
    ExprPtr lsb;
    ExprPtr memLeft;      ///< Unpacked range [l:r]; null unless memory.
    ExprPtr memRight;
    ExprPtr init;         ///< Declaration assignment (wires only).
    int line = 0;
};

/** Port direction. */
enum class PortDir : uint8_t { Input, Output };

/** ANSI header port. */
struct Port
{
    PortDir dir = PortDir::Input;
    Decl decl;
};

/** Parameter declaration (header or body). */
struct ParamDecl
{
    std::string name;
    ExprPtr value;        ///< Default value.
    bool local = false;
    int line = 0;
};

struct Item;
using ItemPtr = std::unique_ptr<Item>;

/** Module body item. */
struct Item
{
    enum class Kind : uint8_t {
        Decl,          ///< Net/reg/integer/genvar declaration(s).
        Param,         ///< parameter / localparam.
        Assign,        ///< Continuous assign.
        AlwaysComb,
        AlwaysFF,
        Instance,
        GenerateFor,
    };

    Kind kind;
    int line = 0;

    // Decl.
    std::vector<Decl> decls;
    // Param.
    ParamDecl param;
    // Assign: lhs must be a whole signal.
    LValue assignLhs;
    ExprPtr assignRhs;
    // Always blocks.
    StmtPtr body;
    std::string clockName;   ///< Sensitivity signal for always_ff.
    // Instance.
    std::string moduleName;
    std::string instName;
    std::vector<std::pair<std::string, ExprPtr>> paramOverrides;
    std::vector<std::pair<std::string, ExprPtr>> connections;
    bool positionalConns = false;
    // GenerateFor.
    std::string genVar;
    ExprPtr genInit;
    ExprPtr genCond;
    ExprPtr genStep;
    std::string genLabel;
    std::vector<ItemPtr> genBody;
};

/** One parsed module. */
struct Module
{
    std::string name;
    std::vector<ParamDecl> params;
    std::vector<Port> ports;
    std::vector<ItemPtr> items;
    int line = 0;
};

/** A parsed source file: one or more modules. */
struct SourceUnit
{
    std::vector<Module> modules;
};

} // namespace ash::verilog

#endif // ASH_VERILOG_AST_H
