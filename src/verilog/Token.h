/**
 * @file
 * Token definitions for the Verilog-subset lexer.
 */

#ifndef ASH_VERILOG_TOKEN_H
#define ASH_VERILOG_TOKEN_H

#include <cstdint>
#include <string>

namespace ash::verilog {

/** Token kinds. Punctuation tokens are named after their spelling. */
enum class Tok : uint8_t {
    Eof,
    Ident,        ///< Identifier or keyword (text in Token::text).
    Number,       ///< Integer literal (value/width in the token).

    // Punctuation and operators.
    LParen, RParen, LBracket, RBracket, LBrace, RBrace,
    Semi, Comma, Colon, Dot, Hash, At, Question,
    Assign,       ///< =
    Plus, Minus, Star, Slash, Percent,
    Amp, Pipe, Caret, Tilde,
    AmpAmp, PipePipe, Bang,
    Lt, Gt, Ge, EqEq, NotEq,
    Shl, Shr, AShr,            ///< << >> >>>
    LtEq,                       ///< <= (nonblocking assign or less-equal)
    PlusColon,                  ///< +: (indexed part select)
    TildeAmp, TildePipe, TildeCaret, ///< reduction nand/nor/xnor
};

/** One lexed token with source position. */
struct Token
{
    Tok kind = Tok::Eof;
    std::string text;        ///< Identifier text.
    uint64_t value = 0;      ///< Numeric value.
    unsigned width = 0;      ///< Literal width; 0 when unsized.
    bool sized = false;      ///< True for sized literals like 8'hFF.
    int line = 0;
    int col = 0;             ///< 1-based start column; 0 = unknown.
};

/** Printable name for diagnostics. */
const char *tokName(Tok kind);

} // namespace ash::verilog

#endif // ASH_VERILOG_TOKEN_H
