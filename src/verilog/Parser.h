/**
 * @file
 * Recursive-descent parser for the Verilog subset (see Ast.h for the
 * supported grammar).
 */

#ifndef ASH_VERILOG_PARSER_H
#define ASH_VERILOG_PARSER_H

#include <string>

#include "verilog/Ast.h"

namespace ash::verilog {

/**
 * Parse @p source into modules. Syntax errors throw
 * verilog::ParseError (see Diag.h) carrying line/column and a
 * caret-annotated snippet of the offending source line.
 */
SourceUnit parse(const std::string &source,
                 const std::string &filename = "<input>");

/** Deep-copy an expression tree. */
ExprPtr cloneExpr(const Expr &e);

} // namespace ash::verilog

#endif // ASH_VERILOG_PARSER_H
