#include "verilog/Elaborator.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <optional>
#include <set>

#include "common/Logging.h"
#include "rtl/Eval.h"
#include "verilog/Diag.h"

namespace ash::verilog {

using rtl::Netlist;
using rtl::NodeId;
using rtl::Op;
using rtl::invalidNode;

namespace {

/** Name-resolution scope; chains inside one module, not across. */
struct Scope
{
    const Scope *parent = nullptr;
    std::map<std::string, std::string> names;   ///< local -> flat name
    std::map<std::string, int64_t> consts;      ///< params, genvars

    const std::string *
    lookupName(const std::string &n) const
    {
        for (const Scope *s = this; s; s = s->parent) {
            auto it = s->names.find(n);
            if (it != s->names.end())
                return &it->second;
        }
        return nullptr;
    }

    const int64_t *
    lookupConst(const std::string &n) const
    {
        for (const Scope *s = this; s; s = s->parent) {
            auto it = s->consts.find(n);
            if (it != s->consts.end())
                return &it->second;
        }
        return nullptr;
    }
};

/** How a flat signal gets its value. */
struct Driver
{
    enum class Kind : uint8_t {
        None,        ///< Undriven (error if read).
        Input,       ///< Top-level design input.
        Assign,      ///< Continuous assign RHS.
        Block,       ///< Target of an always_comb block.
        Alias,       ///< Same value as another flat signal.
        ParentExpr,  ///< Instance input port: expression in parent scope.
        Zero,        ///< Unconnected instance input.
    };
    Kind kind = Kind::None;
    const Expr *expr = nullptr;
    const Scope *scope = nullptr;
    size_t blockIdx = 0;
    std::string alias;
    int line = 0;
};

/** A flattened always block. */
struct FlatBlock
{
    const Stmt *body = nullptr;
    const Scope *scope = nullptr;
    bool isFF = false;
    std::vector<std::string> targets;   ///< Flat non-memory target names.
    int line = 0;
    bool done = false;                  ///< Comb block already synthesized.
};

/** A flattened signal. */
struct FlatSignal
{
    std::string name;
    unsigned width = 1;
    bool isMem = false;
    uint32_t depth = 0;
    rtl::MemId memId = ~0u;
    bool isReg = false;                 ///< Assigned by an always_ff.
    Driver driver;
    size_t ffBlock = ~size_t(0);        ///< Owning FF block, if isReg.
};

/** Elaboration engine. */
class Elaborator
{
  public:
    Elaborator(const SourceUnit &unit)
    {
        for (const Module &m : unit.modules) {
            if (_modules.count(m.name))
                fatal("duplicate module '%s'", m.name.c_str());
            _modules[m.name] = &m;
        }
    }

    Netlist
    run(const std::string &top,
        const std::map<std::string, int64_t> &top_params)
    {
        auto it = _modules.find(top);
        if (it == _modules.end())
            fatal("top module '%s' not found", top.c_str());

        flattenModule(*it->second, "", top_params, /*is_top=*/true, {});

        // Phase B0: create IR sources eagerly: inputs, registers,
        // memories. These anchor lazy driver resolution.
        for (auto &[name, sig] : _signals) {
            if (sig.isMem) {
                sig.memId = _nl.addMemory(name, sig.width, sig.depth);
            }
        }
        for (const std::string &name : _topInputs) {
            FlatSignal &sig = signal(name);
            _nodeOf[name] = _nl.addInput(name, sig.width);
        }
        for (auto &[name, sig] : _signals) {
            if (sig.isReg)
                _nodeOf[name] = _nl.addReg(name, sig.width, 0);
        }

        // Phase C: sequential blocks define register next-values and
        // memory writes. (Reads inside recursively pull comb logic.)
        for (size_t b = 0; b < _blocks.size(); ++b) {
            if (_blocks[b].isFF)
                synthFFBlock(b);
        }

        // Outputs last: pull any remaining logic.
        for (const std::string &name : _topOutputs)
            _nl.addOutput(name, signalNode(name));

        return std::move(_nl);
    }

  private:
    // =====================================================================
    // Phase 1: flattening
    // =====================================================================

    Scope *
    newScope(const Scope *parent)
    {
        _scopes.emplace_back();
        _scopes.back().parent = parent;
        return &_scopes.back();
    }

    FlatSignal &
    signal(const std::string &flat_name)
    {
        auto it = _signals.find(flat_name);
        // Reachable from user input (an undeclared name in an
        // expression or port map), so this must be a recoverable
        // diagnostic, not an assert.
        if (it == _signals.end())
            throw ElabError("signal '" + flat_name + "'",
                            "unknown signal (not declared in this "
                            "scope or any enclosing module)");
        return it->second;
    }

    /** Declare one flat signal. */
    FlatSignal &
    declareSignal(const std::string &flat_name, unsigned width,
                  bool is_mem, uint32_t depth, int line)
    {
        if (_signals.count(flat_name))
            fatal("line %d: duplicate signal '%s'", line,
                  flat_name.c_str());
        if (width < 1 || width > maxSignalWidth)
            fatal("line %d: signal '%s' has unsupported width %u "
                  "(1..64)", line, flat_name.c_str(), width);
        FlatSignal sig;
        sig.name = flat_name;
        sig.width = width;
        sig.isMem = is_mem;
        sig.depth = depth;
        return _signals.emplace(flat_name, std::move(sig)).first->second;
    }

    unsigned
    declWidth(const Decl &decl, const Scope &scope)
    {
        if (!decl.msb)
            return 1;
        int64_t msb = evalConst(*decl.msb, scope, nullptr);
        int64_t lsb = evalConst(*decl.lsb, scope, nullptr);
        if (lsb != 0 || msb < 0)
            fatal("line %d: only [N:0] packed ranges are supported "
                  "('%s' has [%lld:%lld])", decl.line, decl.name.c_str(),
                  static_cast<long long>(msb),
                  static_cast<long long>(lsb));
        return static_cast<unsigned>(msb + 1);
    }

    /**
     * Flatten one module instantiation.
     *
     * @param mod       Module AST.
     * @param prefix    Hierarchical prefix ("" for top, "u0." below).
     * @param params    Resolved parameter values.
     * @param is_top    True only for the top module.
     * @param port_conn For non-top: port name -> (expr, parent scope);
     *                  expr may be null for unconnected ports.
     */
    struct PortBinding
    {
        const Expr *expr = nullptr;
        const Scope *scope = nullptr;
    };

    void
    flattenModule(const Module &mod, const std::string &prefix,
                  const std::map<std::string, int64_t> &params,
                  bool is_top,
                  const std::map<std::string, PortBinding> &port_conn)
    {
        if (++_instanceCount > 200000)
            fatal("design explodes past 200k module instances; "
                  "check recursive instantiation");
        // Generate prefixes do not cross module boundaries.
        std::vector<std::string> saved_gen = std::move(_genPrefix);
        _genPrefix.clear();
        Scope *scope = newScope(nullptr);

        // Header parameters: defaults overridden by caller bindings.
        for (const ParamDecl &p : mod.params) {
            auto it = params.find(p.name);
            if (it != params.end() && !p.local) {
                scope->consts[p.name] = it->second;
            } else {
                if (!p.value)
                    fatal("parameter '%s' of module '%s' has no value",
                          p.name.c_str(), mod.name.c_str());
                scope->consts[p.name] = evalConst(*p.value, *scope,
                                                  nullptr);
            }
        }

        // Ports become flat signals.
        for (const Port &port : mod.ports) {
            unsigned width = declWidth(port.decl, *scope);
            std::string flat = prefix + port.decl.name;
            FlatSignal &sig = declareSignal(flat, width, false, 0,
                                            port.decl.line);
            scope->names[port.decl.name] = flat;
            if (port.dir == PortDir::Input) {
                if (is_top) {
                    sig.driver.kind = Driver::Kind::Input;
                    _topInputs.push_back(flat);
                } else {
                    auto it = port_conn.find(port.decl.name);
                    if (it == port_conn.end() || !it->second.expr) {
                        warn("input port '%s' unconnected; tied to 0",
                             flat.c_str());
                        sig.driver.kind = Driver::Kind::Zero;
                    } else {
                        sig.driver.kind = Driver::Kind::ParentExpr;
                        sig.driver.expr = it->second.expr;
                        sig.driver.scope = it->second.scope;
                    }
                }
            } else if (is_top) {
                _topOutputs.push_back(flat);
            }
        }

        // Body items.
        flattenItems(mod.items, prefix, scope, mod, is_top, port_conn);

        // Non-top output ports: bind parent wire as alias to the child
        // port signal.
        if (!is_top) {
            for (const Port &port : mod.ports) {
                if (port.dir != PortDir::Output)
                    continue;
                auto it = port_conn.find(port.decl.name);
                if (it == port_conn.end() || !it->second.expr)
                    continue;   // Unconnected output: fine.
                const Expr &conn = *it->second.expr;
                if (conn.kind != Expr::Kind::Ident)
                    fatal("line %d: instance output '%s' must connect "
                          "to a plain signal", conn.line,
                          port.decl.name.c_str());
                const std::string *parent_flat =
                    it->second.scope->lookupName(conn.text);
                if (!parent_flat)
                    fatal("line %d: unknown signal '%s' in output "
                          "connection", conn.line, conn.text.c_str());
                FlatSignal &parent_sig = signal(*parent_flat);
                if (parent_sig.driver.kind != Driver::Kind::None)
                    fatal("line %d: signal '%s' has multiple drivers",
                          conn.line, parent_flat->c_str());
                parent_sig.driver.kind = Driver::Kind::Alias;
                parent_sig.driver.alias = prefix + port.decl.name;
            }
        }
        _genPrefix = std::move(saved_gen);
    }

    void
    flattenItems(const std::vector<ItemPtr> &items,
                 const std::string &prefix, Scope *scope,
                 const Module &mod, bool is_top,
                 const std::map<std::string, PortBinding> &port_conn)
    {
        for (const ItemPtr &item : items)
            flattenItem(*item, prefix, scope, mod, is_top, port_conn);
    }

    void
    flattenItem(const Item &item, const std::string &prefix,
                Scope *scope, const Module &mod, bool is_top,
                const std::map<std::string, PortBinding> &port_conn)
    {
        switch (item.kind) {
          case Item::Kind::Param:
            scope->consts[item.param.name] =
                evalConst(*item.param.value, *scope, nullptr);
            break;

          case Item::Kind::Decl:
            for (const Decl &decl : item.decls) {
                if (decl.kind == NetKind::Genvar ||
                    decl.kind == NetKind::Integer) {
                    // Elaboration-time variables; bound by loops.
                    continue;
                }
                unsigned width = declWidth(decl, *scope);
                bool is_mem = decl.memLeft != nullptr;
                uint32_t depth = 0;
                if (is_mem) {
                    int64_t l = evalConst(*decl.memLeft, *scope, nullptr);
                    int64_t r = evalConst(*decl.memRight, *scope,
                                          nullptr);
                    if (l > r)
                        std::swap(l, r);
                    if (l != 0)
                        fatal("line %d: memory '%s' must be [0:N-1]",
                              decl.line, decl.name.c_str());
                    depth = static_cast<uint32_t>(r + 1);
                }
                std::string flat = prefix + uniqueLocal(scope,
                                                        decl.name);
                declareSignal(flat, width, is_mem, depth, decl.line);
                scope->names[decl.name] = flat;
                if (decl.init) {
                    if (is_mem)
                        fatal("line %d: memory initializers are not "
                              "supported", decl.line);
                    FlatSignal &sig = signal(flat);
                    sig.driver.kind = Driver::Kind::Assign;
                    sig.driver.expr = decl.init.get();
                    sig.driver.scope = scope;
                    sig.driver.line = decl.line;
                }
            }
            break;

          case Item::Kind::Assign: {
            if (item.assignLhs.index || item.assignLhs.rangeMsb ||
                item.assignLhs.partLo)
                fatal("line %d: continuous assign targets must be "
                      "whole signals", item.line);
            const std::string *flat =
                scope->lookupName(item.assignLhs.name);
            if (!flat)
                fatal("line %d: unknown assign target '%s'", item.line,
                      item.assignLhs.name.c_str());
            FlatSignal &sig = signal(*flat);
            if (sig.driver.kind != Driver::Kind::None)
                fatal("line %d: signal '%s' has multiple drivers",
                      item.line, flat->c_str());
            sig.driver.kind = Driver::Kind::Assign;
            sig.driver.expr = item.assignRhs.get();
            sig.driver.scope = scope;
            sig.driver.line = item.line;
            break;
          }

          case Item::Kind::AlwaysComb:
          case Item::Kind::AlwaysFF: {
            FlatBlock block;
            block.body = item.body.get();
            block.scope = scope;
            block.isFF = item.kind == Item::Kind::AlwaysFF;
            block.line = item.line;
            collectTargets(*item.body, *scope, block.isFF,
                           block.targets);
            size_t idx = _blocks.size();
            for (const std::string &target : block.targets) {
                FlatSignal &sig = signal(target);
                if (block.isFF) {
                    if (sig.isReg)
                        fatal("line %d: register '%s' assigned from "
                              "multiple always_ff blocks", item.line,
                              target.c_str());
                    if (sig.driver.kind != Driver::Kind::None)
                        fatal("line %d: signal '%s' has multiple "
                              "drivers", item.line, target.c_str());
                    sig.isReg = true;
                    sig.ffBlock = idx;
                } else {
                    if (sig.driver.kind != Driver::Kind::None)
                        fatal("line %d: signal '%s' has multiple "
                              "drivers", item.line, target.c_str());
                    sig.driver.kind = Driver::Kind::Block;
                    sig.driver.blockIdx = idx;
                }
            }
            _blocks.push_back(std::move(block));
            break;
          }

          case Item::Kind::Instance: {
            auto mod_it = _modules.find(item.moduleName);
            if (mod_it == _modules.end())
                fatal("line %d: unknown module '%s'", item.line,
                      item.moduleName.c_str());
            const Module &child = *mod_it->second;

            // Parameter bindings.
            std::map<std::string, int64_t> child_params;
            for (size_t i = 0; i < item.paramOverrides.size(); ++i) {
                const auto &[pname, pexpr] = item.paramOverrides[i];
                std::string resolved = pname;
                if (!pname.empty() && pname[0] == '#') {
                    size_t pos = std::stoul(pname.substr(1));
                    if (pos >= child.params.size())
                        fatal("line %d: too many positional parameters",
                              item.line);
                    resolved = child.params[pos].name;
                }
                child_params[resolved] = evalConst(*pexpr, *scope,
                                                   nullptr);
            }

            // Port bindings.
            std::map<std::string, PortBinding> child_conn;
            for (size_t i = 0; i < item.connections.size(); ++i) {
                const auto &[pname, pexpr] = item.connections[i];
                std::string resolved = pname;
                if (item.positionalConns) {
                    if (i >= child.ports.size())
                        fatal("line %d: too many positional "
                              "connections", item.line);
                    resolved = child.ports[i].decl.name;
                }
                child_conn[resolved] =
                    PortBinding{pexpr.get(), scope};
            }

            std::string child_prefix =
                prefix + uniqueLocal(scope, item.instName) + ".";
            flattenModule(child, child_prefix, child_params,
                          /*is_top=*/false, child_conn);
            break;
          }

          case Item::Kind::GenerateFor: {
            int64_t var = evalConst(*item.genInit, *scope, nullptr);
            size_t guard = 0;
            while (true) {
                Scope probe;
                probe.parent = scope;
                probe.consts[item.genVar] = var;
                if (!evalConst(*item.genCond, probe, nullptr))
                    break;
                if (++guard > 100000)
                    fatal("line %d: generate-for exceeds 100000 "
                          "iterations", item.line);
                Scope *iter_scope = newScope(scope);
                iter_scope->consts[item.genVar] = var;
                std::string label = item.genLabel.empty()
                                        ? std::string("gen")
                                        : item.genLabel;
                // Compose with any enclosing generate iteration so
                // nested loops get distinct names.
                std::string outer =
                    _genPrefix.empty() ? "" : _genPrefix.back();
                std::string iter_prefix = outer + label + "[" +
                                          std::to_string(var) + "].";
                // Declarations inside get the iteration prefix via
                // uniqueLocal name mapping in iter_scope.
                _genPrefix.push_back(iter_prefix);
                flattenItems(item.genBody, prefix, iter_scope, mod,
                             is_top, port_conn);
                _genPrefix.pop_back();
                var = evalConst(*item.genStep, probe, nullptr);
            }
            break;
          }
        }
    }

    /**
     * Produce the local name used to build a flat name. Inside a
     * generate iteration, declarations get the iteration prefix so
     * per-iteration copies are distinct.
     */
    std::string
    uniqueLocal(Scope *, const std::string &name)
    {
        if (_genPrefix.empty())
            return name;
        return _genPrefix.back() + name;
    }

    /** Collect procedural assignment targets (non-memory signals). */
    void
    collectTargets(const Stmt &stmt, const Scope &scope, bool is_ff,
                   std::vector<std::string> &out)
    {
        switch (stmt.kind) {
          case Stmt::Kind::Block:
            for (const StmtPtr &s : stmt.stmts)
                collectTargets(*s, scope, is_ff, out);
            break;
          case Stmt::Kind::If:
            collectTargets(*stmt.thenStmt, scope, is_ff, out);
            if (stmt.elseStmt)
                collectTargets(*stmt.elseStmt, scope, is_ff, out);
            break;
          case Stmt::Kind::Case:
            for (const auto &item : stmt.caseItems)
                collectTargets(*item.body, scope, is_ff, out);
            if (stmt.defaultStmt)
                collectTargets(*stmt.defaultStmt, scope, is_ff, out);
            break;
          case Stmt::Kind::For:
            collectTargets(*stmt.forBody, scope, is_ff, out);
            break;
          case Stmt::Kind::Assign: {
            const std::string *flat = scope.lookupName(stmt.lhs.name);
            if (!flat) {
                // May be a loop variable; those never become signals.
                return;
            }
            FlatSignal &sig = signal(*flat);
            if (sig.isMem) {
                if (!is_ff)
                    fatal("line %d: memory '%s' may only be written "
                          "from always_ff", stmt.line, flat->c_str());
                return;   // Memory writes are not scalar targets.
            }
            if (std::find(out.begin(), out.end(), *flat) == out.end())
                out.push_back(*flat);
            break;
          }
        }
    }

    // =====================================================================
    // Constant evaluation
    // =====================================================================

    int64_t
    evalConst(const Expr &e, const Scope &scope,
              const std::map<std::string, int64_t> *locals)
    {
        switch (e.kind) {
          case Expr::Kind::Number:
            return static_cast<int64_t>(e.value);
          case Expr::Kind::Ident: {
            if (locals) {
                auto it = locals->find(e.text);
                if (it != locals->end())
                    return it->second;
            }
            if (const int64_t *v = scope.lookupConst(e.text))
                return *v;
            fatal("line %d: '%s' is not an elaboration-time constant",
                  e.line, e.text.c_str());
          }
          case Expr::Kind::Unary: {
            int64_t v = evalConst(*e.children[0], scope, locals);
            if (e.op == "-") return -v;
            if (e.op == "+") return v;
            if (e.op == "~") return ~v;
            if (e.op == "!") return v == 0;
            fatal("line %d: unary '%s' not allowed in constants",
                  e.line, e.op.c_str());
          }
          case Expr::Kind::Binary: {
            int64_t a = evalConst(*e.children[0], scope, locals);
            int64_t b = evalConst(*e.children[1], scope, locals);
            if (e.op == "+") return a + b;
            if (e.op == "-") return a - b;
            if (e.op == "*") return a * b;
            if (e.op == "/") return b ? a / b : 0;
            if (e.op == "%") return b ? a % b : 0;
            if (e.op == "<<") return a << b;
            if (e.op == ">>")
                return static_cast<int64_t>(
                    static_cast<uint64_t>(a) >> b);
            if (e.op == ">>>") return a >> b;
            if (e.op == "<") return a < b;
            if (e.op == "<=") return a <= b;
            if (e.op == ">") return a > b;
            if (e.op == ">=") return a >= b;
            if (e.op == "==") return a == b;
            if (e.op == "!=") return a != b;
            if (e.op == "&") return a & b;
            if (e.op == "|") return a | b;
            if (e.op == "^") return a ^ b;
            if (e.op == "&&") return a && b;
            if (e.op == "||") return a || b;
            fatal("line %d: binary '%s' not allowed in constants",
                  e.line, e.op.c_str());
          }
          case Expr::Kind::Ternary:
            return evalConst(*e.children[0], scope, locals)
                       ? evalConst(*e.children[1], scope, locals)
                       : evalConst(*e.children[2], scope, locals);
          default:
            fatal("line %d: expression not allowed in constants",
                  e.line);
        }
    }

    /** Try constant evaluation; nullopt if not a constant. */
    std::optional<int64_t>
    tryConst(const Expr &e, const Scope &scope,
             const std::map<std::string, int64_t> *locals)
    {
        switch (e.kind) {
          case Expr::Kind::Number:
            return static_cast<int64_t>(e.value);
          case Expr::Kind::Ident: {
            if (locals) {
                auto it = locals->find(e.text);
                if (it != locals->end())
                    return it->second;
            }
            if (const int64_t *v = scope.lookupConst(e.text))
                return *v;
            return std::nullopt;
          }
          case Expr::Kind::Unary: {
            auto v = tryConst(*e.children[0], scope, locals);
            if (!v)
                return std::nullopt;
            if (e.op == "-") return -*v;
            if (e.op == "+") return *v;
            if (e.op == "~") return ~*v;
            if (e.op == "!") return *v == 0;
            return std::nullopt;
          }
          case Expr::Kind::Binary: {
            auto a = tryConst(*e.children[0], scope, locals);
            auto b = tryConst(*e.children[1], scope, locals);
            if (!a || !b)
                return std::nullopt;
            return evalConst(e, scope, locals);
          }
          case Expr::Kind::Ternary: {
            auto c = tryConst(*e.children[0], scope, locals);
            if (!c)
                return std::nullopt;
            return tryConst(*e.children[*c ? 1 : 2], scope, locals);
          }
          default:
            return std::nullopt;
        }
    }

    // =====================================================================
    // Phase 2: driver synthesis
    // =====================================================================

    /** IR node for the current value of a flat signal. */
    NodeId
    signalNode(const std::string &flat_name)
    {
        auto memo = _nodeOf.find(flat_name);
        if (memo != _nodeOf.end())
            return memo->second;
        if (_inProgress.count(flat_name))
            fatal("combinational loop through signal '%s'",
                  flat_name.c_str());
        _inProgress.insert(flat_name);

        FlatSignal &sig = signal(flat_name);
        // Reachable from user input: a memory used without an index
        // (e.g. as a module output or bare RHS).
        if (sig.isMem)
            throw ElabError("memory '" + flat_name + "'",
                            "memory read as a scalar (missing an "
                            "index, or used as a port/output?)");
        NodeId node = invalidNode;
        switch (sig.driver.kind) {
          case Driver::Kind::Input:
          case Driver::Kind::None:
            if (sig.driver.kind == Driver::Kind::None) {
                warn("signal '%s' is undriven; tied to 0",
                     flat_name.c_str());
                node = _nl.addConst(sig.width, 0);
            } else {
                panic("input '%s' should have been pre-created",
                      flat_name.c_str());
            }
            break;
          case Driver::Kind::Zero:
            node = _nl.addConst(sig.width, 0);
            break;
          case Driver::Kind::Assign:
          case Driver::Kind::ParentExpr:
            node = resize(synthExpr(*sig.driver.expr, *sig.driver.scope,
                                    nullptr),
                          sig.width);
            break;
          case Driver::Kind::Alias:
            node = signalNode(sig.driver.alias);
            break;
          case Driver::Kind::Block:
            synthCombBlock(sig.driver.blockIdx);
            _inProgress.erase(flat_name);
            memo = _nodeOf.find(flat_name);
            ASH_ASSERT(memo != _nodeOf.end(),
                       "comb block failed to define '%s'",
                       flat_name.c_str());
            return memo->second;
        }
        _inProgress.erase(flat_name);
        _nodeOf[flat_name] = node;
        return node;
    }

    /** Zero-extend or truncate @p node to @p width. */
    NodeId
    resize(NodeId node, unsigned width)
    {
        unsigned w = _nl.node(node).width;
        if (w == width)
            return node;
        if (w < width)
            return addOp(Op::ZExt, width, {node});
        return addOp(Op::Slice, width, {node}, 0);
    }

    /** 1-bit boolean view of @p node. */
    NodeId
    toBool(NodeId node)
    {
        if (_nl.node(node).width == 1)
            return node;
        return addOp(Op::RedOr, 1, {node});
    }

    /** addOp with local constant folding. */
    NodeId
    addOp(Op op, unsigned width, std::vector<NodeId> operands,
          uint64_t imm = 0)
    {
        bool all_const = !operands.empty();
        for (NodeId n : operands) {
            if (_nl.node(n).op != Op::Const) {
                all_const = false;
                break;
            }
        }
        if (all_const && op != Op::MemRead && op != Op::MemWrite &&
            operands.size() <= 8) {
            uint64_t vals[8];
            for (size_t i = 0; i < operands.size(); ++i)
                vals[i] = _nl.node(operands[i]).imm;
            // Build a scratch node to evaluate, then fold.
            NodeId tmp = _nl.addOp(op, width, operands, imm);
            uint64_t folded = rtl::evalCombOp(_nl.node(tmp), _nl, vals);
            // The scratch node stays in the netlist but is dead; the
            // final prune pass removes it.
            return _nl.addConst(width, folded);
        }
        return _nl.addOp(op, width, std::move(operands), imm);
    }

    /** Mux with constant-select folding. */
    NodeId
    makeMux(NodeId sel, NodeId if_true, NodeId if_false)
    {
        if (if_true == if_false)
            return if_true;
        if (_nl.node(sel).op == Op::Const)
            return _nl.node(sel).imm ? if_true : if_false;
        unsigned w = _nl.node(if_true).width;
        ASH_ASSERT(_nl.node(if_false).width == w);
        return addOp(Op::Mux, w, {sel, if_true, if_false});
    }

    /** Concat that respects the evaluator's 8-operand limit. */
    NodeId
    makeConcat(std::vector<NodeId> parts)
    {
        ASH_ASSERT(!parts.empty());
        if (parts.size() == 1)
            return parts[0];
        while (parts.size() > 4) {
            std::vector<NodeId> next;
            for (size_t i = 0; i < parts.size(); i += 4) {
                size_t n = std::min<size_t>(4, parts.size() - i);
                if (n == 1) {
                    next.push_back(parts[i]);
                    continue;
                }
                unsigned w = 0;
                std::vector<NodeId> group;
                for (size_t j = 0; j < n; ++j) {
                    group.push_back(parts[i + j]);
                    w += _nl.node(parts[i + j]).width;
                }
                next.push_back(addOp(Op::Concat, w, std::move(group)));
            }
            parts = std::move(next);
        }
        unsigned w = 0;
        for (NodeId p : parts)
            w += _nl.node(p).width;
        return addOp(Op::Concat, w, std::move(parts));
    }

    /**
     * Procedural synthesis context: maps flat signal names to their
     * current value nodes within a block walk. Reads fall back through
     * the owner's readFallback.
     */
    struct ProcCtx
    {
        /**
         * In always_comb: the current value of each target (blocking
         * semantics). In always_ff: the *next* value under
         * construction (nonblocking semantics).
         */
        std::map<std::string, NodeId> vals;
        /**
         * always_ff only: values forwarded by *blocking* assignments;
         * reads consult this first, then fall back to the old
         * (pre-edge) signal value. Nonblocking assignments do not
         * appear here, matching Verilog read-old semantics.
         */
        std::map<std::string, NodeId> reads;
        bool isFF = false;
        std::map<std::string, int64_t> locals;   ///< Loop variables.
    };

    /**
     * Synthesize an expression.
     *
     * @param e      Expression AST.
     * @param scope  Name scope.
     * @param proc   Active procedural context (may be null); supplies
     *               blocking-assignment values and loop variables.
     */
    NodeId
    synthExpr(const Expr &e, const Scope &scope, ProcCtx *proc)
    {
        switch (e.kind) {
          case Expr::Kind::Number:
            return _nl.addConst(e.sized ? e.width
                                        : std::max(32u, bitsFor(e.value)),
                                e.value);

          case Expr::Kind::Ident: {
            if (proc) {
                auto it = proc->locals.find(e.text);
                if (it != proc->locals.end())
                    return _nl.addConst(32,
                                        static_cast<uint64_t>(
                                            it->second));
            }
            if (const int64_t *v = scope.lookupConst(e.text))
                return _nl.addConst(32, static_cast<uint64_t>(*v));
            return readSignal(e.text, scope, proc, e.line);
          }

          case Expr::Kind::Index: {
            const std::string *flat = scope.lookupName(e.text);
            // Reachable from user input: an undeclared name indexed
            // in an expression.
            if (!flat)
                throw ElabError("signal '" + e.text + "'",
                                "line " + std::to_string(e.line) +
                                    ": unknown signal");
            FlatSignal &sig = signal(*flat);
            if (sig.isMem) {
                NodeId addr = synthExpr(*e.children[0], scope, proc);
                return _nl.addMemRead(sig.memId, addr);
            }
            NodeId base = readSignal(e.text, scope, proc, e.line);
            auto idx_const = tryConst(*e.children[0], scope,
                                      proc ? &proc->locals : nullptr);
            if (idx_const) {
                if (*idx_const < 0 ||
                    static_cast<uint64_t>(*idx_const) >= sig.width)
                    fatal("line %d: bit index %lld out of range for "
                          "'%s'", e.line,
                          static_cast<long long>(*idx_const),
                          e.text.c_str());
                return addOp(Op::Slice, 1, {base},
                             static_cast<uint64_t>(*idx_const));
            }
            NodeId idx = synthExpr(*e.children[0], scope, proc);
            NodeId shifted = addOp(Op::LShr, sig.width,
                                   {base, idx});
            return addOp(Op::Slice, 1, {shifted}, 0);
          }

          case Expr::Kind::RangeSel: {
            int64_t msb = evalConstProc(*e.children[0], scope, proc);
            int64_t lsb = evalConstProc(*e.children[1], scope, proc);
            if (msb < lsb || lsb < 0)
                fatal("line %d: bad part select [%lld:%lld]", e.line,
                      static_cast<long long>(msb),
                      static_cast<long long>(lsb));
            NodeId base = readSignal(e.text, scope, proc, e.line);
            unsigned width = static_cast<unsigned>(msb - lsb + 1);
            if (lsb + width > _nl.node(base).width)
                fatal("line %d: part select [%lld:%lld] exceeds width "
                      "of '%s'", e.line, static_cast<long long>(msb),
                      static_cast<long long>(lsb), e.text.c_str());
            return addOp(Op::Slice, width, {base},
                         static_cast<uint64_t>(lsb));
          }

          case Expr::Kind::PartSel: {
            int64_t width = evalConstProc(*e.children[1], scope, proc);
            if (width < 1 || width > 64)
                fatal("line %d: bad +: width %lld", e.line,
                      static_cast<long long>(width));
            NodeId base = readSignal(e.text, scope, proc, e.line);
            auto lo_const = tryConst(*e.children[0], scope,
                                     proc ? &proc->locals : nullptr);
            if (lo_const) {
                if (*lo_const < 0 ||
                    *lo_const + width > _nl.node(base).width)
                    fatal("line %d: +: select out of range", e.line);
                return addOp(Op::Slice, static_cast<unsigned>(width),
                             {base}, static_cast<uint64_t>(*lo_const));
            }
            NodeId lo = synthExpr(*e.children[0], scope, proc);
            NodeId shifted = addOp(Op::LShr, _nl.node(base).width,
                                   {base, lo});
            return addOp(Op::Slice, static_cast<unsigned>(width),
                         {shifted}, 0);
          }

          case Expr::Kind::Unary: {
            NodeId x = synthExpr(*e.children[0], scope, proc);
            unsigned w = _nl.node(x).width;
            if (e.op == "+")
                return x;
            if (e.op == "-")
                return addOp(Op::Sub, w, {_nl.addConst(w, 0), x});
            if (e.op == "~")
                return addOp(Op::Not, w, {x});
            if (e.op == "!")
                return addOp(Op::Eq, 1, {x, _nl.addConst(w, 0)});
            if (e.op == "&")
                return addOp(Op::RedAnd, 1, {x});
            if (e.op == "|")
                return addOp(Op::RedOr, 1, {x});
            if (e.op == "^")
                return addOp(Op::RedXor, 1, {x});
            if (e.op == "~&")
                return addOp(Op::Not, 1, {addOp(Op::RedAnd, 1, {x})});
            if (e.op == "~|")
                return addOp(Op::Not, 1, {addOp(Op::RedOr, 1, {x})});
            if (e.op == "~^")
                return addOp(Op::Not, 1, {addOp(Op::RedXor, 1, {x})});
            fatal("line %d: unary '%s' unsupported", e.line,
                  e.op.c_str());
          }

          case Expr::Kind::Binary: {
            NodeId a = synthExpr(*e.children[0], scope, proc);
            NodeId b = synthExpr(*e.children[1], scope, proc);
            unsigned wa = _nl.node(a).width;
            unsigned wb = _nl.node(b).width;
            unsigned w = std::max(wa, wb);
            auto bin = [&](Op op) {
                return addOp(op, w, {resize(a, w), resize(b, w)});
            };
            auto cmp = [&](Op op) {
                return addOp(op, 1, {resize(a, w), resize(b, w)});
            };
            if (e.op == "+") return bin(Op::Add);
            if (e.op == "-") return bin(Op::Sub);
            if (e.op == "*") return bin(Op::Mul);
            if (e.op == "/") return bin(Op::Div);
            if (e.op == "%") return bin(Op::Mod);
            if (e.op == "&") return bin(Op::And);
            if (e.op == "|") return bin(Op::Or);
            if (e.op == "^") return bin(Op::Xor);
            if (e.op == "~^")
                return addOp(Op::Not, w, {bin(Op::Xor)});
            if (e.op == "<<") return addOp(Op::Shl, wa, {a, b});
            if (e.op == ">>") return addOp(Op::LShr, wa, {a, b});
            if (e.op == ">>>") return addOp(Op::AShr, wa, {a, b});
            if (e.op == "<") return cmp(Op::Lt);
            if (e.op == "<=") return cmp(Op::Le);
            if (e.op == ">") return cmp(Op::Gt);
            if (e.op == ">=") return cmp(Op::Ge);
            if (e.op == "==") return cmp(Op::Eq);
            if (e.op == "!=") return cmp(Op::Ne);
            if (e.op == "&&")
                return addOp(Op::And, 1, {toBool(a), toBool(b)});
            if (e.op == "||")
                return addOp(Op::Or, 1, {toBool(a), toBool(b)});
            fatal("line %d: binary '%s' unsupported", e.line,
                  e.op.c_str());
          }

          case Expr::Kind::Ternary: {
            NodeId cond = toBool(synthExpr(*e.children[0], scope,
                                           proc));
            NodeId t = synthExpr(*e.children[1], scope, proc);
            NodeId f = synthExpr(*e.children[2], scope, proc);
            unsigned w = std::max(_nl.node(t).width,
                                  _nl.node(f).width);
            return makeMux(cond, resize(t, w), resize(f, w));
          }

          case Expr::Kind::Concat: {
            std::vector<NodeId> parts;
            unsigned total = 0;
            for (const ExprPtr &child : e.children) {
                NodeId p = synthExpr(*child, scope, proc);
                total += _nl.node(p).width;
                parts.push_back(p);
            }
            if (total > maxSignalWidth)
                fatal("line %d: concatenation width %u exceeds 64",
                      e.line, total);
            return makeConcat(std::move(parts));
          }

          case Expr::Kind::Repl: {
            int64_t count = evalConstProc(*e.children[0], scope, proc);
            if (count < 1)
                fatal("line %d: replication count must be positive",
                      e.line);
            NodeId unit = synthExpr(*e.children[1], scope, proc);
            unsigned total =
                static_cast<unsigned>(count) * _nl.node(unit).width;
            if (total > maxSignalWidth)
                fatal("line %d: replication width %u exceeds 64",
                      e.line, total);
            std::vector<NodeId> parts(static_cast<size_t>(count),
                                      unit);
            return makeConcat(std::move(parts));
          }
        }
        panic("unreachable expression kind");
    }

    int64_t
    evalConstProc(const Expr &e, const Scope &scope, ProcCtx *proc)
    {
        return evalConst(e, scope, proc ? &proc->locals : nullptr);
    }

    /** Read a signal by local name inside an expression. */
    NodeId
    readSignal(const std::string &name, const Scope &scope,
               ProcCtx *proc, int line)
    {
        const std::string *flat = scope.lookupName(name);
        // Reachable from user input: an undeclared name read in an
        // expression is a diagnostic, not an internal invariant.
        if (!flat)
            throw ElabError("signal '" + name + "'",
                            "line " + std::to_string(line) +
                                ": unknown signal");
        if (proc) {
            const auto &fwd = proc->isFF ? proc->reads : proc->vals;
            auto it = fwd.find(*flat);
            if (it != fwd.end()) {
                if (it->second == invalidNode)
                    fatal("line %d: '%s' read before assignment in "
                          "always_comb", line, flat->c_str());
                return it->second;
            }
        }
        FlatSignal &sig = signal(*flat);
        // Reachable from user input: memories can only be read
        // element-wise.
        if (sig.isMem)
            throw ElabError("memory '" + *flat + "'",
                            "line " + std::to_string(line) +
                                ": memory must be read with an index");
        return signalNode(*flat);
    }

    // --- procedural walks -----------------------------------------------

    /** Pending memory write discovered during an FF walk. */
    struct MemWriteRec
    {
        rtl::MemId mem;
        NodeId addr;
        NodeId data;
        NodeId enable;
    };

    /** Shared walk for comb and ff blocks. */
    struct WalkState
    {
        ProcCtx ctx;
        NodeId pathCond = invalidNode;   ///< FF only; invalid = always.
    };

    void
    synthCombBlock(size_t block_idx)
    {
        FlatBlock &block = _blocks[block_idx];
        if (block.done)
            return;
        block.done = true;

        WalkState state;
        for (const std::string &target : block.targets)
            state.ctx.vals[target] = invalidNode;
        std::vector<MemWriteRec> writes;   // Unused for comb.
        walkStmt(*block.body, *block.scope, state, /*is_ff=*/false,
                 writes);
        for (const std::string &target : block.targets) {
            NodeId node = state.ctx.vals[target];
            if (node == invalidNode)
                fatal("line %d: '%s' is not assigned on all paths of "
                      "always_comb (latch inferred)", block.line,
                      target.c_str());
            _nodeOf[target] = resize(node, signal(target).width);
        }
    }

    void
    synthFFBlock(size_t block_idx)
    {
        FlatBlock &block = _blocks[block_idx];
        WalkState state;
        state.ctx.isFF = true;
        // Register targets start at their old (held) value.
        for (const std::string &target : block.targets)
            state.ctx.vals[target] = _nodeOf.at(target);
        std::vector<MemWriteRec> writes;
        walkStmt(*block.body, *block.scope, state, /*is_ff=*/true,
                 writes);
        for (const std::string &target : block.targets) {
            FlatSignal &sig = signal(target);
            _nl.setRegNext(_nodeOf.at(target),
                           resize(state.ctx.vals[target], sig.width));
        }
        for (const MemWriteRec &w : writes) {
            NodeId enable = w.enable == invalidNode
                                ? _nl.addConst(1, 1)
                                : w.enable;
            _nl.addMemWrite(w.mem, w.addr, w.data, enable);
        }
    }

    /** AND two path conditions (either may be invalid = true). */
    NodeId
    andCond(NodeId a, NodeId b)
    {
        if (a == invalidNode)
            return b;
        if (b == invalidNode)
            return a;
        return addOp(Op::And, 1, {a, b});
    }

    void
    walkStmt(const Stmt &stmt, const Scope &scope, WalkState &state,
             bool is_ff, std::vector<MemWriteRec> &writes)
    {
        switch (stmt.kind) {
          case Stmt::Kind::Block:
            for (const StmtPtr &s : stmt.stmts)
                walkStmt(*s, scope, state, is_ff, writes);
            break;

          case Stmt::Kind::Assign:
            walkAssign(stmt, scope, state, is_ff, writes);
            break;

          case Stmt::Kind::If: {
            NodeId cond = toBool(synthExpr(*stmt.cond, scope,
                                           &state.ctx));
            WalkState then_state = state;
            then_state.pathCond = is_ff ? andCond(state.pathCond, cond)
                                        : invalidNode;
            walkStmt(*stmt.thenStmt, scope, then_state, is_ff, writes);

            WalkState else_state = state;
            if (stmt.elseStmt) {
                NodeId ncond = addOp(Op::Not, 1, {cond});
                else_state.pathCond =
                    is_ff ? andCond(state.pathCond, ncond)
                          : invalidNode;
                walkStmt(*stmt.elseStmt, scope, else_state, is_ff,
                         writes);
            }
            joinStates(state, cond, then_state, else_state, stmt.line);
            break;
          }

          case Stmt::Kind::Case: {
            NodeId sel = synthExpr(*stmt.cond, scope, &state.ctx);
            walkCaseChain(stmt, 0, sel, scope, state, is_ff, writes);
            break;
          }

          case Stmt::Kind::For: {
            std::map<std::string, int64_t> &locals = state.ctx.locals;
            auto saved = locals.find(stmt.loopVar) != locals.end()
                             ? std::optional<int64_t>(
                                   locals[stmt.loopVar])
                             : std::nullopt;
            locals[stmt.loopVar] =
                evalConst(*stmt.forInit, scope, &locals);
            size_t guard = 0;
            while (evalConst(*stmt.forCond, scope, &locals)) {
                if (++guard > 1000000)
                    fatal("line %d: for loop exceeds 1000000 "
                          "iterations", stmt.line);
                walkStmt(*stmt.forBody, scope, state, is_ff, writes);
                locals[stmt.loopVar] =
                    evalConst(*stmt.forStep, scope, &locals);
            }
            if (saved)
                locals[stmt.loopVar] = *saved;
            else
                locals.erase(stmt.loopVar);
            break;
          }
        }
    }

    /** Lower a case statement to a priority if-chain, item @p i first. */
    void
    walkCaseChain(const Stmt &stmt, size_t i, NodeId sel,
                  const Scope &scope, WalkState &state, bool is_ff,
                  std::vector<MemWriteRec> &writes)
    {
        if (i == stmt.caseItems.size()) {
            if (stmt.defaultStmt)
                walkStmt(*stmt.defaultStmt, scope, state, is_ff,
                         writes);
            return;
        }
        const Stmt::CaseItem &item = stmt.caseItems[i];
        unsigned sel_w = _nl.node(sel).width;
        NodeId match = invalidNode;
        for (const ExprPtr &label : item.labels) {
            NodeId lab = resize(synthExpr(*label, scope, &state.ctx),
                                sel_w);
            NodeId eq = addOp(Op::Eq, 1, {sel, lab});
            match = match == invalidNode ? eq
                                         : addOp(Op::Or, 1,
                                                 {match, eq});
        }
        WalkState then_state = state;
        then_state.pathCond =
            is_ff ? andCond(state.pathCond, match) : invalidNode;
        walkStmt(*item.body, scope, then_state, is_ff, writes);

        WalkState else_state = state;
        if (is_ff) {
            NodeId nmatch = addOp(Op::Not, 1, {match});
            else_state.pathCond = andCond(state.pathCond, nmatch);
        }
        walkCaseChain(stmt, i + 1, sel, scope, else_state, is_ff,
                      writes);
        joinStates(state, match, then_state, else_state, stmt.line);
    }

    /** Merge branch states back into @p state with mux joins. */
    void
    joinStates(WalkState &state, NodeId cond,
               const WalkState &then_state, const WalkState &else_state,
               int line)
    {
        for (auto &[name, incoming] : state.ctx.vals) {
            NodeId t = then_state.ctx.vals.at(name);
            NodeId e = else_state.ctx.vals.at(name);
            if (t == e) {
                incoming = t;
                continue;
            }
            if (t == invalidNode || e == invalidNode)
                fatal("line %d: '%s' assigned on only one branch "
                      "before being read (latch inferred)", line,
                      name.c_str());
            unsigned w = std::max(_nl.node(t).width,
                                  _nl.node(e).width);
            incoming = makeMux(cond, resize(t, w), resize(e, w));
        }
        if (!state.ctx.isFF)
            return;
        // Join blocking-assignment forwards. Keys missing on one side
        // fall back to the incoming forward or the old signal value.
        std::map<std::string, NodeId> joined = state.ctx.reads;
        std::set<std::string> keys;
        for (const auto &[k, v] : then_state.ctx.reads)
            keys.insert(k);
        for (const auto &[k, v] : else_state.ctx.reads)
            keys.insert(k);
        for (const std::string &k : keys) {
            auto side = [&](const WalkState &s) -> NodeId {
                auto it = s.ctx.reads.find(k);
                if (it != s.ctx.reads.end())
                    return it->second;
                return signalNode(k);
            };
            NodeId t = side(then_state);
            NodeId e = side(else_state);
            if (t == e) {
                joined[k] = t;
                continue;
            }
            unsigned w = std::max(_nl.node(t).width,
                                  _nl.node(e).width);
            joined[k] = makeMux(cond, resize(t, w), resize(e, w));
        }
        state.ctx.reads = std::move(joined);
    }

    void
    walkAssign(const Stmt &stmt, const Scope &scope, WalkState &state,
               bool is_ff, std::vector<MemWriteRec> &writes)
    {
        const std::string *flat = scope.lookupName(stmt.lhs.name);
        if (!flat) {
            // Assignment to a loop/elaboration variable.
            auto it = state.ctx.locals.find(stmt.lhs.name);
            if (it != state.ctx.locals.end()) {
                it->second = evalConst(*stmt.rhs, scope,
                                       &state.ctx.locals);
                return;
            }
            // Reachable from user input: assigning to an undeclared
            // name.
            throw ElabError("signal '" + stmt.lhs.name + "'",
                            "line " + std::to_string(stmt.line) +
                                ": unknown assignment target");
        }
        FlatSignal &sig = signal(*flat);

        if (sig.isMem) {
            if (!is_ff)
                fatal("line %d: memory writes allowed only in "
                      "always_ff", stmt.line);
            // Reachable from user input: element-wise writes only.
            if (!stmt.lhs.index)
                throw ElabError("memory '" + *flat + "'",
                                "line " + std::to_string(stmt.line) +
                                    ": memory must be written with "
                                    "an index");
            NodeId addr = synthExpr(*stmt.lhs.index, scope,
                                    &state.ctx);
            NodeId data = resize(synthExpr(*stmt.rhs, scope,
                                           &state.ctx),
                                 sig.width);
            writes.push_back({sig.memId, addr, data, state.pathCond});
            return;
        }

        if (is_ff && !stmt.nonblocking) {
            // Blocking assign in always_ff: we support it with the
            // same next-value semantics (reads below in the block see
            // the new value via ctx.vals).
        }
        if (!is_ff && stmt.nonblocking)
            fatal("line %d: nonblocking assignment in always_comb",
                  stmt.line);

        NodeId rhs = synthExpr(*stmt.rhs, scope, &state.ctx);

        auto current = [&]() -> NodeId {
            auto it = state.ctx.vals.find(*flat);
            NodeId cur = it != state.ctx.vals.end() ? it->second
                                                    : signalNode(*flat);
            if (cur == invalidNode)
                fatal("line %d: partial assignment to '%s' before a "
                      "full assignment", stmt.line, flat->c_str());
            return cur;
        };

        NodeId result;
        if (stmt.lhs.rangeMsb) {
            int64_t msb = evalConstProc(*stmt.lhs.rangeMsb, scope,
                                        &state.ctx);
            int64_t lsb = evalConstProc(*stmt.lhs.rangeLsb, scope,
                                        &state.ctx);
            result = insertBits(current(), sig.width,
                                static_cast<unsigned>(lsb),
                                static_cast<unsigned>(msb - lsb + 1),
                                rhs, stmt.line);
        } else if (stmt.lhs.partLo) {
            int64_t width = evalConstProc(*stmt.lhs.partWidth, scope,
                                          &state.ctx);
            auto lo_const = tryConst(*stmt.lhs.partLo, scope,
                                     &state.ctx.locals);
            if (lo_const) {
                result = insertBits(current(), sig.width,
                                    static_cast<unsigned>(*lo_const),
                                    static_cast<unsigned>(width), rhs,
                                    stmt.line);
            } else {
                NodeId lo = synthExpr(*stmt.lhs.partLo, scope,
                                      &state.ctx);
                result = insertBitsDyn(current(), sig.width, lo,
                                       static_cast<unsigned>(width),
                                       rhs);
            }
        } else if (stmt.lhs.index) {
            auto idx_const = tryConst(*stmt.lhs.index, scope,
                                      &state.ctx.locals);
            if (idx_const) {
                result = insertBits(current(), sig.width,
                                    static_cast<unsigned>(*idx_const),
                                    1, rhs, stmt.line);
            } else {
                NodeId idx = synthExpr(*stmt.lhs.index, scope,
                                       &state.ctx);
                result = insertBitsDyn(current(), sig.width, idx, 1,
                                       rhs);
            }
        } else {
            result = resize(rhs, sig.width);
        }
        state.ctx.vals[*flat] = result;
        if (is_ff && !stmt.nonblocking)
            state.ctx.reads[*flat] = result;
    }

    /** Insert @p value into bits [lsb, lsb+width) of @p base. */
    NodeId
    insertBits(NodeId base, unsigned base_w, unsigned lsb,
               unsigned width, NodeId value, int line)
    {
        if (lsb + width > base_w)
            fatal("line %d: bit insert [%u +: %u] exceeds width %u",
                  line, lsb, width, base_w);
        if (width == base_w)
            return resize(value, base_w);
        uint64_t mask = mask64(width) << lsb;
        NodeId cleared = addOp(Op::And, base_w,
                               {base, _nl.addConst(base_w, ~mask)});
        NodeId shifted = addOp(
            Op::Shl, base_w,
            {resize(value, base_w), _nl.addConst(32, lsb)});
        NodeId masked = addOp(Op::And, base_w,
                              {shifted, _nl.addConst(base_w, mask)});
        return addOp(Op::Or, base_w, {cleared, masked});
    }

    /** Insert with a dynamic bit offset. */
    NodeId
    insertBitsDyn(NodeId base, unsigned base_w, NodeId lsb,
                  unsigned width, NodeId value)
    {
        NodeId mask = addOp(
            Op::Shl, base_w,
            {_nl.addConst(base_w, mask64(width)), lsb});
        NodeId cleared = addOp(Op::And, base_w,
                               {base, addOp(Op::Not, base_w, {mask})});
        NodeId shifted = addOp(Op::Shl, base_w,
                               {resize(value, base_w), lsb});
        NodeId masked = addOp(Op::And, base_w, {shifted, mask});
        return addOp(Op::Or, base_w, {cleared, masked});
    }

    // --- state -----------------------------------------------------------

    std::map<std::string, const Module *> _modules;
    std::deque<Scope> _scopes;
    std::map<std::string, FlatSignal> _signals;
    std::vector<FlatBlock> _blocks;
    std::vector<std::string> _topInputs;
    std::vector<std::string> _topOutputs;
    std::vector<std::string> _genPrefix;
    size_t _instanceCount = 0;

    Netlist _nl;
    std::map<std::string, NodeId> _nodeOf;
    std::set<std::string> _inProgress;
};

} // namespace

Netlist
elaborate(const SourceUnit &unit, const std::string &top,
          const std::map<std::string, int64_t> &top_params)
{
    Elaborator elab(unit);
    return elab.run(top, top_params);
}

} // namespace ash::verilog
