/**
 * @file
 * Positioned diagnostics for the Verilog frontend.
 *
 * ParseError and ElabError refine ash::FatalError (so existing
 * catch-FatalError callers keep working) with machine-readable
 * position/subject accessors and — for parse errors — a
 * caret-annotated source snippet in what():
 *
 *   counter.v:7:13: expected ';' after assignment, got 'endmodule'
 *       assign q = d
 *                   ^
 *
 * Frontend errors are *user-input* failures: under the ash_guard
 * failure model they must surface as structured per-job diagnostics,
 * never aborts, which is why every lexer/parser/elaborator rejection
 * funnels through these types.
 */

#ifndef ASH_VERILOG_DIAG_H
#define ASH_VERILOG_DIAG_H

#include <string>

#include "common/Logging.h"

namespace ash::verilog {

/** A 1-based source position; col 0 means "column unknown". */
struct SourcePos
{
    std::string file;
    int line = 0;
    int col = 0;
};

/** Syntax/lex rejection with position and caret snippet; see above. */
class ParseError : public FatalError
{
  public:
    /** @p diagnostic is the complete what() text (built by callers
     *  via throwParseError / parseErrorf); @p message the bare
     *  position-free description. */
    ParseError(SourcePos pos, const std::string &message,
               const std::string &diagnostic)
        : FatalError("parse", diagnostic), _pos(std::move(pos)),
          _message(message)
    {
    }

    const SourcePos &pos() const { return _pos; }
    const std::string &file() const { return _pos.file; }
    int line() const { return _pos.line; }
    int col() const { return _pos.col; }
    /** The description without position/snippet decoration. */
    const std::string &message() const { return _message; }

  private:
    SourcePos _pos;
    std::string _message;
};

/** Elaboration rejection naming its subject (signal, module, port). */
class ElabError : public FatalError
{
  public:
    /** @p where names the context ("module 'm'", "signal 'x'"). */
    ElabError(std::string where, const std::string &message)
        : FatalError("elab", where.empty()
                                 ? message
                                 : where + ": " + message),
          _where(std::move(where))
    {
    }

    const std::string &where() const { return _where; }

  private:
    std::string _where;
};

/**
 * Compose the "file:line:col: msg" + caret-snippet diagnostic from
 * @p source and throw ParseError. An empty @p source or out-of-range
 * position degrades to the header line alone.
 */
[[noreturn]] void throwParseError(const std::string &source,
                                  SourcePos pos,
                                  const std::string &message);

/** printf-style convenience wrapper over throwParseError. */
[[noreturn]] void parseErrorf(const std::string &source, SourcePos pos,
                              const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

} // namespace ash::verilog

#endif // ASH_VERILOG_DIAG_H
