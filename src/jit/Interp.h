/**
 * @file
 * The no-toolchain fallback behind the jit engine: a compact bytecode
 * interpreter implementing exactly the KernelAbi.h step() contract
 * over the same host-owned arrays a compiled kernel uses. When the
 * kernel cache cannot produce a shared object (no compiler on PATH,
 * compile failure, corrupt cache, ASH_JIT_FORCE_INTERP), the
 * JitSimulator swaps this in and every observable — stats, outputs,
 * VCD, snapshots — stays byte-identical; only the speed differs.
 *
 * The program is the netlist decoded once into flat SoA instruction
 * streams (the ReferenceSimulator technique). It evaluates densely —
 * every node, every cycle, in levelized order — but keeps the same
 * change bookkeeping a compiled kernel does (single current-value
 * buffer, saved pre-change values, change flags + list), so the
 * JitSimulator cannot tell the backends apart. The dirty bitmap is
 * simply ignored: a dense schedule is a valid (maximal) sparse one.
 */

#ifndef ASH_JIT_INTERP_H
#define ASH_JIT_INTERP_H

#include <cstdint>
#include <vector>

#include "jit/KernelAbi.h"
#include "rtl/Netlist.h"

namespace ash::jit {

/** A decoded netlist; step() honors the JitStepFn contract. */
class InterpKernel
{
  public:
    explicit InterpKernel(const rtl::Netlist &nl);

    /** One simulated cycle; see jit::JitStepFn for the contract. */
    void step(const AshJitState *state) const;

  private:
    /** One decoded node, 32 bytes; operands live in _operandIdx. */
    struct Inst
    {
        rtl::Op op;
        uint8_t width;
        uint16_t numOperands;
        uint32_t dst;
        uint32_t opBase;    ///< First operand index in _operandIdx.
        uint32_t aux;       ///< Reg index / mem index / input slot.
        uint64_t imm;
    };

    struct WritePort
    {
        uint32_t mem;
        uint32_t addr, data, enable; ///< Driving node ids.
        uint64_t depth;
    };

    std::vector<Inst> _program;       ///< Levelized order.
    std::vector<uint32_t> _operandIdx;
    std::vector<uint8_t> _operandWidth;
    std::vector<uint64_t> _memDepth;  ///< MemRead bounds, by mem id.
    std::vector<uint32_t> _regNext;   ///< Latch source per register.
    std::vector<WritePort> _ports;    ///< All memories, port order.
};

} // namespace ash::jit

#endif // ASH_JIT_INTERP_H
