/**
 * @file
 * The jit cycle engine: refsim semantics at compiled-code speed. A
 * JitSimulator owns exactly the state arrays the reference simulator
 * owns (values / previous values / change flags / registers /
 * memories) and delegates the per-cycle work to a backend honoring
 * the KernelAbi.h step() contract:
 *
 *  - compiled: a per-design shared object from the KernelCache
 *    (emitted C++, host toolchain, fingerprint-keyed .so cache);
 *  - interp: the bytecode fallback (src/jit/Interp.h) when
 *    compilation is unavailable or fails.
 *
 * Both backends are held to byte-identical observables against the
 * reference simulator: same outputs, same VCD, same StatSet (stats
 * are folded locally per cycle — plain counters, a local Histogram
 * and Accumulator — and materialized on demand, so the hot loop
 * never touches a string map yet the materialized set matches
 * refsim's name-for-name and bit-for-bit). Snapshots use refsim's
 * section layout under engine name "jit"; the previous-values array
 * refsim double-buffers is materialized on save from the changed
 * list plus saved pre-change values, so the hot loop carries a
 * single value buffer.
 *
 * Per-cycle statistics (changed-node count, activity walk over the
 * CSR fanout graph) are derived from the backend's changed list, so
 * host bookkeeping is proportional to activity, like the kernel.
 */

#ifndef ASH_JIT_JITSIMULATOR_H
#define ASH_JIT_JITSIMULATOR_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/Stats.h"
#include "jit/Interp.h"
#include "jit/KernelCache.h"
#include "refsim/CycleEngine.h"
#include "rtl/Netlist.h"

namespace ash::jit {

/** Compiled-kernel (or fallback-interpreted) CycleEngine. */
class JitSimulator : public refsim::CycleEngine
{
  public:
    /**
     * Build for @p netlist. Kernel acquisition happens here (compile
     * or cache hit); on any failure the engine silently degrades to
     * the interpreter — construction never throws for toolchain
     * reasons. @p options fields left empty resolve from the
     * environment (ASH_JIT_CACHE_DIR, ASH_JIT_CXX,
     * ASH_JIT_FORCE_INTERP).
     */
    explicit JitSimulator(const rtl::Netlist &netlist,
                          const JitOptions &options = {});

    void step(refsim::Stimulus &stimulus) override;
    refsim::OutputTrace run(refsim::Stimulus &stimulus,
                            uint64_t cycles,
                            ckpt::CycleHook *hook = nullptr) override;

    /// @name ckpt::Snapshotter
    /// @{
    void save(std::ostream &out) const override;
    void restore(std::istream &in) override;
    const char *engineName() const override { return "jit"; }
    /// @}

    uint64_t value(rtl::NodeId id) const override
    { return _values[id]; }
    refsim::OutputFrame outputFrame() const override;
    uint64_t cycle() const override { return _cycle; }
    const std::vector<uint8_t> &changedLastCycle() const override
    { return _changed; }
    double activityFactor() const override;
    void reset() override;
    const StatSet &stats() const override;

    /** "compiled" when a native kernel drives step(), else "interp". */
    const char *backend() const
    { return _kernel ? "compiled" : "interp"; }

    /** Why the engine fell back to the interpreter ("" when it
     *  didn't). */
    const std::string &fallbackReason() const
    { return _fallbackReason; }

  private:
    void foldStats() const;
    void unfoldStats();
    void rebuildMemPtrs();
    void markAllDirty();

    const rtl::Netlist &_nl;
    KernelPtr _kernel;                  ///< Null = interpreter mode.
    std::unique_ptr<InterpKernel> _interp;
    std::string _fallbackReason;

    // Simulated state. _values is the single current-value buffer;
    // refsim's previous-values array is reconstructed on demand from
    // _changed/_prevSaved (for an unchanged node prev == current by
    // definition), which keeps snapshots byte-identical in shape.
    std::vector<uint64_t> _values;
    std::vector<uint64_t> _prevSaved;   ///< Pre-change value, listed ids.
    std::vector<uint8_t> _changed;
    std::vector<uint32_t> _changedList; ///< First _listLen entries live.
    uint64_t _listLen = 0;
    std::vector<uint64_t> _dirty;       ///< Block dirty bitmap words.
    std::vector<uint64_t> _armed;       ///< Armed write-port bitmap.
    std::vector<rtl::NodeId> _portEn;   ///< Enable node per port.
    std::vector<uint64_t> _regState;
    std::vector<std::vector<uint64_t>> _memState;
    std::vector<uint64_t *> _memPtrs;   ///< One raw pointer per memory.
    std::vector<uint64_t> _inputBuffer;

    // Change tracking and activity accounting (host side, shared by
    // both backends): refsim's CSR fanout walk — same visited set,
    // same cost sum — but with the per-node stamp and cost packed
    // into one word (stamp high, cost low) so each visit is a single
    // load + conditional store instead of two scattered loads.
    std::vector<uint32_t> _fanoutBase;  ///< CSR row starts (n+1).
    std::vector<uint32_t> _fanoutList;  ///< CSR consumer node ids.
    std::vector<uint64_t> _stampCost;   ///< stamp<<32 | nodeCost.
    uint32_t _stampGen = 0;

    uint64_t _cycle = 0;
    double _activeCostSum = 0.0;
    uint64_t _totalCost = 0;
    uint64_t _nodesPerCycle = 0;        ///< refsim's order.size().

    // Locally-folded stats (see file header); materialized into
    // _stats by foldStats() only when someone asks.
    uint64_t _ctrChanged = 0;
    uint64_t _ctrMemWrites = 0;
    Histogram _histChanged;
    Accumulator _accActive;
    mutable StatSet _stats;
    mutable bool _statsDirty = false;
};

/**
 * Engine factory for `--engine refsim|jit` call sites: constructs the
 * named functional engine over @p netlist. Throws ash::Error for an
 * unknown name.
 */
std::unique_ptr<refsim::CycleEngine>
makeEngine(const std::string &name, const rtl::Netlist &netlist,
           const JitOptions &options = {});

} // namespace ash::jit

#endif // ASH_JIT_JITSIMULATOR_H
