#include "jit/Interp.h"

#include "common/BitUtils.h"
#include "common/Logging.h"
#include "jit/KernelAbi.h"

namespace ash::jit {

using rtl::Node;
using rtl::NodeId;
using rtl::Op;

InterpKernel::InterpKernel(const rtl::Netlist &nl)
{
    std::vector<NodeId> order = nl.topoOrder();
    _program.reserve(order.size());

    // Input slot assignment mirrors the stimulus buffer layout.
    std::vector<uint32_t> inputSlot(nl.numNodes(), 0);
    for (size_t i = 0; i < nl.inputs().size(); ++i)
        inputSlot[nl.inputs()[i]] = static_cast<uint32_t>(i);

    for (NodeId id : order) {
        const Node &node = nl.node(id);
        Inst inst;
        inst.op = node.op;
        inst.width = static_cast<uint8_t>(node.width);
        inst.numOperands =
            static_cast<uint16_t>(node.operands.size());
        inst.dst = id;
        inst.opBase = static_cast<uint32_t>(_operandIdx.size());
        inst.aux = 0;
        inst.imm = node.imm;
        if (node.op == Op::Reg)
            inst.aux = static_cast<uint32_t>(nl.regIndex(id));
        else if (node.op == Op::MemRead)
            inst.aux = node.mem;
        else if (node.op == Op::Input)
            inst.aux = inputSlot[id];
        for (NodeId oper : node.operands) {
            _operandIdx.push_back(oper);
            _operandWidth.push_back(
                static_cast<uint8_t>(nl.node(oper).width));
        }
        _program.push_back(inst);
    }

    for (const rtl::MemInfo &mem : nl.memories())
        _memDepth.push_back(mem.depth);

    for (const rtl::RegInfo &reg : nl.regs())
        _regNext.push_back(reg.next);

    for (size_t m = 0; m < nl.memories().size(); ++m) {
        for (NodeId portId : nl.memories()[m].writePorts) {
            const Node &port = nl.node(portId);
            WritePort p;
            p.mem = static_cast<uint32_t>(m);
            p.addr = port.operands[0];
            p.data = port.operands[1];
            p.enable = port.operands[2];
            p.depth = nl.memories()[m].depth;
            _ports.push_back(p);
        }
    }
}

void
InterpKernel::step(const AshJitState *state) const
{
    uint64_t *vals = state->cur;
    uint64_t *regs = state->regs;
    uint64_t *const *mems = state->mems;
    const uint64_t *inputs = state->inputs;
    const uint32_t *opIdx = _operandIdx.data();
    const uint8_t *opW = _operandWidth.data();
    uint64_t nch = 0;

    for (const Inst &inst : _program) {
        const uint32_t *ops = opIdx + inst.opBase;
        const uint8_t *ows = opW + inst.opBase;
        auto in = [&](size_t i) { return vals[ops[i]]; };

        uint64_t result = 0;
        switch (inst.op) {
          case Op::Input:
            result = truncate(inputs[inst.aux], inst.width);
            break;
          case Op::Const:
            result = inst.imm;  // Raw, like refsim.
            break;
          case Op::Reg:
            result = regs[inst.aux];
            break;
          case Op::MemRead: {
            uint64_t addr = in(0);
            result = addr < _memDepth[inst.aux]
                         ? mems[inst.aux][addr]
                         : 0;
            break;
          }
          case Op::MemWrite:
            continue;   // Sink: effects applied at the clock edge.

          case Op::And:
            result = truncate(in(0) & in(1), inst.width);
            break;
          case Op::Or:
            result = truncate(in(0) | in(1), inst.width);
            break;
          case Op::Xor:
            result = truncate(in(0) ^ in(1), inst.width);
            break;
          case Op::Not:
            result = truncate(~in(0), inst.width);
            break;
          case Op::Add:
            result = truncate(in(0) + in(1), inst.width);
            break;
          case Op::Sub:
            result = truncate(in(0) - in(1), inst.width);
            break;
          case Op::Mul:
            result = truncate(in(0) * in(1), inst.width);
            break;
          case Op::Div:
            result = truncate(in(1) ? in(0) / in(1) : 0, inst.width);
            break;
          case Op::Mod:
            result = truncate(in(1) ? in(0) % in(1) : 0, inst.width);
            break;
          case Op::Shl:
            result = truncate(
                in(1) >= inst.width ? 0 : in(0) << in(1), inst.width);
            break;
          case Op::LShr:
            result = truncate(in(1) >= ows[0] ? 0 : in(0) >> in(1),
                              inst.width);
            break;
          case Op::AShr: {
            int64_t v = signExtend(in(0), ows[0]);
            uint64_t sh = in(1) >= ows[0] ? ows[0] - 1u : in(1);
            result = truncate(static_cast<uint64_t>(v >> sh),
                              inst.width);
            break;
          }
          case Op::Eq:
            result = in(0) == in(1);
            break;
          case Op::Ne:
            result = in(0) != in(1);
            break;
          case Op::Lt:
            result = in(0) < in(1);
            break;
          case Op::Le:
            result = in(0) <= in(1);
            break;
          case Op::Gt:
            result = in(0) > in(1);
            break;
          case Op::Ge:
            result = in(0) >= in(1);
            break;
          case Op::SLt:
            result = signExtend(in(0), ows[0]) <
                     signExtend(in(1), ows[1]);
            break;
          case Op::SLe:
            result = signExtend(in(0), ows[0]) <=
                     signExtend(in(1), ows[1]);
            break;
          case Op::SGt:
            result = signExtend(in(0), ows[0]) >
                     signExtend(in(1), ows[1]);
            break;
          case Op::SGe:
            result = signExtend(in(0), ows[0]) >=
                     signExtend(in(1), ows[1]);
            break;
          case Op::Mux:
            result = truncate(in(0) ? in(1) : in(2), inst.width);
            break;
          case Op::Concat: {
            for (uint16_t i = 0; i < inst.numOperands; ++i)
                result = (result << ows[i]) | truncate(in(i), ows[i]);
            result = truncate(result, inst.width);
            break;
          }
          case Op::Slice:
            result = truncate(in(0) >> inst.imm, inst.width);
            break;
          case Op::ZExt:
            result = truncate(in(0), inst.width);
            break;
          case Op::SExt:
            result = truncate(
                static_cast<uint64_t>(signExtend(in(0), ows[0])),
                inst.width);
            break;
          case Op::RedAnd:
            result = truncate(in(0), ows[0]) == mask64(ows[0]);
            break;
          case Op::RedOr:
            result = in(0) != 0;
            break;
          case Op::RedXor:
            result = __builtin_parityll(in(0));
            break;
          case Op::Output:
            result = truncate(in(0), inst.width);
            break;
        }

        // Same change bookkeeping as a compiled kernel's change
        // path; levelized order makes the list ascending.
        if (result != vals[inst.dst]) {
            state->prevSaved[inst.dst] = vals[inst.dst];
            vals[inst.dst] = result;
            state->ch[inst.dst] = 1;
            state->changedList[nch++] = inst.dst;
        }
    }

    // Phase 2: clock edge — latch registers in place (the file is not
    // read after eval), then memory writes in port order.
    for (size_t i = 0; i < _regNext.size(); ++i)
        regs[i] = vals[_regNext[i]];

    uint64_t mw = 0;
    for (const WritePort &p : _ports) {
        if (!vals[p.enable])
            continue;
        uint64_t addr = vals[p.addr];
        if (addr < p.depth) {
            mems[p.mem][addr] = vals[p.data];
            ++mw;
        }
    }

    state->counters[kCtrChanged] = nch;
    state->counters[kCtrMemWrites] = mw;
}

} // namespace ash::jit
