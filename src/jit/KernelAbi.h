/**
 * @file
 * The binary contract between the host and a compiled design kernel
 * (the generated .so) — shared by the bytecode fallback interpreter
 * so the JitSimulator drives both backends identically. The generated
 * source re-declares these structs verbatim (it must be
 * self-contained, compilable with nothing but <cstdint>), so any
 * change here requires bumping kJitAbiVersion — the cache key embeds
 * it, which is what makes stale shared objects invisible rather than
 * undefined behavior.
 *
 * ABI v3 is *activity-driven*: the kernel owns the full simulated
 * cycle (eval + clock edge) but evaluates only dirty blocks. Nodes
 * are grouped into fixed-size blocks in levelized order; a bitmap
 * holds one dirty bit per block. The kernel clears a block's bit
 * when it evaluates the block and re-marks consumer blocks when a
 * node's value actually changes (the consumer sets are known at
 * codegen time and baked in as constant mask ORs). Sources re-arm
 * the bitmap at the cycle boundaries: the input prologue marks input
 * nodes whose stimulus value differs, the edge marks register nodes
 * whose register latched a new value and the readers of any memory
 * that was written. Setting *extra* dirty bits is always sound —
 * re-evaluating a clean node produces the same value and no change
 * record — which is why reset/restore simply mark everything dirty;
 * the sparse schedule is a pure optimization over refsim semantics.
 *
 * The clock edge is activity-driven too: memory write ports are
 * visited through an *armed-port* bitmap (one bit per write port,
 * global port index = memory-ascending, port order within — exactly
 * refsim's application order). A port is armed iff its enable node's
 * value is currently nonzero; the kernel flips the bit inside the
 * enable node's change record, so the per-cycle edge cost is the
 * handful of armed ports, not the full port list. The invariant is
 * value-based, which is why the host can rebuild the bitmap from the
 * value buffer after restore (and clear it on reset, where all
 * values are zero).
 *
 * Change bookkeeping: values live in a single current-value buffer.
 * When a node's value changes the kernel saves the old value (for
 * snapshot materialization of refsim's previous-values array), sets
 * the node's change flag, and appends the node id to the changed
 * list. The host clears the previous cycle's flags (via the list)
 * before each step and derives every per-cycle statistic from the
 * list afterwards, so bookkeeping cost scales with activity, not
 * with design size.
 */

#ifndef ASH_JIT_KERNELABI_H
#define ASH_JIT_KERNELABI_H

#include <cstddef>
#include <cstdint>

namespace ash::jit {

/** Bump on ANY change to the structs or the step() contract. */
constexpr uint32_t kJitAbiVersion = 3;

/** Nodes per dirty-tracking block (levelized-order granule). */
constexpr uint32_t kJitBlockNodes = 16;

/** Indices into the step() counters array. */
enum : uint32_t {
    kCtrChanged = 0,   ///< Changed nodes this cycle (list length).
    kCtrMemWrites = 1, ///< In-bounds enabled memory writes.
    kNumCounters = 2,
};

/** Everything a kernel touches during one step; all arrays are host
 *  owned. Field order is frozen (re-declared in generated code). */
struct AshJitState
{
    uint64_t *cur;         ///< Current value per node [numNodes].
    uint64_t *prevSaved;   ///< Pre-change value, valid for listed ids.
    uint8_t *ch;           ///< Change flag per node; host pre-clears.
    uint32_t *changedList; ///< Changed node ids, ascending topo order.
    uint64_t *dirty;       ///< Block dirty bitmap [numBlockWords].
    uint64_t *armed;       ///< Armed write-port bitmap [numPortWords].
    uint64_t *regs;        ///< Register file [numRegs].
    uint64_t *const *mems; ///< One contents pointer per memory.
    const uint64_t *inputs;///< Raw stimulus values for this cycle.
    uint64_t *counters;    ///< [kNumCounters], zeroed by the host.
};

/** One simulated cycle (two-phase: sparse eval, then clock edge). */
using JitStepFn = void (*)(const AshJitState *state);

/**
 * The descriptor the .so exports; every field is validated against
 * the netlist before the host ever calls step().
 */
struct AshJitKernel
{
    uint32_t abiVersion;       ///< kJitAbiVersion at codegen time.
    uint32_t numInputs;
    uint64_t designFingerprint;///< ckpt::designFingerprint of the design.
    uint64_t codegenVersion;   ///< Codegen.h kCodegenVersion.
    uint32_t numNodes;
    uint32_t numRegs;
    uint32_t numMems;
    uint32_t numBlockWords;    ///< Dirty bitmap size in u64 words.
    uint32_t numPortWords;     ///< Armed-port bitmap size in words.
    JitStepFn step;
};

/** Name of the .so's single entry point. */
constexpr const char *kJitEntrySymbol = "ash_jit_kernel";

/** Signature of the entry point: returns the kernel descriptor. */
using JitEntryFn = const AshJitKernel *(*)();

/** Dirty bitmap words needed for @p orderSize levelized nodes. */
constexpr uint32_t
jitBlockWords(size_t orderSize)
{
    size_t blocks =
        (orderSize + kJitBlockNodes - 1) / kJitBlockNodes;
    return static_cast<uint32_t>((blocks + 63) / 64);
}

/** Armed-port bitmap words needed for @p numPorts write ports. */
constexpr uint32_t
jitPortWords(size_t numPorts)
{
    return static_cast<uint32_t>((numPorts + 63) / 64);
}

} // namespace ash::jit

#endif // ASH_JIT_KERNELABI_H
