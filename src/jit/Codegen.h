/**
 * @file
 * Per-design C++ code generation: walk the levelized RTL IR and emit
 * a self-contained translation unit implementing one simulated cycle
 * as straight-line code (src/jit/KernelAbi.h is the contract). The
 * emitted kernel mirrors the reference simulator's semantics
 * EXACTLY — same evaluation order, same truncation points, same
 * change-detection and activity-accounting math — so the jit engine's
 * stats, outputs, VCD, and snapshots are byte-identical to refsim's.
 *
 * What the compiler buys us over the interpreting engines:
 *  - no per-node dispatch: every node is an inline expression, so the
 *    host compiler sees the whole dataflow and register-allocates it;
 *  - constant folding: Const operands become literals, which turns
 *    the NTT's modular reductions into multiply-by-reciprocal
 *    sequences instead of hardware divides;
 *  - activity-driven scheduling: nodes are grouped into levelized
 *    blocks guarded by a dirty bitmap, and each node's statically
 *    known consumer-block set is baked in as constant mask ORs on
 *    its change path — so per-cycle work (including the i-cache
 *    stream) scales with the design's activity factor, not its size.
 *    This is the paper's central observation applied to the host:
 *    most RTL nodes do not toggle most cycles.
 *
 * The eval code is chunked into segment functions of a few hundred
 * nodes to keep host-compiler memory and time linear in design size.
 */

#ifndef ASH_JIT_CODEGEN_H
#define ASH_JIT_CODEGEN_H

#include <cstdint>
#include <string>

#include "rtl/Netlist.h"

namespace ash::jit {

/**
 * Version of the code generator, part of the kernel cache key. Bump
 * whenever emitted code semantics or shape change so stale cached
 * shared objects miss instead of loading.
 */
constexpr uint64_t kCodegenVersion = 3;

/**
 * Emit the complete kernel source for @p nl. @p fingerprint
 * (ckpt::designFingerprint) is baked into the kernel descriptor and
 * re-checked at load time. Deterministic: same netlist, same bytes.
 */
std::string emitKernelSource(const rtl::Netlist &nl,
                             uint64_t fingerprint);

/**
 * Whether the code generator can emit lane-batched kernels (one
 * compiled step evaluating W scenarios per call) for ash_lanes.
 * Currently always false: LaneBatchEngine probes this at construction
 * and falls back to its built-in batched interpreter. When batched
 * emission lands, this turns true and kCodegenVersion must bump so
 * cached single-lane kernels miss.
 */
bool laneKernelSupported();

} // namespace ash::jit

#endif // ASH_JIT_CODEGEN_H
