#include "jit/KernelCache.h"

#include <dlfcn.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <thread>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <map>
#include <mutex>
#include <sstream>
#include <vector>

#include "ckpt/Checkpoint.h"
#include "ckpt/Snapshot.h"
#include "common/BuildInfo.h"
#include "common/Error.h"
#include "common/Logging.h"
#include "common/TmpPath.h"
#include "guard/Cancel.h"
#include "guard/Fault.h"
#include "jit/Codegen.h"
#include "rtl/Netlist.h"

namespace fs = std::filesystem;

namespace ash::jit {

namespace {

/** Compiler flags for kernel TUs; part of the toolchain stamp. */
constexpr const char *kCompileFlags =
    "-std=c++17 -O2 -fPIC -shared -fno-exceptions -fno-rtti";

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

std::string
envOr(const char *name, const std::string &fallback)
{
    const char *v = std::getenv(name);
    return v && *v ? std::string(v) : fallback;
}

/** Read a whole file; false on any error. */
bool
slurp(const std::string &path, std::vector<char> &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    in.seekg(0, std::ios::end);
    std::streampos len = in.tellg();
    if (len < 0)
        return false;
    in.seekg(0, std::ios::beg);
    out.resize(static_cast<size_t>(len));
    if (len > 0)
        in.read(out.data(), len);
    return static_cast<bool>(in);
}

/** Atomic publish: write to a salted tmp name, then rename. */
bool
atomicWrite(const std::string &path, const void *data, size_t len)
{
    const std::string tmp = uniqueTmpPath(path);
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out.write(static_cast<const char *>(data),
                  static_cast<std::streamsize>(len));
        if (!out)
            return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

std::string
hex64(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Single-quote @p s for /bin/sh. */
std::string
shQuote(const std::string &s)
{
    std::string out = "'";
    for (char c : s) {
        if (c == '\'')
            out += "'\\''";
        else
            out.push_back(c);
    }
    out += "'";
    return out;
}

} // namespace

JitOptions
JitOptions::resolved(const JitOptions &base)
{
    JitOptions o = base;
    if (o.cacheDir.empty())
        o.cacheDir = envOr("ASH_JIT_CACHE_DIR", ".ash-jit-cache");
    if (o.compiler.empty()) {
#ifdef ASH_JIT_DEFAULT_CXX
        o.compiler = envOr("ASH_JIT_CXX", ASH_JIT_DEFAULT_CXX);
#else
        o.compiler = envOr("ASH_JIT_CXX", "c++");
#endif
    }
    if (const char *v = std::getenv("ASH_JIT_FORCE_INTERP");
        v && *v && std::string(v) != "0")
        o.forceInterp = true;
    if (o.compileBudgetMs == 0) {
        if (const char *v = std::getenv("ASH_JIT_COMPILE_BUDGET_MS");
            v && *v)
            o.compileBudgetMs = std::strtoull(v, nullptr, 10);
    }
    return o;
}

LoadedKernel::~LoadedKernel()
{
    if (_dl)
        ::dlclose(_dl);
}

struct KernelCache::Impl
{
    std::mutex mutex;
    /** In-flight and completed loads, keyed by cache key. Futures
     *  resolve to null on failure (the reason lives in `whys`). */
    std::map<std::string, std::shared_future<KernelPtr>> slots;
    /** Failure memo: repeated acquires for a broken key report the
     *  original reason instead of re-running the toolchain. */
    std::map<std::string, std::string> whys;
    Snapshot snap;

    KernelPtr load(const rtl::Netlist &nl, const JitOptions &opts,
                   const std::string &key, std::string &why,
                   bool &transient);
    KernelPtr tryOpen(const rtl::Netlist &nl, const std::string &so,
                      std::string &why);
    bool compile(const rtl::Netlist &nl, const JitOptions &opts,
                 const std::string &so, std::string &why,
                 bool &transient);
    bool crcOk(const std::string &so, std::string &why);
};

KernelCache &
KernelCache::instance()
{
    static KernelCache cache;
    return cache;
}

KernelCache::Impl &
KernelCache::impl() const
{
    static Impl impl;
    return impl;
}

std::string
KernelCache::keyFor(const rtl::Netlist &nl,
                    const JitOptions &opts) const
{
    // Content address: the design itself, the codegen/ABI revisions,
    // and the toolchain (driver + flags + the host compiler stamp).
    // Changing any of these shifts the key, so stale objects from an
    // older toolchain or emitter never load — they just miss.
    uint64_t h = ckpt::designFingerprint(nl);
    h = ckpt::fnv1a(&kCodegenVersion, sizeof(kCodegenVersion), h);
    h = ckpt::fnv1a(&kJitAbiVersion, sizeof(kJitAbiVersion), h);
    // Resolved so "use the default toolchain" and the default
    // toolchain named explicitly land on the same key (idempotent
    // for already-resolved options).
    std::string stamp = JitOptions::resolved(opts).compiler;
    stamp += '\0';
    stamp += kCompileFlags;
    stamp += '\0';
    stamp += buildinfo::kCompiler;
    h = ckpt::fnv1a(stamp.data(), stamp.size(), h);
    return "ash-jit-" + hex64(h);
}

KernelPtr
KernelCache::acquire(const rtl::Netlist &nl, const JitOptions &opts,
                     std::string *whyNot)
{
    Impl &im = impl();
    // Resolve env-var defaults here, not just in the engine ctor, so
    // direct cache users (benches, tests, CI tooling) get the same
    // behavior — and the key always embeds the actual toolchain.
    const JitOptions ropts = JitOptions::resolved(opts);
    const std::string key = keyFor(nl, ropts);

    std::shared_future<KernelPtr> future;
    std::shared_ptr<std::packaged_task<KernelPtr()>> task;
    {
        std::lock_guard<std::mutex> lock(im.mutex);
        auto why = im.whys.find(key);
        if (why != im.whys.end()) {
            if (whyNot)
                *whyNot = why->second;
            return nullptr;
        }
        auto it = im.slots.find(key);
        if (it == im.slots.end()) {
            // First toucher builds (outside the lock, below);
            // concurrent same-key callers block on the shared future
            // instead of racing the toolchain.
            task = std::make_shared<std::packaged_task<KernelPtr()>>(
                [&im, &nl, opts = ropts, key]() -> KernelPtr {
                    std::string why;
                    bool transient = false;
                    KernelPtr k =
                        im.load(nl, opts, key, why, transient);
                    std::lock_guard<std::mutex> relock(im.mutex);
                    if (!k) {
                        ++im.snap.failures;
                        // A transient failure (deadline-killed
                        // compile) is not memoized: this request
                        // falls back to the interpreter, but a later
                        // unhurried request may still build the
                        // kernel.
                        if (!transient)
                            im.whys[key] = why;
                        im.slots.erase(key);
                    }
                    return k;
                });
            it = im.slots.emplace(key, task->get_future().share())
                     .first;
        } else if (!task) {
            ++im.snap.memoryHits;
        }
        future = it->second;
    }

    if (task)
        (*task)();
    KernelPtr k = future.get();
    if (!k && whyNot) {
        std::lock_guard<std::mutex> lock(im.mutex);
        auto why = im.whys.find(key);
        *whyNot = why != im.whys.end() ? why->second
                                       : "kernel load failed";
    }
    return k;
}

void
KernelCache::dropInMemory()
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mutex);
    im.slots.clear();
    im.whys.clear();
}

KernelCache::Snapshot
KernelCache::stats() const
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mutex);
    return im.snap;
}

/**
 * The cold path for one key: disk hit (CRC-verified dlopen) or
 * compile-and-publish, then dlopen. Runs outside the cache lock.
 */
KernelPtr
KernelCache::Impl::load(const rtl::Netlist &nl, const JitOptions &opts,
                        const std::string &key, std::string &why,
                        bool &transient)
{
    std::error_code ec;
    fs::create_directories(opts.cacheDir, ec);
    const std::string so = opts.cacheDir + "/" + key + ".so";

    if (fs::exists(so, ec)) {
        std::string diskWhy;
        if (crcOk(so, diskWhy)) {
            KernelPtr k = tryOpen(nl, so, diskWhy);
            if (k) {
                std::lock_guard<std::mutex> lock(mutex);
                ++snap.diskHits;
                return k;
            }
        }
        // A corrupt or unloadable cached object is not fatal: warn,
        // fall through, and recompile over it.
        warn("jit: cached kernel %s unusable (%s); recompiling",
             so.c_str(), diskWhy.c_str());
    }

    if (!compile(nl, opts, so, why, transient))
        return nullptr;
    KernelPtr k = tryOpen(nl, so, why);
    if (k) {
        std::lock_guard<std::mutex> lock(mutex);
        ++snap.compiles;
    }
    return k;
}

/** CRC32 sidecar check; a missing sidecar counts as corrupt. */
bool
KernelCache::Impl::crcOk(const std::string &so, std::string &why)
{
    std::vector<char> bytes;
    if (!slurp(so, bytes)) {
        why = "unreadable cached object";
        return false;
    }
    ASH_FAULT_CORRUPT("jit.cache.bytes", bytes.data(), bytes.size());
    std::vector<char> sidecar;
    if (!slurp(so + ".crc", sidecar) ||
        sidecar.size() != sizeof(uint32_t)) {
        why = "missing CRC sidecar";
        return false;
    }
    uint32_t want;
    std::memcpy(&want, sidecar.data(), sizeof(want));
    uint32_t got = ckpt::crc32(bytes.data(), bytes.size());
    if (got != want) {
        why = "CRC mismatch";
        return false;
    }
    return true;
}

/** dlopen + descriptor validation against @p nl. */
KernelPtr
KernelCache::Impl::tryOpen(const rtl::Netlist &nl,
                           const std::string &so, std::string &why)
{
    auto t0 = std::chrono::steady_clock::now();
    try {
        ASH_FAULT_POINT("jit.dlopen");
    } catch (const std::exception &e) {
        why = e.what();
        return nullptr;
    }
    void *dl = ::dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (!dl) {
        const char *err = ::dlerror();
        why = std::string("dlopen failed: ") + (err ? err : "?");
        return nullptr;
    }
    auto entry = reinterpret_cast<JitEntryFn>(
        ::dlsym(dl, kJitEntrySymbol));
    if (!entry) {
        ::dlclose(dl);
        why = std::string("missing entry symbol ") + kJitEntrySymbol;
        return nullptr;
    }
    const AshJitKernel *info = entry();
    // The key should make a mismatch impossible; validate anyway —
    // calling a wrong-shape kernel is memory corruption, not an error.
    if (!info || info->abiVersion != kJitAbiVersion ||
        info->designFingerprint != ckpt::designFingerprint(nl) ||
        info->codegenVersion != kCodegenVersion ||
        info->numNodes != nl.numNodes() ||
        info->numRegs != nl.regs().size() ||
        info->numMems != nl.memories().size() ||
        info->numInputs != nl.inputs().size() ||
        info->numBlockWords !=
            jitBlockWords(nl.topoOrder().size()) ||
        info->numPortWords != jitPortWords([&] {
            size_t p = 0;
            for (const rtl::MemInfo &mem : nl.memories())
                p += mem.writePorts.size();
            return p;
        }()) ||
        !info->step) {
        ::dlclose(dl);
        why = "kernel descriptor mismatch";
        return nullptr;
    }
    auto k = std::make_shared<LoadedKernel>(dl, info, so);
    {
        std::lock_guard<std::mutex> lock(mutex);
        snap.lastLoadMs = msSince(t0);
    }
    return k;
}

/** Emit, compile, CRC, and atomically publish @p so. Sets
 *  @p transient (and returns false) when the toolchain was killed by
 *  the compile budget or the thread's CancelToken rather than
 *  failing on its own. */
bool
KernelCache::Impl::compile(const rtl::Netlist &nl,
                           const JitOptions &opts,
                           const std::string &so, std::string &why,
                           bool &transient)
{
    auto t0 = std::chrono::steady_clock::now();
    const std::string src =
        emitKernelSource(nl, ckpt::designFingerprint(nl));

    const std::string soTmp = uniqueTmpPath(so);
    // The .cc suffix must be LAST or the driver won't see C++ input.
    const std::string ccPath = soTmp + ".cc";
    const std::string logPath = soTmp + ".log";
    auto cleanup = [&] {
        std::remove(ccPath.c_str());
        std::remove(soTmp.c_str());
        std::remove(logPath.c_str());
    };

    try {
        ASH_FAULT_POINT("jit.source.write");
        if (!atomicWrite(ccPath, src.data(), src.size()))
            throw Error("jit", "cannot write kernel source");
        ASH_FAULT_POINT("jit.compile");
    } catch (const std::exception &e) {
        why = e.what();
        cleanup();
        return false;
    }

    std::string cmd = opts.compiler;
    cmd += " ";
    cmd += kCompileFlags;
    cmd += " -o " + shQuote(soTmp) + " " + shQuote(ccPath);
    cmd += " > " + shQuote(logPath) + " 2>&1";

    // The toolchain runs as a watched child (its own process group,
    // so the kill reaches cc1plus behind the sh) instead of a
    // blocking std::system: a cold compile must respect the caller's
    // deadline — the supervisor would otherwise SIGKILL the whole
    // worker for a slow -O2 run, losing its warm caches — and the
    // thread's CancelToken (the serve watchdog) for the same reason.
    pid_t pid = ::fork();
    if (pid < 0) {
        why = "fork failed for compiler";
        cleanup();
        return false;
    }
    if (pid == 0) {
        ::setpgid(0, 0);
        ::execl("/bin/sh", "sh", "-c", cmd.c_str(),
                static_cast<char *>(nullptr));
        ::_exit(127);
    }
    using Clock = std::chrono::steady_clock;
    Clock::time_point budgetEnd =
        Clock::now() + std::chrono::milliseconds(opts.compileBudgetMs);
    int status = 0;
    bool killed = false;
    for (;;) {
        pid_t got = ::waitpid(pid, &status, WNOHANG);
        if (got == pid)
            break;
        if (got < 0) {
            status = 0;
            break;
        }
        guard::CancelToken *token = guard::CancelToken::current();
        bool cancelled = token && token->cancelled();
        bool overBudget = opts.compileBudgetMs > 0 &&
                          Clock::now() >= budgetEnd;
        if (cancelled || overBudget) {
            ::kill(-pid, SIGKILL);
            ::waitpid(pid, &status, 0);
            killed = true;
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    if (killed) {
        warn("jit: compile for %s killed after %.0f ms "
             "(budget %llu ms); falling back to the interpreter",
             so.c_str(), msSince(t0),
             static_cast<unsigned long long>(opts.compileBudgetMs));
        why = "compile killed by deadline (budget " +
              std::to_string(opts.compileBudgetMs) + " ms)";
        transient = true;
        cleanup();
        return false;
    }
    int rc = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    if (rc != 0) {
        std::vector<char> log;
        slurp(logPath, log);
        std::ostringstream os;
        os << "compile failed (exit " << rc << "): "
           << opts.compiler;
        if (!log.empty())
            os << "\n"
               << std::string(log.data(),
                              std::min<size_t>(log.size(), 2000));
        why = os.str();
        cleanup();
        return false;
    }

    std::vector<char> bytes;
    if (!slurp(soTmp, bytes) || bytes.empty()) {
        why = "compiler produced no output";
        cleanup();
        return false;
    }
    uint32_t crc = ckpt::crc32(bytes.data(), bytes.size());
    // Sidecar first, object last: a reader that sees the .so also
    // sees its checksum (either may be torn alone; CRC catches it).
    if (!atomicWrite(so + ".crc", &crc, sizeof(crc)) ||
        std::rename(soTmp.c_str(), so.c_str()) != 0) {
        why = "cannot publish compiled kernel";
        cleanup();
        return false;
    }
    std::remove(ccPath.c_str());
    std::remove(logPath.c_str());
    {
        std::lock_guard<std::mutex> lock(mutex);
        snap.lastCompileMs = msSince(t0);
    }
    debugLog("jit: compiled %s in %.1f ms", so.c_str(),
             msSince(t0));
    return true;
}

} // namespace ash::jit
