#include "jit/JitSimulator.h"

#include "common/BitUtils.h"
#include "common/Error.h"
#include "common/Logging.h"
#include "guard/Cancel.h"
#include "obs/Trace.h"
#include "prof/Prof.h"
#include "refsim/ReferenceSimulator.h"
#include "rtl/Cost.h"

namespace ash::jit {

namespace {

/** Section tags — refsim's snapshot layout, verbatim. */
enum : uint32_t {
    kSecState = 1,
    kSecStats = 2,
};

} // namespace

JitSimulator::JitSimulator(const rtl::Netlist &netlist,
                           const JitOptions &options)
    : _nl(netlist), _values(netlist.numNodes(), 0),
      _prevSaved(netlist.numNodes(), 0),
      _changed(netlist.numNodes(), 0),
      _changedList(netlist.numNodes(), 0),
      _inputBuffer(netlist.inputs().size(), 0)
{
    JitOptions opts = JitOptions::resolved(options);
    if (opts.forceInterp) {
        _fallbackReason = "interpreter forced";
    } else {
        std::string why;
        _kernel = KernelCache::instance().acquire(_nl, opts, &why);
        if (!_kernel) {
            _fallbackReason = why;
            warn("jit: falling back to interpreter: %s",
                 why.c_str());
        }
    }
    if (!_kernel)
        _interp = std::make_unique<InterpKernel>(_nl);

    // topoOrder() fatals unless every node is ordered (combinational
    // cycles are rejected at build time), so the levelized order size
    // IS the node count — no need to re-run Kahn's algorithm here.
    _nodesPerCycle = _nl.numNodes();
    _dirty.assign(jitBlockWords(_nodesPerCycle), 0);

    // Enable node per write port, global port order (memory
    // ascending) — the armed bitmap's bit assignment.
    for (const rtl::MemInfo &mem : _nl.memories())
        for (rtl::NodeId port : mem.writePorts)
            _portEn.push_back(_nl.node(port).operands[2]);
    _armed.assign(jitPortWords(_portEn.size()), 0);

    // CSR fanout graph + per-node cost cache, exactly as refsim
    // builds them: change tracking and activity accounting run on
    // the host with refsim's own algorithm.
    size_t n = _nl.numNodes();
    _stampCost.resize(n);
    _fanoutBase.assign(n + 1, 0);
    for (rtl::NodeId id = 0; id < n; ++id) {
        uint32_t cost =
            static_cast<uint32_t>(rtl::nodeCost(_nl.node(id)));
        _stampCost[id] = cost;  // Stamp half starts at zero.
        _totalCost += cost;
        for (rtl::NodeId oper : _nl.node(id).operands)
            ++_fanoutBase[oper + 1];
    }
    for (size_t i = 1; i <= n; ++i)
        _fanoutBase[i] += _fanoutBase[i - 1];
    _fanoutList.resize(_fanoutBase[n]);
    std::vector<uint32_t> fill(_fanoutBase.begin(),
                               _fanoutBase.end() - 1);
    for (rtl::NodeId id = 0; id < n; ++id)
        for (rtl::NodeId oper : _nl.node(id).operands)
            _fanoutList[fill[oper]++] = id;

    reset();
}

void
JitSimulator::reset()
{
    _cycle = 0;
    _activeCostSum = 0.0;
    _ctrChanged = 0;
    _ctrMemWrites = 0;
    _histChanged = Histogram{};
    _accActive = Accumulator{};
    _stats.clear();
    _statsDirty = false;
    std::fill(_values.begin(), _values.end(), 0);
    std::fill(_prevSaved.begin(), _prevSaved.end(), 0);
    std::fill(_changed.begin(), _changed.end(), 0);
    _listLen = 0;
    markAllDirty();
    // All values are zero, so every enable is zero: no port armed.
    std::fill(_armed.begin(), _armed.end(), 0);
    for (uint64_t &sc : _stampCost)
        sc = static_cast<uint32_t>(sc);  // Zero the stamp halves.
    _stampGen = 0;
    _regState.clear();
    for (const rtl::RegInfo &reg : _nl.regs())
        _regState.push_back(reg.init);
    _memState.clear();
    for (const rtl::MemInfo &mem : _nl.memories()) {
        std::vector<uint64_t> contents(mem.depth, 0);
        for (size_t i = 0; i < mem.init.size(); ++i)
            contents[i] = mem.init[i];
        _memState.push_back(std::move(contents));
    }
    rebuildMemPtrs();
}

void
JitSimulator::rebuildMemPtrs()
{
    _memPtrs.clear();
    for (std::vector<uint64_t> &mem : _memState)
        _memPtrs.push_back(mem.data());
}

/**
 * Arm every dirty block (exactly the real blocks — stray high bits
 * would survive forever because the sweep only clears bits it
 * owns). A full sweep recomputes every node; values that come out
 * unchanged produce no change record, so over-marking is invisible —
 * this is what makes reset and restore trivially correct.
 */
void
JitSimulator::markAllDirty()
{
    size_t blocks =
        (_nodesPerCycle + kJitBlockNodes - 1) / kJitBlockNodes;
    for (size_t w = 0; w < _dirty.size(); ++w) {
        size_t lo = w * 64;
        size_t in = blocks > lo ? std::min<size_t>(blocks - lo, 64)
                                : 0;
        _dirty[w] = in == 64 ? ~0ull : (1ull << in) - 1;
    }
}

void
JitSimulator::step(refsim::Stimulus &stimulus)
{
    std::fill(_inputBuffer.begin(), _inputBuffer.end(), 0);
    stimulus.apply(_cycle, _inputBuffer);

    // Retire the previous cycle's change flags (sparse: only the
    // nodes that actually changed have a flag set).
    uint8_t *ch = _changed.data();
    const uint32_t *list = _changedList.data();
    for (uint64_t i = 0; i < _listLen; ++i)
        ch[list[i]] = 0;

    uint64_t counters[kNumCounters] = {0};
    AshJitState st{_values.data(),    _prevSaved.data(),
                   ch,                _changedList.data(),
                   _dirty.data(),     _armed.data(),
                   _regState.data(),  _memPtrs.data(),
                   _inputBuffer.data(), counters};
    if (_kernel)
        _kernel->step()(&st);
    else
        _interp->step(&st);
    _listLen = counters[kCtrChanged];
    const uint64_t changedNodes = _listLen;

    // Activity accounting: refsim's stamp-deduplicated CSR fanout
    // walk, driven by the changed list — the visited set (and so the
    // cost sum) is identical, and the work is proportional to the
    // edges leaving changed nodes.
    uint64_t activeCost = 0;
    const uint32_t stamp = ++_stampGen;
    const uint64_t stampHi = static_cast<uint64_t>(stamp) << 32;
    const uint32_t *fanBase = _fanoutBase.data();
    const uint32_t *fanList = _fanoutList.data();
    uint64_t *sc = _stampCost.data();
    for (uint64_t i = 0; i < _listLen; ++i) {
        uint32_t id = list[i];
        for (uint32_t f = fanBase[id]; f < fanBase[id + 1]; ++f) {
            uint32_t consumer = fanList[f];
            uint64_t v = sc[consumer];
            if ((v >> 32) != stamp) {
                sc[consumer] = stampHi | static_cast<uint32_t>(v);
                activeCost += static_cast<uint32_t>(v);
            }
        }
    }

    _ctrChanged += changedNodes;
    _ctrMemWrites += counters[kCtrMemWrites];
    _histChanged.record(changedNodes);
    if (_totalCost > 0) {
        double frac = static_cast<double>(activeCost) /
                      static_cast<double>(_totalCost);
        _activeCostSum += frac;
        _accActive.sample(frac);
    }
    _statsDirty = true;
    ASH_OBS_EVENT(obs::EventKind::RefCycle, _cycle, 1, 0, 0,
                  changedNodes, activeCost);

    ++_cycle;
}

refsim::OutputFrame
JitSimulator::outputFrame() const
{
    refsim::OutputFrame frame;
    frame.reserve(_nl.outputs().size());
    for (rtl::NodeId id : _nl.outputs())
        frame.push_back(_values[id]);
    return frame;
}

refsim::OutputTrace
JitSimulator::run(refsim::Stimulus &stimulus, uint64_t cycles,
                  ckpt::CycleHook *hook)
{
    ASH_PROF_ZONE("run:jit");
    refsim::OutputTrace trace;
    trace.reserve(cycles);
    for (uint64_t c = 0; c < cycles; ++c) {
        guard::pollCancel();
        step(stimulus);
        trace.push_back(outputFrame());
        if (hook)
            hook->onCycle(_cycle, *this);
    }
    return trace;
}

/**
 * Materialize the folded counters into _stats with exactly the key
 * set refsim's per-cycle inc/hist/sample calls produce: "cycles",
 * "nodesChanged", "nodesEvaluated" exist after the first cycle,
 * "memWrites" only once a write happened, the histogram and
 * accumulator only once recorded into (addHistogram/addAccum are
 * no-ops when empty). std::map ordering does the rest: toJson and
 * saveStats emit byte-identical documents.
 */
void
JitSimulator::foldStats() const
{
    if (!_statsDirty)
        return;
    _stats.clear();
    const uint64_t cycles = _histChanged.count;
    if (cycles > 0) {
        _stats.set("cycles", cycles);
        _stats.set("nodesChanged", _ctrChanged);
        _stats.set("nodesEvaluated", cycles * _nodesPerCycle);
        if (_ctrMemWrites > 0)
            _stats.set("memWrites", _ctrMemWrites);
    }
    _stats.addHistogram("changedNodes", _histChanged);
    _stats.addAccum("activeCostFrac", _accActive);
    _statsDirty = false;
}

/** Rebuild the folded counters from a freshly restored _stats. */
void
JitSimulator::unfoldStats()
{
    _ctrChanged = _stats.get("nodesChanged");
    _ctrMemWrites = _stats.get("memWrites");
    _histChanged = _stats.histogram("changedNodes");
    _accActive = _stats.accum("activeCostFrac");
    _statsDirty = false;
}

const StatSet &
JitSimulator::stats() const
{
    foldStats();
    return _stats;
}

double
JitSimulator::activityFactor() const
{
    return _cycle == 0 ? 0.0
                       : _activeCostSum / static_cast<double>(_cycle);
}

void
JitSimulator::save(std::ostream &out) const
{
    // The jit engine has no behavior-affecting config (backend choice
    // cannot change results), so the config hash is a constant — and
    // a compiled-mode snapshot restores fine into an interp-mode
    // simulator and vice versa.
    ckpt::SnapshotWriter w(out, engineName(),
                           ckpt::designFingerprint(_nl), 0);

    // Materialize refsim's previous-values array: an unchanged node
    // has prev == current by definition of the change flag, and a
    // changed node's pre-change value was saved by the backend.
    std::vector<uint64_t> prev(_values);
    for (uint64_t i = 0; i < _listLen; ++i)
        prev[_changedList[i]] = _prevSaved[_changedList[i]];

    w.beginSection(kSecState);
    w.u64(_cycle);
    w.f64(_activeCostSum);
    w.vec(_values);
    w.vec(prev);
    w.vec(_changed);
    w.vec(_regState);
    w.u64(_memState.size());
    for (const std::vector<uint64_t> &mem : _memState)
        w.vec(mem);
    w.endSection();

    w.beginSection(kSecStats);
    foldStats();
    ckpt::saveStats(w, _stats);
    w.endSection();
}

void
JitSimulator::restore(std::istream &in)
{
    ckpt::SnapshotReader r(in);
    r.require(engineName(), ckpt::designFingerprint(_nl), 0);

    r.section(kSecState);
    _cycle = r.u64();
    _activeCostSum = r.f64();
    std::vector<uint64_t> prev;
    r.vec(_values);
    r.vec(prev);
    r.vec(_changed);
    r.vec(_regState);
    if (_values.size() != _nl.numNodes() ||
        prev.size() != _nl.numNodes() ||
        _changed.size() != _nl.numNodes() ||
        _regState.size() != _nl.regs().size())
        throw ckpt::SnapshotError("jit state size mismatch");

    // Rebuild the sparse change records from the restored flags; the
    // list is ascending like the one a step produces.
    std::fill(_prevSaved.begin(), _prevSaved.end(), 0);
    _listLen = 0;
    for (size_t id = 0; id < _changed.size(); ++id) {
        if (!_changed[id])
            continue;
        _prevSaved[id] = prev[id];
        _changedList[_listLen++] = static_cast<uint32_t>(id);
    }
    uint64_t mems = r.u64();
    if (mems != _nl.memories().size())
        throw ckpt::SnapshotError("jit memory count mismatch");
    _memState.resize(mems);
    for (size_t m = 0; m < mems; ++m) {
        r.vec(_memState[m]);
        if (_memState[m].size() != _nl.memories()[m].depth)
            throw ckpt::SnapshotError("jit memory depth mismatch");
    }
    r.endSection();

    r.section(kSecStats);
    ckpt::restoreStats(r, _stats);
    r.endSection();
    r.expectEnd();

    unfoldStats();
    rebuildMemPtrs();   // _memState vectors were reallocated above.

    // A full first sweep re-derives the dirty schedule from the
    // restored values (see markAllDirty); per-step scratch stamps
    // restart at zero exactly as after reset(), mirroring refsim.
    markAllDirty();
    for (uint64_t &scv : _stampCost)
        scv = static_cast<uint32_t>(scv);
    _stampGen = 0;

    // The armed-port invariant is value-based (bit k <=> enable
    // value nonzero), so the bitmap rebuilds directly from the
    // restored value buffer.
    std::fill(_armed.begin(), _armed.end(), 0);
    for (size_t k = 0; k < _portEn.size(); ++k)
        if (_values[_portEn[k]] != 0)
            _armed[k / 64] |= 1ull << (k % 64);
}

std::unique_ptr<refsim::CycleEngine>
makeEngine(const std::string &name, const rtl::Netlist &netlist,
           const JitOptions &options)
{
    if (name == "refsim")
        return std::make_unique<refsim::ReferenceSimulator>(netlist);
    if (name == "jit")
        return std::make_unique<JitSimulator>(netlist, options);
    throw Error("jit", "unknown cycle engine '" + name +
                           "' (expected refsim or jit)");
}

} // namespace ash::jit
