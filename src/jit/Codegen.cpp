#include "jit/Codegen.h"

#include <map>
#include <set>

#include "common/BitUtils.h"
#include "common/Logging.h"
#include "jit/KernelAbi.h"
#include "rtl/Cost.h"

namespace ash::jit {

using rtl::Node;
using rtl::NodeId;
using rtl::Op;

namespace {

/** Nodes per emitted segment function: exactly one dirty-bitmap
 *  word's worth of blocks, so each segment dispatches off a single
 *  word (also a comfortable function size for the host compiler). */
constexpr size_t kSegmentNodes = 64 * kJitBlockNodes;

std::string
lit(uint64_t v)
{
    return std::to_string(v) + "ull";
}

/** "(expr & mask)" unless the width covers the whole word. */
std::string
masked(const std::string &expr, unsigned width)
{
    if (width >= 64)
        return expr;
    return "(" + expr + " & " + lit(mask64(width)) + ")";
}

/**
 * Emits the body of one kernel. Value semantics mirror
 * ReferenceSimulator::step() — any divergence here is a parity bug,
 * caught by the Jit golden tests. The *schedule* is the sparse
 * dirty-block one described in KernelAbi.h: evaluating more nodes
 * than refsim would never changes an observable, evaluating fewer
 * only happens when the skipped values provably could not change.
 */
class Emitter
{
  public:
    Emitter(const rtl::Netlist &nl, uint64_t fingerprint)
        : _nl(nl), _fingerprint(fingerprint),
          _order(nl.topoOrder()),
          _pos(nl.numNodes(), UINT32_MAX)
    {
        for (size_t i = 0; i < nl.inputs().size(); ++i)
            _inputSlot[nl.inputs()[i]] = i;
        for (size_t i = 0; i < _order.size(); ++i)
            _pos[_order[i]] = static_cast<uint32_t>(i);

        // Global write-port numbering: memory-ascending, port order
        // within — refsim's application order, preserved by the
        // ascending armed-bitmap walk at the edge.
        for (size_t m = 0; m < nl.memories().size(); ++m)
            for (NodeId port : nl.memories()[m].writePorts)
                _ports.push_back({static_cast<uint32_t>(m), port});
        _enBits.resize(nl.numNodes());
        for (size_t k = 0; k < _ports.size(); ++k) {
            NodeId en = nl.node(_ports[k].node).operands[2];
            _enBits[en][k / 64] |= 1ull << (k % 64);
        }

        // Consumer blocks per node, own block excluded: a same-block
        // consumer sits at a later position of the very block being
        // evaluated, so it is reached by the current pass.
        _consBlocks.resize(nl.numNodes());
        for (NodeId id = 0; id < nl.numNodes(); ++id) {
            if (_pos[id] == UINT32_MAX)
                continue;
            uint32_t myBlock = _pos[id] / kJitBlockNodes;
            for (NodeId oper : _nl.node(id).operands) {
                if (_pos[oper] == UINT32_MAX)
                    continue;
                uint32_t operBlock = _pos[oper] / kJitBlockNodes;
                if (myBlock != operBlock)
                    _consBlocks[oper].insert(myBlock);
            }
        }
    }

    std::string emit();

  private:
    /** Value of operand @p id as read by a consumer: Const nodes
     *  fold to their raw immediate (the value array always holds the
     *  unmasked imm once evaluated, exactly like refsim). */
    std::string
    ref(NodeId id) const
    {
        const Node &n = _nl.node(id);
        if (n.op == Op::Const)
            return lit(n.imm);
        return "v[" + std::to_string(id) + "]";
    }

    /** "d[w] |= m; ..." statements marking @p blocks dirty. */
    std::string
    marks(const std::set<uint32_t> &blocks) const
    {
        std::map<uint32_t, uint64_t> words;
        for (uint32_t b : blocks)
            words[b / 64] |= 1ull << (b % 64);
        std::string out;
        for (auto &[w, m] : words)
            out += " d[" + std::to_string(w) + "] |= " + lit(m) + ";";
        return out;
    }

    std::string evalExpr(NodeId id, const Node &n) const;
    void emitNode(std::string &out, NodeId id);
    void emitEdge(std::string &out) const;

    struct PortRef
    {
        uint32_t mem;
        NodeId node;
    };

    const rtl::Netlist &_nl;
    uint64_t _fingerprint;
    std::vector<NodeId> _order;
    std::vector<uint32_t> _pos;  ///< Node id -> levelized position.
    std::vector<std::set<uint32_t>> _consBlocks;
    std::vector<PortRef> _ports; ///< Write ports, global port order.
    /// Per node: armed-bitmap word -> bits of ports this node enables.
    std::vector<std::map<uint32_t, uint64_t>> _enBits;
    std::map<NodeId, size_t> _inputSlot;
};

/** The computed (pre-truncation) value expression of one node. */
std::string
Emitter::evalExpr(NodeId id, const Node &n) const
{
    auto opnd = [&](size_t i) { return ref(n.operands[i]); };
    auto width = [&](size_t i) {
        return _nl.node(n.operands[i]).width;
    };
    auto sx = [&](size_t i) {
        return "sx(" + opnd(i) + ", " + std::to_string(width(i)) +
               ")";
    };

    switch (n.op) {
      case Op::Input:
        return masked("in[" + std::to_string(_inputSlot.at(id)) + "]",
                      n.width);
      case Op::Const:
        return lit(n.imm);
      case Op::Reg:
        return "regs[" + std::to_string(_nl.regIndex(id)) + "]";

      case Op::And: return "(" + opnd(0) + " & " + opnd(1) + ")";
      case Op::Or: return "(" + opnd(0) + " | " + opnd(1) + ")";
      case Op::Xor: return "(" + opnd(0) + " ^ " + opnd(1) + ")";
      case Op::Not: return "(~" + opnd(0) + ")";
      case Op::Add: return "(" + opnd(0) + " + " + opnd(1) + ")";
      case Op::Sub: return "(" + opnd(0) + " - " + opnd(1) + ")";
      case Op::Mul: return "(" + opnd(0) + " * " + opnd(1) + ")";
      case Op::Div:
      case Op::Mod: {
        const char *op = n.op == Op::Div ? " / " : " % ";
        const Node &b = _nl.node(n.operands[1]);
        // Division by zero is 0 (documented two-state semantics);
        // a constant divisor folds the guard away entirely and lets
        // the host compiler strength-reduce the divide.
        if (b.op == Op::Const)
            return b.imm == 0
                       ? std::string("0ull")
                       : "(" + opnd(0) + op + opnd(1) + ")";
        return "(" + opnd(1) + " ? (" + opnd(0) + op + opnd(1) +
               ") : 0ull)";
      }
      case Op::Shl: {
        const Node &b = _nl.node(n.operands[1]);
        if (b.op == Op::Const)
            return b.imm >= n.width
                       ? std::string("0ull")
                       : "(" + opnd(0) + " << " + opnd(1) + ")";
        return "((" + opnd(1) + " >= " + lit(n.width) + ") ? 0ull : (" +
               opnd(0) + " << " + opnd(1) + "))";
      }
      case Op::LShr: {
        const Node &b = _nl.node(n.operands[1]);
        if (b.op == Op::Const)
            return b.imm >= width(0)
                       ? std::string("0ull")
                       : "(" + opnd(0) + " >> " + opnd(1) + ")";
        return "((" + opnd(1) + " >= " + lit(width(0)) +
               ") ? 0ull : (" + opnd(0) + " >> " + opnd(1) + "))";
      }
      case Op::AShr: {
        unsigned w0 = width(0);
        const Node &b = _nl.node(n.operands[1]);
        std::string shift;
        if (b.op == Op::Const)
            shift = lit(b.imm >= w0 ? w0 - 1u : b.imm);
        else
            shift = "((" + opnd(1) + " >= " + lit(w0) + ") ? " +
                    lit(w0 - 1u) + " : " + opnd(1) + ")";
        return "(u64)(" + sx(0) + " >> " + shift + ")";
      }

      case Op::Eq:
        return "(u64)(" + opnd(0) + " == " + opnd(1) + ")";
      case Op::Ne:
        return "(u64)(" + opnd(0) + " != " + opnd(1) + ")";
      case Op::Lt:
        return "(u64)(" + opnd(0) + " < " + opnd(1) + ")";
      case Op::Le:
        return "(u64)(" + opnd(0) + " <= " + opnd(1) + ")";
      case Op::Gt:
        return "(u64)(" + opnd(0) + " > " + opnd(1) + ")";
      case Op::Ge:
        return "(u64)(" + opnd(0) + " >= " + opnd(1) + ")";
      case Op::SLt:
        return "(u64)(" + sx(0) + " < " + sx(1) + ")";
      case Op::SLe:
        return "(u64)(" + sx(0) + " <= " + sx(1) + ")";
      case Op::SGt:
        return "(u64)(" + sx(0) + " > " + sx(1) + ")";
      case Op::SGe:
        return "(u64)(" + sx(0) + " >= " + sx(1) + ")";

      case Op::Mux:
        return "(" + opnd(0) + " ? " + opnd(1) + " : " + opnd(2) +
               ")";
      case Op::Concat: {
        // Operands MSB-first; refsim truncates EACH operand before
        // splicing (a Const operand may carry bits past its width).
        std::string expr = masked(opnd(0), width(0));
        for (size_t i = 1; i < n.operands.size(); ++i)
            expr = "((" + expr + " << " + std::to_string(width(i)) +
                   ") | " + masked(opnd(i), width(i)) + ")";
        return expr;
      }
      case Op::Slice:
        return "(" + opnd(0) + " >> " + std::to_string(n.imm) + ")";
      case Op::ZExt:
        return opnd(0);
      case Op::SExt:
        return "(u64)" + sx(0);
      case Op::RedAnd:
        return "(u64)(" + masked(opnd(0), width(0)) +
               " == " + lit(mask64(width(0))) + ")";
      case Op::RedOr:
        return "(u64)(" + opnd(0) + " != 0ull)";
      case Op::RedXor:
        return "(u64)__builtin_parityll(" + opnd(0) + ")";
      case Op::Output:
        return opnd(0);

      case Op::MemRead:
      case Op::MemWrite:
        break; // Emitted specially by emitNode/emitEdge.
    }
    ASH_ASSERT(false, "unreachable op in jit codegen");
    return "0ull";
}

void
Emitter::emitNode(std::string &out, NodeId id)
{
    const Node &n = _nl.node(id);
    const std::string sid = std::to_string(id);

    if (n.op == Op::MemWrite)
        return; // Sink: never valued; effects applied at the edge.

    std::string expr;
    if (n.op == Op::MemRead) {
        // Raw (untruncated) load, exactly like refsim. The address
        // ref is a pure value read, so naming it twice is free.
        const std::string a = ref(n.operands[0]);
        const rtl::MemInfo &mem = _nl.memories()[n.mem];
        expr = "(" + a + " < " + lit(mem.depth) + " ? mems[" +
               std::to_string(n.mem) + "][" + a + "] : 0ull)";
    } else {
        expr = evalExpr(id, n);
        // Every computed op truncates its result; sources store raw.
        if (n.op != Op::Const && n.op != Op::Reg &&
            n.op != Op::Input)
            expr = masked("(" + expr + ")", n.width);
    }

    // The change path does all bookkeeping at once: save the old
    // value (snapshot prev materialization), flag + list the node,
    // mark consumer blocks dirty for this very sweep (consumer
    // blocks are always at later levelized positions), and — when
    // this node enables write ports — keep the armed-port bitmap in
    // sync with the value's nonzero-ness. Marked unlikely so the
    // bookkeeping stores sit outside the hot fetch stream — even in
    // a dirty block most nodes settle unchanged.
    std::string arm;
    for (auto &[w, m] : _enBits[id]) {
        const std::string pw = "pa[" + std::to_string(w) + "]";
        arm += " if (x_) " + pw + " |= " + lit(m) + "; else " + pw +
               " &= ~" + lit(m) + ";";
    }
    out += "  { const u64 x_ = " + expr +
           "; if (__builtin_expect(x_ != v[" + sid +
           "], 0)) { sv[" + sid + "] = v[" + sid + "]; v[" + sid +
           "] = x_; ch[" + sid + "] = 1; cl[nch++] = " + sid + "u;" +
           marks(_consBlocks[id]) + arm + " } }\n";
}

void
Emitter::emitEdge(std::string &out) const
{
    out += "static void edge(const u64 *RESTRICT v, "
           "u64 *RESTRICT regs,\n"
           "                 u64 *const *RESTRICT mems, "
           "u64 *RESTRICT d,\n"
           "                 const u64 *RESTRICT pa, "
           "u64 *RESTRICT acc)\n{\n  (void)pa;\n";
    // Phase 2a: latch every register from its next-value node. The
    // register file is not read below, so in-place assignment equals
    // refsim's scratch-and-swap. A latched change re-arms the
    // register node's block for the next cycle's sweep.
    const auto &regs = _nl.regs();
    for (size_t i = 0; i < regs.size(); ++i) {
        std::set<uint32_t> blk;
        if (_pos[regs[i].node] != UINT32_MAX)
            blk.insert(_pos[regs[i].node] / kJitBlockNodes);
        out += "  { const u64 n_ = " + ref(regs[i].next) +
               "; if (__builtin_expect(n_ != regs[" +
               std::to_string(i) + "], 0)) { regs[" +
               std::to_string(i) + "] = n_;" + marks(blk) +
               " } }\n";
    }

    // Phase 2b: memory writes, visited through the armed-port bitmap
    // (set bit k <=> port k's enable value is nonzero, maintained by
    // the change records), walked ascending so ports still apply in
    // refsim's order (later ports win). Any write that lands a *new*
    // value re-arms every reader of that memory; a same-value write
    // provably cannot change a read.
    out += "  u64 mw = 0;\n";
    std::vector<std::set<uint32_t>> memReaders(
        _nl.memories().size());
    for (NodeId id = 0; id < _nl.numNodes(); ++id)
        if (_nl.node(id).op == Op::MemRead && _pos[id] != UINT32_MAX)
            memReaders[_nl.node(id).mem].insert(
                _pos[id] / kJitBlockNodes);
    if (!_ports.empty()) {
        out += "  for (u32 pw_ = 0; pw_ < " +
               std::to_string(jitPortWords(_ports.size())) +
               "u; ++pw_) {\n"
               "    u64 a = pa[pw_];\n"
               "    while (a) {\n"
               "      const u32 k = pw_ * 64u + "
               "(u32)__builtin_ctzll(a);\n"
               "      a &= a - 1;\n"
               "      switch (k) {\n";
        for (size_t k = 0; k < _ports.size(); ++k) {
            const Node &n = _nl.node(_ports[k].node);
            size_t m = _ports[k].mem;
            const rtl::MemInfo &mem = _nl.memories()[m];
            out += "      case " + std::to_string(k) + ": {\n";
            out += "        const u64 a_ = " + ref(n.operands[0]) +
                   ";\n";
            out += "        if (a_ < " + lit(mem.depth) + ") {\n";
            out += "          const u64 w_ = " + ref(n.operands[1]) +
                   ";\n";
            out += "          if (mems[" + std::to_string(m) +
                   "][a_] != w_) {" + marks(memReaders[m]) + " }\n";
            out += "          mems[" + std::to_string(m) +
                   "][a_] = w_; ++mw;\n";
            out += "        }\n      } break;\n";
        }
        out += "      }\n    }\n  }\n";
    }
    out += "  acc[1] = mw;\n}\n\n";
}

std::string
Emitter::emit()
{
    std::string out;
    out.reserve(_order.size() * 220 + 4096);

    out +=
        "// Generated by ash_jit codegen v" +
        std::to_string(kCodegenVersion) + " — do not edit.\n"
        "// design fingerprint: " + lit(_fingerprint) + "\n"
        "#include <cstdint>\n"
        "using u64 = uint64_t;\n"
        "using u32 = uint32_t;\n"
        "using u8 = uint8_t;\n"
        "using i64 = int64_t;\n"
        "#define RESTRICT __restrict__\n"
        "static inline i64 sx(u64 v, unsigned w)\n"
        "{\n"
        "  if (w == 0 || w >= 64) return (i64)v;\n"
        "  const u64 s = 1ull << (w - 1);\n"
        "  return (i64)((v ^ s) - s);\n"
        "}\n\n"
        "struct AshJitState {\n"
        "  u64 *cur;\n"
        "  u64 *prevSaved;\n"
        "  u8 *ch;\n"
        "  u32 *changedList;\n"
        "  u64 *dirty;\n"
        "  u64 *armed;\n"
        "  u64 *regs;\n"
        "  u64 *const *mems;\n"
        "  const u64 *inputs;\n"
        "  u64 *counters;\n"
        "};\n\n";

    // Eval segments: whole dirty blocks in levelized order. Each
    // block re-checks its bitmap word, because earlier blocks of the
    // same sweep mark downstream blocks as values change.
    const std::string segArgs =
        "(u64 *RESTRICT v, u64 *RESTRICT sv, u8 *RESTRICT ch,\n"
        " u32 *RESTRICT cl, u64 *RESTRICT d, u64 *RESTRICT pa,\n"
        " const u64 *RESTRICT regs, u64 *const *RESTRICT mems,\n"
        " const u64 *RESTRICT in, u64 nch)";
    // One segment per bitmap word, dispatching dirty blocks through
    // a ctz loop: a clean block costs nothing at all (no guard code
    // is even fetched), so instruction traffic scales with activity
    // like everything else. Re-reading the word each iteration picks
    // up blocks marked dirty by earlier blocks of the same sweep;
    // consumer marks only ever target *later* blocks (levelized
    // order), so the lowest-set-bit walk visits blocks ascending and
    // terminates.
    size_t numSegs = 0;
    for (size_t base = 0; base < _order.size();
         base += kSegmentNodes, ++numSegs) {
        const std::string word = std::to_string(numSegs);
        out += "static u64 seg" + std::to_string(numSegs) + segArgs +
               "\n{\n  (void)pa; (void)regs; (void)mems; (void)in;\n";
        size_t end = std::min(base + kSegmentNodes, _order.size());
        out += "  for (;;) {\n"
               "    const u64 rem_ = d[" + word + "];\n"
               "    if (!rem_) break;\n"
               "    const u32 b_ = (u32)__builtin_ctzll(rem_);\n"
               "    d[" + word + "] = rem_ & (rem_ - 1ull);\n"
               "    switch (b_) {\n";
        for (size_t blk = base; blk < end; blk += kJitBlockNodes) {
            size_t b = blk / kJitBlockNodes;
            out += "    case " + std::to_string(b % 64) + ": {\n";
            size_t bend = std::min(blk + kJitBlockNodes, end);
            for (size_t i = blk; i < bend; ++i)
                emitNode(out, _order[i]);
            out += "    } break;\n";
        }
        out += "    }\n  }\n  return nch;\n}\n\n";
    }

    emitEdge(out);

    out += "static void step_impl(const AshJitState *s)\n{\n"
           "  u64 *RESTRICT v = s->cur;\n"
           "  u64 *RESTRICT sv = s->prevSaved;\n"
           "  u8 *RESTRICT ch = s->ch;\n"
           "  u32 *RESTRICT cl = s->changedList;\n"
           "  u64 *RESTRICT d = s->dirty;\n"
           "  u64 *RESTRICT pa = s->armed;\n"
           "  u64 *regs = s->regs;\n"
           "  u64 *const *mems = s->mems;\n"
           "  const u64 *in = s->inputs;\n"
           "  (void)regs; (void)mems; (void)in;\n";

    // Input prologue: arm the block of every input whose stimulus
    // value differs from its current value.
    for (size_t i = 0; i < _nl.inputs().size(); ++i) {
        NodeId id = _nl.inputs()[i];
        if (_pos[id] == UINT32_MAX)
            continue;
        std::set<uint32_t> blk{_pos[id] / kJitBlockNodes};
        out += "  { const u64 x_ = " +
               masked("in[" + std::to_string(i) + "]",
                      _nl.node(id).width) +
               "; if (x_ != v[" + std::to_string(id) + "]) {" +
               marks(blk) + " } }\n";
    }

    out += "  u64 nch = 0;\n";
    for (size_t s = 0; s < numSegs; ++s)
        out += "  nch = seg" + std::to_string(s) +
               "(v, sv, ch, cl, d, pa, regs, mems, in, nch);\n";
    out += "  edge(v, regs, mems, d, pa, s->counters);\n"
           "  s->counters[0] = nch;\n}\n\n";

    // The descriptor; layout mirrors jit::AshJitKernel and is
    // validated against it (abi version, fingerprint, sizes) before
    // the host ever calls step.
    out +=
        "extern \"C\" {\n"
        "struct AshJitKernel {\n"
        "  uint32_t abiVersion;\n"
        "  uint32_t numInputs;\n"
        "  u64 designFingerprint;\n"
        "  u64 codegenVersion;\n"
        "  uint32_t numNodes;\n"
        "  uint32_t numRegs;\n"
        "  uint32_t numMems;\n"
        "  uint32_t numBlockWords;\n"
        "  uint32_t numPortWords;\n"
        "  void (*step)(const AshJitState *);\n"
        "};\n"
        "const AshJitKernel *ash_jit_kernel(void)\n{\n"
        "  static const AshJitKernel k = {\n"
        "    " + std::to_string(kJitAbiVersion) + "u,\n"
        "    " + std::to_string(_nl.inputs().size()) + "u,\n"
        "    " + lit(_fingerprint) + ",\n"
        "    " + lit(kCodegenVersion) + ",\n"
        "    " + std::to_string(_nl.numNodes()) + "u,\n"
        "    " + std::to_string(_nl.regs().size()) + "u,\n"
        "    " + std::to_string(_nl.memories().size()) + "u,\n"
        "    " + std::to_string(jitBlockWords(_order.size())) + "u,\n"
        "    " + std::to_string(jitPortWords(_ports.size())) + "u,\n"
        "    &step_impl,\n"
        "  };\n"
        "  return &k;\n"
        "}\n"
        "} // extern \"C\"\n";
    return out;
}

} // namespace

std::string
emitKernelSource(const rtl::Netlist &nl, uint64_t fingerprint)
{
    return Emitter(nl, fingerprint).emit();
}

bool
laneKernelSupported()
{
    // The emitter above produces single-scenario kernels only; the
    // lane-batched variant (packed planes + lane arrays, see
    // src/lanes) is not wired into codegen yet.
    return false;
}

} // namespace ash::jit
